package epidemic

import (
	"testing"
	"time"
)

// smallParams returns a configuration small enough for unit tests.
func smallParams() Params {
	p := DefaultParams()
	p.N = 25
	p.Duration = 2 * time.Second
	p.MeasureFrom = 300 * time.Millisecond
	p.MeasureTo = 1500 * time.Millisecond
	p.PublishRate = 15
	return p
}

func TestPublicAPIRun(t *testing.T) {
	p := smallParams()
	p.Algorithm = CombinedPull
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRate <= 0 || res.DeliveryRate > 1 {
		t.Fatalf("DeliveryRate = %v", res.DeliveryRate)
	}
	if res.Recoveries == 0 {
		t.Fatal("no recoveries")
	}
}

func TestPublicAPIRunAll(t *testing.T) {
	var ps []Params
	for _, a := range []Algorithm{NoRecovery, Push} {
		p := smallParams()
		p.Algorithm = a
		ps = append(ps, p)
	}
	rs, err := RunAll(ps)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("%d results, want 2", len(rs))
	}
	if rs[1].DeliveryRate <= rs[0].DeliveryRate {
		t.Fatalf("push (%.3f) did not beat no-recovery (%.3f)",
			rs[1].DeliveryRate, rs[0].DeliveryRate)
	}
}

func TestPublicAPIAlgorithms(t *testing.T) {
	algos := Algorithms()
	if len(algos) != 6 {
		t.Fatalf("%d algorithms, want 6", len(algos))
	}
	for _, a := range algos {
		got, err := ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Fatalf("ParseAlgorithm(%q) = %v, %v", a.String(), got, err)
		}
	}
}

func TestPublicAPIDefaultsMatchPaperFig2(t *testing.T) {
	p := DefaultParams()
	if p.N != 100 {
		t.Errorf("N = %d, want 100", p.N)
	}
	if p.PatternsPerNode != 2 {
		t.Errorf("πmax = %d, want 2", p.PatternsPerNode)
	}
	if p.NumPatterns != 70 {
		t.Errorf("Π = %d, want 70", p.NumPatterns)
	}
	if p.PublishRate != 50 {
		t.Errorf("publish rate = %v, want 50", p.PublishRate)
	}
	if p.Network.LossRate != 0.1 {
		t.Errorf("ε = %v, want 0.1", p.Network.LossRate)
	}
	if p.Duration != 25*time.Second {
		t.Errorf("duration = %v, want 25s", p.Duration)
	}
	if p.MaxDegree != 4 {
		t.Errorf("max degree = %d, want 4", p.MaxDegree)
	}
	g := DefaultGossipConfig(Push)
	if g.GossipInterval != 30*time.Millisecond {
		t.Errorf("T = %v, want 30ms", g.GossipInterval)
	}
	if g.BufferSize != 1500 {
		t.Errorf("β = %d, want 1500", g.BufferSize)
	}
	if g.BufferPolicy != FIFO {
		t.Errorf("buffer policy = %v, want FIFO", g.BufferPolicy)
	}
}

func TestPublicAPIAdaptiveGossip(t *testing.T) {
	p := smallParams()
	p.Algorithm = SubscriberPull
	p.Gossip.Adaptive = &AdaptiveConfig{
		Min:          10 * time.Millisecond,
		Max:          200 * time.Millisecond,
		ShrinkFactor: 0.7,
		GrowFactor:   1.3,
	}
	if _, err := Run(p); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPITraceCapturesProtocolActivity(t *testing.T) {
	p := smallParams()
	p.Algorithm = CombinedPull
	p.Trace = NewTrace(512)
	if _, err := Run(p); err != nil {
		t.Fatal(err)
	}
	ring := p.Trace
	if ring.Total() == 0 {
		t.Fatal("trace recorded nothing")
	}
	if ring.Count(TracePublish) == 0 || ring.Count(TraceDeliver) == 0 ||
		ring.Count(TraceSend) == 0 || ring.Count(TraceLoss) == 0 {
		t.Fatalf("trace missing core record kinds (publish=%d deliver=%d send=%d loss=%d)",
			ring.Count(TracePublish), ring.Count(TraceDeliver),
			ring.Count(TraceSend), ring.Count(TraceLoss))
	}
	if got := len(ring.Snapshot()); got != 512 {
		t.Fatalf("retained %d records, want ring capacity 512", got)
	}
}

func TestPublicAPILiveCluster(t *testing.T) {
	cluster, err := NewLiveCluster(4, 4, 5, func(i int) LiveConfig {
		return LiveConfig{Algorithm: CombinedPull}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.Nodes[3].Subscribe(PatternID(2))
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cluster.Nodes[0].KnownPatternCount() == 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	cluster.Nodes[0].Publish(Content{2})
	for time.Now().Before(deadline) {
		if cluster.Nodes[3].Stats().Delivered == 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("live delivery through the public API never happened")
}

func TestPublicAPIBufferPolicies(t *testing.T) {
	for _, pol := range []BufferPolicy{FIFO, Random, LRU} {
		p := smallParams()
		p.Algorithm = CombinedPull
		p.Gossip.BufferPolicy = pol
		res, err := Run(p)
		if err != nil {
			t.Fatalf("policy %v: %v", pol, err)
		}
		if res.DeliveryRate <= 0 {
			t.Fatalf("policy %v: no deliveries", pol)
		}
	}
}
