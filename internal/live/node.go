// Package live runs the paper's protocols for real: dispatchers are
// processes communicating over UDP sockets (stdlib net only), not
// simulated components on a virtual clock. It reuses the simulator's
// building blocks — the wire codec, the content model, the β-bounded
// event buffer, the Lost buffer — and re-implements subscription
// forwarding, reverse-path event routing, and the epidemic recovery
// algorithms against real time and real I/O.
//
// The package exists for two reasons: it demonstrates that the
// simulated protocols are implementable as-is (the simulator and the
// live node speak the same wire format), and it gives downstream users
// a deployable starting point rather than only a simulation.
package live

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Config parameterizes one live dispatcher.
type Config struct {
	// ID identifies this dispatcher; must be unique in the network.
	ID ident.NodeID
	// Bind is the UDP address to listen on; empty means 127.0.0.1:0.
	Bind string
	// Algorithm selects the recovery variant (NoRecovery disables
	// gossip entirely).
	Algorithm core.Algorithm
	// GossipInterval is T. Zero means 30 ms.
	GossipInterval time.Duration
	// BufferSize is β. Zero means 1500.
	BufferSize int
	// PForward and PSource are the gossip probabilities. Zero means
	// 0.9 and 0.5.
	PForward, PSource float64
	// LostCapacity and LostTTL bound the Lost buffer. Zero means 4096
	// entries and 10 s.
	LostCapacity int
	LostTTL      time.Duration
	// DropProb injects Bernoulli loss on outgoing tree-link sends —
	// the lossy-links scenario over real sockets. OOB traffic is not
	// dropped.
	DropProb float64
	// HeartbeatInterval enables the per-neighbor failure detector:
	// every interval the node heartbeats its tree neighbors and
	// suspects any neighbor not heard from within HeartbeatTimeout.
	// Suspected neighbors are skipped when picking gossip targets (the
	// tree keeps routing events — healing the tree is the operator's
	// job) and revived by any incoming traffic. Zero disables the
	// detector.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is the silence after which a neighbor is
	// suspected. Zero means 4×HeartbeatInterval.
	HeartbeatTimeout time.Duration
	// RequestRetries caps how many times an unanswered recovery
	// Request is transmitted in total before the entry is abandoned.
	// Zero means 4.
	RequestRetries int
	// RequestBackoff is the base retransmission delay for unanswered
	// Requests; it doubles per attempt with ±25% jitter. Zero means
	// 2×GossipInterval.
	RequestBackoff time.Duration
	// MaxPending bounds the outstanding-request table; when full, the
	// oldest entries are shed first. Zero means 4096.
	MaxPending int
	// Seed drives the node's randomized choices. Zero means 1.
	Seed int64
	// OnDeliver, when non-nil, observes every local delivery. It is
	// called outside the node's lock, from the node's goroutines.
	OnDeliver func(ev *wire.Event, recovered bool)
}

func (c Config) withDefaults() Config {
	if c.Bind == "" {
		c.Bind = "127.0.0.1:0"
	}
	if c.Algorithm == 0 {
		c.Algorithm = core.NoRecovery
	}
	if c.GossipInterval == 0 {
		c.GossipInterval = 30 * time.Millisecond
	}
	if c.BufferSize == 0 {
		c.BufferSize = 1500
	}
	if c.PForward == 0 {
		c.PForward = 0.9
	}
	if c.PSource == 0 {
		c.PSource = 0.5
	}
	if c.LostCapacity == 0 {
		c.LostCapacity = 4096
	}
	if c.LostTTL == 0 {
		c.LostTTL = 10 * time.Second
	}
	if c.HeartbeatInterval > 0 && c.HeartbeatTimeout == 0 {
		c.HeartbeatTimeout = 4 * c.HeartbeatInterval
	}
	if c.RequestRetries == 0 {
		c.RequestRetries = 4
	}
	if c.RequestBackoff == 0 {
		c.RequestBackoff = 2 * c.GossipInterval
	}
	if c.MaxPending == 0 {
		c.MaxPending = 4096
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Stats is a snapshot of a live node's counters.
type Stats struct {
	Published      uint64
	Delivered      uint64
	Recovered      uint64
	LossesDetected uint64
	GossipSent     uint64
	EventsSent     uint64
	Served         uint64
	DroppedInject  uint64
	// Malformed counts datagrams dropped because they were too short
	// or failed to decode — counted, never fatal.
	Malformed uint64
	// HeartbeatsSent, NeighborsSuspected, and NeighborsRevived report
	// the failure detector (zero when HeartbeatInterval is 0).
	HeartbeatsSent     uint64
	NeighborsSuspected uint64
	NeighborsRevived   uint64
	// RequestsRetried and RequestsAbandoned report the recovery
	// Request retransmission machinery; PendingShed counts entries
	// evicted oldest-first when the pending table hit MaxPending.
	RequestsRetried   uint64
	RequestsAbandoned uint64
	PendingShed       uint64
}

// Node is one live dispatcher.
type Node struct {
	cfg   Config
	conn  *net.UDPConn
	start time.Time

	mu        sync.Mutex
	rng       *rand.Rand
	neighbors map[ident.NodeID]*net.UDPAddr
	directory map[ident.NodeID]*net.UDPAddr
	local     map[ident.PatternID]bool
	localSet  ident.PatternSet // in-range mirror of local; event-path fast match
	table     map[ident.PatternID][]ident.NodeID
	nextSeq   uint32
	patSeq    map[ident.PatternID]uint32
	received  *ident.EventIDSet

	buf      *cache.Cache
	patIdx   map[ident.PatternID]*ident.EventIDSet
	tagIdx   map[wire.LostEntry]ident.EventID
	lost     *core.LostBuffer
	high     map[srcPattern]uint32
	routes   map[ident.NodeID][]ident.NodeID
	pending  map[ident.EventID]*pendingReq
	pendingQ []*pendingReq // FIFO shadow of pending, oldest first
	lastSeen map[ident.NodeID]time.Time
	suspects map[ident.NodeID]bool

	stats Stats

	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
}

type srcPattern struct {
	src ident.NodeID
	pat ident.PatternID
}

// NewNode binds a UDP socket and starts the node's receive loop (and
// gossip loop when recovery is enabled). Close releases everything.
func NewNode(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	addr, err := net.ResolveUDPAddr("udp", cfg.Bind)
	if err != nil {
		return nil, fmt.Errorf("live: resolving %q: %w", cfg.Bind, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: listening on %q: %w", cfg.Bind, err)
	}
	rng := rand.New(rand.NewSource(sim.DeriveSeed(cfg.Seed, 'l', int64(cfg.ID))))
	n := &Node{
		cfg:       cfg,
		conn:      conn,
		start:     time.Now(),
		rng:       rng,
		neighbors: make(map[ident.NodeID]*net.UDPAddr),
		directory: make(map[ident.NodeID]*net.UDPAddr),
		local:     make(map[ident.PatternID]bool),
		table:     make(map[ident.PatternID][]ident.NodeID),
		patSeq:    make(map[ident.PatternID]uint32),
		received:  ident.NewEventIDSet(64),
		buf:       cache.New(cfg.BufferSize, cache.FIFOPolicy, nil),
		patIdx:    make(map[ident.PatternID]*ident.EventIDSet),
		tagIdx:    make(map[wire.LostEntry]ident.EventID),
		lost:      core.NewLostBuffer(cfg.LostCapacity, cfg.LostTTL),
		high:      make(map[srcPattern]uint32),
		routes:    make(map[ident.NodeID][]ident.NodeID),
		pending:   make(map[ident.EventID]*pendingReq),
		lastSeen:  make(map[ident.NodeID]time.Time),
		suspects:  make(map[ident.NodeID]bool),
		done:      make(chan struct{}),
	}
	n.buf.SetOnEvict(n.unindexLocked)

	n.wg.Add(1)
	go n.readLoop()
	if cfg.Algorithm != core.NoRecovery {
		n.wg.Add(1)
		go n.gossipLoop()
	}
	if cfg.HeartbeatInterval > 0 {
		n.wg.Add(1)
		go n.heartbeatLoop()
	}
	return n, nil
}

// ID returns the dispatcher identifier.
func (n *Node) ID() ident.NodeID { return n.cfg.ID }

// Addr returns the bound UDP address.
func (n *Node) Addr() *net.UDPAddr { return n.conn.LocalAddr().(*net.UDPAddr) }

// Stats returns a snapshot of the counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Close shuts the node down: the socket is closed and all goroutines
// are joined.
func (n *Node) Close() error {
	var err error
	n.closeOnce.Do(func() {
		close(n.done)
		err = n.conn.Close()
		n.wg.Wait()
	})
	return err
}

// SetDirectory installs the id→address map used by out-of-band sends.
// The map is copied.
func (n *Node) SetDirectory(dir map[ident.NodeID]*net.UDPAddr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for id, a := range dir {
		n.directory[id] = a
	}
}

// AddNeighbor attaches a tree link toward the given dispatcher and
// advertises every known interest over it, exactly as OnLinkUp does in
// the simulator.
func (n *Node) AddNeighbor(id ident.NodeID, addr *net.UDPAddr) {
	n.mu.Lock()
	n.neighbors[id] = addr
	n.directory[id] = addr
	n.lastSeen[id] = time.Now() // grace period before the detector may suspect
	var subs []ident.PatternID
	for p := range n.local {
		subs = append(subs, p)
	}
	for p := range n.table {
		if !n.local[p] && n.advertisedToLocked(p, id) {
			subs = append(subs, p)
		}
	}
	n.mu.Unlock()
	for _, p := range subs {
		n.sendTree(id, &wire.Subscribe{Pattern: p})
	}
}

// RemoveNeighbor detaches a tree link and flushes every route through
// it (OnLinkDown).
func (n *Node) RemoveNeighbor(id ident.NodeID) {
	n.mu.Lock()
	delete(n.neighbors, id)
	delete(n.lastSeen, id)
	delete(n.suspects, id)
	var stale []ident.PatternID
	for p, dirs := range n.table {
		for _, d := range dirs {
			if d == id {
				stale = append(stale, p)
				break
			}
		}
	}
	n.mu.Unlock()
	for _, p := range stale {
		n.mu.Lock()
		outs := n.removeInterestLocked(p, id)
		n.mu.Unlock()
		n.flush(outs)
	}
}

// now returns the node's monotonic clock as a duration since start,
// the time base of the Lost buffer.
func (n *Node) now() time.Duration { return time.Since(n.start) }

// envelope layout: 4 bytes sender ID, 1 byte flags, then the
// wire-encoded message. A heartbeat envelope carries no message: it is
// exactly envelopeLen bytes with the heartbeat flag set.
const (
	envelopeLen   = 5
	flagOOB       = 1 << 0 // message arrived out of band (not over a tree link)
	flagHeartbeat = 1 << 1 // liveness-only datagram, no payload
)

// envelopePool recycles encode buffers across sends. WriteToUDP copies
// the payload into the kernel synchronously, so a buffer can be reused
// as soon as the write returns.
var envelopePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

func (n *Node) encodeEnvelope(buf []byte, msg wire.Message, oob bool) []byte {
	buf = append(buf[:0], 0, 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(buf, uint32(n.cfg.ID))
	if oob {
		buf[4] = flagOOB
	}
	return msg.Append(buf)
}

// sendEnvelope encodes msg into a pooled buffer, writes it to addr, and
// returns the buffer to the pool.
func (n *Node) sendEnvelope(addr *net.UDPAddr, msg wire.Message, oob bool) {
	bp := envelopePool.Get().(*[]byte)
	*bp = n.encodeEnvelope(*bp, msg, oob)
	n.write(addr, *bp)
	envelopePool.Put(bp)
}

// sendTree transmits msg to a direct neighbor, subject to injected
// loss. Subscription control messages are exempt: in a real deployment
// the control plane rides a reliable transport (TCP), while events and
// gossip are the best-effort data plane the paper studies.
func (n *Node) sendTree(to ident.NodeID, msg wire.Message) {
	kind := msg.Kind()
	control := kind == wire.KindSubscribe || kind == wire.KindUnsubscribe
	n.mu.Lock()
	addr := n.neighbors[to]
	drop := !control && n.cfg.DropProb > 0 && n.rng.Float64() < n.cfg.DropProb
	if addr != nil {
		if drop {
			n.stats.DroppedInject++
		} else if msg.Kind().IsGossip() {
			n.stats.GossipSent++
		} else if msg.Kind() == wire.KindEvent {
			n.stats.EventsSent++
		}
	}
	n.mu.Unlock()
	if addr == nil || drop {
		return
	}
	n.sendEnvelope(addr, msg, false)
}

// sendOOB transmits msg to any dispatcher in the directory.
func (n *Node) sendOOB(to ident.NodeID, msg wire.Message) {
	n.mu.Lock()
	addr := n.directory[to]
	if addr != nil {
		if msg.Kind().IsGossip() {
			n.stats.GossipSent++
		} else if msg.Kind() == wire.KindRetransmit {
			n.stats.EventsSent += uint64(len(msg.(*wire.Retransmit).Events))
		}
	}
	n.mu.Unlock()
	if addr == nil {
		return
	}
	n.sendEnvelope(addr, msg, true)
}

func (n *Node) write(addr *net.UDPAddr, data []byte) {
	// Best-effort, like UDP itself: errors surface only when the node
	// is closing.
	if _, err := n.conn.WriteToUDP(data, addr); err != nil && !closing(err) {
		// A send error to a live address is unexpected but not fatal;
		// the protocols tolerate loss by design.
		_ = err
	}
}

func closing(err error) bool {
	return errors.Is(err, net.ErrClosed)
}

// readLoop receives datagrams until Close.
func (n *Node) readLoop() {
	defer n.wg.Done()
	buf := make([]byte, 65535)
	for {
		nb, _, err := n.conn.ReadFromUDP(buf)
		if err != nil {
			if closing(err) {
				return
			}
			select {
			case <-n.done:
				return
			default:
				continue
			}
		}
		n.handleDatagram(buf[:nb])
	}
}

// handleDatagram parses and dispatches one raw datagram. It must never
// panic on adversarial input: anything that does not parse is counted
// as malformed and dropped, like real UDP software. Split out from
// readLoop so tests can fuzz it without a socket.
func (n *Node) handleDatagram(buf []byte) {
	if len(buf) < envelopeLen {
		n.countMalformed()
		return
	}
	from := ident.NodeID(binary.LittleEndian.Uint32(buf))
	flags := buf[4]
	n.observePeer(from)
	if flags&flagHeartbeat != 0 {
		return // liveness only, no payload to decode
	}
	msg, err := wire.Decode(buf[envelopeLen:])
	if err != nil {
		n.countMalformed()
		return
	}
	n.handle(from, msg, flags&flagOOB != 0)
}

func (n *Node) countMalformed() {
	n.mu.Lock()
	n.stats.Malformed++
	n.mu.Unlock()
}

// observePeer feeds the failure detector: any traffic from a tree
// neighbor proves it alive and clears a standing suspicion.
func (n *Node) observePeer(from ident.NodeID) {
	n.mu.Lock()
	if _, ok := n.neighbors[from]; ok {
		n.lastSeen[from] = time.Now()
		if n.suspects[from] {
			delete(n.suspects, from)
			n.stats.NeighborsRevived++
		}
	}
	n.mu.Unlock()
}

// gossipLoop runs a gossip round every interval, with a random initial
// phase like the simulator's jittered ticker.
func (n *Node) gossipLoop() {
	defer n.wg.Done()
	phase := time.Duration(rand.New(rand.NewSource(sim.DeriveSeed(n.cfg.Seed, 'p', int64(n.cfg.ID)))).
		Int63n(int64(n.cfg.GossipInterval)))
	timer := time.NewTimer(phase)
	select {
	case <-timer.C:
	case <-n.done:
		timer.Stop()
		return
	}
	ticker := time.NewTicker(n.cfg.GossipInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			n.gossipRound()
		case <-n.done:
			return
		}
	}
}

// heartbeatLoop drives the failure detector: each tick heartbeats
// every tree neighbor and suspects the silent ones.
func (n *Node) heartbeatLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			n.heartbeat()
		case <-n.done:
			return
		}
	}
}

func (n *Node) heartbeat() {
	now := time.Now()
	n.mu.Lock()
	addrs := make([]*net.UDPAddr, 0, len(n.neighbors))
	for id, addr := range n.neighbors {
		addrs = append(addrs, addr)
		if !n.suspects[id] && now.Sub(n.lastSeen[id]) > n.cfg.HeartbeatTimeout {
			n.suspects[id] = true
			n.stats.NeighborsSuspected++
		}
	}
	n.stats.HeartbeatsSent += uint64(len(addrs))
	n.mu.Unlock()
	var b [envelopeLen]byte
	binary.LittleEndian.PutUint32(b[:], uint32(n.cfg.ID))
	b[4] = flagHeartbeat
	for _, a := range addrs {
		n.write(a, b[:])
	}
}

// SuspectedNeighbors returns the neighbors the failure detector
// currently suspects, for tests and monitoring.
func (n *Node) SuspectedNeighbors() []ident.NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]ident.NodeID, 0, len(n.suspects))
	for id := range n.suspects {
		out = append(out, id)
	}
	return out
}
