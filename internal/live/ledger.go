package live

import (
	"math"
	"time"

	"repro/internal/ident"
)

// The fairness ledger tracks recovery traffic (Request and Retransmit
// messages) per peer, in both directions. It exists because epidemic
// recovery has an adversarial failure mode the paper's simulations do
// not exercise: one lossy or malicious peer can monopolize a node's
// recovery capacity, either by flooding it with requests (serving cost)
// or by pushing digests that fill the pending-request table (memory
// cost), starving every other peer. The ledger bounds both:
//
//   - Serving is metered: each peer gets ServeBudget bytes of
//     Retransmit payload per LedgerWindow; events beyond the budget are
//     trimmed from the response (and, on the gossip-pull path, left in
//     the "remaining" set so another replica can serve them).
//   - Shedding is greediest-first: when the pending table is full, the
//     victim is the peer with the most live entries (ties broken by
//     most recovery bytes received — the peer that has already consumed
//     the most), and its oldest entry is evicted. With a single active
//     peer this reduces to plain oldest-first.
//
// The design borrows the shape of Bitswap's per-peer ledgers: symmetric
// byte counters consulted at serve time, not a global rate limit, so a
// well-behaved peer's recovery is never throttled by a greedy one.

// PeerLedger is the public snapshot of one peer's ledger entry.
type PeerLedger struct {
	// BytesSent and MessagesSent count recovery traffic (Requests and
	// Retransmit payloads) transmitted to the peer.
	BytesSent    uint64
	MessagesSent uint64
	// BytesReceived and MessagesReceived count recovery traffic
	// received from the peer.
	BytesReceived    uint64
	MessagesReceived uint64
	// Pending is the number of live pending-request entries waiting on
	// digests this peer pushed.
	Pending int
}

// peerLedger is the mutable per-peer record, guarded by n.mu like the
// pending table it arbitrates.
type peerLedger struct {
	sentB, sentMsgs uint64
	recvB, recvMsgs uint64
	pending         int
	// windowServed is the Retransmit payload bytes served to this peer
	// since windowStart; the quota refills when the window rolls over.
	windowServed int
	windowStart  time.Time
}

// ledger maps peers to their accounting records.
type ledger struct {
	peers map[ident.NodeID]*peerLedger
}

func (l *ledger) init() {
	l.peers = make(map[ident.NodeID]*peerLedger)
}

func (l *ledger) peer(id ident.NodeID) *peerLedger {
	pl, ok := l.peers[id]
	if !ok {
		pl = &peerLedger{}
		l.peers[id] = pl
	}
	return pl
}

// ledgerSentLocked records recovery bytes transmitted to peer. Callers
// hold n.mu.
func (n *Node) ledgerSentLocked(peer ident.NodeID, bytes int) {
	pl := n.ledger.peer(peer)
	pl.sentB += uint64(bytes)
	pl.sentMsgs++
}

// ledgerRecvLocked records recovery bytes received from peer. Callers
// hold n.mu.
func (n *Node) ledgerRecvLocked(peer ident.NodeID, bytes int) {
	pl := n.ledger.peer(peer)
	pl.recvB += uint64(bytes)
	pl.recvMsgs++
}

// serveAllowanceLocked returns how many more Retransmit payload bytes
// peer may be served in the current ledger window, rolling the window
// over if it has elapsed. Unlimited (MaxInt) when no budget is
// configured. Callers hold n.mu.
func (n *Node) serveAllowanceLocked(peer ident.NodeID, now time.Time) int {
	if n.cfg.ServeBudget <= 0 {
		return math.MaxInt
	}
	pl := n.ledger.peer(peer)
	if pl.windowStart.IsZero() || now.Sub(pl.windowStart) >= n.cfg.LedgerWindow {
		pl.windowStart = now
		pl.windowServed = 0
	}
	return n.cfg.ServeBudget - pl.windowServed
}

// chargeServeLocked debits bytes from peer's window quota and records
// them as sent. Callers hold n.mu.
func (n *Node) chargeServeLocked(peer ident.NodeID, bytes int) {
	pl := n.ledger.peer(peer)
	pl.windowServed += bytes
	pl.sentB += uint64(bytes)
	pl.sentMsgs++
}

// shedGreediestLocked evicts one live pending entry when the table is
// full: the oldest entry of the greediest peer. Greed is measured in
// live pending entries (the resource being arbitrated), with recovery
// bytes already received as the tie-break. Callers hold n.mu.
func (n *Node) shedGreediestLocked() {
	var victim ident.NodeID
	var best *peerLedger
	for id, pl := range n.ledger.peers {
		if pl.pending == 0 {
			continue
		}
		if best == nil || pl.pending > best.pending ||
			(pl.pending == best.pending && pl.recvB > best.recvB) {
			victim, best = id, pl
		}
	}
	if best == nil {
		// No attributed entries (should not happen: every pending entry
		// increments its peer's count) — fall back to plain oldest-first.
		n.shedOldestLocked()
		return
	}
	for i, pr := range n.pendingQ {
		if pr.done || pr.from != victim {
			continue
		}
		pr.done = true
		delete(n.pending, pr.id)
		best.pending--
		n.stats.pendingShed.Add(1)
		// Tombstone stays in pendingQ; compaction reclaims it. Entries
		// ahead of i belong to other peers and keep their positions.
		_ = i
		return
	}
	// Ledger said the victim had live entries but the queue disagrees;
	// resync and shed oldest so the table still shrinks.
	best.pending = 0
	n.shedOldestLocked()
}

// Ledger returns a snapshot of the per-peer recovery-traffic ledger,
// for tests and monitoring.
func (n *Node) Ledger() map[ident.NodeID]PeerLedger {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[ident.NodeID]PeerLedger, len(n.ledger.peers))
	for id, pl := range n.ledger.peers {
		out[id] = PeerLedger{
			BytesSent:        pl.sentB,
			MessagesSent:     pl.sentMsgs,
			BytesReceived:    pl.recvB,
			MessagesReceived: pl.recvMsgs,
			Pending:          pl.pending,
		}
	}
	return out
}
