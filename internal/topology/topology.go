// Package topology models the overlay network of dispatchers: an
// unrooted tree with bounded node degree (the paper connects each
// dispatcher to at most four others, Sec. IV-A), plus the mutation
// operations used by the reconfiguration scenario — breaking a link and
// replacing it with another that keeps the network connected
// (Sec. IV-A, "Frequency of reconfiguration").
package topology

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/ident"
)

// Common errors returned by mutation operations.
var (
	ErrNoSuchLink   = errors.New("topology: no such link")
	ErrLinkExists   = errors.New("topology: link already exists")
	ErrDegreeFull   = errors.New("topology: node degree limit reached")
	ErrWouldCycle   = errors.New("topology: link would create a cycle")
	ErrSameEndpoint = errors.New("topology: self link")
)

// Link is an undirected edge between two dispatchers. The canonical
// form has A < B.
type Link struct {
	A, B ident.NodeID
}

// Canon returns the link with endpoints in canonical order.
func (l Link) Canon() Link {
	if l.A > l.B {
		return Link{A: l.B, B: l.A}
	}
	return l
}

// Other returns the endpoint opposite to n. It panics when n is not an
// endpoint of the link.
func (l Link) Other(n ident.NodeID) ident.NodeID {
	switch n {
	case l.A:
		return l.B
	case l.B:
		return l.A
	default:
		panic(fmt.Sprintf("topology: %v is not an endpoint of %v-%v", n, l.A, l.B))
	}
}

// Tree is a mutable overlay topology. During normal operation it is a
// spanning tree of the dispatchers; while a reconfiguration is in
// progress (between RemoveLink and AddLink) it is a two-component
// forest.
//
// Tree is not safe for concurrent use.
type Tree struct {
	n         int
	maxDegree int
	adj       [][]ident.NodeID
	links     int
	version   uint64
	// incarnation counts how many times each (canonical) link has been
	// created. A re-created link is a new connection: messages in
	// flight on the previous incarnation must not be delivered on the
	// new one.
	incarnation map[Link]uint64

	// distance cache, rebuilt lazily per version
	distVersion uint64
	dist        [][]int16

	// onMutate, when set, runs after every structural mutation
	// (addEdge, RemoveLink). Installed by invariant monitors; nil in
	// ordinary runs, costing one nil check per mutation.
	onMutate func()
}

// New builds a random spanning tree over n dispatchers with node degree
// at most maxDegree. Nodes join one at a time and attach to a uniformly
// random node among those at the smallest depth that still has a free
// slot; this yields the "balanced-ish" trees described in DESIGN.md,
// whose mean pairwise distance at N=100, maxDegree=4 matches the
// paper's baseline delivery anchors.
func New(n, maxDegree int, rng *rand.Rand) (*Tree, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: need at least 1 node, got %d", n)
	}
	if maxDegree < 2 && n > 2 {
		return nil, fmt.Errorf("topology: maxDegree %d cannot connect %d nodes", maxDegree, n)
	}
	t := &Tree{
		n:         n,
		maxDegree: maxDegree,
		adj:       make([][]ident.NodeID, n),
	}
	depth := make([]int, n)
	for i := 1; i < n; i++ {
		// Collect nodes with a free slot at the minimum depth.
		best := -1
		var candidates []ident.NodeID
		for j := 0; j < i; j++ {
			if len(t.adj[j]) >= maxDegree {
				continue
			}
			switch {
			case best == -1 || depth[j] < best:
				best = depth[j]
				candidates = candidates[:0]
				candidates = append(candidates, ident.NodeID(j))
			case depth[j] == best:
				candidates = append(candidates, ident.NodeID(j))
			}
		}
		if len(candidates) == 0 {
			return nil, fmt.Errorf("topology: no free slots for node %d (maxDegree=%d)", i, maxDegree)
		}
		parent := candidates[rng.Intn(len(candidates))]
		t.addEdge(parent, ident.NodeID(i))
		depth[i] = depth[parent] + 1
	}
	return t, nil
}

// NewLine builds a path topology 0-1-2-...-(n-1). Used by tests that
// need predictable hop counts.
func NewLine(n int) *Tree {
	t := &Tree{n: n, maxDegree: 2, adj: make([][]ident.NodeID, n)}
	for i := 0; i < n-1; i++ {
		t.addEdge(ident.NodeID(i), ident.NodeID(i+1))
	}
	return t
}

// NewStar builds a star with node 0 at the center. Used by tests.
func NewStar(n int) *Tree {
	t := &Tree{n: n, maxDegree: n - 1, adj: make([][]ident.NodeID, n)}
	for i := 1; i < n; i++ {
		t.addEdge(0, ident.NodeID(i))
	}
	return t
}

func (t *Tree) addEdge(a, b ident.NodeID) {
	t.adj[a] = append(t.adj[a], b)
	t.adj[b] = append(t.adj[b], a)
	t.links++
	t.version++
	if t.incarnation == nil {
		t.incarnation = make(map[Link]uint64)
	}
	t.incarnation[Link{A: a, B: b}.Canon()]++
	if t.onMutate != nil {
		t.onMutate()
	}
}

// SetMutationHook installs fn to run after every structural mutation
// of the tree: each addEdge (AddLink, ReconnectAround, restart rejoin)
// and each RemoveLink (including the per-link removals inside
// RemoveNode). Passing nil removes the hook. The hook must not mutate
// the tree.
func (t *Tree) SetMutationHook(fn func()) { t.onMutate = fn }

// LinkIncarnation returns how many times the link between a and b has
// been created so far (0 when it never existed). Transport layers use
// it to drop traffic that was in flight on a previous incarnation of a
// re-created link.
func (t *Tree) LinkIncarnation(a, b ident.NodeID) uint64 {
	return t.incarnation[Link{A: a, B: b}.Canon()]
}

// N returns the number of dispatchers.
func (t *Tree) N() int { return t.n }

// MaxDegree returns the degree bound.
func (t *Tree) MaxDegree() int { return t.maxDegree }

// Version increases on every mutation; callers use it to invalidate
// derived state.
func (t *Tree) Version() uint64 { return t.version }

// NumLinks returns the number of links currently present.
func (t *Tree) NumLinks() int { return t.links }

// Degree returns the number of neighbors of n.
func (t *Tree) Degree(n ident.NodeID) int { return len(t.adj[n]) }

// Neighbors returns the neighbors of n. The returned slice is owned by
// the tree and must not be mutated or retained across mutations.
func (t *Tree) Neighbors(n ident.NodeID) []ident.NodeID { return t.adj[n] }

// HasLink reports whether a and b are directly connected.
func (t *Tree) HasLink(a, b ident.NodeID) bool {
	return t.NeighborSlot(a, b) >= 0
}

// NeighborSlot returns the index of b in a's adjacency list, or -1 when
// a and b are not directly connected. Slots are stable between
// mutations of a's adjacency; a RemoveLink at a may compact later slots
// down by one. Transport layers use the slot to key dense per-neighbor
// state (e.g. FIFO queue occupancy) without hashing.
func (t *Tree) NeighborSlot(a, b ident.NodeID) int {
	for i, x := range t.adj[a] {
		if x == b {
			return i
		}
	}
	return -1
}

// Links returns every link in canonical order. The slice is freshly
// allocated.
func (t *Tree) Links() []Link {
	out := make([]Link, 0, t.links)
	for a := 0; a < t.n; a++ {
		for _, b := range t.adj[a] {
			if ident.NodeID(a) < b {
				out = append(out, Link{A: ident.NodeID(a), B: b})
			}
		}
	}
	return out
}

// RandomLink returns a uniformly random link. It panics on an empty
// topology.
func (t *Tree) RandomLink(rng *rand.Rand) Link {
	links := t.Links()
	if len(links) == 0 {
		panic("topology: no links")
	}
	return links[rng.Intn(len(links))]
}

// RemoveLink deletes the link between a and b, splitting the tree into
// two components.
func (t *Tree) RemoveLink(a, b ident.NodeID) error {
	if !t.HasLink(a, b) {
		return fmt.Errorf("%w: %v-%v", ErrNoSuchLink, a, b)
	}
	t.adj[a] = removeNode(t.adj[a], b)
	t.adj[b] = removeNode(t.adj[b], a)
	t.links--
	t.version++
	if t.onMutate != nil {
		t.onMutate()
	}
	return nil
}

func removeNode(s []ident.NodeID, n ident.NodeID) []ident.NodeID {
	for i, x := range s {
		if x == n {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// AddLink connects a and b. It fails when the link exists, an endpoint
// is at its degree limit, or the endpoints are already connected (a new
// link inside one component would create a cycle).
func (t *Tree) AddLink(a, b ident.NodeID) error {
	switch {
	case a == b:
		return ErrSameEndpoint
	case t.HasLink(a, b):
		return fmt.Errorf("%w: %v-%v", ErrLinkExists, a, b)
	case len(t.adj[a]) >= t.maxDegree:
		return fmt.Errorf("%w: %v", ErrDegreeFull, a)
	case len(t.adj[b]) >= t.maxDegree:
		return fmt.Errorf("%w: %v", ErrDegreeFull, b)
	case t.sameComponent(a, b):
		return fmt.Errorf("%w: %v-%v", ErrWouldCycle, a, b)
	}
	t.addEdge(a, b)
	return nil
}

// sameComponent reports whether a BFS from a reaches b.
func (t *Tree) sameComponent(a, b ident.NodeID) bool {
	if a == b {
		return true
	}
	seen := make([]bool, t.n)
	seen[a] = true
	queue := []ident.NodeID{a}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, y := range t.adj[x] {
			if y == b {
				return true
			}
			if !seen[y] {
				seen[y] = true
				queue = append(queue, y)
			}
		}
	}
	return false
}

// Component returns the IDs of every node reachable from a, including a
// itself, in BFS order.
func (t *Tree) Component(a ident.NodeID) []ident.NodeID {
	seen := make([]bool, t.n)
	seen[a] = true
	queue := []ident.NodeID{a}
	for i := 0; i < len(queue); i++ {
		for _, y := range t.adj[queue[i]] {
			if !seen[y] {
				seen[y] = true
				queue = append(queue, y)
			}
		}
	}
	return queue
}

// Connected reports whether the topology is a single component.
func (t *Tree) Connected() bool {
	return len(t.Component(0)) == t.n
}

// IsTree reports whether the topology is connected and acyclic.
func (t *Tree) IsTree() bool {
	return t.links == t.n-1 && t.Connected()
}

// ReplacementLink chooses a random link (x, y) that reconnects the two
// components around the removed link broken, respecting the degree
// bound. The topology may be a forest with further links missing
// (overlapping reconfigurations, paper Sec. IV-A): only the components
// containing broken.A and broken.B are considered, which keeps each
// repair independent. The replacement differs from the broken link
// whenever any other valid pair exists.
func (t *Tree) ReplacementLink(broken Link, rng *rand.Rand) (Link, error) {
	if t.HasLink(broken.A, broken.B) {
		return Link{}, fmt.Errorf("topology: link %v-%v still present", broken.A, broken.B)
	}
	compA := t.Component(broken.A)
	for _, x := range compA {
		if x == broken.B {
			return Link{}, fmt.Errorf("topology: endpoints of %v-%v already reconnected", broken.A, broken.B)
		}
	}
	compB := t.Component(broken.B)
	freeA := freeSlots(t, compA)
	freeB := freeSlots(t, compB)
	if len(freeA) == 0 || len(freeB) == 0 {
		return Link{}, fmt.Errorf("topology: no degree-%d slots to reconnect %v-%v", t.maxDegree, broken.A, broken.B)
	}
	// Prefer a replacement different from the broken link.
	var candA []ident.NodeID
	for _, x := range freeA {
		if x != broken.A {
			candA = append(candA, x)
		}
	}
	var candB []ident.NodeID
	for _, y := range freeB {
		if y != broken.B {
			candB = append(candB, y)
		}
	}
	a, b := broken.A, broken.B
	switch {
	case len(candA) > 0 && len(candB) > 0:
		a = candA[rng.Intn(len(candA))]
		b = candB[rng.Intn(len(candB))]
	case len(candA) > 0:
		a = candA[rng.Intn(len(candA))]
		b = broken.B
	case len(candB) > 0:
		a = broken.A
		b = candB[rng.Intn(len(candB))]
	}
	return Link{A: a, B: b}.Canon(), nil
}

func freeSlots(t *Tree, comp []ident.NodeID) []ident.NodeID {
	var out []ident.NodeID
	for _, n := range comp {
		if len(t.adj[n]) < t.maxDegree {
			out = append(out, n)
		}
	}
	return out
}

// Dist returns the hop distance between a and b, or -1 when they are in
// different components. Distances are cached per topology version.
func (t *Tree) Dist(a, b ident.NodeID) int {
	t.ensureDist()
	return int(t.dist[a][b])
}

func (t *Tree) ensureDist() {
	if t.dist != nil && t.distVersion == t.version {
		return
	}
	if t.dist == nil {
		t.dist = make([][]int16, t.n)
		for i := range t.dist {
			t.dist[i] = make([]int16, t.n)
		}
	}
	queue := make([]ident.NodeID, 0, t.n)
	for src := 0; src < t.n; src++ {
		row := t.dist[src]
		for i := range row {
			row[i] = -1
		}
		row[src] = 0
		queue = queue[:0]
		queue = append(queue, ident.NodeID(src))
		for i := 0; i < len(queue); i++ {
			x := queue[i]
			for _, y := range t.adj[x] {
				if row[y] == -1 {
					row[y] = row[x] + 1
					queue = append(queue, y)
				}
			}
		}
	}
	t.distVersion = t.version
}

// MeanPairwiseDistance returns the mean hop distance over all ordered
// pairs of distinct nodes in the same component. Used to calibrate the
// loss model against the paper's baseline delivery anchors.
func (t *Tree) MeanPairwiseDistance() float64 {
	t.ensureDist()
	var sum, cnt float64
	for a := 0; a < t.n; a++ {
		for b := 0; b < t.n; b++ {
			if a == b || t.dist[a][b] < 0 {
				continue
			}
			sum += float64(t.dist[a][b])
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / cnt
}
