package matching

import (
	"math/rand"
	"slices"
	"testing"

	"repro/internal/ident"
)

func TestZipfDistSkew(t *testing.T) {
	u := Universe{NumPatterns: 50, MaxMatch: 3}
	z := NewZipfDist(u.NumPatterns, 1.0)
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, u.NumPatterns)
	for i := 0; i < 50_000; i++ {
		counts[z.Draw(rng)]++
	}
	// Zipf(1): P(0)/P(1) = 2, P(0)/P(9) = 10. Allow generous slack.
	if counts[0] < counts[1] || counts[1] < counts[4] {
		t.Fatalf("popularity not monotone in rank: %v", counts[:5])
	}
	if ratio := float64(counts[0]) / float64(counts[9]); ratio < 5 || ratio > 20 {
		t.Fatalf("P(0)/P(9) = %v, want ≈10", ratio)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 50_000 {
		t.Fatalf("draws outside the universe: %d", total)
	}
}

func TestZipfDistDeterministic(t *testing.T) {
	z := NewZipfDist(70, 0.8)
	a, b := rand.New(rand.NewSource(9)), rand.New(rand.NewSource(9))
	for i := 0; i < 1000; i++ {
		if z.Draw(a) != z.Draw(b) {
			t.Fatal("same source diverged")
		}
	}
}

func TestZipfContentShape(t *testing.T) {
	u := Universe{NumPatterns: 70, MaxMatch: 3}
	z := NewZipfDist(u.NumPatterns, 1.2)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		c := u.ZipfContent(z, rng)
		if len(c) == 0 || len(c) > u.MaxMatch {
			t.Fatalf("content size %d out of [1, %d]", len(c), u.MaxMatch)
		}
		if !slices.IsSorted(c) {
			t.Fatalf("content not sorted: %v", c)
		}
		for j := 1; j < len(c); j++ {
			if c[j] == c[j-1] {
				t.Fatalf("duplicate pattern in content: %v", c)
			}
		}
	}
}

func TestZipfSubscriptionsDistinct(t *testing.T) {
	u := Universe{NumPatterns: 20, MaxMatch: 3}
	z := NewZipfDist(u.NumPatterns, 2.0) // heavy skew forces the fill path
	rng := rand.New(rand.NewSource(3))
	hot := 0
	for i := 0; i < 100; i++ {
		ps := u.ZipfSubscriptions(15, z, rng)
		if len(ps) != 15 {
			t.Fatalf("got %d patterns, want 15", len(ps))
		}
		if !slices.IsSorted(ps) {
			t.Fatalf("subscriptions not sorted: %v", ps)
		}
		seen := map[ident.PatternID]bool{}
		for _, p := range ps {
			if seen[p] {
				t.Fatalf("duplicate subscription: %v", ps)
			}
			seen[p] = true
		}
		if seen[0] {
			hot++
		}
	}
	if hot != 100 {
		t.Fatalf("pattern 0 missing from %d/100 heavy-skew 15-of-20 draws", 100-hot)
	}
	// Asking for more than the universe clamps.
	if ps := u.ZipfSubscriptions(100, z, rng); len(ps) != u.NumPatterns {
		t.Fatalf("oversized request returned %d patterns, want %d", len(ps), u.NumPatterns)
	}
}

func TestZipfDistRejectsBadParams(t *testing.T) {
	for _, tc := range []struct{ n int; s float64 }{{0, 1}, {10, 0}, {10, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewZipfDist(%d, %v) did not panic", tc.n, tc.s)
				}
			}()
			NewZipfDist(tc.n, tc.s)
		}()
	}
}
