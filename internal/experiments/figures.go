package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// timeSeriesFigure runs every algorithm once under configure and plots
// the bucketed delivery-rate time series (paper Fig. 3).
func timeSeriesFigure(opt Options, id, title string, configure func(*scenario.Params)) (Figure, error) {
	p0 := base(opt, 12*time.Second)
	configure(&p0)
	algos := deliveryAlgorithms(opt)
	var params []scenario.Params
	for _, a := range algos {
		p := p0
		p.Algorithm = a
		params = append(params, p)
	}
	results, err := scenario.RunAll(params)
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID:     id,
		Title:  title,
		XLabel: "seconds",
		YLabel: "delivery rate",
	}
	for i, r := range results {
		s := Series{Name: algos[i].String()}
		for _, pt := range r.TimeSeries {
			t := pt.Time
			if t < r.Params.MeasureFrom || t >= r.Params.MeasureTo {
				continue
			}
			s.Points = append(s.Points, Point{X: seconds(t), Y: round2(pt.Rate)})
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("N=%d, %.0f publish/s per dispatcher, %v simulated", p0.N, p0.PublishRate, p0.Duration))
	return fig, nil
}

// fig3a: delivery-rate time series under lossy links, ε = 0.05 and 0.1.
func fig3a(opt Options) ([]Figure, error) {
	var out []Figure
	for _, eps := range []float64{0.05, 0.1} {
		eps := eps
		fig, err := timeSeriesFigure(opt,
			fmt.Sprintf("3a-eps%.2f", eps),
			fmt.Sprintf("Event delivery, lossy links, ε=%.2f", eps),
			func(p *scenario.Params) {
				p.Network.LossRate = eps
				p.Network.OOBLossRate = eps
			})
		if err != nil {
			return nil, err
		}
		out = append(out, fig)
	}
	return out, nil
}

// fig3b: delivery-rate time series under topological reconfigurations,
// ρ = 0.2 s (non-overlapping) and ρ = 0.03 s (overlapping), reliable
// links.
func fig3b(opt Options) ([]Figure, error) {
	var out []Figure
	for _, rho := range []sim.Time{200 * time.Millisecond, 30 * time.Millisecond} {
		rho := rho
		fig, err := timeSeriesFigure(opt,
			fmt.Sprintf("3b-rho%.2f", seconds(rho)),
			fmt.Sprintf("Event delivery, reconfigurations every ρ=%v", rho),
			func(p *scenario.Params) {
				p.Network.LossRate = 0
				p.Network.OOBLossRate = 0
				p.ReconfigInterval = rho
			})
		if err != nil {
			return nil, err
		}
		out = append(out, fig)
	}
	return out, nil
}

// fig4a: delivery vs buffer size β.
func fig4a(opt Options) ([]Figure, error) {
	xs := []float64{500, 1000, 1500, 2000, 2500, 3000, 3500, 4000}
	if opt.Quick {
		xs = []float64{500, 1500, 4000}
	}
	p0 := base(opt, 10*time.Second)
	s := sweep{
		xs:           xs,
		algorithms:   deliveryAlgorithms(opt),
		xIndependent: func(a core.Algorithm) bool { return a == core.NoRecovery },
		configure:    func(p *scenario.Params, x float64) { p.Gossip.BufferSize = int(x) },
		measures:     []func(scenario.Result) float64{func(r scenario.Result) float64 { return round2(r.DeliveryRate) }},
	}
	series, err := s.runOne(p0)
	if err != nil {
		return nil, err
	}
	return []Figure{{
		ID:     "4a",
		Title:  "Effect of buffer size β on delivery (ε=0.1)",
		XLabel: "β (buffer size)",
		YLabel: "delivery rate",
		Series: series,
	}}, nil
}

// fig4b: delivery vs gossip interval T.
func fig4b(opt Options) ([]Figure, error) {
	xs := []float64{0.010, 0.015, 0.020, 0.025, 0.030, 0.035, 0.040, 0.045, 0.050, 0.055}
	if opt.Quick {
		xs = []float64{0.010, 0.030, 0.055}
	}
	p0 := base(opt, 10*time.Second)
	s := sweep{
		xs:           xs,
		algorithms:   deliveryAlgorithms(opt),
		xIndependent: func(a core.Algorithm) bool { return a == core.NoRecovery },
		configure: func(p *scenario.Params, x float64) {
			p.Gossip.GossipInterval = sim.Time(x * float64(time.Second))
		},
		measures: []func(scenario.Result) float64{func(r scenario.Result) float64 { return round2(r.DeliveryRate) }},
	}
	series, err := s.runOne(p0)
	if err != nil {
		return nil, err
	}
	return []Figure{{
		ID:     "4b",
		Title:  "Effect of gossip interval T on delivery (ε=0.1)",
		XLabel: "T (gossip interval, s)",
		YLabel: "delivery rate",
		Series: series,
	}}, nil
}

// fig5: delivery vs gossip interval for several buffer sizes, combined
// pull, plus the no-recovery reference.
func fig5(opt Options) ([]Figure, error) {
	ts := []float64{0.010, 0.015, 0.020, 0.025, 0.030, 0.035, 0.040, 0.045, 0.050, 0.055}
	betas := []int{500, 1500, 2500, 3500}
	if opt.Quick {
		ts = []float64{0.010, 0.030, 0.055}
		betas = []int{500, 3500}
	}
	p0 := base(opt, 10*time.Second)

	var params []scenario.Params
	type slot struct {
		beta int
		ti   int
	}
	var slots []slot
	for _, beta := range betas {
		for ti, t := range ts {
			p := p0
			p.Algorithm = core.CombinedPull
			p.Gossip.BufferSize = beta
			p.Gossip.GossipInterval = sim.Time(t * float64(time.Second))
			params = append(params, p)
			slots = append(slots, slot{beta: beta, ti: ti})
		}
	}
	ref := p0
	ref.Algorithm = core.NoRecovery
	params = append(params, ref)
	slots = append(slots, slot{beta: -1})

	results, err := scenario.RunAll(params)
	if err != nil {
		return nil, err
	}
	fig := Figure{
		ID:     "5",
		Title:  "Delivery vs T for several β, combined pull (ε=0.1)",
		XLabel: "T (gossip interval, s)",
		YLabel: "delivery rate",
	}
	byBeta := make(map[int][]Point)
	var refRate float64
	for i, r := range results {
		if slots[i].beta < 0 {
			refRate = round2(r.DeliveryRate)
			continue
		}
		byBeta[slots[i].beta] = append(byBeta[slots[i].beta],
			Point{X: ts[slots[i].ti], Y: round2(r.DeliveryRate)})
	}
	var noRec Series
	noRec.Name = "no-recovery"
	for _, t := range ts {
		noRec.Points = append(noRec.Points, Point{X: t, Y: refRate})
	}
	fig.Series = append(fig.Series, noRec)
	for _, beta := range betas {
		fig.Series = append(fig.Series, Series{
			Name:   fmt.Sprintf("β=%d", beta),
			Points: byBeta[beta],
		})
	}
	return []Figure{fig}, nil
}

// bufferForPersistence returns the buffer size β giving roughly the
// given persistence at scale N (the paper scales β linearly with N so
// events persist ≈4 s, Sec. IV-D).
func bufferForPersistence(persistence sim.Time, n int, publishRate float64, patternsPerNode, numPatterns, maxMatch int) int {
	matchProb := 1 - math.Pow(1-float64(patternsPerNode)/float64(numPatterns), float64(maxMatch))
	fillRate := publishRate * (1 + matchProb*float64(n))
	return int(seconds(persistence) * fillRate)
}

// fig6: delivery as the system size increases, β scaled for ≈4 s
// persistence.
func fig6(opt Options) ([]Figure, error) {
	xs := []float64{20, 40, 60, 80, 100, 120, 140, 160, 180, 200}
	if opt.Quick {
		xs = []float64{20, 40}
	}
	p0 := base(opt, 10*time.Second)
	s := sweep{
		xs:         xs,
		algorithms: deliveryAlgorithms(opt),
		configure: func(p *scenario.Params, x float64) {
			p.N = int(x)
			p.Gossip.BufferSize = bufferForPersistence(4*time.Second, p.N,
				p.PublishRate, p.PatternsPerNode, p.NumPatterns, p.MaxMatch)
		},
		measures: []func(scenario.Result) float64{func(r scenario.Result) float64 { return round2(r.DeliveryRate) }},
	}
	series, err := s.runOne(p0)
	if err != nil {
		return nil, err
	}
	return []Figure{{
		ID:     "6",
		Title:  "Delivery as the system size increases (ε=0.1, β ∝ N)",
		XLabel: "N (number of dispatchers)",
		YLabel: "delivery rate",
		Series: series,
	}}, nil
}

// fig7: receivers per event vs πmax. A routing property: no recovery,
// loss-free links, short runs.
func fig7(opt Options) ([]Figure, error) {
	xs := []float64{1, 2, 3, 5, 8, 10, 15, 20, 25, 30}
	if opt.Quick {
		xs = []float64{2, 10, 30}
	}
	p0 := base(opt, 3*time.Second)
	p0.Network.LossRate = 0
	p0.Network.OOBLossRate = 0
	p0.PublishRate = 10
	p0.MeasureFrom = 500 * time.Millisecond
	p0.MeasureTo = p0.Duration - 500*time.Millisecond
	s := sweep{
		xs:         xs,
		algorithms: []core.Algorithm{core.NoRecovery},
		configure:  func(p *scenario.Params, x float64) { p.PatternsPerNode = int(x) },
		measures:   []func(scenario.Result) float64{func(r scenario.Result) float64 { return round2(r.ReceiversPerEvent) }},
	}
	series, err := s.runOne(p0)
	if err != nil {
		return nil, err
	}
	series[0].Name = "receivers per event"
	return []Figure{{
		ID:     "7",
		Title:  "Dispatchers receiving an event vs πmax",
		XLabel: "πmax (max subscriptions per dispatcher)",
		YLabel: "receivers per event",
		Series: series,
		Notes:  []string{fmt.Sprintf("N=%d; an event matches at most %d patterns", p0.N, p0.MaxMatch)},
	}}, nil
}

// fig8: delivery vs πmax under low (5/s) and high (50/s) publish load,
// β=4000.
func fig8(opt Options) ([]Figure, error) {
	xs := []float64{1, 2, 4, 6, 10, 15, 22, 30}
	algos := []core.Algorithm{core.NoRecovery, core.SubscriberPull, core.Push, core.CombinedPull}
	if opt.Quick {
		xs = []float64{2, 10}
		algos = []core.Algorithm{core.NoRecovery, core.Push}
	}
	var out []Figure
	for _, rate := range []float64{5, 50} {
		// Low load needs the paper's full 25 s: with ≈0.2 events/s per
		// (source, pattern) stream, sequence-gap detection lags the
		// publish by seconds, and a short run cuts off the recovery of
		// its own tail.
		duration := 10 * time.Second
		if rate < 10 {
			duration = 25 * time.Second
		}
		p0 := base(opt, duration)
		p0.PublishRate = rate
		p0.Gossip.BufferSize = 4000
		s := sweep{
			xs:         xs,
			algorithms: algos,
			configure:  func(p *scenario.Params, x float64) { p.PatternsPerNode = int(x) },
			measures:   []func(scenario.Result) float64{func(r scenario.Result) float64 { return round2(r.DeliveryRate) }},
		}
		series, err := s.runOne(p0)
		if err != nil {
			return nil, err
		}
		out = append(out, Figure{
			ID:     fmt.Sprintf("8-load%.0f", rate),
			Title:  fmt.Sprintf("Delivery vs πmax at %.0f publish/s (β=4000, ε=0.1)", rate),
			XLabel: "πmax (max subscriptions per dispatcher)",
			YLabel: "delivery rate",
			Series: series,
		})
	}
	return out, nil
}

// overheadAlgorithms returns the push and combined-pull pair compared
// in the overhead figures.
func overheadAlgorithms() []core.Algorithm {
	return []core.Algorithm{core.Push, core.CombinedPull}
}

// fig9a: gossip messages per dispatcher, and gossip/event ratio, vs N.
func fig9a(opt Options) ([]Figure, error) {
	xs := []float64{20, 40, 60, 80, 100, 120, 140, 160, 180, 200}
	if opt.Quick {
		xs = []float64{20, 40}
	}
	p0 := base(opt, 10*time.Second)
	configure := func(p *scenario.Params, x float64) {
		p.N = int(x)
		p.Gossip.BufferSize = bufferForPersistence(4*time.Second, p.N,
			p.PublishRate, p.PatternsPerNode, p.NumPatterns, p.MaxMatch)
	}
	s := sweep{
		xs: xs, algorithms: overheadAlgorithms(), configure: configure,
		measures: []func(scenario.Result) float64{
			func(r scenario.Result) float64 { return math.Round(r.GossipPerDispatcher) },
			func(r scenario.Result) float64 { return round2(r.GossipEventRatio) },
		},
	}
	both, err := s.run(p0)
	if err != nil {
		return nil, err
	}
	absSeries, ratioSeries := both[0], both[1]
	return []Figure{
		{
			ID: "9a-abs", Title: "Gossip messages per dispatcher vs N",
			XLabel: "N (number of dispatchers)", YLabel: "gossip msgs per dispatcher",
			Series: absSeries,
		},
		{
			ID: "9a-ratio", Title: "Gossip/event message ratio vs N",
			XLabel: "N (number of dispatchers)", YLabel: "gossip msgs / event msgs",
			Series: ratioSeries,
		},
	}, nil
}

// fig9b: the two overhead metrics vs πmax (β=4000, high load).
func fig9b(opt Options) ([]Figure, error) {
	xs := []float64{1, 2, 4, 6, 10, 15, 22, 30}
	if opt.Quick {
		xs = []float64{2, 10}
	}
	p0 := base(opt, 10*time.Second)
	p0.Gossip.BufferSize = 4000
	configure := func(p *scenario.Params, x float64) { p.PatternsPerNode = int(x) }
	s := sweep{
		xs: xs, algorithms: overheadAlgorithms(), configure: configure,
		measures: []func(scenario.Result) float64{
			func(r scenario.Result) float64 { return math.Round(r.GossipPerDispatcher) },
			func(r scenario.Result) float64 { return round2(r.GossipEventRatio) },
		},
	}
	both, err := s.run(p0)
	if err != nil {
		return nil, err
	}
	absSeries, ratioSeries := both[0], both[1]
	return []Figure{
		{
			ID: "9b-abs", Title: "Gossip messages per dispatcher vs πmax",
			XLabel: "πmax", YLabel: "gossip msgs per dispatcher",
			Series: absSeries,
		},
		{
			ID: "9b-ratio", Title: "Gossip/event message ratio vs πmax",
			XLabel: "πmax", YLabel: "gossip msgs / event msgs",
			Series: ratioSeries,
		},
	}, nil
}

// fig10: gossip messages per dispatcher vs ε under high and low load.
func fig10(opt Options) ([]Figure, error) {
	xs := []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.10}
	if opt.Quick {
		xs = []float64{0.01, 0.1}
	}
	var out []Figure
	for _, rate := range []float64{50, 5} {
		p0 := base(opt, 10*time.Second)
		p0.PublishRate = rate
		s := sweep{
			xs:         xs,
			algorithms: overheadAlgorithms(),
			configure: func(p *scenario.Params, x float64) {
				p.Network.LossRate = x
				p.Network.OOBLossRate = x
			},
			measures: []func(scenario.Result) float64{func(r scenario.Result) float64 { return math.Round(r.GossipPerDispatcher) }},
		}
		series, err := s.runOne(p0)
		if err != nil {
			return nil, err
		}
		out = append(out, Figure{
			ID:     fmt.Sprintf("10-load%.0f", rate),
			Title:  fmt.Sprintf("Gossip overhead vs ε at %.0f publish/s", rate),
			XLabel: "ε (link error rate)",
			YLabel: "gossip msgs per dispatcher",
			Series: series,
		})
	}
	return out, nil
}
