package sim

import "testing"

// TestSplitMix64ReferenceVector pins the mix against the published
// splitmix64 reference sequence (outputs for state 0 advancing by the
// golden-ratio increment), so the derivation can never drift silently:
// every persisted experiment seeded through DeriveSeed depends on it.
func TestSplitMix64ReferenceVector(t *testing.T) {
	want := []uint64{0xe220a8397b1dcdaf, 0x910a2dec89025cc1}
	for i, w := range want {
		if got := SplitMix64(uint64(i)); got != w {
			t.Fatalf("SplitMix64(%d) = %#x, want %#x", i, got, w)
		}
	}
	if got := SplitMix64(0x9e3779b97f4a7c15); got != 0x6e789e6aa1b965f4 {
		t.Fatalf("SplitMix64(golden gamma) = %#x, want 0x6e789e6aa1b965f4", got)
	}
}

// TestDeriveSeedGolden pins the multi-part derivation and its basic
// algebraic properties: order sensitivity (("work",1,2) must differ
// from ("work",2,1)) and freedom from the additive aliasing the old
// seed+i / base+a*P+b schemes had.
func TestDeriveSeedGolden(t *testing.T) {
	cases := []struct {
		seed  int64
		parts []int64
		want  int64
	}{
		{42, nil, -4767286540954276203},
		{42, []int64{1}, -2693632816820116974},
		{42, []int64{1, 2}, -8937879498666538011},
		{42, []int64{2, 1}, -4622895523331586773},
		{0x6c6f7373, []int64{184, 550552}, -2037029740181523169},
	}
	for _, c := range cases {
		if got := DeriveSeed(c.seed, c.parts...); got != c.want {
			t.Fatalf("DeriveSeed(%d, %v) = %d, want %d", c.seed, c.parts, got, c.want)
		}
	}
	if DeriveSeed(42, 1, 2) == DeriveSeed(42, 2, 1) {
		t.Fatal("DeriveSeed must be order-sensitive")
	}
}

// TestDeriveSeedNoStructuralCollisions reproduces the aliasing the
// linear Gilbert–Elliott chain-tag scheme had — tag = base + from*P +
// to collides across (from, to) pairs and with unrelated single-index
// streams once from*P wraps into another family's range — and asserts
// the splitmix derivation keeps every family distinct over a large
// identifier grid.
func TestDeriveSeedNoStructuralCollisions(t *testing.T) {
	seen := make(map[int64]string, 1<<16)
	record := func(k int64, label string) {
		if prev, ok := seen[k]; ok {
			t.Fatalf("seed collision between %s and %s", prev, label)
		}
		seen[k] = label
	}
	const lossBase, workBase = 0x6c6f7373, 0x776f726b
	for from := int64(0); from < 128; from++ {
		for to := int64(0); to < 128; to++ {
			record(DeriveSeed(lossBase, from, to), "loss pair")
		}
	}
	for i := int64(0); i < 1<<14; i++ {
		record(DeriveSeed(workBase, i), "work stream")
	}
}
