package matching

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sort"

	"repro/internal/ident"
)

// ZipfDist is a Zipf(s) distribution over the pattern universe:
// pattern k is the k-th most popular and is drawn with probability
// proportional to 1/(k+1)^s. Unlike math/rand's Zipf generator it
// accepts any exponent s > 0 (the interesting skew regime for content
// popularity is 0.6–1.2, mostly below math/rand's s > 1 requirement)
// via an explicit inverse-CDF table: one Float64 draw plus a binary
// search per sample, so a workload generator consumes exactly one RNG
// draw per pattern regardless of skew.
//
// Identifying popularity rank with pattern id is deliberate: pattern 0
// is always the hottest. Subscriptions drawn from the same distribution
// then concentrate on the same patterns events do, which is the
// correlated-interest regime the uniform paper workload cannot express.
type ZipfDist struct {
	s   float64
	cum []float64 // cum[k] = P(X <= k); cum[n-1] == 1
}

// NewZipfDist builds the distribution over n patterns with exponent s.
func NewZipfDist(n int, s float64) *ZipfDist {
	if n <= 0 {
		panic("matching: zipf needs a positive universe")
	}
	if s <= 0 {
		panic(fmt.Sprintf("matching: zipf exponent %v must be > 0", s))
	}
	cum := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cum[k] = sum
	}
	for k := range cum {
		cum[k] /= sum
	}
	cum[n-1] = 1 // guard against rounding leaving it at 0.999…
	return &ZipfDist{s: s, cum: cum}
}

// Exponent returns the skew parameter s.
func (z *ZipfDist) Exponent() float64 { return z.s }

// Draw samples one pattern, consuming exactly one rng.Float64 draw.
func (z *ZipfDist) Draw(rng *rand.Rand) ident.PatternID {
	u := rng.Float64()
	return ident.PatternID(sort.SearchFloat64s(z.cum, u))
}

// ZipfContent generates event content like RandomContent but with the
// MaxMatch pattern draws taken from z instead of the uniform
// distribution: duplicates collapse (more often than under uniform
// draws, since hot patterns repeat), so skewed events match fewer
// distinct patterns on average — the realistic cost of popularity.
func (u Universe) ZipfContent(z *ZipfDist, rng *rand.Rand) Content {
	out := make(Content, 0, u.MaxMatch)
	for i := 0; i < u.MaxMatch; i++ {
		p := z.Draw(rng)
		if !out.Matches(p) {
			out = append(out, p)
		}
	}
	slices.Sort(out)
	return out
}

// ZipfSubscriptions draws k distinct patterns with popularity skew z:
// repeated Zipf draws, rejecting duplicates. To keep the draw count
// bounded when k approaches the universe size (hot patterns get
// redrawn constantly), after 32 consecutive rejections the remaining
// slots fill deterministically with the most popular not-yet-chosen
// patterns — the limit the rejection process converges to anyway.
func (u Universe) ZipfSubscriptions(k int, z *ZipfDist, rng *rand.Rand) []ident.PatternID {
	if k > u.NumPatterns {
		k = u.NumPatterns
	}
	chosen := make([]ident.PatternID, 0, k)
	have := make(map[ident.PatternID]bool, k)
	miss := 0
	for len(chosen) < k && miss < 32 {
		p := z.Draw(rng)
		if have[p] {
			miss++
			continue
		}
		miss = 0
		have[p] = true
		chosen = append(chosen, p)
	}
	for p := ident.PatternID(0); len(chosen) < k; p++ {
		if !have[p] {
			have[p] = true
			chosen = append(chosen, p)
		}
	}
	slices.Sort(chosen)
	return chosen
}
