package wire

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/ident"
	"repro/internal/matching"
)

func sampleEvent() *Event {
	return &Event{
		ID:          ident.EventID{Source: 7, Seq: 42},
		Content:     matching.Content{3, 17, 42},
		Tags:        []ident.PatternSeq{{Pattern: 3, Seq: 9}, {Pattern: 17, Seq: 1}},
		Route:       []ident.NodeID{7, 2, 5},
		PublishedAt: 123456789,
		PayloadLen:  16,
	}
}

func allMessages() []Message {
	return []Message{
		sampleEvent(),
		&Event{ID: ident.EventID{Source: 0, Seq: 1}}, // minimal event
		&Subscribe{Pattern: 5},
		&Unsubscribe{Pattern: 5},
		&GossipPush{Gossiper: 3, Pattern: 9, Digest: []ident.EventID{{Source: 1, Seq: 2}, {Source: 4, Seq: 8}}},
		&GossipPush{Gossiper: 3, Pattern: 9}, // empty digest
		&GossipSubPull{Gossiper: 2, Pattern: 4, Wanted: []LostEntry{{Source: 1, Pattern: 4, Seq: 3}}},
		&GossipPubPull{
			Gossiper: 9, Source: 1,
			Wanted: []LostEntry{{Source: 1, Pattern: 2, Seq: 3}, {Source: 1, Pattern: 5, Seq: 7}},
			Route:  []ident.NodeID{1, 4, 6},
			Next:   2,
		},
		&GossipRandom{Gossiper: 0, Wanted: []LostEntry{{Source: 3, Pattern: 1, Seq: 1}}},
		&Request{Requester: 8, IDs: []ident.EventID{{Source: 2, Seq: 19}}},
		&Retransmit{Responder: 4, Events: []*Event{sampleEvent(), sampleEvent()}},
		&Retransmit{Responder: 4}, // empty
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, msg := range allMessages() {
		data := Encode(msg)
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("%v: Decode: %v", msg.Kind(), err)
		}
		norm := normalize(msg)
		if !reflect.DeepEqual(norm, normalize(got)) {
			t.Fatalf("%v: round trip mismatch:\n in: %#v\nout: %#v", msg.Kind(), norm, got)
		}
	}
}

// normalize maps nil slices to empty slices so DeepEqual compares
// semantic content; the decoder never distinguishes nil from empty.
func normalize(m Message) Message {
	data := Encode(m)
	out, err := Decode(data)
	if err != nil {
		panic(err)
	}
	return out
}

func TestWireSizeMatchesEncoding(t *testing.T) {
	for _, msg := range allMessages() {
		if got, want := len(Encode(msg)), msg.WireSize(); got != want {
			t.Fatalf("%v: encoded %d bytes, WireSize says %d", msg.Kind(), got, want)
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	for _, msg := range allMessages() {
		data := Encode(msg)
		for cut := 0; cut < len(data); cut++ {
			if _, err := Decode(data[:cut]); err == nil {
				t.Fatalf("%v: decoding %d of %d bytes succeeded", msg.Kind(), cut, len(data))
			}
		}
	}
}

func TestDecodeTrailingGarbage(t *testing.T) {
	data := append(Encode(&Subscribe{Pattern: 1}), 0xFF)
	if _, err := Decode(data); !errors.Is(err, ErrTrailing) {
		t.Fatalf("err = %v, want ErrTrailing", err)
	}
}

func TestDecodeUnknownKind(t *testing.T) {
	if _, err := Decode([]byte{0xEE}); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("err = %v, want ErrUnknownKind", err)
	}
	if _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestEventClone(t *testing.T) {
	e := sampleEvent()
	c := e.Clone()
	c.Route = append(c.Route, 99)
	c.Content[0] = 1
	c.Tags[0].Seq = 1000
	if len(e.Route) != 3 {
		t.Fatal("Clone shares Route backing array")
	}
	if e.Content[0] != 3 {
		t.Fatal("Clone shares Content backing array")
	}
	if e.Tags[0].Seq != 9 {
		t.Fatal("Clone shares Tags backing array")
	}
}

func TestEventSeqFor(t *testing.T) {
	e := sampleEvent()
	if seq, ok := e.SeqFor(17); !ok || seq != 1 {
		t.Fatalf("SeqFor(17) = %d, %v; want 1, true", seq, ok)
	}
	if _, ok := e.SeqFor(99); ok {
		t.Fatal("SeqFor(99) = true, want false")
	}
}

func TestKindClassification(t *testing.T) {
	gossip := []Kind{KindGossipPush, KindGossipSubPull, KindGossipPubPull, KindGossipRandom, KindRequest}
	for _, k := range gossip {
		if !k.IsGossip() {
			t.Fatalf("%v.IsGossip() = false, want true", k)
		}
	}
	events := []Kind{KindEvent, KindRetransmit, KindSubscribe, KindUnsubscribe}
	for _, k := range events {
		if k.IsGossip() {
			t.Fatalf("%v.IsGossip() = true, want false", k)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindEvent.String() != "event" {
		t.Fatalf("KindEvent.String() = %q", KindEvent.String())
	}
	if Kind(200).String() != "kind(200)" {
		t.Fatalf("unknown kind String() = %q", Kind(200).String())
	}
}

// TestRoundTripProperty fuzzes structured random messages through the
// codec.
func TestRoundTripProperty(t *testing.T) {
	u := matching.DefaultUniverse()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		msgs := []Message{
			randomEvent(rng, u),
			&GossipPush{Gossiper: ident.NodeID(rng.Intn(100)), Pattern: ident.PatternID(rng.Intn(70)), Digest: randomIDs(rng)},
			&GossipSubPull{Gossiper: ident.NodeID(rng.Intn(100)), Pattern: ident.PatternID(rng.Intn(70)), Wanted: randomLost(rng)},
			&GossipPubPull{Gossiper: ident.NodeID(rng.Intn(100)), Source: ident.NodeID(rng.Intn(100)), Wanted: randomLost(rng), Route: randomRoute(rng), Next: uint16(rng.Intn(4))},
			&GossipRandom{Gossiper: ident.NodeID(rng.Intn(100)), Wanted: randomLost(rng)},
			&Request{Requester: ident.NodeID(rng.Intn(100)), IDs: randomIDs(rng)},
			&Retransmit{Responder: ident.NodeID(rng.Intn(100)), Events: []*Event{randomEvent(rng, u)}},
		}
		for _, msg := range msgs {
			data := Encode(msg)
			if len(data) != msg.WireSize() {
				return false
			}
			got, err := Decode(data)
			if err != nil {
				return false
			}
			if !reflect.DeepEqual(Encode(got), data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randomEvent(rng *rand.Rand, u matching.Universe) *Event {
	e := &Event{
		ID:          ident.EventID{Source: ident.NodeID(rng.Intn(100)), Seq: rng.Uint32()},
		Content:     u.RandomContent(rng),
		PublishedAt: rng.Int63(),
		PayloadLen:  uint16(rng.Intn(64)),
		Route:       randomRoute(rng),
	}
	for _, p := range e.Content {
		e.Tags = append(e.Tags, ident.PatternSeq{Pattern: p, Seq: rng.Uint32()})
	}
	return e
}

func randomIDs(rng *rand.Rand) []ident.EventID {
	out := make([]ident.EventID, rng.Intn(8))
	for i := range out {
		out[i] = ident.EventID{Source: ident.NodeID(rng.Intn(100)), Seq: rng.Uint32()}
	}
	return out
}

func randomLost(rng *rand.Rand) []LostEntry {
	out := make([]LostEntry, rng.Intn(8))
	for i := range out {
		out[i] = LostEntry{Source: ident.NodeID(rng.Intn(100)), Pattern: ident.PatternID(rng.Intn(70)), Seq: rng.Uint32()}
	}
	return out
}

func randomRoute(rng *rand.Rand) []ident.NodeID {
	out := make([]ident.NodeID, rng.Intn(6))
	for i := range out {
		out[i] = ident.NodeID(rng.Intn(100))
	}
	return out
}

func BenchmarkEncodeEvent(b *testing.B) {
	e := sampleEvent()
	buf := make([]byte, 0, e.WireSize())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = e.Append(buf[:0])
	}
}

func BenchmarkDecodeEvent(b *testing.B) {
	data := Encode(sampleEvent())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEventClone(b *testing.B) {
	e := sampleEvent()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = e.Clone()
	}
}
