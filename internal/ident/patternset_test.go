package ident

import (
	"math/rand"
	"slices"
	"testing"
)

// TestPatternSetBasics covers the fixed-point cases the property test
// can miss: boundaries, the zero value, and out-of-range behavior.
func TestPatternSetBasics(t *testing.T) {
	var s PatternSet
	if !s.Empty() || s.Len() != 0 {
		t.Fatalf("zero PatternSet: Empty=%v Len=%d, want true 0", s.Empty(), s.Len())
	}
	for _, p := range []PatternID{0, 1, 63, 64, 127} {
		if !s.Add(p) {
			t.Fatalf("Add(%d) = false, want true", p)
		}
		if !s.Has(p) {
			t.Fatalf("Has(%d) = false after Add", p)
		}
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	got := s.AppendTo(nil)
	want := []PatternID{0, 1, 63, 64, 127}
	if !slices.Equal(got, want) {
		t.Fatalf("AppendTo = %v, want %v", got, want)
	}
	for i, p := range want {
		if s.At(i) != p {
			t.Fatalf("At(%d) = %d, want %d", i, s.At(i), p)
		}
	}
	for _, p := range []PatternID{128, 1000, -1, NoPattern} {
		if s.Add(p) {
			t.Fatalf("Add(%d) = true, want false (out of range)", p)
		}
		if s.Has(p) {
			t.Fatalf("Has(%d) = true, want false (out of range)", p)
		}
		s.Remove(p) // must not panic or corrupt
	}
	if s.Len() != 5 {
		t.Fatalf("Len after out-of-range ops = %d, want 5", s.Len())
	}
	s.Remove(63)
	if s.Has(63) || s.Len() != 4 {
		t.Fatalf("Remove(63): Has=%v Len=%d, want false 4", s.Has(63), s.Len())
	}
}

func TestPatternSetAtPanics(t *testing.T) {
	s := NewPatternSet([]PatternID{3, 70})
	for _, i := range []int{-1, 2, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d) did not panic", i)
				}
			}()
			s.At(i)
		}()
	}
}

// TestPatternSetDifferential drives random operation sequences against
// a map oracle: after every step, membership, cardinality, ascending
// iteration, and the set-algebra results must agree with the naive
// map/sorted-slice model the bitset replaced.
func TestPatternSetDifferential(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var s PatternSet
		oracle := make(map[PatternID]bool)
		for step := 0; step < 500; step++ {
			p := PatternID(rng.Intn(PatternSetCap))
			if rng.Intn(3) == 0 {
				s.Remove(p)
				delete(oracle, p)
			} else {
				s.Add(p)
				oracle[p] = true
			}

			if s.Len() != len(oracle) {
				t.Fatalf("seed %d step %d: Len = %d, oracle %d", seed, step, s.Len(), len(oracle))
			}
			q := PatternID(rng.Intn(PatternSetCap))
			if s.Has(q) != oracle[q] {
				t.Fatalf("seed %d step %d: Has(%d) = %v, oracle %v", seed, step, q, s.Has(q), oracle[q])
			}
		}

		sorted := make([]PatternID, 0, len(oracle))
		for p := range oracle {
			sorted = append(sorted, p)
		}
		slices.Sort(sorted)
		if got := s.AppendTo(nil); !slices.Equal(got, sorted) {
			t.Fatalf("seed %d: AppendTo = %v, sorted oracle %v", seed, got, sorted)
		}
		var walked []PatternID
		s.ForEach(func(p PatternID) { walked = append(walked, p) })
		if !slices.Equal(walked, sorted) {
			t.Fatalf("seed %d: ForEach order %v, want %v", seed, walked, sorted)
		}
		for i, p := range sorted {
			if s.At(i) != p {
				t.Fatalf("seed %d: At(%d) = %d, want %d", seed, i, s.At(i), p)
			}
		}

		other := NewPatternSet(sorted[:len(sorted)/2])
		union := s.Union(other)
		inter := s.Intersect(other)
		for p := PatternID(0); p < PatternSetCap; p++ {
			if union.Has(p) != (s.Has(p) || other.Has(p)) {
				t.Fatalf("seed %d: Union.Has(%d) mismatch", seed, p)
			}
			if inter.Has(p) != (s.Has(p) && other.Has(p)) {
				t.Fatalf("seed %d: Intersect.Has(%d) mismatch", seed, p)
			}
		}
		if s.Intersects(other) != !inter.Empty() {
			t.Fatalf("seed %d: Intersects = %v, Intersect.Empty = %v", seed, s.Intersects(other), inter.Empty())
		}
	}
}

func TestNewPatternSetIgnoresOutOfRange(t *testing.T) {
	s := NewPatternSet([]PatternID{5, 500, -3, 99})
	if got := s.AppendTo(nil); !slices.Equal(got, []PatternID{5, 99}) {
		t.Fatalf("NewPatternSet kept %v, want [5 99]", got)
	}
}
