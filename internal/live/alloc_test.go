package live

import (
	"net/netip"
	"testing"

	"repro/internal/ident"
	"repro/internal/wire"
)

// These tests pin the allocation behavior of the send hot path: once
// the pools are warm, enveloping a message and packing a coalesced
// batch must not allocate. A regression here multiplies by every
// datagram a dispatcher moves.

func TestAllocsEnvelopeEncode(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation pins are meaningless under the race detector")
	}
	msg := &wire.GossipPush{
		Gossiper: 1,
		Pattern:  7,
		Digest:   []ident.EventID{{Source: 1, Seq: 1}, {Source: 1, Seq: 2}},
	}
	encode := func() {
		bp := sendBufPool.Get().(*[]byte)
		b := appendEnvelope((*bp)[:0], 1, 2, flagOOB)
		b = msg.Append(b)
		*bp = b
		putSendBuf(bp)
	}
	encode() // warm the pool
	if n := testing.AllocsPerRun(200, encode); n != 0 {
		t.Fatalf("envelope encode allocates %.1f times per message, want 0", n)
	}
}

func TestAllocsPack(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation pins are meaningless under the race detector")
	}
	s := &shard{}
	addr := netip.MustParseAddrPort("127.0.0.1:9")
	msg := &wire.Subscribe{Pattern: 1}
	entries := make([]outEntry, 8)
	for i := range entries {
		entries[i] = outEntry{from: 1, to: 2, addr: addr, msg: msg}
	}
	entries[3].msg = nil // one heartbeat in the mix
	ds := make([]dgram, 0, 16)
	bufs := make([]*[]byte, 0, 16)
	open := make(map[packKey]int, 16)
	flush := func() {
		ds, bufs = s.pack(entries, ds[:0], bufs[:0], open)
		for i, bp := range bufs {
			*bp = ds[i].b
			putSendBuf(bp)
		}
	}
	flush() // warm the pool and the map
	if n := testing.AllocsPerRun(200, flush); n != 0 {
		t.Fatalf("pack allocates %.1f times per flush, want 0", n)
	}
}

// TestAllocsReadBufferPooled pins the receive-buffer discipline: the
// standalone read loop borrows its 64 KB buffer from the shared pool
// instead of allocating one per node lifetime.
func TestAllocsReadBufferPooled(t *testing.T) {
	bp := recvBufPool.Get().(*[]byte)
	if len(*bp) != 64<<10 {
		t.Fatalf("pooled receive buffer is %d bytes, want %d", len(*bp), 64<<10)
	}
	recvBufPool.Put(bp)
}
