// Tuning: explore the two knobs the paper identifies as decisive
// (Sec. IV-C) — the gossip interval T and the buffer size β — for a
// deployment with a given loss rate, and report the cheapest setting
// that reaches a target delivery rate. This is the workflow a
// downstream user runs before deploying the recovery layer.
//
//	go run ./examples/tuning [-target 0.95]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	epidemic "repro"
)

func main() {
	log.SetFlags(0)
	target := flag.Float64("target", 0.95, "target delivery rate")
	flag.Parse()

	intervals := []time.Duration{10 * time.Millisecond, 30 * time.Millisecond, 50 * time.Millisecond}
	buffers := []int{500, 1500, 3000}

	// Build the whole grid, then run it (RunAll parallelizes across
	// available cores).
	var params []epidemic.Params
	for _, T := range intervals {
		for _, beta := range buffers {
			p := epidemic.DefaultParams()
			p.N = 50
			p.Duration = 8 * time.Second
			p.Algorithm = epidemic.CombinedPull
			p.Gossip.GossipInterval = T
			p.Gossip.BufferSize = beta
			params = append(params, p)
		}
	}
	results, err := epidemic.RunAll(params)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("combined pull, ε=10%% loss — delivery rate and gossip cost per (T, β):\n\n")
	fmt.Printf("%8s %8s %10s %14s\n", "T", "β", "delivery", "gossip/disp")
	type pick struct {
		p    epidemic.Params
		cost float64
	}
	var best *pick
	for _, r := range results {
		fmt.Printf("%8v %8d %9.1f%% %14.0f\n",
			r.Params.Gossip.GossipInterval, r.Params.Gossip.BufferSize,
			r.DeliveryRate*100, r.GossipPerDispatcher)
		if r.DeliveryRate >= *target {
			if best == nil || r.GossipPerDispatcher < best.cost {
				best = &pick{p: r.Params, cost: r.GossipPerDispatcher}
			}
		}
	}
	fmt.Println()
	if best == nil {
		fmt.Printf("no setting reached the %.0f%% target — shrink T below %v or raise β beyond %d\n",
			*target*100, intervals[0], buffers[len(buffers)-1])
		return
	}
	fmt.Printf("cheapest setting reaching %.0f%%: T=%v, β=%d (%.0f gossip msgs/dispatcher)\n",
		*target*100, best.p.Gossip.GossipInterval, best.p.Gossip.BufferSize, best.cost)
	fmt.Println("\nThe paper's Fig. 5 shape: a bigger buffer compensates a longer")
	fmt.Println("gossip interval, with diminishing returns past a threshold.")
}
