package live

import (
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/matching"
	"repro/internal/wire"
)

// FuzzLiveEnvelope feeds arbitrary datagrams through the full receive
// path: a hardened dispatcher must never panic on adversarial input —
// malformed datagrams are counted and dropped.
func FuzzLiveEnvelope(f *testing.F) {
	n, err := NewNode(Config{ID: 1, Algorithm: core.CombinedPull})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { _ = n.Close() })
	n.Subscribe(7)

	ev := &wire.Event{
		ID:      ident.EventID{Source: 2, Seq: 1},
		Content: matching.Content{7},
		Tags:    []ident.PatternSeq{{Pattern: 7, Seq: 1}},
	}
	valid := n.encodeEnvelope(nil, ev, false)
	f.Add(valid)
	f.Add(valid[:len(valid)-1]) // truncated payload
	f.Add(valid[:3])            // truncated envelope
	f.Add([]byte{1, 0, 0, 0, 1, 0, 0, 0, flagHeartbeat})
	f.Add([]byte{1, 0, 0, 0, 1, 0, 0, 0, flagBatch, 0xff, 0xff}) // batch with lying frame length
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		n.handleDatagram(data) // must not panic
	})
}

func TestLiveFaultMalformedCounted(t *testing.T) {
	n, err := NewNode(Config{ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.handleDatagram([]byte{1, 2, 3})                               // short envelope
	n.handleDatagram([]byte{1, 0, 0, 0, 1, 0, 0, 0, 0, 0xee, 0xbb}) // undecodable payload
	n.handleDatagram([]byte{1, 0, 0, 0, 1, 0, 0, 0, flagHeartbeat}) // valid heartbeat
	n.handleDatagram([]byte{1, 0, 0, 0, 9, 0, 0, 0, flagHeartbeat}) // another node's datagram
	st := n.Stats()
	if st.Malformed != 2 {
		t.Fatalf("Malformed = %d, want 2", st.Malformed)
	}
	if st.Misrouted != 1 {
		t.Fatalf("Misrouted = %d, want 1", st.Misrouted)
	}
}

// TestLiveFaultGoroutineHygiene opens and closes hardened nodes (all
// background loops enabled) repeatedly: Close must join every
// goroutine it started.
func TestLiveFaultGoroutineHygiene(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		n, err := NewNode(Config{
			ID:                ident.NodeID(i),
			Algorithm:         core.CombinedPull,
			GossipInterval:    2 * time.Millisecond,
			HeartbeatInterval: 2 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		n.Subscribe(1)
		if err := n.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Tolerate runtime background goroutines; retry to let stragglers
	// finish unwinding.
	for deadline := time.Now().Add(2 * time.Second); ; {
		after := runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d after 10 open/close cycles", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestLiveFaultDetectorSuspectsAndRevives points a node's failure
// detector at a silent peer: the peer must be suspected after the
// timeout, dropped from gossip targeting, and revived by its first
// datagram.
func TestLiveFaultDetectorSuspectsAndRevives(t *testing.T) {
	n, err := NewNode(Config{
		ID:                1,
		HeartbeatInterval: 5 * time.Millisecond,
		HeartbeatTimeout:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	// A bound socket that never answers: a crashed neighbor.
	dead, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer dead.Close()
	n.AddNeighbor(2, dead.LocalAddr().(*net.UDPAddr))

	waitFor(t, 2*time.Second, func() bool {
		return len(n.SuspectedNeighbors()) == 1
	}, "silent neighbor was never suspected")
	if got := n.Stats().NeighborsSuspected; got != 1 {
		t.Fatalf("NeighborsSuspected = %d, want 1", got)
	}

	// Any traffic from the suspect revives it.
	n.handleDatagram([]byte{2, 0, 0, 0, 1, 0, 0, 0, flagHeartbeat})
	if len(n.SuspectedNeighbors()) != 0 {
		t.Fatal("neighbor still suspected after it spoke")
	}
	if got := n.Stats().NeighborsRevived; got != 1 {
		t.Fatalf("NeighborsRevived = %d, want 1", got)
	}
}

// TestLiveFaultRequestRetryAndAbandon advertises a digest the node can
// never fetch (the gossiper does not exist): the request must be
// retried with backoff up to the cap and then abandoned.
func TestLiveFaultRequestRetryAndAbandon(t *testing.T) {
	n, err := NewNode(Config{
		ID:             1,
		Algorithm:      core.CombinedPull,
		GossipInterval: 2 * time.Millisecond,
		RequestBackoff: 2 * time.Millisecond,
		RequestRetries: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.Subscribe(7)

	n.onGossipPush(9, &wire.GossipPush{
		Gossiper: 9,
		Pattern:  7,
		Digest:   []ident.EventID{{Source: 9, Seq: 1}},
	})
	waitFor(t, 2*time.Second, func() bool {
		return n.Stats().RequestsAbandoned == 1
	}, "unanswerable request was never abandoned")
	st := n.Stats()
	if st.RequestsRetried != 2 { // attempts 2 and 3; attempt 4 would exceed the cap
		t.Fatalf("RequestsRetried = %d, want 2", st.RequestsRetried)
	}
	n.mu.Lock()
	left := len(n.pending)
	n.mu.Unlock()
	if left != 0 {
		t.Fatalf("%d pending entries survive abandonment", left)
	}
}

// TestLiveFaultPendingShedBounded floods the pending-request table
// past MaxPending: the oldest entries must be shed first and the table
// must never exceed its bound.
func TestLiveFaultPendingShedBounded(t *testing.T) {
	n, err := NewNode(Config{
		ID:             1,
		Algorithm:      core.Push,
		GossipInterval: time.Hour, // keep the retry sweep out of the way
		RequestBackoff: time.Hour,
		MaxPending:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.Subscribe(7)

	for i := 1; i <= 20; i++ {
		n.onGossipPush(9, &wire.GossipPush{
			Gossiper: 9,
			Pattern:  7,
			Digest:   []ident.EventID{{Source: 9, Seq: uint32(i)}},
		})
	}
	n.mu.Lock()
	size := len(n.pending)
	_, oldestAlive := n.pending[ident.EventID{Source: 9, Seq: 1}]
	_, newestAlive := n.pending[ident.EventID{Source: 9, Seq: 20}]
	n.mu.Unlock()
	if size != 8 {
		t.Fatalf("pending table holds %d entries, want the 8-entry bound", size)
	}
	if oldestAlive || !newestAlive {
		t.Fatalf("shed order wrong: oldest alive=%v newest alive=%v, want oldest shed first", oldestAlive, newestAlive)
	}
	if got := n.Stats().PendingShed; got != 12 {
		t.Fatalf("PendingShed = %d, want 12", got)
	}
}
