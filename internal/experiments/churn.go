package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/network"
	"repro/internal/scenario"
)

// This file contains the robustness extensions: the paper evaluates
// link loss and single-link reconfigurations, but never node churn or
// bursty (correlated) loss. xChurn sweeps a deterministic crash/restart
// plan across all five algorithms; xBurstLoss compares the default
// Bernoulli model against a Gilbert–Elliott chain calibrated to the
// same average loss rate.

// xChurn sweeps the node churn rate (crashes per second across the
// whole system; every crash self-heals after an exponentially
// distributed downtime) and plots the delivery rate of every
// algorithm. The fault plan is derived from the run seed, so the
// figure is exactly reproducible.
func xChurn(opt Options) ([]Figure, error) {
	rates := []float64{0, 0.25, 0.5, 1, 2}
	if opt.Quick {
		rates = []float64{0, 1}
	}
	const meanDown = 500 * time.Millisecond
	p0 := base(opt, 10*time.Second)
	s := sweep{
		xs:         rates,
		algorithms: deliveryAlgorithms(opt),
		configure: func(p *scenario.Params, x float64) {
			if x > 0 {
				p.FaultPlan = faults.ChurnPlan(p.Seed, p.N, x, p.Duration, meanDown)
			}
		},
		measures: []func(scenario.Result) float64{
			func(r scenario.Result) float64 { return round2(r.DeliveryRate) },
		},
	}
	series, err := s.runOne(p0)
	if err != nil {
		return nil, err
	}
	return []Figure{{
		ID:     "x-churn",
		Title:  "EXTENSION: delivery under node churn (ε=0.1, mean downtime 500ms)",
		XLabel: "churn rate (crashes per second, systemwide)",
		YLabel: "delivery rate",
		Series: series,
		Notes: []string{
			"crashed dispatchers lose all learned state and rejoin at a random attach point",
			"deliveries owed to down subscribers are excluded from Λ (they subscribed, but were dead)",
		},
	}}, nil
}

// xBurstLoss compares independent (Bernoulli) losses against bursty
// Gilbert–Elliott losses at the same average rate: epidemic recovery
// relies on temporal diversity, so correlated losses within a burst
// should cost more deliveries than the same number of independent
// ones — and pull variants (which retry across rounds) should close
// the gap better than push.
func xBurstLoss(opt Options) ([]Figure, error) {
	eps := []float64{0.05, 0.1, 0.2}
	algos := []core.Algorithm{core.Push, core.CombinedPull}
	if opt.Quick {
		eps = []float64{0.1}
		algos = []core.Algorithm{core.CombinedPull}
	}
	// Mean burst length 1/PBadToGood = 4 transmissions; DropBad = 1 so
	// the average loss is the stationary bad-state probability, and
	// PGoodToBad is solved so AvgLoss() == ε exactly.
	const pBadToGood = 0.25
	geFor := func(e float64) network.GilbertElliottConfig {
		return network.GilbertElliottConfig{
			PGoodToBad: e * pBadToGood / (1 - e),
			PBadToGood: pBadToGood,
			DropGood:   0,
			DropBad:    1,
		}
	}
	p0 := base(opt, 10*time.Second)
	fig := Figure{
		ID:     "x-burstloss",
		Title:  "EXTENSION: independent vs bursty loss at equal average rate",
		XLabel: "average loss rate ε",
		YLabel: "delivery rate",
		Notes: []string{
			"Gilbert–Elliott chain: mean burst 4 transmissions, calibrated so AvgLoss() = ε",
		},
	}
	var params []scenario.Params
	for _, a := range algos {
		for _, bursty := range []bool{false, true} {
			for _, e := range eps {
				p := p0
				p.Algorithm = a
				p.Network.LossRate = e
				p.Network.OOBLossRate = e
				if bursty {
					cfg := geFor(e)
					p.NewLossModel = func(stream func(tag int64) *rand.Rand) network.LossModel {
						return network.NewGilbertElliott(cfg, stream)
					}
				}
				params = append(params, p)
			}
		}
	}
	results, err := scenario.RunAll(params)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, a := range algos {
		for _, bursty := range []bool{false, true} {
			kind := "bernoulli"
			if bursty {
				kind = "gilbert-elliott"
			}
			s := Series{Name: fmt.Sprintf("%s, %s", a, kind)}
			for _, e := range eps {
				s.Points = append(s.Points, Point{X: e, Y: round2(results[i].DeliveryRate)})
				i++
			}
			fig.Series = append(fig.Series, s)
		}
	}
	return []Figure{fig}, nil
}
