// Package scenario assembles the full simulated system — topology,
// network, dispatchers, recovery engines, workload, reconfiguration
// driver, metrics — from one parameter set, mirroring the simulation
// setting of the paper's Sec. IV-A, and runs it to produce the
// measurements of Sec. IV-B through IV-E.
package scenario

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/adapt"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/ident"
	"repro/internal/matching"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/pubsub"
	"repro/internal/repair"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Params is one simulation configuration. DefaultParams returns the
// paper's defaults (Fig. 2); tests and experiments override individual
// fields.
type Params struct {
	// Seed drives every random stream of the run.
	Seed int64
	// N is the number of dispatchers.
	N int
	// MaxDegree bounds the overlay tree's node degree.
	MaxDegree int
	// Overlay selects the overlay family: the paper's degree-bounded
	// random tree (the zero value), Barabási–Albert scale-free, or
	// Newman–Watts small-world (see internal/topology). Non-tree kinds
	// imply duplicate-suppressing event forwarding, since their
	// redundant links would otherwise orbit every event forever.
	Overlay topology.Kind
	// NumPatterns is Π, the pattern universe size.
	NumPatterns int
	// MaxMatch bounds how many patterns one event matches.
	MaxMatch int
	// PatternsPerNode is πmax: every dispatcher subscribes to exactly
	// this many distinct patterns.
	PatternsPerNode int
	// PublishRate is the per-dispatcher publish rate in events/second
	// (Poisson arrivals).
	PublishRate float64
	// Publishers restricts publishing to the first Publishers
	// dispatchers (0 = every dispatcher publishes, the paper's
	// workload). Large-N studies use it to keep per-source event
	// chains dense — and hence seqno-gap loss detection meaningful —
	// under a bounded aggregate load.
	Publishers int
	// PublishPatterns restricts published content to the first
	// PublishPatterns patterns of the universe (0 = all Π).
	// Subscriptions still draw from the full universe, so at large Π
	// this concentrates traffic on a hot slice while the rest of the
	// pattern space only loads the routing state.
	PublishPatterns int
	// PayloadBytes is the synthetic payload size stamped on events.
	PayloadBytes uint16
	// Duration is the simulated time span.
	Duration sim.Time
	// MeasureFrom/MeasureTo bound the measurement window by publish
	// time: events published outside it do not enter delivery-rate
	// statistics (they still load the system). Zero values default to
	// [1s, Duration-2s], leaving the tail room to recover.
	MeasureFrom, MeasureTo sim.Time
	// Algorithm selects the recovery variant.
	Algorithm core.Algorithm
	// Gossip carries the gossip parameters; its Algorithm field is
	// overridden by Algorithm above.
	Gossip core.Config
	// Adapt, when non-nil, enables the closed-loop adaptive controller
	// (internal/adapt) on every engine: per-node loss/churn/latency
	// estimates drive PForward, PSource, fanout, and the round period
	// inside configured bounds. Copied into Gossip.Adapt by normalize;
	// implied (with defaults) by Algorithm == core.Hybrid; ignored
	// under NoRecovery (there is no engine to adapt). Static runs
	// (nil) keep golden metrics bit-identical.
	Adapt *adapt.Config
	// Network carries the channel model (ε lives here as LossRate).
	Network network.Config
	// ReconfigInterval is ρ: every ρ a random link breaks. Zero
	// disables reconfigurations (ρ = ∞ in the paper).
	ReconfigInterval sim.Time
	// RepairDelay is how long a broken link stays down before the
	// replacement link appears (0.1 s in the paper).
	RepairDelay sim.Time
	// Repair selects how the overlay heals after injected faults:
	// RepairOracle (the zero value) keeps the injector's omniscient
	// ReconnectAround healing; RepairSelfStabilizing disables it and
	// runs the decentralized maintenance protocol of internal/repair,
	// which detects dead neighbors and re-links from local state only.
	Repair RepairMode
	// BucketWidth is the time-series bucket (by publish time).
	BucketWidth sim.Time
	// Trace, when non-nil, records protocol activity (publishes,
	// deliveries, recoveries, transmissions, losses, reconfigurations)
	// into the given ring for post-run inspection.
	Trace *trace.Ring
	// FaultPlan, when non-nil, schedules deterministic fault injection
	// (node churn, link flaps, partitions, loss-model switches) on top
	// of the run. The plan is read-only and may be shared across runs.
	FaultPlan *faults.Plan
	// NewLossModel, when non-nil, replaces the default Bernoulli
	// channel loss with a custom model built from the run's
	// deterministic stream factory (e.g. network.NewGilbertElliott for
	// bursty loss) before the run starts.
	NewLossModel func(stream func(tag int64) *rand.Rand) network.LossModel
	// Check, when non-nil, installs runtime invariant monitors for the
	// run (see internal/check). The checker is passive — it draws no
	// randomness and schedules nothing, so results are bit-identical
	// with checking on or off — and a detected violation aborts the run
	// with a *check.Error carrying a minimal reproducer.
	Check *check.Options
	// Shards, when > 1, executes the run on that many OS threads using
	// the kernel's conservative parallel executor (sim.RunParallel):
	// node events within one network-latency lookahead window run
	// concurrently, and all shared-state effects are committed in exact
	// sequential order, so the Result is bit-identical to Shards <= 1.
	// Incompatible with Check and Trace, whose observers interleave
	// with node handlers too finely to defer.
	Shards int
	// MetricsMode selects the delivery-accounting implementation.
	// MetricsExact (the default) keeps the per-event tracker that
	// golden fixed-seed tests pin bit for bit; MetricsStreaming swaps
	// in O(1)-memory counters, a ring-buffer time series, and
	// reservoir-sampled latency quantiles for heavy-traffic runs
	// (DESIGN.md Sec. 11). The mode is invisible to the simulated
	// trajectory either way — both trackers are passive observers.
	MetricsMode MetricsMode
	// Workload shapes traffic beyond the paper's uniform model. The
	// zero value reproduces the paper exactly.
	Workload Workload
}

// RepairMode selects how the overlay heals after injected faults.
type RepairMode int

const (
	// RepairOracle is the fault injector's omniscient healing: it reads
	// global component structure and reconnects survivors directly.
	RepairOracle RepairMode = iota
	// RepairSelfStabilizing replaces oracle healing with the
	// decentralized protocol of internal/repair: dispatchers detect
	// dead neighbors, gossip candidate endpoints, and re-link under
	// local degree constraints, converging to a legal overlay without
	// any global view.
	RepairSelfStabilizing
)

// String names the mode for flags and result tables.
func (m RepairMode) String() string {
	switch m {
	case RepairOracle:
		return "oracle"
	case RepairSelfStabilizing:
		return "self-stabilizing"
	default:
		return fmt.Sprintf("RepairMode(%d)", int(m))
	}
}

// ParseRepairMode parses the string forms of RepairMode. The empty
// string means RepairOracle.
func ParseRepairMode(s string) (RepairMode, error) {
	switch s {
	case "", "oracle":
		return RepairOracle, nil
	case "self-stabilizing", "selfstabilizing", "self-stab", "selfstab":
		return RepairSelfStabilizing, nil
	default:
		return 0, fmt.Errorf("scenario: unknown repair mode %q (want oracle or self-stabilizing)", s)
	}
}

// MetricsMode selects a delivery-accounting implementation.
type MetricsMode int

const (
	// MetricsExact is the default per-event tracker: exact windowed
	// metrics, memory proportional to published events.
	MetricsExact MetricsMode = iota
	// MetricsStreaming is the O(1)-memory streaming engine: exact
	// totals, bucket-granular windowed metrics, reservoir-sampled
	// latency quantiles.
	MetricsStreaming
)

// Workload is the set of declarative traffic-shaping knobs layered on
// the paper's uniform workload. Every knob defaults to off; a zero
// Workload draws byte-identical random sequences to the pre-knob code,
// so fixed-seed golden runs are unaffected.
type Workload struct {
	// ZipfContent, when > 0, draws event content patterns from a
	// Zipf distribution with this exponent instead of uniformly:
	// pattern 0 is the hottest. Typical skews are 0.6–1.2.
	ZipfContent float64
	// ZipfSubscriptions, when > 0, draws subscription patterns with
	// the same popularity ranking, concentrating subscribers on the
	// patterns hot content hits.
	ZipfSubscriptions float64
	// HotPublishers, when > 0, concentrates HotShare of the aggregate
	// publish load on the first HotPublishers publishing dispatchers;
	// the remainder spreads over the rest. Must leave at least one
	// non-hot publisher.
	HotPublishers int
	// HotShare is the load fraction of the hot publishers, in (0, 1].
	// Defaults to 0.5 when HotPublishers is set.
	HotShare float64
	// SubChurnRate is the systemwide rate of subscription changes per
	// second (Poisson): each change picks a random dispatcher and swaps
	// one of its subscribed patterns for a fresh draw, propagating the
	// change through the normal (un)subscription protocol. Expected-
	// audience accounting follows the swap instantly while routing
	// tables converge at propagation speed, so delivery rate reflects
	// the real cost of churn — and can exceed 1: a dispatcher gaining
	// a subscription after an event was published is not in that
	// event's publish-time audience but may still receive it through
	// recovery. Incompatible with Check (the delivery monitors assume
	// stable subscriptions) and FaultPlan.
	SubChurnRate float64
}

// DefaultParams returns the paper's default simulation parameters
// (Fig. 2 plus the channel model of Sec. IV-A).
func DefaultParams() Params {
	return Params{
		Seed:             1,
		N:                100,
		MaxDegree:        4,
		NumPatterns:      70,
		MaxMatch:         3,
		PatternsPerNode:  2,
		PublishRate:      50,
		PayloadBytes:     0,
		Duration:         25 * time.Second,
		Algorithm:        core.NoRecovery,
		Gossip:           core.DefaultConfig(core.NoRecovery),
		Network:          network.DefaultConfig(),
		ReconfigInterval: 0,
		RepairDelay:      100 * time.Millisecond,
		BucketWidth:      100 * time.Millisecond,
	}
}

// normalize fills derived defaults and validates.
func (p Params) normalize() (Params, error) {
	if p.N < 2 {
		return p, fmt.Errorf("scenario: N = %d, need at least 2 dispatchers", p.N)
	}
	if p.PatternsPerNode < 0 || p.NumPatterns < 1 {
		return p, fmt.Errorf("scenario: invalid pattern parameters (πmax=%d, Π=%d)", p.PatternsPerNode, p.NumPatterns)
	}
	if p.PublishRate < 0 {
		return p, fmt.Errorf("scenario: negative publish rate %v", p.PublishRate)
	}
	if p.Publishers < 0 || p.Publishers > p.N {
		return p, fmt.Errorf("scenario: Publishers = %d out of [0, N=%d]", p.Publishers, p.N)
	}
	if p.PublishPatterns < 0 || p.PublishPatterns > p.NumPatterns {
		return p, fmt.Errorf("scenario: PublishPatterns = %d out of [0, Π=%d]", p.PublishPatterns, p.NumPatterns)
	}
	if p.Duration <= 0 {
		return p, fmt.Errorf("scenario: non-positive duration %v", p.Duration)
	}
	if p.MeasureFrom == 0 && p.MeasureTo == 0 {
		p.MeasureFrom = time.Second
		p.MeasureTo = p.Duration - 2*time.Second
		if p.MeasureTo <= p.MeasureFrom {
			p.MeasureFrom = 0
			p.MeasureTo = p.Duration
		}
	}
	if p.MeasureTo <= p.MeasureFrom {
		return p, fmt.Errorf("scenario: empty measurement window [%v, %v)", p.MeasureFrom, p.MeasureTo)
	}
	if p.BucketWidth <= 0 {
		p.BucketWidth = 100 * time.Millisecond
	}
	if p.Shards > 1 {
		if p.Check != nil {
			return p, fmt.Errorf("scenario: Shards=%d is incompatible with Check (run checks with Shards <= 1)", p.Shards)
		}
		if p.Trace != nil {
			return p, fmt.Errorf("scenario: Shards=%d is incompatible with Trace (trace with Shards <= 1)", p.Shards)
		}
	}
	if p.MetricsMode != MetricsExact && p.MetricsMode != MetricsStreaming {
		return p, fmt.Errorf("scenario: unknown MetricsMode %d", p.MetricsMode)
	}
	switch p.Overlay {
	case topology.KindTree, topology.KindScaleFree, topology.KindSmallWorld:
	default:
		return p, fmt.Errorf("scenario: unknown overlay kind %d", int(p.Overlay))
	}
	if p.Overlay != topology.KindTree && p.ReconfigInterval > 0 {
		return p, fmt.Errorf("scenario: ReconfigInterval needs the tree overlay (ReplacementLink reconnects a two-way split; %v overlays stay connected through their redundancy)", p.Overlay)
	}
	switch p.Repair {
	case RepairOracle:
	case RepairSelfStabilizing:
		if p.Shards > 1 {
			return p, fmt.Errorf("scenario: Repair=self-stabilizing is incompatible with Shards=%d (protocol rounds mutate the shared overlay)", p.Shards)
		}
		if p.ReconfigInterval > 0 {
			return p, fmt.Errorf("scenario: Repair=self-stabilizing is incompatible with ReconfigInterval (the reconfiguration driver repairs with the oracle)")
		}
	default:
		return p, fmt.Errorf("scenario: unknown RepairMode %d", int(p.Repair))
	}
	w := p.Workload
	if w.ZipfContent < 0 || w.ZipfSubscriptions < 0 {
		return p, fmt.Errorf("scenario: negative Zipf exponent (content=%v, subscriptions=%v)", w.ZipfContent, w.ZipfSubscriptions)
	}
	if w.HotPublishers < 0 {
		return p, fmt.Errorf("scenario: negative HotPublishers %d", w.HotPublishers)
	}
	if w.HotPublishers == 0 && w.HotShare != 0 {
		return p, fmt.Errorf("scenario: HotShare = %v without HotPublishers", w.HotShare)
	}
	if w.HotPublishers > 0 {
		pubs := p.N
		if p.Publishers > 0 {
			pubs = p.Publishers
		}
		if w.HotPublishers >= pubs {
			return p, fmt.Errorf("scenario: HotPublishers = %d must leave a non-hot publisher (have %d)", w.HotPublishers, pubs)
		}
		if p.Workload.HotShare == 0 {
			p.Workload.HotShare = 0.5
		}
		if s := p.Workload.HotShare; s < 0 || s > 1 {
			return p, fmt.Errorf("scenario: HotShare = %v out of (0, 1]", s)
		}
	}
	if w.SubChurnRate < 0 {
		return p, fmt.Errorf("scenario: negative SubChurnRate %v", w.SubChurnRate)
	}
	if w.SubChurnRate > 0 {
		if p.Check != nil {
			return p, fmt.Errorf("scenario: SubChurnRate is incompatible with Check (delivery monitors assume stable subscriptions)")
		}
		if p.FaultPlan != nil {
			return p, fmt.Errorf("scenario: SubChurnRate is incompatible with FaultPlan")
		}
	}
	p.Gossip.Algorithm = p.Algorithm
	if p.Adapt != nil && p.Algorithm != core.NoRecovery {
		p.Gossip.Adapt = p.Adapt
	}
	if p.Algorithm != core.NoRecovery {
		g, err := p.Gossip.Normalize()
		if err != nil {
			return p, err
		}
		p.Gossip = g
	}
	return p, nil
}

// Result carries everything one run measured.
type Result struct {
	// Params echoes the normalized configuration of the run.
	Params Params
	// DeliveryRate is the delivery rate over the measurement window.
	DeliveryRate float64
	// RecoveredShare is the fraction of window deliveries that arrived
	// via recovery.
	RecoveredShare float64
	// ReceiversPerEvent is the mean number of matching subscribers per
	// event (Fig. 7's metric).
	ReceiversPerEvent float64
	// TimeSeries is the bucketed delivery-rate curve (Fig. 3's metric).
	TimeSeries []metrics.Point
	// GossipPerDispatcher is the mean number of gossip messages sent
	// per dispatcher over the run (Figs. 9, 10).
	GossipPerDispatcher float64
	// GossipEventRatio is gossip messages / event messages (Fig. 9).
	GossipEventRatio float64
	// EventsPublished counts publish operations.
	EventsPublished uint64
	// ExpectedDeliveries/Deliveries/Recoveries are raw totals over the
	// whole run (not only the window).
	ExpectedDeliveries, Deliveries, Recoveries uint64
	// EngineStats aggregates the per-node engine counters.
	EngineStats core.Stats
	// RoutedLatencyP50/P99 are publish→delivery latency percentiles of
	// normally routed deliveries.
	RoutedLatencyP50, RoutedLatencyP99 sim.Time
	// RecoveryLatencyP50/P99 are publish→delivery latency percentiles
	// of recovered deliveries — how long a subscriber stayed without an
	// event it should have had.
	RecoveryLatencyP50, RecoveryLatencyP99 sim.Time
	// MeanPathLength is the topology's mean pairwise distance at start.
	MeanPathLength float64
	// Reconfigurations counts link breakages performed.
	Reconfigurations uint64
	// ReconfigSkips counts reconfiguration epochs that failed to break
	// a link even after bounded re-draws (e.g. an empty topology).
	ReconfigSkips uint64
	// Crashes/Restarts/LinkFlaps/Partitions count the fault-plan
	// actions performed; zero without a FaultPlan.
	Crashes, Restarts, LinkFlaps, Partitions uint64
	// NodeDowntime is the cumulative dispatcher downtime injected by
	// the fault plan over the run.
	NodeDowntime sim.Time
	// RepairAbandoned counts oracle heals the injector gave up on after
	// exhausting its retry budget; zero without a FaultPlan or with
	// self-stabilizing repair.
	RepairAbandoned uint64
	// Repair carries the self-stabilizing protocol's counters; the zero
	// value under RepairOracle.
	Repair repair.Stats
	// Adapt aggregates the adaptive controllers' trajectories (knob
	// extremes, adjustment and mode/walk switch counts, mean final
	// estimates); the zero value on static runs.
	Adapt adapt.RunStats
	// SubChurns counts subscription swaps the churn workload performed;
	// zero unless Workload.SubChurnRate is set.
	SubChurns uint64
	// KernelEvents counts simulator events processed (run cost).
	KernelEvents uint64
}

// runState is the per-worker reusable part of a run: the simulation
// kernel (whose event slab, heap, and free-list capacity survive
// Reset), the engine scratch pool, the dispatcher pool, the delivery
// tracker, and the receiver-count stamp array. One goroutine owns a
// runState at a time; Kernel.Reset bumps every slot generation and the
// pools hand back fully cleared state, so reuse cannot alias state
// between runs and every run stays deterministic under its seed. The
// zero value is ready.
type runState struct {
	k         *sim.Kernel
	pool      core.ScratchPool
	nodes     pubsub.NodePool
	tracker   *metrics.DeliveryTracker
	streaming *metrics.StreamingTracker
	stamp     []uint32 // countReceivers dedup marks, indexed by NodeID
	gen       uint32   // current stamp generation
}

// kernel returns a kernel seeded with seed, recycling the previous
// run's allocation when there is one.
func (st *runState) kernel(seed int64) *sim.Kernel {
	if st.k == nil {
		st.k = sim.New(seed)
	} else {
		st.k.Reset(seed)
	}
	return st.k
}

// countReceivers returns how many dispatchers other than the publisher
// subscribe to at least one pattern of the content. A node is counted
// once per call via the stamp array — no per-publish map.
// down, when non-nil, excludes currently crashed subscribers: a down
// dispatcher is not expected to receive anything published during its
// outage (the paper's metric only counts deliveries a fully reliable
// scenario would produce, and a reliable system does not deliver to a
// dead process).
func (st *runState) countReceivers(subIndex *pubsub.SubscriberIndex, c matching.Content, publisher ident.NodeID, n int, down func(ident.NodeID) bool) int {
	if len(st.stamp) < n {
		st.stamp = append(st.stamp, make([]uint32, n-len(st.stamp))...)
	}
	st.gen++
	if st.gen == 0 { // generation wrap: old marks could collide
		clear(st.stamp)
		st.gen = 1
	}
	count := 0
	for _, p := range c {
		for _, s := range subIndex.Subscribers(p) {
			if s != publisher && st.stamp[s] != st.gen && (down == nil || !down(s)) {
				st.stamp[s] = st.gen
				count++
			}
		}
	}
	return count
}

// Run executes one simulation.
func Run(p Params) (Result, error) {
	var st runState
	return runWith(p, &st)
}

// Runner executes simulations sequentially while reusing run state
// (kernel slab, engine scratch, stamp arrays) across them — what each
// RunAll worker does internally. Results are identical to Run: state
// reuse never leaks between runs (kernel Reset bumps every slot
// generation) and each run is deterministic under its seed. A Runner
// must not be shared between goroutines. The zero value is ready.
type Runner struct {
	st runState
}

// Run executes one simulation on the reusable state.
func (r *Runner) Run(p Params) (Result, error) {
	return runWith(p, &r.st)
}

// runWith executes one simulation on the given reusable state.
func runWith(p Params, st *runState) (Result, error) {
	p, err := p.normalize()
	if err != nil {
		return Result{}, err
	}
	k := st.kernel(p.Seed)
	topoRNG := k.NewStream(0x746f706f) // "topo"
	topo, err := topology.NewOverlay(p.Overlay, p.N, p.MaxDegree, topoRNG)
	if err != nil {
		return Result{}, fmt.Errorf("scenario: building topology: %w", err)
	}

	// inj is assigned after the engines exist; the closures below only
	// consult it at virtual run time, long after the assignment.
	var inj *faults.Injector

	var chk *check.Checker
	var nw *network.Network
	if p.Check != nil {
		copts := p.Check
		if copts.Convergence && copts.ConvergenceBound == 0 && p.Repair == RepairSelfStabilizing {
			// The decentralized protocol needs TTL rounds to purge a dead
			// leader plus settle-and-propose rounds to re-link: budget
			// TTL·Period with slack rather than the oracle's 2s default.
			o := *copts
			o.ConvergenceBound = 3 * time.Second
			copts = &o
		}
		var adCfg *adapt.Config
		if p.Gossip.Adapt != nil {
			n := p.Gossip.Adapt.Normalized(p.Gossip.GossipInterval)
			adCfg = &n
		}
		chk = check.New(copts, check.Env{
			Seed:      p.Seed,
			Algorithm: p.Algorithm.String(),
			N:         p.N,
			Adapt:     adCfg,
			Now:       k.Now,
			Stop:      k.Stop,
			Topo:      topo,
			NetConfig: p.Network,
			NodeDown:  func(id ident.NodeID) bool { return nw.NodeDown(id) },
			WasDownAt: func(id ident.NodeID, at sim.Time) bool {
				return inj != nil && inj.WasDownAt(id, at)
			},
			LastFaultAt: func() sim.Time {
				if inj == nil {
					return 0
				}
				return inj.LastFaultAt()
			},
		})
		topo.SetMutationHook(chk.OnTopologyMutation)
	}

	traffic := metrics.NewTraffic(p.N)
	var obs network.Observer = traffic
	if p.Trace != nil {
		obs = network.MultiObserver(traffic, &traceObserver{ring: p.Trace, now: k.Now})
	}
	if chk != nil {
		obs = network.MultiObserver(obs, chk)
	}
	nw = network.New(k, topo, p.Network, obs)
	if chk != nil {
		nw.SetArrivalObserver(chk)
	}
	if p.NewLossModel != nil {
		nw.SetLossModel(p.NewLossModel(k.NewStream))
	}
	var tracker metrics.Tracker
	if p.MetricsMode == MetricsStreaming {
		// The ring is sized to span the whole run (plus slack) so no
		// publish bucket ages out mid-run; the 64Ki cap (2.5 MiB of
		// cells) only binds past ~1.8 h of simulated time at the
		// default 100 ms bucket, where the oldest buckets fold into an
		// aggregate and leave windowed queries. Reservoir seeds derive
		// from the run seed but never touch kernel streams.
		ring := int(p.Duration/p.BucketWidth) + 2
		if ring > 1<<16 {
			ring = 1 << 16
		}
		cfg := metrics.StreamingConfig{
			Now:         k.Now,
			Seed:        p.Seed,
			BucketWidth: p.BucketWidth,
			RingBuckets: ring,
		}
		if st.streaming == nil {
			st.streaming = metrics.NewStreamingTracker(cfg)
		} else {
			st.streaming.Reset(cfg)
		}
		tracker = st.streaming
	} else {
		if st.tracker == nil {
			st.tracker = metrics.NewDeliveryTracker(k.Now)
		} else {
			st.tracker.Reset(k.Now)
		}
		tracker = st.tracker
	}

	onDeliver := tracker.OnDeliver
	if p.FaultPlan != nil {
		// Downtime-aware Λ accounting: an event published while this
		// subscriber was down was never expected of it (countReceivers
		// skipped it at publish time), so a later delivery — e.g. the
		// restarted node recovering a sequence gap that spans its outage
		// — must not enter the delivery statistics either.
		onDeliver = func(node ident.NodeID, ev *wire.Event, recovered bool) {
			if inj != nil && inj.WasDownAt(node, sim.Time(ev.PublishedAt)) {
				return
			}
			tracker.OnDeliver(node, ev, recovered)
		}
	}
	if p.Trace != nil {
		ring := p.Trace
		prev := onDeliver
		onDeliver = func(node ident.NodeID, ev *wire.Event, recovered bool) {
			kind := trace.Deliver
			if recovered {
				kind = trace.Recover
			}
			ring.Add(trace.Record{At: k.Now(), Kind: kind, Node: node, Peer: ident.None, Event: ev.ID})
			prev(node, ev, recovered)
		}
	}
	if chk != nil {
		// Outermost: the checker must see every delivery, including the
		// ones the downtime filter hides from the tracker.
		prev := onDeliver
		onDeliver = func(node ident.NodeID, ev *wire.Event, recovered bool) {
			chk.OnDeliver(node, ev, recovered)
			prev(node, ev, recovered)
		}
	}
	if p.Shards > 1 {
		// Deliveries update shared tracker state; inside a parallel
		// window they are deferred through the delivering node's Proc
		// and replayed at the commit barrier in exact sequential order.
		// (The downtime filter reads injector state there; solo global
		// events are the only mutators, so the commit sees the same
		// state the in-window delivery did.)
		base := onDeliver
		onDeliver = func(node ident.NodeID, ev *wire.Event, recovered bool) {
			if pr := k.Proc(int32(node)); pr.Deferring() {
				pr.Defer(func() { base(node, ev, recovered) })
				return
			}
			base(node, ev, recovered)
		}
	}
	pcfg := pubsub.Config{
		RecordRoutes: p.Algorithm.NeedsRoutes(),
		// Cyclic overlays flood events over redundant links; only
		// first-arrival dedup terminates the flood. The tree keeps the
		// paper's forwarding untouched.
		DedupForward: p.Overlay != topology.KindTree,
		OnDeliver:    onDeliver,
	}
	nodes := make([]*pubsub.Node, p.N)
	for i := range nodes {
		id := ident.NodeID(i)
		nodes[i] = pubsub.NewNodeIn(id, k, nw, topo.Neighbors(id), pcfg, &st.nodes)
	}

	// Stable subscription state (paper Sec. IV-A): πmax distinct
	// patterns per dispatcher, installed before the run starts.
	u := matching.Universe{NumPatterns: p.NumPatterns, MaxMatch: p.MaxMatch}
	subRNG := k.NewStream(0x73756273) // "subs"
	var zipfSubs *matching.ZipfDist
	if s := p.Workload.ZipfSubscriptions; s > 0 {
		zipfSubs = matching.NewZipfDist(p.NumPatterns, s)
	}
	subs := make([][]ident.PatternID, p.N)
	for i := range subs {
		if zipfSubs != nil {
			subs[i] = u.ZipfSubscriptions(p.PatternsPerNode, zipfSubs, subRNG)
		} else {
			subs[i] = u.RandomSubscriptions(p.PatternsPerNode, subRNG)
		}
	}
	pubsub.InstallStableSubscriptions(topo, nodes, subs)
	if chk != nil {
		chk.SetSubscriptions(subs)
	}

	// The dense per-pattern subscriber index gives O(content)
	// expected-receiver counting at publish time and O(log n) updates
	// under subscription churn.
	subIndex := pubsub.NewSubscriberIndex(p.NumPatterns, subs)

	engines := make([]*core.Engine, 0, p.N)
	if p.Algorithm != core.NoRecovery {
		for _, n := range nodes {
			e, err := core.NewEngineIn(n, p.Gossip, &st.pool)
			if err != nil {
				return Result{}, fmt.Errorf("scenario: building engine: %w", err)
			}
			e.Start()
			engines = append(engines, e)
		}
	}
	if chk != nil {
		for i, e := range engines {
			e := e
			chk.AddAudit(fmt.Sprintf("engine %d", i),
				func() error { return e.AuditInvariants(k.Now()) })
			id := ident.NodeID(i)
			e.SetAdaptObserver(func(s adapt.Snapshot) { chk.OnAdaptRound(id, s) })
		}
	}

	if p.FaultPlan != nil {
		gossipers := make([]faults.Gossiper, p.N)
		for i, e := range engines {
			gossipers[i] = e
		}
		repairDelay := p.RepairDelay
		if repairDelay <= 0 {
			repairDelay = 100 * time.Millisecond
		}
		inj = faults.NewInjector(faults.Config{
			Kernel:         k,
			Topo:           topo,
			Net:            nw,
			Nodes:          nodes,
			Engines:        gossipers,
			RepairDelay:    repairDelay,
			Trace:          p.Trace,
			DisableHealing: p.Repair == RepairSelfStabilizing,
		})
		if err := inj.Schedule(p.FaultPlan); err != nil {
			return Result{}, fmt.Errorf("scenario: scheduling fault plan: %w", err)
		}
	}

	// Self-stabilizing maintenance: the protocol runs whether or not a
	// fault plan is scheduled — on an undamaged overlay it settles and
	// goes quiescent, which the convergence monitor relies on.
	var prot *repair.Protocol
	if p.Repair == RepairSelfStabilizing {
		prot, err = repair.New(repair.Config{
			Kernel: k,
			Topo:   topo,
			IsDown: func(id ident.NodeID) bool { return inj != nil && inj.IsDown(id) },
			OnLinkUp: func(a, b ident.NodeID) {
				if p.Trace != nil {
					p.Trace.Add(trace.Record{At: k.Now(), Kind: trace.LinkUp, Node: a, Peer: b})
				}
				nodes[a].OnLinkUp(b)
				nodes[b].OnLinkUp(a)
			},
			OnLinkDown: func(a, b ident.NodeID) {
				if p.Trace != nil {
					p.Trace.Add(trace.Record{At: k.Now(), Kind: trace.LinkDown, Node: a, Peer: b})
				}
				nodes[a].OnLinkDown(b)
				nodes[b].OnLinkDown(a)
			},
		})
		if err != nil {
			return Result{}, fmt.Errorf("scenario: building repair protocol: %w", err)
		}
		prot.Start()
	}

	// Workload: every publishing dispatcher publishes with Poisson
	// arrivals. Publishers=0 (the default) means all of them; content
	// draws come from the leading PublishPatterns slice of the
	// universe when set, from all of Π otherwise.
	var published uint64
	if p.PublishRate > 0 {
		wu := u
		if p.PublishPatterns > 0 {
			wu.NumPatterns = p.PublishPatterns
		}
		var zipfContent *matching.ZipfDist
		if s := p.Workload.ZipfContent; s > 0 {
			zipfContent = matching.NewZipfDist(wu.NumPatterns, s)
		}
		pubs := len(nodes)
		if p.Publishers > 0 && p.Publishers < pubs {
			pubs = p.Publishers
		}
		// Per-publisher rate: uniform PublishRate by default; with a
		// hot-spot the aggregate load pubs·PublishRate is preserved but
		// HotShare of it concentrates on the first HotPublishers nodes.
		rateOf := func(i int) float64 {
			h := p.Workload.HotPublishers
			if h <= 0 {
				return p.PublishRate
			}
			total := p.PublishRate * float64(pubs)
			if i < h {
				return p.Workload.HotShare * total / float64(h)
			}
			return (1 - p.Workload.HotShare) * total / float64(pubs-h)
		}
		for i := 0; i < pubs; i++ {
			rate := rateOf(i)
			if rate <= 0 { // HotShare=1 leaves cold publishers silent
				continue
			}
			meanGap := float64(time.Second) / rate
			node := nodes[i]
			pr := node.Proc()
			wlRNG := k.NewStream(0x776f726b + int64(i)) // "work" + node
			var publish func()
			schedule := func() {
				gap := sim.Time(wlRNG.ExpFloat64() * meanGap)
				pr.After(gap, publish)
			}
			// The post-publish accounting touches state shared across
			// nodes (the receiver-count stamp array, the tracker, the
			// publish counter), so it is deferred through the node's
			// Proc: immediate under sequential execution, replayed at
			// the commit barrier inside a parallel window. Moving
			// countReceivers after node.Publish is unobservable — the
			// two touch disjoint state and draw no randomness.
			finish := func(content matching.Content, ev *wire.Event) {
				var down func(ident.NodeID) bool
				if inj != nil {
					down = inj.IsDown
				}
				expected := st.countReceivers(subIndex, content, node.ID(), p.N, down)
				tracker.OnPublish(ev.ID, expected, k.Now())
				if chk != nil {
					chk.OnPublish(node.ID(), ev, expected)
				}
				if p.Trace != nil {
					p.Trace.Add(trace.Record{At: k.Now(), Kind: trace.Publish, Node: node.ID(), Peer: ident.None, Event: ev.ID})
				}
				published++
			}
			publish = func() {
				if inj != nil && inj.IsDown(node.ID()) {
					// A crashed dispatcher publishes nothing; its Poisson
					// clock keeps ticking so the post-restart workload is
					// unchanged.
					schedule()
					return
				}
				var content matching.Content
				if zipfContent != nil {
					content = wu.ZipfContent(zipfContent, wlRNG)
				} else {
					content = wu.RandomContent(wlRNG)
				}
				ev := node.Publish(content, p.PayloadBytes)
				if pr.Deferring() {
					pr.Defer(func() { finish(content, ev) })
				} else {
					finish(content, ev) // no closure on the sequential path
				}
				schedule()
			}
			schedule()
		}
	}

	// Subscription churn: Poisson-spaced swaps, each replacing one
	// subscribed pattern of a random dispatcher with a fresh draw. The
	// change propagates through the real (un)subscription protocol —
	// routing tables converge at message speed — while the expected-
	// audience index updates instantly, so the measured delivery rate
	// pays the true propagation cost of churn. Runs as global kernel
	// events (solo under the parallel executor, like reconfigurations).
	var subChurns uint64
	if rate := p.Workload.SubChurnRate; rate > 0 {
		churnRNG := k.NewStream(0x63687572) // "chur"
		meanGap := float64(time.Second) / rate
		var churn func()
		churn = func() {
			node := nodes[churnRNG.Intn(p.N)]
			local := node.LocalPatterns()
			if len(local) > 0 && len(local) < p.NumPatterns {
				old := local[churnRNG.Intn(len(local))]
				// Bounded re-draws: under heavy skew the hot patterns
				// are often already subscribed.
				for attempt := 0; attempt < 16; attempt++ {
					var repl ident.PatternID
					if zipfSubs != nil {
						repl = zipfSubs.Draw(churnRNG)
					} else {
						repl = ident.PatternID(churnRNG.Intn(p.NumPatterns))
					}
					if node.IsLocal(repl) {
						continue
					}
					node.Unsubscribe(old)
					node.Subscribe(repl)
					subIndex.Remove(old, node.ID())
					subIndex.Add(repl, node.ID())
					subChurns++
					break
				}
			}
			k.After(sim.Time(churnRNG.ExpFloat64()*meanGap), churn)
		}
		k.After(sim.Time(churnRNG.ExpFloat64()*meanGap), churn)
	}

	// Reconfiguration driver (paper Sec. IV-A): every ρ a random link
	// breaks; after RepairDelay a replacement reconnects the two sides.
	var reconfigs, reconfigSkips uint64
	if p.ReconfigInterval > 0 {
		recRNG := k.NewStream(0x7265636f) // "reco"
		var reconfigure func()
		reconfigure = func() {
			// A draw can race a concurrent fault or repair that removed
			// the chosen link in the same instant; rather than silently
			// dropping the epoch, re-draw a bounded number of times and
			// count the epoch as skipped only when no link could break.
			broke := false
			for attempt := 0; attempt < 8 && topo.NumLinks() > 0; attempt++ {
				broken := topo.RandomLink(recRNG)
				if err := topo.RemoveLink(broken.A, broken.B); err != nil {
					continue
				}
				broke = true
				reconfigs++
				if p.Trace != nil {
					p.Trace.Add(trace.Record{At: k.Now(), Kind: trace.LinkDown, Node: broken.A, Peer: broken.B})
				}
				nodes[broken.A].OnLinkDown(broken.B)
				nodes[broken.B].OnLinkDown(broken.A)
				k.After(p.RepairDelay, func() {
					oracleRepair(k, topo, nodes, broken, recRNG, p.RepairDelay, p.Trace, inj)
				})
				break
			}
			if !broke {
				reconfigSkips++
			}
			k.After(p.ReconfigInterval, reconfigure)
		}
		k.After(p.ReconfigInterval, reconfigure)
	}

	if p.Shards > 1 {
		// The lookahead is the minimum virtual-time latency of any
		// cross-node interaction: tree arrivals add at least PropDelay,
		// out-of-band messages at least OOBBaseDelay (plus a hop). A
		// zero lookahead degenerates to the sequential executor inside
		// RunParallel.
		la := p.Network.PropDelay
		if p.Network.OOBBaseDelay < la {
			la = p.Network.OOBBaseDelay
		}
		k.RunParallel(p.Duration, p.Shards, la)
	} else {
		k.Run(p.Duration)
	}
	for _, e := range engines {
		e.Stop()
	}
	if chk != nil {
		// Verdict before any pooled state is released: the audits walk
		// live engine buffers.
		if err := chk.Finish(tracker); err != nil {
			return Result{}, err
		}
	}

	res := Result{
		Params:              p,
		DeliveryRate:        tracker.Rate(p.MeasureFrom, p.MeasureTo),
		RecoveredShare:      tracker.RecoveredShare(p.MeasureFrom, p.MeasureTo),
		ReceiversPerEvent:   tracker.ReceiversPerEvent(p.MeasureFrom, p.MeasureTo),
		TimeSeries:          tracker.TimeSeries(p.BucketWidth),
		GossipPerDispatcher: traffic.GossipPerDispatcher(),
		GossipEventRatio:    traffic.GossipEventRatio(),
		EventsPublished:     published,
		MeanPathLength:      topo.MeanPairwiseDistance(),
		Reconfigurations:    reconfigs,
		ReconfigSkips:       reconfigSkips,
		SubChurns:           subChurns,
		KernelEvents:        k.Processed(),
	}
	if inj != nil {
		fs := inj.Stats()
		res.Crashes = fs.Crashes
		res.Restarts = fs.Restarts
		res.LinkFlaps = fs.LinkFlaps
		res.Partitions = fs.Partitions
		res.NodeDowntime = inj.Downtime(p.Duration)
		res.RepairAbandoned = fs.RepairAbandoned
	}
	if prot != nil {
		res.Repair = prot.Stats()
	}
	res.ExpectedDeliveries, res.Deliveries, res.Recoveries = tracker.Totals()
	if rl := tracker.RoutedLatency(); rl.Count() > 0 {
		res.RoutedLatencyP50 = rl.Quantile(0.5)
		res.RoutedLatencyP99 = rl.Quantile(0.99)
	}
	if cl := tracker.RecoveryLatency(); cl.Count() > 0 {
		res.RecoveryLatencyP50 = cl.Quantile(0.5)
		res.RecoveryLatencyP99 = cl.Quantile(0.99)
	}
	for _, e := range engines {
		s := e.Stats()
		res.EngineStats.RoundsStarted += s.RoundsStarted
		res.EngineStats.RoundsSkipped += s.RoundsSkipped
		res.EngineStats.LossesDetected += s.LossesDetected
		res.EngineStats.Recovered += s.Recovered
		res.EngineStats.DuplicateRecoveries += s.DuplicateRecoveries
		res.EngineStats.RequestsSent += s.RequestsSent
		res.EngineStats.RetransmitsServed += s.RetransmitsServed
		if as, ok := e.AdaptStats(); ok {
			res.Adapt.Merge(as)
		}
		e.Release()
	}
	for _, n := range nodes {
		n.Release()
	}
	return res, nil
}

// oracleRepair reconnects the two components around broken, retrying
// when overlapping reconfigurations temporarily consumed every degree
// slot. With fault injection active, a replacement touching a crashed
// dispatcher is retried too: connecting a dead process repairs nothing
// (and its isolated component would accept a cycle-forming link once it
// rejoins elsewhere).
func oracleRepair(k *sim.Kernel, topo *topology.Tree, nodes []*pubsub.Node, broken topology.Link, rng *rand.Rand, retry sim.Time, ring *trace.Ring, inj *faults.Injector) {
	repl, err := topo.ReplacementLink(broken, rng)
	if err != nil {
		k.After(retry, func() { oracleRepair(k, topo, nodes, broken, rng, retry, ring, inj) })
		return
	}
	if inj != nil && (inj.IsDown(repl.A) || inj.IsDown(repl.B)) {
		k.After(retry, func() { oracleRepair(k, topo, nodes, broken, rng, retry, ring, inj) })
		return
	}
	if err := topo.AddLink(repl.A, repl.B); err != nil {
		k.After(retry, func() { oracleRepair(k, topo, nodes, broken, rng, retry, ring, inj) })
		return
	}
	if ring != nil {
		ring.Add(trace.Record{At: k.Now(), Kind: trace.LinkUp, Node: repl.A, Peer: repl.B})
	}
	nodes[repl.A].OnLinkUp(repl.B)
	nodes[repl.B].OnLinkUp(repl.A)
}

// traceObserver adapts a trace ring to the network.Observer interface.
type traceObserver struct {
	ring *trace.Ring
	now  func() sim.Time
}

var _ network.Observer = (*traceObserver)(nil)

// OnSend implements network.Observer.
func (t *traceObserver) OnSend(from, to ident.NodeID, msg wire.Message, _ bool) {
	t.ring.Add(trace.Record{At: t.now(), Kind: trace.Send, Node: from, Peer: to, Msg: msg.Kind(), Event: eventOf(msg)})
}

// OnLoss implements network.Observer.
func (t *traceObserver) OnLoss(from, to ident.NodeID, msg wire.Message, _ bool) {
	t.ring.Add(trace.Record{At: t.now(), Kind: trace.Loss, Node: from, Peer: to, Msg: msg.Kind(), Event: eventOf(msg)})
}

func eventOf(msg wire.Message) ident.EventID {
	if ev, ok := msg.(*wire.Event); ok {
		return ev.ID
	}
	return ident.EventID{}
}
