package live

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/matching"
	"repro/internal/wire"
)

// dispatcherModes runs a subtest once with the mmsg batch transport (if
// the platform has one) and once with the portable fallback, so both
// I/O paths stay covered by every dispatcher test.
func dispatcherModes(t *testing.T, run func(t *testing.T, dcfg DispatcherConfig)) {
	modes := []struct {
		name    string
		disable bool
	}{{"batchio", false}, {"portable", true}}
	for _, m := range modes {
		if !m.disable && !batchTransportAvailable {
			continue
		}
		t.Run(m.name, func(t *testing.T) {
			run(t, DispatcherConfig{Sockets: 2, Batch: 16, DisableBatchIO: m.disable})
		})
	}
}

func TestDispatcherHostedRoutingDelivers(t *testing.T) {
	dispatcherModes(t, func(t *testing.T, dcfg DispatcherConfig) {
		var delivered sync.Map
		c, err := NewDispatcherCluster(8, 4, 42, dcfg, func(i int) Config {
			id := ident.NodeID(i)
			return Config{
				OnDeliver: func(ev *wire.Event, recovered bool) {
					v, _ := delivered.LoadOrStore(id, new(atomic.Int64))
					v.(*atomic.Int64).Add(1)
				},
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if c.Disp.BatchIO() == dcfg.DisableBatchIO {
			t.Fatalf("BatchIO() = %v with DisableBatchIO = %v", c.Disp.BatchIO(), dcfg.DisableBatchIO)
		}

		c.Nodes[2].Subscribe(7)
		c.Nodes[5].Subscribe(7)
		waitFor(t, 2*time.Second, func() bool {
			for _, n := range c.Nodes {
				if n.KnownPatternCount() == 0 {
					return false
				}
			}
			return true
		}, "subscription propagation")

		c.Nodes[0].Publish(matching.Content{7})
		c.Nodes[0].Publish(matching.Content{7, 9})
		c.Nodes[0].Publish(matching.Content{3})

		count := func(id ident.NodeID) int64 {
			v, ok := delivered.Load(id)
			if !ok {
				return 0
			}
			return v.(*atomic.Int64).Load()
		}
		waitFor(t, 2*time.Second, func() bool {
			return count(2) == 2 && count(5) == 2
		}, "event delivery to both subscribers")
		time.Sleep(50 * time.Millisecond)
		for i := 0; i < 8; i++ {
			id := ident.NodeID(i)
			if id == 2 || id == 5 {
				continue
			}
			if got := count(id); got != 0 {
				t.Fatalf("non-subscriber %v got %d deliveries", id, got)
			}
		}
	})
}

// TestDispatcherCoalescingKeepsEveryMessage drives a burst far larger
// than one datagram between two hosted nodes: the coalescing writer
// must deliver every event exactly once, splitting batches at the
// datagram budget rather than dropping or duplicating.
func TestDispatcherCoalescingKeepsEveryMessage(t *testing.T) {
	dispatcherModes(t, func(t *testing.T, dcfg DispatcherConfig) {
		const events = 500
		c, err := NewDispatcherCluster(2, 2, 9, dcfg, func(i int) Config { return Config{} })
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.Nodes[1].Subscribe(4)
		waitFor(t, 2*time.Second, func() bool {
			return c.Nodes[0].KnownPatternCount() == 1
		}, "subscription propagation")
		for i := 0; i < events; i++ {
			c.Nodes[0].Publish(matching.Content{4})
		}
		waitFor(t, 5*time.Second, func() bool {
			return c.Nodes[1].Stats().Delivered == events
		}, "every coalesced event delivered")
		if got := c.Nodes[1].Stats().Delivered; got != events {
			t.Fatalf("Delivered = %d, want %d (duplicates or losses in coalescing)", got, events)
		}
	})
}

// TestDispatcherRecoveryWithLoss is the package's headline recovery
// test re-run on the hosted transport: lossy links, real gossip, every
// node on one dispatcher.
func TestDispatcherRecoveryWithLoss(t *testing.T) {
	dispatcherModes(t, func(t *testing.T, dcfg DispatcherConfig) {
		const (
			nodes  = 8
			events = 80
		)
		c, err := NewDispatcherCluster(nodes, 4, 11, dcfg, func(i int) Config {
			return Config{
				Algorithm:      core.Push,
				GossipInterval: 10 * time.Millisecond,
				DropProb:       0.3,
				PForward:       1.0,
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for i := 1; i < nodes; i++ {
			c.Nodes[i].Subscribe(7)
		}
		waitFor(t, 2*time.Second, func() bool {
			return c.Nodes[0].KnownPatternCount() >= 1
		}, "subscription propagation")
		for e := 0; e < events; e++ {
			c.Nodes[0].Publish(matching.Content{7})
			time.Sleep(time.Millisecond)
		}
		waitFor(t, 30*time.Second, func() bool {
			for i := 1; i < nodes; i++ {
				if c.Nodes[i].Stats().Delivered < events {
					return false
				}
			}
			return true
		}, "recovery of dropped events on hosted transport")
		var recovered, dropped uint64
		for _, n := range c.Nodes {
			recovered += n.Stats().Recovered
			dropped += n.Stats().DroppedInject
		}
		if dropped == 0 {
			t.Fatal("loss injection never fired — test proves nothing")
		}
		if recovered == 0 {
			t.Fatal("no events recovered via gossip")
		}
	})
}

// TestDispatcherMisroutedCounted sends datagrams for nodes the
// dispatcher does not host: they must be counted and dropped, never
// delivered or crashed on.
func TestDispatcherMisroutedCounted(t *testing.T) {
	d, err := NewDispatcher(DispatcherConfig{Sockets: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	n, err := d.AddNode(Config{ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	src, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	shardAddr := n.Addr()
	// dest 99 is not hosted; dest 1 is. Both from "node 2".
	if _, err := src.WriteToUDP([]byte{2, 0, 0, 0, 99, 0, 0, 0, flagHeartbeat}, shardAddr); err != nil {
		t.Fatal(err)
	}
	if _, err := src.WriteToUDP([]byte{2, 0, 0, 0, 1, 0, 0, 0, 0, 0xee}, shardAddr); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		return d.Stats().Misrouted == 1 && n.Stats().Malformed == 1
	}, "misrouted and malformed datagrams counted")
}

// TestDispatcherNodeCloseLeavesOthersRunning closes one hosted node:
// its traffic becomes misrouted, the other nodes keep delivering, and
// the shard sockets stay up.
func TestDispatcherNodeCloseLeavesOthersRunning(t *testing.T) {
	c, err := NewDispatcherCluster(4, 4, 21, DispatcherConfig{Sockets: 1}, func(i int) Config {
		return Config{}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	nb := c.Topo.Neighbors(0)[0]
	c.Nodes[nb].Subscribe(3)
	waitFor(t, 2*time.Second, func() bool {
		return c.Nodes[0].KnownPatternCount() >= 1
	}, "subscription propagation")
	var victim ident.NodeID = ident.None
	for i := 1; i < 4; i++ {
		if ident.NodeID(i) != nb {
			victim = ident.NodeID(i)
			break
		}
	}
	if err := c.Nodes[victim].Close(); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 20; e++ {
		c.Nodes[0].Publish(matching.Content{3})
	}
	waitFor(t, 2*time.Second, func() bool {
		return c.Nodes[nb].Stats().Delivered == 20
	}, "delivery despite closed co-hosted node")
}

func TestDispatcherDuplicateNodeID(t *testing.T) {
	d, err := NewDispatcher(DispatcherConfig{Sockets: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.AddNode(Config{ID: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddNode(Config{ID: 1}); err == nil {
		t.Fatal("hosting a duplicate node ID succeeded")
	}
}

// TestDispatcherCloseIsIdempotent double-closes both the dispatcher and
// a hosted node.
func TestDispatcherCloseIsIdempotent(t *testing.T) {
	d, err := NewDispatcher(DispatcherConfig{Sockets: 1})
	if err != nil {
		t.Fatal(err)
	}
	n, err := d.AddNode(Config{ID: 1, Algorithm: core.Push})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDispatcherStandaloneInterop mixes transports: a standalone node
// and a dispatcher-hosted node wired as neighbors must interoperate —
// the envelope is the contract, not the transport.
func TestDispatcherStandaloneInterop(t *testing.T) {
	d, err := NewDispatcher(DispatcherConfig{Sockets: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	hosted, err := d.AddNode(Config{ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	alone, err := NewNode(Config{ID: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer alone.Close()

	dir := map[ident.NodeID]*net.UDPAddr{1: hosted.Addr(), 2: alone.Addr()}
	hosted.SetDirectory(dir)
	alone.SetDirectory(dir)
	hosted.AddNeighbor(2, alone.Addr())
	alone.AddNeighbor(1, hosted.Addr())

	alone.Subscribe(5)
	waitFor(t, 2*time.Second, func() bool {
		return hosted.KnownPatternCount() == 1
	}, "subscription crossed transports")
	hosted.Publish(matching.Content{5})
	waitFor(t, 2*time.Second, func() bool {
		return alone.Stats().Delivered == 1
	}, "delivery from hosted to standalone")
	alone.Publish(matching.Content{5})
	time.Sleep(50 * time.Millisecond)
	if got := hosted.Stats().Delivered; got != 0 {
		t.Fatalf("hosted non-subscriber delivered %d events", got)
	}
}
