package wire

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/ident"
	"repro/internal/matching"
)

func TestBatchFrameRoundTrip(t *testing.T) {
	msgs := []Message{
		&Subscribe{Pattern: 7},
		&Event{
			ID:      ident.EventID{Source: 3, Seq: 9},
			Content: matching.Content{1, 2},
			Tags:    []ident.PatternSeq{{Pattern: 1, Seq: 4}},
		},
		&Request{Requester: 5, IDs: []ident.EventID{{Source: 3, Seq: 9}}},
	}
	var buf []byte
	for _, m := range msgs {
		if !Fits(m) {
			t.Fatalf("%T does not fit a frame", m)
		}
		buf = AppendFrame(buf, m)
	}
	var got []Message
	for len(buf) > 0 {
		frame, rest, err := NextFrame(buf)
		if err != nil {
			t.Fatalf("NextFrame: %v", err)
		}
		m, err := Decode(frame)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		got = append(got, m)
		buf = rest
	}
	if len(got) != len(msgs) {
		t.Fatalf("decoded %d messages, want %d", len(got), len(msgs))
	}
	for i := range msgs {
		// Compare re-encodings: decode may materialize empty slices where
		// the original had nil, which is semantically identical.
		if !reflect.DeepEqual(got[i].Append(nil), msgs[i].Append(nil)) {
			t.Fatalf("message %d: got %+v, want %+v", i, got[i], msgs[i])
		}
	}
}

func TestBatchFrameTruncation(t *testing.T) {
	full := AppendFrame(nil, &Subscribe{Pattern: 1})
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := NextFrame(full[:cut]); cut > 0 && !errors.Is(err, ErrTruncated) {
			t.Fatalf("NextFrame of %d/%d bytes: err = %v, want ErrTruncated", cut, len(full), err)
		}
	}
	// A frame header lying about its length must not read past the buffer.
	if _, _, err := NextFrame([]byte{0xff, 0xff, 1, 2, 3}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("lying header: err = %v, want ErrTruncated", err)
	}
}

func TestBatchFrameSizeBound(t *testing.T) {
	// A Retransmit stuffed past MaxFrame must be rejected by Fits and
	// panic in AppendFrame — the same discipline as oversized counts.
	big := &Retransmit{Responder: 1}
	for i := 0; big.WireSize() <= MaxFrame; i++ {
		big.Events = append(big.Events, &Event{
			ID:      ident.EventID{Source: 1, Seq: uint32(i)},
			Content: make(matching.Content, 16),
		})
	}
	if Fits(big) {
		t.Fatal("oversized message reported as fitting")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AppendFrame of oversized message did not panic")
		}
	}()
	AppendFrame(nil, big)
}
