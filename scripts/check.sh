#!/bin/sh
# Pre-PR verification: vet, build, then the full test suite under the
# race detector, which exercises the parallel sweep runner
# (scenario.RunAll) and the live UDP runtime over real goroutines.
#
#   ./scripts/check.sh          # full suite
#   ./scripts/check.sh -short   # skip the long calibration runs
set -eu
cd "$(dirname "$0")/.."
set -x
go vet ./...
go build ./...
go test -race "$@" ./...
