package trace

import (
	"strings"
	"testing"
	"time"

	"repro/internal/ident"
	"repro/internal/wire"
)

func rec(at int, k Kind, node int) Record {
	return Record{
		At:   time.Duration(at) * time.Millisecond,
		Kind: k,
		Node: ident.NodeID(node),
		Peer: ident.None,
	}
}

func TestRingRetainsLastN(t *testing.T) {
	r := New(3)
	for i := 1; i <= 5; i++ {
		r.Add(rec(i, Publish, i))
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d, want 5", r.Total())
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("retained %d, want 3", len(snap))
	}
	for i, want := range []int{3, 4, 5} {
		if snap[i].Node != ident.NodeID(want) {
			t.Fatalf("snapshot[%d].Node = %v, want %d (oldest first)", i, snap[i].Node, want)
		}
	}
}

func TestRingPartialFill(t *testing.T) {
	r := New(10)
	r.Add(rec(1, Publish, 1))
	r.Add(rec(2, Deliver, 2))
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Kind != Publish || snap[1].Kind != Deliver {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestRingCounts(t *testing.T) {
	r := New(2) // smaller than the stream: counts still see everything
	r.Add(rec(1, Publish, 1))
	r.Add(rec(2, Deliver, 2))
	r.Add(rec(3, Deliver, 3))
	r.Add(rec(4, Recover, 4))
	if r.Count(Deliver) != 2 || r.Count(Publish) != 1 || r.Count(Recover) != 1 {
		t.Fatal("lifetime counts wrong")
	}
	if r.Count(Loss) != 0 {
		t.Fatal("unseen kind counted")
	}
}

func TestFilterAndForEvent(t *testing.T) {
	r := New(10)
	id := ident.EventID{Source: 3, Seq: 9}
	r.Add(Record{Kind: Publish, Node: 3, Peer: ident.None, Event: id})
	r.Add(Record{Kind: Deliver, Node: 5, Peer: ident.None, Event: id})
	r.Add(Record{Kind: Deliver, Node: 6, Peer: ident.None, Event: ident.EventID{Source: 1, Seq: 1}})
	got := r.ForEvent(id)
	if len(got) != 2 {
		t.Fatalf("ForEvent returned %d records, want 2", len(got))
	}
	losses := r.Filter(func(rec Record) bool { return rec.Kind == Loss })
	if losses != nil {
		t.Fatalf("Filter(Loss) = %v, want none", losses)
	}
}

func TestRecordString(t *testing.T) {
	r := Record{
		At:    1500 * time.Microsecond,
		Kind:  Send,
		Node:  2,
		Peer:  5,
		Event: ident.EventID{Source: 2, Seq: 7},
		Msg:   wire.KindEvent,
	}
	s := r.String()
	for _, want := range []string{"send", "node=2", "peer=5", "event(2:7)", "msg=event"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Record.String() = %q missing %q", s, want)
		}
	}
	if Kind(99).String() != "kind(99)" {
		t.Fatal("unknown kind String wrong")
	}
}

func TestDump(t *testing.T) {
	r := New(4)
	r.Add(rec(1, Publish, 1))
	r.Add(rec(2, LinkDown, 2))
	var b strings.Builder
	if err := r.Dump(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "publish") || !strings.Contains(out, "link-down") {
		t.Fatalf("dump missing records:\n%s", out)
	}
	if !strings.Contains(out, "total=2") {
		t.Fatalf("dump missing summary:\n%s", out)
	}
}

// TestDumpSummaryCoversAllKinds guards the kindCount sentinel: every
// named kind — including the fault kinds at the end of the enum — must
// appear in the Dump summary when present. A hardcoded loop bound would
// silently drop the newest kinds.
func TestDumpSummaryCoversAllKinds(t *testing.T) {
	r := New(16)
	all := []Kind{Publish, Deliver, Recover, Send, Loss, LinkDown, LinkUp, NodeDown, NodeUp}
	for i, k := range all {
		r.Add(rec(i, k, i))
	}
	var b strings.Builder
	if err := r.Dump(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, k := range all {
		if !strings.Contains(out, k.String()+"=1") {
			t.Errorf("summary is missing kind %v:\n%s", k, out)
		}
	}
	if len(all) != int(kindCount)-1 {
		t.Errorf("test covers %d kinds but kindCount implies %d — update the list", len(all), int(kindCount)-1)
	}
	for k := Publish; k < kindCount; k++ {
		if _, ok := kindNames[k]; !ok {
			t.Errorf("kind %d has no name", uint8(k))
		}
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}
