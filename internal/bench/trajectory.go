package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// The benchmark trajectory file (BENCH_hotpath.json) is shared by two
// writers: cmd/bench appends one entry per run with the micro-benchmark
// suite, and cmd/livebench merges live-transport measurements into the
// latest entry. Both re-marshal the whole file, so the schema lives
// here, in one place — a field known to only one writer would silently
// vanish the next time the other one saved.

// Measurement is the recorded result of one benchmark.
type Measurement struct {
	NsPerOp         float64 `json:"ns_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
	Iterations      int     `json:"iterations"`
	SimEventsPerSec float64 `json:"sim_events_per_sec,omitempty"`
	// LiveEventsPerSec is delivered events per second per process over
	// real sockets (cmd/livebench).
	LiveEventsPerSec float64 `json:"live_events_per_sec,omitempty"`
	// P99LatencyNs is the 99th-percentile publish-to-deliver latency of
	// a live run, in nanoseconds.
	P99LatencyNs float64 `json:"p99_latency_ns,omitempty"`
}

// Entry is one point of the trajectory: all measurements from one run.
type Entry struct {
	Label      string                 `json:"label"`
	Date       string                 `json:"date"`
	Commit     string                 `json:"commit,omitempty"`
	GoVersion  string                 `json:"go"`
	Benchmarks map[string]Measurement `json:"benchmarks"`
}

// LoadTrajectory reads a trajectory file; a missing file is an empty
// trajectory, anything unparsable is an error.
func LoadTrajectory(path string) ([]Entry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	var t []Entry
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("%s is not a valid trajectory: %w", path, err)
	}
	return t, nil
}

// SaveTrajectory writes the trajectory back, pretty-printed.
func SaveTrajectory(path string, t []Entry) error {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return nil
}
