package metrics

import (
	"fmt"

	"repro/internal/ident"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Tracker is the delivery-accounting interface the scenario runs
// against. Two implementations exist:
//
//   - DeliveryTracker (exact, the default): per-event records indexed
//     by EventID. Every windowed query filters individual events, and
//     fixed-seed golden tests pin its output bit for bit. Memory and
//     per-delivery cost grow with the number of published events.
//   - StreamingTracker: O(1)-memory counters plus a fixed ring of
//     publish-time buckets and reservoir-sampled latency quantiles.
//     Totals are exact; windowed queries are bucket-granular; quantiles
//     carry reservoir sampling error. Built for heavy-traffic runs
//     where the measurement layer must not cap throughput.
//
// scenario.Params.MetricsMode selects the implementation per run.
type Tracker interface {
	// OnPublish registers a new event with its expected number of
	// receivers (matching subscribers other than the publisher).
	OnPublish(id ident.EventID, expected int, at sim.Time)
	// OnDeliver records a local delivery (recovered or routed).
	OnDeliver(node ident.NodeID, ev *wire.Event, recovered bool)
	// Totals returns cumulative expected/delivered/recovered counts.
	Totals() (expected, delivered, recovered uint64)
	// Rate returns the delivery rate for events published in [from, to).
	Rate(from, to sim.Time) float64
	// RecoveredShare returns the recovered fraction of deliveries of
	// events published in [from, to).
	RecoveredShare(from, to sim.Time) float64
	// ReceiversPerEvent returns the mean expected audience of events
	// published in [from, to).
	ReceiversPerEvent(from, to sim.Time) float64
	// TimeSeries returns the bucketed delivery-rate curve.
	TimeSeries(bucket sim.Time) []Point
	// RoutedLatency returns publish→delivery latency statistics of
	// normally routed deliveries.
	RoutedLatency() LatencyStats
	// RecoveryLatency returns the same for recovered deliveries.
	RecoveryLatency() LatencyStats
}

var (
	_ Tracker = (*DeliveryTracker)(nil)
	_ Tracker = (*StreamingTracker)(nil)
)

// defaultRingBuckets covers 100 s of run at the default 100 ms bucket
// width in 32 KiB of cells.
const defaultRingBuckets = 1024

// StreamingConfig parameterizes a StreamingTracker.
type StreamingConfig struct {
	// Now supplies virtual time for latency measurement; nil disables
	// the latency reservoirs.
	Now func() sim.Time
	// Seed drives the reservoirs' replacement streams. The tracker
	// never draws from kernel streams, so enabling streaming metrics
	// cannot perturb the simulated trajectory.
	Seed int64
	// BucketWidth is the native publish-time bucket of the ring.
	// Windowed queries are answered at this granularity. Must be > 0.
	BucketWidth sim.Time
	// RingBuckets caps the ring length (0 = default 1024). Buckets
	// older than the newest RingBuckets publish-time buckets are folded
	// into an aggregate and drop out of windowed queries; totals stay
	// exact.
	RingBuckets int
	// ReservoirCap is the per-reservoir sample capacity (0 = default).
	ReservoirCap int
}

// streamCell is one publish-time bucket of the ring.
type streamCell struct {
	abs       int64 // absolute bucket number, -1 when empty
	events    uint64
	expected  uint64
	delivered uint64
	recovered uint64
}

// StreamingTracker implements Tracker with memory independent of the
// number of published events: totals are plain counters (exact),
// windowed delivery queries aggregate a fixed-size ring of publish-time
// buckets, and latency quantiles come from deterministic reservoirs.
//
// Deliveries are attributed to the publish-time bucket recorded in the
// event itself (wire.Event.PublishedAt), so no per-event index is
// needed — the event already carries everything the accounting wants.
// Two sources of approximation remain, both bounded and documented in
// DESIGN.md: window edges are rounded to bucket boundaries (exact when
// the measurement window is bucket-aligned, as the scenario defaults
// are), and quantiles carry reservoir sampling error once a reservoir
// overflows. Unlike the exact tracker it cannot distinguish a
// re-published EventID from a new event (both just bump counters) and
// it counts deliveries of events published before tracking started.
type StreamingTracker struct {
	width    sim.Time
	ring     []streamCell
	maxAbs   int64 // highest bucket number a publish has touched
	haveBase bool

	// evicted aggregates buckets that aged out of the ring; late
	// counts deliveries whose publish bucket was already evicted.
	evicted streamCell
	late    uint64

	totalExpected  uint64
	totalDelivered uint64
	totalRecovered uint64

	now             func() sim.Time
	routedLatency   *LatencyReservoir
	recoveryLatency *LatencyReservoir
}

// NewStreamingTracker returns an empty streaming tracker.
func NewStreamingTracker(cfg StreamingConfig) *StreamingTracker {
	if cfg.BucketWidth <= 0 {
		panic("metrics: streaming tracker needs a positive bucket width")
	}
	n := cfg.RingBuckets
	if n <= 0 {
		n = defaultRingBuckets
	}
	t := &StreamingTracker{
		ring:            make([]streamCell, n),
		routedLatency:   NewLatencyReservoir(cfg.ReservoirCap, sim.DeriveSeed(cfg.Seed, 'r')),
		recoveryLatency: NewLatencyReservoir(cfg.ReservoirCap, sim.DeriveSeed(cfg.Seed, 'c')),
	}
	t.reset(cfg)
	return t
}

// Reset empties the tracker for a new run, keeping the ring and
// reservoir slabs. The bucket width may change between runs.
func (t *StreamingTracker) Reset(cfg StreamingConfig) {
	if cfg.BucketWidth <= 0 {
		panic("metrics: streaming tracker needs a positive bucket width")
	}
	if n := cfg.RingBuckets; n > 0 && n != len(t.ring) {
		t.ring = make([]streamCell, n)
	}
	t.reset(cfg)
}

func (t *StreamingTracker) reset(cfg StreamingConfig) {
	t.width = cfg.BucketWidth
	for i := range t.ring {
		t.ring[i] = streamCell{abs: -1}
	}
	t.maxAbs = 0
	t.haveBase = false
	t.evicted = streamCell{abs: -1}
	t.late = 0
	t.totalExpected, t.totalDelivered, t.totalRecovered = 0, 0, 0
	t.now = cfg.Now
	t.routedLatency.Reset(sim.DeriveSeed(cfg.Seed, 'r'))
	t.recoveryLatency.Reset(sim.DeriveSeed(cfg.Seed, 'c'))
}

// cell returns the ring cell for absolute bucket abs, advancing the
// window (evicting aged buckets) when abs is ahead of it. Returns nil
// when abs has already been evicted.
func (t *StreamingTracker) cell(abs int64) *streamCell {
	n := int64(len(t.ring))
	if !t.haveBase {
		t.haveBase = true
		t.maxAbs = abs
	}
	if abs > t.maxAbs {
		t.maxAbs = abs
	}
	if abs <= t.maxAbs-n {
		return nil // aged out of the ring
	}
	c := &t.ring[abs%n]
	if c.abs != abs {
		if c.abs >= 0 {
			// The slot still holds a bucket from one window ago: fold
			// it into the aggregate before reuse.
			t.evicted.events += c.events
			t.evicted.expected += c.expected
			t.evicted.delivered += c.delivered
			t.evicted.recovered += c.recovered
		}
		*c = streamCell{abs: abs}
	}
	return c
}

// OnPublish implements Tracker.
func (t *StreamingTracker) OnPublish(_ ident.EventID, expected int, at sim.Time) {
	t.totalExpected += uint64(expected)
	if c := t.cell(int64(at / t.width)); c != nil {
		c.events++
		c.expected += uint64(expected)
	} else {
		t.evicted.events++
		t.evicted.expected += uint64(expected)
	}
}

// OnDeliver implements Tracker. The delivery is attributed to the
// bucket of the event's own publish timestamp.
func (t *StreamingTracker) OnDeliver(node ident.NodeID, ev *wire.Event, recovered bool) {
	if node == ev.ID.Source {
		return
	}
	t.totalDelivered++
	if recovered {
		t.totalRecovered++
	}
	publishedAt := sim.Time(ev.PublishedAt)
	if c := t.cell(int64(publishedAt / t.width)); c != nil {
		c.delivered++
		if recovered {
			c.recovered++
		}
	} else {
		t.late++
		t.evicted.delivered++
		if recovered {
			t.evicted.recovered++
		}
	}
	if t.now != nil {
		latency := t.now() - publishedAt
		if latency >= 0 {
			if recovered {
				t.recoveryLatency.Observe(latency)
			} else {
				t.routedLatency.Observe(latency)
			}
		}
	}
}

// Totals implements Tracker. The counts are exact in both modes.
func (t *StreamingTracker) Totals() (expected, delivered, recovered uint64) {
	return t.totalExpected, t.totalDelivered, t.totalRecovered
}

// LateDeliveries returns how many deliveries referred to publish
// buckets that had already aged out of the ring — a measure of how
// much windowed queries undercount. Zero whenever the ring spans the
// whole run, which the scenario sizes it to do.
func (t *StreamingTracker) LateDeliveries() uint64 { return t.late }

// window iterates the live cells of publish-time window [from, to) in
// bucket order, calling fn for each non-empty one. Window edges round
// outward to bucket boundaries: a bucket is included iff it overlaps
// [from, to), so bucket-aligned windows aggregate exactly the same
// events as the exact tracker.
func (t *StreamingTracker) window(from, to sim.Time, fn func(*streamCell)) {
	if !t.haveBase || to <= from {
		return
	}
	n := int64(len(t.ring))
	lo := int64(from / t.width)
	hi := int64((to - 1) / t.width)
	if min := t.maxAbs - n + 1; lo < min {
		lo = min
	}
	if hi > t.maxAbs {
		hi = t.maxAbs
	}
	for abs := lo; abs <= hi; abs++ {
		if c := &t.ring[abs%n]; c.abs == abs {
			fn(c)
		}
	}
}

// Rate implements Tracker at bucket granularity.
func (t *StreamingTracker) Rate(from, to sim.Time) float64 {
	var exp, del uint64
	t.window(from, to, func(c *streamCell) {
		exp += c.expected
		del += c.delivered
	})
	if exp == 0 {
		return 1
	}
	return float64(del) / float64(exp)
}

// RecoveredShare implements Tracker at bucket granularity.
func (t *StreamingTracker) RecoveredShare(from, to sim.Time) float64 {
	var del, rec uint64
	t.window(from, to, func(c *streamCell) {
		del += c.delivered
		rec += c.recovered
	})
	if del == 0 {
		return 0
	}
	return float64(rec) / float64(del)
}

// ReceiversPerEvent implements Tracker at bucket granularity.
func (t *StreamingTracker) ReceiversPerEvent(from, to sim.Time) float64 {
	var exp, n uint64
	t.window(from, to, func(c *streamCell) {
		exp += c.expected
		n += c.events
	})
	if n == 0 {
		return 0
	}
	return float64(exp) / float64(n)
}

// TimeSeries implements Tracker. The requested bucket must be a
// multiple of the tracker's native width (the scenario passes the same
// width it configured); evicted buckets are not reported.
func (t *StreamingTracker) TimeSeries(bucket sim.Time) []Point {
	if bucket <= 0 {
		panic("metrics: non-positive bucket width")
	}
	if bucket%t.width != 0 {
		panic(fmt.Sprintf("metrics: streaming time series bucket %v is not a multiple of the native width %v", bucket, t.width))
	}
	out := make([]Point, 0, 64)
	if !t.haveBase {
		return out
	}
	group := int64(bucket / t.width)
	n := int64(len(t.ring))
	lo := t.maxAbs - n + 1
	if lo < 0 {
		lo = 0
	}
	for abs := lo; abs <= t.maxAbs; abs++ {
		c := &t.ring[abs%n]
		if c.abs != abs || c.expected == 0 {
			continue
		}
		b := sim.Time(abs/group*group) * t.width
		if m := len(out); m == 0 || out[m-1].Time != b {
			out = append(out, Point{Time: b})
		}
		p := &out[len(out)-1]
		p.Expected += c.expected
		p.Delivered += c.delivered
	}
	for i := range out {
		out[i].Rate = float64(out[i].Delivered) / float64(out[i].Expected)
	}
	return out
}

// RoutedLatency implements Tracker.
func (t *StreamingTracker) RoutedLatency() LatencyStats { return t.routedLatency }

// RecoveryLatency implements Tracker.
func (t *StreamingTracker) RecoveryLatency() LatencyStats { return t.recoveryLatency }
