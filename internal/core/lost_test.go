package core

import (
	"testing"
	"time"

	"repro/internal/wire"
)

func le(src, pat, seq int) wire.LostEntry {
	return wire.LostEntry{
		Source:  ident32(src),
		Pattern: pat32(pat),
		Seq:     uint32(seq),
	}
}

func TestLostBufferAddRemove(t *testing.T) {
	b := NewLostBuffer(10, time.Second)
	b.Add(le(1, 2, 3), 0)
	b.Add(le(1, 2, 3), 0) // duplicate
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1", b.Len())
	}
	if !b.Has(le(1, 2, 3), 0) {
		t.Fatal("Has = false for outstanding entry")
	}
	if !b.Remove(le(1, 2, 3)) {
		t.Fatal("Remove returned false")
	}
	if b.Remove(le(1, 2, 3)) {
		t.Fatal("second Remove returned true")
	}
	if b.Len() != 0 {
		t.Fatalf("Len = %d after removal, want 0", b.Len())
	}
}

func TestLostBufferCapacityEvictsOldest(t *testing.T) {
	b := NewLostBuffer(3, 0)
	for i := 1; i <= 5; i++ {
		b.Add(le(1, 1, i), sim32(i))
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	for i := 1; i <= 2; i++ {
		if b.Has(le(1, 1, i), sim32(10)) {
			t.Fatalf("oldest entry %d survived eviction", i)
		}
	}
	for i := 3; i <= 5; i++ {
		if !b.Has(le(1, 1, i), sim32(10)) {
			t.Fatalf("entry %d missing", i)
		}
	}
}

func TestLostBufferTTLExpiry(t *testing.T) {
	b := NewLostBuffer(10, time.Second)
	b.Add(le(1, 1, 1), 0)
	b.Add(le(1, 1, 2), 900*time.Millisecond)
	if got := b.All(1100 * time.Millisecond); len(got) != 1 || got[0] != le(1, 1, 2) {
		t.Fatalf("All after expiry = %v, want only seq 2", got)
	}
	if b.Has(le(1, 1, 1), 1100*time.Millisecond) {
		t.Fatal("expired entry still present")
	}
}

func TestLostBufferForPatternAndSource(t *testing.T) {
	b := NewLostBuffer(10, 0)
	b.Add(le(1, 7, 1), 0)
	b.Add(le(1, 8, 2), 0)
	b.Add(le(2, 7, 3), 0)
	if got := b.ForPattern(pat32(7), 0); len(got) != 2 {
		t.Fatalf("ForPattern(7) = %v, want 2 entries", got)
	}
	if got := b.ForSource(ident32(1), 0); len(got) != 2 {
		t.Fatalf("ForSource(1) = %v, want 2 entries", got)
	}
	pats := b.Patterns(0)
	if len(pats) != 2 || pats[0] != pat32(7) || pats[1] != pat32(8) {
		t.Fatalf("Patterns = %v, want [7 8]", pats)
	}
	srcs := b.Sources(0)
	if len(srcs) != 2 || srcs[0] != ident32(1) || srcs[1] != ident32(2) {
		t.Fatalf("Sources = %v, want [1 2]", srcs)
	}
}

func TestLostBufferDeterministicOrder(t *testing.T) {
	b := NewLostBuffer(100, 0)
	b.Add(le(2, 1, 5), 0)
	b.Add(le(1, 2, 9), 0)
	b.Add(le(1, 2, 3), 0)
	b.Add(le(1, 1, 7), 0)
	got := b.All(0)
	want := []wire.LostEntry{le(1, 1, 7), le(1, 2, 3), le(1, 2, 9), le(2, 1, 5)}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("All = %v, want %v", got, want)
		}
	}
}
