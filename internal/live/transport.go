package live

import (
	"net"
	"net/netip"
	"sync"

	"repro/internal/ident"
	"repro/internal/wire"
)

// The live transport has two layers. packetConn is the socket layer:
// read and write *batches* of datagrams in one call, so a dispatcher
// hosting thousands of nodes pays one syscall per batch instead of one
// per packet. On Linux it is backed by recvmmsg/sendmmsg (batch_linux);
// everywhere else by a portable stdlib fallback that degrades to one
// datagram per call. transport is the node layer: how one live.Node
// emits messages — a standalone node owns a socket, a hosted node
// borrows its dispatcher's shard ring.

// dgram is one datagram of a batch I/O operation. Reads fill b
// (re-sliced to the payload length); writes consume b and send to `to`.
type dgram struct {
	b  []byte
	to netip.AddrPort
}

// packetConn reads and writes datagrams in batches on one socket.
type packetConn interface {
	// readBatch blocks until at least one datagram arrives and fills up
	// to len(ds) entries, re-slicing each entry's b to the payload; it
	// returns the number filled.
	readBatch(ds []dgram) (int, error)
	// writeBatch transmits ds in order, returning how many were sent.
	writeBatch(ds []dgram) (int, error)
	localAddr() *net.UDPAddr
	close() error
}

// stdConn is the portable packetConn: plain blocking stdlib reads and
// writes, one datagram at a time under the batch interface. It is the
// fallback on platforms without an mmsg path and the reference
// implementation the batch path is differential-tested against.
type stdConn struct {
	conn *net.UDPConn
}

func (c *stdConn) readBatch(ds []dgram) (int, error) {
	n, _, err := c.conn.ReadFromUDPAddrPort(ds[0].b)
	if err != nil {
		return 0, err
	}
	ds[0].b = ds[0].b[:n]
	return 1, nil
}

func (c *stdConn) writeBatch(ds []dgram) (int, error) {
	for i := range ds {
		if _, err := c.conn.WriteToUDPAddrPort(ds[i].b, ds[i].to); err != nil {
			return i, err
		}
	}
	return len(ds), nil
}

func (c *stdConn) localAddr() *net.UDPAddr { return c.conn.LocalAddr().(*net.UDPAddr) }
func (c *stdConn) close() error            { return c.conn.Close() }

// transport is how a node transmits: the standalone implementation
// encodes and writes synchronously on its own socket; the hosted
// implementation enqueues on the dispatcher shard's ring, where the
// writer coalesces messages into batched datagrams.
type transport interface {
	// sendMsg envelopes msg from one node to another and transmits it
	// (possibly coalesced and deferred, per implementation).
	sendMsg(from, to ident.NodeID, addr netip.AddrPort, msg wire.Message, oob bool)
	// sendHeartbeat transmits a payload-free liveness envelope.
	sendHeartbeat(from, to ident.NodeID, addr netip.AddrPort)
	// localAddr is the address peers use to reach this node.
	localAddr() *net.UDPAddr
	// close releases transport resources the node owns (the socket for
	// a standalone node; nothing for a hosted one).
	close() error
}

// recvBufPool recycles the 64 KB receive buffers shared by standalone
// read loops and dispatcher shards, so opening and closing nodes in
// bulk does not churn the allocator.
var recvBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 64<<10)
		return &b
	},
}

// sendBufPool recycles datagram encode buffers (envelope + payload,
// sized for a coalesced datagram). Buffers grown past 64 KB by an
// oversized retransmit batch are dropped rather than pinned.
var sendBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 2048)
		return &b
	},
}

func putSendBuf(bp *[]byte) {
	if cap(*bp) <= 64<<10 {
		sendBufPool.Put(bp)
	}
}

// sockTransport is the standalone transport: the node's own socket,
// one synchronous write per message, exactly the pre-dispatcher
// behavior. WriteToUDPAddrPort copies the payload into the kernel
// before returning, so the pooled buffer is immediately reusable.
type sockTransport struct {
	conn *net.UDPConn
}

func (t *sockTransport) sendMsg(from, to ident.NodeID, addr netip.AddrPort, msg wire.Message, oob bool) {
	var flags byte
	if oob {
		flags = flagOOB
	}
	bp := sendBufPool.Get().(*[]byte)
	b := appendEnvelope((*bp)[:0], from, to, flags)
	b = msg.Append(b)
	if _, err := t.conn.WriteToUDPAddrPort(b, addr); err != nil && !closing(err) {
		// Best-effort, like UDP itself: the protocols tolerate loss by
		// design, and errors to live addresses are not actionable here.
		_ = err
	}
	*bp = b
	putSendBuf(bp)
}

func (t *sockTransport) sendHeartbeat(from, to ident.NodeID, addr netip.AddrPort) {
	var b [envelopeLen]byte
	putEnvelope(b[:], from, to, flagHeartbeat)
	if _, err := t.conn.WriteToUDPAddrPort(b[:], addr); err != nil && !closing(err) {
		_ = err
	}
}

func (t *sockTransport) localAddr() *net.UDPAddr { return t.conn.LocalAddr().(*net.UDPAddr) }
func (t *sockTransport) close() error            { return t.conn.Close() }
