package scenario

import (
	"testing"
	"time"

	"repro/internal/core"
)

// quickParams returns a small, fast configuration for unit tests.
func quickParams() Params {
	p := DefaultParams()
	p.N = 30
	p.Duration = 3 * time.Second
	p.MeasureFrom = 500 * time.Millisecond
	p.MeasureTo = 2 * time.Second
	p.PublishRate = 20
	return p
}

func TestRunProducesSaneResult(t *testing.T) {
	p := quickParams()
	p.Algorithm = core.CombinedPull
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRate <= 0 || res.DeliveryRate > 1 {
		t.Fatalf("DeliveryRate = %v, want (0, 1]", res.DeliveryRate)
	}
	if res.EventsPublished == 0 {
		t.Fatal("no events published")
	}
	if res.ExpectedDeliveries == 0 || res.Deliveries == 0 {
		t.Fatal("no deliveries tracked")
	}
	if res.Recoveries == 0 {
		t.Fatal("no recoveries under 10% loss with combined pull")
	}
	if res.GossipPerDispatcher == 0 {
		t.Fatal("no gossip traffic recorded")
	}
	if len(res.TimeSeries) == 0 {
		t.Fatal("no time series")
	}
	if res.MeanPathLength <= 0 {
		t.Fatal("no mean path length")
	}
}

func TestRunDeterministicUnderSeed(t *testing.T) {
	p := quickParams()
	p.Algorithm = core.Push
	a, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.DeliveryRate != b.DeliveryRate ||
		a.EventsPublished != b.EventsPublished ||
		a.GossipPerDispatcher != b.GossipPerDispatcher ||
		a.KernelEvents != b.KernelEvents ||
		a.EngineStats != b.EngineStats {
		t.Fatalf("same seed produced different results:\n%+v\n%+v", a, b)
	}
}

func TestRunSeedChangesOutcome(t *testing.T) {
	p := quickParams()
	p.Algorithm = core.NoRecovery
	a, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Seed = 999
	b, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.EventsPublished == b.EventsPublished && a.DeliveryRate == b.DeliveryRate {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestRecoveryBeatsBaseline(t *testing.T) {
	base := quickParams()
	base.Algorithm = core.NoRecovery
	rb, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	rec := quickParams()
	rec.Algorithm = core.CombinedPull
	rr, err := Run(rec)
	if err != nil {
		t.Fatal(err)
	}
	if rr.DeliveryRate <= rb.DeliveryRate {
		t.Fatalf("combined pull (%.3f) did not beat baseline (%.3f)",
			rr.DeliveryRate, rb.DeliveryRate)
	}
}

func TestReliableLinksDeliverEverything(t *testing.T) {
	p := quickParams()
	p.Network.LossRate = 0
	p.Network.OOBLossRate = 0
	p.Algorithm = core.NoRecovery
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRate != 1 {
		t.Fatalf("DeliveryRate = %v on reliable links, want exactly 1", res.DeliveryRate)
	}
}

func TestReconfigurationScenarioRuns(t *testing.T) {
	p := quickParams()
	p.Network.LossRate = 0
	p.Network.OOBLossRate = 0
	p.ReconfigInterval = 200 * time.Millisecond
	p.Algorithm = core.CombinedPull
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reconfigurations == 0 {
		t.Fatal("no reconfigurations happened")
	}
	if res.DeliveryRate <= 0.5 {
		t.Fatalf("DeliveryRate = %v under mild reconfiguration, want > 0.5", res.DeliveryRate)
	}
}

func TestOverlappingReconfigurationsRun(t *testing.T) {
	p := quickParams()
	p.Network.LossRate = 0
	p.Network.OOBLossRate = 0
	p.ReconfigInterval = 30 * time.Millisecond // < RepairDelay: overlapping
	p.Algorithm = core.NoRecovery
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reconfigurations < 50 {
		t.Fatalf("only %d reconfigurations in 3s at ρ=30ms", res.Reconfigurations)
	}
	if res.DeliveryRate <= 0.3 || res.DeliveryRate > 1 {
		t.Fatalf("DeliveryRate = %v, implausible", res.DeliveryRate)
	}
}

func TestReconfigurationLosesEventsWithoutRecovery(t *testing.T) {
	p := quickParams()
	p.Network.LossRate = 0
	p.Network.OOBLossRate = 0
	p.ReconfigInterval = 100 * time.Millisecond
	p.Algorithm = core.NoRecovery
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRate >= 1 {
		t.Fatal("reconfigurations caused no loss at all — repair model suspiciously perfect")
	}
}

func TestParamValidation(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.N = 1 },
		func(p *Params) { p.PublishRate = -1 },
		func(p *Params) { p.Duration = 0 },
		func(p *Params) { p.NumPatterns = 0 },
		func(p *Params) { p.MeasureFrom = 2 * time.Second; p.MeasureTo = time.Second },
		func(p *Params) { p.Algorithm = core.Push; p.Gossip.PForward = 7 },
	}
	for i, mutate := range bad {
		p := quickParams()
		mutate(&p)
		if _, err := Run(p); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestRunAllOrderAndParallelism(t *testing.T) {
	var params []Params
	for _, a := range []core.Algorithm{core.NoRecovery, core.SubscriberPull, core.Push} {
		p := quickParams()
		p.Duration = 2 * time.Second
		p.MeasureFrom = 200 * time.Millisecond
		p.MeasureTo = 1500 * time.Millisecond
		p.Algorithm = a
		params = append(params, p)
	}
	results, err := RunAll(params)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(params) {
		t.Fatalf("%d results, want %d", len(results), len(params))
	}
	for i, r := range results {
		if r.Params.Algorithm != params[i].Algorithm {
			t.Fatalf("result %d is for %v, want %v", i, r.Params.Algorithm, params[i].Algorithm)
		}
	}
	// RunAll must agree with a serial Run under the same seed.
	serial, err := Run(params[1])
	if err != nil {
		t.Fatal(err)
	}
	if serial.DeliveryRate != results[1].DeliveryRate || serial.KernelEvents != results[1].KernelEvents {
		t.Fatal("parallel run differs from serial run with the same seed")
	}
}

func TestRunSeedsStats(t *testing.T) {
	p := quickParams()
	p.Algorithm = core.NoRecovery
	stats, err := RunSeeds(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Values) != 4 {
		t.Fatalf("got %d values, want 4", len(stats.Values))
	}
	if stats.Min > stats.Mean || stats.Mean > stats.Max {
		t.Fatalf("min/mean/max out of order: %+v", stats)
	}
	if stats.Min == stats.Max {
		t.Fatal("different seeds gave identical delivery — suspicious")
	}
	if stats.RelSpread() <= 0 || stats.RelSpread() > 0.5 {
		t.Fatalf("RelSpread = %v, implausible", stats.RelSpread())
	}
	if stats.Std <= 0 {
		t.Fatal("zero standard deviation across seeds")
	}
}

func TestRunAllPropagatesError(t *testing.T) {
	good := quickParams()
	bad := quickParams()
	bad.N = 0
	if _, err := RunAll([]Params{good, bad}); err == nil {
		t.Fatal("RunAll swallowed an error")
	}
}

func TestZeroPublishRate(t *testing.T) {
	p := quickParams()
	p.PublishRate = 0
	p.Algorithm = core.Push
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.EventsPublished != 0 {
		t.Fatal("events published at zero rate")
	}
	if res.DeliveryRate != 1 {
		t.Fatalf("DeliveryRate = %v with no events, want neutral 1", res.DeliveryRate)
	}
}

func TestReceiversPerEventGrowsWithPatterns(t *testing.T) {
	small := quickParams()
	small.PatternsPerNode = 2
	a, err := Run(small)
	if err != nil {
		t.Fatal(err)
	}
	big := quickParams()
	big.PatternsPerNode = 20
	b, err := Run(big)
	if err != nil {
		t.Fatal(err)
	}
	if b.ReceiversPerEvent <= a.ReceiversPerEvent {
		t.Fatalf("receivers/event: πmax=20 gives %.2f, πmax=2 gives %.2f — want growth",
			b.ReceiversPerEvent, a.ReceiversPerEvent)
	}
}

// TestRunSeedsRejectsNonPositiveK is the regression test for the
// RunSeeds(p, 0) edge: zero runs used to produce Mean = NaN (0/0) and
// Min/Max = ±Inf leaking into SeedStats; now it is an explicit error.
func TestRunSeedsRejectsNonPositiveK(t *testing.T) {
	p := quickParams()
	for _, k := range []int{0, -3} {
		stats, err := RunSeeds(p, k)
		if err == nil {
			t.Fatalf("RunSeeds(k=%d) succeeded with stats %+v, want error", k, stats)
		}
		if stats.Mean != 0 || stats.Std != 0 || stats.Min != 0 || stats.Max != 0 || stats.Values != nil {
			t.Fatalf("RunSeeds(k=%d) returned non-zero stats %+v alongside error", k, stats)
		}
	}
}
