// Package metrics implements the measurements of the paper's
// evaluation (Sec. IV): the delivery rate ("the ratio between the
// number of events correctly received by a process and those that
// would be received in a fully reliable scenario"), its time series,
// the gossip overhead per dispatcher, the gossip/event message ratio,
// and the receivers-per-event statistic of Fig. 7.
package metrics

import (
	"slices"

	"repro/internal/ident"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/wire"
)

// eventRecord tracks one published event's delivery accounting.
type eventRecord struct {
	publishedAt sim.Time
	expected    uint32
	delivered   uint32
	recovered   uint32
}

// DeliveryTracker accounts expected and actual deliveries per event.
//
// Expected counts come from global knowledge of the stable subscription
// state (the simulation knows every subscriber); a delivery is counted
// at most once per (event, dispatcher) because the dispatcher's
// received-set already deduplicates. Deliveries at the publisher itself
// are excluded on both sides.
type DeliveryTracker struct {
	// records is a slab of per-event accounting, appended in publish
	// order (so publishedAt is nondecreasing along the slice); index
	// maps an event to its slab position. Storing values in the slab
	// instead of a map of pointers keeps the per-publish cost to one
	// append plus one map insert and makes every aggregation below a
	// cache-friendly linear scan in deterministic order.
	records []eventRecord
	index   map[ident.EventID]int32
	now     func() sim.Time

	totalExpected  uint64
	totalDelivered uint64
	totalRecovered uint64

	routedLatency   *LatencyHistogram
	recoveryLatency *LatencyHistogram
}

// NewDeliveryTracker returns an empty tracker. now supplies the current
// virtual time for latency measurement; pass nil to disable latency
// histograms.
func NewDeliveryTracker(now func() sim.Time) *DeliveryTracker {
	return &DeliveryTracker{
		index:           make(map[ident.EventID]int32, 1024),
		now:             now,
		routedLatency:   NewLatencyHistogram(),
		recoveryLatency: NewLatencyHistogram(),
	}
}

// Reset empties the tracker for a new run, keeping the record slab,
// index buckets, and histogram slabs the previous run grew. now
// replaces the virtual-time source (pass nil to disable latency
// histograms).
func (t *DeliveryTracker) Reset(now func() sim.Time) {
	t.records = t.records[:0]
	clear(t.index)
	t.now = now
	t.totalExpected, t.totalDelivered, t.totalRecovered = 0, 0, 0
	t.routedLatency.Reset()
	t.recoveryLatency.Reset()
}

// RoutedLatency returns the publish→delivery latency statistics of
// normally routed deliveries.
func (t *DeliveryTracker) RoutedLatency() LatencyStats { return t.routedLatency }

// RecoveryLatency returns the same statistics for recovered deliveries
// — the time a subscriber stayed without an event it should have had.
func (t *DeliveryTracker) RecoveryLatency() LatencyStats { return t.recoveryLatency }

// OnPublish registers a new event with its expected number of receivers
// (matching subscribers other than the publisher).
func (t *DeliveryTracker) OnPublish(id ident.EventID, expected int, at sim.Time) {
	rec := eventRecord{publishedAt: at, expected: uint32(expected)}
	if i, ok := t.index[id]; ok {
		t.records[i] = rec // re-published ID: reset its accounting
	} else {
		t.index[id] = int32(len(t.records))
		t.records = append(t.records, rec)
	}
	t.totalExpected += uint64(expected)
}

// OnDeliver records a local delivery. Self-deliveries at the publisher
// are ignored; deliveries of unknown events (published before tracking
// started) are ignored too.
func (t *DeliveryTracker) OnDeliver(node ident.NodeID, ev *wire.Event, recovered bool) {
	if node == ev.ID.Source {
		return
	}
	i, ok := t.index[ev.ID]
	if !ok {
		return
	}
	rec := &t.records[i]
	rec.delivered++
	t.totalDelivered++
	if recovered {
		rec.recovered++
		t.totalRecovered++
	}
	if t.now != nil {
		latency := t.now() - rec.publishedAt
		if latency >= 0 {
			if recovered {
				t.recoveryLatency.Observe(latency)
			} else {
				t.routedLatency.Observe(latency)
			}
		}
	}
}

// Totals returns the cumulative expected, delivered, and recovered
// delivery counts over all tracked events.
func (t *DeliveryTracker) Totals() (expected, delivered, recovered uint64) {
	return t.totalExpected, t.totalDelivered, t.totalRecovered
}

// Rate returns the overall delivery rate for events published inside
// [from, to). Events expected by nobody are neutral. Returns 1 when no
// deliveries were expected.
func (t *DeliveryTracker) Rate(from, to sim.Time) float64 {
	var exp, del uint64
	for i := range t.records {
		rec := &t.records[i]
		if rec.publishedAt < from || rec.publishedAt >= to {
			continue
		}
		exp += uint64(rec.expected)
		del += uint64(rec.delivered)
	}
	if exp == 0 {
		return 1
	}
	return float64(del) / float64(exp)
}

// RecoveredShare returns the fraction of deliveries in [from, to) that
// arrived through recovery rather than normal routing.
func (t *DeliveryTracker) RecoveredShare(from, to sim.Time) float64 {
	var del, rec uint64
	for i := range t.records {
		r := &t.records[i]
		if r.publishedAt < from || r.publishedAt >= to {
			continue
		}
		del += uint64(r.delivered)
		rec += uint64(r.recovered)
	}
	if del == 0 {
		return 0
	}
	return float64(rec) / float64(del)
}

// ReceiversPerEvent returns the mean number of expected receivers per
// event published in [from, to) — the quantity of paper Fig. 7.
func (t *DeliveryTracker) ReceiversPerEvent(from, to sim.Time) float64 {
	var exp, n uint64
	for i := range t.records {
		rec := &t.records[i]
		if rec.publishedAt < from || rec.publishedAt >= to {
			continue
		}
		exp += uint64(rec.expected)
		n++
	}
	if n == 0 {
		return 0
	}
	return float64(exp) / float64(n)
}

// Point is one bucket of the delivery-rate time series.
type Point struct {
	// Time is the start of the bucket (events are bucketed by publish
	// time).
	Time sim.Time
	// Rate is the final delivery rate of the bucket's events.
	Rate float64
	// Expected and Delivered are the bucket's raw counts.
	Expected, Delivered uint64
}

// TimeSeries buckets events by publish time and returns per-bucket
// delivery rates, ordered by time. Empty buckets are skipped.
//
// Records are appended in publish order, so consecutive records land in
// the same or a later bucket: one linear scan accumulates directly into
// the output slice, with no intermediate map. The defensive merge pass
// only runs if the slab ever turns out to be unsorted.
func (t *DeliveryTracker) TimeSeries(bucket sim.Time) []Point {
	if bucket <= 0 {
		panic("metrics: non-positive bucket width")
	}
	out := make([]Point, 0, 64)
	sorted := true
	for i := range t.records {
		rec := &t.records[i]
		if rec.expected == 0 {
			continue
		}
		b := rec.publishedAt / bucket * bucket
		if n := len(out); n == 0 || out[n-1].Time != b {
			if n > 0 && b < out[n-1].Time {
				sorted = false
			}
			out = append(out, Point{Time: b})
		}
		p := &out[len(out)-1]
		p.Expected += uint64(rec.expected)
		p.Delivered += uint64(rec.delivered)
	}
	if !sorted {
		slices.SortFunc(out, func(a, b Point) int {
			switch {
			case a.Time < b.Time:
				return -1
			case a.Time > b.Time:
				return 1
			default:
				return 0
			}
		})
		merged := out[:0]
		for _, p := range out {
			if n := len(merged); n > 0 && merged[n-1].Time == p.Time {
				merged[n-1].Expected += p.Expected
				merged[n-1].Delivered += p.Delivered
				continue
			}
			merged = append(merged, p)
		}
		out = merged
	}
	for i := range out {
		out[i].Rate = float64(out[i].Delivered) / float64(out[i].Expected)
	}
	return out
}

// Traffic counts message transmissions per dispatcher and per class,
// implementing network.Observer. Classification follows the paper's
// overhead analysis (Sec. IV-E): gossip messages are digests and
// recovery requests; event messages are routed events plus
// retransmitted events (a Retransmit bundling k events counts as k
// event messages).
type Traffic struct {
	gossipByNode []uint64
	eventByNode  []uint64
	controlSent  uint64
	lossByKind   map[wire.Kind]uint64
}

var _ network.Observer = (*Traffic)(nil)

// NewTraffic returns a Traffic observer for n dispatchers.
func NewTraffic(n int) *Traffic {
	return &Traffic{
		gossipByNode: make([]uint64, n),
		eventByNode:  make([]uint64, n),
		lossByKind:   make(map[wire.Kind]uint64),
	}
}

// OnSend implements network.Observer.
func (t *Traffic) OnSend(from, _ ident.NodeID, msg wire.Message, _ bool) {
	switch m := msg.(type) {
	case *wire.Event:
		t.eventByNode[from]++
	case *wire.Retransmit:
		t.eventByNode[from] += uint64(len(m.Events))
	case *wire.Subscribe, *wire.Unsubscribe:
		t.controlSent++
	default:
		if msg.Kind().IsGossip() {
			t.gossipByNode[from]++
		}
	}
}

// OnLoss implements network.Observer.
func (t *Traffic) OnLoss(_, _ ident.NodeID, msg wire.Message, _ bool) {
	t.lossByKind[msg.Kind()]++
}

// GossipTotal returns the total number of gossip messages sent.
func (t *Traffic) GossipTotal() uint64 {
	var sum uint64
	for _, v := range t.gossipByNode {
		sum += v
	}
	return sum
}

// EventTotal returns the total number of event messages sent (routed
// plus retransmitted).
func (t *Traffic) EventTotal() uint64 {
	var sum uint64
	for _, v := range t.eventByNode {
		sum += v
	}
	return sum
}

// ControlTotal returns the number of subscription-control messages.
func (t *Traffic) ControlTotal() uint64 { return t.controlSent }

// Losses returns how many transmissions of the given kind were lost.
func (t *Traffic) Losses(k wire.Kind) uint64 { return t.lossByKind[k] }

// GossipPerDispatcher returns the mean number of gossip messages sent
// by one dispatcher — the left-hand metric of paper Figs. 9 and 10.
func (t *Traffic) GossipPerDispatcher() float64 {
	if len(t.gossipByNode) == 0 {
		return 0
	}
	return float64(t.GossipTotal()) / float64(len(t.gossipByNode))
}

// GossipEventRatio returns gossip messages / event messages — the
// right-hand metric of paper Fig. 9. Returns 0 when no event messages
// were sent.
func (t *Traffic) GossipEventRatio() float64 {
	ev := t.EventTotal()
	if ev == 0 {
		return 0
	}
	return float64(t.GossipTotal()) / float64(ev)
}
