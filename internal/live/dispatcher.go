package live

import (
	"encoding/binary"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"

	"repro/internal/ident"
	"repro/internal/wire"
)

// A Dispatcher hosts many live nodes on a small fixed set of UDP
// sockets. Where NewNode spends a socket, a read goroutine, and a
// syscall per datagram on every node, the dispatcher shards its nodes
// across Sockets sockets, drains each with batched reads (recvmmsg on
// Linux), routes each datagram to its node by the envelope's
// destination slot, and coalesces outgoing messages per (sender,
// destination) into batch envelopes flushed with batched writes
// (sendmmsg). Hosting a thousand nodes costs a handful of file
// descriptors and goroutines, and the per-message syscall cost drops by
// roughly the batch factor — cmd/livebench measures the difference.

// maxDatagram is the coalescing budget: a batch envelope is flushed
// before it would exceed this size, chosen to clear typical MTUs.
// Single messages larger than the budget are sent alone, exactly as a
// standalone node would send them.
const maxDatagram = 1400

// DispatcherConfig parameterizes a Dispatcher.
type DispatcherConfig struct {
	// Bind is the UDP address every shard socket listens on (port 0
	// recommended: each shard gets its own ephemeral port). Empty means
	// 127.0.0.1:0.
	Bind string
	// Sockets is the number of shard sockets (and reader/writer goroutine
	// pairs). Zero means 4.
	Sockets int
	// Batch is the number of datagrams moved per batched read or write.
	// Zero means 32.
	Batch int
	// Ring is the capacity of each shard's outgoing ring. A full ring
	// applies backpressure: senders block until the writer drains.
	// Zero means 4096.
	Ring int
	// DisableBatchIO forces the portable stdlib transport even where
	// recvmmsg/sendmmsg are available — the baseline for differential
	// tests and benchmarks.
	DisableBatchIO bool
}

func (c DispatcherConfig) withDefaults() DispatcherConfig {
	if c.Bind == "" {
		c.Bind = "127.0.0.1:0"
	}
	if c.Sockets == 0 {
		c.Sockets = 4
	}
	if c.Batch == 0 {
		c.Batch = 32
	}
	if c.Ring == 0 {
		c.Ring = 4096
	}
	return c
}

// DispatcherStats reports dispatcher-level counters: datagrams dropped
// before any node could own them.
type DispatcherStats struct {
	// Malformed counts datagrams too short to carry an envelope.
	Malformed uint64
	// Misrouted counts datagrams whose destination slot names no hosted
	// node.
	Misrouted uint64
}

// outEntry is one message queued on a shard's outgoing ring. A nil msg
// is a heartbeat.
type outEntry struct {
	from, to ident.NodeID
	addr     netip.AddrPort
	msg      wire.Message
	oob      bool
}

type shard struct {
	d   *Dispatcher
	pc  packetConn
	out chan outEntry
}

// Dispatcher hosts nodes on shared shard sockets.
type Dispatcher struct {
	cfg     DispatcherConfig
	batchIO bool
	shards  []*shard

	mu    sync.RWMutex
	nodes map[ident.NodeID]*Node

	malformed atomic.Uint64
	misrouted atomic.Uint64

	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
}

// NewDispatcher opens the shard sockets and starts their reader and
// writer goroutines.
func NewDispatcher(cfg DispatcherConfig) (*Dispatcher, error) {
	cfg = cfg.withDefaults()
	addr, err := net.ResolveUDPAddr("udp", cfg.Bind)
	if err != nil {
		return nil, fmt.Errorf("live: resolving %q: %w", cfg.Bind, err)
	}
	d := &Dispatcher{
		cfg:   cfg,
		nodes: make(map[ident.NodeID]*Node),
		done:  make(chan struct{}),
	}
	d.batchIO = batchTransportAvailable && !cfg.DisableBatchIO
	for i := 0; i < cfg.Sockets; i++ {
		conn, err := net.ListenUDP("udp", addr)
		if err != nil {
			for _, s := range d.shards {
				s.pc.close()
			}
			return nil, fmt.Errorf("live: listening on %q: %w", cfg.Bind, err)
		}
		// A shard socket carries the traffic of hundreds of nodes, so the
		// default kernel buffers (~200 KB) overflow on fan-in bursts that
		// per-node sockets would have absorbed across their thousand
		// buffers. Ask for the most the kernel allows; best-effort.
		_ = conn.SetReadBuffer(8 << 20)
		_ = conn.SetWriteBuffer(8 << 20)
		var pc packetConn
		if d.batchIO {
			pc, _ = newBatchPacketConn(conn, cfg.Batch)
		}
		if pc == nil {
			d.batchIO = false
			pc = &stdConn{conn: conn}
		}
		d.shards = append(d.shards, &shard{d: d, pc: pc, out: make(chan outEntry, cfg.Ring)})
	}
	for _, s := range d.shards {
		d.wg.Add(2)
		go s.readLoop()
		go s.writeLoop()
	}
	return d, nil
}

// BatchIO reports whether the mmsg batch transport is active (false on
// platforms without it or when DisableBatchIO is set).
func (d *Dispatcher) BatchIO() bool { return d.batchIO }

// Stats returns the dispatcher-level counters.
func (d *Dispatcher) Stats() DispatcherStats {
	return DispatcherStats{
		Malformed: d.malformed.Load(),
		Misrouted: d.misrouted.Load(),
	}
}

// shardFor maps a node to its home shard.
func (d *Dispatcher) shardFor(id ident.NodeID) *shard {
	return d.shards[int(uint32(id))%len(d.shards)]
}

// AddNode creates a node hosted on this dispatcher. The node speaks
// through its shard's socket and ring; cfg.Bind is ignored. The
// returned node is used exactly like a standalone one.
func (d *Dispatcher) AddNode(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	sh := d.shardFor(cfg.ID)
	n := newNodeState(cfg, &hostedTransport{sh: sh}, d)
	d.mu.Lock()
	if _, dup := d.nodes[cfg.ID]; dup {
		d.mu.Unlock()
		return nil, fmt.Errorf("live: node %d already hosted", cfg.ID)
	}
	d.nodes[cfg.ID] = n
	d.mu.Unlock()
	n.startLoops()
	return n, nil
}

func (d *Dispatcher) removeNode(id ident.NodeID) {
	d.mu.Lock()
	delete(d.nodes, id)
	d.mu.Unlock()
}

// Close shuts down every hosted node, then the shard sockets and their
// goroutines.
func (d *Dispatcher) Close() error {
	var err error
	d.closeOnce.Do(func() {
		d.mu.RLock()
		nodes := make([]*Node, 0, len(d.nodes))
		for _, n := range d.nodes {
			nodes = append(nodes, n)
		}
		d.mu.RUnlock()
		for _, n := range nodes {
			n.Close()
		}
		close(d.done)
		for _, s := range d.shards {
			if e := s.pc.close(); e != nil && err == nil && !closing(e) {
				err = e
			}
		}
		d.wg.Wait()
	})
	return err
}

// route hands one received datagram to the node its destination slot
// names. Runs on the shard reader goroutine; the buffer is only valid
// for the duration of the call (wire.Decode copies what it keeps).
func (d *Dispatcher) route(buf []byte) {
	if len(buf) < envelopeLen {
		d.malformed.Add(1)
		return
	}
	dest := ident.NodeID(binary.LittleEndian.Uint32(buf[4:]))
	d.mu.RLock()
	n := d.nodes[dest]
	d.mu.RUnlock()
	if n == nil {
		d.misrouted.Add(1)
		return
	}
	n.handleDatagram(buf)
}

// readLoop drains the shard socket in batches and routes each datagram.
// Receive slots come from one long-lived slab sized batch × 64 KB, so
// the steady state allocates nothing.
func (s *shard) readLoop() {
	defer s.d.wg.Done()
	const slot = 64 << 10
	batch := s.d.cfg.Batch
	slab := make([]byte, batch*slot)
	ds := make([]dgram, batch)
	for {
		for i := range ds {
			ds[i].b = slab[i*slot : (i+1)*slot]
		}
		n, err := s.pc.readBatch(ds)
		if err != nil {
			if closing(err) {
				return
			}
			select {
			case <-s.d.done:
				return
			default:
				continue
			}
		}
		for i := 0; i < n; i++ {
			s.d.route(ds[i].b)
		}
	}
}

// writeLoop drains the shard's ring, coalesces entries into batch
// envelopes, and flushes them with one batched write. The first receive
// blocks (no busy-waiting on an idle shard); the rest of the batch is
// whatever else the ring already holds.
func (s *shard) writeLoop() {
	defer s.d.wg.Done()
	batch := s.d.cfg.Batch
	entries := make([]outEntry, 0, batch)
	ds := make([]dgram, 0, batch)
	bufs := make([]*[]byte, 0, batch)
	open := make(map[packKey]int, batch)
	for {
		entries = entries[:0]
		select {
		case e := <-s.out:
			entries = append(entries, e)
		case <-s.d.done:
			return
		}
	drain:
		for len(entries) < batch {
			select {
			case e := <-s.out:
				entries = append(entries, e)
			default:
				break drain
			}
		}
		ds, bufs = s.pack(entries, ds[:0], bufs[:0], open)
		if len(ds) > 0 {
			if _, err := s.pc.writeBatch(ds); err != nil && !closing(err) {
				// Best-effort, like UDP: the protocols tolerate loss.
				_ = err
			}
		}
		for i, bp := range bufs {
			*bp = ds[i].b
			putSendBuf(bp)
		}
	}
}

// packKey groups coalescible entries: frames share a datagram only when
// sender, destination, and OOB flag all match, because the envelope
// carries one of each.
type packKey struct {
	from, to ident.NodeID
	oob      bool
}

// pack encodes entries into datagrams, coalescing messages with the
// same key into batch envelopes up to the maxDatagram budget.
// Heartbeats and oversized messages are emitted alone, byte-identical
// to a standalone node's datagrams. ds and bufs stay index-aligned: one
// pooled buffer per datagram.
func (s *shard) pack(entries []outEntry, ds []dgram, bufs []*[]byte, open map[packKey]int) ([]dgram, []*[]byte) {
	clear(open)
	for _, e := range entries {
		if e.msg == nil { // heartbeat: payload-free, never coalesced
			bp := sendBufPool.Get().(*[]byte)
			b := appendEnvelope((*bp)[:0], e.from, e.to, flagHeartbeat)
			ds = append(ds, dgram{b: b, to: e.addr})
			bufs = append(bufs, bp)
			continue
		}
		var flags byte
		if e.oob {
			flags = flagOOB
		}
		sz := e.msg.WireSize()
		if sz > wire.MaxFrame || envelopeLen+wire.FrameOverhead+sz > maxDatagram {
			// Too big to frame or to share: a plain envelope of its own.
			bp := sendBufPool.Get().(*[]byte)
			b := appendEnvelope((*bp)[:0], e.from, e.to, flags)
			b = e.msg.Append(b)
			ds = append(ds, dgram{b: b, to: e.addr})
			bufs = append(bufs, bp)
			continue
		}
		k := packKey{from: e.from, to: e.to, oob: e.oob}
		if i, ok := open[k]; ok {
			if len(ds[i].b)+wire.FrameOverhead+sz <= maxDatagram {
				ds[i].b = wire.AppendFrame(ds[i].b, e.msg)
				continue
			}
			delete(open, k) // budget exhausted; start a fresh datagram
		}
		bp := sendBufPool.Get().(*[]byte)
		b := appendEnvelope((*bp)[:0], e.from, e.to, flags|flagBatch)
		b = wire.AppendFrame(b, e.msg)
		ds = append(ds, dgram{b: b, to: e.addr})
		bufs = append(bufs, bp)
		open[k] = len(ds) - 1
	}
	return ds, bufs
}

// hostedTransport is the transport of a dispatcher-hosted node: sends
// enqueue on the home shard's ring (blocking when full — backpressure,
// not loss) and the writer goroutine does the encoding and I/O.
type hostedTransport struct {
	sh *shard
}

func (t *hostedTransport) sendMsg(from, to ident.NodeID, addr netip.AddrPort, msg wire.Message, oob bool) {
	select {
	case t.sh.out <- outEntry{from: from, to: to, addr: addr, msg: msg, oob: oob}:
	case <-t.sh.d.done:
	}
}

func (t *hostedTransport) sendHeartbeat(from, to ident.NodeID, addr netip.AddrPort) {
	select {
	case t.sh.out <- outEntry{from: from, to: to, addr: addr}:
	case <-t.sh.d.done:
	}
}

func (t *hostedTransport) localAddr() *net.UDPAddr { return t.sh.pc.localAddr() }

// close is a no-op: the shard sockets belong to the dispatcher and
// outlive any one hosted node.
func (t *hostedTransport) close() error { return nil }
