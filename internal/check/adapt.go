package check

import (
	"math"

	"repro/internal/adapt"
	"repro/internal/ident"
	"repro/internal/sim"
)

// adaptState is the per-node memory of the adaptation monitor.
type adaptState struct {
	seen       bool
	last       adapt.Snapshot
	lastSwitch sim.Time
}

// OnAdaptRound observes one round-boundary snapshot of a node's
// adaptive controller (wired through core.Engine.SetAdaptObserver).
// It verifies, per observation:
//
//   - estimator sanity: every estimate is finite and non-NaN, the loss
//     estimate stays in [0, 1], the latency estimate is non-negative;
//   - knob bounds: every knob lies inside the configured [min, max]
//     (Env.Adapt must carry the normalized controller config);
//   - dwell: structural switches (hybrid push↔pull mode, routed↔walk
//     digests) are separated by at least the configured dwell time —
//     the anti-flapping contract;
//   - clock sanity: observation times never go backwards.
//
// Like every monitor the hook is passive: it draws no randomness and
// mutates no protocol state, so checked adaptive runs replay
// bit-identically to unchecked ones.
func (c *Checker) OnAdaptRound(node ident.NodeID, s adapt.Snapshot) {
	if !c.opts.Adaptation || c.stopped {
		return
	}
	if c.adaptStates == nil {
		c.adaptStates = make(map[ident.NodeID]*adaptState)
	}
	st := c.adaptStates[node]
	if st == nil {
		st = &adaptState{}
		c.adaptStates[node] = st
	}

	if bad(s.Loss) || s.Loss < 0 || s.Loss > 1 {
		c.report("adaptation", "loss-estimate", node, ident.None, ident.EventID{},
			"loss estimate %v outside [0,1] or non-finite", s.Loss)
	}
	if bad(s.Churn) || s.Churn < 0 {
		c.report("adaptation", "churn-estimate", node, ident.None, ident.EventID{},
			"churn estimate %v negative or non-finite", s.Churn)
	}
	if s.Latency < 0 {
		c.report("adaptation", "latency-estimate", node, ident.None, ident.EventID{},
			"latency estimate %v negative", s.Latency)
	}

	if cfg := c.env.Adapt; cfg != nil {
		k := s.Knobs
		if k.Interval < cfg.IntervalMin || k.Interval > cfg.IntervalMax {
			c.report("adaptation", "interval-bounds", node, ident.None, ident.EventID{},
				"interval %v outside [%v, %v]", k.Interval, cfg.IntervalMin, cfg.IntervalMax)
		}
		if bad(k.PForward) || k.PForward < cfg.PForwardMin || k.PForward > cfg.PForwardMax {
			c.report("adaptation", "pforward-bounds", node, ident.None, ident.EventID{},
				"PForward %v outside [%v, %v]", k.PForward, cfg.PForwardMin, cfg.PForwardMax)
		}
		if bad(k.PSource) || k.PSource < cfg.PSourceMin || k.PSource > cfg.PSourceMax {
			c.report("adaptation", "psource-bounds", node, ident.None, ident.EventID{},
				"PSource %v outside [%v, %v]", k.PSource, cfg.PSourceMin, cfg.PSourceMax)
		}
		if k.Fanout < cfg.FanoutMin || k.Fanout > cfg.FanoutMax {
			c.report("adaptation", "fanout-bounds", node, ident.None, ident.EventID{},
				"fanout %d outside [%d, %d]", k.Fanout, cfg.FanoutMin, cfg.FanoutMax)
		}
	}

	if st.seen {
		if s.At < st.last.At {
			c.report("adaptation", "clock", node, ident.None, ident.EventID{},
				"observation time %v before previous %v", s.At, st.last.At)
		}
		switched := s.Mode != st.last.Mode || s.Knobs.Walk != st.last.Knobs.Walk
		if switched && c.env.Adapt != nil {
			if gap := s.At - st.lastSwitch; gap < c.env.Adapt.Dwell {
				c.report("adaptation", "dwell", node, ident.None, ident.EventID{},
					"structural switch after %v < dwell %v (mode %v→%v, walk %v→%v)",
					gap, c.env.Adapt.Dwell, st.last.Mode, s.Mode, st.last.Knobs.Walk, s.Knobs.Walk)
			}
		}
		if switched {
			st.lastSwitch = s.At
		}
	}
	st.seen = true
	st.last = s
}

// bad reports a non-finite float.
func bad(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }
