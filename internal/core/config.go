// Package core implements the paper's primary contribution: the
// epidemic algorithms that recover events lost by the best-effort
// content-based publish-subscribe layer (paper Sec. III).
//
// Five recovery variants are provided, matching the evaluation in
// Sec. IV: proactive push with positive digests, subscriber-based pull,
// publisher-based pull, their probabilistic combination, and the
// random-routing pull baseline. A sixth pseudo-variant, NoRecovery,
// is the paper's no-recovery baseline and installs no engine at all.
package core

import (
	"fmt"
	"time"

	"repro/internal/adapt"
	"repro/internal/cache"
	"repro/internal/sim"
)

// Algorithm selects the recovery variant.
type Algorithm int

// Recovery algorithms evaluated in the paper (Sec. IV).
const (
	// NoRecovery is the baseline: plain best-effort dispatching.
	NoRecovery Algorithm = iota + 1
	// Push gossips positive digests of cached events along the
	// dispatching tree (Sec. III-B, "Push").
	Push
	// SubscriberPull gossips negative digests toward subscribers of a
	// locally subscribed pattern (Sec. III-B, "Subscriber-Based Pull").
	SubscriberPull
	// PublisherPull source-routes negative digests back toward the
	// publisher of the missing events (Sec. III-B, "Publisher-Based
	// Pull").
	PublisherPull
	// CombinedPull mixes the two pull variants per round with
	// probability PSource (Sec. IV-A, "Combining pull approaches").
	CombinedPull
	// RandomPull routes negative digests entirely at random — the
	// evaluation's sanity baseline (Sec. IV, intro).
	RandomPull
	// Hybrid is our extension beyond the paper (ROADMAP item 5): the
	// engine starts in push mode and switches push ↔ combined pull at
	// runtime as the online loss/churn estimator crosses thresholds
	// (internal/adapt). Not part of Algorithms(): the paper's
	// evaluation set stays the five variants above.
	Hybrid
)

var algorithmNames = map[Algorithm]string{
	NoRecovery:     "no-recovery",
	Push:           "push",
	SubscriberPull: "subscriber-pull",
	PublisherPull:  "publisher-pull",
	CombinedPull:   "combined-pull",
	RandomPull:     "random-pull",
	Hybrid:         "hybrid",
}

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	if s, ok := algorithmNames[a]; ok {
		return s
	}
	return fmt.Sprintf("algorithm(%d)", int(a))
}

// ParseAlgorithm maps a name (as printed by String) to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	for a, name := range algorithmNames {
		if name == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("core: unknown algorithm %q", s)
}

// Algorithms lists every variant in presentation order.
func Algorithms() []Algorithm {
	return []Algorithm{NoRecovery, RandomPull, Push, SubscriberPull, PublisherPull, CombinedPull}
}

// NeedsSeqTags reports whether the algorithm relies on per-(source,
// pattern) sequence numbers for loss detection.
func (a Algorithm) NeedsSeqTags() bool {
	switch a {
	case SubscriberPull, PublisherPull, CombinedPull, RandomPull, Hybrid:
		return true
	default:
		return false
	}
}

// NeedsRoutes reports whether the algorithm requires events to record
// the route they travelled (publisher-based pull).
func (a Algorithm) NeedsRoutes() bool {
	return a == PublisherPull || a == CombinedPull || a == Hybrid
}

// Config parameterizes one recovery engine. Zero values are replaced
// by the paper defaults via Normalize.
type Config struct {
	// Algorithm is the recovery variant.
	Algorithm Algorithm
	// GossipInterval is T, the time between gossip rounds (paper
	// default 0.03 s).
	GossipInterval sim.Time
	// BufferSize is β, the event-buffer capacity (paper default 1500).
	BufferSize int
	// BufferPolicy is the replacement policy (paper: FIFO).
	BufferPolicy cache.Policy
	// PForward is the probability of forwarding a gossip message to
	// each eligible neighbor. The paper names the parameter without
	// giving its value; see DESIGN.md.
	PForward float64
	// PSource is the probability that a combined-pull round is
	// publisher-based.
	PSource float64
	// LostCapacity bounds the Lost buffer (entries).
	LostCapacity int
	// LostTTL expires Lost entries that were never recovered.
	LostTTL sim.Time
	// PendingTTL suppresses duplicate push requests for the same event
	// within this window.
	PendingTTL sim.Time
	// Adaptive, when non-nil, enables the legacy adaptive
	// gossip-interval extension (paper Sec. IV-E suggests it via
	// ref. [14]): a busy/idle heuristic on the interval alone.
	// Mutually exclusive with Adapt.
	Adaptive *AdaptiveConfig
	// Adapt, when non-nil, enables the full closed-loop controller
	// (internal/adapt): an online loss/churn/latency estimator adapts
	// PForward, PSource, fanout, and the round period within bounds.
	// Required (and defaulted) for Algorithm == Hybrid. Mutually
	// exclusive with Adaptive.
	Adapt *adapt.Config
}

// AdaptiveConfig tunes the adaptive gossip-interval extension: the
// interval shrinks toward Min while recovery work is observed and
// relaxes toward Max while the system is loss-free.
type AdaptiveConfig struct {
	// Min and Max bound the interval.
	Min, Max sim.Time
	// ShrinkFactor (<1) multiplies the interval on busy rounds;
	// GrowFactor (>1) on idle rounds.
	ShrinkFactor, GrowFactor float64
}

// DefaultConfig returns the paper's default gossip parameters (Fig. 2)
// for the given algorithm.
func DefaultConfig(a Algorithm) Config {
	return Config{
		Algorithm:      a,
		GossipInterval: 30 * time.Millisecond,
		BufferSize:     1500,
		BufferPolicy:   cache.FIFOPolicy,
		PForward:       0.9,
		PSource:        0.5,
		LostCapacity:   4096,
		LostTTL:        10 * time.Second,
		PendingTTL:     30 * time.Millisecond,
	}
}

// Normalize fills zero fields with defaults and validates ranges.
func (c Config) Normalize() (Config, error) {
	def := DefaultConfig(c.Algorithm)
	if c.GossipInterval == 0 {
		c.GossipInterval = def.GossipInterval
	}
	if c.BufferSize == 0 {
		c.BufferSize = def.BufferSize
	}
	if c.BufferPolicy == 0 {
		c.BufferPolicy = def.BufferPolicy
	}
	if c.PForward == 0 {
		c.PForward = def.PForward
	}
	if c.PSource == 0 {
		c.PSource = def.PSource
	}
	if c.LostCapacity == 0 {
		c.LostCapacity = def.LostCapacity
	}
	if c.LostTTL == 0 {
		c.LostTTL = def.LostTTL
	}
	if c.PendingTTL == 0 {
		c.PendingTTL = def.PendingTTL
	}
	if _, ok := algorithmNames[c.Algorithm]; !ok {
		return c, fmt.Errorf("core: invalid algorithm %d", int(c.Algorithm))
	}
	if c.GossipInterval < 0 || c.BufferSize < 1 {
		return c, fmt.Errorf("core: invalid gossip interval %v or buffer size %d", c.GossipInterval, c.BufferSize)
	}
	if c.PForward < 0 || c.PForward > 1 || c.PSource < 0 || c.PSource > 1 {
		return c, fmt.Errorf("core: probabilities out of range (PForward=%v, PSource=%v)", c.PForward, c.PSource)
	}
	if ad := c.Adaptive; ad != nil {
		if ad.Min <= 0 || ad.Max < ad.Min || ad.ShrinkFactor <= 0 || ad.ShrinkFactor >= 1 || ad.GrowFactor <= 1 {
			return c, fmt.Errorf("core: invalid adaptive config %+v", *ad)
		}
	}
	if c.Algorithm == Hybrid && c.Adapt == nil {
		c.Adapt = &adapt.Config{}
	}
	if c.Adapt != nil {
		if c.Adaptive != nil {
			return c, fmt.Errorf("core: Adapt and the legacy Adaptive extension are mutually exclusive")
		}
		if err := c.Adapt.Normalized(c.GossipInterval).Validate(); err != nil {
			return c, err
		}
	}
	return c, nil
}
