package core

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/wire"
)

// AuditInvariants verifies the engine's internal bounds: the event
// cache respects its capacity and the Lost buffer passes its own
// audit. It is pure — no sweep, no cache touch — so invariant monitors
// can call it mid-run without perturbing a deterministic execution.
func (e *Engine) AuditInvariants(now sim.Time) error {
	if e.buf.Len() > e.buf.Capacity() {
		return fmt.Errorf("core: node %v cache holds %d events over capacity %d",
			e.node.ID(), e.buf.Len(), e.buf.Capacity())
	}
	if err := e.lost.AuditInvariants(now); err != nil {
		return fmt.Errorf("core: node %v %w", e.node.ID(), err)
	}
	return nil
}

// AuditInvariants verifies the buffer's structural invariants: the
// entry count respects the capacity bound, every digest index is
// sorted, duplicate-free, and consistent with the entry map, the
// detection queue is time-ordered with its cursors in bounds, and no
// entry outlived its TTL beyond what the lazy sweep is allowed to
// defer (an expired entry may linger in the internal state, but must
// sit at a queue position the next sweep will visit, so it can never
// be served). The method is pure: unlike the read path it never
// sweeps, so it is safe at any point of a deterministic run.
func (b *LostBuffer) AuditInvariants(now sim.Time) error {
	if b.capacity > 0 && len(b.entries) > b.capacity {
		return fmt.Errorf("lost buffer holds %d entries over capacity %d", len(b.entries), b.capacity)
	}
	if err := b.auditView("all", &b.all, len(b.entries)); err != nil {
		return err
	}
	perPat := 0
	for p, v := range b.byPat {
		if err := b.auditView(fmt.Sprintf("pattern %v", p), v, -1); err != nil {
			return err
		}
		for _, e := range v.items {
			if e.Pattern != p {
				return fmt.Errorf("lost buffer pattern index %v holds foreign entry %+v", p, e)
			}
		}
		perPat += len(v.items)
	}
	if perPat != len(b.entries) {
		return fmt.Errorf("lost buffer pattern indexes hold %d entries, map holds %d", perPat, len(b.entries))
	}
	perSrc := 0
	for s, v := range b.bySrc {
		if err := b.auditView(fmt.Sprintf("source %v", s), v, -1); err != nil {
			return err
		}
		for _, e := range v.items {
			if e.Source != s {
				return fmt.Errorf("lost buffer source index %v holds foreign entry %+v", s, e)
			}
		}
		perSrc += len(v.items)
	}
	if perSrc != len(b.entries) {
		return fmt.Errorf("lost buffer source indexes hold %d entries, map holds %d", perSrc, len(b.entries))
	}
	return b.auditQueue(now)
}

// auditView checks one digest index: strictly ascending canonical
// order (which implies no duplicates), every item present in the entry
// map, and — when wantLen ≥ 0 — the expected cardinality.
func (b *LostBuffer) auditView(name string, v *digestView, wantLen int) error {
	if wantLen >= 0 && len(v.items) != wantLen {
		return fmt.Errorf("lost buffer %s index holds %d entries, want %d", name, len(v.items), wantLen)
	}
	var prev wire.LostEntry
	for i, e := range v.items {
		if i > 0 && compareLost(prev, e) >= 0 {
			return fmt.Errorf("lost buffer %s index out of order at %d: %+v !< %+v", name, i, prev, e)
		}
		if _, ok := b.entries[e]; !ok {
			return fmt.Errorf("lost buffer %s index holds %+v, absent from entry map", name, e)
		}
		prev = e
	}
	return nil
}

// auditQueue checks the detection queue: cursors in bounds, detection
// times non-decreasing (the property the lazy expiry sweep relies on),
// every live entry's current detection time present at some queue
// position at or past the eviction cursor, and every expired entry
// still reachable by a future sweep (position ≥ the expiry cursor).
func (b *LostBuffer) auditQueue(now sim.Time) error {
	if b.head < 0 || b.head > len(b.queue) {
		return fmt.Errorf("lost buffer eviction cursor %d outside queue [0,%d]", b.head, len(b.queue))
	}
	if b.exp < 0 || b.exp > len(b.queue) {
		return fmt.Errorf("lost buffer expiry cursor %d outside queue [0,%d]", b.exp, len(b.queue))
	}
	for i := 1; i < len(b.queue); i++ {
		if b.queue[i].at < b.queue[i-1].at {
			return fmt.Errorf("lost buffer detection queue time went backwards at %d: %v after %v",
				i, b.queue[i].at, b.queue[i-1].at)
		}
	}
	sweepFrom := b.exp
	if sweepFrom < b.head {
		sweepFrom = b.head
	}
	current := make(map[wire.LostEntry]int, len(b.entries))
	for i := b.head; i < len(b.queue); i++ {
		d := b.queue[i]
		if at, ok := b.entries[d.e]; ok && at == d.at {
			current[d.e] = i
		}
	}
	for e, at := range b.entries {
		i, ok := current[e]
		if !ok {
			return fmt.Errorf("lost buffer entry %+v (detected %v) has no live queue position past cursor %d",
				e, at, b.head)
		}
		if b.expired(at, now) && i < sweepFrom {
			return fmt.Errorf("lost buffer entry %+v expired at %v but sits at swept position %d (< %d): unreachable by sweep",
				e, at+b.ttl, i, sweepFrom)
		}
	}
	return nil
}
