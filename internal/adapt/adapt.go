// Package adapt closes the control loop over the epidemic recovery
// knobs (ROADMAP item 5): a per-node online condition estimator — EWMA
// seqno-gap loss rate, link-mutation churn rate, observed recovery
// latency — drives a deterministic controller that moves the live
// knobs (PForward, PSource, pull fanout, round period) inside
// configured bounds through hysteresis-banded setpoint rules, and
// switches a hybrid engine between proactive push and combined
// pull-based recovery when the estimated conditions cross thresholds.
//
// Everything here is deliberately randomness-free: the controller is a
// pure function of the signals the engine feeds it, so adaptive runs
// stay seed-replayable and bit-identical under the sharded executor
// (every signal is node-local state read at that node's own round
// events). See DESIGN.md Sec. 14.
package adapt

import (
	"fmt"
	"math"
	"time"

	"repro/internal/sim"
)

// Mode is the dispatch mode of a hybrid engine.
type Mode uint8

const (
	// ModeNone marks a non-hybrid controller (knob adaptation only).
	ModeNone Mode = iota
	// ModePush gossips positive digests proactively — cheap and fast
	// while losses are rare.
	ModePush
	// ModePull runs combined pull-based recovery — targeted and robust
	// once losses or churn make push digests wasteful or unreliable.
	ModePull
)

func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModePush:
		return "push"
	case ModePull:
		return "pull"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Knobs is one coherent snapshot of the live gossip knobs. The engine
// reads exactly one Knobs value per round (taken at the round
// boundary), so a mid-round adaptation can never tear between the
// forward and pull phases.
type Knobs struct {
	// PForward thins gossip forwarding per eligible neighbor.
	PForward float64
	// PSource picks the publisher-based arm of a combined-pull round.
	PSource float64
	// Fanout is the number of independent gossip initiations per round.
	Fanout int
	// Interval is the gossip round period.
	Interval sim.Time
	// Walk degrades routed pull digests to random walks: engaged when
	// churn (or a recovery stall) says the routing state the digests
	// rely on is stale — the x-overlay finding that random-pull wins on
	// churned scale-free overlays, made condition-sensitive.
	Walk bool
}

// Signals is what one engine observed since the previous round
// boundary. All fields are deltas or instantaneous node-local values.
type Signals struct {
	// Elapsed is the virtual time since the previous observation.
	Elapsed sim.Time
	// Delivered counts events delivered (first copies, any path).
	Delivered uint64
	// Lost counts newly detected losses (seqno gaps, or missing events
	// in push digests for pure-push engines).
	Lost uint64
	// Recovered counts events recovered through gossip.
	Recovered uint64
	// Outstanding is the current Lost-buffer occupancy.
	Outstanding int
	// LinkChanges counts this node's adjacency mutations (link up/down
	// events) since the previous observation.
	LinkChanges uint64
}

// Config bounds and tunes the controller. The zero value of a field
// selects its default (see Normalized); explicit values are validated.
type Config struct {
	// IntervalMin/IntervalMax bound the adapted round period.
	// Defaults: base/3 and base*4, where base is the configured
	// gossip interval.
	IntervalMin, IntervalMax sim.Time
	// PForwardMin/PForwardMax bound the forwarding probability
	// (defaults 0.5 and 1.0).
	PForwardMin, PForwardMax float64
	// PSourceMin/PSourceMax bound the combined-pull source probability
	// (defaults 0.1 and 0.9).
	PSourceMin, PSourceMax float64
	// FanoutMin/FanoutMax bound the per-round gossip fanout
	// (defaults 1 and 3).
	FanoutMin, FanoutMax int

	// LossGain is the per-sample EWMA gain of the loss estimate
	// (default 0.25).
	LossGain float64
	// ChurnTau is the time constant of the churn-rate estimate: one
	// link change bumps the estimate by roughly one unit, decaying
	// with this constant (default 1s). The decay is the rational form
	// tau/(tau+dt) — pure IEEE arithmetic, no transcendentals.
	ChurnTau sim.Time
	// LatencyGain is the per-sample EWMA gain of the recovery-latency
	// estimate (default 0.25).
	LatencyGain float64

	// LossLow/LossHigh is the hysteresis band of the loss estimate:
	// above High the controller tightens (shrink interval, raise
	// PForward, raise fanout) and a hybrid engine switches to pull;
	// below Low it relaxes and the hybrid switches back to push
	// (defaults 0.02 and 0.08).
	LossLow, LossHigh float64
	// ChurnLow/ChurnHigh is the hysteresis band of the churn estimate,
	// in recent link changes (defaults 0.25 and 2).
	ChurnLow, ChurnHigh float64
	// LatencyHigh tightens the interval when the recovery-latency
	// estimate exceeds it (default 8×base).
	LatencyHigh sim.Time
	// StallRounds engages the random-walk degradation after this many
	// consecutive rounds with outstanding losses and zero recoveries
	// (default 2): routed digests are evidently not reaching anyone
	// who can serve them.
	StallRounds int
	// CalmRounds is the streak of calm rounds (loss below the band,
	// churn below the band, empty Lost buffer) required before a
	// structural revert — walk back to routed digests, hybrid back to
	// push (default 8). Degrading needs only a short stall streak;
	// reverting needs a long calm streak. The asymmetry is deliberate:
	// a wrong degrade costs some overhead, a wrong revert hands the
	// next fault wave to the routed machinery that just failed.
	CalmRounds int

	// Shrink (<1) multiplies the interval on tighten, Grow (>1) on
	// relax (defaults 0.7 and 1.15 — tighten fast, relax slowly).
	Shrink, Grow float64
	// PStep is the additive step for PForward/PSource (default 0.05).
	PStep float64
	// Dwell is the minimum time between hybrid mode or walk switches —
	// the anti-flapping guard (default 500ms).
	Dwell sim.Time
}

// Normalized fills zero fields with defaults derived from the engine's
// configured gossip interval and returns the completed config.
func (c Config) Normalized(base sim.Time) Config {
	if base <= 0 {
		base = 30 * time.Millisecond
	}
	if c.IntervalMin == 0 {
		c.IntervalMin = base / 3
	}
	if c.IntervalMax == 0 {
		c.IntervalMax = base * 4
	}
	if c.PForwardMin == 0 {
		c.PForwardMin = 0.5
	}
	if c.PForwardMax == 0 {
		c.PForwardMax = 1.0
	}
	if c.PSourceMin == 0 {
		c.PSourceMin = 0.1
	}
	if c.PSourceMax == 0 {
		c.PSourceMax = 0.9
	}
	if c.FanoutMin == 0 {
		c.FanoutMin = 1
	}
	if c.FanoutMax == 0 {
		c.FanoutMax = 3
	}
	if c.LossGain == 0 {
		c.LossGain = 0.25
	}
	if c.ChurnTau == 0 {
		c.ChurnTau = time.Second
	}
	if c.LatencyGain == 0 {
		c.LatencyGain = 0.25
	}
	if c.LossLow == 0 {
		c.LossLow = 0.02
	}
	if c.LossHigh == 0 {
		c.LossHigh = 0.08
	}
	if c.ChurnLow == 0 {
		c.ChurnLow = 0.25
	}
	if c.ChurnHigh == 0 {
		c.ChurnHigh = 2
	}
	if c.LatencyHigh == 0 {
		c.LatencyHigh = 8 * base
	}
	if c.StallRounds == 0 {
		c.StallRounds = 2
	}
	if c.CalmRounds == 0 {
		c.CalmRounds = 8
	}
	if c.Shrink == 0 {
		c.Shrink = 0.7
	}
	if c.Grow == 0 {
		c.Grow = 1.15
	}
	if c.PStep == 0 {
		c.PStep = 0.05
	}
	if c.Dwell == 0 {
		c.Dwell = 500 * time.Millisecond
	}
	return c
}

// Validate checks a normalized config.
func (c Config) Validate() error {
	switch {
	case c.IntervalMin <= 0 || c.IntervalMax < c.IntervalMin:
		return fmt.Errorf("adapt: invalid interval bounds [%v, %v]", c.IntervalMin, c.IntervalMax)
	case c.PForwardMin < 0 || c.PForwardMax > 1 || c.PForwardMax < c.PForwardMin:
		return fmt.Errorf("adapt: invalid PForward bounds [%v, %v]", c.PForwardMin, c.PForwardMax)
	case c.PSourceMin < 0 || c.PSourceMax > 1 || c.PSourceMax < c.PSourceMin:
		return fmt.Errorf("adapt: invalid PSource bounds [%v, %v]", c.PSourceMin, c.PSourceMax)
	case c.FanoutMin < 1 || c.FanoutMax < c.FanoutMin:
		return fmt.Errorf("adapt: invalid fanout bounds [%d, %d]", c.FanoutMin, c.FanoutMax)
	case c.LossGain <= 0 || c.LossGain > 1 || c.LatencyGain <= 0 || c.LatencyGain > 1:
		return fmt.Errorf("adapt: gains must be in (0,1] (loss=%v, latency=%v)", c.LossGain, c.LatencyGain)
	case c.ChurnTau <= 0:
		return fmt.Errorf("adapt: invalid churn tau %v", c.ChurnTau)
	case c.LossLow < 0 || c.LossHigh <= c.LossLow || c.LossHigh > 1:
		return fmt.Errorf("adapt: invalid loss band [%v, %v]", c.LossLow, c.LossHigh)
	case c.ChurnLow < 0 || c.ChurnHigh <= c.ChurnLow:
		return fmt.Errorf("adapt: invalid churn band [%v, %v]", c.ChurnLow, c.ChurnHigh)
	case c.LatencyHigh <= 0:
		return fmt.Errorf("adapt: invalid latency threshold %v", c.LatencyHigh)
	case c.StallRounds < 1:
		return fmt.Errorf("adapt: invalid stall rounds %d", c.StallRounds)
	case c.CalmRounds < 1:
		return fmt.Errorf("adapt: invalid calm rounds %d", c.CalmRounds)
	case c.Shrink <= 0 || c.Shrink >= 1 || c.Grow <= 1:
		return fmt.Errorf("adapt: invalid step factors (shrink=%v, grow=%v)", c.Shrink, c.Grow)
	case c.PStep <= 0 || c.PStep > 1:
		return fmt.Errorf("adapt: invalid probability step %v", c.PStep)
	case c.Dwell <= 0:
		return fmt.Errorf("adapt: invalid dwell %v", c.Dwell)
	}
	return nil
}

// Estimator maintains the three condition estimates. Exported for the
// hand-trace unit tests; engines use it through the Controller.
type Estimator struct {
	cfg Config

	loss       float64
	lossSeeded bool

	churn float64

	latencySec float64
	latSeeded  bool
}

// NewEstimator builds an estimator over a normalized config.
func NewEstimator(cfg Config) *Estimator { return &Estimator{cfg: cfg} }

// ObserveRound folds one round's signals into the estimates.
func (e *Estimator) ObserveRound(sig Signals) {
	if n := sig.Lost + sig.Delivered; n > 0 {
		sample := float64(sig.Lost) / float64(n)
		if !e.lossSeeded {
			e.loss, e.lossSeeded = sample, true
		} else {
			e.loss += e.cfg.LossGain * (sample - e.loss)
		}
	}
	if sig.Elapsed > 0 {
		// Rational decay tau/(tau+dt): one link change bumps the
		// estimate by ~1 and fades with time constant tau, so the
		// estimate reads as "link changes in the recent past".
		dt := float64(sig.Elapsed)
		tau := float64(e.cfg.ChurnTau)
		decay := tau / (tau + dt)
		rate := float64(sig.LinkChanges) / (dt / float64(time.Second))
		e.churn = e.churn*decay + rate*(1-decay)
	}
}

// ObserveLatency folds one recovery latency sample into the estimate.
func (e *Estimator) ObserveLatency(d sim.Time) {
	if d < 0 {
		return
	}
	sec := float64(d) / float64(time.Second)
	if !e.latSeeded {
		e.latencySec, e.latSeeded = sec, true
	} else {
		e.latencySec += e.cfg.LatencyGain * (sec - e.latencySec)
	}
}

// Loss returns the EWMA loss-fraction estimate in [0, 1].
func (e *Estimator) Loss() float64 { return e.loss }

// Churn returns the decayed link-change estimate.
func (e *Estimator) Churn() float64 { return e.churn }

// Latency returns the EWMA recovery-latency estimate.
func (e *Estimator) Latency() sim.Time {
	return sim.Time(e.latencySec * float64(time.Second))
}

// Snapshot is one round-boundary observation: the knobs the next round
// will run with plus the estimator state behind them. It feeds the
// adaptation invariant monitor and the knob-trajectory metrics.
type Snapshot struct {
	// At is the virtual time of the round boundary.
	At sim.Time
	// Mode is the hybrid dispatch mode (ModeNone for non-hybrid).
	Mode Mode
	// Knobs is the coherent knob set for the next round.
	Knobs Knobs
	// Loss, Churn, Latency are the current estimates.
	Loss, Churn float64
	Latency     sim.Time
	// Stall is the consecutive no-recovery-while-outstanding round
	// count driving the walk degradation.
	Stall int
}

// Stats summarizes one controller's trajectory.
type Stats struct {
	// Rounds counts observations; Adjustments counts rounds where at
	// least one knob moved.
	Rounds, Adjustments uint64
	// ModeSwitches counts hybrid push↔pull transitions; WalkSwitches
	// counts routed↔walk digest transitions.
	ModeSwitches, WalkSwitches uint64
	// PushRounds/PullRounds split hybrid rounds by mode.
	PushRounds, PullRounds uint64
	// WalkRounds counts rounds run with the walk degradation engaged.
	WalkRounds uint64
	// MinInterval/MaxInterval are the extremes the period reached.
	MinInterval, MaxInterval sim.Time
	// MinPForward/MaxPForward are the extremes PForward reached.
	MinPForward, MaxPForward float64
	// MaxFanout is the largest fanout used.
	MaxFanout int
	// Loss, Churn are the final estimates; Mode the final mode.
	Loss, Churn float64
	Mode        Mode
}

// RunStats aggregates controller stats across a run's engines.
type RunStats struct {
	// Engines counts controllers merged in.
	Engines int
	// Counter sums across engines.
	Rounds, Adjustments        uint64
	ModeSwitches, WalkSwitches uint64
	PushRounds, PullRounds     uint64
	WalkRounds                 uint64
	// Knob extremes across all engines and rounds.
	MinInterval, MaxInterval sim.Time
	MinPForward, MaxPForward float64
	MaxFanout                int
	// MeanLoss/MeanChurn average the final per-engine estimates.
	MeanLoss, MeanChurn float64
}

// Merge folds one controller's stats into the aggregate.
func (r *RunStats) Merge(s Stats) {
	if r.Engines == 0 {
		r.MinInterval, r.MaxInterval = s.MinInterval, s.MaxInterval
		r.MinPForward, r.MaxPForward = s.MinPForward, s.MaxPForward
	} else {
		r.MinInterval = min(r.MinInterval, s.MinInterval)
		r.MaxInterval = max(r.MaxInterval, s.MaxInterval)
		r.MinPForward = math.Min(r.MinPForward, s.MinPForward)
		r.MaxPForward = math.Max(r.MaxPForward, s.MaxPForward)
	}
	r.MeanLoss = (r.MeanLoss*float64(r.Engines) + s.Loss) / float64(r.Engines+1)
	r.MeanChurn = (r.MeanChurn*float64(r.Engines) + s.Churn) / float64(r.Engines+1)
	r.Engines++
	r.Rounds += s.Rounds
	r.Adjustments += s.Adjustments
	r.ModeSwitches += s.ModeSwitches
	r.WalkSwitches += s.WalkSwitches
	r.PushRounds += s.PushRounds
	r.PullRounds += s.PullRounds
	r.WalkRounds += s.WalkRounds
	r.MaxFanout = max(r.MaxFanout, s.MaxFanout)
}

// Controller is the per-node deterministic control loop. It draws no
// randomness: given the same signal sequence it produces the same knob
// trajectory, so adaptive runs replay bit-identically.
type Controller struct {
	cfg    Config
	est    *Estimator
	hybrid bool

	knobs Knobs
	base  Knobs // initial knobs; PSource drifts back here when calm
	mode  Mode

	lastSwitch sim.Time
	stall      int
	calm       int
	stats      Stats
}

// New builds a controller. cfg must be normalized (Normalized) and
// valid; initial seeds the knob state and is clamped into bounds.
// Hybrid controllers start in ModePush — the cheap proactive mode —
// and earn their way into pull when conditions degrade.
func New(cfg Config, initial Knobs, hybrid bool) *Controller {
	k := Knobs{
		PForward: clampF(initial.PForward, cfg.PForwardMin, cfg.PForwardMax),
		PSource:  clampF(initial.PSource, cfg.PSourceMin, cfg.PSourceMax),
		Fanout:   clampI(initial.Fanout, cfg.FanoutMin, cfg.FanoutMax),
		Interval: clampT(initial.Interval, cfg.IntervalMin, cfg.IntervalMax),
	}
	c := &Controller{
		cfg:    cfg,
		est:    NewEstimator(cfg),
		hybrid: hybrid,
		knobs:  k,
		base:   k,
	}
	if hybrid {
		c.mode = ModePush
	}
	c.stats.MinInterval, c.stats.MaxInterval = k.Interval, k.Interval
	c.stats.MinPForward, c.stats.MaxPForward = k.PForward, k.PForward
	c.stats.MaxFanout = k.Fanout
	return c
}

// Config returns the controller's (normalized) configuration.
func (c *Controller) Config() Config { return c.cfg }

// Knobs returns the current coherent knob snapshot.
func (c *Controller) Knobs() Knobs { return c.knobs }

// Mode returns the current hybrid mode (ModeNone when non-hybrid).
func (c *Controller) Mode() Mode { return c.mode }

// ObserveLatency feeds one recovery-latency sample.
func (c *Controller) ObserveLatency(d sim.Time) { c.est.ObserveLatency(d) }

// Observe folds one round's signals into the estimates, applies the
// setpoint rules, and returns the snapshot the next round runs with.
func (c *Controller) Observe(now sim.Time, sig Signals) Snapshot {
	c.est.ObserveRound(sig)
	if sig.Outstanding > 0 && sig.Recovered == 0 {
		c.stall++
	} else {
		c.stall = 0
	}
	if c.est.Loss() < c.cfg.LossLow && c.est.Churn() < c.cfg.ChurnLow && sig.Outstanding == 0 {
		c.calm++
	} else {
		c.calm = 0
	}

	loss, churn, lat := c.est.Loss(), c.est.Churn(), c.est.Latency()
	prev := c.knobs
	k := c.knobs
	stalled := c.stall >= c.cfg.StallRounds

	// Interval / PForward / fanout: tighten above the loss band (or
	// when recovery latency blows past its threshold), relax below it.
	// Inside the band the knobs hold — the hysteresis that keeps a
	// noisy estimate from oscillating the setpoints.
	//
	// A persistent stall overrides the band: recovery attempts are not
	// landing at all, so tightening further only queues more digests
	// behind a channel that is failing (under FIFO link serialization,
	// over-tightening congests the very links event dissemination needs
	// — the loss estimate then reads the late arrivals as more loss and
	// locks the spiral). Re-anchor at the calibrated baseline instead
	// and let the walk degradation do the recovering.
	switch {
	case stalled:
		k.Interval = towardT(k.Interval, c.base.Interval, c.cfg.Shrink, c.cfg.Grow)
		k.PForward = stepToward(k.PForward, c.base.PForward, c.cfg.PStep)
		k.Fanout = stepTowardI(k.Fanout, c.base.Fanout)
	case loss > c.cfg.LossHigh || lat > c.cfg.LatencyHigh:
		k.Interval = clampT(sim.Time(float64(k.Interval)*c.cfg.Shrink), c.cfg.IntervalMin, c.cfg.IntervalMax)
		k.PForward = clampF(k.PForward+c.cfg.PStep, c.cfg.PForwardMin, c.cfg.PForwardMax)
		k.Fanout = clampI(k.Fanout+1, c.cfg.FanoutMin, c.cfg.FanoutMax)
	case loss < c.cfg.LossLow && c.stall == 0:
		k.Interval = clampT(sim.Time(float64(k.Interval)*c.cfg.Grow), c.cfg.IntervalMin, c.cfg.IntervalMax)
		k.PForward = clampF(k.PForward-c.cfg.PStep, c.cfg.PForwardMin, c.cfg.PForwardMax)
		k.Fanout = clampI(k.Fanout-1, c.cfg.FanoutMin, c.cfg.FanoutMax)
	}

	// PSource: under churn, recorded publisher routes go stale, so
	// lean on the subscriber arm; when calm, drift back to baseline.
	switch {
	case churn > c.cfg.ChurnHigh:
		k.PSource = clampF(k.PSource-c.cfg.PStep, c.cfg.PSourceMin, c.cfg.PSourceMax)
	case churn < c.cfg.ChurnLow:
		k.PSource = stepToward(k.PSource, c.base.PSource, c.cfg.PStep)
	}

	// Walk and mode transitions share the dwell clock: at most one
	// structural switch per dwell window, so the hybrid cannot flap
	// even if an estimate rides exactly on a threshold (DESIGN.md
	// Sec. 14 gives the argument).
	if now-c.lastSwitch >= c.cfg.Dwell {
		walk, mode := k.Walk, c.mode
		// Degrading is eager, reverting is sticky: a stall (or high
		// churn) means routed recovery is failing right now, so fall
		// back to random walks — and, for the hybrid, make sure the
		// node is pulling at all. The way back requires a sustained
		// calm streak (CalmRounds), not one clean reading: the backlog
		// drains between churn waves, and disengaging then would hand
		// the next wave straight back to the routed digests that just
		// failed — re-engage, re-disengage, and flap at the dwell rate.
		switch {
		case stalled || churn > c.cfg.ChurnHigh:
			walk = true
			if c.hybrid {
				mode = ModePull
			}
		case c.calm >= c.cfg.CalmRounds:
			walk = false
		}
		if c.hybrid && mode == c.mode {
			switch {
			case mode == ModePush && (loss > c.cfg.LossHigh || churn > c.cfg.ChurnHigh):
				mode = ModePull
			case mode == ModePull && c.calm >= c.cfg.CalmRounds:
				mode = ModePush
			}
		}
		// A combined walk+mode change is one structural switch: both
		// take effect at this observation and share one dwell window.
		if walk != k.Walk || mode != c.mode {
			if walk != k.Walk {
				c.stats.WalkSwitches++
			}
			if mode != c.mode {
				c.stats.ModeSwitches++
			}
			k.Walk = walk
			c.mode = mode
			c.lastSwitch = now
		}
	}

	c.knobs = k
	c.stats.Rounds++
	if k != prev {
		c.stats.Adjustments++
	}
	switch c.mode {
	case ModePush:
		c.stats.PushRounds++
	case ModePull:
		c.stats.PullRounds++
	}
	if k.Walk {
		c.stats.WalkRounds++
	}
	c.stats.MinInterval = min(c.stats.MinInterval, k.Interval)
	c.stats.MaxInterval = max(c.stats.MaxInterval, k.Interval)
	c.stats.MinPForward = math.Min(c.stats.MinPForward, k.PForward)
	c.stats.MaxPForward = math.Max(c.stats.MaxPForward, k.PForward)
	c.stats.MaxFanout = max(c.stats.MaxFanout, k.Fanout)

	return Snapshot{
		At:      now,
		Mode:    c.mode,
		Knobs:   k,
		Loss:    loss,
		Churn:   churn,
		Latency: lat,
		Stall:   c.stall,
	}
}

// Stats returns the trajectory summary with the final estimates filled
// in.
func (c *Controller) Stats() Stats {
	s := c.stats
	s.Loss, s.Churn = c.est.Loss(), c.est.Churn()
	s.Mode = c.mode
	return s
}

func clampF(v, lo, hi float64) float64 {
	return math.Min(math.Max(v, lo), hi)
}

func clampI(v, lo, hi int) int {
	return min(max(v, lo), hi)
}

func clampT(v, lo, hi sim.Time) sim.Time {
	return min(max(v, lo), hi)
}

// stepToward moves v toward target by at most step.
func stepToward(v, target, step float64) float64 {
	switch {
	case v < target:
		return math.Min(v+step, target)
	case v > target:
		return math.Max(v-step, target)
	}
	return v
}

// stepTowardI moves v toward target by at most one.
func stepTowardI(v, target int) int {
	switch {
	case v < target:
		return v + 1
	case v > target:
		return v - 1
	}
	return v
}

// towardT moves v toward target multiplicatively — shrink when above,
// grow when below — without overshooting.
func towardT(v, target sim.Time, shrink, grow float64) sim.Time {
	switch {
	case v > target:
		return max(sim.Time(float64(v)*shrink), target)
	case v < target:
		return min(sim.Time(float64(v)*grow), target)
	}
	return v
}
