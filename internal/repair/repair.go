// Package repair is the decentralized, self-stabilizing overlay
// maintenance protocol: the replacement for the fault injector's
// omniscient ReconnectAround healing. Dispatchers detect dead
// neighbors, elect a per-component leader by epidemic minimum with TTL
// aging, learn candidate endpoints from neighbor gossip and a small
// bootstrap contact set (the "supervisor registry" of the supervised
// publish-subscribe literature), and re-link under local degree
// constraints with randomized backoff — converging to a legal overlay
// of the topology's kind (connected, degree-bounded, acyclic for
// KindTree) from any reachable configuration: mass churn, partitions,
// or adversarial initial graphs.
//
// # Model
//
// The protocol runs in rounds, one kernel event per Period. A round
// executes every live node's maintenance move in id order; each move
// reads only the node's own state, its neighbors' published state
// (leader, age, parent, stability — one hop of shared-memory state
// reading, the standard self-stabilization model), its candidate
// cache, and the liveness of nodes it probes (a failure-detector
// query). No move reads global topology; the one exception is
// delegated to topology.AddLink, whose cycle refusal on KindTree
// stands in for the leader-comparison handshake a message-passing
// implementation would run before committing a link.
//
// # Convergence argument (DESIGN.md Sec. 13 carries the full version)
//
//   - Over-degree nodes shed their highest-id excess links; proposals
//     never create over-degree, so the degree bound is reached once
//     and retained.
//   - Leader election: each node adopts the smallest (leader, age+1)
//     among itself and its neighbors, discarding records older than
//     TTL rounds. Live-leader records refresh at age 0 every round, so
//     within diameter rounds every component agrees on its minimum
//     live id; records of a crashed leader age by one per hop-round
//     and purge within TTL rounds. Parent pointers (the neighbor the
//     record came from) have strictly decreasing age toward the
//     leader, hence form a spanning forest of the component.
//   - Merging: nodes whose candidate probe reveals a foreign leader
//     (or that are isolated) propose a link; rejected proposals back
//     off a random number of rounds. Bootstrap contacts give every
//     component an expected path to the majority component, so the
//     component count strictly decreases until connected.
//   - Tree restoration (KindTree): an edge whose two endpoints agree
//     on the leader, are neither each other's parent, and have both
//     been stable for StableRounds is redundant — the parent forest
//     spans without it — and its higher-id endpoint drops it. Each
//     drop resets stability, so drops are spaced and never race the
//     forest they rely on; cycles vanish one edge per settled round.
//   - Once legal and settled there are no over-degree nodes, no
//     foreign leaders, and no redundant edges: the protocol performs
//     no further mutations, which is the quiescence the convergence
//     monitor (internal/check) asserts.
package repair

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/ident"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Config wires the protocol into one run.
type Config struct {
	Kernel *sim.Kernel
	Topo   *topology.Tree
	// Period is the round interval. Default 50ms.
	Period sim.Time
	// TTL is the maximum age (in rounds/hops) of a leader record before
	// it is discarded; it bounds how long a crashed leader's id can
	// keep circulating. Must exceed the overlay diameter. Default 24.
	TTL int
	// Bootstrap is how many well-known contact node ids each dispatcher
	// holds (the decentralized stand-in for a supervisor registry);
	// they are drawn once, deterministically, at construction.
	// Default 3.
	Bootstrap int
	// CandCap bounds the learned-candidate cache per node. Default 8.
	CandCap int
	// MaxBackoff is the largest randomized backoff, in rounds, after a
	// rejected link proposal. Default 8.
	MaxBackoff int
	// StableRounds is how many rounds both endpoints must have been
	// unchanged before a redundant edge may be dropped (KindTree).
	// Default 3.
	StableRounds int
	// IsDown reports whether a dispatcher is currently crashed. May be
	// nil when the run injects no faults.
	IsDown func(ident.NodeID) bool
	// OnLinkUp/OnLinkDown run after the protocol adds or removes a
	// link, with both endpoints — the scenario wires pubsub
	// subscription resync and tracing here. Either may be nil.
	OnLinkUp   func(a, b ident.NodeID)
	OnLinkDown func(a, b ident.NodeID)
}

// Stats counts what the protocol did over the run.
type Stats struct {
	// Rounds counts maintenance rounds executed.
	Rounds uint64
	// LinksAdded/LinksDropped count protocol link mutations;
	// DegreeDrops is the subset of drops shedding over-degree.
	LinksAdded, LinksDropped, DegreeDrops uint64
	// ProposalsRejected counts link proposals the topology refused
	// (degree races, duplicate links, same-component adds on KindTree).
	ProposalsRejected uint64
	// Reattaches counts isolated dispatchers that regained a link;
	// ReattachTotal accumulates their isolation time, so mean reattach
	// latency is ReattachTotal/Reattaches.
	Reattaches    uint64
	ReattachTotal sim.Time
	// LastChangeAt is the virtual time of the protocol's most recent
	// topology mutation (zero when it never mutated).
	LastChangeAt sim.Time
}

// node is the published per-dispatcher protocol state.
type node struct {
	leader        ident.NodeID
	age           int
	parent        ident.NodeID   // neighbor the leader record came from; None at the leader
	stable        int            // full rounds since the node's last local change
	backoff       int            // rounds left before the next link proposal
	isolatedSince sim.Time       // when degree dropped to 0; -1 while attached
	cand          []ident.NodeID // learned candidate endpoints
	boot          []ident.NodeID // fixed bootstrap contacts
}

// Protocol is one run's maintenance protocol instance. Build with New,
// then Start; it reschedules itself every Period until the kernel
// drains. Not safe for concurrent use.
type Protocol struct {
	cfg   Config
	rng   *rand.Rand
	nodes []node
	st    Stats
	// probesPerRound bounds candidate probes per node per round.
	probesPerRound int
}

// New builds the protocol over the run's topology. Its randomness
// (bootstrap draws, candidate sampling, backoff) comes from a dedicated
// kernel stream, so enabling it never perturbs workload or fault
// streams.
func New(cfg Config) (*Protocol, error) {
	if cfg.Kernel == nil || cfg.Topo == nil {
		return nil, fmt.Errorf("repair: Kernel and Topo are required")
	}
	if cfg.Period <= 0 {
		cfg.Period = 50 * time.Millisecond
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 24
	}
	if cfg.Bootstrap <= 0 {
		cfg.Bootstrap = 3
	}
	if cfg.CandCap <= 0 {
		cfg.CandCap = 8
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 8
	}
	if cfg.StableRounds <= 0 {
		cfg.StableRounds = 3
	}
	p := &Protocol{
		cfg:            cfg,
		rng:            cfg.Kernel.NewStream(0x72657072), // "repr"
		nodes:          make([]node, cfg.Topo.N()),
		probesPerRound: 4,
	}
	n := cfg.Topo.N()
	for i := range p.nodes {
		v := &p.nodes[i]
		v.leader = ident.NodeID(i)
		v.parent = ident.None
		v.isolatedSince = -1
		if cfg.Topo.Degree(ident.NodeID(i)) == 0 {
			v.isolatedSince = 0 // isolated from the start
		}
		if n > 1 {
			v.boot = make([]ident.NodeID, 0, cfg.Bootstrap)
			for len(v.boot) < cfg.Bootstrap {
				c := ident.NodeID(p.rng.Intn(n))
				if c != ident.NodeID(i) && !contains(v.boot, c) {
					v.boot = append(v.boot, c)
				}
				if len(v.boot) >= n-1 {
					break
				}
			}
		}
	}
	return p, nil
}

// Start schedules the first maintenance round.
func (p *Protocol) Start() {
	p.cfg.Kernel.After(p.cfg.Period, p.round)
}

// Stats returns what the protocol has done so far.
func (p *Protocol) Stats() Stats { return p.st }

func (p *Protocol) down(v ident.NodeID) bool {
	return p.cfg.IsDown != nil && p.cfg.IsDown(v)
}

// round executes one maintenance move per live node, in id order, then
// reschedules itself.
func (p *Protocol) round() {
	p.st.Rounds++
	t := p.cfg.Topo
	now := p.cfg.Kernel.Now()
	for i := range p.nodes {
		v := ident.NodeID(i)
		s := &p.nodes[i]
		if p.down(v) {
			// A crashed dispatcher holds no protocol state: it restarts
			// believing itself leader, exactly the self-stabilization
			// contract.
			s.leader, s.age, s.parent, s.stable, s.backoff = v, 0, ident.None, 0, 0
			s.cand = s.cand[:0]
			s.isolatedSince = -1
			continue
		}
		if s.isolatedSince < 0 && t.Degree(v) == 0 {
			s.isolatedSince = now
		}
		p.shedOverDegree(v, s)
		p.refreshLeader(v, s)
		p.learnCandidates(v, s)
		p.dropRedundant(v, s)
		p.propose(v, s, now)
	}
	p.cfg.Kernel.After(p.cfg.Period, p.round)
}

// shedOverDegree removes excess links — highest-id non-parent
// neighbors first — until v is within the degree bound. Only
// adversarial initial graphs produce over-degree; proposals never do.
func (p *Protocol) shedOverDegree(v ident.NodeID, s *node) {
	t := p.cfg.Topo
	for t.Degree(v) > t.MaxDegree() {
		drop := ident.NodeID(-1)
		for _, w := range t.Neighbors(v) {
			if w == s.parent {
				continue
			}
			if w > drop {
				drop = w
			}
		}
		if drop < 0 {
			drop = t.Neighbors(v)[0] // parent is the only neighbor left
		}
		p.removeLink(v, drop)
		p.st.DegreeDrops++
	}
}

// refreshLeader adopts the smallest (leader, age+1) record among v
// itself and its live neighbors, discarding records at TTL. Ties on
// leader id prefer the smallest age (freshest route).
func (p *Protocol) refreshLeader(v ident.NodeID, s *node) {
	t := p.cfg.Topo
	bestLeader, bestAge, bestParent := v, 0, ident.None
	for _, w := range t.Neighbors(v) {
		if p.down(w) {
			continue
		}
		ws := &p.nodes[w]
		age := ws.age + 1
		if age >= p.cfg.TTL {
			continue
		}
		if ws.leader < bestLeader || (ws.leader == bestLeader && age < bestAge) {
			bestLeader, bestAge, bestParent = ws.leader, age, w
		}
	}
	if bestLeader != s.leader || bestParent != s.parent {
		s.stable = 0
	} else {
		s.stable++
	}
	s.leader, s.age, s.parent = bestLeader, bestAge, bestParent
}

// learnCandidates gossips endpoints: from each neighbor, v learns one
// random neighbor-of-neighbor and one random entry of the neighbor's
// own cache, bounded by CandCap with random eviction.
func (p *Protocol) learnCandidates(v ident.NodeID, s *node) {
	t := p.cfg.Topo
	for _, w := range t.Neighbors(v) {
		if p.down(w) {
			continue
		}
		if wn := t.Neighbors(w); len(wn) > 0 {
			p.offerCandidate(v, s, wn[p.rng.Intn(len(wn))])
		}
		if wc := p.nodes[w].cand; len(wc) > 0 {
			p.offerCandidate(v, s, wc[p.rng.Intn(len(wc))])
		}
	}
}

func (p *Protocol) offerCandidate(v ident.NodeID, s *node, c ident.NodeID) {
	if c == v || contains(s.cand, c) {
		return
	}
	if len(s.cand) < p.cfg.CandCap {
		s.cand = append(s.cand, c)
		return
	}
	s.cand[p.rng.Intn(len(s.cand))] = c
}

// dropRedundant removes one cycle edge per settled round on KindTree
// overlays: an edge to a lower-id neighbor (so exactly one endpoint
// owns the drop) where both endpoints agree on the leader, neither is
// the other's parent — the spanning parent forest survives without the
// edge — and both have been stable for StableRounds.
func (p *Protocol) dropRedundant(v ident.NodeID, s *node) {
	t := p.cfg.Topo
	if t.Kind() != topology.KindTree || s.stable < p.cfg.StableRounds {
		return
	}
	for _, w := range t.Neighbors(v) {
		if w >= v || w == s.parent || p.down(w) {
			continue
		}
		ws := &p.nodes[w]
		if ws.parent == v || ws.leader != s.leader || ws.stable < p.cfg.StableRounds {
			continue
		}
		p.removeLink(v, w)
		s.stable, ws.stable = 0, 0
		return
	}
}

// propose attempts one link addition when v has a free slot and no
// backoff: a bounded number of random candidate probes looking for a
// live, unsaturated, unlinked endpoint in a foreign component (by
// leader comparison; an isolated v takes any endpoint). Both sides
// must have held their leader record for StableRounds — a node still
// converging has no reliable component identity, and proposing on a
// transient disagreement would add links a legal overlay never asked
// for. A refusal from the topology — a degree race, or KindTree's
// cycle check catching a stale leader — costs a randomized backoff.
func (p *Protocol) propose(v ident.NodeID, s *node, now sim.Time) {
	t := p.cfg.Topo
	if s.backoff > 0 {
		s.backoff--
		return
	}
	if s.stable < p.cfg.StableRounds || t.Degree(v) >= t.MaxDegree() {
		return
	}
	pool := len(s.boot) + len(s.cand)
	if pool == 0 {
		return
	}
	for probe := 0; probe < p.probesPerRound; probe++ {
		i := p.rng.Intn(pool)
		var w ident.NodeID
		if i < len(s.boot) {
			w = s.boot[i]
		} else {
			w = s.cand[i-len(s.boot)]
		}
		if w == v || p.down(w) || t.HasLink(v, w) || t.Degree(w) >= t.MaxDegree() {
			continue
		}
		ws := &p.nodes[w]
		if ws.stable < p.cfg.StableRounds {
			continue // candidate still converging: identity unreliable
		}
		if ws.leader == s.leader && t.Degree(v) > 0 {
			continue // same component (as far as the protocol can tell)
		}
		if err := t.AddLink(v, w); err != nil {
			p.st.ProposalsRejected++
			s.backoff = 1 + p.rng.Intn(p.cfg.MaxBackoff)
			return
		}
		p.st.LinksAdded++
		p.st.LastChangeAt = p.cfg.Kernel.Now()
		s.stable, ws.stable = 0, 0
		p.noteAttached(v, s, now)
		p.noteAttached(w, ws, now)
		if p.cfg.OnLinkUp != nil {
			p.cfg.OnLinkUp(v, w)
		}
		return
	}
}

// noteAttached closes an isolation span when the node just regained
// its first link.
func (p *Protocol) noteAttached(v ident.NodeID, s *node, now sim.Time) {
	if s.isolatedSince >= 0 && p.cfg.Topo.Degree(v) > 0 {
		p.st.Reattaches++
		p.st.ReattachTotal += now - s.isolatedSince
		s.isolatedSince = -1
	}
}

// removeLink drops the edge v-w and fires the hook.
func (p *Protocol) removeLink(v, w ident.NodeID) {
	if err := p.cfg.Topo.RemoveLink(v, w); err != nil {
		return // raced another removal this round
	}
	p.st.LinksDropped++
	p.st.LastChangeAt = p.cfg.Kernel.Now()
	if p.cfg.OnLinkDown != nil {
		p.cfg.OnLinkDown(v, w)
	}
}

func contains(s []ident.NodeID, v ident.NodeID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
