// Package topology models the overlay network of dispatchers: an
// unrooted tree with bounded node degree (the paper connects each
// dispatcher to at most four others, Sec. IV-A), plus the mutation
// operations used by the reconfiguration scenario — breaking a link and
// replacing it with another that keeps the network connected
// (Sec. IV-A, "Frequency of reconfiguration").
package topology

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/ident"
)

// Common errors returned by mutation operations.
var (
	ErrNoSuchLink   = errors.New("topology: no such link")
	ErrLinkExists   = errors.New("topology: link already exists")
	ErrDegreeFull   = errors.New("topology: node degree limit reached")
	ErrWouldCycle   = errors.New("topology: link would create a cycle")
	ErrSameEndpoint = errors.New("topology: self link")
)

// Link is an undirected edge between two dispatchers. The canonical
// form has A < B.
type Link struct {
	A, B ident.NodeID
}

// Canon returns the link with endpoints in canonical order.
func (l Link) Canon() Link {
	if l.A > l.B {
		return Link{A: l.B, B: l.A}
	}
	return l
}

// Other returns the endpoint opposite to n. It panics when n is not an
// endpoint of the link.
func (l Link) Other(n ident.NodeID) ident.NodeID {
	switch n {
	case l.A:
		return l.B
	case l.B:
		return l.A
	default:
		panic(fmt.Sprintf("topology: %v is not an endpoint of %v-%v", n, l.A, l.B))
	}
}

// Tree is a mutable overlay topology. During normal operation it is a
// spanning tree of the dispatchers; while a reconfiguration is in
// progress (between RemoveLink and AddLink) it is a two-component
// forest.
//
// Tree is not safe for concurrent use.
type Tree struct {
	n         int
	maxDegree int
	adj       [][]ident.NodeID
	links     int
	version   uint64
	// kind is the overlay family (see overlay.go). The zero value is
	// KindTree; only KindTree refuses intra-component links in AddLink.
	kind Kind
	// incarnation counts how many times each (canonical) link has been
	// created. A re-created link is a new connection: messages in
	// flight on the previous incarnation must not be delivered on the
	// new one.
	incarnation map[Link]uint64

	// routing cache, rebuilt lazily per version: a rooted-forest view
	// (BFS parent, depth, component id) from which hop distances are
	// answered by an LCA climb. Replaces the old N×N distance matrix,
	// which was ~20 GB at N=100k.
	distVersion uint64
	parent      []int32
	depth       []int32
	comp        []int32
	compSize    []int64

	// onMutate, when set, runs after every structural mutation
	// (addEdge, RemoveLink). Installed by invariant monitors; nil in
	// ordinary runs, costing one nil check per mutation.
	onMutate func()
}

// New builds a random spanning tree over n dispatchers with node degree
// at most maxDegree. Nodes join one at a time and attach to a uniformly
// random node among those at the smallest depth that still has a free
// slot; this yields the "balanced-ish" trees described in DESIGN.md,
// whose mean pairwise distance at N=100, maxDegree=4 matches the
// paper's baseline delivery anchors.
func New(n, maxDegree int, rng *rand.Rand) (*Tree, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: need at least 1 node, got %d", n)
	}
	if maxDegree < 2 && n > 2 {
		return nil, fmt.Errorf("topology: maxDegree %d cannot connect %d nodes", maxDegree, n)
	}
	t := &Tree{
		n:         n,
		maxDegree: maxDegree,
		adj:       make([][]ident.NodeID, n),
	}
	// Nodes attach to a uniformly random node among those at the
	// smallest depth that still has a free slot. The original builder
	// re-scanned all earlier nodes per join (O(N²), ~10¹⁰ steps at
	// N=100k); this one keeps the free nodes of the current frontier
	// depth in a Fenwick tree over node ids and answers "the r-th
	// candidate in ascending id order" as an order-statistic descent.
	// Because candidates appear in the same ascending order the scan
	// produced and the candidate count is identical, every rng.Intn
	// draw and every chosen parent is bit-identical to the old builder
	// at every N.
	depth := make([]int, n)
	frontier := newFrontier(n)
	frontier.insert(0) // node 0 sits alone at depth 0
	pending := [][]ident.NodeID{nil, nil}
	minDepth := 0
	for i := 1; i < n; i++ {
		for frontier.count == 0 {
			minDepth++
			if minDepth >= len(pending) || len(pending) == 0 {
				return nil, fmt.Errorf("topology: no free slots for node %d (maxDegree=%d)", i, maxDegree)
			}
			for _, v := range pending[minDepth] {
				if len(t.adj[v]) < maxDegree {
					frontier.insert(int(v))
				}
			}
			pending[minDepth] = nil
		}
		parent := ident.NodeID(frontier.selectNth(rng.Intn(frontier.count)))
		t.addEdge(parent, ident.NodeID(i))
		depth[i] = depth[parent] + 1
		if len(t.adj[parent]) >= maxDegree {
			frontier.remove(int(parent))
		}
		for depth[i] >= len(pending) {
			pending = append(pending, nil)
		}
		pending[depth[i]] = append(pending[depth[i]], ident.NodeID(i))
	}
	return t, nil
}

// frontier is a Fenwick (binary indexed) tree over node ids holding
// 0/1 membership counts: the builder's candidate set at the current
// minimum depth, supporting O(log n) insert/remove and "select the
// r-th member in ascending id order".
type frontier struct {
	tree  []int32
	in    []bool
	count int
}

func newFrontier(n int) *frontier {
	return &frontier{tree: make([]int32, n+1), in: make([]bool, n)}
}

func (f *frontier) add(i, delta int) {
	for i++; i < len(f.tree); i += i & (-i) {
		f.tree[i] += int32(delta)
	}
}

func (f *frontier) insert(i int) {
	if !f.in[i] {
		f.in[i] = true
		f.count++
		f.add(i, 1)
	}
}

func (f *frontier) remove(i int) {
	if f.in[i] {
		f.in[i] = false
		f.count--
		f.add(i, -1)
	}
}

// selectNth returns the id of the r-th member (0-based) in ascending
// order, via the standard Fenwick order-statistic descent.
func (f *frontier) selectNth(r int) int {
	want := int32(r) + 1
	pos := 0
	mask := 1
	for mask<<1 < len(f.tree) {
		mask <<= 1
	}
	for ; mask > 0; mask >>= 1 {
		next := pos + mask
		if next < len(f.tree) && f.tree[next] < want {
			want -= f.tree[next]
			pos = next
		}
	}
	return pos // pos is the 1-based prefix position minus one == node id
}

// NewLine builds a path topology 0-1-2-...-(n-1). Used by tests that
// need predictable hop counts.
func NewLine(n int) *Tree {
	t := &Tree{n: n, maxDegree: 2, adj: make([][]ident.NodeID, n)}
	for i := 0; i < n-1; i++ {
		t.addEdge(ident.NodeID(i), ident.NodeID(i+1))
	}
	return t
}

// NewStar builds a star with node 0 at the center. Used by tests.
func NewStar(n int) *Tree {
	t := &Tree{n: n, maxDegree: n - 1, adj: make([][]ident.NodeID, n)}
	for i := 1; i < n; i++ {
		t.addEdge(0, ident.NodeID(i))
	}
	return t
}

func (t *Tree) addEdge(a, b ident.NodeID) {
	t.adj[a] = append(t.adj[a], b)
	t.adj[b] = append(t.adj[b], a)
	t.links++
	t.version++
	if t.incarnation == nil {
		t.incarnation = make(map[Link]uint64)
	}
	t.incarnation[Link{A: a, B: b}.Canon()]++
	if t.onMutate != nil {
		t.onMutate()
	}
}

// SetMutationHook installs fn to run after every structural mutation
// of the tree: each addEdge (AddLink, ReconnectAround, restart rejoin)
// and each RemoveLink (including the per-link removals inside
// RemoveNode). Passing nil removes the hook. The hook must not mutate
// the tree.
func (t *Tree) SetMutationHook(fn func()) { t.onMutate = fn }

// LinkIncarnation returns how many times the link between a and b has
// been created so far (0 when it never existed). Transport layers use
// it to drop traffic that was in flight on a previous incarnation of a
// re-created link.
func (t *Tree) LinkIncarnation(a, b ident.NodeID) uint64 {
	return t.incarnation[Link{A: a, B: b}.Canon()]
}

// N returns the number of dispatchers.
func (t *Tree) N() int { return t.n }

// MaxDegree returns the degree bound.
func (t *Tree) MaxDegree() int { return t.maxDegree }

// Version increases on every mutation; callers use it to invalidate
// derived state.
func (t *Tree) Version() uint64 { return t.version }

// NumLinks returns the number of links currently present.
func (t *Tree) NumLinks() int { return t.links }

// Degree returns the number of neighbors of n.
func (t *Tree) Degree(n ident.NodeID) int { return len(t.adj[n]) }

// Neighbors returns the neighbors of n. The returned slice is owned by
// the tree and must not be mutated or retained across mutations.
func (t *Tree) Neighbors(n ident.NodeID) []ident.NodeID { return t.adj[n] }

// HasLink reports whether a and b are directly connected.
func (t *Tree) HasLink(a, b ident.NodeID) bool {
	return t.NeighborSlot(a, b) >= 0
}

// NeighborSlot returns the index of b in a's adjacency list, or -1 when
// a and b are not directly connected. Slots are stable between
// mutations of a's adjacency; a RemoveLink at a may compact later slots
// down by one. Transport layers use the slot to key dense per-neighbor
// state (e.g. FIFO queue occupancy) without hashing.
func (t *Tree) NeighborSlot(a, b ident.NodeID) int {
	for i, x := range t.adj[a] {
		if x == b {
			return i
		}
	}
	return -1
}

// Links returns every link in canonical order. The slice is freshly
// allocated.
func (t *Tree) Links() []Link {
	out := make([]Link, 0, t.links)
	for a := 0; a < t.n; a++ {
		for _, b := range t.adj[a] {
			if ident.NodeID(a) < b {
				out = append(out, Link{A: ident.NodeID(a), B: b})
			}
		}
	}
	return out
}

// RandomLink returns a uniformly random link. It panics on an empty
// topology.
func (t *Tree) RandomLink(rng *rand.Rand) Link {
	links := t.Links()
	if len(links) == 0 {
		panic("topology: no links")
	}
	return links[rng.Intn(len(links))]
}

// RemoveLink deletes the link between a and b, splitting the tree into
// two components.
func (t *Tree) RemoveLink(a, b ident.NodeID) error {
	if !t.HasLink(a, b) {
		return fmt.Errorf("%w: %v-%v", ErrNoSuchLink, a, b)
	}
	t.adj[a] = removeNode(t.adj[a], b)
	t.adj[b] = removeNode(t.adj[b], a)
	t.links--
	t.version++
	if t.onMutate != nil {
		t.onMutate()
	}
	return nil
}

func removeNode(s []ident.NodeID, n ident.NodeID) []ident.NodeID {
	for i, x := range s {
		if x == n {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// AddLink connects a and b. It fails when the link exists or an
// endpoint is at its degree limit. On KindTree overlays it also fails
// when the endpoints are already connected (a new link inside one
// component would create a cycle); cyclic kinds accept intra-component
// links — redundancy is their point.
func (t *Tree) AddLink(a, b ident.NodeID) error {
	switch {
	case a == b:
		return ErrSameEndpoint
	case t.HasLink(a, b):
		return fmt.Errorf("%w: %v-%v", ErrLinkExists, a, b)
	case len(t.adj[a]) >= t.maxDegree:
		return fmt.Errorf("%w: %v", ErrDegreeFull, a)
	case len(t.adj[b]) >= t.maxDegree:
		return fmt.Errorf("%w: %v", ErrDegreeFull, b)
	case t.kind == KindTree && t.sameComponent(a, b):
		return fmt.Errorf("%w: %v-%v", ErrWouldCycle, a, b)
	}
	t.addEdge(a, b)
	return nil
}

// sameComponent reports whether a BFS from a reaches b.
func (t *Tree) sameComponent(a, b ident.NodeID) bool {
	if a == b {
		return true
	}
	seen := make([]bool, t.n)
	seen[a] = true
	queue := []ident.NodeID{a}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, y := range t.adj[x] {
			if y == b {
				return true
			}
			if !seen[y] {
				seen[y] = true
				queue = append(queue, y)
			}
		}
	}
	return false
}

// Component returns the IDs of every node reachable from a, including a
// itself, in BFS order.
func (t *Tree) Component(a ident.NodeID) []ident.NodeID {
	seen := make([]bool, t.n)
	seen[a] = true
	queue := []ident.NodeID{a}
	for i := 0; i < len(queue); i++ {
		for _, y := range t.adj[queue[i]] {
			if !seen[y] {
				seen[y] = true
				queue = append(queue, y)
			}
		}
	}
	return queue
}

// Connected reports whether the topology is a single component.
func (t *Tree) Connected() bool {
	return len(t.Component(0)) == t.n
}

// IsTree reports whether the topology is connected and acyclic.
func (t *Tree) IsTree() bool {
	return t.links == t.n-1 && t.Connected()
}

// ReplacementLink chooses a random link (x, y) that reconnects the two
// components around the removed link broken, respecting the degree
// bound. The topology may be a forest with further links missing
// (overlapping reconfigurations, paper Sec. IV-A): only the components
// containing broken.A and broken.B are considered, which keeps each
// repair independent. The replacement differs from the broken link
// whenever any other valid pair exists.
func (t *Tree) ReplacementLink(broken Link, rng *rand.Rand) (Link, error) {
	if t.HasLink(broken.A, broken.B) {
		return Link{}, fmt.Errorf("topology: link %v-%v still present", broken.A, broken.B)
	}
	compA := t.Component(broken.A)
	for _, x := range compA {
		if x == broken.B {
			return Link{}, fmt.Errorf("topology: endpoints of %v-%v already reconnected", broken.A, broken.B)
		}
	}
	compB := t.Component(broken.B)
	freeA := freeSlots(t, compA)
	freeB := freeSlots(t, compB)
	if len(freeA) == 0 || len(freeB) == 0 {
		return Link{}, fmt.Errorf("topology: no degree-%d slots to reconnect %v-%v", t.maxDegree, broken.A, broken.B)
	}
	// Prefer a replacement different from the broken link.
	var candA []ident.NodeID
	for _, x := range freeA {
		if x != broken.A {
			candA = append(candA, x)
		}
	}
	var candB []ident.NodeID
	for _, y := range freeB {
		if y != broken.B {
			candB = append(candB, y)
		}
	}
	a, b := broken.A, broken.B
	switch {
	case len(candA) > 0 && len(candB) > 0:
		a = candA[rng.Intn(len(candA))]
		b = candB[rng.Intn(len(candB))]
	case len(candA) > 0:
		a = candA[rng.Intn(len(candA))]
		b = broken.B
	case len(candB) > 0:
		a = broken.A
		b = candB[rng.Intn(len(candB))]
	}
	return Link{A: a, B: b}.Canon(), nil
}

func freeSlots(t *Tree, comp []ident.NodeID) []ident.NodeID {
	var out []ident.NodeID
	for _, n := range comp {
		if len(t.adj[n]) < t.maxDegree {
			out = append(out, n)
		}
	}
	return out
}

// Dist returns the hop distance between a and b, or -1 when they are in
// different components. The rooted-forest view is cached per topology
// version; a query is an LCA climb, O(tree depth) with no per-pair
// storage — the old N×N int16 matrix needed ~20 GB at N=100k.
//
// On cyclic overlay kinds the value is the distance in the cached BFS
// forest, an upper bound on the true shortest path (exact on trees).
// Its only consumers — out-of-band delay shaping and the MeanPathLength
// metric — tolerate the approximation; the FIFO monitor bounds OOB
// delay by N-1 hops independently of Dist.
func (t *Tree) Dist(a, b ident.NodeID) int {
	t.ensureRouting()
	if t.comp[a] != t.comp[b] {
		return -1
	}
	d := 0
	x, y := a, b
	for t.depth[x] > t.depth[y] {
		x = ident.NodeID(t.parent[x])
		d++
	}
	for t.depth[y] > t.depth[x] {
		y = ident.NodeID(t.parent[y])
		d++
	}
	for x != y {
		x = ident.NodeID(t.parent[x])
		y = ident.NodeID(t.parent[y])
		d += 2
	}
	return d
}

// ensureRouting rebuilds the rooted-forest view (BFS parent, depth,
// component id, component sizes) when the topology changed: one O(N)
// sweep per mutated version, amortized across all Dist queries.
func (t *Tree) ensureRouting() {
	if t.parent != nil && t.distVersion == t.version {
		return
	}
	if t.parent == nil {
		t.parent = make([]int32, t.n)
		t.depth = make([]int32, t.n)
		t.comp = make([]int32, t.n)
	}
	for i := range t.comp {
		t.comp[i] = -1
	}
	t.compSize = t.compSize[:0]
	queue := make([]ident.NodeID, 0, t.n)
	for src := 0; src < t.n; src++ {
		if t.comp[src] >= 0 {
			continue
		}
		c := int32(len(t.compSize))
		t.comp[src] = c
		t.parent[src] = -1
		t.depth[src] = 0
		queue = queue[:0]
		queue = append(queue, ident.NodeID(src))
		size := int64(1)
		for i := 0; i < len(queue); i++ {
			x := queue[i]
			for _, y := range t.adj[x] {
				if t.comp[y] < 0 {
					t.comp[y] = c
					t.parent[y] = int32(x)
					t.depth[y] = t.depth[x] + 1
					queue = append(queue, y)
					size++
				}
			}
		}
		t.compSize = append(t.compSize, size)
	}
	t.distVersion = t.version
}

// MeanPairwiseDistance returns the mean hop distance over all ordered
// pairs of distinct nodes in the same component. Used to calibrate the
// loss model against the paper's baseline delivery anchors.
//
// Computed by edge contribution — a tree edge separating k nodes from
// the other size-k of its component lies on k·(size-k) unordered
// paths — in O(N) instead of summing the N² pair matrix. All partial
// sums are integers below 2⁵³, so the float64 result is exactly the
// value the pairwise summation produced.
func (t *Tree) MeanPairwiseDistance() float64 {
	t.ensureRouting()
	var sum, cnt int64
	// below[x] = size of x's subtree in the rooted forest. Children
	// appear after parents in BFS order per component, so one reverse
	// sweep over ids ordered by depth accumulates subtree sizes; the
	// BFS order is re-derived by bucketing ids by depth.
	below := make([]int64, t.n)
	maxDepth := int32(0)
	for _, d := range t.depth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	buckets := make([][]ident.NodeID, maxDepth+1)
	for i := 0; i < t.n; i++ {
		below[i] = 1
		buckets[t.depth[i]] = append(buckets[t.depth[i]], ident.NodeID(i))
	}
	for d := maxDepth; d >= 1; d-- {
		for _, x := range buckets[d] {
			p := t.parent[x]
			below[p] += below[x]
			size := t.compSize[t.comp[x]]
			sum += 2 * below[x] * (size - below[x]) // ordered pairs through edge x→parent
		}
	}
	for _, size := range t.compSize {
		cnt += size * (size - 1)
	}
	if cnt == 0 {
		return 0
	}
	return float64(sum) / float64(cnt)
}
