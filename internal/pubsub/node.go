// Package pubsub implements the best-effort distributed content-based
// publish-subscribe system the epidemic algorithms recover events for
// (paper Sec. II): dispatchers connected in an unrooted tree overlay,
// subscription forwarding with duplicate-direction suppression, and
// reverse-path event routing. It also implements route repair after a
// topological reconfiguration — our stand-in for the reconfiguration
// algorithm of Picco et al. (paper ref. [7]): a broken link triggers
// unsubscription-style flushes, a replacement link triggers exchange
// and re-propagation of the two components' subscription tables.
package pubsub

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/ident"
	"repro/internal/matching"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Recovery is the hook the epidemic recovery engine (internal/core)
// installs on each dispatcher. A nil-safe no-op implementation is used
// when recovery is disabled (the paper's "no recovery" baseline).
type Recovery interface {
	// OnPublish fires after the local dispatcher stamped a new event,
	// before routing. The publisher caches its own events here
	// (required by publisher-based pull, paper Sec. III-B).
	OnPublish(ev *wire.Event)
	// OnDeliver fires when an event matching a local subscription is
	// delivered for the first time through normal routing. The engine
	// caches the event and runs loss detection here.
	OnDeliver(ev *wire.Event, from ident.NodeID)
	// HandleRecovery processes gossip digests, recovery requests, and
	// retransmissions addressed to this dispatcher.
	HandleRecovery(from ident.NodeID, msg wire.Message, oob bool)
}

// NopRecovery is the no-recovery baseline.
type NopRecovery struct{}

var _ Recovery = NopRecovery{}

// OnPublish implements Recovery.
func (NopRecovery) OnPublish(*wire.Event) {}

// OnDeliver implements Recovery.
func (NopRecovery) OnDeliver(*wire.Event, ident.NodeID) {}

// HandleRecovery implements Recovery.
func (NopRecovery) HandleRecovery(ident.NodeID, wire.Message, bool) {}

// DeliverFunc observes every local delivery (original or recovered).
type DeliverFunc func(node ident.NodeID, ev *wire.Event, recovered bool)

// Config carries per-node behavior switches.
type Config struct {
	// RecordRoutes appends each traversed dispatcher to the event's
	// Route field, as required by publisher-based pull.
	RecordRoutes bool
	// DedupForward makes every dispatcher record each event it sees and
	// forward only first arrivals. On the acyclic tree this is redundant
	// (the tree itself guarantees a single arrival per event), so it
	// stays off by default; on cyclic overlays (scale-free, small-world)
	// it is what terminates the flood.
	DedupForward bool
	// OnDeliver, when non-nil, observes local deliveries (metrics).
	OnDeliver DeliverFunc
}

// Node is one dispatching server. All methods must be called from the
// simulation goroutine (the kernel is single-threaded).
//
// Subscription state is held twice: tiered bitsets (localSet,
// tableSet) answer the per-event membership questions on the routing
// path without map probes for every pattern identifier, while the
// sorted localList stays the authoritative local set. The
// interest-direction table is struct-of-arrays: dirIdx maps a pattern
// to a fixed-stride row of the node-local dirRows arena, so a 100k-node
// run carries one backing array per node instead of one heap slice per
// (node, pattern) pair; rows wider than the stride (star hubs) spill
// into dirOver.
type Node struct {
	id  ident.NodeID
	p   *sim.Proc
	net *network.Network
	cfg Config

	neighbors []ident.NodeID

	localSet  ident.PatternSet
	localList []ident.PatternID // sorted; authoritative local set

	// Interest-direction table. dirIdx[p] is the row number in dirRows
	// (-1: no row yet); dirLen[row] is the live prefix length of the
	// row's dirStride-entry window, or dirOverMark when the directions
	// for that pattern overflowed into dirOver. tableSet mirrors which
	// patterns have at least one direction so "any interest in p?" and
	// table iteration are bit operations.
	dirIdx   []int32
	dirRows  []ident.NodeID
	dirLen   []uint16
	dirOver  map[ident.PatternID][]ident.NodeID
	tableSet ident.PatternSet

	// known caches KnownPatterns between subscription-state changes:
	// the push gossiper calls it every round, the table changes only on
	// (un)subscriptions and reconfigurations. nil marks it stale.
	known []ident.PatternID

	// fwdScratch deduplicates forwarding directions per event without a
	// per-call map; reused across forwards (single-threaded kernel).
	fwdScratch []ident.NodeID

	// linkEpoch counts this node's adjacency mutations (OnLinkUp /
	// OnLinkDown). It is the node-local churn signal of the adaptive
	// controller: link mutations run as solo global events under the
	// sharded executor, and the counter is only read from this node's
	// own round events, so sampling it is shard-safe.
	linkEpoch uint64

	nextSeq uint32
	// patSeq is the per-pattern sequence counter, a dense slab indexed
	// by pattern (grown on demand) instead of a map.
	patSeq   []uint32
	received *ident.EventIDSet

	recovery Recovery

	// pool, when non-nil, is where Release returns this node for reuse
	// by a later run on the same goroutine.
	pool *NodePool
}

var _ network.Handler = (*Node)(nil)

// NewNode builds a dispatcher with the given initial neighbor set.
func NewNode(id ident.NodeID, k *sim.Kernel, net *network.Network, neighbors []ident.NodeID, cfg Config) *Node {
	n := &Node{
		id:        id,
		p:         k.Proc(int32(id)),
		net:       net,
		cfg:       cfg,
		neighbors: append([]ident.NodeID(nil), neighbors...),
		received:  ident.NewEventIDSet(256),
		recovery:  NopRecovery{},
	}
	net.Register(id, n)
	return n
}

// ID returns the dispatcher identifier.
func (n *Node) ID() ident.NodeID { return n.id }

// LinkEpoch returns the number of adjacency mutations (links added or
// removed) this node has observed — the churn signal of the adaptive
// recovery controller.
func (n *Node) LinkEpoch() uint64 { return n.linkEpoch }

// Kernel returns the simulation kernel the node runs on.
func (n *Node) Kernel() *sim.Kernel { return n.p.Kernel() }

// Proc returns the node's scheduling handle. All per-node components
// (the recovery engine, its gossip ticker) schedule through it so
// their events carry the node's affinity for the parallel executor.
func (n *Node) Proc() *sim.Proc { return n.p }

// SetRecovery installs the epidemic recovery engine. Passing nil
// restores the no-recovery baseline.
func (n *Node) SetRecovery(r Recovery) {
	if r == nil {
		n.recovery = NopRecovery{}
		return
	}
	n.recovery = r
}

// Neighbors returns the current neighbor set. The slice is owned by the
// node and must not be mutated.
func (n *Node) Neighbors() []ident.NodeID { return n.neighbors }

// LocalPatterns returns the locally subscribed patterns, sorted. The
// slice is owned by the node and must not be mutated.
func (n *Node) LocalPatterns() []ident.PatternID { return n.localList }

// LocalPatternSet returns the bitset of local subscriptions. The
// tiered set represents every pattern identifier, so it is exact.
func (n *Node) LocalPatternSet() ident.PatternSet {
	return n.localSet
}

// IsLocal reports whether p is locally subscribed.
func (n *Node) IsLocal(p ident.PatternID) bool {
	return n.localSet.Has(p)
}

// LocalMatch reports whether the content matches a local subscription.
func (n *Node) LocalMatch(c matching.Content) bool {
	for _, p := range c {
		if n.localSet.Has(p) {
			return true
		}
	}
	return false
}

// setLocal records p as locally subscribed; reports whether it was new.
func (n *Node) setLocal(p ident.PatternID) bool {
	if n.IsLocal(p) {
		return false
	}
	n.localSet.Add(p)
	n.localList = insertSorted(n.localList, p)
	return true
}

// clearLocal removes p from the local subscriptions; reports whether it
// was present.
func (n *Node) clearLocal(p ident.PatternID) bool {
	if !n.IsLocal(p) {
		return false
	}
	n.localSet.Remove(p)
	n.localList = removeSorted(n.localList, p)
	return true
}

// dirStride is the width of one direction row in the dirRows arena.
// It matches the default overlay degree bound; the rare wider rows
// (star hubs in tests) overflow into the dirOver map.
const dirStride = 4

// dirOverMark is the dirLen sentinel for a row that overflowed.
const dirOverMark = ^uint16(0)

// dirs returns the neighbors with remote interest in p. The slice is
// owned by the node and must not be mutated.
func (n *Node) dirs(p ident.PatternID) []ident.NodeID {
	if p < 0 || int(p) >= len(n.dirIdx) {
		return nil
	}
	row := n.dirIdx[p]
	if row < 0 {
		return nil
	}
	l := n.dirLen[row]
	if l == dirOverMark {
		return n.dirOver[p]
	}
	off := int(row) * dirStride
	return n.dirRows[off : off+int(l) : off+dirStride]
}

// addDir appends nb to p's direction row, keeping insertion order
// (exactly as the per-pattern append-grown slices it replaced did).
// The caller has already checked nb is not present.
func (n *Node) addDir(p ident.PatternID, nb ident.NodeID) {
	n.addDirRow(p, nb)
	n.tableSet.Add(p)
}

// addDirRow is addDir without the tableSet update: the bulk installer
// batches the per-pattern set bits into one ascending-order build per
// node, because per-element spill Adds are O(|tableSet|) each under
// copy-on-write and dominated large-N setup.
func (n *Node) addDirRow(p ident.PatternID, nb ident.NodeID) {
	if int(p) >= len(n.dirIdx) {
		// Grow the pattern->row index in coarse steps so a universe
		// discovered pattern-by-pattern does not re-grow per pattern.
		want := (int(p) + ident.PatternSetCap) &^ (ident.PatternSetCap - 1)
		idx := make([]int32, want)
		copy(idx, n.dirIdx)
		for i := len(n.dirIdx); i < want; i++ {
			idx[i] = -1
		}
		n.dirIdx = idx
	}
	row := n.dirIdx[p]
	if row < 0 {
		row = int32(len(n.dirLen))
		n.dirIdx[p] = row
		n.dirLen = append(n.dirLen, 0)
		var zero [dirStride]ident.NodeID
		n.dirRows = append(n.dirRows, zero[:]...)
	}
	switch l := n.dirLen[row]; {
	case l == dirOverMark:
		n.dirOver[p] = append(n.dirOver[p], nb)
	case int(l) < dirStride:
		n.dirRows[int(row)*dirStride+int(l)] = nb
		n.dirLen[row] = l + 1
	default:
		// Row overflows the arena stride: move it to the spill map.
		if n.dirOver == nil {
			n.dirOver = make(map[ident.PatternID][]ident.NodeID)
		}
		off := int(row) * dirStride
		n.dirOver[p] = append(append([]ident.NodeID(nil), n.dirRows[off:off+dirStride]...), nb)
		n.dirLen[row] = dirOverMark
	}
}

// installRows is the bulk-install finalizer: the installer has laid
// down direction rows via addDirRow for the strictly ascending pattern
// list ps; fold them into tableSet in one pass.
func (n *Node) installRows(ps []ident.PatternID) {
	n.tableSet = n.tableSet.Union(ident.PatternSetFromAscending(ps))
	n.invalidateKnown()
}

// removeDir deletes nb from p's direction row, preserving the order of
// the remaining entries; it reports whether nb was present.
func (n *Node) removeDir(p ident.PatternID, nb ident.NodeID) bool {
	if p < 0 || int(p) >= len(n.dirIdx) {
		return false
	}
	row := n.dirIdx[p]
	if row < 0 {
		return false
	}
	if l := n.dirLen[row]; l != dirOverMark {
		off := int(row) * dirStride
		d := n.dirRows[off : off+int(l)]
		for i, x := range d {
			if x == nb {
				copy(d[i:], d[i+1:])
				n.dirLen[row] = l - 1
				if l == 1 {
					n.tableSet.Remove(p)
				}
				return true
			}
		}
		return false
	}
	d := n.dirOver[p]
	for i, x := range d {
		if x == nb {
			d = append(d[:i], d[i+1:]...)
			if len(d) == 0 {
				delete(n.dirOver, p)
				n.dirLen[row] = 0
				n.tableSet.Remove(p)
			} else {
				n.dirOver[p] = d
			}
			return true
		}
	}
	return false
}

// KnownPatterns returns every pattern with local or remote interest,
// sorted — the "whole subscription table" the push gossiper draws from
// (paper Sec. III-B). The slice is a cached snapshot, rebuilt only
// after subscription state changed; callers must not mutate it.
func (n *Node) KnownPatterns() []ident.PatternID {
	if n.known == nil {
		union := n.localSet.Union(n.tableSet)
		n.known = union.AppendTo(make([]ident.PatternID, 0, union.Len())) // ascending == sorted
	}
	return n.known
}

// invalidateKnown marks the KnownPatterns cache stale. Every mutation
// of the local set or the interest table goes through it.
func (n *Node) invalidateKnown() { n.known = nil }

// InterestDirections returns the neighbors with (remote) interest in p.
// The slice is owned by the node and must not be mutated.
func (n *Node) InterestDirections(p ident.PatternID) []ident.NodeID {
	return n.dirs(p)
}

// HasReceived reports whether the event was already delivered locally
// (through routing or recovery) or published here.
func (n *Node) HasReceived(id ident.EventID) bool { return n.received.Has(id) }

// ReceivedCount returns the number of locally received events.
func (n *Node) ReceivedCount() int { return n.received.Len() }

// SendTree transmits msg to a direct neighbor on the overlay.
func (n *Node) SendTree(to ident.NodeID, msg wire.Message) { n.net.Send(n.id, to, msg) }

// SendOOB transmits msg to any dispatcher on the out-of-band channel.
func (n *Node) SendOOB(to ident.NodeID, msg wire.Message) { n.net.SendOOB(n.id, to, msg) }

// Publish stamps and routes a new event with the given content and
// synthetic payload size, returning the stamped event. Sequence tags
// are assigned for every content pattern with known interest, as the
// paper prescribes: the source can do this because subscription
// forwarding makes subscriptions known to all dispatchers.
func (n *Node) Publish(content matching.Content, payload uint16) *wire.Event {
	n.nextSeq++
	ev := &wire.Event{
		ID:          ident.EventID{Source: n.id, Seq: n.nextSeq},
		Content:     content,
		PublishedAt: int64(n.p.Now()),
		PayloadLen:  payload,
	}
	for _, p := range content {
		if n.IsLocal(p) || len(n.dirs(p)) > 0 {
			if int(p) >= len(n.patSeq) {
				grown := make([]uint32, (int(p)+ident.PatternSetCap)&^(ident.PatternSetCap-1))
				copy(grown, n.patSeq)
				n.patSeq = grown
			}
			n.patSeq[p]++
			ev.Tags = append(ev.Tags, ident.PatternSeq{Pattern: p, Seq: n.patSeq[p]})
		}
	}
	if n.cfg.RecordRoutes {
		ev.Route = []ident.NodeID{n.id}
	}
	n.received.Add(ev.ID)
	n.recovery.OnPublish(ev)
	if n.LocalMatch(content) && n.cfg.OnDeliver != nil {
		n.cfg.OnDeliver(n.id, ev, false)
	}
	n.forward(ev, ident.None)
	return ev
}

// forward routes ev to every neighbor with matching interest, except
// the one it came from.
func (n *Node) forward(ev *wire.Event, from ident.NodeID) {
	sent := n.fwdScratch[:0]
	for _, p := range ev.Content {
		for _, nb := range n.dirs(p) {
			if nb == from || slices.Contains(sent, nb) {
				continue
			}
			sent = append(sent, nb)
			out := ev
			if n.cfg.RecordRoutes && from != ident.None {
				out = ev.Clone()
				out.Route = append(out.Route, n.id)
			}
			n.SendTree(nb, out)
		}
	}
	n.fwdScratch = sent
}

// HandleMessage implements network.Handler.
func (n *Node) HandleMessage(from ident.NodeID, msg wire.Message, oob bool) {
	switch m := msg.(type) {
	case *wire.Event:
		if oob {
			panic(fmt.Sprintf("pubsub: raw event %v arrived out-of-band at %v", m.ID, n.id))
		}
		n.handleEvent(m, from)
	case *wire.Subscribe:
		n.addInterest(m.Pattern, from)
	case *wire.Unsubscribe:
		n.removeInterest(m.Pattern, from)
	default:
		n.recovery.HandleRecovery(from, msg, oob)
	}
}

func (n *Node) handleEvent(ev *wire.Event, from ident.NodeID) {
	if n.cfg.DedupForward {
		// First arrival wins: duplicates (which cyclic overlays produce
		// by design) are dropped without delivery or re-forwarding.
		if !n.received.Add(ev.ID) {
			return
		}
		if n.LocalMatch(ev.Content) {
			if n.cfg.OnDeliver != nil {
				n.cfg.OnDeliver(n.id, ev, false)
			}
			n.recovery.OnDeliver(ev, from)
		}
		n.forward(ev, from)
		return
	}
	if n.LocalMatch(ev.Content) && n.received.Add(ev.ID) {
		if n.cfg.OnDeliver != nil {
			n.cfg.OnDeliver(n.id, ev, false)
		}
		n.recovery.OnDeliver(ev, from)
	}
	n.forward(ev, from)
}

// DeliverRecovered injects an event obtained through the epidemic
// recovery path. It reports whether the event was new; duplicates are
// ignored. Recovered events are not re-forwarded on the tree: recovery
// is a per-dispatcher affair (each interested dispatcher gossips for
// itself), but the event does enter the local cache via the recovery
// engine, so this dispatcher can serve it to others.
func (n *Node) DeliverRecovered(ev *wire.Event) bool {
	if !n.LocalMatch(ev.Content) {
		return false
	}
	if !n.received.Add(ev.ID) {
		return false
	}
	if n.cfg.OnDeliver != nil {
		n.cfg.OnDeliver(n.id, ev, true)
	}
	return true
}

// advertisedTo reports whether this node has (or would have) advertised
// pattern p toward neighbor nb: true when there is local interest or
// interest from any direction other than nb.
func (n *Node) advertisedTo(p ident.PatternID, nb ident.NodeID) bool {
	if n.IsLocal(p) {
		return true
	}
	for _, d := range n.dirs(p) {
		if d != nb {
			return true
		}
	}
	return false
}

// Subscribe registers a local subscription and propagates it.
func (n *Node) Subscribe(p ident.PatternID) {
	if n.IsLocal(p) {
		return
	}
	for _, nb := range n.neighbors {
		if !n.advertisedTo(p, nb) {
			n.SendTree(nb, &wire.Subscribe{Pattern: p})
		}
	}
	n.setLocal(p)
	n.invalidateKnown()
}

// Unsubscribe removes a local subscription and propagates the removal.
func (n *Node) Unsubscribe(p ident.PatternID) {
	if !n.clearLocal(p) {
		return
	}
	n.invalidateKnown()
	for _, nb := range n.neighbors {
		if !n.advertisedTo(p, nb) {
			n.SendTree(nb, &wire.Unsubscribe{Pattern: p})
		}
	}
}

// SetLocalInstant installs a local subscription without propagation.
// Scenario setup uses it together with SetTableInstant to lay down the
// stable initial subscription state (the paper runs with stable
// subscription information, Sec. IV-A).
func (n *Node) SetLocalInstant(ps []ident.PatternID) {
	for _, p := range ps {
		n.setLocal(p)
	}
	n.invalidateKnown()
}

// SetTableInstant installs a remote-interest direction without
// propagation (scenario setup only).
func (n *Node) SetTableInstant(p ident.PatternID, dir ident.NodeID) {
	for _, x := range n.dirs(p) {
		if x == dir {
			return
		}
	}
	n.addDir(p, dir)
	n.invalidateKnown()
}

// addInterest records that neighbor from is interested in p and
// re-propagates the subscription where it is news.
func (n *Node) addInterest(p ident.PatternID, from ident.NodeID) {
	for _, x := range n.dirs(p) {
		if x == from {
			return // duplicate advertisement
		}
	}
	for _, nb := range n.neighbors {
		if nb != from && !n.advertisedTo(p, nb) {
			n.SendTree(nb, &wire.Subscribe{Pattern: p})
		}
	}
	n.addDir(p, from)
	n.invalidateKnown()
}

// removeInterest drops neighbor from's interest in p and propagates
// unsubscriptions where no interest remains.
func (n *Node) removeInterest(p ident.PatternID, from ident.NodeID) {
	if !n.removeDir(p, from) {
		return
	}
	n.invalidateKnown()
	for _, nb := range n.neighbors {
		if nb != from && !n.advertisedTo(p, nb) {
			n.SendTree(nb, &wire.Unsubscribe{Pattern: p})
		}
	}
}

// OnLinkDown reacts to the loss of the link toward nbr: the neighbor is
// forgotten and every route through it is flushed, propagating
// unsubscriptions into the rest of the component.
func (n *Node) OnLinkDown(nbr ident.NodeID) {
	n.linkEpoch++
	n.neighbors = removeNodeID(n.neighbors, nbr)
	var stale []ident.PatternID
	stale = n.tableSet.AppendTo(stale) // ascending == the sorted order used before
	for _, p := range stale {
		if slices.Contains(n.dirs(p), nbr) {
			n.removeInterest(p, nbr)
		}
	}
}

// OnLinkUp reacts to a new link toward nbr: the node advertises every
// interest it holds (local, or learned from other directions), exactly
// as a freshly issued subscription would propagate.
func (n *Node) OnLinkUp(nbr ident.NodeID) {
	n.linkEpoch++
	n.neighbors = append(n.neighbors, nbr)
	for _, p := range n.KnownPatterns() {
		if n.advertisedTo(p, nbr) {
			n.SendTree(nbr, &wire.Subscribe{Pattern: p})
		}
	}
}

// OnNodeDown models a crash of this dispatcher: the process loses its
// links and everything it learned from the network — the neighbor set
// and the whole remote-interest table. Nothing is propagated (a dead
// process cannot send); surviving neighbors flush their own routes via
// their OnLinkDown. Local subscriptions persist: they are this
// dispatcher's configuration, not learned state, and are re-advertised
// when the node rejoins.
func (n *Node) OnNodeDown() {
	n.neighbors = n.neighbors[:0]
	for i := range n.dirLen {
		n.dirLen[i] = 0
	}
	n.dirOver = nil
	n.tableSet = ident.PatternSet{}
	n.invalidateKnown()
}

// OnNodeUp marks the dispatcher restarted after OnNodeDown. Routing
// state was already dropped at crash time; the subscription-table
// resync happens link by link as the node rejoins: OnLinkUp on this
// side re-advertises its local subscriptions, OnLinkUp on the attach
// side re-advertises the component's known interests back.
func (n *Node) OnNodeUp() {
	n.invalidateKnown()
}

func insertSorted(s []ident.PatternID, p ident.PatternID) []ident.PatternID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= p })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = p
	return s
}

func removeSorted(s []ident.PatternID, p ident.PatternID) []ident.PatternID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= p })
	if i < len(s) && s[i] == p {
		return append(s[:i], s[i+1:]...)
	}
	return s
}

func removeNodeID(s []ident.NodeID, n ident.NodeID) []ident.NodeID {
	for i, x := range s {
		if x == n {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}
