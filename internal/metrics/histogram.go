package metrics

import (
	"fmt"
	"math"
	"slices"
	"time"

	"repro/internal/sim"
)

// LatencyHistogram accumulates virtual-time latencies in logarithmic
// buckets (~8.3% relative resolution) and answers percentile queries.
// The paper discusses recovery latency only qualitatively ("the push
// approach has a bigger recovery latency than pull", Sec. IV-C); the
// histogram makes the comparison quantitative.
type LatencyHistogram struct {
	counts []uint64
	total  uint64
	sum    float64
	min    sim.Time
	max    sim.Time
}

// bucketBase is the left edge of bucket 0.
const bucketBase = 10 * time.Microsecond

// bucketRatio is the growth factor between adjacent bucket edges.
const bucketRatio = 1.2

// numBuckets covers 10 µs … >10 min.
const numBuckets = 96

// NewLatencyHistogram returns an empty histogram.
func NewLatencyHistogram() *LatencyHistogram {
	return &LatencyHistogram{
		counts: make([]uint64, numBuckets),
		min:    math.MaxInt64,
	}
}

// Reset empties the histogram in place, keeping its bucket slab.
func (h *LatencyHistogram) Reset() {
	clear(h.counts)
	h.total = 0
	h.sum = 0
	h.min = math.MaxInt64
	h.max = 0
}

func bucketOf(d sim.Time) int {
	if d <= bucketBase {
		return 0
	}
	b := int(math.Log(float64(d)/float64(bucketBase)) / math.Log(bucketRatio))
	if b >= numBuckets {
		return numBuckets - 1
	}
	return b
}

// bucketUpper returns the upper edge of bucket b — the value percentile
// queries report for samples in it.
func bucketUpper(b int) sim.Time {
	return sim.Time(float64(bucketBase) * math.Pow(bucketRatio, float64(b+1)))
}

// Observe records one latency sample. Negative samples are a caller
// bug and panic.
func (h *LatencyHistogram) Observe(d sim.Time) {
	if d < 0 {
		panic(fmt.Sprintf("metrics: negative latency %v", d))
	}
	h.counts[bucketOf(d)]++
	h.total++
	h.sum += float64(d)
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of samples.
func (h *LatencyHistogram) Count() uint64 { return h.total }

// Mean returns the mean latency, or 0 without samples.
func (h *LatencyHistogram) Mean() sim.Time {
	if h.total == 0 {
		return 0
	}
	return sim.Time(h.sum / float64(h.total))
}

// Min returns the smallest sample, or 0 without samples.
func (h *LatencyHistogram) Min() sim.Time {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample, or 0 without samples.
func (h *LatencyHistogram) Max() sim.Time {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the latency below which the q-fraction of samples
// fall (0 < q ≤ 1), with the histogram's bucket resolution. Returns 0
// without samples.
func (h *LatencyHistogram) Quantile(q float64) sim.Time {
	if h.total == 0 {
		return 0
	}
	if q <= 0 || q > 1 {
		panic(fmt.Sprintf("metrics: quantile %v out of (0, 1]", q))
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	var cum uint64
	for b, c := range h.counts {
		cum += c
		if cum >= rank {
			if b == 0 {
				return bucketBase
			}
			return bucketUpper(b)
		}
	}
	return h.max
}

// Quantiles returns several quantiles at once, in the order given.
func (h *LatencyHistogram) Quantiles(qs ...float64) []sim.Time {
	out := make([]sim.Time, len(qs))
	for i, q := range qs {
		out[i] = h.Quantile(q)
	}
	return out
}

// Summary formats count/mean/p50/p99 for logs.
func (h *LatencyHistogram) Summary() string {
	if h.total == 0 {
		return "no samples"
	}
	qs := h.Quantiles(0.5, 0.99)
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.total, h.Mean().Round(time.Microsecond),
		qs[0].Round(time.Microsecond), qs[1].Round(time.Microsecond),
		h.max.Round(time.Microsecond))
}

// sortedDurations is a test helper contract: the histogram's quantile
// must bracket the exact quantile within one bucket ratio. Exported
// tests use ExactQuantile to verify.
func ExactQuantile(samples []sim.Time, q float64) sim.Time {
	if len(samples) == 0 {
		return 0
	}
	s := append([]sim.Time(nil), samples...)
	slices.Sort(s)
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}
