package live

import (
	"fmt"
	"math/rand"
	"net"

	"repro/internal/ident"
	"repro/internal/topology"
)

// Cluster is a set of live dispatchers on the loopback interface,
// connected in a random degree-bounded tree like the paper's overlay.
type Cluster struct {
	Nodes []*Node
	Topo  *topology.Tree
	// Disp is non-nil for dispatcher-hosted clusters
	// (NewDispatcherCluster); standalone clusters leave it nil.
	Disp *Dispatcher
}

// NewCluster starts n live dispatchers and wires them into a random
// tree with node degree at most maxDegree. mkcfg produces each node's
// configuration (ID and Bind are filled in by the cluster). On error,
// every node already started is closed.
func NewCluster(n, maxDegree int, seed int64, mkcfg func(i int) Config) (*Cluster, error) {
	topo, err := topology.New(n, maxDegree, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, fmt.Errorf("live: building overlay: %w", err)
	}
	c := &Cluster{Topo: topo}
	for i := 0; i < n; i++ {
		cfg := mkcfg(i)
		cfg.ID = ident.NodeID(i)
		cfg.Bind = "127.0.0.1:0"
		if cfg.Seed == 0 {
			cfg.Seed = seed
		}
		node, err := NewNode(cfg)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("live: starting node %d: %w", i, err)
		}
		c.Nodes = append(c.Nodes, node)
	}
	dir := make(map[ident.NodeID]*net.UDPAddr, n)
	for _, node := range c.Nodes {
		dir[node.ID()] = node.Addr()
	}
	for _, node := range c.Nodes {
		node.SetDirectory(dir)
	}
	for _, l := range topo.Links() {
		c.Nodes[l.A].AddNeighbor(l.B, c.Nodes[l.B].Addr())
		c.Nodes[l.B].AddNeighbor(l.A, c.Nodes[l.A].Addr())
	}
	return c, nil
}

// Close shuts every node down, then the hosting dispatcher if any.
func (c *Cluster) Close() {
	for _, n := range c.Nodes {
		if n != nil {
			_ = n.Close()
		}
	}
	if c.Disp != nil {
		_ = c.Disp.Close()
	}
}

// NewDispatcherCluster is NewCluster with every node hosted on one
// Dispatcher instead of owning its own socket — same topology, same
// wiring, same protocol traffic, different transport. Tests use the two
// constructors as differential twins.
func NewDispatcherCluster(n, maxDegree int, seed int64, dcfg DispatcherConfig, mkcfg func(i int) Config) (*Cluster, error) {
	topo, err := topology.New(n, maxDegree, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, fmt.Errorf("live: building overlay: %w", err)
	}
	d, err := NewDispatcher(dcfg)
	if err != nil {
		return nil, fmt.Errorf("live: starting dispatcher: %w", err)
	}
	c := &Cluster{Topo: topo, Disp: d}
	for i := 0; i < n; i++ {
		cfg := mkcfg(i)
		cfg.ID = ident.NodeID(i)
		if cfg.Seed == 0 {
			cfg.Seed = seed
		}
		node, err := d.AddNode(cfg)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("live: hosting node %d: %w", i, err)
		}
		c.Nodes = append(c.Nodes, node)
	}
	dir := make(map[ident.NodeID]*net.UDPAddr, n)
	for _, node := range c.Nodes {
		dir[node.ID()] = node.Addr()
	}
	for _, node := range c.Nodes {
		node.SetDirectory(dir)
	}
	for _, l := range topo.Links() {
		c.Nodes[l.A].AddNeighbor(l.B, c.Nodes[l.B].Addr())
		c.Nodes[l.B].AddNeighbor(l.A, c.Nodes[l.A].Addr())
	}
	return c, nil
}
