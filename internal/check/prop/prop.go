// Package prop is a property-based scenario harness: it generates
// random simulation cases — network size, loss rates, publish rates,
// reconfiguration and churn plans — and runs every recovery algorithm
// over them under full invariant checking (internal/check). The
// property is simply "no monitor fires"; the generator's job is to
// explore corners the pinned scenarios never visit.
//
// When a case fails, Shrink reduces it before reporting: fall back to
// static gossip (dropping the adaptive controller and Hybrid), drop
// the fault plan, disable reconfiguration, zero the loss, halve the
// duration, the node count, and the publish rate — re-running after
// each step and keeping any reduction that still fails. The final
// reproducer is a short Case literal plus the checker's own
// seed/event/site triple.
//
// Generated cases keep the gossip interval at its 30 ms default and
// the publish rates moderate. The recovery-causality monitor's
// evidence rule tolerates an in-flight race only while gossip rounds
// are much slower than event delivery (see internal/check); the
// generator stays inside that regime on purpose.
package prop

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/adapt"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Case is one generated scenario, algorithm-agnostic: Run drives all
// algorithms over it.
type Case struct {
	Seed        int64
	N           int
	LossRate    float64
	OOBLossRate float64
	PublishRate float64
	Duration    sim.Time
	Reconfig    sim.Time // 0 = no reconfigurations
	ChurnRate   float64  // crashes/second; 0 = no fault plan
	Overlay     topology.Kind
	Repair      scenario.RepairMode
	// Adaptive arms the closed-loop controller (internal/adapt) on
	// every algorithm and adds the Hybrid mode to the run, with the
	// adaptation monitor judging knob bounds and dwell.
	Adaptive bool
}

func (c Case) String() string {
	return fmt.Sprintf("seed=%d n=%d ε=%.2f εoob=%.2f rate=%.0f dur=%v reconfig=%v churn=%.1f overlay=%v repair=%v adaptive=%v",
		c.Seed, c.N, c.LossRate, c.OOBLossRate, c.PublishRate, c.Duration, c.Reconfig, c.ChurnRate, c.Overlay, c.Repair, c.Adaptive)
}

// Generate draws one case. The ranges are chosen to stress the
// monitors — small overlays, loss up to 30%, optional reconfiguration
// and churn — while keeping one case cheap enough that a test can
// afford a dozen of them across all algorithms.
func Generate(rng *rand.Rand) Case {
	c := Case{
		Seed:        rng.Int63n(1 << 30),
		N:           6 + rng.Intn(23), // 6..28
		LossRate:    float64(rng.Intn(7)) * 0.05,
		OOBLossRate: float64(rng.Intn(5)) * 0.05,
		PublishRate: 5 + float64(rng.Intn(4))*5, // 5..20
		Duration:    sim.Time(800+rng.Intn(5)*100) * time.Millisecond,
	}
	if rng.Intn(2) == 1 {
		c.Reconfig = sim.Time(150+rng.Intn(3)*100) * time.Millisecond
	}
	if rng.Intn(2) == 1 {
		c.ChurnRate = 1 + float64(rng.Intn(3))
	}
	// Overlay diversity and repair mode. Reconfiguration is a
	// tree-with-oracle feature (the driver's ReplacementLink mends a
	// two-way split), so the draws respect scenario's compatibility
	// rules rather than generating cases normalize would reject.
	c.Overlay = topology.Kind(rng.Intn(len(topology.Kinds())))
	if rng.Intn(2) == 1 {
		c.Repair = scenario.RepairSelfStabilizing
	}
	if c.Overlay != topology.KindTree || c.Repair == scenario.RepairSelfStabilizing {
		c.Reconfig = 0
	}
	c.Adaptive = rng.Intn(3) == 1
	return c
}

// Params expands the case into scenario parameters for one algorithm,
// with all five monitors armed.
func (c Case) Params(alg core.Algorithm) scenario.Params {
	p := scenario.DefaultParams()
	p.Seed = c.Seed
	p.N = c.N
	p.Duration = c.Duration
	p.MeasureFrom = c.Duration / 8
	p.MeasureTo = c.Duration - c.Duration/8
	p.PublishRate = c.PublishRate
	p.Algorithm = alg
	p.Gossip = core.DefaultConfig(alg)
	p.Network.LossRate = c.LossRate
	p.Network.OOBLossRate = c.OOBLossRate
	p.ReconfigInterval = c.Reconfig
	p.Overlay = c.Overlay
	p.Repair = c.Repair
	if c.ChurnRate > 0 {
		p.FaultPlan = faults.ChurnPlan(c.Seed, c.N, c.ChurnRate, c.Duration, 200*time.Millisecond)
	}
	if c.Adaptive && alg != core.NoRecovery {
		p.Adapt = &adapt.Config{}
	}
	p.Check = check.All()
	return p
}

// Algorithms lists the recovery algorithms the case runs under: the
// paper's five, plus Hybrid when the controller is armed (Hybrid is
// meaningless without it).
func (c Case) Algorithms() []core.Algorithm {
	algs := core.Algorithms()
	if c.Adaptive {
		algs = append(algs, core.Hybrid)
	}
	return algs
}

// Run executes the case under every algorithm and returns the first
// violation (a *check.Error wrapped with the algorithm).
func Run(c Case) error {
	var r scenario.Runner
	for _, alg := range c.Algorithms() {
		if _, err := r.Run(c.Params(alg)); err != nil {
			return fmt.Errorf("case [%s] algorithm %s: %w", c, alg, err)
		}
	}
	return nil
}

// Shrink reduces a failing case while it keeps failing, bounded by a
// fixed re-run budget. It returns the smallest failing case found and
// that case's error.
func Shrink(c Case, origErr error) (Case, error) {
	budget := 16
	try := func(cand Case) (error, bool) {
		if budget <= 0 {
			return nil, false
		}
		budget--
		err := Run(cand)
		return err, err != nil
	}
	smaller := []func(Case) Case{
		func(c Case) Case { c.Adaptive = false; return c },
		func(c Case) Case { c.Repair = scenario.RepairOracle; return c },
		func(c Case) Case { c.Overlay = topology.KindTree; return c },
		func(c Case) Case { c.ChurnRate = 0; return c },
		func(c Case) Case { c.Reconfig = 0; return c },
		func(c Case) Case { c.LossRate = 0; return c },
		func(c Case) Case { c.OOBLossRate = 0; return c },
		func(c Case) Case { c.Duration /= 2; return c },
		func(c Case) Case { c.N = 6 + (c.N-6)/2; return c },
		func(c Case) Case { c.PublishRate = 5; return c },
	}
	err := origErr
	for progress := true; progress; {
		progress = false
		for _, step := range smaller {
			cand := step(c)
			if cand == c {
				continue
			}
			if candErr, failed := try(cand); failed {
				c, err = cand, candErr
				progress = true
			}
		}
	}
	return c, err
}
