// Package live runs the paper's protocols for real: dispatchers are
// processes communicating over UDP sockets (stdlib net only), not
// simulated components on a virtual clock. It reuses the simulator's
// building blocks — the wire codec, the content model, the β-bounded
// event buffer, the Lost buffer — and re-implements subscription
// forwarding, reverse-path event routing, and the epidemic recovery
// algorithms against real time and real I/O.
//
// The package exists for two reasons: it demonstrates that the
// simulated protocols are implementable as-is (the simulator and the
// live node speak the same wire format), and it gives downstream users
// a deployable starting point rather than only a simulation.
//
// Nodes come in two deployments. NewNode binds one socket per node and
// reads it from a dedicated goroutine — simple, and fine up to a few
// hundred dispatchers per process. NewDispatcher hosts thousands of
// nodes on a small fixed set of sockets with batched I/O and coalesced
// sends; see dispatcher.go.
package live

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Config parameterizes one live dispatcher.
type Config struct {
	// ID identifies this dispatcher; must be unique in the network.
	ID ident.NodeID
	// Bind is the UDP address to listen on; empty means 127.0.0.1:0.
	// Ignored for dispatcher-hosted nodes, which share shard sockets.
	Bind string
	// Algorithm selects the recovery variant (NoRecovery disables
	// gossip entirely).
	Algorithm core.Algorithm
	// GossipInterval is T. Zero means 30 ms.
	GossipInterval time.Duration
	// BufferSize is β. Zero means 1500.
	BufferSize int
	// PForward and PSource are the gossip probabilities. Zero means
	// 0.9 and 0.5.
	PForward, PSource float64
	// LostCapacity and LostTTL bound the Lost buffer. Zero means 4096
	// entries and 10 s.
	LostCapacity int
	LostTTL      time.Duration
	// DropProb injects Bernoulli loss on outgoing tree-link sends —
	// the lossy-links scenario over real sockets. OOB traffic is not
	// dropped.
	DropProb float64
	// HeartbeatInterval enables the per-neighbor failure detector:
	// every interval the node heartbeats its tree neighbors and
	// suspects any neighbor not heard from within HeartbeatTimeout.
	// Suspected neighbors are skipped when picking gossip targets (the
	// tree keeps routing events — healing the tree is the operator's
	// job) and revived by any incoming traffic. Zero disables the
	// detector.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is the silence after which a neighbor is
	// suspected. Zero means 4×HeartbeatInterval.
	HeartbeatTimeout time.Duration
	// RequestRetries caps how many times an unanswered recovery
	// Request is transmitted in total before the entry is abandoned.
	// Zero means 4.
	RequestRetries int
	// RequestBackoff is the base retransmission delay for unanswered
	// Requests; it doubles per attempt with ±25% jitter. Zero means
	// 2×GossipInterval.
	RequestBackoff time.Duration
	// MaxPending bounds the outstanding-request table; when full, the
	// greediest peer's oldest entries are shed first (see ledger.go).
	// Zero means 4096.
	MaxPending int
	// ServeBudget caps the bytes of recovery traffic (Retransmit
	// payloads) served to any single peer per LedgerWindow; requests
	// beyond the budget are trimmed and counted in Stats.QuotaTrimmed.
	// Zero disables the quota.
	ServeBudget int
	// LedgerWindow is the quota refill period. Zero means
	// 10×GossipInterval.
	LedgerWindow time.Duration
	// Seed drives the node's randomized choices. Zero means 1.
	Seed int64
	// Epoch, when non-zero, anchors the node's monotonic clock — the
	// time base of PublishedAt stamps and the Lost buffer. Nodes
	// sharing an epoch stamp directly comparable PublishedAt values,
	// which cmd/livebench uses to measure cross-dispatcher delivery
	// latency. Zero means time.Now() at node start.
	Epoch time.Time
	// OnDeliver, when non-nil, observes every local delivery. It is
	// called outside the node's lock, from the node's goroutines.
	OnDeliver func(ev *wire.Event, recovered bool)
}

func (c Config) withDefaults() Config {
	if c.Bind == "" {
		c.Bind = "127.0.0.1:0"
	}
	if c.Algorithm == 0 {
		c.Algorithm = core.NoRecovery
	}
	if c.GossipInterval == 0 {
		c.GossipInterval = 30 * time.Millisecond
	}
	if c.BufferSize == 0 {
		c.BufferSize = 1500
	}
	if c.PForward == 0 {
		c.PForward = 0.9
	}
	if c.PSource == 0 {
		c.PSource = 0.5
	}
	if c.LostCapacity == 0 {
		c.LostCapacity = 4096
	}
	if c.LostTTL == 0 {
		c.LostTTL = 10 * time.Second
	}
	if c.HeartbeatInterval > 0 && c.HeartbeatTimeout == 0 {
		c.HeartbeatTimeout = 4 * c.HeartbeatInterval
	}
	if c.RequestRetries == 0 {
		c.RequestRetries = 4
	}
	if c.RequestBackoff == 0 {
		c.RequestBackoff = 2 * c.GossipInterval
	}
	if c.MaxPending == 0 {
		c.MaxPending = 4096
	}
	if c.LedgerWindow == 0 {
		c.LedgerWindow = 10 * c.GossipInterval
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Stats is a snapshot of a live node's counters.
type Stats struct {
	Published      uint64
	Delivered      uint64
	Recovered      uint64
	LossesDetected uint64
	GossipSent     uint64
	EventsSent     uint64
	Served         uint64
	DroppedInject  uint64
	// Malformed counts datagrams dropped because they were too short
	// or failed to decode — counted, never fatal. Misrouted counts
	// well-formed datagrams whose destination slot names another node.
	Malformed uint64
	Misrouted uint64
	// HeartbeatsSent, NeighborsSuspected, and NeighborsRevived report
	// the failure detector (zero when HeartbeatInterval is 0).
	HeartbeatsSent     uint64
	NeighborsSuspected uint64
	NeighborsRevived   uint64
	// RequestsRetried and RequestsAbandoned report the recovery
	// Request retransmission machinery; PendingShed counts entries
	// evicted greediest-peer-first when the pending table hit
	// MaxPending; QuotaTrimmed counts events withheld from
	// retransmissions because the requesting peer exhausted its
	// ServeBudget for the ledger window.
	RequestsRetried   uint64
	RequestsAbandoned uint64
	PendingShed       uint64
	QuotaTrimmed      uint64
}

// counters are the node's statistics, updated with atomics so the
// per-datagram hot path never takes a lock just to count.
type counters struct {
	published, delivered, recovered, lossesDetected      atomic.Uint64
	gossipSent, eventsSent, served, droppedInject        atomic.Uint64
	malformed, misrouted                                 atomic.Uint64
	heartbeatsSent, neighborsSuspected, neighborsRevived atomic.Uint64
	requestsRetried, requestsAbandoned, pendingShed      atomic.Uint64
	quotaTrimmed                                         atomic.Uint64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Published:          c.published.Load(),
		Delivered:          c.delivered.Load(),
		Recovered:          c.recovered.Load(),
		LossesDetected:     c.lossesDetected.Load(),
		GossipSent:         c.gossipSent.Load(),
		EventsSent:         c.eventsSent.Load(),
		Served:             c.served.Load(),
		DroppedInject:      c.droppedInject.Load(),
		Malformed:          c.malformed.Load(),
		Misrouted:          c.misrouted.Load(),
		HeartbeatsSent:     c.heartbeatsSent.Load(),
		NeighborsSuspected: c.neighborsSuspected.Load(),
		NeighborsRevived:   c.neighborsRevived.Load(),
		RequestsRetried:    c.requestsRetried.Load(),
		RequestsAbandoned:  c.requestsAbandoned.Load(),
		PendingShed:        c.pendingShed.Load(),
		QuotaTrimmed:       c.quotaTrimmed.Load(),
	}
}

// peerState is the failure detector's per-neighbor record, guarded by
// peerMu — a dedicated leaf lock so that per-datagram liveness updates
// never contend with the routing state under mu. Lock order: mu may be
// held when taking peerMu, never the reverse.
type peerState struct {
	lastSeen  time.Time
	suspected bool
}

// Node is one live dispatcher.
type Node struct {
	cfg   Config
	tr    transport
	disp  *Dispatcher // non-nil when hosted; owns the sockets
	start time.Time

	mu        sync.Mutex
	rng       *rand.Rand
	neighbors map[ident.NodeID]netip.AddrPort
	directory map[ident.NodeID]netip.AddrPort
	local     map[ident.PatternID]bool
	localSet  ident.PatternSet // in-range mirror of local; event-path fast match
	table     map[ident.PatternID][]ident.NodeID
	nextSeq   uint32
	patSeq    map[ident.PatternID]uint32
	received  *ident.EventIDSet

	buf      *cache.Cache
	patIdx   map[ident.PatternID]*ident.EventIDSet
	tagIdx   map[wire.LostEntry]ident.EventID
	lost     *core.LostBuffer
	high     map[srcPattern]uint32
	routes   map[ident.NodeID][]ident.NodeID
	pending  map[ident.EventID]*pendingReq
	pendingQ []*pendingReq // FIFO shadow of pending, oldest first
	ledger   ledger        // per-peer recovery-traffic accounting

	peerMu sync.Mutex
	peers  map[ident.NodeID]*peerState

	stats counters

	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
}

type srcPattern struct {
	src ident.NodeID
	pat ident.PatternID
}

// NewNode binds a UDP socket and starts the node's receive loop (and
// gossip loop when recovery is enabled). Close releases everything.
func NewNode(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	addr, err := net.ResolveUDPAddr("udp", cfg.Bind)
	if err != nil {
		return nil, fmt.Errorf("live: resolving %q: %w", cfg.Bind, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: listening on %q: %w", cfg.Bind, err)
	}
	n := newNodeState(cfg, &sockTransport{conn: conn}, nil)
	n.wg.Add(1)
	go n.readLoop(conn)
	n.startLoops()
	return n, nil
}

// newNodeState builds the protocol state shared by standalone and
// hosted nodes. cfg must already carry defaults.
func newNodeState(cfg Config, tr transport, disp *Dispatcher) *Node {
	start := cfg.Epoch
	if start.IsZero() {
		start = time.Now()
	}
	rng := rand.New(rand.NewSource(sim.DeriveSeed(cfg.Seed, 'l', int64(cfg.ID))))
	n := &Node{
		cfg:       cfg,
		tr:        tr,
		disp:      disp,
		start:     start,
		rng:       rng,
		neighbors: make(map[ident.NodeID]netip.AddrPort),
		directory: make(map[ident.NodeID]netip.AddrPort),
		local:     make(map[ident.PatternID]bool),
		table:     make(map[ident.PatternID][]ident.NodeID),
		patSeq:    make(map[ident.PatternID]uint32),
		received:  ident.NewEventIDSet(64),
		buf:       cache.New(cfg.BufferSize, cache.FIFOPolicy, nil),
		patIdx:    make(map[ident.PatternID]*ident.EventIDSet),
		tagIdx:    make(map[wire.LostEntry]ident.EventID),
		lost:      core.NewLostBuffer(cfg.LostCapacity, cfg.LostTTL),
		high:      make(map[srcPattern]uint32),
		routes:    make(map[ident.NodeID][]ident.NodeID),
		pending:   make(map[ident.EventID]*pendingReq),
		peers:     make(map[ident.NodeID]*peerState),
		done:      make(chan struct{}),
	}
	n.ledger.init()
	n.buf.SetOnEvict(n.unindexLocked)
	return n
}

// startLoops launches the timer-driven goroutines (gossip, heartbeat).
// The receive path is the caller's: standalone nodes run readLoop,
// hosted nodes are fed by their dispatcher's shard readers.
func (n *Node) startLoops() {
	if n.cfg.Algorithm != core.NoRecovery {
		n.wg.Add(1)
		go n.gossipLoop()
	}
	if n.cfg.HeartbeatInterval > 0 {
		n.wg.Add(1)
		go n.heartbeatLoop()
	}
}

// ID returns the dispatcher identifier.
func (n *Node) ID() ident.NodeID { return n.cfg.ID }

// Addr returns the UDP address peers use to reach this node — its own
// socket for a standalone node, the shard socket for a hosted one.
func (n *Node) Addr() *net.UDPAddr { return n.tr.localAddr() }

// Stats returns a snapshot of the counters.
func (n *Node) Stats() Stats { return n.stats.snapshot() }

// Close shuts the node down: goroutines are joined and, for a
// standalone node, the socket is closed. A hosted node deregisters
// from its dispatcher; the shard sockets stay up.
func (n *Node) Close() error {
	var err error
	n.closeOnce.Do(func() {
		close(n.done)
		err = n.tr.close()
		n.wg.Wait()
		if n.disp != nil {
			n.disp.removeNode(n.cfg.ID)
		}
	})
	return err
}

// toAddrPort converts a UDPAddr to the netip form the transports use,
// unmapping IPv4-in-IPv6 addresses: net.ResolveUDPAddr hands out
// 16-byte IPv4 representations, and a v4-mapped destination silently
// fails on an AF_INET socket.
func toAddrPort(a *net.UDPAddr) netip.AddrPort {
	ap := a.AddrPort()
	if ap.Addr().Is4In6() {
		ap = netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
	}
	return ap
}

// SetDirectory installs the id→address map used by out-of-band sends.
// The map is copied.
func (n *Node) SetDirectory(dir map[ident.NodeID]*net.UDPAddr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for id, a := range dir {
		n.directory[id] = toAddrPort(a)
	}
}

// AddNeighbor attaches a tree link toward the given dispatcher and
// advertises every known interest over it, exactly as OnLinkUp does in
// the simulator.
func (n *Node) AddNeighbor(id ident.NodeID, addr *net.UDPAddr) {
	ap := toAddrPort(addr)
	n.mu.Lock()
	n.neighbors[id] = ap
	n.directory[id] = ap
	var subs []ident.PatternID
	for p := range n.local {
		subs = append(subs, p)
	}
	for p := range n.table {
		if !n.local[p] && n.advertisedToLocked(p, id) {
			subs = append(subs, p)
		}
	}
	n.mu.Unlock()
	n.peerMu.Lock()
	n.peers[id] = &peerState{lastSeen: time.Now()} // grace period before the detector may suspect
	n.peerMu.Unlock()
	for _, p := range subs {
		n.sendTree(id, &wire.Subscribe{Pattern: p})
	}
}

// RemoveNeighbor detaches a tree link and flushes every route through
// it (OnLinkDown).
func (n *Node) RemoveNeighbor(id ident.NodeID) {
	n.mu.Lock()
	delete(n.neighbors, id)
	var stale []ident.PatternID
	for p, dirs := range n.table {
		for _, d := range dirs {
			if d == id {
				stale = append(stale, p)
				break
			}
		}
	}
	n.mu.Unlock()
	n.peerMu.Lock()
	delete(n.peers, id)
	n.peerMu.Unlock()
	for _, p := range stale {
		n.mu.Lock()
		outs := n.removeInterestLocked(p, id)
		n.mu.Unlock()
		n.flush(outs)
	}
}

// now returns the node's monotonic clock as a duration since start,
// the time base of the Lost buffer.
func (n *Node) now() time.Duration { return time.Since(n.start) }

// envelope layout: 4 bytes sender ID, 4 bytes destination ID, 1 byte
// flags, then the payload. The destination slot is how a dispatcher
// sharing one socket among thousands of hosted nodes routes each
// datagram to its node. A heartbeat envelope carries no payload: it is
// exactly envelopeLen bytes with the heartbeat flag set. A batch
// envelope's payload is a sequence of length-prefixed wire messages
// (wire.AppendFrame/NextFrame) sharing one sender, destination, and
// OOB flag.
const (
	envelopeLen   = 9
	flagOOB       = 1 << 0 // message arrived out of band (not over a tree link)
	flagHeartbeat = 1 << 1 // liveness-only datagram, no payload
	flagBatch     = 1 << 2 // payload is a sequence of framed messages
)

// putEnvelope writes the envelope header into b[:envelopeLen].
func putEnvelope(b []byte, from, to ident.NodeID, flags byte) {
	binary.LittleEndian.PutUint32(b, uint32(from))
	binary.LittleEndian.PutUint32(b[4:], uint32(to))
	b[8] = flags
}

// appendEnvelope appends the envelope header onto buf.
func appendEnvelope(buf []byte, from, to ident.NodeID, flags byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(from))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(to))
	return append(buf, flags)
}

// encodeEnvelope encodes msg in a self-addressed envelope — the shape
// handleDatagram accepts. Tests use it to synthesize valid datagrams.
func (n *Node) encodeEnvelope(buf []byte, msg wire.Message, oob bool) []byte {
	var flags byte
	if oob {
		flags = flagOOB
	}
	buf = appendEnvelope(buf[:0], n.cfg.ID, n.cfg.ID, flags)
	return msg.Append(buf)
}

// sendTree transmits msg to a direct neighbor, subject to injected
// loss. Subscription control messages are exempt: in a real deployment
// the control plane rides a reliable transport (TCP), while events and
// gossip are the best-effort data plane the paper studies.
func (n *Node) sendTree(to ident.NodeID, msg wire.Message) {
	kind := msg.Kind()
	control := kind == wire.KindSubscribe || kind == wire.KindUnsubscribe
	n.mu.Lock()
	addr, ok := n.neighbors[to]
	drop := !control && n.cfg.DropProb > 0 && n.rng.Float64() < n.cfg.DropProb
	n.mu.Unlock()
	if !ok {
		return
	}
	if drop {
		n.stats.droppedInject.Add(1)
		return
	}
	if kind.IsGossip() {
		n.stats.gossipSent.Add(1)
	} else if kind == wire.KindEvent {
		n.stats.eventsSent.Add(1)
	}
	n.tr.sendMsg(n.cfg.ID, to, addr, msg, false)
}

// sendOOB transmits msg to any dispatcher in the directory.
func (n *Node) sendOOB(to ident.NodeID, msg wire.Message) {
	n.mu.Lock()
	addr, ok := n.directory[to]
	n.mu.Unlock()
	if !ok {
		return
	}
	if kind := msg.Kind(); kind.IsGossip() {
		n.stats.gossipSent.Add(1)
	} else if kind == wire.KindRetransmit {
		n.stats.eventsSent.Add(uint64(len(msg.(*wire.Retransmit).Events)))
	}
	n.tr.sendMsg(n.cfg.ID, to, addr, msg, true)
}

func closing(err error) bool {
	return errors.Is(err, net.ErrClosed)
}

// readLoop receives datagrams until Close (standalone nodes only; a
// hosted node is fed by its dispatcher's shard readers). The 64 KB
// receive buffer is pooled across node lifetimes.
func (n *Node) readLoop(conn *net.UDPConn) {
	defer n.wg.Done()
	bp := recvBufPool.Get().(*[]byte)
	defer recvBufPool.Put(bp)
	buf := *bp
	for {
		nb, _, err := conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			if closing(err) {
				return
			}
			select {
			case <-n.done:
				return
			default:
				continue
			}
		}
		n.handleDatagram(buf[:nb])
	}
}

// handleDatagram parses and dispatches one raw datagram. It must never
// panic on adversarial input: anything that does not parse is counted
// as malformed and dropped, like real UDP software. Split out from
// readLoop so tests can fuzz it without a socket.
func (n *Node) handleDatagram(buf []byte) {
	if len(buf) < envelopeLen {
		n.stats.malformed.Add(1)
		return
	}
	from := ident.NodeID(binary.LittleEndian.Uint32(buf))
	dest := ident.NodeID(binary.LittleEndian.Uint32(buf[4:]))
	flags := buf[8]
	if dest != n.cfg.ID {
		n.stats.misrouted.Add(1)
		return
	}
	n.observePeer(from)
	if flags&flagHeartbeat != 0 {
		return // liveness only, no payload to decode
	}
	oob := flags&flagOOB != 0
	payload := buf[envelopeLen:]
	if flags&flagBatch != 0 {
		for len(payload) > 0 {
			frame, rest, err := wire.NextFrame(payload)
			if err != nil {
				n.stats.malformed.Add(1)
				return
			}
			msg, err := wire.Decode(frame)
			if err != nil {
				n.stats.malformed.Add(1)
				return
			}
			n.handle(from, msg, oob)
			payload = rest
		}
		return
	}
	msg, err := wire.Decode(payload)
	if err != nil {
		n.stats.malformed.Add(1)
		return
	}
	n.handle(from, msg, oob)
}

// observePeer feeds the failure detector: any traffic from a tree
// neighbor proves it alive and clears a standing suspicion. With the
// detector disabled there is no state to maintain and the per-datagram
// cost is a single predictable branch.
func (n *Node) observePeer(from ident.NodeID) {
	if n.cfg.HeartbeatInterval == 0 {
		return
	}
	n.peerMu.Lock()
	if ps, ok := n.peers[from]; ok {
		ps.lastSeen = time.Now()
		if ps.suspected {
			ps.suspected = false
			n.stats.neighborsRevived.Add(1)
		}
	}
	n.peerMu.Unlock()
}

// isSuspect reports whether the failure detector currently suspects
// id. Safe to call with mu held (peerMu is a leaf lock).
func (n *Node) isSuspect(id ident.NodeID) bool {
	if n.cfg.HeartbeatInterval == 0 {
		return false
	}
	n.peerMu.Lock()
	ps, ok := n.peers[id]
	s := ok && ps.suspected
	n.peerMu.Unlock()
	return s
}

// gossipLoop runs a gossip round every interval, with a random initial
// phase like the simulator's jittered ticker.
func (n *Node) gossipLoop() {
	defer n.wg.Done()
	phase := time.Duration(rand.New(rand.NewSource(sim.DeriveSeed(n.cfg.Seed, 'p', int64(n.cfg.ID)))).
		Int63n(int64(n.cfg.GossipInterval)))
	timer := time.NewTimer(phase)
	select {
	case <-timer.C:
	case <-n.done:
		timer.Stop()
		return
	}
	ticker := time.NewTicker(n.cfg.GossipInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			n.gossipRound()
		case <-n.done:
			return
		}
	}
}

// heartbeatLoop drives the failure detector: each tick heartbeats
// every tree neighbor and suspects the silent ones.
func (n *Node) heartbeatLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			n.heartbeat()
		case <-n.done:
			return
		}
	}
}

func (n *Node) heartbeat() {
	type hb struct {
		id   ident.NodeID
		addr netip.AddrPort
	}
	n.mu.Lock()
	targets := make([]hb, 0, len(n.neighbors))
	for id, addr := range n.neighbors {
		targets = append(targets, hb{id: id, addr: addr})
	}
	n.mu.Unlock()
	now := time.Now()
	n.peerMu.Lock()
	for _, t := range targets {
		if ps, ok := n.peers[t.id]; ok && !ps.suspected && now.Sub(ps.lastSeen) > n.cfg.HeartbeatTimeout {
			ps.suspected = true
			n.stats.neighborsSuspected.Add(1)
		}
	}
	n.peerMu.Unlock()
	n.stats.heartbeatsSent.Add(uint64(len(targets)))
	for _, t := range targets {
		n.tr.sendHeartbeat(n.cfg.ID, t.id, t.addr)
	}
}

// SuspectedNeighbors returns the neighbors the failure detector
// currently suspects, for tests and monitoring.
func (n *Node) SuspectedNeighbors() []ident.NodeID {
	n.peerMu.Lock()
	defer n.peerMu.Unlock()
	out := make([]ident.NodeID, 0, len(n.peers))
	for id, ps := range n.peers {
		if ps.suspected {
			out = append(out, id)
		}
	}
	return out
}
