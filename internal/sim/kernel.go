// Package sim implements the discrete-event simulation kernel that
// replaces OMNeT++ in the paper's evaluation: a virtual clock, a
// 4-ary-heap future-event set with deterministic tie-breaking, and
// seeded random-number streams.
//
// The kernel is single-threaded and fully deterministic: two runs with
// the same seed and the same schedule of callbacks produce identical
// traces. Parallelism belongs one level up, where independent
// simulations of a parameter sweep each run on their own kernel in
// their own goroutine.
package sim

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Time is a point in virtual time, measured from the start of the
// simulation. It reuses time.Duration so that literals such as
// 30*time.Millisecond read naturally in scenario code.
type Time = time.Duration

// Handler is a callback executed at its scheduled virtual time.
type Handler func()

// entry is the slab-resident state of one scheduled event. Entries
// live in Kernel.slab, addressed by slot index; popped or drained
// slots are recycled through the free list instead of becoming
// garbage. gen disambiguates recycled slots so that a stale Canceler
// held across the recycle boundary cannot cancel the wrong event
// (ABA). The ordering keys (at, seq) live in the heap nodes, not
// here, so sift comparisons never chase into the slab.
type entry struct {
	fn    Handler
	gen   uint64 // bumped on recycle; must match Canceler.gen
	sched bool   // still in the heap (not yet popped)
	dead  bool   // cancelled
}

// GlobalAff marks an event that may interact with any simulation
// state: topology mutations, fault injection, teardown. The parallel
// window driver executes global events solo, between windows; events
// tagged with a node affinity (≥ 0) touch only that node's state plus
// deferred externals, and may run concurrently with other affinities.
// The sequential executor ignores affinity entirely.
const GlobalAff int32 = -1

// heapNode is one element of the future-event set, ordered by
// (at, seq). The keys are stored inline so the 4-ary sift loops
// compare adjacent memory instead of dereferencing slab entries. aff
// rides in what was struct padding — the node stays 24 bytes.
type heapNode struct {
	at   Time
	seq  uint64 // insertion order; breaks ties deterministically
	slot int32  // index into Kernel.slab
	aff  int32  // event affinity (GlobalAff or a node id)
}

// before reports the strict (at, seq) order. seq is unique per
// scheduled event, so this is a total order and any heap pops events
// in exactly insertion order among equal timestamps — the same
// tie-breaking the binary container/heap implementation had.
func (n heapNode) before(m heapNode) bool {
	if n.at != m.at {
		return n.at < m.at
	}
	return n.seq < m.seq
}

// Canceler cancels a scheduled event. Cancelling an event that already
// fired (or was already cancelled) is a no-op, even when the kernel has
// since recycled the underlying slot for a different event. The zero
// Canceler is valid and cancels nothing.
type Canceler struct {
	k    *Kernel
	slot int32
	gen  uint64
}

// Cancel prevents the associated handler from running.
func (c Canceler) Cancel() {
	if c.k == nil {
		return
	}
	if c.k.inWindow {
		// No component cancels from inside node-affinity handlers
		// (only Ticker.Stop cancels, and it runs from teardown or
		// global fault events). Allowing it would require in-window
		// cross-shard cancellation semantics; fail loudly instead.
		panic("sim: Cancel during a parallel window")
	}
	e := &c.k.slab[c.slot]
	if e.gen != c.gen || e.dead {
		return
	}
	e.dead = true
	e.fn = nil // release the closure now; the slot drains lazily
	if e.sched {
		c.k.dead++
		c.k.maybeSweep()
	}
}

// Kernel is a discrete-event simulator instance.
//
// A Kernel must not be shared between goroutines.
type Kernel struct {
	now       Time
	seq       uint64
	heap      []heapNode // 4-ary min-heap over (at, seq)
	slab      []entry    // value storage, addressed by heapNode.slot
	free      []int32    // recycled slot indexes for At/After
	dead      int        // cancelled entries still in heap
	rng       *rand.Rand
	seed      int64
	processed uint64
	stopped   bool

	// Parallel-window state (see parallel.go). inWindow is true only
	// while shard workers execute a window; it is written before the
	// workers start and after they join, so reads from worker
	// goroutines are race-free. procs caches one Proc per affinity.
	// slabMu guards slab growth and free-list pops from shard workers
	// reserving intent slots; outside windows the kernel stays
	// single-threaded and never takes it.
	inWindow  bool
	windowEnd Time
	parUntil  Time
	parShards int
	shards    []shardState
	procs     []*Proc
	slabMu    sync.Mutex
	winInit   []*winEv // current window's events in pop order
	winPool   []*winEv
}

// New returns a kernel whose random streams derive from seed.
func New(seed int64) *Kernel {
	return &Kernel{
		rng:  rand.New(rand.NewSource(seed)),
		seed: seed,
	}
}

// Reset returns the kernel to the state New(seed) would produce while
// keeping the slab, heap, and free-list capacity. A parameter sweep
// reuses one kernel per worker across runs, so later runs skip the
// slab warm-up of earlier ones. Every slot generation is bumped, so
// Cancelers held across a Reset are invalidated rather than aliased.
func (k *Kernel) Reset(seed int64) {
	for i := range k.slab {
		k.slab[i].gen++
		k.slab[i].fn = nil
		k.slab[i].sched = false
		k.slab[i].dead = false
	}
	k.free = k.free[:0]
	for i := len(k.slab) - 1; i >= 0; i-- {
		k.free = append(k.free, int32(i))
	}
	k.heap = k.heap[:0]
	k.now = 0
	k.seq = 0
	k.dead = 0
	k.processed = 0
	k.stopped = false
	k.seed = seed
	k.rng = rand.New(rand.NewSource(seed))
	k.inWindow = false
	k.windowEnd = 0
	k.parUntil = 0
	k.parShards = 0
	k.shards = nil
	k.procs = nil
	k.winInit = k.winInit[:0]
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Seed returns the seed the kernel was created with.
func (k *Kernel) Seed() int64 { return k.seed }

// Rand returns the kernel's root random stream. Components that need
// independent streams should derive them with NewStream.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// NewStream derives an independent, deterministic random stream from
// the kernel seed and the given tag. Streams created with the same
// (seed, tag) pair are identical across runs.
func (k *Kernel) NewStream(tag int64) *rand.Rand {
	// SplitMix-style scramble keeps streams decorrelated even for
	// adjacent tags.
	z := uint64(k.seed) + uint64(tag)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}

// Processed returns the number of events executed so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// Pending returns the number of events currently scheduled (including
// cancelled entries not yet drained).
func (k *Kernel) Pending() int { return len(k.heap) }

// At schedules fn to run at virtual time at. Scheduling in the past
// panics: it is always a bug in the caller. Events scheduled directly
// on the kernel carry the global affinity — the conservative default;
// per-node components schedule through their Proc, which tags events
// with the node's affinity so the parallel driver can shard them.
func (k *Kernel) At(at Time, fn Handler) Canceler {
	return k.atAff(GlobalAff, at, fn)
}

// AtAff schedules fn with an explicit affinity: the event touches only
// that node's state (plus deferred externals). The network uses this
// to tag arrivals with their receiver.
func (k *Kernel) AtAff(aff int32, at Time, fn Handler) Canceler {
	return k.atAff(aff, at, fn)
}

func (k *Kernel) atAff(aff int32, at Time, fn Handler) Canceler {
	if at < k.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, k.now))
	}
	var slot int32
	if n := len(k.free); n > 0 {
		slot = k.free[n-1]
		k.free = k.free[:n-1]
	} else {
		k.slab = append(k.slab, entry{})
		slot = int32(len(k.slab) - 1)
	}
	e := &k.slab[slot]
	e.fn, e.sched, e.dead = fn, true, false
	nd := heapNode{at: at, seq: k.seq, slot: slot, aff: aff}
	k.seq++
	k.heap = append(k.heap, nd)
	k.siftUp(len(k.heap)-1, nd)
	return Canceler{k: k, slot: slot, gen: e.gen}
}

// siftUp moves nd (conceptually at index i) toward the root, walking a
// hole upward and writing each displaced parent once. The 4-ary layout
// puts the parent of i at (i-1)/4. Slot state is untouched: the slab
// only records whether an event is scheduled, not where, so sift moves
// are pure heap-array writes.
func (k *Kernel) siftUp(i int, nd heapNode) {
	for i > 0 {
		parent := (i - 1) / 4
		p := k.heap[parent]
		if !nd.before(p) {
			break
		}
		k.heap[i] = p
		i = parent
	}
	k.heap[i] = nd
}

// siftDown moves nd (conceptually at index i) toward the leaves. The
// children of i are 4i+1 .. 4i+4; the minimum child is found with at
// most three comparisons, and nd descends while it is larger.
func (k *Kernel) siftDown(i int, nd heapNode) {
	n := len(k.heap)
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		min := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if k.heap[j].before(k.heap[min]) {
				min = j
			}
		}
		m := k.heap[min]
		if !m.before(nd) {
			break
		}
		k.heap[i] = m
		i = min
	}
	k.heap[i] = nd
}

// popMin removes and returns the root node. The caller owns the
// returned node's slot; it is marked unscheduled.
func (k *Kernel) popMin() heapNode {
	top := k.heap[0]
	k.slab[top.slot].sched = false
	n := len(k.heap) - 1
	last := k.heap[n]
	k.heap = k.heap[:n]
	if n > 0 {
		k.siftDown(0, last)
	}
	return top
}

// recycle returns a popped slot to the free list, invalidating any
// outstanding Cancelers for it.
func (k *Kernel) recycle(slot int32) {
	e := &k.slab[slot]
	e.gen++
	e.fn = nil
	k.free = append(k.free, slot)
}

// maybeSweep drains cancelled entries in bulk once they dominate the
// future-event set, so mass cancellations (e.g. tearing down many
// timers) do not pin memory until virtual time reaches them. The O(n)
// rebuild is amortized: it runs at most once per n/2 cancellations.
// Floyd's bottom-up heapify restores the heap property; pop order is
// unaffected because (at, seq) is a total order.
func (k *Kernel) maybeSweep() {
	if k.dead < 64 || k.dead*2 <= len(k.heap) {
		return
	}
	live := k.heap[:0]
	for _, nd := range k.heap {
		if k.slab[nd.slot].dead {
			k.slab[nd.slot].sched = false
			k.recycle(nd.slot)
			continue
		}
		live = append(live, nd)
	}
	k.heap = live
	if n := len(live); n > 1 {
		for i := (n - 2) / 4; i >= 0; i-- {
			k.siftDown(i, k.heap[i])
		}
	}
	k.dead = 0
}

// After schedules fn to run d after the current time.
func (k *Kernel) After(d Time, fn Handler) Canceler {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.At(k.now+d, fn)
}

// Stop makes Run return after the currently executing handler.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events in timestamp order until the future-event set is
// empty, the next event is past the horizon, or Stop is called. It
// returns the number of events executed by this call. The clock is left
// at the horizon when the run drained up to it, so that a subsequent
// Run with a later horizon continues seamlessly.
func (k *Kernel) Run(until Time) uint64 {
	var n uint64
	k.stopped = false
	for len(k.heap) > 0 && !k.stopped {
		if k.heap[0].at > until {
			break
		}
		next := k.popMin()
		e := &k.slab[next.slot]
		if e.dead {
			k.dead--
			k.recycle(next.slot)
			continue
		}
		k.now = next.at
		fn := e.fn
		k.recycle(next.slot)
		fn()
		n++
		k.processed++
	}
	if k.now < until && !k.stopped {
		k.now = until
	}
	return n
}

// RunAll executes every scheduled event regardless of time, leaving
// the clock at the last executed event (so more work can be scheduled
// afterwards). Intended for tests; simulations should bound Run with a
// horizon.
func (k *Kernel) RunAll() uint64 {
	var n uint64
	k.stopped = false
	for len(k.heap) > 0 && !k.stopped {
		next := k.popMin()
		e := &k.slab[next.slot]
		if e.dead {
			k.dead--
			k.recycle(next.slot)
			continue
		}
		k.now = next.at
		fn := e.fn
		k.recycle(next.slot)
		fn()
		n++
		k.processed++
	}
	return n
}
