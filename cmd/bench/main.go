// Command bench runs the hot-path micro-benchmarks of internal/bench
// and appends one entry to the benchmark trajectory file
// (BENCH_hotpath.json by default). Every PR that touches a hot path
// re-runs it, so the file records how the per-event cost of the
// simulator evolves over time:
//
//	go run ./cmd/bench -label "pr1-pooled-kernel"
//
// The label defaults to bench-<git short hash>, so a plain
// `go run ./cmd/bench` records a correctly attributed entry. With
// -cpuprofile/-memprofile the run writes pprof profiles of the suite,
// so the next perf investigation starts from a profile rather than a
// guess. With -gate the command runs only the EndToEnd benchmark and
// exits non-zero when its ns/op regressed more than the tolerance
// against the latest trajectory entry, without appending anything.
//
// Compare entries with any JSON tool; the interesting columns are
// ns_per_op and allocs_per_op on the kernel and network paths, and
// sim_events_per_sec end to end.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
)

// The measurement and entry schema lives in internal/bench
// (trajectory.go), shared with cmd/livebench which merges live-network
// measurements into the same file.

func main() {
	label := flag.String("label", "", "trajectory label for this run (default bench-<git short hash>)")
	out := flag.String("out", "BENCH_hotpath.json", "trajectory file to append to")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile of the benchmark run to this file")
	gate := flag.Bool("gate", false, "regression gate: compare a fresh EndToEnd run against the latest trajectory entry and exit 1 on regression; appends nothing")
	gateTrajectory := flag.Bool("gate-trajectory", false, "regression gate: compare the two latest recorded entries (no benchmark run, hardware-independent); exit 1 on regression")
	gateTolerance := flag.Float64("gate-tolerance", 0.10, "allowed fractional EndToEnd ns/op regression in gate modes")
	shards := flag.String("shards", "", "comma-separated shard counts (e.g. 1,2,4,8): additionally run the ShardedRun benchmark per count, recording the sharded-DES wall-clock curve")
	flag.Parse()
	if *label == "" {
		if c := gitCommit(); c != "" {
			*label = "bench-" + c
		} else {
			*label = "bench-local"
		}
	}

	// Validate the trajectory file before spending minutes on the
	// benchmarks themselves.
	trajectory, err := bench.LoadTrajectory(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}

	if *gateTrajectory {
		os.Exit(runGateTrajectory(trajectory, *out, *gateTolerance))
	}
	if *gate {
		os.Exit(runGate(trajectory, *out, *gateTolerance))
	}

	suite := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"KernelScheduleDispatch", bench.KernelScheduleDispatch},
		{"KernelScheduleCancel", bench.KernelScheduleCancel},
		{"NetworkSend", bench.NetworkSend},
		{"MetricsTracker", bench.MetricsTracker},
		{"GossipRound", bench.GossipRound},
		{"DigestBuild", bench.DigestBuild},
		{"LostBuffer", bench.LostBuffer},
		{"EndToEnd", bench.EndToEnd},
		{"EndToEndChecked", bench.EndToEndChecked},
		{"AdaptiveChurn", bench.AdaptiveChurn},
		{"Scale10k", bench.Scale10k},
		{"MetricsPipelineExact", bench.MetricsPipelineExact},
		{"MetricsPipelineStreaming", bench.MetricsPipelineStreaming},
		{"Heavy10k", bench.Heavy10k},
		{"Heavy10kStreaming", bench.Heavy10kStreaming},
	}
	for _, s := range parseShards(*shards) {
		suite = append(suite, struct {
			name string
			fn   func(*testing.B)
		}{fmt.Sprintf("ShardedRun/%d", s), bench.ShardedRun(s)})
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: creating %s: %v\n", *cpuProfile, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "bench: starting CPU profile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	e := bench.Entry{
		Label:      *label,
		Date:       time.Now().UTC().Format(time.RFC3339),
		Commit:     gitCommit(),
		GoVersion:  runtime.Version(),
		Benchmarks: make(map[string]bench.Measurement, len(suite)),
	}
	for _, s := range suite {
		r := testing.Benchmark(s.fn)
		m := toMeasurement(r)
		e.Benchmarks[s.name] = m
		fmt.Printf("%-24s %12.1f ns/op %8d allocs/op %10d B/op", s.name, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp)
		if m.SimEventsPerSec > 0 {
			fmt.Printf(" %14.0f simevents/s", m.SimEventsPerSec)
		}
		fmt.Println()
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: creating %s: %v\n", *memProfile, err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintf(os.Stderr, "bench: writing allocation profile: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}

	trajectory = append(trajectory, e)
	if err := bench.SaveTrajectory(*out, trajectory); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("appended %q to %s (%d entries)\n", *label, *out, len(trajectory))
}

// runGate compares a fresh EndToEnd run against the latest trajectory
// entry and returns the process exit code. The tolerance absorbs run
// noise; cross-machine comparisons (a CI runner judging numbers
// recorded on a dev box) should widen it via -gate-tolerance.
func runGate(trajectory []bench.Entry, out string, tolerance float64) int {
	if len(trajectory) == 0 {
		fmt.Fprintf(os.Stderr, "bench: gate: %s has no entries to compare against\n", out)
		return 1
	}
	base, ok := trajectory[len(trajectory)-1].Benchmarks["EndToEnd"]
	if !ok {
		fmt.Fprintf(os.Stderr, "bench: gate: latest entry %q has no EndToEnd measurement\n", trajectory[len(trajectory)-1].Label)
		return 1
	}
	m := toMeasurement(testing.Benchmark(bench.EndToEnd))
	limit := base.NsPerOp * (1 + tolerance)
	fmt.Printf("gate: EndToEnd %.0f ns/op vs baseline %q %.0f ns/op (limit %.0f, tolerance %.0f%%)\n",
		m.NsPerOp, trajectory[len(trajectory)-1].Label, base.NsPerOp, limit, tolerance*100)
	if m.NsPerOp > limit {
		fmt.Fprintf(os.Stderr, "bench: gate: EndToEnd regressed %.1f%% (> %.0f%% allowed)\n",
			(m.NsPerOp/base.NsPerOp-1)*100, tolerance*100)
		return 1
	}
	return 0
}

// runGateTrajectory enforces the per-PR regression budget on the
// recorded trajectory itself: the latest entry's EndToEnd ns/op may
// not exceed the previous entry's by more than the tolerance. Entries
// are recorded on one machine per PR, so unlike runGate this
// comparison is deterministic and hardware-independent — it runs no
// benchmark at all.
func runGateTrajectory(trajectory []bench.Entry, out string, tolerance float64) int {
	if len(trajectory) < 2 {
		fmt.Printf("gate: %s has %d entries; nothing to compare\n", out, len(trajectory))
		return 0
	}
	prev, cur := trajectory[len(trajectory)-2], trajectory[len(trajectory)-1]
	base, okBase := prev.Benchmarks["EndToEnd"]
	last, okLast := cur.Benchmarks["EndToEnd"]
	if !okBase || !okLast {
		fmt.Fprintf(os.Stderr, "bench: gate: entries %q/%q lack EndToEnd measurements\n", prev.Label, cur.Label)
		return 1
	}
	limit := base.NsPerOp * (1 + tolerance)
	fmt.Printf("gate: recorded EndToEnd %q %.0f ns/op vs %q %.0f ns/op (limit %.0f)\n",
		cur.Label, last.NsPerOp, prev.Label, base.NsPerOp, limit)
	if last.NsPerOp > limit {
		fmt.Fprintf(os.Stderr, "bench: gate: recorded EndToEnd regressed %.1f%% (> %.0f%% allowed)\n",
			(last.NsPerOp/base.NsPerOp-1)*100, tolerance*100)
		return 1
	}
	return 0
}

func toMeasurement(r testing.BenchmarkResult) bench.Measurement {
	m := bench.Measurement{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
	if v, ok := r.Extra["simevents/s"]; ok {
		m.SimEventsPerSec = v
	}
	return m
}

// parseShards parses the -shards list; invalid or non-positive counts
// abort rather than silently benchmark the wrong sweep.
func parseShards(s string) []int {
	if s == "" {
		return nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bench: -shards: bad shard count %q\n", part)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

// gitCommit returns the short HEAD hash, or "" outside a git checkout.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
