package scenario

import (
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// diffParams is the differential corpus base: mid-size, bucket-aligned
// measurement window, enough traffic that every metric is exercised
// but few enough latency samples that the streaming reservoirs retain
// all of them — so quantiles must match the exact histogram to the
// bucket, a far stronger bound than the 5% tolerance asserted below.
func diffParams(alg core.Algorithm, seed int64) Params {
	p := DefaultParams()
	p.Seed = seed
	p.N = 40
	p.Duration = 5 * time.Second
	p.MeasureFrom = 500 * time.Millisecond // multiple of BucketWidth
	p.MeasureTo = 4 * time.Second
	p.PublishRate = 10
	p.Network.LossRate = 0.05
	p.Algorithm = alg
	p.Gossip = core.DefaultConfig(alg)
	return p
}

// quantilesWithin asserts |e-s| <= tol·e for each latency percentile.
func quantilesWithin(t *testing.T, label string, e, s sim.Time, tol float64) {
	t.Helper()
	if e == 0 && s == 0 {
		return
	}
	if diff := math.Abs(float64(e - s)); diff > tol*float64(e) {
		t.Errorf("%s: exact %v vs streaming %v exceeds %.0f%%", label, e, s, tol*100)
	}
}

// TestStreamingMatchesExact runs the differential corpus: identical
// scenarios under both metrics modes. The simulated trajectory must be
// untouched (kernel events, publishes, traffic identical), totals must
// agree exactly, windowed rates must agree exactly (the window is
// bucket-aligned), and latency quantiles must stay within 5%.
func TestStreamingMatchesExact(t *testing.T) {
	algos := []core.Algorithm{core.NoRecovery, core.Push, core.CombinedPull}
	seeds := []int64{1, 7}
	var exactR, streamR Runner
	for _, alg := range algos {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%v/seed%d", alg, seed), func(t *testing.T) {
				p := diffParams(alg, seed)
				e, err := exactR.Run(p)
				if err != nil {
					t.Fatal(err)
				}
				p.MetricsMode = MetricsStreaming
				s, err := streamR.Run(p)
				if err != nil {
					t.Fatal(err)
				}

				// Trajectory identity: the tracker is an observer, so
				// switching it cannot change what the simulation did.
				if e.KernelEvents != s.KernelEvents || e.EventsPublished != s.EventsPublished ||
					e.GossipPerDispatcher != s.GossipPerDispatcher || e.EngineStats != s.EngineStats {
					t.Fatalf("metrics mode changed the simulated trajectory:\nexact     %+v\nstreaming %+v", e, s)
				}
				// Counter totals are exact in both modes.
				if e.ExpectedDeliveries != s.ExpectedDeliveries || e.Deliveries != s.Deliveries || e.Recoveries != s.Recoveries {
					t.Fatalf("totals diverge: exact %d/%d/%d streaming %d/%d/%d",
						e.ExpectedDeliveries, e.Deliveries, e.Recoveries,
						s.ExpectedDeliveries, s.Deliveries, s.Recoveries)
				}
				// Bucket-aligned windows aggregate identical event sets.
				if e.DeliveryRate != s.DeliveryRate || e.RecoveredShare != s.RecoveredShare || e.ReceiversPerEvent != s.ReceiversPerEvent {
					t.Fatalf("windowed metrics diverge on an aligned window: exact %v/%v/%v streaming %v/%v/%v",
						e.DeliveryRate, e.RecoveredShare, e.ReceiversPerEvent,
						s.DeliveryRate, s.RecoveredShare, s.ReceiversPerEvent)
				}
				if len(e.TimeSeries) != len(s.TimeSeries) {
					t.Fatalf("time series length: exact %d streaming %d", len(e.TimeSeries), len(s.TimeSeries))
				}
				for i := range e.TimeSeries {
					if e.TimeSeries[i] != s.TimeSeries[i] {
						t.Fatalf("time series bucket %d: exact %+v streaming %+v", i, e.TimeSeries[i], s.TimeSeries[i])
					}
				}
				quantilesWithin(t, "routed p50", e.RoutedLatencyP50, s.RoutedLatencyP50, 0.05)
				quantilesWithin(t, "routed p99", e.RoutedLatencyP99, s.RoutedLatencyP99, 0.05)
				quantilesWithin(t, "recovery p50", e.RecoveryLatencyP50, s.RecoveryLatencyP50, 0.05)
				quantilesWithin(t, "recovery p99", e.RecoveryLatencyP99, s.RecoveryLatencyP99, 0.05)
			})
		}
	}
}

// TestStreamingMatchesExactUnderWorkload repeats the differential on a
// skewed, churning workload: the streaming tracker must stay passive
// (identical trajectory) and exact-in-totals with every workload knob
// on at once.
func TestStreamingMatchesExactUnderWorkload(t *testing.T) {
	p := diffParams(core.CombinedPull, 3)
	p.Workload = Workload{
		ZipfContent:       1.0,
		ZipfSubscriptions: 0.8,
		HotPublishers:     4,
		HotShare:          0.6,
		SubChurnRate:      10,
	}
	e, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	p.MetricsMode = MetricsStreaming
	s, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if e.KernelEvents != s.KernelEvents || e.EventsPublished != s.EventsPublished || e.SubChurns != s.SubChurns {
		t.Fatalf("metrics mode changed the churning trajectory:\nexact     %+v\nstreaming %+v", e, s)
	}
	if e.ExpectedDeliveries != s.ExpectedDeliveries || e.Deliveries != s.Deliveries || e.Recoveries != s.Recoveries {
		t.Fatalf("totals diverge: exact %d/%d/%d streaming %d/%d/%d",
			e.ExpectedDeliveries, e.Deliveries, e.Recoveries,
			s.ExpectedDeliveries, s.Deliveries, s.Recoveries)
	}
	if e.DeliveryRate != s.DeliveryRate {
		t.Fatalf("aligned-window delivery rate diverges: %v vs %v", e.DeliveryRate, s.DeliveryRate)
	}
	if e.SubChurns == 0 {
		t.Fatal("churn workload performed no subscription swaps")
	}
}

// TestStreamingDeterministic pins that streaming-mode results are a
// pure function of the seed, including the reservoir quantiles.
func TestStreamingDeterministic(t *testing.T) {
	p := diffParams(core.Push, 5)
	p.MetricsMode = MetricsStreaming
	a, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.DeliveryRate != b.DeliveryRate || a.RoutedLatencyP50 != b.RoutedLatencyP50 ||
		a.RoutedLatencyP99 != b.RoutedLatencyP99 || a.RecoveryLatencyP99 != b.RecoveryLatencyP99 ||
		a.KernelEvents != b.KernelEvents {
		t.Fatalf("same seed, different streaming results:\n%+v\n%+v", a, b)
	}
}
