package metrics

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/sim"
)

// LatencyStats is the read side shared by the two latency accumulators:
// the exact log-bucket LatencyHistogram and the streaming
// LatencyReservoir. Every consumer of latency percentiles (scenario
// result extraction, experiments, logs) goes through this interface, so
// a run's MetricsMode never leaks into downstream code.
//
// Quantile answers with the histogram's logarithmic bucket resolution
// (~20% bucket width) in both implementations: the reservoir quantizes
// its rank estimate through the same bucket edges, which makes the two
// modes directly comparable — on identical sample streams that fit the
// reservoir they return identical values.
type LatencyStats interface {
	// Count returns the number of samples observed (not retained).
	Count() uint64
	// Mean returns the exact mean latency, or 0 without samples.
	Mean() sim.Time
	// Min returns the smallest sample, or 0 without samples.
	Min() sim.Time
	// Max returns the largest sample, or 0 without samples.
	Max() sim.Time
	// Quantile returns the latency below which the q-fraction of
	// samples fall (0 < q <= 1), at bucket resolution.
	Quantile(q float64) sim.Time
	// Quantiles returns several quantiles at once, in the order given.
	Quantiles(qs ...float64) []sim.Time
}

var (
	_ LatencyStats = (*LatencyHistogram)(nil)
	_ LatencyStats = (*LatencyReservoir)(nil)
)

// defaultReservoirCap retains enough samples that the sampling error of
// a p99 estimate stays well inside one histogram bucket on realistic
// corpora, while keeping the memory fixed at 64 KiB per reservoir.
const defaultReservoirCap = 8192

// LatencyReservoir accumulates virtual-time latencies with O(1) memory:
// count/sum/min/max are exact counters, and quantiles come from a
// uniform reservoir sample (Vitter's Algorithm R) of fixed capacity.
// While fewer than cap samples have been observed the reservoir holds
// all of them and quantiles are exact (at bucket resolution); past
// that, each new sample replaces a uniformly chosen slot with
// probability cap/seen.
//
// Replacement draws come from a private splitmix64 generator seeded at
// construction — never from kernel streams — so arming a streaming
// tracker cannot perturb the simulation, and the same (seed, sample
// stream) always yields the same quantiles.
type LatencyReservoir struct {
	samples []sim.Time
	sorted  bool // samples[:len] is sorted and can answer quantiles

	seen uint64
	sum  float64
	min  sim.Time
	max  sim.Time

	rng uint64 // splitmix64 state
}

// NewLatencyReservoir returns an empty reservoir with the given sample
// capacity (0 selects the default) and deterministic replacement seed.
func NewLatencyReservoir(capacity int, seed int64) *LatencyReservoir {
	if capacity <= 0 {
		capacity = defaultReservoirCap
	}
	r := &LatencyReservoir{samples: make([]sim.Time, 0, capacity)}
	r.Reset(seed)
	return r
}

// Reset empties the reservoir in place, keeping its sample slab, and
// re-seeds the replacement stream.
func (r *LatencyReservoir) Reset(seed int64) {
	r.samples = r.samples[:0]
	r.sorted = false
	r.seen = 0
	r.sum = 0
	r.min = math.MaxInt64
	r.max = 0
	r.rng = sim.SplitMix64(uint64(seed))
}

// next returns the next replacement draw in [0, n).
func (r *LatencyReservoir) next(n uint64) uint64 {
	r.rng = sim.SplitMix64(r.rng)
	// The modulo bias over a 64-bit state is immaterial at reservoir
	// scale (n < 2^40 for any feasible run).
	return r.rng % n
}

// Observe records one latency sample. Negative samples are a caller
// bug and panic, exactly like the histogram.
func (r *LatencyReservoir) Observe(d sim.Time) {
	if d < 0 {
		panic(fmt.Sprintf("metrics: negative latency %v", d))
	}
	r.seen++
	r.sum += float64(d)
	if d < r.min {
		r.min = d
	}
	if d > r.max {
		r.max = d
	}
	if len(r.samples) < cap(r.samples) {
		r.samples = append(r.samples, d)
		r.sorted = false
		return
	}
	if j := r.next(r.seen); j < uint64(cap(r.samples)) {
		r.samples[j] = d
		r.sorted = false
	}
}

// Count returns the number of samples observed (not retained).
func (r *LatencyReservoir) Count() uint64 { return r.seen }

// Mean returns the exact mean latency, or 0 without samples.
func (r *LatencyReservoir) Mean() sim.Time {
	if r.seen == 0 {
		return 0
	}
	return sim.Time(r.sum / float64(r.seen))
}

// Min returns the smallest sample, or 0 without samples.
func (r *LatencyReservoir) Min() sim.Time {
	if r.seen == 0 {
		return 0
	}
	return r.min
}

// Max returns the largest sample, or 0 without samples.
func (r *LatencyReservoir) Max() sim.Time {
	if r.seen == 0 {
		return 0
	}
	return r.max
}

// Quantile returns the latency below which the q-fraction of samples
// fall (0 < q <= 1), quantized through the histogram's bucket edges so
// exact and streaming modes report at the same resolution. Returns 0
// without samples.
func (r *LatencyReservoir) Quantile(q float64) sim.Time {
	if r.seen == 0 {
		return 0
	}
	if q <= 0 || q > 1 {
		panic(fmt.Sprintf("metrics: quantile %v out of (0, 1]", q))
	}
	if !r.sorted {
		slices.Sort(r.samples)
		r.sorted = true
	}
	idx := int(math.Ceil(q*float64(len(r.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	v := r.samples[idx]
	if b := bucketOf(v); b > 0 {
		return bucketUpper(b)
	}
	return bucketBase
}

// Quantiles returns several quantiles at once, in the order given.
func (r *LatencyReservoir) Quantiles(qs ...float64) []sim.Time {
	out := make([]sim.Time, len(qs))
	for i, q := range qs {
		out[i] = r.Quantile(q)
	}
	return out
}
