package ident

import "math/bits"

// PatternSetCap is the size of the inline tier of a PatternSet:
// patterns 0 .. PatternSetCap-1 live in two machine words stored by
// value. The paper's content model fixes Π = 70 patterns (Sec. IV-A),
// so the whole universe fits the inline tier with room to spare and
// every operation is branch-free word arithmetic. Larger universes —
// the 10k–100k-node regime explored in the x-scale experiment — spill
// into a sparse sorted-word tier; the constant marks where that
// transition happens, not a capacity limit.
const PatternSetCap = 128

// spillWord is one 64-pattern chunk of the sparse tier: the bits of
// patterns [64*idx, 64*idx+63]. Words are kept sorted by idx, contain
// at least one set bit, and always have idx >= 2 (lower words are the
// inline tier).
type spillWord struct {
	idx  uint32
	bits uint64
}

// PatternSet is a tiered bitset over pattern identifiers. The first
// 128 patterns are stored inline in two machine words; higher patterns
// spill into a sparse slice of 64-bit words sorted by word index. For
// universes within the inline tier the set is exactly the two-word
// value type it replaced: membership is one shift and mask, set
// algebra is two bitwise ops, no allocation ever happens, and
// iteration ascends in pattern order — the same order a sorted
// []PatternID slice yields, so replacing sorted slices with bitset
// iteration cannot change any deterministic trace.
//
// The set has full value semantics: mutating methods never modify
// spill storage reachable from a copy (they clone the spill slice on
// write), so a PatternSet may be copied, stored, and compared with
// Equal exactly like the array type it replaced. The zero value is the
// empty set.
type PatternSet struct {
	lo [2]uint64
	hi []spillWord
}

// PatternInSetRange reports whether p lands in the inline tier.
// Out-of-tier patterns are still representable — they spill — so this
// is a layout predicate (used by tests and sizing code), not a
// capacity check.
func PatternInSetRange(p PatternID) bool {
	return uint32(p) < PatternSetCap
}

// PatternSetFromAscending builds a set from identifiers in strictly
// ascending order in one pass — O(len(ps)) total, against the
// O(len(hi)) copy-on-write clone that per-element Add pays for each
// new spill word. Bulk construction (routing-table install, slab
// loaders) uses this; it panics on out-of-order input rather than
// silently building a corrupt sorted-word tier.
func PatternSetFromAscending(ps []PatternID) PatternSet {
	var s PatternSet
	prev := PatternID(-1)
	for _, p := range ps {
		if p <= prev {
			panic("ident: PatternSetFromAscending input not strictly ascending")
		}
		prev = p
		u := uint32(p)
		if u < PatternSetCap {
			s.lo[u>>6] |= 1 << (u & 63)
			continue
		}
		idx, bit := u>>6, uint64(1)<<(u&63)
		if n := len(s.hi); n > 0 && s.hi[n-1].idx == idx {
			s.hi[n-1].bits |= bit
		} else {
			s.hi = append(s.hi, spillWord{idx: idx, bits: bit})
		}
	}
	return s
}

// Add inserts p and reports whether it was stored. Every non-negative
// pattern identifier is representable; only invalid negative
// identifiers (NoPattern) are rejected.
func (s *PatternSet) Add(p PatternID) bool {
	if p < 0 {
		return false
	}
	u := uint32(p)
	if u < PatternSetCap {
		s.lo[u>>6] |= 1 << (u & 63)
		return true
	}
	idx, bit := u>>6, uint64(1)<<(u&63)
	i := s.findWord(idx)
	if i < len(s.hi) && s.hi[i].idx == idx {
		if s.hi[i].bits&bit != 0 {
			return true
		}
		// Copy-on-write: never mutate spill words a copy may share.
		hi := make([]spillWord, len(s.hi))
		copy(hi, s.hi)
		hi[i].bits |= bit
		s.hi = hi
		return true
	}
	hi := make([]spillWord, len(s.hi)+1)
	copy(hi, s.hi[:i])
	hi[i] = spillWord{idx: idx, bits: bit}
	copy(hi[i+1:], s.hi[i:])
	s.hi = hi
	return true
}

// Remove deletes p from the set. Negative identifiers are a no-op
// (they can never have been stored).
func (s *PatternSet) Remove(p PatternID) {
	if p < 0 {
		return
	}
	u := uint32(p)
	if u < PatternSetCap {
		s.lo[u>>6] &^= 1 << (u & 63)
		return
	}
	idx, bit := u>>6, uint64(1)<<(u&63)
	i := s.findWord(idx)
	if i >= len(s.hi) || s.hi[i].idx != idx || s.hi[i].bits&bit == 0 {
		return
	}
	if s.hi[i].bits == bit {
		// Word empties: drop it, preserving the no-zero-words invariant.
		hi := make([]spillWord, len(s.hi)-1)
		copy(hi, s.hi[:i])
		copy(hi[i:], s.hi[i+1:])
		if len(hi) == 0 {
			hi = nil
		}
		s.hi = hi
		return
	}
	hi := make([]spillWord, len(s.hi))
	copy(hi, s.hi)
	hi[i].bits &^= bit
	s.hi = hi
}

// findWord returns the position of idx in the sorted spill slice, or
// the insertion point when absent. Spill slices are short (a 4096-
// pattern universe is at most 62 words), so a linear scan beats binary
// search's branch misses.
func (s *PatternSet) findWord(idx uint32) int {
	for i, w := range s.hi {
		if w.idx >= idx {
			return i
		}
	}
	return len(s.hi)
}

// Has reports whether p is in the set.
func (s PatternSet) Has(p PatternID) bool {
	if p < 0 {
		return false
	}
	u := uint32(p)
	if u < PatternSetCap {
		return s.lo[u>>6]&(1<<(u&63)) != 0
	}
	idx, bit := u>>6, uint64(1)<<(u&63)
	for _, w := range s.hi {
		if w.idx == idx {
			return w.bits&bit != 0
		}
		if w.idx > idx {
			break
		}
	}
	return false
}

// Union returns s ∪ o.
func (s PatternSet) Union(o PatternSet) PatternSet {
	u := PatternSet{lo: [2]uint64{s.lo[0] | o.lo[0], s.lo[1] | o.lo[1]}}
	switch {
	case len(o.hi) == 0:
		u.hi = s.hi
	case len(s.hi) == 0:
		u.hi = o.hi
	default:
		hi := make([]spillWord, 0, len(s.hi)+len(o.hi))
		i, j := 0, 0
		for i < len(s.hi) && j < len(o.hi) {
			a, b := s.hi[i], o.hi[j]
			switch {
			case a.idx < b.idx:
				hi = append(hi, a)
				i++
			case a.idx > b.idx:
				hi = append(hi, b)
				j++
			default:
				hi = append(hi, spillWord{idx: a.idx, bits: a.bits | b.bits})
				i, j = i+1, j+1
			}
		}
		hi = append(hi, s.hi[i:]...)
		hi = append(hi, o.hi[j:]...)
		u.hi = hi
	}
	return u
}

// Intersect returns s ∩ o.
func (s PatternSet) Intersect(o PatternSet) PatternSet {
	r := PatternSet{lo: [2]uint64{s.lo[0] & o.lo[0], s.lo[1] & o.lo[1]}}
	if len(s.hi) == 0 || len(o.hi) == 0 {
		return r
	}
	var hi []spillWord
	i, j := 0, 0
	for i < len(s.hi) && j < len(o.hi) {
		a, b := s.hi[i], o.hi[j]
		switch {
		case a.idx < b.idx:
			i++
		case a.idx > b.idx:
			j++
		default:
			if w := a.bits & b.bits; w != 0 {
				hi = append(hi, spillWord{idx: a.idx, bits: w})
			}
			i, j = i+1, j+1
		}
	}
	r.hi = hi
	return r
}

// Intersects reports whether s and o share at least one pattern.
func (s PatternSet) Intersects(o PatternSet) bool {
	if s.lo[0]&o.lo[0] != 0 || s.lo[1]&o.lo[1] != 0 {
		return true
	}
	i, j := 0, 0
	for i < len(s.hi) && j < len(o.hi) {
		a, b := s.hi[i], o.hi[j]
		switch {
		case a.idx < b.idx:
			i++
		case a.idx > b.idx:
			j++
		default:
			if a.bits&b.bits != 0 {
				return true
			}
			i, j = i+1, j+1
		}
	}
	return false
}

// Empty reports whether the set has no elements.
func (s PatternSet) Empty() bool {
	return s.lo[0] == 0 && s.lo[1] == 0 && len(s.hi) == 0
}

// Equal reports whether s and o contain exactly the same patterns.
// (The struct is not ==-comparable because of the spill slice.)
func (s PatternSet) Equal(o PatternSet) bool {
	if s.lo != o.lo || len(s.hi) != len(o.hi) {
		return false
	}
	for i, w := range s.hi {
		if o.hi[i] != w {
			return false
		}
	}
	return true
}

// Len returns the number of patterns in the set.
func (s PatternSet) Len() int {
	n := bits.OnesCount64(s.lo[0]) + bits.OnesCount64(s.lo[1])
	for _, w := range s.hi {
		n += bits.OnesCount64(w.bits)
	}
	return n
}

// AppendTo appends the set's patterns to dst in ascending order and
// returns the extended slice. Ascending bit iteration is exactly the
// canonical sorted order of the slice-based representations it
// replaced, so digests and candidate lists built this way are
// byte-identical to their sorted-slice ancestors; the spill tier keeps
// that property because its words are sorted and all above the inline
// tier.
func (s PatternSet) AppendTo(dst []PatternID) []PatternID {
	for w, word := range s.lo {
		base := PatternID(w << 6)
		for word != 0 {
			dst = append(dst, base+PatternID(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	for _, sw := range s.hi {
		base := PatternID(sw.idx) << 6
		word := sw.bits
		for word != 0 {
			dst = append(dst, base+PatternID(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	return dst
}

// ForEach invokes fn for every pattern in the set in ascending order.
func (s PatternSet) ForEach(fn func(PatternID)) {
	for w, word := range s.lo {
		base := PatternID(w << 6)
		for word != 0 {
			fn(base + PatternID(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	for _, sw := range s.hi {
		base := PatternID(sw.idx) << 6
		word := sw.bits
		for word != 0 {
			fn(base + PatternID(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
}

// At returns the i-th pattern in ascending order. It panics when
// i is out of range; use Len to bound it. Selection inside a word uses
// a select-nth-set-bit ladder, so At is O(spill words) — the gossip
// round's "pick a uniform random candidate" stays effectively constant
// time instead of materializing the candidate list.
func (s PatternSet) At(i int) PatternID {
	if i >= 0 {
		c0 := bits.OnesCount64(s.lo[0])
		if i < c0 {
			return PatternID(selectBit(s.lo[0], uint(i)))
		}
		i -= c0
		c1 := bits.OnesCount64(s.lo[1])
		if i < c1 {
			return PatternID(64 + selectBit(s.lo[1], uint(i)))
		}
		i -= c1
		for _, sw := range s.hi {
			c := bits.OnesCount64(sw.bits)
			if i < c {
				return PatternID(sw.idx)<<6 + PatternID(selectBit(sw.bits, uint(i)))
			}
			i -= c
		}
	}
	panic("ident: PatternSet.At index out of range")
}

// selectBit returns the position of the n-th (0-based) set bit of w,
// scanning from the least significant end.
func selectBit(w uint64, n uint) int {
	for ; n > 0; n-- {
		w &= w - 1
	}
	return bits.TrailingZeros64(w)
}

// NewPatternSet builds a set from a pattern list, ignoring invalid
// negative identifiers.
func NewPatternSet(ps []PatternID) PatternSet {
	var s PatternSet
	for _, p := range ps {
		s.Add(p)
	}
	return s
}
