package faults

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestChurnPlanDeterministic(t *testing.T) {
	a := ChurnPlan(42, 50, 1.5, 10*time.Second, 400*time.Millisecond)
	b := ChurnPlan(42, 50, 1.5, 10*time.Second, 400*time.Millisecond)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same arguments produced different plans")
	}
	if len(a.Actions) == 0 {
		t.Fatal("rate 1.5/s over 10s produced no crashes")
	}
	c := ChurnPlan(43, 50, 1.5, 10*time.Second, 400*time.Millisecond)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestChurnPlanNeverCrashesDownNode(t *testing.T) {
	plan := ChurnPlan(7, 10, 5, 20*time.Second, 2*time.Second)
	downUntil := make([]sim.Time, 10)
	for i, a := range plan.Actions {
		if a.Kind != NodeCrash {
			t.Fatalf("action %d: unexpected kind %v", i, a.Kind)
		}
		if downUntil[a.Node] > a.At {
			t.Fatalf("action %d crashes node %d at %v while it is down until %v",
				i, a.Node, a.At, downUntil[a.Node])
		}
		if a.Downtime < sim.Time(time.Millisecond) {
			t.Fatalf("action %d has downtime %v below the 1ms floor", i, a.Downtime)
		}
		downUntil[a.Node] = a.At + a.Downtime
	}
}

func TestChurnPlanEdgeCases(t *testing.T) {
	if p := ChurnPlan(1, 10, 0, time.Second, time.Second); len(p.Actions) != 0 {
		t.Error("zero rate must yield an empty plan")
	}
	if p := ChurnPlan(1, 10, -1, time.Second, time.Second); len(p.Actions) != 0 {
		t.Error("negative rate must yield an empty plan")
	}
	if p := ChurnPlan(1, 0, 1, time.Second, time.Second); len(p.Actions) != 0 {
		t.Error("zero nodes must yield an empty plan")
	}
}

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		act  Action
		ok   bool
	}{
		{"crash in range", Action{Kind: NodeCrash, Node: 4}, true},
		{"crash out of range", Action{Kind: NodeCrash, Node: 5}, false},
		{"restart in range", Action{Kind: NodeRestart, Node: 0}, true},
		{"flap ok", Action{Kind: LinkFlap, A: 0, B: 1}, true},
		{"flap self", Action{Kind: LinkFlap, A: 2, B: 2}, false},
		{"partition out of range", Action{Kind: Partition, A: 0, B: 9}, false},
		{"loss model without constructor", Action{Kind: SetLossModel}, false},
		{"unknown kind", Action{Kind: Kind(99)}, false},
		{"negative time", Action{At: -1, Kind: NodeCrash, Node: 0}, false},
	}
	for _, c := range cases {
		p := &Plan{Actions: []Action{c.act}}
		err := p.Validate(5)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: validation passed, want error", c.name)
		}
	}
}

func TestKindString(t *testing.T) {
	for k := NodeCrash; k <= SetLossModel; k++ {
		if s := k.String(); strings.HasPrefix(s, "fault(") {
			t.Errorf("kind %d has no name: %q", uint8(k), s)
		}
	}
	if s := Kind(77).String(); s != "fault(77)" {
		t.Errorf("unknown kind rendered %q", s)
	}
}
