package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/ident"
	"repro/internal/sim"
	"repro/internal/wire"
)

func TestHistogramBasics(t *testing.T) {
	h := NewLatencyHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile not 0")
	}
	h.Observe(time.Millisecond)
	h.Observe(3 * time.Millisecond)
	h.Observe(2 * time.Millisecond)
	if h.Count() != 3 {
		t.Fatalf("Count = %d, want 3", h.Count())
	}
	if got := h.Mean(); got != 2*time.Millisecond {
		t.Fatalf("Mean = %v, want 2ms", got)
	}
	if h.Min() != time.Millisecond || h.Max() != 3*time.Millisecond {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// The log-bucketed quantile must be within one bucket ratio (20%)
	// of the exact quantile.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewLatencyHistogram()
		var samples []sim.Time
		n := 50 + rng.Intn(500)
		for i := 0; i < n; i++ {
			d := sim.Time(rng.Int63n(int64(10 * time.Second)))
			samples = append(samples, d)
			h.Observe(d)
		}
		for _, q := range []float64{0.5, 0.9, 0.99} {
			exact := ExactQuantile(samples, q)
			got := h.Quantile(q)
			if exact < bucketBase {
				continue // everything below the first bucket reports its edge
			}
			if float64(got) < float64(exact) || float64(got) > float64(exact)*bucketRatio*1.01 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantilesAndSummary(t *testing.T) {
	h := NewLatencyHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(sim.Time(i) * time.Millisecond)
	}
	qs := h.Quantiles(0.5, 0.99)
	if len(qs) != 2 || qs[0] >= qs[1] {
		t.Fatalf("Quantiles = %v", qs)
	}
	if s := h.Summary(); s == "no samples" {
		t.Fatal("Summary reported no samples")
	}
	if NewLatencyHistogram().Summary() != "no samples" {
		t.Fatal("empty Summary wrong")
	}
}

func TestHistogramPanics(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(time.Second)
	for _, fn := range []func(){
		func() { h.Observe(-1) },
		func() { h.Quantile(0) },
		func() { h.Quantile(1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic on invalid input")
				}
			}()
			fn()
		}()
	}
}

func TestHistogramExtremes(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(0)         // below first bucket
	h.Observe(time.Hour) // beyond last bucket
	if h.Quantile(0.5) != bucketBase {
		t.Fatalf("tiny sample quantile = %v, want first bucket edge %v", h.Quantile(0.5), bucketBase)
	}
	if h.Quantile(1.0) < 5*time.Minute {
		t.Fatalf("huge sample quantile = %v, want clamped to last bucket", h.Quantile(1.0))
	}
}

func TestDeliveryTrackerLatencyHistograms(t *testing.T) {
	var now sim.Time
	d := NewDeliveryTracker(func() sim.Time { return now })
	id := ident.EventID{Source: 0, Seq: 1}
	ev := &wire.Event{ID: id, PublishedAt: int64(100 * time.Millisecond)}

	now = 100 * time.Millisecond
	d.OnPublish(id, 3, now)
	now = 105 * time.Millisecond
	d.OnDeliver(1, ev, false) // routed after 5ms
	now = 400 * time.Millisecond
	d.OnDeliver(2, ev, true) // recovered after 300ms

	if got := d.RoutedLatency().Count(); got != 1 {
		t.Fatalf("routed samples = %d, want 1", got)
	}
	if got := d.RecoveryLatency().Count(); got != 1 {
		t.Fatalf("recovery samples = %d, want 1", got)
	}
	if d.RoutedLatency().Max() > d.RecoveryLatency().Min() {
		t.Fatal("recovery latency should exceed routed latency here")
	}
}

func TestDeliveryTrackerNilClockSkipsLatency(t *testing.T) {
	d := NewDeliveryTracker(nil)
	id := ident.EventID{Source: 0, Seq: 1}
	d.OnPublish(id, 1, 0)
	d.OnDeliver(1, &wire.Event{ID: id}, false)
	if d.RoutedLatency().Count() != 0 {
		t.Fatal("latency recorded with nil clock")
	}
}
