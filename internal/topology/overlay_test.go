package topology

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/ident"
)

// TestOverlayGeneratorOracles is the differential/fuzz test of the
// overlay generators: across kinds, sizes, degree bounds, and seeds,
// every generated overlay must satisfy the degree, simplicity,
// connectivity, and per-kind shape oracles, and must be deterministic
// under its seed.
func TestOverlayGeneratorOracles(t *testing.T) {
	sizes := []int{1, 2, 3, 4, 7, 25, 100, 313}
	degrees := []int{2, 3, 4, 8}
	for _, kind := range Kinds() {
		for _, n := range sizes {
			for _, deg := range degrees {
				for seed := int64(1); seed <= 5; seed++ {
					tr, err := NewOverlay(kind, n, deg, rand.New(rand.NewSource(seed)))
					if err != nil {
						t.Fatalf("NewOverlay(%v, n=%d, deg=%d, seed=%d): %v", kind, n, deg, seed, err)
					}
					if tr.Kind() != kind {
						t.Fatalf("kind = %v, want %v", tr.Kind(), kind)
					}
					checkOverlayOracles(t, tr, kind, n, deg, seed)

					// Determinism: a second build from the same seed is
					// link-for-link identical.
					tr2, err := NewOverlay(kind, n, deg, rand.New(rand.NewSource(seed)))
					if err != nil {
						t.Fatalf("rebuild: %v", err)
					}
					a, b := tr.Links(), tr2.Links()
					if len(a) != len(b) {
						t.Fatalf("%v n=%d deg=%d seed=%d: rebuild produced %d links, want %d", kind, n, deg, seed, len(b), len(a))
					}
					for i := range a {
						if a[i] != b[i] {
							t.Fatalf("%v n=%d deg=%d seed=%d: link %d = %v, want %v", kind, n, deg, seed, i, b[i], a[i])
						}
					}
				}
			}
		}
	}
}

func checkOverlayOracles(t *testing.T, tr *Tree, kind Kind, n, deg int, seed int64) {
	t.Helper()
	if !tr.Connected() {
		t.Fatalf("%v n=%d deg=%d seed=%d: overlay disconnected", kind, n, deg, seed)
	}
	for i := 0; i < n; i++ {
		v := ident.NodeID(i)
		if tr.Degree(v) > deg {
			t.Fatalf("%v n=%d deg=%d seed=%d: node %d degree %d exceeds bound", kind, n, deg, seed, i, tr.Degree(v))
		}
		seen := map[ident.NodeID]bool{v: true}
		for _, nb := range tr.Neighbors(v) {
			if seen[nb] {
				t.Fatalf("%v n=%d deg=%d seed=%d: node %d has self or duplicate neighbor %d", kind, n, deg, seed, i, nb)
			}
			seen[nb] = true
			if tr.NeighborSlot(nb, v) < 0 {
				t.Fatalf("%v n=%d deg=%d seed=%d: edge %d-%d asymmetric", kind, n, deg, seed, i, nb)
			}
		}
	}
	if kind == KindTree && !tr.IsTree() {
		t.Fatalf("tree overlay n=%d deg=%d seed=%d is not a tree", n, deg, seed)
	}
	if err := tr.Legal(nil); err != nil {
		t.Fatalf("%v n=%d deg=%d seed=%d: Legal = %v", kind, n, deg, seed, err)
	}
}

// TestOverlayTreeMatchesNew pins that the tree path through NewOverlay
// is bit-identical to the original builder: the golden fixed-seed
// metrics depend on it.
func TestOverlayTreeMatchesNew(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		a, err := New(100, 4, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewOverlay(KindTree, 100, 4, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		la, lb := a.Links(), b.Links()
		if len(la) != len(lb) {
			t.Fatalf("seed %d: %d links via NewOverlay, want %d", seed, len(lb), len(la))
		}
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("seed %d: link %d = %v, want %v", seed, i, lb[i], la[i])
			}
		}
	}
}

func TestOverlayCyclicKindsHaveCycles(t *testing.T) {
	// With headroom above the tree degree, both cyclic generators must
	// actually produce redundancy (links > n-1) at a realistic size.
	for _, kind := range []Kind{KindScaleFree, KindSmallWorld} {
		tr, err := NewOverlay(kind, 100, 4, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		if tr.NumLinks() <= tr.N()-1 {
			t.Fatalf("%v: %d links over %d nodes — no redundancy", kind, tr.NumLinks(), tr.N())
		}
	}
}

func TestOverlayAddLinkCyclePolicy(t *testing.T) {
	// Tree kind refuses an intra-component link; cyclic kinds accept it.
	tree := NewLine(4)
	if err := tree.AddLink(0, 3); !errors.Is(err, ErrWouldCycle) {
		t.Fatalf("tree AddLink(0,3) = %v, want ErrWouldCycle", err)
	}
	ring, err := NewUnchecked(KindSmallWorld, 4, 4, []Link{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if err := ring.AddLink(0, 3); err != nil {
		t.Fatalf("small-world AddLink(0,3) = %v, want success", err)
	}
	// Degree and duplicate rules still hold on cyclic kinds.
	if err := ring.AddLink(0, 3); !errors.Is(err, ErrLinkExists) {
		t.Fatalf("duplicate AddLink = %v, want ErrLinkExists", err)
	}
	if err := ring.AddLink(1, 1); !errors.Is(err, ErrSameEndpoint) {
		t.Fatalf("self AddLink = %v, want ErrSameEndpoint", err)
	}
}

func TestNewUncheckedAdversarial(t *testing.T) {
	// Over-degree, cyclic-under-tree-kind, and disconnected graphs are
	// all constructible — and Legal names the violation.
	over, err := NewUnchecked(KindTree, 5, 2, []Link{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if err := over.Legal(nil); err == nil {
		t.Fatal("over-degree star must be illegal")
	}

	cyc, err := NewUnchecked(KindTree, 3, 4, []Link{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := cyc.Legal(nil); err == nil {
		t.Fatal("cyclic tree-kind graph must be illegal")
	}
	// The same shape is legal as a small-world overlay.
	ring, err := NewUnchecked(KindSmallWorld, 3, 4, []Link{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := ring.Legal(nil); err != nil {
		t.Fatalf("triangle under small-world kind: Legal = %v, want nil", err)
	}

	split, err := NewUnchecked(KindScaleFree, 4, 4, []Link{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if err := split.Legal(nil); err == nil {
		t.Fatal("disconnected graph must be illegal")
	}
	// Legality is judged over live nodes only: with 2 and 3 down, the
	// live subgraph {0,1} is connected and legal.
	down := func(n ident.NodeID) bool { return n >= 2 }
	if err := split.Legal(down); err != nil {
		t.Fatalf("live-subgraph legality: %v, want nil", err)
	}

	// Constructor rejections.
	if _, err := NewUnchecked(KindTree, 3, 4, []Link{{1, 1}}); !errors.Is(err, ErrSameEndpoint) {
		t.Fatalf("self link = %v, want ErrSameEndpoint", err)
	}
	if _, err := NewUnchecked(KindTree, 3, 4, []Link{{0, 1}, {1, 0}}); !errors.Is(err, ErrLinkExists) {
		t.Fatalf("duplicate link = %v, want ErrLinkExists", err)
	}
	if _, err := NewUnchecked(KindTree, 3, 4, []Link{{0, 7}}); err == nil {
		t.Fatal("out-of-range link must be rejected")
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, kind := range Kinds() {
		got, err := ParseKind(kind.String())
		if err != nil || got != kind {
			t.Fatalf("ParseKind(%q) = %v, %v; want %v", kind.String(), got, err, kind)
		}
	}
	if k, err := ParseKind(""); err != nil || k != KindTree {
		t.Fatalf("ParseKind(\"\") = %v, %v; want KindTree", k, err)
	}
	if _, err := ParseKind("torus"); err == nil {
		t.Fatal("unknown kind must fail")
	}
}

// TestReconnectAroundAllAnchorsSkipped covers the edge where every
// anchor is dead: no base component exists, so the call is a no-op.
func TestReconnectAroundAllAnchorsSkipped(t *testing.T) {
	tr := NewLine(5)
	tr.RemoveNode(2)
	rng := rand.New(rand.NewSource(1))
	added, err := tr.ReconnectAround([]ident.NodeID{1, 3}, func(ident.NodeID) bool { return true }, rng)
	if err != nil || len(added) != 0 {
		t.Fatalf("all-skipped reconnect: added=%v err=%v, want none", added, err)
	}
}

// TestReconnectAroundPartialMerge covers the partial-result error path:
// the first merge succeeds, a later one cannot, and the caller receives
// both the links added so far and the error.
func TestReconnectAroundPartialMerge(t *testing.T) {
	// Components {0,1}, {2,3}, {4,5} with maxDegree 2. 0-1 and 2-3 are
	// paths with free endpoints; 4 and 5 are saturated by a doubled
	// pair... not possible; instead saturate them via a triangle-free
	// trick: give 4 and 5 degree-2 by linking them to each other and to
	// dead node 6.
	tr, err := NewUnchecked(KindTree, 7, 2, []Link{
		{0, 1}, {2, 3},
		{4, 5}, {4, 6}, {5, 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	skip := func(n ident.NodeID) bool { return n == 6 }
	rng := rand.New(rand.NewSource(1))
	added, err := tr.ReconnectAround([]ident.NodeID{0, 2, 4}, skip, rng)
	if err == nil {
		t.Fatal("merge into saturated component must fail")
	}
	if len(added) != 1 {
		t.Fatalf("partial result has %d links, want 1 (the 0+2 merge)", len(added))
	}
	if !tr.sameComponent(0, 2) {
		t.Error("first merge did not happen")
	}
	if tr.sameComponent(0, 4) {
		t.Error("saturated component was merged")
	}
}

// TestPickFreeUniform pins that the two-pass pickFree still selects
// uniformly and consumes exactly one rng draw per successful pick.
func TestPickFreeUniform(t *testing.T) {
	tr := NewStar(5) // center 0 at degree 4 = maxDegree; leaves free
	tr.maxDegree = 4
	comp := tr.Component(0)
	counts := map[int]int{}
	rng := rand.New(rand.NewSource(7))
	const draws = 4000
	for i := 0; i < draws; i++ {
		got := pickFree(tr, comp, nil, rng)
		if got <= 0 || got > 4 {
			t.Fatalf("pickFree = %d, want a leaf 1..4", got)
		}
		counts[got]++
	}
	for leaf := 1; leaf <= 4; leaf++ {
		if c := counts[leaf]; c < draws/8 {
			t.Fatalf("leaf %d picked %d/%d times — not uniform", leaf, c, draws)
		}
	}
	// Skip everything -> -1 without drawing.
	if got := pickFree(tr, comp, func(ident.NodeID) bool { return true }, rng); got != -1 {
		t.Fatalf("all-skipped pickFree = %d, want -1", got)
	}
}

// BenchmarkPickFree pins the zero-allocation property of the two-pass
// pickFree (satellite fix: the old version built a candidate slice per
// pick, O(component) garbage per merge under mass churn).
func BenchmarkPickFree(b *testing.B) {
	tr, err := New(1000, 4, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	comp := tr.Component(0)
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pickFree(tr, comp, nil, rng) < 0 {
			b.Fatal("no candidate")
		}
	}
}

func TestPickFreeZeroAlloc(t *testing.T) {
	tr, err := New(256, 4, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	comp := tr.Component(0)
	rng := rand.New(rand.NewSource(2))
	avg := testing.AllocsPerRun(100, func() {
		pickFree(tr, comp, nil, rng)
	})
	if avg != 0 {
		t.Fatalf("pickFree allocates %.1f objects per pick, want 0", avg)
	}
}
