package matching

import (
	"math/rand"
	"slices"
	"testing"

	"repro/internal/ident"
)

// oracleInterest is the pre-bitset Interest: a plain membership map
// and linear scans. The differential tests below hold the PatternSet
// implementation to exactly these semantics.
type oracleInterest struct {
	member map[ident.PatternID]bool
}

func newOracle(ps []ident.PatternID) *oracleInterest {
	o := &oracleInterest{member: make(map[ident.PatternID]bool, len(ps))}
	for _, p := range ps {
		o.member[p] = true
	}
	return o
}

func (o *oracleInterest) matches(c Content) bool {
	for _, p := range c {
		if o.member[p] {
			return true
		}
	}
	return false
}

func (o *oracleInterest) matchedBy(c Content) []ident.PatternID {
	var out []ident.PatternID
	for _, p := range c {
		if o.member[p] {
			out = append(out, p)
		}
	}
	return out
}

func oracleContentMatchesAny(c Content, ps []ident.PatternID) bool {
	for _, p := range ps {
		if slices.Contains(c, p) {
			return true
		}
	}
	return false
}

// checkInterestAgainstOracle compares every Interest operation against
// the map/slice oracle for one (subscriptions, content) pair.
func checkInterestAgainstOracle(t *testing.T, subs []ident.PatternID, c Content) {
	t.Helper()
	in := NewInterest(subs)
	o := newOracle(subs)

	for _, p := range append(slices.Clone(subs), c...) {
		if in.Has(p) != o.member[p] {
			t.Fatalf("subs=%v: Has(%d) = %v, oracle %v", subs, p, in.Has(p), o.member[p])
		}
	}
	if got, want := in.Matches(c), o.matches(c); got != want {
		t.Fatalf("subs=%v content=%v: Matches = %v, oracle %v", subs, c, got, want)
	}
	wantMatched := o.matchedBy(c)
	if got := in.MatchedBy(c); !slices.Equal(got, wantMatched) {
		t.Fatalf("subs=%v content=%v: MatchedBy = %v, oracle %v (content order)", subs, c, got, wantMatched)
	}
	scratch := make([]ident.PatternID, 0, 8)
	if got := in.AppendMatchedTo(scratch, c); !slices.Equal(got, wantMatched) {
		t.Fatalf("subs=%v content=%v: AppendMatchedTo = %v, oracle %v", subs, c, got, wantMatched)
	}
	{
		got := in.MatchedSet(c).AppendTo(nil)
		sorted := slices.Clone(wantMatched)
		slices.Sort(sorted)
		if len(got) == 0 {
			got = nil
		}
		if len(sorted) == 0 {
			sorted = nil
		}
		if !slices.Equal(got, sorted) {
			t.Fatalf("subs=%v content=%v: MatchedSet = %v, oracle (sorted) %v", subs, c, got, sorted)
		}
	}
	if got, want := c.MatchesAny(subs), oracleContentMatchesAny(c, subs); got != want {
		t.Fatalf("subs=%v content=%v: MatchesAny = %v, oracle %v", subs, c, got, want)
	}
	{
		cs := c.Set()
		for _, p := range c {
			if !cs.Has(p) {
				t.Fatalf("content=%v: Content.Set missing %d", c, p)
			}
		}
	}
}

// TestInterestDifferentialRandom replays random subscription/content
// pairs over random universes Π ≤ 128 — the whole bitset range — and a
// few universes beyond it, which force the out-of-range spill map.
func TestInterestDifferentialRandom(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, numPatterns := range []int{1, 2, 17, 64, 70, 128, 200, 300} {
			u := Universe{NumPatterns: numPatterns, MaxMatch: 3}
			for trial := 0; trial < 50; trial++ {
				k := rng.Intn(8)
				subs := u.RandomSubscriptions(k, rng)
				c := u.RandomContent(rng)
				checkInterestAgainstOracle(t, subs, c)
			}
		}
	}
}

// FuzzInterestMatchesOracle lets the fuzzer pick raw subscription and
// content bytes, exercising duplicate, unsorted, and out-of-range
// pattern identifiers that the structured generator never produces.
func FuzzInterestMatchesOracle(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2, 9})
	f.Add([]byte{}, []byte{0})
	f.Add([]byte{127, 128, 255}, []byte{127, 128})
	f.Fuzz(func(t *testing.T, subBytes, cBytes []byte) {
		if len(subBytes) > 64 || len(cBytes) > 16 {
			t.Skip()
		}
		subs := make([]ident.PatternID, len(subBytes))
		for i, b := range subBytes {
			// Spread across in-range, boundary, and out-of-range IDs.
			subs[i] = ident.PatternID(int32(b) * 3)
		}
		c := make(Content, len(cBytes))
		for i, b := range cBytes {
			c[i] = ident.PatternID(int32(b) * 3)
		}
		checkInterestAgainstOracle(t, subs, c)
	})
}
