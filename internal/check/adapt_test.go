package check

import (
	"math"
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/ident"
	"repro/internal/sim"
)

func adaptOpts() *Options {
	return &Options{Adaptation: true, KeepGoing: true}
}

func adaptHarness() (*harness, adapt.Config) {
	cfg := adapt.Config{}.Normalized(30 * time.Millisecond)
	h := newHarness(adaptOpts(), nil)
	h.c.env.Adapt = &cfg
	return h, cfg
}

// goodSnap is an in-bounds snapshot at the given time.
func goodSnap(at sim.Time, cfg adapt.Config) adapt.Snapshot {
	return adapt.Snapshot{
		At:   at,
		Mode: adapt.ModePush,
		Knobs: adapt.Knobs{
			PForward: cfg.PForwardMax,
			PSource:  cfg.PSourceMin,
			Fanout:   cfg.FanoutMin,
			Interval: cfg.IntervalMin,
		},
		Loss: 0.05, Churn: 0.5, Latency: 50 * time.Millisecond,
	}
}

func TestAdaptMonitorCleanTrace(t *testing.T) {
	h, cfg := adaptHarness()
	now := sim.Time(0)
	s := goodSnap(0, cfg)
	for i := 0; i < 10; i++ {
		now += 30 * time.Millisecond
		s.At = now
		h.c.OnAdaptRound(1, s)
	}
	// A mode switch after the dwell is legal.
	now += cfg.Dwell
	s.At, s.Mode = now, adapt.ModePull
	h.c.OnAdaptRound(1, s)
	wantClean(t, h.c)
}

func TestAdaptMonitorLossEstimateOutOfRange(t *testing.T) {
	h, cfg := adaptHarness()
	s := goodSnap(30*time.Millisecond, cfg)
	s.Loss = 1.5
	h.c.OnAdaptRound(1, s)
	wantViolation(t, h.c, "adaptation", "loss-estimate")

	h2, cfg2 := adaptHarness()
	s2 := goodSnap(30*time.Millisecond, cfg2)
	s2.Loss = math.NaN()
	h2.c.OnAdaptRound(1, s2)
	wantViolation(t, h2.c, "adaptation", "loss-estimate")
}

func TestAdaptMonitorChurnAndLatencyEstimates(t *testing.T) {
	h, cfg := adaptHarness()
	s := goodSnap(30*time.Millisecond, cfg)
	s.Churn = math.Inf(1)
	h.c.OnAdaptRound(1, s)
	wantViolation(t, h.c, "adaptation", "churn-estimate")

	h2, cfg2 := adaptHarness()
	s2 := goodSnap(30*time.Millisecond, cfg2)
	s2.Latency = -time.Millisecond
	h2.c.OnAdaptRound(1, s2)
	wantViolation(t, h2.c, "adaptation", "latency-estimate")
}

func TestAdaptMonitorKnobBounds(t *testing.T) {
	h, cfg := adaptHarness()
	s := goodSnap(30*time.Millisecond, cfg)
	s.Knobs.Interval = cfg.IntervalMax + 1
	h.c.OnAdaptRound(1, s)
	wantViolation(t, h.c, "adaptation", "interval-bounds")

	h2, cfg2 := adaptHarness()
	s2 := goodSnap(30*time.Millisecond, cfg2)
	s2.Knobs.PForward = cfg2.PForwardMin / 2
	h2.c.OnAdaptRound(1, s2)
	wantViolation(t, h2.c, "adaptation", "pforward-bounds")

	h3, cfg3 := adaptHarness()
	s3 := goodSnap(30*time.Millisecond, cfg3)
	s3.Knobs.PSource = cfg3.PSourceMax + 0.01
	h3.c.OnAdaptRound(1, s3)
	wantViolation(t, h3.c, "adaptation", "psource-bounds")

	h4, cfg4 := adaptHarness()
	s4 := goodSnap(30*time.Millisecond, cfg4)
	s4.Knobs.Fanout = cfg4.FanoutMax + 1
	h4.c.OnAdaptRound(1, s4)
	wantViolation(t, h4.c, "adaptation", "fanout-bounds")
}

func TestAdaptMonitorDwellViolation(t *testing.T) {
	h, cfg := adaptHarness()
	s := goodSnap(30*time.Millisecond, cfg)
	h.c.OnAdaptRound(1, s)
	// Mode flips only 30ms after the first observation: the monitor's
	// switch clock starts at 0, so this is within the dwell window.
	s.At, s.Mode = 60*time.Millisecond, adapt.ModePull
	h.c.OnAdaptRound(1, s)
	wantViolation(t, h.c, "adaptation", "dwell")
}

func TestAdaptMonitorWalkFlapViolation(t *testing.T) {
	h, cfg := adaptHarness()
	now := cfg.Dwell // first switch lands after one dwell — legal
	s := goodSnap(30*time.Millisecond, cfg)
	h.c.OnAdaptRound(1, s)
	s.At, s.Knobs.Walk = now, true
	h.c.OnAdaptRound(1, s)
	wantClean(t, h.c)
	// Walk flips back immediately — a flap the dwell must forbid.
	s.At, s.Knobs.Walk = now+30*time.Millisecond, false
	h.c.OnAdaptRound(1, s)
	wantViolation(t, h.c, "adaptation", "dwell")
}

func TestAdaptMonitorClockRegression(t *testing.T) {
	h, cfg := adaptHarness()
	s := goodSnap(100*time.Millisecond, cfg)
	h.c.OnAdaptRound(1, s)
	s.At = 50 * time.Millisecond
	h.c.OnAdaptRound(1, s)
	wantViolation(t, h.c, "adaptation", "clock")
}

func TestAdaptMonitorPerNodeIsolation(t *testing.T) {
	// Node 2's switch clock is independent of node 1's: a legal switch
	// on node 1 does not excuse a flap on node 2, and vice versa.
	h, cfg := adaptHarness()
	s := goodSnap(30*time.Millisecond, cfg)
	h.c.OnAdaptRound(1, s)
	h.c.OnAdaptRound(2, s)
	s.At = 30*time.Millisecond + cfg.Dwell
	s.Mode = adapt.ModePull
	h.c.OnAdaptRound(1, s)
	wantClean(t, h.c)
	s.At += 30 * time.Millisecond
	s.Mode = adapt.ModePush
	h.c.OnAdaptRound(2, s) // node 2's first switch, after its own dwell: legal
	wantClean(t, h.c)
}

func TestAdaptMonitorNilConfigSkipsBoundsAndDwell(t *testing.T) {
	// Without Env.Adapt the monitor still verifies estimator sanity but
	// cannot judge bounds or dwell.
	h := newHarness(adaptOpts(), nil)
	s := adapt.Snapshot{At: 30 * time.Millisecond, Knobs: adapt.Knobs{Fanout: 99}, Loss: 0.5}
	h.c.OnAdaptRound(1, s)
	s.At, s.Knobs.Walk = 31*time.Millisecond, true
	h.c.OnAdaptRound(1, s)
	wantClean(t, h.c)

	s.At, s.Loss = 32*time.Millisecond, math.NaN()
	h.c.OnAdaptRound(1, s)
	wantViolation(t, h.c, "adaptation", "loss-estimate")
}

func TestAdaptMonitorDisabled(t *testing.T) {
	h := newHarness(&Options{}, nil)
	h.c.OnAdaptRound(1, adapt.Snapshot{Loss: math.NaN()})
	wantClean(t, h.c)
}

func TestAdaptMonitorQuietAfterStop(t *testing.T) {
	h, cfg := adaptHarness()
	h.c.opts.KeepGoing = false
	s := goodSnap(30*time.Millisecond, cfg)
	s.Loss = -1
	h.c.OnAdaptRound(1, s)
	wantViolation(t, h.c, "adaptation", "loss-estimate")
	if !h.stopped {
		t.Fatal("fail-fast did not stop the run")
	}
	// Further observations are ignored once stopped.
	s.Loss = math.NaN()
	h.c.OnAdaptRound(ident.NodeID(3), s)
	if n := len(h.c.Violations()); n != 1 {
		t.Fatalf("monitor kept reporting after stop: %d violations", n)
	}
}
