// Package sim implements the discrete-event simulation kernel that
// replaces OMNeT++ in the paper's evaluation: a virtual clock, a
// binary-heap future-event set with deterministic tie-breaking, and
// seeded random-number streams.
//
// The kernel is single-threaded and fully deterministic: two runs with
// the same seed and the same schedule of callbacks produce identical
// traces. Parallelism belongs one level up, where independent
// simulations of a parameter sweep each run on their own kernel in
// their own goroutine.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in virtual time, measured from the start of the
// simulation. It reuses time.Duration so that literals such as
// 30*time.Millisecond read naturally in scenario code.
type Time = time.Duration

// Handler is a callback executed at its scheduled virtual time.
type Handler func()

// entry is one element of the future-event set. Entries are pooled on
// the kernel's free list: after an event fires (or a cancelled entry is
// drained) the entry is recycled into the next At/After call instead of
// being garbage. gen disambiguates recycled entries so that a stale
// Canceler held across the recycle boundary cannot cancel the wrong
// event (ABA).
type entry struct {
	at   Time
	seq  uint64 // insertion order; breaks ties deterministically
	fn   Handler
	gen  uint64 // bumped on recycle; must match Canceler.gen
	dead bool   // cancelled
	idx  int    // heap index, -1 when popped
}

// eventHeap orders entries by (time, insertion sequence).
type eventHeap []*entry

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*entry)
	e.idx = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Canceler cancels a scheduled event. Cancelling an event that already
// fired (or was already cancelled) is a no-op, even when the kernel has
// since recycled the underlying entry for a different event.
type Canceler struct {
	k   *Kernel
	e   *entry
	gen uint64
}

// Cancel prevents the associated handler from running.
func (c Canceler) Cancel() {
	if c.e == nil || c.e.gen != c.gen || c.e.dead {
		return
	}
	c.e.dead = true
	c.e.fn = nil // release the closure now; the entry drains lazily
	if c.e.idx >= 0 {
		c.k.dead++
		c.k.maybeSweep()
	}
}

// Kernel is a discrete-event simulator instance.
//
// A Kernel must not be shared between goroutines.
type Kernel struct {
	now       Time
	seq       uint64
	queue     eventHeap
	free      []*entry // recycled entries for At/After
	dead      int      // cancelled entries still in queue
	rng       *rand.Rand
	seed      int64
	processed uint64
	stopped   bool
}

// New returns a kernel whose random streams derive from seed.
func New(seed int64) *Kernel {
	return &Kernel{
		rng:  rand.New(rand.NewSource(seed)),
		seed: seed,
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Seed returns the seed the kernel was created with.
func (k *Kernel) Seed() int64 { return k.seed }

// Rand returns the kernel's root random stream. Components that need
// independent streams should derive them with NewStream.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// NewStream derives an independent, deterministic random stream from
// the kernel seed and the given tag. Streams created with the same
// (seed, tag) pair are identical across runs.
func (k *Kernel) NewStream(tag int64) *rand.Rand {
	// SplitMix-style scramble keeps streams decorrelated even for
	// adjacent tags.
	z := uint64(k.seed) + uint64(tag)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}

// Processed returns the number of events executed so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// Pending returns the number of events currently scheduled (including
// cancelled entries not yet drained).
func (k *Kernel) Pending() int { return len(k.queue) }

// At schedules fn to run at virtual time at. Scheduling in the past
// panics: it is always a bug in the caller.
func (k *Kernel) At(at Time, fn Handler) Canceler {
	if at < k.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, k.now))
	}
	var e *entry
	if n := len(k.free); n > 0 {
		e = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
	} else {
		e = new(entry)
	}
	e.at, e.seq, e.fn, e.dead = at, k.seq, fn, false
	k.seq++
	heap.Push(&k.queue, e)
	return Canceler{k: k, e: e, gen: e.gen}
}

// recycle returns a popped entry to the free list, invalidating any
// outstanding Cancelers for it.
func (k *Kernel) recycle(e *entry) {
	e.gen++
	e.fn = nil
	k.free = append(k.free, e)
}

// maybeSweep drains cancelled entries in bulk once they dominate the
// future-event set, so mass cancellations (e.g. tearing down many
// timers) do not pin memory until virtual time reaches them. The O(n)
// rebuild is amortized: it runs at most once per n/2 cancellations.
func (k *Kernel) maybeSweep() {
	if k.dead < 64 || k.dead*2 <= len(k.queue) {
		return
	}
	live := k.queue[:0]
	for _, e := range k.queue {
		if e.dead {
			e.idx = -1
			k.recycle(e)
			continue
		}
		live = append(live, e)
	}
	for i := len(live); i < len(k.queue); i++ {
		k.queue[i] = nil
	}
	k.queue = live
	for i, e := range k.queue {
		e.idx = i
	}
	heap.Init(&k.queue)
	k.dead = 0
}

// After schedules fn to run d after the current time.
func (k *Kernel) After(d Time, fn Handler) Canceler {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.At(k.now+d, fn)
}

// Stop makes Run return after the currently executing handler.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events in timestamp order until the future-event set is
// empty, the next event is past the horizon, or Stop is called. It
// returns the number of events executed by this call. The clock is left
// at the horizon when the run drained up to it, so that a subsequent
// Run with a later horizon continues seamlessly.
func (k *Kernel) Run(until Time) uint64 {
	var n uint64
	k.stopped = false
	for len(k.queue) > 0 && !k.stopped {
		next := k.queue[0]
		if next.at > until {
			break
		}
		heap.Pop(&k.queue)
		if next.dead {
			k.dead--
			k.recycle(next)
			continue
		}
		k.now = next.at
		fn := next.fn
		k.recycle(next)
		fn()
		n++
		k.processed++
	}
	if k.now < until && !k.stopped {
		k.now = until
	}
	return n
}

// RunAll executes every scheduled event regardless of time, leaving
// the clock at the last executed event (so more work can be scheduled
// afterwards). Intended for tests; simulations should bound Run with a
// horizon.
func (k *Kernel) RunAll() uint64 {
	var n uint64
	k.stopped = false
	for len(k.queue) > 0 && !k.stopped {
		next := k.queue[0]
		heap.Pop(&k.queue)
		if next.dead {
			k.dead--
			k.recycle(next)
			continue
		}
		k.now = next.at
		fn := next.fn
		k.recycle(next)
		fn()
		n++
		k.processed++
	}
	return n
}
