package faults

import (
	"testing"
	"time"

	"repro/internal/ident"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/pubsub"
	"repro/internal/sim"
	"repro/internal/topology"
)

// testRig assembles the minimal component stack an Injector needs:
// kernel, topology, network, and pubsub nodes (no recovery engines).
type testRig struct {
	k     *sim.Kernel
	topo  *topology.Tree
	inj   *Injector
	nodes []*pubsub.Node
}

func newTestRig(t *testing.T, topo *topology.Tree, cfg Config) *testRig {
	t.Helper()
	k := sim.New(1)
	nw := network.New(k, topo, network.DefaultConfig(), metrics.NewTraffic(topo.N()))
	nodes := make([]*pubsub.Node, topo.N())
	for i := range nodes {
		id := ident.NodeID(i)
		nodes[i] = pubsub.NewNode(id, k, nw, topo.Neighbors(id), pubsub.Config{})
	}
	cfg.Kernel = k
	cfg.Topo = topo
	cfg.Net = nw
	cfg.Nodes = nodes
	return &testRig{k: k, topo: topo, inj: NewInjector(cfg), nodes: nodes}
}

// TestHealRetryCapAbandons pins the satellite fix: a heal whose
// components can never merge (every survivor degree-saturated) stops
// rescheduling after MaxHealRetries and counts RepairAbandoned, instead
// of looping forever.
func TestHealRetryCapAbandons(t *testing.T) {
	// Line 0-1-2 with maxDegree 2; triangles {0,3,4} and {2,5,6} push 0
	// and 2 to (over-)saturation, so after node 1 crashes the two
	// surviving components have no free degree slot anywhere.
	topo, err := topology.NewUnchecked(topology.KindTree, 7, 2, []topology.Link{
		{A: 0, B: 1}, {A: 1, B: 2},
		{A: 0, B: 3}, {A: 3, B: 4}, {A: 4, B: 0},
		{A: 2, B: 5}, {A: 5, B: 6}, {A: 6, B: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	rig := newTestRig(t, topo, Config{
		RepairDelay:    10 * time.Millisecond,
		MaxHealRetries: 3,
	})
	plan := &Plan{Actions: []Action{{Kind: NodeCrash, Node: 1}}}
	if err := rig.inj.Schedule(plan); err != nil {
		t.Fatal(err)
	}
	rig.k.Run(time.Second)

	st := rig.inj.Stats()
	if st.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", st.Crashes)
	}
	if st.RepairAbandoned != 1 {
		t.Fatalf("RepairAbandoned = %d, want 1", st.RepairAbandoned)
	}
	if topo.Connected() {
		t.Fatal("unmergeable components were somehow merged")
	}
	// The kernel drained: the heal did not reschedule past the cap. A
	// forever-retrying heal at 10ms over 1s would process ~100 events.
	if ev := rig.k.Processed(); ev > 20 {
		t.Fatalf("kernel processed %d events — heal kept rescheduling", ev)
	}
}

// TestHealSucceedsUnderDefaultCap checks the cap does not fire on a
// component pair that can merge.
func TestHealSucceedsUnderDefaultCap(t *testing.T) {
	topo := topology.NewLine(5) // 0-1-2-3-4, maxDegree 2
	rig := newTestRig(t, topo, Config{RepairDelay: 10 * time.Millisecond})
	plan := &Plan{Actions: []Action{{Kind: NodeCrash, Node: 2}}}
	if err := rig.inj.Schedule(plan); err != nil {
		t.Fatal(err)
	}
	rig.k.Run(time.Second)
	st := rig.inj.Stats()
	if st.RepairAbandoned != 0 {
		t.Fatalf("RepairAbandoned = %d, want 0", st.RepairAbandoned)
	}
	if rig.topo.Path(0, 4) == nil {
		t.Fatal("survivors 0 and 4 were not reconnected")
	}
}

// TestDisableHealingLeavesRepairToProtocol pins decentralized mode: a
// crash schedules no heal, and a restart brings the node back isolated
// for the self-stabilizing protocol to re-attach.
func TestDisableHealingLeavesRepairToProtocol(t *testing.T) {
	topo := topology.NewLine(5)
	rig := newTestRig(t, topo, Config{
		RepairDelay:    10 * time.Millisecond,
		DisableHealing: true,
	})
	plan := &Plan{Actions: []Action{{Kind: NodeCrash, Node: 2, Downtime: 100 * time.Millisecond}}}
	if err := rig.inj.Schedule(plan); err != nil {
		t.Fatal(err)
	}
	rig.k.Run(time.Second)
	st := rig.inj.Stats()
	if st.Crashes != 1 || st.Restarts != 1 {
		t.Fatalf("crashes=%d restarts=%d, want 1/1", st.Crashes, st.Restarts)
	}
	if rig.topo.Connected() {
		t.Fatal("injector healed or re-attached despite DisableHealing")
	}
	if rig.topo.Degree(2) != 0 {
		t.Fatalf("restarted node has degree %d, want 0 (isolated)", rig.topo.Degree(2))
	}
	if rig.inj.IsDown(2) {
		t.Fatal("node 2 still down after restart")
	}
	if rig.inj.LastFaultAt() == 0 {
		t.Fatal("LastFaultAt not recorded")
	}
}
