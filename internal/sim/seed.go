package sim

// SplitMix64 is the finalizer of the splitmix64 generator (Steele,
// Lea, Flood: "Fast Splittable Pseudorandom Number Generators",
// OOPSLA 2014): a bijective avalanche mix of one 64-bit word. It is
// the building block for collision-free seed derivation — two inputs
// differing in a single bit produce statistically independent outputs,
// so structured identifier spaces (node IDs, link pairs, shard
// indexes) cannot alias each other the way additive `seed+i` schemes
// do. Kernel.NewStream uses the same mix for its one-tag case.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DeriveSeed folds any number of identifier parts into one seed by
// absorbing each part through SplitMix64, sponge-style. Unlike linear
// schemes (seed + i, base + a*P + b), the composition is free of
// structural collisions: streams derived from ("loss", from, to) can
// never coincide with ("work", i) for any identifier values, because
// every absorption step is a full-avalanche bijection of the running
// state. New code paths that need per-entity streams — per-link loss
// chains, per-node live schedulers, per-shard kernels — derive their
// seeds here; the pre-existing Kernel.NewStream call sites keep their
// original single-tag derivation so fixed-seed golden traces stay
// bit-identical.
func DeriveSeed(seed int64, parts ...int64) int64 {
	z := SplitMix64(uint64(seed))
	for _, p := range parts {
		z = SplitMix64(z ^ SplitMix64(uint64(p)))
	}
	return int64(z)
}
