package sim_test

import (
	"math/rand"
	"slices"
	"sort"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestKernelStressOracle drives randomized schedule/cancel/run
// interleavings (fixed seeds) against a naive model: a list of
// scheduled events with (at, scheduling order) keys. After every run
// phase the kernel must have fired exactly the outstanding
// non-cancelled events up to the horizon, in (at, seq) order — the
// sorted-slice oracle — and Pending() must stay within
// [live, live+cancelled] regardless of when the lazy dead-sweep ran.
// Cancels deliberately hit already-fired and already-cancelled events,
// whose slots the kernel has recycled: the generation guard must turn
// those into no-ops rather than killing the slot's new occupant.
func TestKernelStressOracle(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := sim.New(seed)

		type oracleEvent struct {
			at        sim.Time
			cancelled bool
			fired     bool
		}
		var (
			events []oracleEvent // index is scheduling order (= kernel seq order)
			cans   []sim.Canceler
			fired  []int
		)
		schedule := func(at sim.Time) {
			id := len(events)
			events = append(events, oracleEvent{at: at})
			cans = append(cans, k.At(at, func() { fired = append(fired, id) }))
		}
		cancel := func(id int) {
			cans[id].Cancel()
			if !events[id].fired {
				events[id].cancelled = true
			}
		}
		checkPending := func(phase int) {
			live, dead := 0, 0
			for _, e := range events {
				switch {
				case e.fired:
				case e.cancelled:
					dead++
				default:
					live++
				}
			}
			if p := k.Pending(); p < live || p > live+dead {
				t.Fatalf("seed %d phase %d: Pending = %d, want within [%d, %d]", seed, phase, p, live, live+dead)
			}
		}
		runTo := func(phase int, horizon sim.Time, drain bool) {
			fired = fired[:0]
			if drain {
				k.RunAll()
			} else {
				k.Run(horizon)
			}
			var want []int
			for id, e := range events {
				if !e.fired && !e.cancelled && (drain || e.at <= horizon) {
					want = append(want, id)
				}
			}
			sort.Slice(want, func(i, j int) bool {
				a, b := events[want[i]], events[want[j]]
				if a.at != b.at {
					return a.at < b.at
				}
				return want[i] < want[j] // scheduling order breaks ties
			})
			if !slices.Equal(fired, want) {
				t.Fatalf("seed %d phase %d: fired %v, oracle %v", seed, phase, fired, want)
			}
			for _, id := range fired {
				events[id].fired = true
			}
		}

		for phase := 0; phase < 40; phase++ {
			for i, n := 0, rng.Intn(40); i < n; i++ {
				schedule(k.Now() + sim.Time(rng.Intn(1000))*time.Microsecond)
			}
			if len(events) > 0 {
				for i, n := 0, rng.Intn(30); i < n; i++ {
					cancel(rng.Intn(len(events))) // may hit fired/cancelled ids
				}
				if phase%7 == 3 {
					// Mass cancel: push the dead count over the sweep
					// threshold so the bulk drain and Floyd rebuild run.
					for id, e := range events {
						if !e.fired && !e.cancelled && rng.Intn(2) == 0 {
							cancel(id)
						}
					}
				}
			}
			checkPending(phase)
			runTo(phase, k.Now()+sim.Time(rng.Intn(1500))*time.Microsecond, false)
			checkPending(phase)
		}

		runTo(40, 0, true)
		if k.Pending() != 0 {
			t.Fatalf("seed %d: Pending = %d after drain, want 0", seed, k.Pending())
		}
	}
}

// TestKernelResetReuse checks that a Reset kernel replays a schedule
// identically to a fresh one (slot identity must be invisible) and
// that Cancelers held across the Reset are dead.
func TestKernelResetReuse(t *testing.T) {
	run := func(k *sim.Kernel) []int {
		var fired []int
		for i := 0; i < 50; i++ {
			id := i
			at := sim.Time((i * 37 % 11)) * time.Millisecond
			c := k.At(at, func() { fired = append(fired, id) })
			if i%5 == 0 {
				c.Cancel()
			}
		}
		k.RunAll()
		return fired
	}

	fresh := sim.New(7)
	want := run(fresh)

	reused := sim.New(7)
	_ = run(reused)
	var stale []sim.Canceler
	for i := 0; i < 8; i++ {
		stale = append(stale, reused.At(time.Second, func() {}))
	}
	reused.Reset(7)
	if reused.Pending() != 0 || reused.Now() != 0 {
		t.Fatalf("Reset left Pending=%d Now=%v", reused.Pending(), reused.Now())
	}
	got := run(reused)
	if !slices.Equal(got, want) {
		t.Fatalf("reset kernel fired %v, fresh kernel fired %v", got, want)
	}
	// Stale cancelers from before the Reset must not touch the new run.
	reused.Reset(7)
	for _, c := range stale {
		c.Cancel()
	}
	got = run(reused)
	if !slices.Equal(got, want) {
		t.Fatalf("after stale cancels, reset kernel fired %v, want %v", got, want)
	}
	if fresh.Seed() != reused.Seed() {
		t.Fatalf("seeds diverged: %d vs %d", fresh.Seed(), reused.Seed())
	}
}
