//go:build !linux || !(amd64 || arm64)

package live

import "net"

// Platforms without an mmsg path (darwin, windows, other
// architectures) fall back to the portable stdlib transport; the
// dispatcher still shards and coalesces, it just pays one syscall per
// datagram instead of one per batch.

// batchTransportAvailable reports whether newBatchPacketConn can
// return a working mmsg transport on this platform.
const batchTransportAvailable = false

func newBatchPacketConn(conn *net.UDPConn, batch int) (packetConn, bool) {
	return nil, false
}
