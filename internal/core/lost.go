package core

import (
	"sort"

	"repro/internal/ident"
	"repro/internal/sim"
	"repro/internal/wire"
)

// LostBuffer is the Lost buffer of the pull algorithms (paper
// Sec. III-B): the set of detected-but-not-yet-recovered events, each
// identified by (source, pattern, per-pattern sequence number). The
// buffer is capacity-bounded (FIFO eviction of the oldest detection)
// and entries expire after a TTL, so undetectable or unrecoverable
// losses do not pin memory; the paper specifies neither bound (see
// DESIGN.md).
type LostBuffer struct {
	capacity int
	ttl      sim.Time
	entries  map[wire.LostEntry]sim.Time // detection time
	queue    []wire.LostEntry
	head     int
}

func NewLostBuffer(capacity int, ttl sim.Time) *LostBuffer {
	return &LostBuffer{
		capacity: capacity,
		ttl:      ttl,
		entries:  make(map[wire.LostEntry]sim.Time, capacity/4+1),
	}
}

// Len returns the number of outstanding entries (including any that
// have expired but were not yet swept).
func (b *LostBuffer) Len() int { return len(b.entries) }

// Add records a newly detected loss. Re-detecting an outstanding entry
// is a no-op.
func (b *LostBuffer) Add(e wire.LostEntry, now sim.Time) {
	if _, ok := b.entries[e]; ok {
		return
	}
	for len(b.entries) >= b.capacity {
		b.evictOldest()
	}
	b.entries[e] = now
	b.queue = append(b.queue, e)
}

func (b *LostBuffer) evictOldest() {
	for {
		e := b.queue[b.head]
		b.head++
		if b.head > 4096 && b.head*2 > len(b.queue) {
			b.queue = append([]wire.LostEntry(nil), b.queue[b.head:]...)
			b.head = 0
		}
		if _, ok := b.entries[e]; ok {
			delete(b.entries, e)
			return
		}
	}
}

// Remove deletes an entry (the event was recovered) and reports whether
// it was outstanding.
func (b *LostBuffer) Remove(e wire.LostEntry) bool {
	if _, ok := b.entries[e]; !ok {
		return false
	}
	delete(b.entries, e)
	return true
}

// Has reports whether the entry is outstanding and fresh.
func (b *LostBuffer) Has(e wire.LostEntry, now sim.Time) bool {
	at, ok := b.entries[e]
	if !ok {
		return false
	}
	if b.expired(at, now) {
		delete(b.entries, e)
		return false
	}
	return true
}

func (b *LostBuffer) expired(at, now sim.Time) bool {
	return b.ttl > 0 && now-at > b.ttl
}

// ForPattern returns the fresh entries whose pattern is p, in a
// deterministic order, sweeping expired ones.
func (b *LostBuffer) ForPattern(p ident.PatternID, now sim.Time) []wire.LostEntry {
	return b.collect(now, func(e wire.LostEntry) bool { return e.Pattern == p })
}

// ForSource returns the fresh entries whose source is s, sweeping
// expired ones.
func (b *LostBuffer) ForSource(s ident.NodeID, now sim.Time) []wire.LostEntry {
	return b.collect(now, func(e wire.LostEntry) bool { return e.Source == s })
}

// All returns every fresh entry.
func (b *LostBuffer) All(now sim.Time) []wire.LostEntry {
	return b.collect(now, func(wire.LostEntry) bool { return true })
}

func (b *LostBuffer) collect(now sim.Time, keep func(wire.LostEntry) bool) []wire.LostEntry {
	var out []wire.LostEntry
	var stale []wire.LostEntry
	for e, at := range b.entries {
		if b.expired(at, now) {
			stale = append(stale, e)
			continue
		}
		if keep(e) {
			out = append(out, e)
		}
	}
	for _, e := range stale {
		delete(b.entries, e)
	}
	sortLost(out)
	return out
}

// Patterns returns the distinct patterns with fresh entries, sorted.
func (b *LostBuffer) Patterns(now sim.Time) []ident.PatternID {
	seen := make(map[ident.PatternID]bool)
	for e, at := range b.entries {
		if !b.expired(at, now) {
			seen[e.Pattern] = true
		}
	}
	out := make([]ident.PatternID, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Sources returns the distinct sources with fresh entries, sorted.
func (b *LostBuffer) Sources(now sim.Time) []ident.NodeID {
	seen := make(map[ident.NodeID]bool)
	for e, at := range b.entries {
		if !b.expired(at, now) {
			seen[e.Source] = true
		}
	}
	out := make([]ident.NodeID, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sortLost orders entries (source, pattern, seq) for deterministic
// digests.
func sortLost(ls []wire.LostEntry) {
	sort.Slice(ls, func(i, j int) bool {
		a, b := ls[i], ls[j]
		if a.Source != b.Source {
			return a.Source < b.Source
		}
		if a.Pattern != b.Pattern {
			return a.Pattern < b.Pattern
		}
		return a.Seq < b.Seq
	})
}
