//go:build linux && amd64

package live

// recvmmsg/sendmmsg syscall numbers for linux/amd64. The stdlib
// syscall package stops short of exporting SYS_SENDMMSG, so both are
// pinned here from the kernel's syscall table.
const (
	sysRecvmmsg uintptr = 299
	sysSendmmsg uintptr = 307
)
