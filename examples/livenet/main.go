// Livenet: the protocols outside the simulator. Twelve dispatchers run
// as real UDP nodes on the loopback interface; 30% of data-plane
// datagrams are dropped on every overlay hop; epidemic recovery
// (combined pull) repairs the stream while you watch.
//
//	go run ./examples/livenet
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	epidemic "repro"
)

func main() {
	log.SetFlags(0)

	const (
		nodes   = 12
		events  = 300
		pattern = epidemic.PatternID(7)
	)
	var delivered, recovered atomic.Int64

	cluster, err := epidemic.NewLiveCluster(nodes, 4, 1, func(i int) epidemic.LiveConfig {
		return epidemic.LiveConfig{
			Algorithm:      epidemic.CombinedPull,
			GossipInterval: 10 * time.Millisecond,
			DropProb:       0.3,
			PForward:       1,
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	fmt.Printf("started %d UDP dispatchers on loopback, 30%% data-plane drop per hop\n", nodes)

	// Every node but the publisher subscribes to the pattern.
	for i := 1; i < nodes; i++ {
		cluster.Nodes[i].Subscribe(pattern)
	}
	time.Sleep(200 * time.Millisecond) // let subscriptions flood

	start := time.Now()
	for e := 0; e < events; e++ {
		cluster.Nodes[0].Publish(epidemic.Content{pattern})
		time.Sleep(2 * time.Millisecond)
	}

	// Give recovery a moment to drain, then report.
	time.Sleep(2 * time.Second)
	var inj uint64
	for i := 0; i < nodes; i++ {
		s := cluster.Nodes[i].Stats()
		delivered.Add(int64(s.Delivered))
		recovered.Add(int64(s.Recovered))
		inj += s.DroppedInject
	}
	expected := int64(events * (nodes - 1))
	fmt.Printf("\npublished %d events to %d subscribers in %v\n",
		events, nodes-1, time.Since(start).Round(time.Millisecond))
	fmt.Printf("expected deliveries:  %d\n", expected)
	fmt.Printf("actual deliveries:    %d (%.1f%%)\n",
		delivered.Load(), 100*float64(delivered.Load())/float64(expected))
	fmt.Printf("via gossip recovery:  %d\n", recovered.Load())
	fmt.Printf("datagrams dropped:    %d (injected loss)\n", inj)
	fmt.Println("\nSame wire format, same algorithms as the simulation — running")
	fmt.Println("on real sockets.")
}
