// Package experiments regenerates every figure of the paper's
// evaluation (Sec. IV): given a figure identifier it builds the
// parameter sweeps, runs the simulations, and returns the series the
// paper plots. cmd/experiments renders them as text tables; the
// repository's benchmark harness runs scaled-down versions.
package experiments

import (
	"fmt"
	"math"
	"slices"
	"time"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// Options tunes a figure generation run.
type Options struct {
	// Seed drives every simulation of the figure.
	Seed int64
	// Duration overrides the per-run simulated time (0 = figure
	// default).
	Duration sim.Time
	// Quick shrinks the sweeps (fewer points, smaller N, shorter runs)
	// for smoke tests and benchmarks.
	Quick bool
}

// Point is one (x, y) sample of a series.
type Point struct {
	X, Y float64
}

// Series is one curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Figure is one reproduced plot.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// generator produces the figures of one paper figure identifier.
type generator struct {
	title string
	gen   func(Options) ([]Figure, error)
}

// generators maps figure identifiers to their implementations, in
// paper order.
var generators = map[string]generator{
	"3a": {"Event delivery under lossy links (Fig. 3a)", fig3a},
	"3b": {"Event delivery under topological reconfigurations (Fig. 3b)", fig3b},
	"4a": {"Effect of buffer size on delivery (Fig. 4 top)", fig4a},
	"4b": {"Effect of gossip interval on delivery (Fig. 4 bottom)", fig4b},
	"5":  {"Interplay of buffer size and gossip interval, combined pull (Fig. 5)", fig5},
	"6":  {"Delivery as the system size increases (Fig. 6)", fig6},
	"7":  {"Receivers per event vs subscriptions per dispatcher (Fig. 7)", fig7},
	"8":  {"Delivery vs subscriptions per dispatcher under low/high load (Fig. 8)", fig8},
	"9a": {"Gossip overhead vs system size (Fig. 9a)", fig9a},
	"9b": {"Gossip overhead vs subscriptions per dispatcher (Fig. 9b)", fig9b},
	"10": {"Gossip overhead vs link error rate (Fig. 10)", fig10},

	// Extensions beyond the paper (see DESIGN.md Sec. 5 and
	// ablations.go).
	"x-pforward":     {"EXTENSION: sensitivity to the forwarding probability Pforward", xPForward},
	"x-psource":      {"EXTENSION: sensitivity of combined pull to Psource", xPSource},
	"x-bufferpolicy": {"EXTENSION: buffer replacement policy ablation (after [13])", xBufferPolicy},
	"x-adaptive":     {"EXTENSION: adaptive and hybrid gossip vs static algorithms across fault regimes", xAdaptive},
	"x-latency":      {"EXTENSION: recovery latency percentiles per algorithm", xLatency},
	"x-variance":     {"PAPER Sec. IV-A: delivery-rate spread across seeds", xVariance},
	"x-churn":        {"EXTENSION: delivery under deterministic node churn", xChurn},
	"x-burstloss":    {"EXTENSION: bursty (Gilbert–Elliott) vs independent loss", xBurstLoss},
	"x-puregossip":   {"PAPER Sec. V: hpcast-style pure gossip vs tree + recovery", xPureGossip},
	"x-overlay":      {"EXTENSION: delivery across overlay kinds and repair modes under churn", xOverlay},
	"x-scale":        {"EXTENSION: delivery, overhead, and throughput up to N=100,000", xScale},
	"x-zipf":         {"EXTENSION: delivery, audience, and overhead under Zipf workload skew", xZipf},
}

// IDs returns every figure identifier in paper order.
func IDs() []string {
	out := make([]string, 0, len(generators))
	for id := range generators {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// Title returns the title of a figure identifier.
func Title(id string) (string, error) {
	g, ok := generators[id]
	if !ok {
		return "", fmt.Errorf("experiments: unknown figure %q (have %v)", id, IDs())
	}
	return g.title, nil
}

// Generate reproduces the figure(s) for one identifier.
func Generate(id string, opt Options) ([]Figure, error) {
	g, ok := generators[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown figure %q (have %v)", id, IDs())
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	return g.gen(opt)
}

// deliveryAlgorithms is the full per-figure algorithm set of the
// delivery plots (paper legend order).
func deliveryAlgorithms(opt Options) []core.Algorithm {
	if opt.Quick {
		return []core.Algorithm{core.NoRecovery, core.Push, core.CombinedPull}
	}
	return core.Algorithms()
}

// base returns the paper-default parameters adjusted by opt.
func base(opt Options, defaultDuration sim.Time) scenario.Params {
	p := scenario.DefaultParams()
	p.Seed = opt.Seed
	p.Duration = defaultDuration
	if opt.Duration > 0 {
		p.Duration = opt.Duration
	}
	if opt.Quick {
		p.N = 40
		p.Duration = 4 * time.Second
		p.MeasureFrom = 500 * time.Millisecond
		p.MeasureTo = p.Duration - time.Second
	}
	return p
}

// sweep runs one parameter sweep per algorithm: configure(p, x) adapts
// the base parameters to the x-value; each entry of measures extracts
// one y-value per run, yielding one Series set per measure (several
// paper figures plot two metrics of the same runs). Algorithms for
// which the x-parameter is irrelevant (xIndependent) are run once and
// replicated across the axis.
type sweep struct {
	xs           []float64
	algorithms   []core.Algorithm
	xIndependent func(core.Algorithm) bool
	configure    func(p *scenario.Params, x float64)
	measures     []func(scenario.Result) float64
}

func (s sweep) run(p0 scenario.Params) ([][]Series, error) {
	var params []scenario.Params
	type slot struct {
		algo core.Algorithm
		xi   int // -1 for the x-independent single run
	}
	var slots []slot
	for _, a := range s.algorithms {
		if s.xIndependent != nil && s.xIndependent(a) {
			p := p0
			p.Algorithm = a
			s.configure(&p, s.xs[0])
			params = append(params, p)
			slots = append(slots, slot{algo: a, xi: -1})
			continue
		}
		for xi, x := range s.xs {
			p := p0
			p.Algorithm = a
			s.configure(&p, x)
			params = append(params, p)
			slots = append(slots, slot{algo: a, xi: xi})
		}
	}
	results, err := scenario.RunAll(params)
	if err != nil {
		return nil, err
	}
	out := make([][]Series, len(s.measures))
	for mi, measure := range s.measures {
		bySeries := make(map[core.Algorithm][]Point)
		for i, r := range results {
			y := measure(r)
			if slots[i].xi < 0 {
				for _, x := range s.xs {
					bySeries[slots[i].algo] = append(bySeries[slots[i].algo], Point{X: x, Y: y})
				}
				continue
			}
			bySeries[slots[i].algo] = append(bySeries[slots[i].algo], Point{X: s.xs[slots[i].xi], Y: y})
		}
		for _, a := range s.algorithms {
			pts := bySeries[a]
			slices.SortFunc(pts, func(a, b Point) int {
				switch {
				case a.X < b.X:
					return -1
				case a.X > b.X:
					return 1
				default:
					return 0
				}
			})
			out[mi] = append(out[mi], Series{Name: a.String(), Points: pts})
		}
	}
	return out, nil
}

// runOne is the common single-measure case.
func (s sweep) runOne(p0 scenario.Params) ([]Series, error) {
	all, err := s.run(p0)
	if err != nil {
		return nil, err
	}
	return all[0], nil
}

// seconds converts virtual time to float seconds for plotting.
func seconds(t sim.Time) float64 { return float64(t) / float64(time.Second) }

// round2 keeps printed values stable.
func round2(v float64) float64 { return math.Round(v*10000) / 10000 }
