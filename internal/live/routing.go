package live

import (
	"repro/internal/ident"
	"repro/internal/matching"
	"repro/internal/wire"
)

// out is one outbound message decided under the lock and sent after
// releasing it (sendTree/sendOOB take the lock themselves).
type out struct {
	to  ident.NodeID
	msg wire.Message
	oob bool
}

// flush transmits the messages collected under the lock.
func (n *Node) flush(outs []out) {
	for _, o := range outs {
		if o.oob {
			n.sendOOB(o.to, o.msg)
		} else {
			n.sendTree(o.to, o.msg)
		}
	}
}

// Subscribe registers a local subscription and propagates it through
// the tree (subscription forwarding, paper Sec. II).
func (n *Node) Subscribe(p ident.PatternID) {
	n.mu.Lock()
	var outs []out
	if !n.local[p] {
		for nb := range n.neighbors {
			if !n.advertisedToLocked(p, nb) {
				outs = append(outs, out{to: nb, msg: &wire.Subscribe{Pattern: p}})
			}
		}
		n.local[p] = true
		n.localSet.Add(p)
	}
	n.mu.Unlock()
	n.flush(outs)
}

// Unsubscribe removes a local subscription and propagates the removal.
func (n *Node) Unsubscribe(p ident.PatternID) {
	n.mu.Lock()
	var outs []out
	if n.local[p] {
		delete(n.local, p)
		n.localSet.Remove(p)
		for nb := range n.neighbors {
			if !n.advertisedToLocked(p, nb) {
				outs = append(outs, out{to: nb, msg: &wire.Unsubscribe{Pattern: p}})
			}
		}
	}
	n.mu.Unlock()
	n.flush(outs)
}

// Subscriptions returns the locally subscribed patterns.
func (n *Node) Subscriptions() []ident.PatternID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]ident.PatternID, 0, len(n.local))
	for p := range n.local {
		out = append(out, p)
	}
	return out
}

// KnownPatternCount returns the number of patterns with local or
// remote interest — tests use it to watch subscription propagation.
func (n *Node) KnownPatternCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	seen := make(map[ident.PatternID]bool, len(n.table)+len(n.local))
	for p := range n.local {
		seen[p] = true
	}
	for p, dirs := range n.table {
		if len(dirs) > 0 {
			seen[p] = true
		}
	}
	return len(seen)
}

// advertisedToLocked reports whether p has been (or would be)
// advertised toward nb. Callers hold n.mu.
func (n *Node) advertisedToLocked(p ident.PatternID, nb ident.NodeID) bool {
	if n.local[p] {
		return true
	}
	for _, d := range n.table[p] {
		if d != nb {
			return true
		}
	}
	return false
}

// addInterestLocked records neighbor interest and returns the
// subscriptions to re-propagate. Callers hold n.mu.
func (n *Node) addInterestLocked(p ident.PatternID, from ident.NodeID) []out {
	for _, d := range n.table[p] {
		if d == from {
			return nil
		}
	}
	var outs []out
	for nb := range n.neighbors {
		if nb != from && !n.advertisedToLocked(p, nb) {
			outs = append(outs, out{to: nb, msg: &wire.Subscribe{Pattern: p}})
		}
	}
	n.table[p] = append(n.table[p], from)
	return outs
}

// removeInterestLocked drops neighbor interest and returns the
// unsubscriptions to propagate. Callers hold n.mu.
func (n *Node) removeInterestLocked(p ident.PatternID, from ident.NodeID) []out {
	dirs := n.table[p]
	found := false
	for i, d := range dirs {
		if d == from {
			n.table[p] = append(dirs[:i], dirs[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		return nil
	}
	if len(n.table[p]) == 0 {
		delete(n.table, p)
	}
	var outs []out
	for nb := range n.neighbors {
		if nb != from && !n.advertisedToLocked(p, nb) {
			outs = append(outs, out{to: nb, msg: &wire.Unsubscribe{Pattern: p}})
		}
	}
	return outs
}

// Publish stamps and routes a new event, returning its identifier.
func (n *Node) Publish(content matching.Content) ident.EventID {
	n.mu.Lock()
	n.nextSeq++
	ev := &wire.Event{
		ID:          ident.EventID{Source: n.cfg.ID, Seq: n.nextSeq},
		Content:     content,
		PublishedAt: int64(n.now()),
	}
	for _, p := range content {
		if n.local[p] || len(n.table[p]) > 0 {
			n.patSeq[p]++
			ev.Tags = append(ev.Tags, ident.PatternSeq{Pattern: p, Seq: n.patSeq[p]})
		}
	}
	if n.cfg.Algorithm.NeedsRoutes() {
		ev.Route = []ident.NodeID{n.cfg.ID}
	}
	n.stats.published.Add(1)
	n.received.Add(ev.ID)
	n.indexLocked(ev)
	selfDeliver := n.localMatchLocked(content)
	if selfDeliver {
		n.stats.delivered.Add(1)
	}
	outs := n.forwardLocked(ev, ident.None)
	cb := n.cfg.OnDeliver
	n.mu.Unlock()

	if selfDeliver && cb != nil {
		cb(ev, false)
	}
	n.flush(outs)
	return ev.ID
}

// localMatchLocked reports whether the content matches a local
// subscription. The tiered bitset answers for every pattern
// identifier — the inline tier covers the paper universe, the spill
// tier anything beyond it — so the event path never probes the map.
// Callers hold n.mu.
func (n *Node) localMatchLocked(c matching.Content) bool {
	for _, p := range c {
		if n.localSet.Has(p) {
			return true
		}
	}
	return false
}

// forwardLocked routes ev to every neighbor with matching interest
// except from. Callers hold n.mu.
func (n *Node) forwardLocked(ev *wire.Event, from ident.NodeID) []out {
	sent := make(map[ident.NodeID]bool, 4)
	var outs []out
	for _, p := range ev.Content {
		for _, nb := range n.table[p] {
			if nb == from || sent[nb] {
				continue
			}
			sent[nb] = true
			fwd := ev
			if n.cfg.Algorithm.NeedsRoutes() && from != ident.None {
				fwd = ev.Clone()
				fwd.Route = append(fwd.Route, n.cfg.ID)
			}
			outs = append(outs, out{to: nb, msg: fwd})
		}
	}
	return outs
}

// handle dispatches one received message.
func (n *Node) handle(from ident.NodeID, msg wire.Message, oob bool) {
	switch m := msg.(type) {
	case *wire.Event:
		n.handleEvent(m, from)
	case *wire.Subscribe:
		n.mu.Lock()
		outs := n.addInterestLocked(m.Pattern, from)
		n.mu.Unlock()
		n.flush(outs)
	case *wire.Unsubscribe:
		n.mu.Lock()
		outs := n.removeInterestLocked(m.Pattern, from)
		n.mu.Unlock()
		n.flush(outs)
	default:
		n.handleRecovery(from, msg, oob)
	}
}

func (n *Node) handleEvent(ev *wire.Event, from ident.NodeID) {
	n.mu.Lock()
	deliver := n.localMatchLocked(ev.Content) && n.received.Add(ev.ID)
	if deliver {
		n.stats.delivered.Add(1)
		n.indexLocked(ev)
		if n.cfg.Algorithm.NeedsSeqTags() {
			n.detectLocked(ev)
		}
		if n.cfg.Algorithm.NeedsRoutes() && len(ev.Route) > 0 {
			n.routes[ev.ID.Source] = ev.Route
		}
	}
	outs := n.forwardLocked(ev, from)
	cb := n.cfg.OnDeliver
	n.mu.Unlock()

	if deliver && cb != nil {
		cb(ev, false)
	}
	n.flush(outs)
}
