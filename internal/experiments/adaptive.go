package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/adapt"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/network"
	"repro/internal/scenario"
	"repro/internal/topology"
)

// xAdaptive is the closed-loop controller evaluation: the five static
// recovery algorithms against adaptive combined pull and the hybrid
// push/pull mode, across a regime matrix spanning the fault models
// (independent loss, bursty Gilbert–Elliott loss, node churn) and the
// overlay kinds (tree, scale-free, small-world). The claim under test:
// in every regime the adaptive variants deliver within one percentage
// point of — or better than — the best static algorithm for that
// regime, without knowing the regime in advance.
func xAdaptive(opt Options) ([]Figure, error) {
	const churnRate = 2.0
	const meanDown = 300 * time.Millisecond
	// Mean burst 4 transmissions, calibrated so AvgLoss() = ε (as in
	// x-burstloss).
	const pBadToGood = 0.25
	burstFor := func(e float64) func(p *scenario.Params) {
		cfg := network.GilbertElliottConfig{
			PGoodToBad: e * pBadToGood / (1 - e),
			PBadToGood: pBadToGood,
			DropGood:   0,
			DropBad:    1,
		}
		return func(p *scenario.Params) {
			p.NewLossModel = func(stream func(tag int64) *rand.Rand) network.LossModel {
				return network.NewGilbertElliott(cfg, stream)
			}
		}
	}

	type regime struct {
		name string
		mut  func(p *scenario.Params)
	}
	regimes := []regime{
		{"calm ε=0.01 tree", func(p *scenario.Params) {
			p.Network.LossRate, p.Network.OOBLossRate = 0.01, 0.01
		}},
		{"lossy ε=0.10 tree", func(p *scenario.Params) {
			p.Network.LossRate, p.Network.OOBLossRate = 0.10, 0.10
		}},
		{"burst ε=0.10 tree", func(p *scenario.Params) {
			p.Network.LossRate, p.Network.OOBLossRate = 0.10, 0.10
			burstFor(0.10)(p)
		}},
		{"churn tree", func(p *scenario.Params) {
			p.Network.LossRate, p.Network.OOBLossRate = 0.05, 0.05
			p.FaultPlan = faults.ChurnPlan(p.Seed, p.N, churnRate, p.Duration*3/5, meanDown)
		}},
		{"churn scale-free", func(p *scenario.Params) {
			p.Network.LossRate, p.Network.OOBLossRate = 0.05, 0.05
			p.Overlay = topology.KindScaleFree
			p.FaultPlan = faults.ChurnPlan(p.Seed, p.N, churnRate, p.Duration*3/5, meanDown)
		}},
		{"churn small-world", func(p *scenario.Params) {
			p.Network.LossRate, p.Network.OOBLossRate = 0.05, 0.05
			p.Overlay = topology.KindSmallWorld
			p.FaultPlan = faults.ChurnPlan(p.Seed, p.N, churnRate, p.Duration*3/5, meanDown)
		}},
	}

	type variant struct {
		name     string
		alg      core.Algorithm
		adaptive bool
	}
	variants := []variant{
		{"push", core.Push, false},
		{"subscriber pull", core.SubscriberPull, false},
		{"publisher pull", core.PublisherPull, false},
		{"combined pull", core.CombinedPull, false},
		{"random pull", core.RandomPull, false},
		{"adaptive (combined pull)", core.CombinedPull, true},
		{"hybrid (push/pull)", core.Hybrid, true},
	}
	if opt.Quick {
		regimes = []regime{regimes[1], regimes[4]}
		variants = []variant{variants[3], variants[4], variants[5], variants[6]}
	}

	p0 := base(opt, 10*time.Second)
	var params []scenario.Params
	for _, v := range variants {
		for _, rg := range regimes {
			p := p0
			p.Algorithm = v.alg
			if v.adaptive {
				p.Adapt = &adapt.Config{}
			}
			rg.mut(&p)
			params = append(params, p)
		}
	}
	results, err := scenario.RunAll(params)
	if err != nil {
		return nil, err
	}

	delivery := Figure{
		ID:     "x-adaptive",
		Title:  "EXTENSION: adaptive and hybrid gossip vs the static algorithms across fault regimes",
		XLabel: "regime (see notes)",
		YLabel: "delivery rate",
	}
	overhead := Figure{
		ID:     "x-adaptive-overhead",
		Title:  "EXTENSION: gossip overhead of adaptive and hybrid gossip across fault regimes",
		XLabel: "regime (see notes)",
		YLabel: "gossip msgs per dispatcher",
	}
	for ri, rg := range regimes {
		delivery.Notes = append(delivery.Notes, fmt.Sprintf("regime %d: %s", ri+1, rg.name))
	}
	res := func(vi, ri int) scenario.Result { return results[vi*len(regimes)+ri] }
	for vi, v := range variants {
		ds := Series{Name: v.name}
		os := Series{Name: v.name}
		for ri := range regimes {
			r := res(vi, ri)
			ds.Points = append(ds.Points, Point{X: float64(ri + 1), Y: round2(r.DeliveryRate)})
			os.Points = append(os.Points, Point{X: float64(ri + 1), Y: round2(r.GossipPerDispatcher)})
		}
		delivery.Series = append(delivery.Series, ds)
		overhead.Series = append(overhead.Series, os)
	}

	// The headline: per regime, the best static delivery against each
	// adaptive variant (positive delta = adaptive ahead).
	for ri, rg := range regimes {
		best, bestName := 0.0, ""
		for vi, v := range variants {
			if v.adaptive {
				continue
			}
			if d := res(vi, ri).DeliveryRate; d > best {
				best, bestName = d, v.name
			}
		}
		line := fmt.Sprintf("%s: best static %.4f (%s)", rg.name, best, bestName)
		for vi, v := range variants {
			if !v.adaptive {
				continue
			}
			d := res(vi, ri).DeliveryRate
			line += fmt.Sprintf("; %s %.4f (%+.2f pp)", v.name, d, (d-best)*100)
		}
		delivery.Notes = append(delivery.Notes, line)
	}
	for vi, v := range variants {
		if !v.adaptive {
			continue
		}
		var sw, walks uint64
		for ri := range regimes {
			sw += res(vi, ri).Adapt.ModeSwitches
			walks += res(vi, ri).Adapt.WalkSwitches
		}
		overhead.Notes = append(overhead.Notes,
			fmt.Sprintf("%s: %d mode switches, %d walk-degradation switches across all regimes", v.name, sw, walks))
	}
	return []Figure{delivery, overhead}, nil
}
