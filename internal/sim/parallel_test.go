package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// parModel is a synthetic multi-node workload exercising every path of
// the window driver: per-node local timers (in-window same-affinity
// spawns), cross-node "messages" with a minimum latency (out-of-window
// schedules tagged with the receiver's affinity), a shared random
// stream and shared counters touched only through Defer, and periodic
// global events. It records a full trace of observable actions; the
// trace must be identical under Run and RunParallel.
type parModel struct {
	k     *Kernel
	procs []*Proc
	rng   *rand.Rand // shared stream: only drawn from inside Defer
	trace []string
	total int
}

const parLatency = 3 * time.Millisecond

func newParModel(seed int64, n int) *parModel {
	m := &parModel{k: New(seed)}
	m.rng = m.k.NewStream(0x7061726d)
	for i := 0; i < n; i++ {
		m.procs = append(m.procs, m.k.Proc(int32(i)))
	}
	return m
}

// send models a network hop: the shared loss draw and counter update
// are deferred; the arrival carries the receiver's affinity.
func (m *parModel) send(from, to int, hops int) {
	p := m.procs[from]
	p.Defer(func() {
		if m.rng.Float64() < 0.2 {
			m.trace = append(m.trace, fmt.Sprintf("drop %d->%d @%v", from, to, m.k.Now()))
			return
		}
		m.total++
		at := m.k.Now() + parLatency + Time(m.rng.Intn(5))*time.Millisecond
		m.k.AtAff(int32(to), at, func() { m.recv(to, hops) })
	})
}

func (m *parModel) recv(at int, hops int) {
	p := m.procs[at]
	// Local bookkeeping timer: lands inside the current window when the
	// jitter is small enough.
	jitter := Time((at*7+hops*13)%3) * time.Millisecond / 2
	p.After(jitter, func() {
		p.Defer(func() {
			m.trace = append(m.trace, fmt.Sprintf("tick %d/%d @%v", at, hops, m.k.Now()))
		})
		if hops > 0 {
			m.send(at, (at+1+hops)%len(m.procs), hops-1)
		}
	})
	p.Defer(func() {
		m.trace = append(m.trace, fmt.Sprintf("recv %d/%d @%v", at, hops, m.k.Now()))
	})
}

func (m *parModel) start() {
	n := len(m.procs)
	for i := 0; i < n; i++ {
		i := i
		m.procs[i].At(Time(i)*time.Millisecond/4, func() {
			m.send(i, (i+1)%n, 6)
		})
	}
	// Global events interleaved with the windows.
	for t := 5; t < 60; t += 10 {
		t := t
		m.k.At(Time(t)*time.Millisecond, func() {
			m.trace = append(m.trace, fmt.Sprintf("global @%v total=%d", m.k.Now(), m.total))
		})
	}
}

func runParModel(seed int64, n, shards int, until Time) ([]string, uint64, uint64) {
	m := newParModel(seed, n)
	m.start()
	var events uint64
	if shards <= 1 {
		events = m.k.Run(until)
	} else {
		events = m.k.RunParallel(until, shards, parLatency)
	}
	return m.trace, events, m.k.seq
}

// TestRunParallelMatchesSequential drives the synthetic workload under
// the sequential executor and under 2/4/7-way sharding and demands the
// identical action trace, event count, clock, and sequence counter.
func TestRunParallelMatchesSequential(t *testing.T) {
	for _, n := range []int{1, 3, 8, 33} {
		until := 80 * time.Millisecond
		refTrace, refEvents, refSeq := runParModel(42, n, 1, until)
		if len(refTrace) == 0 {
			t.Fatalf("n=%d: reference trace empty", n)
		}
		for _, shards := range []int{2, 4, 7} {
			trace, events, seq := runParModel(42, n, shards, until)
			if events != refEvents {
				t.Errorf("n=%d shards=%d: events %d != sequential %d", n, shards, events, refEvents)
			}
			if seq != refSeq {
				t.Errorf("n=%d shards=%d: seq %d != sequential %d", n, shards, seq, refSeq)
			}
			if len(trace) != len(refTrace) {
				t.Fatalf("n=%d shards=%d: trace length %d != %d", n, shards, len(trace), len(refTrace))
			}
			for i := range trace {
				if trace[i] != refTrace[i] {
					t.Fatalf("n=%d shards=%d: trace diverges at %d:\n  par: %s\n  seq: %s",
						n, shards, i, trace[i], refTrace[i])
				}
			}
		}
	}
}

// TestRunParallelHorizon checks that a sharded run respects the
// horizon exactly like Run: events past until stay scheduled and a
// follow-up sequential Run picks them up seamlessly.
func TestRunParallelHorizon(t *testing.T) {
	until := 20 * time.Millisecond
	m1 := newParModel(7, 5)
	m1.start()
	m1.k.Run(until)
	m1.k.Run(80 * time.Millisecond)

	m2 := newParModel(7, 5)
	m2.start()
	m2.k.RunParallel(until, 4, parLatency)
	if m2.k.Now() != until {
		t.Fatalf("clock after horizon run: %v, want %v", m2.k.Now(), until)
	}
	m2.k.Run(80 * time.Millisecond)

	if len(m1.trace) != len(m2.trace) {
		t.Fatalf("trace length %d != %d", len(m2.trace), len(m1.trace))
	}
	for i := range m1.trace {
		if m1.trace[i] != m2.trace[i] {
			t.Fatalf("trace diverges at %d: %s vs %s", i, m2.trace[i], m1.trace[i])
		}
	}
}

// TestRunParallelFallback ensures shards<=1 or no lookahead delegates
// to the sequential executor.
func TestRunParallelFallback(t *testing.T) {
	k := New(1)
	ran := false
	k.Proc(0).At(time.Millisecond, func() { ran = true })
	if got := k.RunParallel(time.Second, 1, parLatency); got != 1 || !ran {
		t.Fatalf("shards=1 fallback: events=%d ran=%v", got, ran)
	}
	k2 := New(1)
	ran2 := false
	k2.Proc(0).At(time.Millisecond, func() { ran2 = true })
	if got := k2.RunParallel(time.Second, 4, 0); got != 1 || !ran2 {
		t.Fatalf("lookahead=0 fallback: events=%d ran=%v", got, ran2)
	}
}

// TestCancelDuringWindowPanics pins the loud-failure contract for
// in-window cancellation.
func TestCancelDuringWindowPanics(t *testing.T) {
	k := New(3)
	p0, p1 := k.Proc(0), k.Proc(1)
	var c Canceler
	c = k.At(50*time.Millisecond, func() {})
	panicked := make(chan bool, 2)
	h := func() {
		defer func() { panicked <- recover() != nil }()
		c.Cancel()
	}
	p0.At(time.Millisecond, h)
	p1.At(time.Millisecond, h)
	k.RunParallel(10*time.Millisecond, 2, parLatency)
	if !<-panicked || !<-panicked {
		t.Fatal("Cancel inside a parallel window did not panic")
	}
}
