package ident

import (
	"math/rand"
	"slices"
	"testing"
)

// TestPatternSetBasics covers the fixed-point cases the property test
// can miss: boundaries, the zero value, spill-tier membership, and
// invalid-identifier behavior.
func TestPatternSetBasics(t *testing.T) {
	var s PatternSet
	if !s.Empty() || s.Len() != 0 {
		t.Fatalf("zero PatternSet: Empty=%v Len=%d, want true 0", s.Empty(), s.Len())
	}
	for _, p := range []PatternID{0, 1, 63, 64, 127, 128, 129, 1000} {
		if !s.Add(p) {
			t.Fatalf("Add(%d) = false, want true", p)
		}
		if !s.Has(p) {
			t.Fatalf("Has(%d) = false after Add", p)
		}
	}
	if s.Len() != 8 {
		t.Fatalf("Len = %d, want 8", s.Len())
	}
	got := s.AppendTo(nil)
	want := []PatternID{0, 1, 63, 64, 127, 128, 129, 1000}
	if !slices.Equal(got, want) {
		t.Fatalf("AppendTo = %v, want %v", got, want)
	}
	for i, p := range want {
		if s.At(i) != p {
			t.Fatalf("At(%d) = %d, want %d", i, s.At(i), p)
		}
	}
	for _, p := range []PatternID{-1, NoPattern} {
		if s.Add(p) {
			t.Fatalf("Add(%d) = true, want false (invalid)", p)
		}
		if s.Has(p) {
			t.Fatalf("Has(%d) = true, want false (invalid)", p)
		}
		s.Remove(p) // must not panic or corrupt
	}
	if s.Len() != 8 {
		t.Fatalf("Len after invalid ops = %d, want 8", s.Len())
	}
	s.Remove(63)
	s.Remove(129)
	if s.Has(63) || s.Has(129) || s.Len() != 6 {
		t.Fatalf("Remove: Has(63)=%v Has(129)=%v Len=%d, want false false 6", s.Has(63), s.Has(129), s.Len())
	}
	s.Remove(128)
	s.Remove(1000)
	if len(s.hi) != 0 {
		t.Fatalf("spill tier not drained: %v", s.hi)
	}
}

func TestPatternSetAtPanics(t *testing.T) {
	s := NewPatternSet([]PatternID{3, 70, 300})
	for _, i := range []int{-1, 3, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d) did not panic", i)
				}
			}()
			s.At(i)
		}()
	}
}

// TestPatternSetValueSemantics pins the copy-on-write contract: a copy
// taken before a spill-tier mutation must not observe it, exactly as
// the old two-word array value behaved.
func TestPatternSetValueSemantics(t *testing.T) {
	var a PatternSet
	a.Add(5)
	a.Add(200)
	a.Add(300)
	b := a
	a.Add(201)
	a.Remove(300)
	a.Add(64)
	if b.Has(201) || !b.Has(300) || b.Has(64) {
		t.Fatalf("copy observed mutation: %v", b.AppendTo(nil))
	}
	if !a.Has(201) || a.Has(300) || !a.Has(64) {
		t.Fatalf("original lost mutation: %v", a.AppendTo(nil))
	}
	if !a.Equal(a) || a.Equal(b) {
		t.Fatalf("Equal: self=%v cross=%v, want true false", a.Equal(a), a.Equal(b))
	}
}

// TestPatternSetDifferential drives random operation sequences against
// a map oracle: after every step, membership, cardinality, ascending
// iteration, At, and the set-algebra results must agree with the naive
// map/sorted-slice model the bitset replaced. The universe sweep
// crosses the Π=128 inline/spill boundary (the regime the tiered set
// was built for) and reaches into genuinely sparse territory.
func TestPatternSetDifferential(t *testing.T) {
	for _, universe := range []int{PatternSetCap, 130, 200, 513, 4096} {
		for seed := int64(1); seed <= 8; seed++ {
			rng := rand.New(rand.NewSource(seed*1000 + int64(universe)))
			var s PatternSet
			oracle := make(map[PatternID]bool)
			for step := 0; step < 500; step++ {
				p := PatternID(rng.Intn(universe))
				if rng.Intn(3) == 0 {
					s.Remove(p)
					delete(oracle, p)
				} else {
					s.Add(p)
					oracle[p] = true
				}

				if s.Len() != len(oracle) {
					t.Fatalf("Π=%d seed %d step %d: Len = %d, oracle %d", universe, seed, step, s.Len(), len(oracle))
				}
				q := PatternID(rng.Intn(universe))
				if s.Has(q) != oracle[q] {
					t.Fatalf("Π=%d seed %d step %d: Has(%d) = %v, oracle %v", universe, seed, step, q, s.Has(q), oracle[q])
				}
			}

			sorted := make([]PatternID, 0, len(oracle))
			for p := range oracle {
				sorted = append(sorted, p)
			}
			slices.Sort(sorted)
			if got := s.AppendTo(nil); !slices.Equal(got, sorted) {
				t.Fatalf("Π=%d seed %d: AppendTo = %v, sorted oracle %v", universe, seed, got, sorted)
			}
			var walked []PatternID
			s.ForEach(func(p PatternID) { walked = append(walked, p) })
			if !slices.Equal(walked, sorted) {
				t.Fatalf("Π=%d seed %d: ForEach order %v, want %v", universe, seed, walked, sorted)
			}
			for i, p := range sorted {
				if s.At(i) != p {
					t.Fatalf("Π=%d seed %d: At(%d) = %d, want %d", universe, seed, i, s.At(i), p)
				}
			}

			other := NewPatternSet(sorted[:len(sorted)/2])
			union := s.Union(other)
			inter := s.Intersect(other)
			for p := PatternID(0); p < PatternID(universe); p++ {
				if union.Has(p) != (s.Has(p) || other.Has(p)) {
					t.Fatalf("Π=%d seed %d: Union.Has(%d) mismatch", universe, seed, p)
				}
				if inter.Has(p) != (s.Has(p) && other.Has(p)) {
					t.Fatalf("Π=%d seed %d: Intersect.Has(%d) mismatch", universe, seed, p)
				}
			}
			if s.Intersects(other) != !inter.Empty() {
				t.Fatalf("Π=%d seed %d: Intersects = %v, Intersect.Empty = %v", universe, seed, s.Intersects(other), inter.Empty())
			}
			if !union.Equal(other.Union(s)) || !inter.Equal(other.Intersect(s)) {
				t.Fatalf("Π=%d seed %d: set algebra not commutative", universe, seed)
			}
		}
	}
}

func TestNewPatternSetIgnoresInvalid(t *testing.T) {
	s := NewPatternSet([]PatternID{5, 500, -3, 99})
	if got := s.AppendTo(nil); !slices.Equal(got, []PatternID{5, 99, 500}) {
		t.Fatalf("NewPatternSet kept %v, want [5 99 500]", got)
	}
}
