package topology

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/ident"
)

// Kind selects the overlay family. The zero value is KindTree, the
// paper's degree-bounded random unrooted tree, so existing code that
// never mentions kinds keeps its exact behavior.
//
// Non-tree kinds contain cycles by design: AddLink stops refusing
// intra-component links, routing distances become BFS-tree
// approximations (see Dist), and the pubsub layer must deduplicate
// forwarded events (pubsub.Config.DedupForward) or flooding never
// terminates.
type Kind uint8

const (
	// KindTree is the paper's overlay: a spanning tree with bounded
	// degree. Legality = connected and acyclic.
	KindTree Kind = iota
	// KindScaleFree is a Barabási–Albert-style preferential-attachment
	// graph with the hub degrees truncated at the system degree bound.
	// Legality = connected and degree-bounded.
	KindScaleFree
	// KindSmallWorld is a Newman–Watts-style small-world graph: an
	// intact ring plus random degree-capped shortcuts. Legality =
	// connected and degree-bounded.
	KindSmallWorld
)

// String returns the flag-level spelling of k.
func (k Kind) String() string {
	switch k {
	case KindTree:
		return "tree"
	case KindScaleFree:
		return "scale-free"
	case KindSmallWorld:
		return "small-world"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Kinds lists every overlay kind, in flag-spelling order.
func Kinds() []Kind { return []Kind{KindTree, KindScaleFree, KindSmallWorld} }

// ParseKind parses the flag-level spelling of an overlay kind.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "tree":
		return KindTree, nil
	case "scale-free", "scalefree", "ba":
		return KindScaleFree, nil
	case "small-world", "smallworld", "ws", "nw":
		return KindSmallWorld, nil
	default:
		return 0, fmt.Errorf("topology: unknown overlay kind %q (tree, scale-free, small-world)", s)
	}
}

// Kind returns the overlay family this topology was generated as (and
// is repaired toward).
func (t *Tree) Kind() Kind { return t.kind }

// NewOverlay builds a random overlay of the given kind over n nodes
// with degree at most maxDegree, drawing only from rng. KindTree
// delegates to New with an identical draw sequence, so a tree overlay
// built through NewOverlay is bit-identical to the pre-overlay builder.
func NewOverlay(kind Kind, n, maxDegree int, rng *rand.Rand) (*Tree, error) {
	switch kind {
	case KindTree:
		return New(n, maxDegree, rng)
	case KindScaleFree:
		return NewScaleFree(n, maxDegree, rng)
	case KindSmallWorld:
		return NewSmallWorld(n, maxDegree, rng)
	default:
		return nil, fmt.Errorf("topology: unknown overlay kind %d", kind)
	}
}

// scaleFreeTries bounds the preferential-attachment rejection sampling
// before falling back to a deterministic scan for a free endpoint.
const scaleFreeTries = 32

// NewScaleFree builds a Barabási–Albert-style scale-free overlay:
// nodes join one at a time and attach m edges to existing nodes chosen
// with probability proportional to their degree (sampled uniformly
// from the multiset of edge endpoints). The hub tail is truncated at
// maxDegree — saturated targets are rejected and resampled, so with
// small degree bounds (e.g. the paper's 4) the graph is a near-regular
// cyclic mesh rather than a power law; bounds of 8+ leave visible
// hubs. m is 2 when maxDegree permits it (cycles, redundancy) and 1
// otherwise. Connectivity holds by construction: every joiner attaches
// to the existing component.
func NewScaleFree(n, maxDegree int, rng *rand.Rand) (*Tree, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: need at least 1 node, got %d", n)
	}
	if maxDegree < 2 && n > 2 {
		return nil, fmt.Errorf("topology: maxDegree %d cannot connect %d nodes", maxDegree, n)
	}
	t := &Tree{
		n:         n,
		maxDegree: maxDegree,
		adj:       make([][]ident.NodeID, n),
		kind:      KindScaleFree,
	}
	m := 1
	if maxDegree >= 4 {
		m = 2
	}
	// Seed: a short path keeps the endpoint multiset non-empty and the
	// early attachment probabilities well defined.
	seedLen := 3
	if n < seedLen {
		seedLen = n
	}
	// ends holds one entry per edge endpoint; uniform draws from it are
	// degree-proportional draws over nodes.
	ends := make([]ident.NodeID, 0, 2*(m*n+seedLen))
	for i := 1; i < seedLen; i++ {
		t.addEdge(ident.NodeID(i-1), ident.NodeID(i))
		ends = append(ends, ident.NodeID(i-1), ident.NodeID(i))
	}
	for i := seedLen; i < n; i++ {
		v := ident.NodeID(i)
		want := m
		if i < want {
			want = i
		}
		for e := 0; e < want; e++ {
			if len(t.adj[v]) >= maxDegree {
				break // v itself saturated (maxDegree < m)
			}
			target := ident.NodeID(-1)
			for try := 0; try < scaleFreeTries; try++ {
				c := ends[rng.Intn(len(ends))]
				if c != v && len(t.adj[c]) < maxDegree && !t.HasLink(v, c) {
					target = c
					break
				}
			}
			if target < 0 {
				// Deterministic fallback: first unsaturated, unlinked
				// earlier node in id order.
				for j := 0; j < i; j++ {
					c := ident.NodeID(j)
					if len(t.adj[c]) < maxDegree && !t.HasLink(v, c) {
						target = c
						break
					}
				}
			}
			if target < 0 {
				if e == 0 {
					return nil, fmt.Errorf("topology: scale-free generator cannot attach node %d (maxDegree=%d saturated)", i, maxDegree)
				}
				break // first edge landed; connectivity holds
			}
			t.addEdge(v, target)
			ends = append(ends, v, target)
		}
	}
	return t, nil
}

// smallWorldBeta is the shortcut probability per node in the
// Newman–Watts construction: each node flips one coin and, on success,
// tries to add one random long-range shortcut.
const smallWorldBeta = 0.25

// NewSmallWorld builds a Newman–Watts-style small-world overlay: a
// ring 0–1–…–(n-1)–0 that is never rewired (so connectivity holds by
// construction), plus random shortcuts added with probability
// smallWorldBeta per node, subject to the degree bound on both
// endpoints. Saturated or duplicate draws are rejected for a bounded
// number of tries and then skipped — the ring alone is already legal.
func NewSmallWorld(n, maxDegree int, rng *rand.Rand) (*Tree, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: need at least 1 node, got %d", n)
	}
	if maxDegree < 2 && n > 2 {
		return nil, fmt.Errorf("topology: maxDegree %d cannot connect %d nodes", maxDegree, n)
	}
	t := &Tree{
		n:         n,
		maxDegree: maxDegree,
		adj:       make([][]ident.NodeID, n),
		kind:      KindSmallWorld,
	}
	for i := 1; i < n; i++ {
		t.addEdge(ident.NodeID(i-1), ident.NodeID(i))
	}
	if n >= 3 && maxDegree >= 2 {
		t.addEdge(ident.NodeID(n-1), 0) // close the ring
	}
	if maxDegree < 3 {
		return t, nil // no headroom for shortcuts
	}
	for i := 0; i < n; i++ {
		if rng.Float64() >= smallWorldBeta {
			continue
		}
		v := ident.NodeID(i)
		for try := 0; try < scaleFreeTries; try++ {
			c := ident.NodeID(rng.Intn(n))
			if c == v || len(t.adj[c]) >= maxDegree || len(t.adj[v]) >= maxDegree || t.HasLink(v, c) {
				continue
			}
			t.addEdge(v, c)
			break
		}
	}
	return t, nil
}

// NewUnchecked builds a topology of the given kind with exactly the
// given links, performing no legality checks beyond rejecting self
// links and duplicates (which would corrupt NeighborSlot bookkeeping).
// Over-degree nodes, disconnected components, and cycles under
// KindTree are all permitted: this is the constructor for the
// adversarial "arbitrary reachable configuration" starting states that
// the self-stabilizing repair protocol must converge from.
func NewUnchecked(kind Kind, n, maxDegree int, links []Link) (*Tree, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: need at least 1 node, got %d", n)
	}
	t := &Tree{
		n:         n,
		maxDegree: maxDegree,
		adj:       make([][]ident.NodeID, n),
		kind:      kind,
	}
	for _, l := range links {
		if l.A == l.B {
			return nil, fmt.Errorf("%w: %v", ErrSameEndpoint, l.A)
		}
		if l.A < 0 || int(l.A) >= n || l.B < 0 || int(l.B) >= n {
			return nil, fmt.Errorf("topology: link %v-%v out of range [0,%d)", l.A, l.B, n)
		}
		if t.HasLink(l.A, l.B) {
			return nil, fmt.Errorf("%w: %v-%v", ErrLinkExists, l.A, l.B)
		}
		t.addEdge(l.A, l.B)
	}
	return t, nil
}

// Legal reports whether the overlay currently satisfies its kind's
// shape invariant over the live nodes (those with skip false; a nil
// skip means all nodes are live): every live node's degree is within
// bound, the live subgraph is connected, and — for KindTree — acyclic.
// It returns nil when legal and a description of the first violation
// otherwise. This is the oracle the repair protocol converges toward
// and the convergence monitor asserts.
func (t *Tree) Legal(skip func(ident.NodeID) bool) error {
	live := 0
	first := ident.NodeID(-1)
	for i := 0; i < t.n; i++ {
		v := ident.NodeID(i)
		if skip != nil && skip(v) {
			continue
		}
		live++
		if first < 0 {
			first = v
		}
		if len(t.adj[v]) > t.maxDegree {
			return fmt.Errorf("topology: node %v degree %d exceeds bound %d", v, len(t.adj[v]), t.maxDegree)
		}
		for _, nb := range t.adj[v] {
			if skip != nil && skip(nb) {
				return fmt.Errorf("topology: live node %v linked to down node %v", v, nb)
			}
		}
	}
	if live <= 1 {
		return nil
	}
	// BFS over the live subgraph from the first live node, counting
	// reached nodes and live-live edges.
	seen := make([]bool, t.n)
	seen[first] = true
	queue := make([]ident.NodeID, 0, live)
	queue = append(queue, first)
	reached, edges := 1, 0
	for i := 0; i < len(queue); i++ {
		x := queue[i]
		for _, y := range t.adj[x] {
			if skip != nil && skip(y) {
				continue
			}
			edges++ // counted once per direction; halved below
			if !seen[y] {
				seen[y] = true
				reached++
				queue = append(queue, y)
			}
		}
	}
	if reached != live {
		return fmt.Errorf("topology: live subgraph disconnected (%d of %d nodes reachable)", reached, live)
	}
	if t.kind == KindTree && edges/2 != live-1 {
		return fmt.Errorf("topology: tree overlay has %d live edges over %d live nodes (cycle)", edges/2, live)
	}
	return nil
}
