package ident

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestStringers(t *testing.T) {
	tests := []struct {
		got, want string
	}{
		{NodeID(3).String(), "node(3)"},
		{None.String(), "node(none)"},
		{PatternID(7).String(), "pattern(7)"},
		{NoPattern.String(), "pattern(none)"},
		{EventID{Source: 2, Seq: 9}.String(), "event(2:9)"},
		{PatternSeq{Pattern: 4, Seq: 1}.String(), "pattern(4)#1"},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("String() = %q, want %q", tt.got, tt.want)
		}
	}
}

func TestEventIDLessIsTotalOrder(t *testing.T) {
	f := func(s1, s2 int32, q1, q2 uint32) bool {
		a := EventID{Source: NodeID(s1), Seq: q1}
		b := EventID{Source: NodeID(s2), Seq: q2}
		if a == b {
			return !a.Less(b) && !b.Less(a)
		}
		return a.Less(b) != b.Less(a) // exactly one direction holds
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEventIDSet(t *testing.T) {
	s := NewEventIDSet(4)
	a := EventID{Source: 1, Seq: 1}
	b := EventID{Source: 0, Seq: 2}
	if !s.Add(a) {
		t.Fatal("first Add returned false")
	}
	if s.Add(a) {
		t.Fatal("duplicate Add returned true")
	}
	s.Add(b)
	if s.Len() != 2 || !s.Has(a) || !s.Has(b) {
		t.Fatal("set contents wrong")
	}
	sorted := s.Sorted()
	if !sort.SliceIsSorted(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) }) {
		t.Fatalf("Sorted() not in order: %v", sorted)
	}
	if sorted[0] != b {
		t.Fatalf("Sorted()[0] = %v, want %v (source-major order)", sorted[0], b)
	}
	if !s.Remove(a) || s.Remove(a) {
		t.Fatal("Remove semantics wrong")
	}
	if s.Len() != 1 || s.Has(a) {
		t.Fatal("Remove did not delete the element")
	}
}
