// Package cache implements the per-dispatcher event buffer: a
// β-bounded store of events kept to satisfy retransmission requests
// (paper Sec. IV-A, "Buffer size"). The paper uses a simple FIFO
// strategy; RandomPolicy and LRUPolicy exist for the buffering ablation
// motivated by the paper's discussion of [13] (Ozkasap et al.,
// "Efficient Buffering in Reliable Multicast Protocols").
package cache

import (
	"fmt"
	"math/rand"

	"repro/internal/ident"
	"repro/internal/wire"
)

// Policy selects which cached event to evict when the buffer is full.
type Policy int

// Replacement policies. FIFOPolicy is the paper's choice.
const (
	FIFOPolicy Policy = iota + 1
	RandomPolicy
	LRUPolicy
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case FIFOPolicy:
		return "fifo"
	case RandomPolicy:
		return "random"
	case LRUPolicy:
		return "lru"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// slot is one buffered event plus its latest access tick. Slots are
// stored by value in the cache map, so inserting an event allocates
// nothing beyond the map's own growth.
type slot struct {
	ev   *wire.Event
	tick uint64
}

// orderEntry is one position in the eviction queue. An entry is live
// only when its tick still matches the slot's tick; refreshing an event
// (LRU) appends a fresh entry and leaves the old one stale.
type orderEntry struct {
	id   ident.EventID
	tick uint64
}

// Cache is a bounded event buffer. Use New; the zero value is unusable.
//
// Cache is not safe for concurrent use: each simulated dispatcher owns
// one cache and the kernel is single-threaded.
type Cache struct {
	capacity int
	policy   Policy
	rng      *rand.Rand
	slots    map[ident.EventID]slot
	tick     uint64
	evicted  uint64
	inserted uint64
	onEvict  func(*wire.Event)

	// FIFO/LRU eviction queue, lazily compacted.
	order []orderEntry
	head  int

	// RandomPolicy index: live keys with positions for O(1) swap-remove,
	// keeping eviction deterministic under a seeded rng (map iteration
	// order would not be).
	keys []ident.EventID
	pos  map[ident.EventID]int
}

// New returns a cache holding at most capacity events under the given
// policy. rng is required by RandomPolicy and may be nil otherwise.
func New(capacity int, policy Policy, rng *rand.Rand) *Cache {
	if capacity < 1 {
		panic(fmt.Sprintf("cache: capacity %d < 1", capacity))
	}
	c := &Cache{
		capacity: capacity,
		policy:   policy,
		rng:      rng,
		slots:    make(map[ident.EventID]slot, capacity+1),
	}
	switch policy {
	case RandomPolicy:
		if rng == nil {
			panic("cache: RandomPolicy requires an rng")
		}
		c.keys = make([]ident.EventID, 0, capacity)
		c.pos = make(map[ident.EventID]int, capacity+1)
	case FIFOPolicy, LRUPolicy:
	default:
		panic(fmt.Sprintf("cache: unknown policy %d", int(policy)))
	}
	return c
}

// Reset empties the cache and re-targets it at a new capacity, policy,
// and rng, reusing the maps and slices the previous configuration grew.
// Counters restart from zero and any OnEvict callback is dropped. The
// validation rules match New. Sweep workers use this to recycle one
// cache across many engine lifetimes instead of reallocating β-sized
// tables per run.
func (c *Cache) Reset(capacity int, policy Policy, rng *rand.Rand) {
	if capacity < 1 {
		panic(fmt.Sprintf("cache: capacity %d < 1", capacity))
	}
	switch policy {
	case RandomPolicy:
		if rng == nil {
			panic("cache: RandomPolicy requires an rng")
		}
		if c.pos == nil {
			c.keys = make([]ident.EventID, 0, capacity)
			c.pos = make(map[ident.EventID]int, capacity+1)
		}
	case FIFOPolicy, LRUPolicy:
	default:
		panic(fmt.Sprintf("cache: unknown policy %d", int(policy)))
	}
	c.capacity, c.policy, c.rng = capacity, policy, rng
	clear(c.slots)
	c.order = c.order[:0]
	c.head = 0
	c.keys = c.keys[:0]
	if c.pos != nil {
		clear(c.pos)
	}
	c.tick, c.evicted, c.inserted = 0, 0, 0
	c.onEvict = nil
}

// SetOnEvict installs a callback invoked for every evicted event.
// The recovery engine uses it to keep its (source, pattern, seq) index
// in sync with the buffer.
func (c *Cache) SetOnEvict(fn func(*wire.Event)) { c.onEvict = fn }

// Capacity returns β.
func (c *Cache) Capacity() int { return c.capacity }

// Len returns the number of buffered events.
func (c *Cache) Len() int { return len(c.slots) }

// Evicted returns how many events have been evicted so far.
func (c *Cache) Evicted() uint64 { return c.evicted }

// Inserted returns how many distinct insertions happened so far.
func (c *Cache) Inserted() uint64 { return c.inserted }

// Has reports whether the event is buffered.
func (c *Cache) Has(id ident.EventID) bool {
	_, ok := c.slots[id]
	return ok
}

// Get returns the buffered event, or nil. Under LRU it refreshes the
// event's access time: a retransmission request for an event signals
// that it is still wanted.
func (c *Cache) Get(id ident.EventID) *wire.Event {
	s, ok := c.slots[id]
	if !ok {
		return nil
	}
	if c.policy == LRUPolicy {
		c.touch(id)
	}
	return s.ev
}

// Put buffers ev, evicting one event when full. Re-inserting an already
// buffered event refreshes its position under LRU and is otherwise a
// no-op.
func (c *Cache) Put(ev *wire.Event) {
	if _, ok := c.slots[ev.ID]; ok {
		if c.policy == LRUPolicy {
			c.touch(ev.ID)
		}
		return
	}
	if len(c.slots) >= c.capacity {
		c.evictOne()
	}
	c.tick++
	c.slots[ev.ID] = slot{ev: ev, tick: c.tick}
	c.inserted++
	switch c.policy {
	case RandomPolicy:
		c.pos[ev.ID] = len(c.keys)
		c.keys = append(c.keys, ev.ID)
	default:
		c.order = append(c.order, orderEntry{id: ev.ID, tick: c.tick})
		c.maybeCompact()
	}
}

func (c *Cache) touch(id ident.EventID) {
	c.tick++
	s := c.slots[id]
	s.tick = c.tick
	c.slots[id] = s
	c.order = append(c.order, orderEntry{id: id, tick: c.tick})
	// A cache that never fills (large β, light load) never runs
	// evictOne, so the stale entries every touch leaves behind must be
	// reclaimed here too, or order grows without bound for the whole
	// run.
	c.maybeCompact()
}

func (c *Cache) evictOne() {
	var victim ident.EventID
	if c.policy == RandomPolicy {
		i := c.rng.Intn(len(c.keys))
		victim = c.keys[i]
		last := len(c.keys) - 1
		c.keys[i] = c.keys[last]
		c.pos[c.keys[i]] = i
		c.keys = c.keys[:last]
		delete(c.pos, victim)
	} else {
		// Pop queue entries until one is live: present in slots and,
		// under LRU, not superseded by a fresher access.
		for {
			e := c.order[c.head]
			c.head++
			if s, ok := c.slots[e.id]; ok && s.tick == e.tick {
				victim = e.id
				break
			}
		}
		c.maybeCompact()
	}
	s := c.slots[victim]
	delete(c.slots, victim)
	c.evicted++
	if c.onEvict != nil {
		c.onEvict(s.ev)
	}
}

// maybeCompact rewrites the order queue once stale entries — the
// consumed prefix plus interior entries superseded by fresher LRU
// touches — outnumber the live population. Every live slot has exactly
// one matching entry, so the queue is compacted to at most Len()
// entries whenever it exceeds twice that (plus a floor that keeps tiny
// caches from compacting constantly). This bounds memory even when the
// cache never fills and evictOne never runs (large β, light load).
func (c *Cache) maybeCompact() {
	if len(c.order) <= 2*len(c.slots)+64 {
		return
	}
	live := c.order[:0]
	for _, e := range c.order[c.head:] {
		if s, ok := c.slots[e.id]; ok && s.tick == e.tick {
			live = append(live, e)
		}
	}
	c.order = live
	c.head = 0
}
