// Package faults implements deterministic, seed-replayable fault
// injection for the simulated system: scheduled dispatcher crashes and
// restarts, link flaps, path partitions, and loss-model switches,
// driven off the simulation kernel. A fault plan is pure data; the
// injector executes it inside the single-threaded event loop, drawing
// any randomness it needs (attach points, healing links) from a
// dedicated kernel stream — so the same seed and the same plan always
// produce the same fault sequence, bit for bit, and every failure
// scenario is replayable.
package faults

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/ident"
	"repro/internal/network"
	"repro/internal/sim"
)

// Kind classifies one fault action.
type Kind uint8

// Fault kinds.
const (
	// NodeCrash takes a dispatcher down: its links are removed, its
	// learned routing state is lost, its gossip engine stops, and the
	// network blackholes its traffic (including messages in flight).
	NodeCrash Kind = iota + 1
	// NodeRestart brings a crashed dispatcher back: it rejoins the
	// overlay at a random degree-respecting attach point and resyncs
	// subscription state over the new link.
	NodeRestart
	// LinkFlap removes the named link for Downtime, then restores it.
	LinkFlap
	// Partition cuts the middle link of the A–B path, separating the
	// two sides for Downtime.
	Partition
	// SetLossModel installs a new channel loss model (e.g. switch from
	// Bernoulli to Gilbert–Elliott bursts mid-run).
	SetLossModel
)

var kindNames = map[Kind]string{
	NodeCrash:    "node-crash",
	NodeRestart:  "node-restart",
	LinkFlap:     "link-flap",
	Partition:    "partition",
	SetLossModel: "set-loss-model",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("fault(%d)", uint8(k))
}

// Action is one scheduled fault.
type Action struct {
	// At is the virtual time the action fires.
	At sim.Time
	// Kind selects the fault.
	Kind Kind
	// Node is the crash/restart target.
	Node ident.NodeID
	// A, B name the flapped link (LinkFlap) or the two endpoints to
	// separate (Partition).
	A, B ident.NodeID
	// Downtime is how long the fault lasts. A NodeCrash with positive
	// Downtime schedules its own restart; with zero Downtime the node
	// stays down until a matching NodeRestart action (or forever).
	// LinkFlap/Partition restore the cut link after Downtime (zero
	// leaves it to the scenario's ordinary repair machinery).
	Downtime sim.Time
	// NewModel, for SetLossModel, builds the model to install from the
	// run's deterministic stream factory. A constructor rather than an
	// instance: loss chains are stateful, and a plan must be reusable
	// across runs without leaking state between them.
	NewModel func(stream func(tag int64) *rand.Rand) network.LossModel
}

// Plan is a schedule of fault actions. The zero value is an empty plan.
// Plans are read-only during a run and may be shared across runs.
type Plan struct {
	Actions []Action
}

// Validate checks the plan against a system of n dispatchers.
func (p *Plan) Validate(n int) error {
	for i, a := range p.Actions {
		if a.At < 0 {
			return fmt.Errorf("faults: action %d (%v) at negative time %v", i, a.Kind, a.At)
		}
		switch a.Kind {
		case NodeCrash, NodeRestart:
			if int(a.Node) < 0 || int(a.Node) >= n {
				return fmt.Errorf("faults: action %d (%v) targets node %d outside [0,%d)", i, a.Kind, a.Node, n)
			}
		case LinkFlap, Partition:
			if int(a.A) < 0 || int(a.A) >= n || int(a.B) < 0 || int(a.B) >= n || a.A == a.B {
				return fmt.Errorf("faults: action %d (%v) has invalid endpoints %d-%d", i, a.Kind, a.A, a.B)
			}
		case SetLossModel:
			if a.NewModel == nil {
				return fmt.Errorf("faults: action %d (set-loss-model) has no model constructor", i)
			}
		default:
			return fmt.Errorf("faults: action %d has unknown kind %d", i, uint8(a.Kind))
		}
	}
	return nil
}

// ChurnPlan builds a deterministic node-churn schedule: crashes arrive
// as a Poisson process with the given rate (crashes/second) over
// [0, duration), each taking down a uniformly chosen currently-up
// dispatcher for an exponentially distributed downtime with the given
// mean (floored at 1 ms). The generator runs on its own seeded RNG —
// it never touches kernel streams — so the same (seed, n, rate,
// duration, meanDowntime) always yields the same plan.
func ChurnPlan(seed int64, n int, rate float64, duration, meanDowntime sim.Time) *Plan {
	plan := &Plan{}
	if rate <= 0 || n < 1 || duration <= 0 {
		return plan
	}
	rng := rand.New(rand.NewSource(seed*-0x61c8864680b583eb + 0x636875726e)) // golden-ratio scramble + "churn"
	meanGap := float64(time.Second) / rate
	downUntil := make([]sim.Time, n)
	t := sim.Time(0)
	for {
		t += sim.Time(rng.ExpFloat64() * meanGap)
		if t >= duration {
			return plan
		}
		v := ident.NodeID(rng.Intn(n))
		if downUntil[v] > t {
			continue // target already down: this crash draw is a no-op
		}
		d := sim.Time(rng.ExpFloat64() * float64(meanDowntime))
		if d < sim.Time(time.Millisecond) {
			d = sim.Time(time.Millisecond)
		}
		plan.Actions = append(plan.Actions, Action{At: t, Kind: NodeCrash, Node: v, Downtime: d})
		downUntil[v] = t + d
	}
}
