package scenario

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// RunAll executes every parameter set on its own simulation kernel,
// running up to GOMAXPROCS simulations concurrently, and returns the
// results in input order. Each simulation is single-threaded and
// deterministic under its seed; the concurrency is across independent
// runs, so results do not depend on scheduling.
//
// The first error aborts nothing: all runs complete, and the error
// returned wraps the first failure (its Result slot is zero).
func RunAll(params []Params) ([]Result, error) {
	results := make([]Result, len(params))
	errs := make([]error, len(params))

	workers := runtime.GOMAXPROCS(0)
	if workers > len(params) {
		workers = len(params)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	// Buffering to len(params) lets the feeder below enqueue everything
	// without blocking on worker pace.
	jobs := make(chan int, len(params))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker reusable run state: the kernel slab and engine
			// scratch grown by early jobs serve every later job on this
			// worker, so a long sweep stops paying per-run warm-up.
			var st runState
			for i := range jobs {
				results[i], errs[i] = runWith(params[i], &st)
			}
		}()
	}
	for i := range params {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("scenario: run %d of %d failed: %w", i, len(params), err)
		}
	}
	return results, nil
}

// SeedStats summarizes one metric across several seeds. Std is the
// population standard deviation (σ, dividing by k), not the sample
// estimator: the k seeds are the whole population under study, not a
// sample of a larger one.
type SeedStats struct {
	Mean, Std, Min, Max float64
	Values              []float64
}

// RelSpread returns (Max-Min)/Mean — the paper's "variations are
// limited, around 1%-2%" measure (Sec. IV-A). Returns 0 for a zero
// mean.
func (s SeedStats) RelSpread() float64 {
	if s.Mean == 0 {
		return 0
	}
	return (s.Max - s.Min) / s.Mean
}

// RunSeeds runs the same configuration under seeds 1..k and summarizes
// the delivery rate. The paper used 10 seeds to establish that a
// single run is representative. k must be at least 1: zero runs have
// no mean (0/0) and would leak NaN/±Inf into SeedStats.
func RunSeeds(p Params, k int) (SeedStats, error) {
	if k < 1 {
		return SeedStats{}, fmt.Errorf("scenario: RunSeeds needs k >= 1 seeds, got %d", k)
	}
	params := make([]Params, k)
	for i := range params {
		params[i] = p
		params[i].Seed = int64(i + 1)
	}
	results, err := RunAll(params)
	if err != nil {
		return SeedStats{}, err
	}
	stats := SeedStats{
		Min:    math.Inf(1),
		Max:    math.Inf(-1),
		Values: make([]float64, 0, k),
	}
	for _, r := range results {
		v := r.DeliveryRate
		stats.Values = append(stats.Values, v)
		stats.Mean += v
		if v < stats.Min {
			stats.Min = v
		}
		if v > stats.Max {
			stats.Max = v
		}
	}
	stats.Mean /= float64(k)
	for _, v := range stats.Values {
		d := v - stats.Mean
		stats.Std += d * d
	}
	stats.Std = math.Sqrt(stats.Std / float64(k))
	return stats, nil
}
