package live

import (
	"time"

	"repro/internal/ident"
	"repro/internal/wire"
)

// This file ports the epidemic recovery engine (internal/core) to real
// time and real sockets. The algorithms are identical to the
// simulator's — same digests, same routing of gossip messages, same
// Lost-buffer discipline — so a live network and a simulated one are
// two deployments of one protocol. On top of the ported algorithms the
// live node adds the fairness ledger (ledger.go): recovery serving is
// metered per peer and the pending-request table sheds greediest-first.

// indexLocked buffers ev and maintains the pattern and tag indices.
// Callers hold n.mu.
func (n *Node) indexLocked(ev *wire.Event) {
	if n.buf.Has(ev.ID) {
		return
	}
	n.buf.Put(ev)
	for _, p := range ev.Content {
		set, ok := n.patIdx[p]
		if !ok {
			set = ident.NewEventIDSet(8)
			n.patIdx[p] = set
		}
		set.Add(ev.ID)
	}
	for _, t := range ev.Tags {
		n.tagIdx[wire.LostEntry{Source: ev.ID.Source, Pattern: t.Pattern, Seq: t.Seq}] = ev.ID
	}
}

// unindexLocked is the cache eviction callback; the cache is only
// touched under n.mu, so the callback runs under it too.
func (n *Node) unindexLocked(ev *wire.Event) {
	for _, p := range ev.Content {
		if set, ok := n.patIdx[p]; ok {
			set.Remove(ev.ID)
		}
	}
	for _, t := range ev.Tags {
		delete(n.tagIdx, wire.LostEntry{Source: ev.ID.Source, Pattern: t.Pattern, Seq: t.Seq})
	}
}

// detectLocked runs sequence-gap loss detection. Callers hold n.mu.
func (n *Node) detectLocked(ev *wire.Event) {
	now := n.now()
	for _, tag := range ev.Tags {
		if !n.local[tag.Pattern] {
			continue
		}
		key := srcPattern{src: ev.ID.Source, pat: tag.Pattern}
		high := n.high[key]
		if tag.Seq > high {
			for q := high + 1; q < tag.Seq; q++ {
				n.lost.Add(wire.LostEntry{Source: ev.ID.Source, Pattern: tag.Pattern, Seq: q}, now)
				n.stats.lossesDetected.Add(1)
			}
			n.high[key] = tag.Seq
		} else {
			n.lost.Remove(wire.LostEntry{Source: ev.ID.Source, Pattern: tag.Pattern, Seq: tag.Seq})
		}
	}
}

// gossipRound starts one gossip round (called from the gossip loop).
func (n *Node) gossipRound() {
	n.mu.Lock()
	var outs []out
	switch {
	case n.cfg.Algorithm.NeedsSeqTags() && n.cfg.Algorithm.NeedsRoutes():
		// Combined or publisher-based pull.
		if n.rng.Float64() < n.cfg.PSource {
			outs = n.gossipPubPullLocked()
			if outs == nil {
				outs = n.gossipSubPullLocked()
			}
		} else {
			outs = n.gossipSubPullLocked()
			if outs == nil {
				outs = n.gossipPubPullLocked()
			}
		}
	case n.cfg.Algorithm.NeedsSeqTags():
		outs = n.gossipSubPullLocked()
	default:
		outs = n.gossipPushLocked()
	}
	outs = append(outs, n.retryPendingLocked()...)
	n.mu.Unlock()
	n.flush(outs)
}

// forwardPatternLocked picks the thinned neighbor set a pattern-routed
// gossip message goes to. Neighbors the failure detector suspects are
// skipped: gossip to a dead peer is a wasted transmission. Callers
// hold n.mu.
func (n *Node) forwardPatternLocked(msg wire.Message, p ident.PatternID, from ident.NodeID) []out {
	var outs []out
	for _, nb := range n.table[p] {
		if nb == from || n.isSuspect(nb) {
			continue
		}
		if n.rng.Float64() < n.cfg.PForward {
			outs = append(outs, out{to: nb, msg: msg})
		}
	}
	return outs
}

func (n *Node) gossipPushLocked() []out {
	var known []ident.PatternID
	seen := make(map[ident.PatternID]bool)
	for p := range n.local {
		known = append(known, p)
		seen[p] = true
	}
	for p, dirs := range n.table {
		if len(dirs) > 0 && !seen[p] {
			known = append(known, p)
		}
	}
	if len(known) == 0 {
		return nil
	}
	p := known[n.rng.Intn(len(known))]
	set, ok := n.patIdx[p]
	if !ok || set.Len() == 0 {
		return nil
	}
	msg := &wire.GossipPush{Gossiper: n.cfg.ID, Pattern: p, Digest: set.Sorted()}
	return n.forwardPatternLocked(msg, p, ident.None)
}

func (n *Node) gossipSubPullLocked() []out {
	now := n.now()
	var candidates []ident.PatternID
	for p := range n.local {
		if len(n.lost.ForPattern(p, now)) > 0 {
			candidates = append(candidates, p)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	p := candidates[n.rng.Intn(len(candidates))]
	msg := &wire.GossipSubPull{
		Gossiper: n.cfg.ID,
		Pattern:  p,
		Wanted:   n.lost.ForPattern(p, now),
	}
	return n.forwardPatternLocked(msg, p, ident.None)
}

func (n *Node) gossipPubPullLocked() []out {
	now := n.now()
	var candidates []ident.NodeID
	for _, s := range n.lost.Sources(now) {
		if len(n.routes[s]) > 0 {
			candidates = append(candidates, s)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	s := candidates[n.rng.Intn(len(candidates))]
	route := n.routes[s]
	msg := &wire.GossipPubPull{
		Gossiper: n.cfg.ID,
		Source:   s,
		Wanted:   n.lost.ForSource(s, now),
		Route:    route,
		Next:     uint16(len(route) - 1),
	}
	return []out{{to: route[len(route)-1], msg: msg}}
}

// handleRecovery processes gossip and out-of-band recovery messages.
func (n *Node) handleRecovery(from ident.NodeID, msg wire.Message, oob bool) {
	switch m := msg.(type) {
	case *wire.GossipPush:
		n.onGossipPush(from, m)
	case *wire.GossipSubPull:
		n.onGossipSubPull(from, m)
	case *wire.GossipPubPull:
		n.onGossipPubPull(m)
	case *wire.GossipRandom:
		// The live node does not initiate random pull (it is an
		// evaluation baseline), but serves its digests for
		// compatibility.
		n.mu.Lock()
		_, outs := n.serveLocked(m.Gossiper, m.Wanted)
		n.mu.Unlock()
		n.flush(outs)
	case *wire.Request:
		n.onRequest(m)
	case *wire.Retransmit:
		n.onRetransmit(m)
	default:
		_ = oob // unknown kinds are dropped silently, like real UDP software
	}
}

func (n *Node) onGossipPush(from ident.NodeID, m *wire.GossipPush) {
	n.mu.Lock()
	var outs []out
	if n.local[m.Pattern] {
		now := time.Now()
		var missing []ident.EventID
		for _, id := range m.Digest {
			if n.received.Has(id) || n.pending[id] != nil {
				continue // already have it, or a request is in flight
			}
			n.addPendingLocked(id, m.Gossiper, now)
			missing = append(missing, id)
		}
		if len(missing) > 0 {
			req := &wire.Request{Requester: n.cfg.ID, IDs: missing}
			n.ledgerSentLocked(m.Gossiper, req.WireSize())
			outs = append(outs, out{to: m.Gossiper, msg: req, oob: true})
		}
	}
	outs = append(outs, n.forwardPatternLocked(m, m.Pattern, from)...)
	n.mu.Unlock()
	n.flush(outs)
}

func (n *Node) onGossipSubPull(from ident.NodeID, m *wire.GossipSubPull) {
	n.mu.Lock()
	remaining, outs := n.serveLocked(m.Gossiper, m.Wanted)
	if len(remaining) > 0 {
		fwd := &wire.GossipSubPull{Gossiper: m.Gossiper, Pattern: m.Pattern, Wanted: remaining}
		outs = append(outs, n.forwardPatternLocked(fwd, m.Pattern, from)...)
	}
	n.mu.Unlock()
	n.flush(outs)
}

func (n *Node) onGossipPubPull(m *wire.GossipPubPull) {
	n.mu.Lock()
	remaining, outs := n.serveLocked(m.Gossiper, m.Wanted)
	if len(remaining) > 0 {
		i := int(m.Next)
		if i > 0 && i < len(m.Route) {
			fwd := &wire.GossipPubPull{
				Gossiper: m.Gossiper,
				Source:   m.Source,
				Wanted:   remaining,
				Route:    m.Route,
				Next:     uint16(i - 1),
			}
			outs = append(outs, out{to: m.Route[i-1], msg: fwd})
		}
	}
	n.mu.Unlock()
	n.flush(outs)
}

// serveLocked looks wanted events up in the buffer and returns the
// retransmission (as outs) plus the entries still missing. Events the
// gossiper's ledger quota cannot cover are trimmed from the response
// and returned in the remaining set, so a replica with quota to spare
// can serve them instead. Callers hold n.mu.
func (n *Node) serveLocked(gossiper ident.NodeID, wanted []wire.LostEntry) ([]wire.LostEntry, []out) {
	if gossiper == n.cfg.ID {
		return nil, nil
	}
	allowance := n.serveAllowanceLocked(gossiper, time.Now())
	served := 0
	var events []*wire.Event
	seen := make(map[ident.EventID]bool, len(wanted))
	var remaining []wire.LostEntry
	for _, w := range wanted {
		id, ok := n.tagIdx[w]
		if !ok {
			remaining = append(remaining, w)
			continue
		}
		ev := n.buf.Get(id)
		if ev == nil {
			delete(n.tagIdx, w)
			remaining = append(remaining, w)
			continue
		}
		if seen[id] {
			continue
		}
		sz := ev.WireSize()
		if served+sz > allowance {
			n.stats.quotaTrimmed.Add(1)
			remaining = append(remaining, w)
			continue
		}
		seen[id] = true
		served += sz
		events = append(events, ev)
	}
	if len(events) == 0 {
		return remaining, nil
	}
	n.chargeServeLocked(gossiper, served)
	n.stats.served.Add(uint64(len(events)))
	return remaining, []out{{to: gossiper, msg: &wire.Retransmit{Responder: n.cfg.ID, Events: events}, oob: true}}
}

func (n *Node) onRequest(m *wire.Request) {
	n.mu.Lock()
	n.ledgerRecvLocked(m.Requester, m.WireSize())
	allowance := n.serveAllowanceLocked(m.Requester, time.Now())
	served := 0
	var events []*wire.Event
	for _, id := range m.IDs {
		ev := n.buf.Get(id)
		if ev == nil {
			continue
		}
		sz := ev.WireSize()
		if served+sz > allowance {
			n.stats.quotaTrimmed.Add(1)
			continue
		}
		served += sz
		events = append(events, ev)
	}
	if len(events) > 0 {
		n.chargeServeLocked(m.Requester, served)
		n.stats.served.Add(uint64(len(events)))
	}
	n.mu.Unlock()
	if len(events) > 0 {
		n.sendOOB(m.Requester, &wire.Retransmit{Responder: n.cfg.ID, Events: events})
	}
}

func (n *Node) onRetransmit(m *wire.Retransmit) {
	for _, ev := range m.Events {
		n.mu.Lock()
		n.ledgerRecvLocked(m.Responder, ev.WireSize())
		if pr := n.pending[ev.ID]; pr != nil {
			pr.done = true
			delete(n.pending, ev.ID)
			n.ledger.peer(pr.from).pending--
		}
		deliver := n.localMatchLocked(ev.Content) && n.received.Add(ev.ID)
		if deliver {
			n.stats.delivered.Add(1)
			n.stats.recovered.Add(1)
			n.indexLocked(ev)
			if n.cfg.Algorithm.NeedsSeqTags() {
				n.detectLocked(ev)
			}
		}
		cb := n.cfg.OnDeliver
		n.mu.Unlock()
		if deliver && cb != nil {
			cb(ev, true)
		}
	}
}

// pendingReq tracks one outstanding recovery Request issued after a
// push digest revealed a missing event: who was asked, how many times,
// and when the next retransmission is due.
type pendingReq struct {
	id       ident.EventID
	from     ident.NodeID
	nextAt   time.Time
	attempts int
	done     bool // answered, abandoned, or shed: queue entry is stale
}

// addPendingLocked registers an outstanding request, shedding the
// greediest peer's oldest entries when the table is full. Callers hold
// n.mu.
func (n *Node) addPendingLocked(id ident.EventID, from ident.NodeID, now time.Time) {
	for len(n.pending) >= n.cfg.MaxPending {
		n.shedGreediestLocked()
	}
	pr := &pendingReq{id: id, from: from, attempts: 1, nextAt: now.Add(n.backoffLocked(1))}
	n.pending[id] = pr
	n.pendingQ = append(n.pendingQ, pr)
	n.ledger.peer(from).pending++
}

// shedOldestLocked evicts the oldest live pending entry regardless of
// peer — the pre-ledger policy, kept as the fallback when the ledger
// has no attribution to offer. Callers hold n.mu.
func (n *Node) shedOldestLocked() {
	for len(n.pendingQ) > 0 {
		pr := n.pendingQ[0]
		n.pendingQ[0] = nil
		n.pendingQ = n.pendingQ[1:]
		if pr.done {
			continue // lazily discarded tombstone
		}
		pr.done = true
		delete(n.pending, pr.id)
		if pl := n.ledger.peer(pr.from); pl.pending > 0 {
			pl.pending--
		}
		n.stats.pendingShed.Add(1)
		return
	}
}

// backoffLocked returns the delay before attempt+1: exponential in the
// attempt count with ±25% jitter so synchronized losers do not
// retransmit in lockstep. Callers hold n.mu (for the rng).
func (n *Node) backoffLocked(attempts int) time.Duration {
	d := n.cfg.RequestBackoff << uint(attempts-1)
	return d + time.Duration(n.rng.Int63n(int64(d)/2+1)) - d/4
}

// retryPendingLocked retransmits overdue requests (batched per
// responder) and abandons entries that exhausted their attempts. It
// also compacts the FIFO queue once tombstones dominate. Callers hold
// n.mu; runs once per gossip round.
func (n *Node) retryPendingLocked() []out {
	if len(n.pendingQ) > 2*len(n.pending)+64 {
		live := n.pendingQ[:0]
		for _, pr := range n.pendingQ {
			if !pr.done {
				live = append(live, pr)
			}
		}
		for i := len(live); i < len(n.pendingQ); i++ {
			n.pendingQ[i] = nil
		}
		n.pendingQ = live
	}
	if len(n.pending) == 0 {
		return nil
	}
	now := time.Now()
	var byFrom map[ident.NodeID][]ident.EventID
	for id, pr := range n.pending {
		if now.Before(pr.nextAt) {
			continue
		}
		if pr.attempts >= n.cfg.RequestRetries {
			pr.done = true
			delete(n.pending, id)
			if pl := n.ledger.peer(pr.from); pl.pending > 0 {
				pl.pending--
			}
			n.stats.requestsAbandoned.Add(1)
			continue
		}
		pr.attempts++
		pr.nextAt = now.Add(n.backoffLocked(pr.attempts))
		n.stats.requestsRetried.Add(1)
		if byFrom == nil {
			byFrom = make(map[ident.NodeID][]ident.EventID)
		}
		byFrom[pr.from] = append(byFrom[pr.from], id)
	}
	var outs []out
	for from, ids := range byFrom {
		req := &wire.Request{Requester: n.cfg.ID, IDs: ids}
		n.ledgerSentLocked(from, req.WireSize())
		outs = append(outs, out{to: from, msg: req, oob: true})
	}
	return outs
}
