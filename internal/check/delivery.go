package check

import (
	"repro/internal/ident"
	"repro/internal/sim"
	"repro/internal/wire"
)

// OnPublish registers a freshly published event. Call it at publish
// time, after the scenario computed the event's expected audience
// (matching subscribers currently up, excluding the publisher).
func (c *Checker) OnPublish(publisher ident.NodeID, ev *wire.Event, expected int) {
	if c.events == nil || c.stopped {
		return
	}
	c.events[ev.ID] = &eventInfo{
		publishedAt: c.env.Now(),
		publisher:   publisher,
		expected:    expected,
	}
	c.expectedTotal += uint64(expected)
}

// OnDeliver observes one delivery. Wire it as the outermost layer of
// the scenario's delivery chain so it sees every delivery, including
// the ones the metrics accounting filters out.
func (c *Checker) OnDeliver(node ident.NodeID, ev *wire.Event, recovered bool) {
	if c.events == nil || c.stopped {
		return
	}
	if c.opts.Delivery {
		c.checkDelivery(node, ev)
	}
	if node == ev.ID.Source {
		// The publisher's own delivery is outside the accounting (the
		// tracker skips it) and trivially causal.
		return
	}
	info := c.events[ev.ID]
	if info == nil {
		c.report("delivery", "unknown-event", node, ident.None, ev.ID,
			"delivery of an event that was never published")
		return
	}
	if c.opts.Recovery && recovered {
		c.checkRecovery(node, ev, info)
	}
	if c.env.WasDownAt != nil && c.env.WasDownAt(node, c.pubTime(ev)) {
		// The subscriber was down when the event was published: the
		// accounting excluded it from the audience, so this (late,
		// recovered) delivery is not counted against the budget.
		return
	}
	info.counted++
	c.countedDelivered++
	if recovered {
		c.countedRecovered++
	}
	if c.opts.Conservation && info.counted > info.expected {
		c.report("conservation", "audience-overflow", node, info.publisher, ev.ID,
			"counted delivery %d exceeds the %d matching subscribers up at publish",
			info.counted, info.expected)
	}
}

// checkDelivery enforces the delivery monitor proper: only matching,
// currently-up subscribers, at most once per (node, event).
func (c *Checker) checkDelivery(node ident.NodeID, ev *wire.Event) {
	if c.subs != nil && !c.matches(node, ev) {
		c.report("delivery", "non-matching", node, ident.None, ev.ID,
			"delivered event content %v matches none of the node's subscriptions", ev.Content)
	}
	if c.nodeDown(node) {
		c.report("delivery", "down-subscriber", node, ident.None, ev.ID,
			"delivery to a crashed dispatcher")
	}
	key := nodeEvent{node: node, ev: ev.ID}
	if _, dup := c.delivered[key]; dup {
		c.report("delivery", "duplicate", node, ident.None, ev.ID,
			"second delivery of the same event to the same dispatcher")
	}
	c.delivered[key] = struct{}{}
}

// checkRecovery enforces recovery causality: a gossip-recovered
// delivery needs upstream evidence that the ordinary dissemination
// genuinely failed — a recorded channel loss of the event, or an
// overlay disruption near (or after) its publish time, while routing
// state was re-converging.
func (c *Checker) checkRecovery(node ident.NodeID, ev *wire.Event, info *eventInfo) {
	if _, lost := c.lossSeen[ev.ID]; lost {
		return
	}
	if c.anyMutation && c.lastMutation >= info.publishedAt-c.opts.DisruptionSlack {
		return
	}
	c.report("recovery", "uncaused-recovery", node, info.publisher, ev.ID,
		"gossip recovered an event with no recorded loss and no overlay disruption since %v (published %v)",
		info.publishedAt-c.opts.DisruptionSlack, info.publishedAt)
}

// matches reports whether the event's content matches any of the
// node's subscriptions.
func (c *Checker) matches(node ident.NodeID, ev *wire.Event) bool {
	set := c.subs[node]
	for _, p := range ev.Content {
		if set[p] {
			return true
		}
	}
	return false
}

// pubTime returns the event's publish time as recorded by the checker,
// falling back to the wire-stamped time.
func (c *Checker) pubTime(ev *wire.Event) sim.Time {
	if info := c.events[ev.ID]; info != nil {
		return info.publishedAt
	}
	return sim.Time(ev.PublishedAt)
}
