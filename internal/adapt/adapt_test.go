package adapt

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

func ms(n int) sim.Time { return sim.Time(n) * time.Millisecond }

func testConfig() Config {
	return Config{}.Normalized(30 * time.Millisecond)
}

// TestNormalizedDefaults pins the derived defaults against the base
// interval.
func TestNormalizedDefaults(t *testing.T) {
	c := testConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.IntervalMin != ms(10) || c.IntervalMax != ms(120) {
		t.Fatalf("interval bounds = [%v, %v], want [10ms, 120ms]", c.IntervalMin, c.IntervalMax)
	}
	if c.LatencyHigh != ms(240) {
		t.Fatalf("LatencyHigh = %v, want 240ms", c.LatencyHigh)
	}
	if c.PForwardMin != 0.5 || c.PForwardMax != 1.0 || c.FanoutMax != 3 {
		t.Fatalf("unexpected knob bounds: %+v", c)
	}
	// A zero base falls back to the paper default 30ms.
	d := Config{}.Normalized(0)
	if d.IntervalMin != ms(10) || d.IntervalMax != ms(120) {
		t.Fatalf("zero-base bounds = [%v, %v]", d.IntervalMin, d.IntervalMax)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.IntervalMin = -1 },
		func(c *Config) { c.IntervalMax = c.IntervalMin / 2 },
		func(c *Config) { c.PForwardMax = 1.5 },
		func(c *Config) { c.PSourceMin = 0.95 }, // > max 0.9
		func(c *Config) { c.FanoutMin = -2; c.FanoutMax = -1 },
		func(c *Config) { c.LossGain = 1.5 },
		func(c *Config) { c.ChurnTau = -time.Second },
		func(c *Config) { c.LossLow = 0.5; c.LossHigh = 0.1 },
		func(c *Config) { c.ChurnLow = 3 }, // > high 2
		func(c *Config) { c.LatencyHigh = -1 },
		func(c *Config) { c.StallRounds = -1 },
		func(c *Config) { c.CalmRounds = -1 },
		func(c *Config) { c.Shrink = 1.2 },
		func(c *Config) { c.Grow = 0.9 },
		func(c *Config) { c.PStep = 2 },
		func(c *Config) { c.Dwell = -time.Second },
	}
	for i, mutate := range bad {
		c := testConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: config %+v unexpectedly valid", i, c)
		}
	}
}

// TestEstimatorLossEWMAHandTrace checks the loss EWMA against a
// hand-computed trace: the first sample seeds the estimate, later
// samples fold in with gain g.
func TestEstimatorLossEWMAHandTrace(t *testing.T) {
	cfg := testConfig()
	cfg.LossGain = 0.25
	e := NewEstimator(cfg)

	// No traffic: the estimate stays unseeded at zero.
	e.ObserveRound(Signals{Elapsed: ms(30)})
	if e.Loss() != 0 {
		t.Fatalf("loss after empty round = %v, want 0", e.Loss())
	}

	// Samples: 2/10 = 0.2, then 0/10 = 0, then 5/10 = 0.5.
	//   seed:           0.2
	//   0.2 + 0.25*(0   - 0.2) = 0.15
	//   0.15 + 0.25*(0.5 - 0.15) = 0.2375
	e.ObserveRound(Signals{Elapsed: ms(30), Lost: 2, Delivered: 8})
	if got := e.Loss(); got != 0.2 {
		t.Fatalf("loss after seed = %v, want 0.2", got)
	}
	e.ObserveRound(Signals{Elapsed: ms(30), Lost: 0, Delivered: 10})
	if got := e.Loss(); math.Abs(got-0.15) > 1e-12 {
		t.Fatalf("loss after second sample = %v, want 0.15", got)
	}
	e.ObserveRound(Signals{Elapsed: ms(30), Lost: 5, Delivered: 5})
	if got := e.Loss(); math.Abs(got-0.2375) > 1e-12 {
		t.Fatalf("loss after third sample = %v, want 0.2375", got)
	}
}

// TestEstimatorChurnDecayHandTrace checks the rational-decay churn
// estimate: with tau=1s and dt=100ms, decay = 1/(1.1); one link change
// contributes rate*(1-decay) = 10 * (0.1/1.1).
func TestEstimatorChurnDecayHandTrace(t *testing.T) {
	cfg := testConfig()
	cfg.ChurnTau = time.Second
	e := NewEstimator(cfg)

	decay := 1.0 / 1.1
	e.ObserveRound(Signals{Elapsed: ms(100), LinkChanges: 1})
	want := 10 * (1 - decay) // ≈ 0.909…
	if got := e.Churn(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("churn after one change = %v, want %v", got, want)
	}
	// A quiet round decays the estimate by tau/(tau+dt).
	e.ObserveRound(Signals{Elapsed: ms(100)})
	want *= decay
	if got := e.Churn(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("churn after quiet round = %v, want %v", got, want)
	}
	// Zero elapsed must not divide by zero or move the estimate.
	before := e.Churn()
	e.ObserveRound(Signals{Elapsed: 0, LinkChanges: 5})
	if e.Churn() != before {
		t.Fatalf("churn moved on zero-elapsed round: %v -> %v", before, e.Churn())
	}
}

// TestEstimatorLatencyEWMAHandTrace checks the latency EWMA: seed
// 100ms, then 100 + 0.25*(300-100) = 150ms.
func TestEstimatorLatencyEWMAHandTrace(t *testing.T) {
	cfg := testConfig()
	cfg.LatencyGain = 0.25
	e := NewEstimator(cfg)
	if e.Latency() != 0 {
		t.Fatalf("unseeded latency = %v, want 0", e.Latency())
	}
	e.ObserveLatency(ms(100))
	if got := e.Latency(); got != ms(100) {
		t.Fatalf("latency after seed = %v, want 100ms", got)
	}
	e.ObserveLatency(ms(300))
	if got := e.Latency(); got != ms(150) {
		t.Fatalf("latency after second sample = %v, want 150ms", got)
	}
	// Negative samples (clock anomalies) are ignored.
	e.ObserveLatency(-ms(5))
	if got := e.Latency(); got != ms(150) {
		t.Fatalf("latency moved on negative sample: %v", got)
	}
}

func defaultKnobs() Knobs {
	return Knobs{PForward: 0.9, PSource: 0.5, Fanout: 1, Interval: ms(30)}
}

// TestControllerTightensAboveLossBand walks the controller through
// sustained heavy loss and checks every knob saturates at its tight
// bound — and never beyond.
func TestControllerTightensAboveLossBand(t *testing.T) {
	cfg := testConfig()
	c := New(cfg, defaultKnobs(), false)
	now := sim.Time(0)
	for i := 0; i < 40; i++ {
		now += ms(30)
		s := c.Observe(now, Signals{Elapsed: ms(30), Lost: 5, Delivered: 5})
		if s.Knobs.Interval < cfg.IntervalMin || s.Knobs.Interval > cfg.IntervalMax {
			t.Fatalf("round %d: interval %v out of bounds", i, s.Knobs.Interval)
		}
		if s.Knobs.PForward < cfg.PForwardMin || s.Knobs.PForward > cfg.PForwardMax {
			t.Fatalf("round %d: PForward %v out of bounds", i, s.Knobs.PForward)
		}
		if s.Knobs.Fanout < cfg.FanoutMin || s.Knobs.Fanout > cfg.FanoutMax {
			t.Fatalf("round %d: fanout %d out of bounds", i, s.Knobs.Fanout)
		}
	}
	k := c.Knobs()
	if k.Interval != cfg.IntervalMin {
		t.Errorf("interval = %v, want saturated at %v", k.Interval, cfg.IntervalMin)
	}
	if k.PForward != cfg.PForwardMax {
		t.Errorf("PForward = %v, want saturated at %v", k.PForward, cfg.PForwardMax)
	}
	if k.Fanout != cfg.FanoutMax {
		t.Errorf("fanout = %d, want saturated at %d", k.Fanout, cfg.FanoutMax)
	}
	st := c.Stats()
	if st.Adjustments == 0 || st.Rounds != 40 {
		t.Errorf("stats = %+v, want 40 rounds with adjustments", st)
	}
}

// TestControllerRelaxesWhenCalm: with zero loss and no churn the
// controller converges to the minimum-overhead knobs (the ε=0
// metamorphic pin at controller level).
func TestControllerRelaxesWhenCalm(t *testing.T) {
	cfg := testConfig()
	c := New(cfg, defaultKnobs(), false)
	now := sim.Time(0)
	for i := 0; i < 60; i++ {
		now += ms(30)
		c.Observe(now, Signals{Elapsed: ms(30), Delivered: 10})
	}
	k := c.Knobs()
	if k.Interval != cfg.IntervalMax {
		t.Errorf("interval = %v, want relaxed to %v", k.Interval, cfg.IntervalMax)
	}
	if k.PForward != cfg.PForwardMin {
		t.Errorf("PForward = %v, want relaxed to %v", k.PForward, cfg.PForwardMin)
	}
	if k.Fanout != cfg.FanoutMin {
		t.Errorf("fanout = %d, want relaxed to %d", k.Fanout, cfg.FanoutMin)
	}
	if k.Walk {
		t.Error("walk engaged with zero churn and no stall")
	}
	st := c.Stats()
	if st.ModeSwitches != 0 || st.WalkSwitches != 0 {
		t.Errorf("structural switches on a calm trace: %+v", st)
	}
}

// TestControllerHoldsInsideBand: estimates inside the hysteresis band
// leave the knobs untouched.
func TestControllerHoldsInsideBand(t *testing.T) {
	cfg := testConfig()
	c := New(cfg, defaultKnobs(), false)
	// Seed the loss estimate mid-band: 5/100 = 0.05 ∈ (0.02, 0.08).
	now := ms(30)
	c.Observe(now, Signals{Elapsed: ms(30), Lost: 5, Delivered: 95})
	before := c.Knobs()
	for i := 0; i < 20; i++ {
		now += ms(30)
		c.Observe(now, Signals{Elapsed: ms(30), Lost: 5, Delivered: 95})
	}
	if c.Knobs() != before {
		t.Fatalf("knobs moved inside the band: %+v -> %+v", before, c.Knobs())
	}
}

// TestControllerLatencyTightens: even with a calm loss estimate, a
// recovery-latency estimate above the threshold shrinks the interval.
func TestControllerLatencyTightens(t *testing.T) {
	cfg := testConfig()
	c := New(cfg, defaultKnobs(), false)
	c.ObserveLatency(ms(400)) // seed above LatencyHigh=240ms
	s := c.Observe(ms(30), Signals{Elapsed: ms(30), Delivered: 10})
	if s.Knobs.Interval >= ms(30) {
		t.Fatalf("interval %v did not shrink under high recovery latency", s.Knobs.Interval)
	}
}

// TestHybridModeSwitchRespectsDwell drives a hybrid controller across
// the loss band in both directions and checks (a) it switches push →
// pull → push, and (b) consecutive switches are separated by at least
// the dwell time even though conditions flip much faster.
func TestHybridModeSwitchRespectsDwell(t *testing.T) {
	cfg := testConfig()
	cfg.Dwell = ms(500)
	c := New(cfg, defaultKnobs(), true)
	if c.Mode() != ModePush {
		t.Fatalf("initial mode = %v, want push", c.Mode())
	}

	var switches []sim.Time
	last := c.Mode()
	now := sim.Time(0)
	lossy := false
	for i := 0; i < 400; i++ {
		now += ms(30)
		// Alternate 30-round (900ms) loss and calm phases: long enough
		// for the EWMA to cross both bands, so without the dwell the
		// controller would flap on every phase edge.
		if i%30 == 0 {
			lossy = !lossy
		}
		sig := Signals{Elapsed: ms(30), Delivered: 10}
		if lossy {
			sig.Lost, sig.Delivered = 10, 0
		}
		s := c.Observe(now, sig)
		if s.Mode != last {
			switches = append(switches, now)
			last = s.Mode
		}
	}
	if len(switches) < 2 {
		t.Fatalf("expected multiple mode switches, got %d", len(switches))
	}
	for i := 1; i < len(switches); i++ {
		if gap := switches[i] - switches[i-1]; gap < cfg.Dwell {
			t.Fatalf("switches %d→%d separated by %v < dwell %v", i-1, i, gap, cfg.Dwell)
		}
	}
	if st := c.Stats(); st.ModeSwitches != uint64(len(switches)) {
		t.Fatalf("ModeSwitches = %d, want %d", st.ModeSwitches, len(switches))
	}
}

// TestWalkEngagesOnStall: consecutive rounds with outstanding losses
// and zero recoveries engage the random-walk degradation; recoveries
// flowing again (plus calm churn) disengage it after the dwell.
func TestWalkEngagesOnStall(t *testing.T) {
	cfg := testConfig()
	cfg.StallRounds = 4
	cfg.Dwell = ms(100)
	c := New(cfg, defaultKnobs(), false)
	now := sim.Time(0)
	// Stalled: losses outstanding, nothing recovered.
	for i := 0; i < 10; i++ {
		now += ms(30)
		c.Observe(now, Signals{Elapsed: ms(30), Outstanding: 5})
	}
	if !c.Knobs().Walk {
		t.Fatal("walk not engaged after sustained recovery stall")
	}
	// Recoveries resume and churn stays calm: walk disengages.
	for i := 0; i < 10; i++ {
		now += ms(30)
		c.Observe(now, Signals{Elapsed: ms(30), Recovered: 2, Delivered: 10})
	}
	if c.Knobs().Walk {
		t.Fatal("walk still engaged after recovery resumed")
	}
	if st := c.Stats(); st.WalkSwitches != 2 {
		t.Fatalf("WalkSwitches = %d, want 2", st.WalkSwitches)
	}
}

// TestWalkEngagesOnChurn: a burst of link changes alone (no stall)
// engages the walk once the churn estimate crosses the high band.
func TestWalkEngagesOnChurn(t *testing.T) {
	cfg := testConfig()
	c := New(cfg, defaultKnobs(), false)
	now := sim.Time(0)
	for i := 0; i < 20 && !c.Knobs().Walk; i++ {
		now += ms(30)
		c.Observe(now, Signals{Elapsed: ms(30), LinkChanges: 2, Delivered: 10})
	}
	if !c.Knobs().Walk {
		t.Fatal("walk not engaged under sustained link churn")
	}
	// Churn also pushes PSource down toward the subscriber arm.
	if got := c.Knobs().PSource; got >= 0.5 {
		t.Fatalf("PSource = %v, want pushed below baseline under churn", got)
	}
}

// TestPSourceDriftsBackWhenCalm: after churn subsides, PSource steps
// back to its baseline.
func TestPSourceDriftsBackWhenCalm(t *testing.T) {
	cfg := testConfig()
	c := New(cfg, defaultKnobs(), false)
	now := sim.Time(0)
	for i := 0; i < 30; i++ {
		now += ms(30)
		c.Observe(now, Signals{Elapsed: ms(30), LinkChanges: 2, Delivered: 10})
	}
	if c.Knobs().PSource >= 0.5 {
		t.Fatalf("PSource = %v, want below baseline under churn", c.Knobs().PSource)
	}
	for i := 0; i < 200; i++ {
		now += ms(30)
		c.Observe(now, Signals{Elapsed: ms(30), Delivered: 10})
	}
	if got := c.Knobs().PSource; got != 0.5 {
		t.Fatalf("PSource = %v, want drifted back to baseline 0.5", got)
	}
}

// TestControllerIsDeterministic replays the same signal trace twice
// and requires identical snapshots — the controller draws no
// randomness.
func TestControllerIsDeterministic(t *testing.T) {
	trace := make([]Signals, 100)
	for i := range trace {
		trace[i] = Signals{
			Elapsed:     ms(30),
			Delivered:   uint64(i % 7),
			Lost:        uint64(i % 3),
			Recovered:   uint64(i % 2),
			Outstanding: i % 5,
			LinkChanges: uint64(i % 4),
		}
	}
	run := func() []Snapshot {
		c := New(testConfig(), defaultKnobs(), true)
		out := make([]Snapshot, 0, len(trace))
		now := sim.Time(0)
		for _, sig := range trace {
			now += ms(30)
			if sig.Recovered > 0 {
				c.ObserveLatency(ms(50))
			}
			out = append(out, c.Observe(now, sig))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("snapshot %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestRunStatsMerge checks the aggregate math over two controllers.
func TestRunStatsMerge(t *testing.T) {
	var r RunStats
	r.Merge(Stats{
		Rounds: 10, Adjustments: 3, ModeSwitches: 1,
		MinInterval: ms(10), MaxInterval: ms(60),
		MinPForward: 0.6, MaxPForward: 1.0,
		MaxFanout: 2, Loss: 0.1, Churn: 1.0, PushRounds: 4, PullRounds: 6,
	})
	r.Merge(Stats{
		Rounds: 20, Adjustments: 5, WalkSwitches: 2,
		MinInterval: ms(20), MaxInterval: ms(120),
		MinPForward: 0.5, MaxPForward: 0.9,
		MaxFanout: 3, Loss: 0.3, Churn: 0.0,
	})
	if r.Engines != 2 || r.Rounds != 30 || r.Adjustments != 8 {
		t.Fatalf("counters wrong: %+v", r)
	}
	if r.ModeSwitches != 1 || r.WalkSwitches != 2 || r.PushRounds != 4 || r.PullRounds != 6 {
		t.Fatalf("switch counters wrong: %+v", r)
	}
	if r.MinInterval != ms(10) || r.MaxInterval != ms(120) {
		t.Fatalf("interval extremes wrong: %+v", r)
	}
	if r.MinPForward != 0.5 || r.MaxPForward != 1.0 || r.MaxFanout != 3 {
		t.Fatalf("knob extremes wrong: %+v", r)
	}
	if math.Abs(r.MeanLoss-0.2) > 1e-12 || math.Abs(r.MeanChurn-0.5) > 1e-12 {
		t.Fatalf("means wrong: %+v", r)
	}
}

// TestModeString covers the stringer.
func TestModeString(t *testing.T) {
	cases := map[Mode]string{ModeNone: "none", ModePush: "push", ModePull: "pull", Mode(9): "mode(9)"}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", m, got, want)
		}
	}
}

// TestStallReanchorsKnobsAtBaseline: once a recovery stall persists,
// the controller stops tightening and walks every knob back to its
// calibrated baseline — tightening into a channel that is not landing
// recoveries only queues more digests behind it.
func TestStallReanchorsKnobsAtBaseline(t *testing.T) {
	cfg := testConfig()
	base := defaultKnobs()
	c := New(cfg, base, false)
	now := sim.Time(0)
	// Heavy loss with recoveries still landing: tighten to the bounds.
	for i := 0; i < 30; i++ {
		now += ms(30)
		c.Observe(now, Signals{Elapsed: ms(30), Lost: 5, Delivered: 5, Recovered: 1})
	}
	k := c.Knobs()
	if k.Interval != cfg.IntervalMin || k.PForward != cfg.PForwardMax || k.Fanout != cfg.FanoutMax {
		t.Fatalf("knobs %+v not saturated tight before the stall", k)
	}
	// Recoveries stop landing while losses stay outstanding: the loss
	// estimate still reads high (no samples move it), but the stall
	// must override the tighten rule and re-anchor at the baseline.
	for i := 0; i < 40; i++ {
		now += ms(30)
		c.Observe(now, Signals{Elapsed: ms(30), Outstanding: 5})
	}
	k = c.Knobs()
	if k.Interval != base.Interval || k.PForward != base.PForward || k.Fanout != base.Fanout {
		t.Fatalf("knobs %+v did not re-anchor at baseline %+v under a persistent stall", k, base)
	}
	if !k.Walk {
		t.Fatal("walk not engaged during the stall")
	}
}

// TestWalkRevertNeedsCalmStreak: one clean observation between fault
// waves must not disengage the walk — reverting requires CalmRounds
// consecutive calm rounds, however long the dwell has been satisfied.
func TestWalkRevertNeedsCalmStreak(t *testing.T) {
	cfg := testConfig()
	cfg.StallRounds = 2
	cfg.CalmRounds = 8
	cfg.Dwell = ms(60)
	c := New(cfg, defaultKnobs(), false)
	now := sim.Time(0)
	for i := 0; i < 6; i++ {
		now += ms(30)
		c.Observe(now, Signals{Elapsed: ms(30), Outstanding: 5})
	}
	if !c.Knobs().Walk {
		t.Fatal("walk not engaged after sustained stall")
	}
	// Waves: 5 calm rounds (< CalmRounds), then one round with backlog.
	for wave := 0; wave < 6; wave++ {
		for i := 0; i < 5; i++ {
			now += ms(30)
			c.Observe(now, Signals{Elapsed: ms(30), Delivered: 10, Recovered: 1})
		}
		now += ms(30)
		c.Observe(now, Signals{Elapsed: ms(30), Outstanding: 3, Recovered: 1})
		if !c.Knobs().Walk {
			t.Fatalf("wave %d: walk disengaged without a full calm streak", wave)
		}
	}
	// A genuine calm streak reverts.
	for i := 0; i < cfg.CalmRounds+1; i++ {
		now += ms(30)
		c.Observe(now, Signals{Elapsed: ms(30), Delivered: 10})
	}
	if c.Knobs().Walk {
		t.Fatal("walk still engaged after a full calm streak")
	}
}

// TestHybridPullRevertNeedsCalmStreak: the hybrid's pull → push revert
// obeys the same calm-streak discipline as the walk revert.
func TestHybridPullRevertNeedsCalmStreak(t *testing.T) {
	cfg := testConfig()
	cfg.CalmRounds = 8
	cfg.Dwell = ms(60)
	c := New(cfg, defaultKnobs(), true)
	now := sim.Time(0)
	for i := 0; i < 10; i++ {
		now += ms(30)
		c.Observe(now, Signals{Elapsed: ms(30), Lost: 10})
	}
	if c.Mode() != ModePull {
		t.Fatalf("mode = %v, want pull under sustained loss", c.Mode())
	}
	// Loss clears, but the streak is interrupted every few rounds.
	for wave := 0; wave < 4; wave++ {
		for i := 0; i < 5; i++ {
			now += ms(30)
			c.Observe(now, Signals{Elapsed: ms(30), Delivered: 10})
		}
		now += ms(30)
		c.Observe(now, Signals{Elapsed: ms(30), Delivered: 10, Outstanding: 1})
		if c.Mode() != ModePull {
			t.Fatalf("wave %d: reverted to push without a full calm streak", wave)
		}
	}
	for i := 0; i < cfg.CalmRounds+1; i++ {
		now += ms(30)
		c.Observe(now, Signals{Elapsed: ms(30), Delivered: 10})
	}
	if c.Mode() != ModePush {
		t.Fatalf("mode = %v, want push after a full calm streak", c.Mode())
	}
}
