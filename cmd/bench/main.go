// Command bench runs the hot-path micro-benchmarks of internal/bench
// and appends one entry to the benchmark trajectory file
// (BENCH_hotpath.json by default). Every PR that touches a hot path
// re-runs it, so the file records how the per-event cost of the
// simulator evolves over time:
//
//	go run ./cmd/bench -label "pr1-pooled-kernel"
//
// Compare entries with any JSON tool; the interesting columns are
// ns_per_op and allocs_per_op on the kernel and network paths, and
// sim_events_per_sec end to end.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
)

// measurement is the recorded result of one benchmark function.
type measurement struct {
	NsPerOp         float64 `json:"ns_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
	Iterations      int     `json:"iterations"`
	SimEventsPerSec float64 `json:"sim_events_per_sec,omitempty"`
}

// entry is one point of the trajectory: all benchmarks from one run.
type entry struct {
	Label      string                 `json:"label"`
	Date       string                 `json:"date"`
	Commit     string                 `json:"commit,omitempty"`
	GoVersion  string                 `json:"go"`
	Benchmarks map[string]measurement `json:"benchmarks"`
}

func main() {
	label := flag.String("label", "", "trajectory label for this run (required)")
	out := flag.String("out", "BENCH_hotpath.json", "trajectory file to append to")
	flag.Parse()
	if *label == "" {
		fmt.Fprintln(os.Stderr, "bench: -label is required (e.g. -label pr1-pooled-kernel)")
		os.Exit(2)
	}

	// Validate the trajectory file before spending minutes on the
	// benchmarks themselves.
	var trajectory []entry
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &trajectory); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s is not a valid trajectory: %v\n", *out, err)
			os.Exit(1)
		}
	} else if !os.IsNotExist(err) {
		fmt.Fprintf(os.Stderr, "bench: reading %s: %v\n", *out, err)
		os.Exit(1)
	}

	suite := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"KernelScheduleDispatch", bench.KernelScheduleDispatch},
		{"KernelScheduleCancel", bench.KernelScheduleCancel},
		{"NetworkSend", bench.NetworkSend},
		{"MetricsTracker", bench.MetricsTracker},
		{"GossipRound", bench.GossipRound},
		{"DigestBuild", bench.DigestBuild},
		{"LostBuffer", bench.LostBuffer},
		{"EndToEnd", bench.EndToEnd},
	}

	e := entry{
		Label:      *label,
		Date:       time.Now().UTC().Format(time.RFC3339),
		Commit:     gitCommit(),
		GoVersion:  runtime.Version(),
		Benchmarks: make(map[string]measurement, len(suite)),
	}
	for _, s := range suite {
		r := testing.Benchmark(s.fn)
		m := measurement{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
		if v, ok := r.Extra["simevents/s"]; ok {
			m.SimEventsPerSec = v
		}
		e.Benchmarks[s.name] = m
		fmt.Printf("%-24s %12.1f ns/op %8d allocs/op %10d B/op", s.name, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp)
		if m.SimEventsPerSec > 0 {
			fmt.Printf(" %14.0f simevents/s", m.SimEventsPerSec)
		}
		fmt.Println()
	}

	trajectory = append(trajectory, e)
	data, err := json.MarshalIndent(trajectory, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: writing %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Printf("appended %q to %s (%d entries)\n", *label, *out, len(trajectory))
}

// gitCommit returns the short HEAD hash, or "" outside a git checkout.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
