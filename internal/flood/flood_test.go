package flood

import (
	"testing"
	"time"
)

func quick() Params {
	p := DefaultParams()
	p.N = 40
	p.Duration = 4 * time.Second
	p.PublishRate = 20
	return p
}

func TestRunProducesSaneResult(t *testing.T) {
	res, err := Run(quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRate <= 0 || res.DeliveryRate > 1 {
		t.Fatalf("DeliveryRate = %v", res.DeliveryRate)
	}
	if res.EventsPublished == 0 || res.EventMessages == 0 {
		t.Fatal("no traffic")
	}
	if res.MessagesPerDelivery <= 0 {
		t.Fatal("no per-delivery cost computed")
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	a, err := Run(quick())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quick())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
}

func TestPaperCriticismsHold(t *testing.T) {
	// The paper's Sec. V criticism of pure gossip dissemination:
	// events reach non-interested nodes and arrive more than once.
	res, err := Run(quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.UninterestedReceptions == 0 {
		t.Fatal("pure gossip never hit a non-interested node — impossible with Π=70, πmax=2")
	}
	if res.DuplicateReceptions == 0 {
		t.Fatal("pure gossip produced no duplicates — implausible at fanout 3 × 5 rounds")
	}
	// And no delivery guarantee even in the best case: with these
	// fanout/round settings some events miss some subscribers.
	if res.DeliveryRate == 1 {
		t.Fatal("pure gossip delivered everything — the baseline is mis-tuned to look perfect")
	}
}

func TestFanoutImprovesDeliveryAtHigherCost(t *testing.T) {
	small := quick()
	small.Fanout = 2
	big := quick()
	big.Fanout = 5
	a, err := Run(small)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(big)
	if err != nil {
		t.Fatal(err)
	}
	if b.DeliveryRate <= a.DeliveryRate {
		t.Fatalf("fanout 5 (%.3f) did not beat fanout 2 (%.3f)", b.DeliveryRate, a.DeliveryRate)
	}
	if b.EventMessages <= a.EventMessages {
		t.Fatal("higher fanout did not cost more messages")
	}
}

func TestValidation(t *testing.T) {
	for _, mutate := range []func(*Params){
		func(p *Params) { p.N = 1 },
		func(p *Params) { p.Fanout = 0 },
		func(p *Params) { p.Rounds = 0 },
		func(p *Params) { p.Duration = 0 },
	} {
		p := quick()
		mutate(&p)
		if _, err := Run(p); err == nil {
			t.Fatalf("invalid params accepted: %+v", p)
		}
	}
}

func BenchmarkFloodRun(b *testing.B) {
	p := quick()
	p.Duration = time.Second
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i + 1)
		if _, err := Run(p); err != nil {
			b.Fatal(err)
		}
	}
}
