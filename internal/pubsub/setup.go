package pubsub

import (
	"repro/internal/ident"
	"repro/internal/topology"
)

// InstallStableSubscriptions lays down local subscriptions and the
// corresponding routing tables on every node instantaneously, without
// exchanging messages. The paper's simulations run with stable
// subscription information (Sec. IV-A): subscriptions exist before the
// measurement starts, so their propagation is not simulated.
//
// subs[i] lists the patterns node i subscribes to. For every subscriber
// s of pattern p, every other node x gets a table entry (p → neighbor
// of x on the path toward s), which is exactly the state subscription
// forwarding converges to on a tree.
func InstallStableSubscriptions(topo *topology.Tree, nodes []*Node, subs [][]ident.PatternID) {
	if len(nodes) != topo.N() || len(subs) != topo.N() {
		panic("pubsub: nodes/subs length must match topology size")
	}
	for i, n := range nodes {
		n.SetLocalInstant(subs[i])
	}
	parent := make([]ident.NodeID, topo.N())
	queue := make([]ident.NodeID, 0, topo.N())
	for s := range nodes {
		if len(subs[s]) == 0 {
			continue
		}
		// BFS from the subscriber: parent[x] is x's neighbor on the
		// path toward s, i.e. the direction events must leave x to
		// reach s.
		for i := range parent {
			parent[i] = ident.None
		}
		start := ident.NodeID(s)
		parent[start] = start
		queue = append(queue[:0], start)
		for i := 0; i < len(queue); i++ {
			x := queue[i]
			for _, y := range topo.Neighbors(x) {
				if parent[y] == ident.None {
					parent[y] = x
					queue = append(queue, y)
				}
			}
		}
		for x := range nodes {
			if x == s || parent[x] == ident.None {
				continue
			}
			for _, p := range subs[s] {
				nodes[x].SetTableInstant(p, parent[x])
			}
		}
	}
}
