// Package bench holds the hot-path micro-benchmarks behind cmd/bench.
//
// The benchmarks live in a regular (non-test) package so that the
// cmd/bench harness can execute them with testing.Benchmark and record
// ns/op, allocs/op, and simulated-events/sec into BENCH_hotpath.json —
// the measured trajectory that every PR extends. The same functions are
// exposed as ordinary `go test -bench` benchmarks by the wrappers in
// the repository root's bench_test.go.
package bench

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/matching"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/wire"
)

// KernelScheduleDispatch measures the kernel's per-event cost on the
// schedule/dispatch path: every executed handler reschedules itself,
// so each benchmark op is exactly one heap push, one heap pop, and one
// handler dispatch over a standing population of timers.
func KernelScheduleDispatch(b *testing.B) {
	const population = 256
	k := sim.New(1)
	rng := k.NewStream(1)
	remaining := b.N
	var tick func()
	tick = func() {
		if remaining <= 0 {
			return
		}
		remaining--
		k.After(sim.Time(rng.Intn(1000))*time.Microsecond, tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < population; i++ {
		k.At(sim.Time(i)*time.Microsecond, tick)
	}
	k.RunAll()
}

// KernelScheduleCancel measures the schedule-then-cancel path: each op
// schedules one timer and cancels it before it fires, the lifecycle of
// every retransmission timeout that is satisfied in time.
func KernelScheduleCancel(b *testing.B) {
	k := sim.New(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := k.After(time.Millisecond, fn)
		c.Cancel()
		if i%1024 == 1023 {
			// Drain the cancelled backlog the way a real run would:
			// virtual time advances past the dead entries.
			k.Run(k.Now() + 2*time.Millisecond)
		}
	}
	k.RunAll()
}

// NetworkSend measures Network.Send with FIFO queueing enabled: the
// per-transmission link-state lookup plus the delivery event. Sends
// cycle over every directed link of a default-shaped tree.
func NetworkSend(b *testing.B) {
	k := sim.New(1)
	topo, err := topology.New(100, 4, k.NewStream(2))
	if err != nil {
		b.Fatal(err)
	}
	cfg := network.DefaultConfig()
	cfg.LossRate = 0 // measure the send path, not the loss path
	nw := network.New(k, topo, cfg, nil)
	for i := 0; i < topo.N(); i++ {
		nw.Register(ident.NodeID(i), nopHandler{})
	}
	links := topo.Links()
	msg := &wire.Event{
		ID:      ident.EventID{Source: 0, Seq: 1},
		Content: matching.Content{0},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := links[i%len(links)]
		if i%2 == 0 {
			nw.Send(l.A, l.B, msg)
		} else {
			nw.Send(l.B, l.A, msg)
		}
		if i%256 == 255 {
			k.RunAll() // drain deliveries so the FES stays small
		}
	}
	k.RunAll()
}

type nopHandler struct{}

func (nopHandler) HandleMessage(ident.NodeID, wire.Message, bool) {}

// MetricsTracker measures the DeliveryTracker pipeline: one publish
// plus eight deliveries per op, and a TimeSeries aggregation at the
// end, amortized over all ops.
func MetricsTracker(b *testing.B) {
	tr := metrics.NewDeliveryTracker(nil)
	ev := &wire.Event{ID: ident.EventID{Source: 0, Seq: 0}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.ID.Seq = uint32(i)
		at := sim.Time(i) * time.Microsecond
		tr.OnPublish(ev.ID, 8, at)
		for d := 0; d < 8; d++ {
			tr.OnDeliver(ident.NodeID(d+1), ev, d%4 == 0)
		}
	}
	pts := tr.TimeSeries(100 * time.Millisecond)
	b.StopTimer()
	if len(pts) == 0 && b.N > 0 {
		b.Fatal("empty time series")
	}
}

// EndToEnd measures a full small combined-pull simulation — the
// package's end-to-end hot path — and reports simulated kernel
// events per wall-clock second.
func EndToEnd(b *testing.B) {
	var events uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := scenario.DefaultParams()
		p.Seed = int64(i + 1)
		p.N = 25
		p.Duration = 2 * time.Second
		p.MeasureFrom = 300 * time.Millisecond
		p.MeasureTo = 1500 * time.Millisecond
		p.PublishRate = 15
		p.Algorithm = core.CombinedPull
		p.Gossip = core.DefaultConfig(core.CombinedPull)
		res, err := scenario.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		events += res.KernelEvents
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "simevents/s")
	}
}
