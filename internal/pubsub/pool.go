package pubsub

import (
	"repro/internal/ident"
	"repro/internal/network"
	"repro/internal/sim"
)

// NodePool recycles dispatcher state across node lifetimes. A sweep
// worker builds N dispatchers per run and discards them all at the end;
// with a pool, the per-node structures that dominate construction cost
// — the dense per-pattern direction table, the received-event set, and
// the per-pattern sequence map — are grown once and then reused run
// after run. A pool must not be shared between goroutines; each sweep
// worker owns its own.
type NodePool struct {
	free []*Node
}

// NewNodeIn is NewNode with a node pool: when pool (non-nil) holds a
// released node, that node is reset to the given identity and neighbor
// set instead of allocating a fresh one. A reset node is observably
// identical to a new one — every piece of subscription, routing, and
// delivery state is cleared; only map buckets and slice capacity
// survive.
func NewNodeIn(id ident.NodeID, k *sim.Kernel, net *network.Network, neighbors []ident.NodeID, cfg Config, pool *NodePool) *Node {
	if pool != nil {
		if m := len(pool.free); m > 0 {
			n := pool.free[m-1]
			pool.free = pool.free[:m-1]
			n.reset(id, k, net, neighbors, cfg)
			n.pool = pool
			net.Register(id, n)
			return n
		}
	}
	n := NewNode(id, k, net, neighbors, cfg)
	n.pool = pool
	return n
}

// reset re-targets a pooled node at a new identity, clearing all
// subscription, routing, and delivery state while keeping the grown
// capacity of its table rows, maps, and scratch slices.
func (n *Node) reset(id ident.NodeID, k *sim.Kernel, net *network.Network, neighbors []ident.NodeID, cfg Config) {
	n.id, n.p, n.net, n.cfg = id, k.Proc(int32(id)), net, cfg
	n.neighbors = append(n.neighbors[:0], neighbors...)
	n.localSet = ident.PatternSet{}
	n.localList = n.localList[:0]
	// The dirRows arena keeps its capacity; zeroing row lengths and the
	// pattern index restores an all-empty table without freeing it.
	for i := range n.dirIdx {
		n.dirIdx[i] = -1
	}
	n.dirRows = n.dirRows[:0]
	n.dirLen = n.dirLen[:0]
	n.dirOver = nil
	n.tableSet = ident.PatternSet{}
	n.known = nil
	n.linkEpoch = 0
	n.nextSeq = 0
	clear(n.patSeq)
	n.received.Clear()
	n.recovery = NopRecovery{}
}

// Release returns the node's reusable state to the pool it was built
// with. The node must not be used afterwards. A no-op for nodes built
// without a pool. References to the run's kernel, network, recovery
// engine, and delivery callback are dropped so a pooled node cannot
// pin a finished simulation in memory.
func (n *Node) Release() {
	if n.pool == nil {
		return
	}
	p := n.pool
	n.pool = nil
	n.p, n.net = nil, nil
	n.cfg = Config{}
	n.recovery = NopRecovery{}
	p.free = append(p.free, n)
}
