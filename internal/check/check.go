// Package check is the runtime invariant monitor of the simulator: a
// pluggable subsystem that observes a run through synchronous hooks —
// the network's traffic observer and arrival callback, the topology's
// mutation hook, and the scenario's delivery chain — and fails fast
// with a minimal reproducer (seed + event id + violation site) the
// moment the execution violates one of the protocol's implicit
// invariants.
//
// Five monitors are available, individually selectable via Options:
//
//   - FIFO: per-directed-link FIFO ordering and serialization-delay
//     consistency. The monitor mirrors the channel model independently
//     (per-(link, incarnation) busy times, a FIFO queue of expected
//     arrival times) and requires every arrival to complete at exactly
//     the mirrored time, in the mirrored order; out-of-band arrivals
//     must respect the distance-derived delay bounds.
//   - Delivery: no delivery to a non-matching subscriber, none to a
//     crashed one, and at most one delivery per (node, event).
//   - Topology: after every structural mutation the overlay is still a
//     degree-bounded acyclic forest with symmetric, duplicate-free
//     adjacency; once the run ends (and repair has had FinalGrace to
//     settle) the live nodes must form a single connected tree.
//   - Recovery: every gossip-recovered delivery is causally justified
//     — the event was genuinely dropped somewhere upstream, or the
//     overlay was disrupted near its publish time (see
//     DisruptionSlack); engine buffers pass their structural audits
//     (LostBuffer capacity/TTL/index invariants) at the end of the
//     run.
//   - Conservation: no event is delivered to more subscribers than
//     matched it when it was published, and the checker's own
//     delivered/recovered accounting reconciles exactly with the
//     metrics.DeliveryTracker totals.
//
// Two further monitors cover the extensions beyond the paper: the
// Convergence monitor (self-stabilizing repair, DESIGN.md Sec. 13) and
// the Adaptation monitor (closed-loop knob control, DESIGN.md Sec. 14:
// knob bounds, switch dwell, estimator sanity).
//
// The checker is deliberately passive: it never draws from kernel RNG
// streams, never schedules kernel events, and never mutates protocol
// state, so enabling it cannot change the trajectory of a
// deterministic run — golden metrics stay bit-identical with checking
// on or off. When no checker is installed the hooks cost one nil
// check each, and the hot paths stay allocation-free.
package check

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/adapt"
	"repro/internal/ident"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Options selects monitors and tunes failure handling. The zero value
// checks nothing; use All for the full set.
type Options struct {
	// FIFO enables the per-directed-link ordering/serialization monitor.
	FIFO bool
	// Delivery enables the matching/down/duplicate delivery monitor.
	Delivery bool
	// Topology enables the structural overlay monitor.
	Topology bool
	// Recovery enables the recovery-causality monitor and end-of-run
	// engine buffer audits.
	Recovery bool
	// Conservation enables per-event delivery-count bounds and the
	// final reconciliation against the DeliveryTracker.
	Conservation bool
	// Convergence enables the repair-convergence monitor: after the
	// last injected fault (Env.LastFaultAt), the overlay must reach —
	// and then retain — the legality of its kind (connected,
	// degree-bounded, acyclic for trees, judged over live nodes) within
	// ConvergenceBound. Because the checker is passive it cannot sample
	// the overlay on a clock; instead it verifies the equivalent pair
	// at Finish: no topology mutation happened after
	// LastFaultAt+ConvergenceBound (quiescence), and the final overlay
	// is legal — together these imply legality was reached within the
	// bound and held through the end of the run. Runs whose last fault
	// falls within ConvergenceBound of the end are not judged.
	Convergence bool
	// Adaptation enables the adaptive-controller monitor: knob values
	// inside their configured bounds at every round boundary,
	// structural switches (hybrid mode, walk degradation) separated by
	// at least the dwell time, estimator state finite and in range.
	// Inert unless the run wires OnAdaptRound (static runs never do).
	Adaptation bool

	// KeepGoing collects violations instead of stopping the run at the
	// first one. Fail-fast (the default) asks the kernel to stop, so
	// the reproducer points at the earliest inconsistent state.
	KeepGoing bool
	// MaxViolations bounds the recorded violations (default 16).
	MaxViolations int
	// FinalGrace is how recently the last topology mutation may have
	// happened for the final connectivity check to be skipped: a run
	// that ends mid-repair is not a violation. Default 500ms.
	FinalGrace sim.Time
	// DisruptionSlack widens the window around a topology disruption
	// during which published events may legitimately need recovery
	// without a recorded channel loss (routing state is re-converging).
	// Default 500ms.
	DisruptionSlack sim.Time
	// ConvergenceBound is how long after the last fault the repair
	// machinery (oracle or self-stabilizing) may keep mutating the
	// overlay before the Convergence monitor calls it non-convergent.
	// Default 2s; self-stabilizing runs need roughly
	// repair.Config.TTL·Period plus propagation slack.
	ConvergenceBound sim.Time
}

// All returns Options with every monitor enabled and fail-fast on.
func All() *Options {
	return &Options{FIFO: true, Delivery: true, Topology: true, Recovery: true, Conservation: true, Adaptation: true}
}

// Violation is one observed invariant breach.
type Violation struct {
	// Monitor names the monitor that fired (fifo, delivery, topology,
	// recovery, conservation).
	Monitor string
	// Site identifies the specific check within the monitor.
	Site string
	// At is the virtual time of the observation.
	At sim.Time
	// Seed and Algorithm identify the run for replay.
	Seed      int64
	Algorithm string
	// Node and Peer locate the violation (Peer is ident.None when only
	// one node is involved).
	Node, Peer ident.NodeID
	// Event is the involved event, when any (zero otherwise).
	Event ident.EventID
	// Detail is the human-readable expectation vs observation.
	Detail string
}

// Repro returns the minimal reproducer line: everything needed to
// re-run the failing execution and land on this violation again.
func (v Violation) Repro() string {
	return fmt.Sprintf("seed=%d algo=%s t=%v site=%s/%s node=%v event=%v",
		v.Seed, v.Algorithm, v.At, v.Monitor, v.Site, v.Node, v.Event)
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s/%s] t=%v node=%v", v.Monitor, v.Site, v.At, v.Node)
	if v.Peer != ident.None {
		fmt.Fprintf(&b, " peer=%v", v.Peer)
	}
	if v.Event != (ident.EventID{}) {
		fmt.Fprintf(&b, " %v", v.Event)
	}
	fmt.Fprintf(&b, ": %s (repro: %s)", v.Detail, v.Repro())
	return b.String()
}

// Error is the failure a checked run returns: the recorded violations,
// earliest first.
type Error struct {
	Violations []Violation
}

// Error implements error.
func (e *Error) Error() string {
	if len(e.Violations) == 0 {
		return "check: no violations"
	}
	if len(e.Violations) == 1 {
		return "check: invariant violation: " + e.Violations[0].String()
	}
	return fmt.Sprintf("check: %d invariant violations, first: %s",
		len(e.Violations), e.Violations[0].String())
}

// Topology is the read-only overlay view the checker inspects.
// *topology.Tree implements it; tests substitute corrupt fakes to
// exercise the violation paths a real tree never produces.
type Topology interface {
	N() int
	MaxDegree() int
	Degree(v ident.NodeID) int
	Neighbors(v ident.NodeID) []ident.NodeID
	HasLink(a, b ident.NodeID) bool
	NeighborSlot(from, to ident.NodeID) int
	LinkIncarnation(a, b ident.NodeID) uint64
	// Kind is the overlay family the shape checks are judged against:
	// only KindTree overlays are required to be acyclic.
	Kind() topology.Kind
}

var _ Topology = (*topology.Tree)(nil)

// Env is the read-only view of the run the checker observes. All
// function fields must be safe to call from inside kernel events; nil
// fields disable the checks that need them.
type Env struct {
	// Seed and Algorithm label violations for replay.
	Seed      int64
	Algorithm string
	// N is the number of dispatchers.
	N int
	// Now reads the virtual clock.
	Now func() sim.Time
	// Stop halts the run (fail-fast). May be nil.
	Stop func()
	// Topo is the overlay under test.
	Topo Topology
	// NetConfig is the channel model the FIFO monitor mirrors.
	NetConfig network.Config
	// NodeDown reports whether a dispatcher is currently crashed
	// (the network's view). May be nil when the run injects no faults.
	NodeDown func(ident.NodeID) bool
	// WasDownAt reports whether a dispatcher was crashed at a past
	// instant; it must match the filter the delivery accounting uses.
	// May be nil.
	WasDownAt func(ident.NodeID, sim.Time) bool
	// LastFaultAt reports the virtual time of the most recent injected
	// disturbance (crash, restart, link cut/restore); the Convergence
	// monitor anchors its bound here. May be nil (treated as time 0 —
	// an adversarial initial configuration counts as a fault before
	// the run started).
	LastFaultAt func() sim.Time
	// Adapt is the normalized adaptive-controller config of the run,
	// when adaptation is enabled; the Adaptation monitor takes its knob
	// bounds and dwell time from it. May be nil (bounds and dwell
	// checks are skipped; estimator sanity is still verified).
	Adapt *adapt.Config
}

// Checker is one run's invariant monitor. Build it with New, wire its
// hooks (network observer + arrival observer, topology mutation hook,
// delivery and publish callbacks), and call Finish once the run ends.
// A Checker is single-run and not safe for concurrent use — exactly
// like the kernel whose execution it observes.
type Checker struct {
	opts Options
	env  Env

	violations []Violation
	truncated  int  // violations dropped past MaxViolations
	stopped    bool // fail-fast tripped; hooks go quiet

	subs []map[ident.PatternID]bool // per-node subscription sets

	fifo fifoMirror

	// events registers every published event for the delivery,
	// recovery, and conservation monitors.
	events    map[ident.EventID]*eventInfo
	delivered map[nodeEvent]struct{}

	// lossSeen records event IDs observed dropping on a channel —
	// direct causal evidence for a later recovery.
	lossSeen map[ident.EventID]struct{}

	// lastMutation/anyMutation track overlay disruption for the
	// recovery monitor's slack window and the final topology check.
	lastMutation sim.Time
	anyMutation  bool

	// counted*/expected* are the checker's independent delivery
	// accounting, reconciled against the tracker at Finish.
	countedDelivered uint64
	countedRecovered uint64
	expectedTotal    uint64

	// adaptStates is the per-node memory of the Adaptation monitor,
	// allocated lazily on the first observed controller snapshot.
	adaptStates map[ident.NodeID]*adaptState

	audits []auditFn
}

type auditFn struct {
	name string
	fn   func() error
}

// eventInfo is the per-published-event state of the monitors.
type eventInfo struct {
	publishedAt sim.Time
	publisher   ident.NodeID
	expected    int // matching subscribers up at publish (sans publisher)
	counted     int // deliveries the tracker also counts
}

// nodeEvent keys the duplicate-delivery set.
type nodeEvent struct {
	node ident.NodeID
	ev   ident.EventID
}

// New builds a checker for one run. opts must not be nil.
func New(opts *Options, env Env) *Checker {
	o := *opts
	if o.MaxViolations <= 0 {
		o.MaxViolations = 16
	}
	if o.FinalGrace <= 0 {
		o.FinalGrace = 500 * time.Millisecond
	}
	if o.DisruptionSlack <= 0 {
		o.DisruptionSlack = 500 * time.Millisecond
	}
	if o.ConvergenceBound <= 0 {
		o.ConvergenceBound = 2 * time.Second
	}
	c := &Checker{opts: o, env: env}
	if o.FIFO {
		c.fifo.init()
	}
	if o.Delivery || o.Recovery || o.Conservation {
		c.events = make(map[ident.EventID]*eventInfo)
		c.delivered = make(map[nodeEvent]struct{})
	}
	if o.Recovery {
		c.lossSeen = make(map[ident.EventID]struct{})
	}
	return c
}

// SetSubscriptions installs the per-node subscription sets the
// delivery monitor validates against. Call it once the scenario has
// drawn them, before the run starts.
func (c *Checker) SetSubscriptions(subs [][]ident.PatternID) {
	c.subs = make([]map[ident.PatternID]bool, len(subs))
	for i, ps := range subs {
		set := make(map[ident.PatternID]bool, len(ps))
		for _, p := range ps {
			set[p] = true
		}
		c.subs[i] = set
	}
}

// AddAudit registers an end-of-run audit (e.g. a recovery engine's
// buffer invariants) run by Finish when the Recovery monitor is on.
func (c *Checker) AddAudit(name string, fn func() error) {
	c.audits = append(c.audits, auditFn{name: name, fn: fn})
}

// report records a violation and, unless KeepGoing, stops the run.
func (c *Checker) report(monitor, site string, node, peer ident.NodeID, ev ident.EventID, format string, args ...any) {
	if len(c.violations) >= c.opts.MaxViolations {
		c.truncated++
		return
	}
	v := Violation{
		Monitor:   monitor,
		Site:      site,
		Seed:      c.env.Seed,
		Algorithm: c.env.Algorithm,
		Node:      node,
		Peer:      peer,
		Event:     ev,
		Detail:    fmt.Sprintf(format, args...),
	}
	if c.env.Now != nil {
		v.At = c.env.Now()
	}
	c.violations = append(c.violations, v)
	if !c.opts.KeepGoing {
		c.stopped = true
		if c.env.Stop != nil {
			c.env.Stop()
		}
	}
}

// Violations returns the recorded violations, earliest first.
func (c *Checker) Violations() []Violation { return c.violations }

// Err returns nil when no violation was recorded, or an *Error
// carrying all of them.
func (c *Checker) Err() error {
	if len(c.violations) == 0 {
		return nil
	}
	return &Error{Violations: c.violations}
}

// Finish runs the end-of-run checks — final topology shape, engine
// buffer audits, and the conservation reconciliation against tracker
// (which may be nil) — and returns the run's verdict. Call it after
// the kernel drained, before the scenario releases pooled state.
// The reconciliation needs only Totals(), which both metrics modes
// report exactly, so it works against either tracker implementation.
func (c *Checker) Finish(tracker metrics.Tracker) error {
	if !c.stopped {
		if c.opts.Topology {
			c.finishTopology()
		}
		if c.opts.Convergence {
			c.finishConvergence()
		}
		if c.opts.Recovery {
			for _, a := range c.audits {
				if err := a.fn(); err != nil {
					c.report("recovery", "buffer-audit", ident.None, ident.None, ident.EventID{},
						"%s: %v", a.name, err)
				}
			}
		}
		if c.opts.Conservation && tracker != nil {
			expected, delivered, recovered := tracker.Totals()
			if expected != c.expectedTotal || delivered != c.countedDelivered || recovered != c.countedRecovered {
				c.report("conservation", "tracker-reconciliation", ident.None, ident.None, ident.EventID{},
					"tracker totals (expected=%d delivered=%d recovered=%d) != checker totals (expected=%d delivered=%d recovered=%d)",
					expected, delivered, recovered,
					c.expectedTotal, c.countedDelivered, c.countedRecovered)
			}
		}
	}
	return c.Err()
}
