package network

import (
	"fmt"
	"math/rand"

	"repro/internal/ident"
	"repro/internal/sim"
)

// LossModel decides, per transmission, whether the channel drops the
// message. The simulator is single-threaded, so a model is consulted
// exactly once per send in deterministic order; a model driven by
// seeded RNG streams therefore produces replayable loss patterns.
//
// DropTree is asked for tree-link transmissions (one trial per hop),
// DropOOB for out-of-band unicast transmissions (one trial end-to-end).
type LossModel interface {
	DropTree(from, to ident.NodeID) bool
	DropOOB(from, to ident.NodeID) bool
}

// Bernoulli is the paper's channel model (Sec. IV-A): an independent
// loss trial per transmission with fixed rates ε (tree) and ε_oob
// (out-of-band). It is the default model of every Network; all trials
// share one RNG stream, consumed in send order, which keeps the draw
// sequence identical to the historical inline implementation.
type Bernoulli struct {
	TreeRate float64
	OOBRate  float64
	rng      *rand.Rand
}

var _ LossModel = (*Bernoulli)(nil)

// NewBernoulli builds the independent-loss model over rng.
func NewBernoulli(treeRate, oobRate float64, rng *rand.Rand) *Bernoulli {
	return &Bernoulli{TreeRate: treeRate, OOBRate: oobRate, rng: rng}
}

// DropTree implements LossModel. The rate>0 guard skips the RNG draw
// entirely on lossless channels, preserving the draw sequence of
// configurations that mix a lossy tree with a lossless OOB channel (or
// vice versa).
func (b *Bernoulli) DropTree(_, _ ident.NodeID) bool {
	return b.TreeRate > 0 && b.rng.Float64() < b.TreeRate
}

// DropOOB implements LossModel.
func (b *Bernoulli) DropOOB(_, _ ident.NodeID) bool {
	return b.OOBRate > 0 && b.rng.Float64() < b.OOBRate
}

// GilbertElliottConfig parameterizes the two-state bursty loss model.
// Each directed endpoint pair runs an independent Markov chain over
// {good, bad}; every transmission first advances the chain one step and
// then draws a loss trial at the current state's drop rate. Bursts of
// consecutive losses have mean length 1/PBadToGood transmissions, and
// the chain spends a PGoodToBad/(PGoodToBad+PBadToGood) fraction of
// transmissions in the bad state.
type GilbertElliottConfig struct {
	// PGoodToBad is the per-transmission probability of entering a burst.
	PGoodToBad float64
	// PBadToGood is the per-transmission probability of a burst ending.
	PBadToGood float64
	// DropGood is the loss rate outside bursts (often 0 or small).
	DropGood float64
	// DropBad is the loss rate inside bursts (often near 1).
	DropBad float64
}

// AvgLoss returns the stationary average loss rate of the chain — use
// it to calibrate a bursty model against a Bernoulli ε for equal-load
// comparisons.
func (c GilbertElliottConfig) AvgLoss() float64 {
	denom := c.PGoodToBad + c.PBadToGood
	if denom <= 0 {
		return c.DropGood
	}
	pBad := c.PGoodToBad / denom
	return pBad*c.DropBad + (1-pBad)*c.DropGood
}

func (c GilbertElliottConfig) validate() error {
	for _, p := range [...]struct {
		name string
		v    float64
	}{
		{"PGoodToBad", c.PGoodToBad}, {"PBadToGood", c.PBadToGood},
		{"DropGood", c.DropGood}, {"DropBad", c.DropBad},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("network: GilbertElliott %s = %v out of [0,1]", p.name, p.v)
		}
	}
	return nil
}

// geChain is one directed pair's Markov chain.
type geChain struct {
	bad bool
	rng *rand.Rand
}

// GilbertElliott is a bursty loss model: independent good/bad Markov
// chains per directed endpoint pair, applied to both tree and OOB
// transmissions (both ride the same physical network).
//
// Determinism: each chain draws from its own RNG stream whose tag is a
// pure function of (from, to), and stream derivation itself is
// order-independent (sim.Kernel.NewStream scrambles seed+tag). Chains
// are created lazily on first use, but creation order cannot influence
// any draw — a pair's loss sequence depends only on that pair's own
// transmission count, never on how transmissions of different pairs
// interleave globally.
type GilbertElliott struct {
	cfg    GilbertElliottConfig
	stream func(tag int64) *rand.Rand
	chains map[[2]ident.NodeID]*geChain
}

var _ LossModel = (*GilbertElliott)(nil)

// NewGilbertElliott builds the model. stream derives deterministic RNG
// streams from tags — pass sim.Kernel.NewStream. Invalid probabilities
// are a wiring bug and panic.
func NewGilbertElliott(cfg GilbertElliottConfig, stream func(tag int64) *rand.Rand) *GilbertElliott {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	if stream == nil {
		panic("network: GilbertElliott needs a stream factory")
	}
	return &GilbertElliott{
		cfg:    cfg,
		stream: stream,
		chains: make(map[[2]ident.NodeID]*geChain),
	}
}

// chainTagBase spells "loss". The (from, to) pair is folded in with
// sim.DeriveSeed's splitmix sponge rather than a linear stride: the
// old base + from*1_000_003 + to scheme walked straight through other
// components' tag ranges (from ≈ 184 already reached the per-publisher
// "work" stream family), silently aliasing loss chains with workload
// arrival streams on large overlays.
const chainTagBase = 0x6c6f7373

func (g *GilbertElliott) chain(from, to ident.NodeID) *geChain {
	key := [2]ident.NodeID{from, to}
	c, ok := g.chains[key]
	if !ok {
		tag := sim.DeriveSeed(chainTagBase, int64(from), int64(to))
		c = &geChain{rng: g.stream(tag)}
		g.chains[key] = c
	}
	return c
}

// drop advances the pair's chain one step and draws the state's loss
// trial. Every transmission consumes exactly two draws from the pair's
// stream, so a pair's k-th transmission always sees the same outcome
// for a given seed.
func (g *GilbertElliott) drop(from, to ident.NodeID) bool {
	c := g.chain(from, to)
	if c.bad {
		if c.rng.Float64() < g.cfg.PBadToGood {
			c.bad = false
		}
	} else if c.rng.Float64() < g.cfg.PGoodToBad {
		c.bad = true
	}
	p := g.cfg.DropGood
	if c.bad {
		p = g.cfg.DropBad
	}
	return c.rng.Float64() < p
}

// DropTree implements LossModel.
func (g *GilbertElliott) DropTree(from, to ident.NodeID) bool { return g.drop(from, to) }

// DropOOB implements LossModel.
func (g *GilbertElliott) DropOOB(from, to ident.NodeID) bool { return g.drop(from, to) }
