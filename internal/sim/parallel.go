package sim

import (
	"fmt"
	"sync"
)

// This file implements conservative intra-run parallelism for the
// kernel: RunParallel executes the same schedule as Run, bit for bit,
// using several OS threads inside one simulation.
//
// The model leans on the physics of the simulated system. Every
// cross-node interaction travels through the network, and the network
// imposes a minimum latency L = min(PropDelay, OOBBaseDelay) on every
// message. Therefore an event at time t on node A cannot influence any
// node B ≠ A before t+L, and all events in the half-open window
// [top, top+L) with distinct node affinities are causally independent
// — except through explicitly shared state (the network's loss
// streams and FIFO queues, metrics, the kernel's own sequence
// counter). The driver exploits the independence and defers the
// shared part:
//
//  1. Pop every event in the window; partition by affinity across
//     shards. Events with the global affinity never enter a window —
//     they run solo between windows, with full sequential semantics.
//  2. Shards execute their events concurrently. A handler's calls
//     that touch shared state — network sends, tracker updates,
//     counters — are not executed but recorded as intents (Proc.Defer
//     and Proc.At inside a window). Same-affinity schedules that land
//     inside the window are executed by the same shard, in (at, seq)
//     order, exactly where the sequential executor would run them.
//  3. At the barrier, a single-threaded commit replays all recorded
//     intents in exact sequential order — events ordered by (at,
//     seq), each event's calls in program order, spawned in-window
//     events entering the replay at the sequence number the
//     sequential kernel would have assigned them. Since every draw
//     from a shared random stream, every FIFO-queue update, and every
//     kernel sequence assignment happens inside the replay, their
//     order — and hence every bit of downstream state — is identical
//     to the sequential run.
//
// The scheme is conservative: it never speculates and never rolls
// back. Its safety conditions are checked, not assumed — a deferred
// schedule landing inside the window it was recorded in (which would
// mean the lookahead was wrong) panics.

// slotGen is a reserved slab slot plus the generation captured at
// reservation time.
type slotGen struct {
	slot int32
	gen  uint64
}

// winEv is one event executed inside a parallel window: its identity
// in the sequential order (at, seq), its handler, and the intents it
// recorded while executing.
type winEv struct {
	at    Time
	seq   uint64 // real seq (window pop) or synthetic (in-window spawn)
	aff   int32
	fn    Handler
	slot  int32 // slab slot to recycle at commit
	calls []intent
}

// intent is one recorded call of a window event, replayed at commit:
// a deferred external (call != nil), an in-window same-affinity spawn
// already executed by the shard (child != nil), or an out-of-window
// schedule (neither).
type intent struct {
	at    Time
	fn    Handler
	call  func()
	child *winEv
	slot  int32
	gen   uint64
}

// shardState is the per-shard execution context of one window.
type shardState struct {
	now    Time
	cur    *winEv
	pq     []*winEv // (at, seq) min-heap; seeded sorted
	spawnN uint64
	slots  []slotGen
	pool   []*winEv // shard-local spawn records; refilled between windows
	_      [24]byte // keep shards off each other's cache lines
}

const spawnSeqBase = uint64(1) << 63

// scheduleIntent records a Proc.At made inside a window. Same-shard
// targets inside the window execute in-shard; everything else is
// committed at the barrier.
func (sh *shardState) scheduleIntent(p *Proc, at Time, fn Handler) Canceler {
	k := p.k
	if sh.cur == nil || p.aff != sh.cur.aff {
		panic("sim: Proc.At from a foreign shard inside a parallel window")
	}
	if at < sh.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, sh.now))
	}
	sg := sh.reserveSlot(k)
	if at < k.windowEnd && at <= k.parUntil {
		child := sh.getWinEv()
		child.at, child.seq, child.aff = at, spawnSeqBase+sh.spawnN, p.aff
		child.fn, child.slot = fn, sg.slot
		sh.spawnN++
		sh.push(child)
		sh.cur.calls = append(sh.cur.calls, intent{child: child, slot: sg.slot})
	} else {
		sh.cur.calls = append(sh.cur.calls, intent{at: at, fn: fn, slot: sg.slot})
	}
	return Canceler{k: k, slot: sg.slot, gen: sg.gen}
}

// deferIntent records a Proc.Defer made inside a window.
func (sh *shardState) deferIntent(p *Proc, fn func()) {
	if sh.cur == nil || p.aff != sh.cur.aff {
		panic("sim: Proc.Defer from a foreign shard inside a parallel window")
	}
	sh.cur.calls = append(sh.cur.calls, intent{call: fn})
}

// reserveSlot hands out a slab slot for an intent's eventual schedule.
// Slots are taken from the kernel free list (or fresh slab growth) in
// batches under the slab mutex; their generations are captured under
// the same lock, and nothing else touches the slab during a window.
func (sh *shardState) reserveSlot(k *Kernel) slotGen {
	if len(sh.slots) == 0 {
		k.slabMu.Lock()
		for i := 0; i < 32; i++ {
			var slot int32
			if n := len(k.free); n > 0 {
				slot = k.free[n-1]
				k.free = k.free[:n-1]
			} else {
				k.slab = append(k.slab, entry{})
				slot = int32(len(k.slab) - 1)
			}
			sh.slots = append(sh.slots, slotGen{slot: slot, gen: k.slab[slot].gen})
		}
		k.slabMu.Unlock()
	}
	sg := sh.slots[len(sh.slots)-1]
	sh.slots = sh.slots[:len(sh.slots)-1]
	return sg
}

// push inserts ev into the shard's (at, seq) min-heap.
func (sh *shardState) push(ev *winEv) {
	sh.pq = append(sh.pq, ev)
	i := len(sh.pq) - 1
	for i > 0 {
		parent := (i - 1) / 2
		p := sh.pq[parent]
		if !evBefore(ev, p) {
			break
		}
		sh.pq[i] = p
		i = parent
	}
	sh.pq[i] = ev
}

// pop removes the minimum event.
func (sh *shardState) pop() *winEv {
	top := sh.pq[0]
	n := len(sh.pq) - 1
	last := sh.pq[n]
	sh.pq = sh.pq[:n]
	if n > 0 {
		i := 0
		for {
			c := 2*i + 1
			if c >= n {
				break
			}
			if c+1 < n && evBefore(sh.pq[c+1], sh.pq[c]) {
				c++
			}
			if !evBefore(sh.pq[c], last) {
				break
			}
			sh.pq[i] = sh.pq[c]
			i = c
		}
		sh.pq[i] = last
	}
	return top
}

func evBefore(a, b *winEv) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// run executes the shard's window partition in (at, seq) order.
func (sh *shardState) run() {
	for len(sh.pq) > 0 {
		ev := sh.pop()
		sh.now = ev.at
		sh.cur = ev
		ev.fn()
	}
	sh.cur = nil
}

// getWinEv pops a shard-local pooled spawn record; shards never touch
// the kernel pool during a window.
func (sh *shardState) getWinEv() *winEv {
	if n := len(sh.pool); n > 0 {
		ev := sh.pool[n-1]
		sh.pool = sh.pool[:n-1]
		return ev
	}
	return &winEv{}
}

// getWinEv pops a pooled window-event record.
func (k *Kernel) getWinEv() *winEv {
	if n := len(k.winPool); n > 0 {
		ev := k.winPool[n-1]
		k.winPool = k.winPool[:n-1]
		return ev
	}
	return &winEv{}
}

func (k *Kernel) putWinEv(ev *winEv) {
	for i := range ev.calls {
		ev.calls[i] = intent{}
	}
	ev.calls = ev.calls[:0]
	ev.fn = nil
	k.winPool = append(k.winPool, ev)
}

// RunParallel executes events up to the horizon like Run, sharding
// node-affinity events across the given number of OS threads inside
// conservative lookahead windows. The result — every metric, every
// random draw, every event sequence number — is bit-identical to
// Run(until) on the same kernel state. lookahead must be a lower
// bound on the virtual-time latency of every cross-node interaction
// (min propagation delay of the network model); shards <= 1 or a
// non-positive lookahead falls back to the sequential executor.
//
// Constraints: handlers must not call Stop or Kernel.Proc during a
// window, and every in-handler touch of cross-node shared state must
// go through Proc.Defer (the network and scenario layers do this);
// cancellations may only happen from global-affinity events.
func (k *Kernel) RunParallel(until Time, shards int, lookahead Time) uint64 {
	if shards <= 1 || lookahead <= 0 {
		return k.Run(until)
	}
	if len(k.shards) != shards {
		k.shards = make([]shardState, shards)
	}
	k.parShards = shards
	k.parUntil = until
	for _, p := range k.procs {
		if p != nil && p.aff >= 0 {
			p.sh = &k.shards[int(p.aff)%shards]
		}
	}
	defer func() {
		// Return unused reserved slots so sequential scheduling after
		// the run (or the next Reset) sees a consistent free list.
		for s := range k.shards {
			sh := &k.shards[s]
			for _, sg := range sh.slots {
				k.free = append(k.free, sg.slot)
			}
			sh.slots = sh.slots[:0]
		}
		k.parShards = 0
	}()

	var n uint64
	k.stopped = false
	for len(k.heap) > 0 && !k.stopped {
		top := k.heap[0]
		if top.at > until {
			break
		}
		if top.aff == GlobalAff {
			// Global events interact with arbitrary state (topology
			// mutations, fault injection): run solo, full sequential
			// semantics.
			next := k.popMin()
			e := &k.slab[next.slot]
			if e.dead {
				k.dead--
				k.recycle(next.slot)
				continue
			}
			k.now = next.at
			fn := e.fn
			k.recycle(next.slot)
			fn()
			n++
			k.processed++
			continue
		}

		// Collect the lookahead window: every node-affinity event in
		// [top.at, top.at+L), stopping early at a global event (it
		// must observe all effects of the events before it and none
		// after).
		wEnd := top.at + lookahead
		count := 0
		for len(k.heap) > 0 {
			nd := k.heap[0]
			if nd.aff == GlobalAff {
				// A pending global event is a barrier: it must see all
				// effects of events ordered before it and none after.
				// In-window spawns at its exact timestamp get commit
				// seqs larger than its, i.e. they are ordered after it
				// — truncate the window so they defer to the heap.
				if nd.at < wEnd {
					wEnd = nd.at
				}
				break
			}
			if nd.at > until || nd.at >= wEnd {
				break
			}
			k.popMin()
			e := &k.slab[nd.slot]
			if e.dead {
				k.dead--
				k.recycle(nd.slot)
				continue
			}
			ev := k.getWinEv()
			ev.at, ev.seq, ev.aff = nd.at, nd.seq, nd.aff
			ev.fn, ev.slot = e.fn, nd.slot
			k.winInit = append(k.winInit, ev)
			sh := &k.shards[int(nd.aff)%shards]
			sh.pq = append(sh.pq, ev) // popped in (at,seq) order: stays a valid heap
			count++
		}
		switch count {
		case 0:
			continue // everything in range was cancelled
		case 1:
			// A 1-event window gains nothing from the barrier: run it
			// with direct sequential semantics.
			ev := k.winInit[0]
			k.winInit = k.winInit[:0]
			for s := range k.shards {
				k.shards[s].pq = k.shards[s].pq[:0]
			}
			k.now = ev.at
			fn := ev.fn
			k.recycle(ev.slot)
			k.putWinEv(ev)
			fn()
			n++
			k.processed++
			continue
		}

		k.windowEnd = wEnd
		k.inWindow = true
		var wg sync.WaitGroup
		for s := range k.shards {
			sh := &k.shards[s]
			if len(sh.pq) == 0 {
				continue
			}
			for len(sh.pool) < 16 {
				n := len(k.winPool)
				if n == 0 {
					break
				}
				sh.pool = append(sh.pool, k.winPool[n-1])
				k.winPool = k.winPool[:n-1]
			}
			wg.Add(1)
			go func(sh *shardState) {
				defer wg.Done()
				sh.run()
			}(sh)
		}
		wg.Wait()
		k.inWindow = false
		n += k.commitWindow()
	}
	if k.now < until && !k.stopped {
		k.now = until
	}
	return n
}

// commitWindow replays the executed window in exact sequential order,
// applying every deferred intent and assigning kernel sequence
// numbers precisely as Run would have.
func (k *Kernel) commitWindow() uint64 {
	var n uint64
	// winInit was filled in pop order — globally (at, seq) sorted — so
	// it is a valid min-heap as-is. Reuse it as the replay queue.
	rp := k.winInit
	pushRp := func(ev *winEv) {
		rp = append(rp, ev)
		i := len(rp) - 1
		for i > 0 {
			parent := (i - 1) / 2
			p := rp[parent]
			if !evBefore(ev, p) {
				break
			}
			rp[i] = p
			i = parent
		}
		rp[i] = ev
	}
	popRp := func() *winEv {
		top := rp[0]
		last := rp[len(rp)-1]
		rp = rp[:len(rp)-1]
		if m := len(rp); m > 0 {
			i := 0
			for {
				c := 2*i + 1
				if c >= m {
					break
				}
				if c+1 < m && evBefore(rp[c+1], rp[c]) {
					c++
				}
				if !evBefore(rp[c], last) {
					break
				}
				rp[i] = rp[c]
				i = c
			}
			rp[i] = last
		}
		return top
	}
	for len(rp) > 0 {
		ev := popRp()
		k.now = ev.at
		k.recycle(ev.slot)
		for i := range ev.calls {
			c := &ev.calls[i]
			switch {
			case c.call != nil:
				c.call()
			case c.child != nil:
				c.child.seq = k.seq
				k.seq++
				pushRp(c.child)
			default:
				if c.at < k.windowEnd && c.at <= k.parUntil {
					panic("sim: lookahead violation — deferred schedule lands inside its own window")
				}
				e := &k.slab[c.slot]
				e.fn, e.sched, e.dead = c.fn, true, false
				nd := heapNode{at: c.at, seq: k.seq, slot: c.slot, aff: ev.aff}
				k.seq++
				k.heap = append(k.heap, nd)
				k.siftUp(len(k.heap)-1, nd)
			}
		}
		n++
		k.processed++
		k.putWinEv(ev)
	}
	k.winInit = k.winInit[:0]
	return n
}
