// Package bench holds the hot-path micro-benchmarks behind cmd/bench.
//
// The benchmarks live in a regular (non-test) package so that the
// cmd/bench harness can execute them with testing.Benchmark and record
// ns/op, allocs/op, and simulated-events/sec into BENCH_hotpath.json —
// the measured trajectory that every PR extends. The same functions are
// exposed as ordinary `go test -bench` benchmarks by the wrappers in
// the repository root's bench_test.go.
package bench

import (
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/matching"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/pubsub"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/wire"
)

// KernelScheduleDispatch measures the kernel's per-event cost on the
// schedule/dispatch path: every executed handler reschedules itself,
// so each benchmark op is exactly one heap push, one heap pop, and one
// handler dispatch over a standing population of timers.
func KernelScheduleDispatch(b *testing.B) {
	const population = 256
	k := sim.New(1)
	rng := k.NewStream(1)
	remaining := b.N
	var tick func()
	tick = func() {
		if remaining <= 0 {
			return
		}
		remaining--
		k.After(sim.Time(rng.Intn(1000))*time.Microsecond, tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < population; i++ {
		k.At(sim.Time(i)*time.Microsecond, tick)
	}
	k.RunAll()
}

// KernelScheduleCancel measures the schedule-then-cancel path: each op
// schedules one timer and cancels it before it fires, the lifecycle of
// every retransmission timeout that is satisfied in time.
func KernelScheduleCancel(b *testing.B) {
	k := sim.New(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := k.After(time.Millisecond, fn)
		c.Cancel()
		if i%1024 == 1023 {
			// Drain the cancelled backlog the way a real run would:
			// virtual time advances past the dead entries.
			k.Run(k.Now() + 2*time.Millisecond)
		}
	}
	k.RunAll()
}

// NetworkSend measures Network.Send with FIFO queueing enabled: the
// per-transmission link-state lookup plus the delivery event. Sends
// cycle over every directed link of a default-shaped tree.
func NetworkSend(b *testing.B) {
	k := sim.New(1)
	topo, err := topology.New(100, 4, k.NewStream(2))
	if err != nil {
		b.Fatal(err)
	}
	cfg := network.DefaultConfig()
	cfg.LossRate = 0 // measure the send path, not the loss path
	nw := network.New(k, topo, cfg, nil)
	for i := 0; i < topo.N(); i++ {
		nw.Register(ident.NodeID(i), nopHandler{})
	}
	links := topo.Links()
	msg := &wire.Event{
		ID:      ident.EventID{Source: 0, Seq: 1},
		Content: matching.Content{0},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := links[i%len(links)]
		if i%2 == 0 {
			nw.Send(l.A, l.B, msg)
		} else {
			nw.Send(l.B, l.A, msg)
		}
		if i%256 == 255 {
			k.RunAll() // drain deliveries so the FES stays small
		}
	}
	k.RunAll()
}

type nopHandler struct{}

func (nopHandler) HandleMessage(ident.NodeID, wire.Message, bool) {}

// MetricsTracker measures the DeliveryTracker pipeline: one publish
// plus eight deliveries per op, and a TimeSeries aggregation at the
// end, amortized over all ops.
func MetricsTracker(b *testing.B) {
	tr := metrics.NewDeliveryTracker(nil)
	ev := &wire.Event{ID: ident.EventID{Source: 0, Seq: 0}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.ID.Seq = uint32(i)
		at := sim.Time(i) * time.Microsecond
		tr.OnPublish(ev.ID, 8, at)
		for d := 0; d < 8; d++ {
			tr.OnDeliver(ident.NodeID(d+1), ev, d%4 == 0)
		}
	}
	pts := tr.TimeSeries(100 * time.Millisecond)
	b.StopTimer()
	if len(pts) == 0 && b.N > 0 {
		b.Fatal("empty time series")
	}
}

// GossipRound measures one quiescent combined-pull gossip round: the
// per-round fixed cost every engine pays every interval T regardless of
// load. With nothing outstanding in the Lost buffer, a round scans the
// local subscription list and the digest indexes and skips; since PR 2
// this path performs zero heap allocations, so the benchmark doubles as
// the steady-state allocation regression check recorded in the
// trajectory file.
func GossipRound(b *testing.B) {
	const n = 25
	k := sim.New(1)
	topo, err := topology.New(n, 4, k.NewStream(2))
	if err != nil {
		b.Fatal(err)
	}
	ncfg := network.DefaultConfig()
	ncfg.LossRate = 0
	ncfg.OOBLossRate = 0
	nw := network.New(k, topo, ncfg, nil)
	pcfg := pubsub.Config{
		RecordRoutes: true,
		OnDeliver:    func(ident.NodeID, *wire.Event, bool) {},
	}
	nodes := make([]*pubsub.Node, n)
	for i := range nodes {
		id := ident.NodeID(i)
		nodes[i] = pubsub.NewNode(id, k, nw, topo.Neighbors(id), pcfg)
	}
	u := matching.Universe{NumPatterns: 100, MaxMatch: 5}
	subRNG := k.NewStream(3)
	subs := make([][]ident.PatternID, n)
	for i := range subs {
		subs[i] = u.RandomSubscriptions(10, subRNG)
	}
	pubsub.InstallStableSubscriptions(topo, nodes, subs)
	engines := make([]*core.Engine, n)
	for i, node := range nodes {
		e, err := core.NewEngine(node, core.DefaultConfig(core.CombinedPull))
		if err != nil {
			b.Fatal(err)
		}
		engines[i] = e
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engines[i%n].RunRound()
	}
}

// DigestBuild measures steady-state digest reads: every view the pull
// gossipers consult each round (full, per-pattern, per-source, and the
// distinct pattern/source lists) plus a push digest from a cached
// EventIDSet, against a populated but unchanging Lost buffer. All views
// are served from incremental indexes and cached snapshots, so the
// steady state allocates nothing.
func DigestBuild(b *testing.B) {
	const patterns, sources, perPair = 8, 8, 4
	lb := core.NewLostBuffer(4096, 10*time.Second)
	now := sim.Time(time.Millisecond)
	for s := 0; s < sources; s++ {
		for p := 0; p < patterns; p++ {
			for q := 1; q <= perPair; q++ {
				lb.Add(wire.LostEntry{
					Source:  ident.NodeID(s),
					Pattern: ident.PatternID(p),
					Seq:     uint32(q),
				}, now)
			}
		}
	}
	set := ident.NewEventIDSet(128)
	for i := 0; i < 128; i++ {
		set.Add(ident.EventID{Source: ident.NodeID(i % 8), Seq: uint32(i)})
	}
	var sink int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += len(lb.All(now))
		sink += len(lb.Patterns(now))
		sink += len(lb.Sources(now))
		sink += len(lb.ForPattern(ident.PatternID(i%patterns), now))
		sink += len(lb.ForSource(ident.NodeID(i%sources), now))
		sink += len(set.Sorted())
	}
	b.StopTimer()
	if sink == 0 && b.N > 0 {
		b.Fatal("empty digests")
	}
}

// LostBuffer measures the mutation path of the Lost buffer: one
// detection (sorted insert into three indexes), one digest read of the
// mutated pattern (snapshot re-clone), and one recovery removal per op,
// over a standing population of entries.
func LostBuffer(b *testing.B) {
	const standing = 512
	lb := core.NewLostBuffer(4096, 10*time.Second)
	now := sim.Time(time.Millisecond)
	entry := func(i int) wire.LostEntry {
		return wire.LostEntry{
			Source:  ident.NodeID(i % 16),
			Pattern: ident.PatternID(i % 32),
			Seq:     uint32(i),
		}
	}
	for i := 0; i < standing; i++ {
		lb.Add(entry(i), now)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := entry(standing + i)
		lb.Add(e, now)
		if len(lb.ForPattern(e.Pattern, now)) == 0 {
			b.Fatal("entry not indexed")
		}
		lb.Remove(entry(i))
	}
}

// EndToEnd measures a full small combined-pull simulation — the
// package's end-to-end hot path — and reports simulated kernel
// events per wall-clock second. Runs go through one scenario.Runner,
// exactly like a sweep worker, so the number reflects the steady-state
// per-simulation cost with run state (kernel slab, engine scratch)
// reused across runs rather than the one-off cold-start cost.
func EndToEnd(b *testing.B) {
	var events uint64
	var runner scenario.Runner
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := scenario.DefaultParams()
		p.Seed = int64(i + 1)
		p.N = 25
		p.Duration = 2 * time.Second
		p.MeasureFrom = 300 * time.Millisecond
		p.MeasureTo = 1500 * time.Millisecond
		p.PublishRate = 15
		p.Algorithm = core.CombinedPull
		p.Gossip = core.DefaultConfig(core.CombinedPull)
		res, err := runner.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		events += res.KernelEvents
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "simevents/s")
	}
}

// Scale10k measures one 10,000-dispatcher subscriber-pull run — the
// large-N regime the paper never reaches. The workload mirrors the
// scenario scale smoke: a spill-heavy 2000-pattern universe (so the
// tiered PatternSet's spill tier is on the hot path), constant
// aggregate publish load, and a relaxed gossip interval. The recorded
// simevents/s is the headline number of the PR that broke the
// 100-node wall; it is dominated by setup (topology, routing tables,
// subscription install) plus steady-state dispatch over 10k nodes.
func Scale10k(b *testing.B) {
	var events uint64
	var runner scenario.Runner
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := scenario.DefaultParams()
		p.Seed = int64(i + 1)
		p.N = 10_000
		p.NumPatterns = 2000
		p.PatternsPerNode = 1
		p.PublishRate = 0.01 // 100 events/s aggregate
		p.Duration = time.Second
		p.MeasureFrom = 100 * time.Millisecond
		p.MeasureTo = 900 * time.Millisecond
		p.Network.LossRate = 0.05
		p.Algorithm = core.SubscriberPull
		p.Gossip = core.DefaultConfig(core.SubscriberPull)
		p.Gossip.GossipInterval = 200 * time.Millisecond
		res, err := runner.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		events += res.KernelEvents
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "simevents/s")
	}
}

// EndToEndChecked is EndToEnd with all five invariant monitors of
// internal/check armed. The delta against EndToEnd is the full price
// of runtime verification; the absence of a delta when the monitors
// are off is pinned separately (BenchmarkHotPathEndToEnd feeds the
// regression gate, and a checked run must not disturb it).
func EndToEndChecked(b *testing.B) {
	var events uint64
	var runner scenario.Runner
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := scenario.DefaultParams()
		p.Seed = int64(i + 1)
		p.N = 25
		p.Duration = 2 * time.Second
		p.MeasureFrom = 300 * time.Millisecond
		p.MeasureTo = 1500 * time.Millisecond
		p.PublishRate = 15
		p.Algorithm = core.CombinedPull
		p.Gossip = core.DefaultConfig(core.CombinedPull)
		p.Check = check.All()
		res, err := runner.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		events += res.KernelEvents
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "simevents/s")
	}
}
