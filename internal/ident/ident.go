// Package ident defines the identifier types shared by every layer of
// the publish-subscribe stack: dispatcher (node) identifiers, pattern
// identifiers, globally unique event identifiers, and the
// per-(source, pattern) sequence tags that enable loss detection in the
// pull-based epidemic algorithms (paper Sec. III-B).
package ident

import (
	"fmt"
	"slices"
)

// NodeID identifies a dispatcher in the overlay network.
//
// NodeIDs are dense: a network of N dispatchers uses IDs 0..N-1, which
// lets hot paths index slices instead of maps.
type NodeID int32

// None is the sentinel for "no node". It is distinct from every valid
// NodeID (valid IDs are non-negative).
const None NodeID = -1

// String implements fmt.Stringer.
func (n NodeID) String() string {
	if n == None {
		return "node(none)"
	}
	return fmt.Sprintf("node(%d)", int32(n))
}

// PatternID identifies an event pattern. In the paper's content model a
// pattern is a single number drawn from the universe [0, Π); an event
// matches a pattern when its content contains that number.
type PatternID int32

// NoPattern is the sentinel for "no pattern".
const NoPattern PatternID = -1

// String implements fmt.Stringer.
func (p PatternID) String() string {
	if p == NoPattern {
		return "pattern(none)"
	}
	return fmt.Sprintf("pattern(%d)", int32(p))
}

// EventID identifies an event globally and uniquely: the pair of the
// source identifier and a sequence number that the source increments on
// every publish (paper Sec. III-B, footnote 3).
type EventID struct {
	Source NodeID
	Seq    uint32
}

// String implements fmt.Stringer.
func (id EventID) String() string {
	return fmt.Sprintf("event(%d:%d)", int32(id.Source), id.Seq)
}

// Less imposes a total order on event IDs (source-major), used only to
// keep encodings and test output deterministic.
func (id EventID) Less(other EventID) bool {
	if id.Source != other.Source {
		return id.Source < other.Source
	}
	return id.Seq < other.Seq
}

// PatternSeq is one element of the extended event identifier required
// by the pull algorithms: the per-(source, pattern) sequence number
// assigned at the source for each pattern the event matches
// (paper Sec. III-B, "Pull"). Seq starts at 1 for the first event a
// source publishes matching the pattern.
type PatternSeq struct {
	Pattern PatternID
	Seq     uint32
}

// String implements fmt.Stringer.
func (ps PatternSeq) String() string {
	return fmt.Sprintf("%v#%d", ps.Pattern, ps.Seq)
}

// EventIDSet is a set of event identifiers. The zero value is ready to
// use with Add via the nil-map-safe methods below only after
// initialization; use NewEventIDSet.
//
// Sorted caches its result between mutations: the push gossiper reads
// the same digest every round, so a set that did not change since the
// last round hands back the cached snapshot without iterating or
// sorting anything.
type EventIDSet struct {
	m    map[EventID]struct{}
	snap []EventID // cached Sorted() result; nil when stale
}

// NewEventIDSet returns an empty set with capacity hint n.
func NewEventIDSet(n int) *EventIDSet {
	return &EventIDSet{m: make(map[EventID]struct{}, n)}
}

// Add inserts id and reports whether it was absent.
func (s *EventIDSet) Add(id EventID) bool {
	if _, ok := s.m[id]; ok {
		return false
	}
	s.m[id] = struct{}{}
	s.snap = nil
	return true
}

// Clear empties the set in place, keeping the map's buckets for reuse.
// Previously returned Sorted snapshots are unaffected.
func (s *EventIDSet) Clear() {
	clear(s.m)
	s.snap = nil
}

// Has reports whether id is in the set.
func (s *EventIDSet) Has(id EventID) bool {
	_, ok := s.m[id]
	return ok
}

// Remove deletes id from the set and reports whether it was present.
func (s *EventIDSet) Remove(id EventID) bool {
	if _, ok := s.m[id]; !ok {
		return false
	}
	delete(s.m, id)
	s.snap = nil
	return true
}

// Len returns the number of elements.
func (s *EventIDSet) Len() int { return len(s.m) }

// Sorted returns the elements in canonical (source-major) order. The
// returned slice is an immutable snapshot shared across calls until the
// next mutation; callers must not modify it.
func (s *EventIDSet) Sorted() []EventID {
	if s.snap == nil {
		out := make([]EventID, 0, len(s.m))
		for id := range s.m {
			out = append(out, id)
		}
		slices.SortFunc(out, func(a, b EventID) int {
			switch {
			case a.Less(b):
				return -1
			case b.Less(a):
				return 1
			default:
				return 0
			}
		})
		s.snap = out
	}
	return s.snap
}
