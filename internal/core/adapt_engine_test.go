package core

import (
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/ident"
	"repro/internal/topology"
	"repro/internal/wire"
)

// adaptiveCfg returns a deterministic config with the closed-loop
// controller enabled.
func adaptiveCfg(a Algorithm) Config {
	cfg := deterministicCfg(a)
	cfg.Adapt = &adapt.Config{}
	return cfg
}

// TestKnobSnapshotConsolidation is the torn-read regression test: every
// probabilistic knob read of a round (and of the gossip handlers that
// run between rounds) must go through the engine's coherent knob
// snapshot, not through scattered Config field reads. Mutating the
// Config copy after construction must therefore change nothing.
func TestKnobSnapshotConsolidation(t *testing.T) {
	topo := topology.NewLine(3)
	subs := [][]ident.PatternID{nil, {5}, {5}}
	r := newRig(t, topo, subs, deterministicCfg(SubscriberPull))

	// The snapshot is seeded from the config at construction.
	for _, e := range r.engines {
		k := e.Knobs()
		if k.PForward != 1 || k.PSource != 0.5 || k.Fanout != 1 || k.Interval != 30*time.Millisecond {
			t.Fatalf("initial knob snapshot %+v does not match config", k)
		}
	}

	// Sabotage the raw config fields. If any hot-path read still went
	// through cfg instead of the snapshot, gossip would be thinned to
	// nothing and the recovery below would fail.
	for _, e := range r.engines {
		e.cfg.PForward = 0
		e.cfg.PSource = 0
	}
	lost := loseOneEvent(r, 1, 2)
	r.run(2 * time.Second)
	if !r.has(2, lost.ID) {
		t.Fatal("recovery failed after mutating cfg fields: a knob read bypassed the per-round snapshot")
	}
}

// TestStaticKnobsNeverMove: without a controller the snapshot installed
// at construction is permanent.
func TestStaticKnobsNeverMove(t *testing.T) {
	topo := topology.NewLine(3)
	subs := [][]ident.PatternID{nil, {5}, {5}}
	r := newRig(t, topo, subs, deterministicCfg(CombinedPull))
	before := r.engines[2].Knobs()
	lost := loseOneEvent(r, 1, 2)
	r.run(2 * time.Second)
	if !r.has(2, lost.ID) {
		t.Fatal("combined pull did not recover")
	}
	if got := r.engines[2].Knobs(); got != before {
		t.Fatalf("static engine's knobs moved: %+v -> %+v", before, got)
	}
	if _, ok := r.engines[2].AdaptStats(); ok {
		t.Fatal("static engine reports adaptive stats")
	}
}

// TestAdaptiveKnobsRefreshAtRoundBoundary: with the controller wired,
// the engine's snapshot always equals the controller's latest output,
// the ticker follows the adapted interval, and the observer sees every
// boundary.
func TestAdaptiveKnobsRefreshAtRoundBoundary(t *testing.T) {
	topo := topology.NewLine(3)
	subs := [][]ident.PatternID{nil, {5}, {5}}
	r := newRig(t, topo, subs, adaptiveCfg(CombinedPull))

	var snaps []adapt.Snapshot
	r.engines[2].SetAdaptObserver(func(s adapt.Snapshot) { snaps = append(snaps, s) })
	r.nodes[0].Publish(content(5), 0)
	r.run(2 * time.Second)

	if len(snaps) == 0 {
		t.Fatal("observer saw no round boundaries")
	}
	last := snaps[len(snaps)-1]
	if got := r.engines[2].Knobs(); got != last.Knobs {
		t.Fatalf("engine knobs %+v != last controller snapshot %+v", got, last.Knobs)
	}
	if got := r.engines[2].GossipInterval(); got != last.Knobs.Interval {
		t.Fatalf("ticker period %v != adapted interval %v", got, last.Knobs.Interval)
	}
}

// TestAdaptiveConvergesToMinimumOverheadWhenCalm is the engine-level
// ε=0 metamorphic pin: with zero loss and zero churn the controller
// relaxes every knob to its cheap bound and never makes a structural
// switch.
func TestAdaptiveConvergesToMinimumOverheadWhenCalm(t *testing.T) {
	topo := topology.NewLine(3)
	subs := [][]ident.PatternID{nil, {5}, {5}}
	r := newRig(t, topo, subs, adaptiveCfg(CombinedPull))

	for i := 0; i < 40; i++ {
		r.nodes[0].Publish(content(5), 0)
		r.run(100 * time.Millisecond)
	}
	norm := adapt.Config{}.Normalized(30 * time.Millisecond)
	for i, e := range r.engines {
		k := e.Knobs()
		if k.Interval != norm.IntervalMax {
			t.Errorf("engine %d: interval %v, want relaxed to %v", i, k.Interval, norm.IntervalMax)
		}
		if k.PForward != norm.PForwardMin {
			t.Errorf("engine %d: PForward %v, want relaxed to %v", i, k.PForward, norm.PForwardMin)
		}
		if k.Fanout != norm.FanoutMin {
			t.Errorf("engine %d: fanout %d, want %d", i, k.Fanout, norm.FanoutMin)
		}
		if k.Walk {
			t.Errorf("engine %d: walk engaged on a calm run", i)
		}
		st, ok := e.AdaptStats()
		if !ok {
			t.Fatalf("engine %d: no adaptive stats", i)
		}
		if st.ModeSwitches != 0 || st.WalkSwitches != 0 {
			t.Errorf("engine %d: structural switches on a calm run: %+v", i, st)
		}
		if st.Loss != 0 {
			t.Errorf("engine %d: loss estimate %v on a lossless run", i, st.Loss)
		}
	}
}

// TestHybridStartsInPushAndRecovers: a hybrid engine in its initial
// push mode still recovers a lost event (push digests + requests).
func TestHybridStartsInPushAndRecovers(t *testing.T) {
	topo := topology.NewLine(3)
	subs := [][]ident.PatternID{nil, {5}, {5}}
	r := newRig(t, topo, subs, adaptiveCfg(Hybrid))
	lost := loseOneEvent(r, 1, 2)
	r.run(2 * time.Second)
	if !r.has(2, lost.ID) {
		t.Fatal("hybrid (push mode) did not recover the event")
	}
	st, ok := r.engines[2].AdaptStats()
	if !ok {
		t.Fatal("hybrid engine reports no adaptive stats")
	}
	if st.PushRounds == 0 {
		t.Fatalf("hybrid never ran a push round: %+v", st)
	}
}

// TestHybridSwitchesToPullUnderSustainedLoss: heavy sustained loss
// pushes the estimate over the high band and the hybrid switches to
// pull-based recovery; once conditions clear it recovers the backlog.
func TestHybridSwitchesToPullUnderSustainedLoss(t *testing.T) {
	topo := topology.NewLine(3)
	subs := [][]ident.PatternID{nil, {5}, {5}}
	r := newRig(t, topo, subs, adaptiveCfg(Hybrid))

	// Publish a warm-up event, then a long lossy burst: the link 1-2 is
	// silently broken so node 2 misses everything, and the gap detection
	// after restore floods the loss estimate.
	r.nodes[0].Publish(content(5), 0)
	r.run(100 * time.Millisecond)
	r.breakLink(1, 2)
	var lost []ident.EventID
	for i := 0; i < 20; i++ {
		lost = append(lost, r.nodes[0].Publish(content(5), 0).ID)
		r.run(30 * time.Millisecond)
	}
	r.restoreLink(1, 2)
	r.nodes[0].Publish(content(5), 0)
	r.run(4 * time.Second)

	for _, id := range lost {
		if !r.has(2, id) {
			t.Fatalf("hybrid did not recover lost event %v", id)
		}
	}
	st, _ := r.engines[2].AdaptStats()
	if st.ModeSwitches == 0 {
		t.Fatalf("hybrid never switched modes under sustained loss: %+v", st)
	}
	if st.PullRounds == 0 {
		t.Fatalf("hybrid never ran a pull round: %+v", st)
	}
}

// TestConfigHybridDefaultsAdapt: normalizing a Hybrid config without an
// Adapt block fills in the default controller config.
func TestConfigHybridDefaultsAdapt(t *testing.T) {
	cfg, err := Config{Algorithm: Hybrid}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Adapt == nil {
		t.Fatal("hybrid config normalized without an Adapt block")
	}
	if !Hybrid.NeedsSeqTags() || !Hybrid.NeedsRoutes() {
		t.Fatal("hybrid must need seq tags and routes (it runs both push and combined pull)")
	}
}

// TestConfigRejectsAdaptWithLegacyAdaptive: the two adaptation
// extensions are mutually exclusive.
func TestConfigRejectsAdaptWithLegacyAdaptive(t *testing.T) {
	cfg := DefaultConfig(CombinedPull)
	cfg.Adapt = &adapt.Config{}
	cfg.Adaptive = &AdaptiveConfig{Min: 10 * time.Millisecond, Max: 120 * time.Millisecond, ShrinkFactor: 0.7, GrowFactor: 1.3}
	if _, err := cfg.Normalize(); err == nil {
		t.Fatal("Adapt + legacy Adaptive accepted")
	}
}

// TestConfigRejectsInvalidAdapt: validation runs on the normalized
// controller config.
func TestConfigRejectsInvalidAdapt(t *testing.T) {
	cfg := DefaultConfig(CombinedPull)
	cfg.Adapt = &adapt.Config{Shrink: 1.5}
	if _, err := cfg.Normalize(); err == nil {
		t.Fatal("invalid Adapt config accepted")
	}
}

// TestHybridPullModeDampsPushFlood: mode discipline applies to
// propagation, not consumption. A hybrid engine that has switched to
// pull still harvests received push digests, but must not re-forward
// them — on cyclic overlays the un-deduplicated digest flood is
// self-sustaining, and storms launched before a mode switch would
// otherwise outlive it.
func TestHybridPullModeDampsPushFlood(t *testing.T) {
	topo := topology.NewLine(3)
	subs := [][]ident.PatternID{nil, {5}, {5}}
	r := newRig(t, topo, subs, adaptiveCfg(Hybrid))

	ev := r.nodes[0].Publish(content(5), 0)
	r.run(60 * time.Millisecond)

	// Push mode: a received digest is forwarded onward.
	digest := &wire.GossipPush{Gossiper: ident32(0), Pattern: 5, Digest: []ident.EventID{ev.ID}}
	before := r.net.Sent()
	r.engines[1].HandleRecovery(ident32(0), digest, false)
	if r.net.Sent() == before {
		t.Fatal("push-mode engine did not forward a received push digest")
	}

	// Drive node 1's controller into pull mode: break the upstream link
	// so it misses a burst, then restore it — the seqno-gap flood pushes
	// the loss estimate over the band.
	r.breakLink(0, 1)
	for i := 0; i < 20; i++ {
		r.nodes[0].Publish(content(5), 0)
		r.run(30 * time.Millisecond)
	}
	r.restoreLink(0, 1)
	r.nodes[0].Publish(content(5), 0)
	r.run(2 * time.Second)
	st, ok := r.engines[1].AdaptStats()
	if !ok || st.Mode != adapt.ModePull {
		t.Fatalf("engine 1 mode = %v, want pull after the lossy burst", st.Mode)
	}

	// Pull mode: the same digest is consumed but not re-forwarded.
	before = r.net.Sent()
	r.engines[1].HandleRecovery(ident32(0), digest, false)
	if got := r.net.Sent(); got != before {
		t.Fatalf("pull-mode engine amplified a push digest (%d sends)", got-before)
	}
}

// TestWalkModeDampsSubPullFlood: the walk degradation's counterpart to
// the hybrid pull-mode push damper. A node whose controller has fallen
// back to random walks considers the routing state stale; it must
// serve what it can from a routed sub-pull digest but not re-forward
// it — on cyclic overlays the un-deduplicated digest flood is
// self-sustaining and walk-mode nodes are the ones watching it fail.
func TestWalkModeDampsSubPullFlood(t *testing.T) {
	topo := topology.NewLine(3)
	subs := [][]ident.PatternID{nil, {5}, {5}}
	r := newRig(t, topo, subs, adaptiveCfg(CombinedPull))

	// Routed mode: an unservable digest is forwarded onward.
	digest := &wire.GossipSubPull{Gossiper: ident32(0), Pattern: 5,
		Wanted: []wire.LostEntry{{Source: ident32(7), Pattern: 5, Seq: 99}}}
	before := r.net.Sent()
	r.engines[1].HandleRecovery(ident32(0), digest, false)
	if r.net.Sent() == before {
		t.Fatal("routed-mode engine did not forward an unservable sub-pull digest")
	}

	// Give node 1 detected losses it cannot recover: miss a burst while
	// cut off, let one later event through so the seqno gap is detected,
	// then isolate it again. The stall streak engages the walk
	// degradation.
	r.nodes[0].Publish(content(5), 0)
	r.run(100 * time.Millisecond)
	r.breakLink(0, 1)
	for i := 0; i < 5; i++ {
		r.nodes[0].Publish(content(5), 0)
		r.run(10 * time.Millisecond)
	}
	r.restoreLink(0, 1)
	r.breakLink(1, 2)
	r.nodes[0].Publish(content(5), 0)
	r.run(5 * time.Millisecond)
	r.breakLink(0, 1)
	r.run(1500 * time.Millisecond)
	st, ok := r.engines[1].AdaptStats()
	if !ok || st.WalkSwitches%2 != 1 {
		t.Fatalf("engine 1 walk switches = %d, want walk engaged after the stall", st.WalkSwitches)
	}
	r.restoreLink(0, 1)
	r.restoreLink(1, 2)

	// Walk mode: the same digest is served (nothing to serve here) but
	// not re-forwarded.
	before = r.net.Sent()
	r.engines[1].HandleRecovery(ident32(0), digest, false)
	if got := r.net.Sent(); got != before {
		t.Fatalf("walk-mode engine amplified a sub-pull digest (%d sends)", got-before)
	}
}
