package network

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// TestBurstGilbertElliottDeterministic: two models over equal-seeded
// kernels must produce identical per-pair loss sequences regardless of
// how transmissions of different pairs interleave.
func TestBurstGilbertElliottDeterministic(t *testing.T) {
	cfg := GilbertElliottConfig{PGoodToBad: 0.1, PBadToGood: 0.3, DropGood: 0.02, DropBad: 0.95}
	g1 := NewGilbertElliott(cfg, sim.New(42).NewStream)
	g2 := NewGilbertElliott(cfg, sim.New(42).NewStream)

	// g1 sees pair (1,2) interleaved with heavy (3,4) traffic; g2 sees
	// (1,2) alone. The (1,2) sequences must match exactly.
	var seq1, seq2 []bool
	for i := 0; i < 500; i++ {
		seq1 = append(seq1, g1.DropTree(1, 2))
		g1.DropTree(3, 4)
		g1.DropOOB(4, 3)
	}
	for i := 0; i < 500; i++ {
		seq2 = append(seq2, g2.DropTree(1, 2))
	}
	for i := range seq1 {
		if seq1[i] != seq2[i] {
			t.Fatalf("pair (1,2) loss sequence diverged at transmission %d: interleaving leaked between chains", i)
		}
	}
}

// TestBurstGilbertElliottClusters checks the model actually produces
// bursts: with near-certain drops in the bad state, losses must arrive
// in runs whose mean length is close to 1/PBadToGood, far above the
// Bernoulli expectation at the same average rate.
func TestBurstGilbertElliottClusters(t *testing.T) {
	cfg := GilbertElliottConfig{PGoodToBad: 0.02, PBadToGood: 0.25, DropGood: 0, DropBad: 1}
	g := NewGilbertElliott(cfg, sim.New(7).NewStream)

	const n = 200000
	drops, bursts := 0, 0
	inBurst := false
	for i := 0; i < n; i++ {
		if g.DropTree(0, 1) {
			drops++
			if !inBurst {
				bursts++
				inBurst = true
			}
		} else {
			inBurst = false
		}
	}
	if bursts == 0 {
		t.Fatal("no losses at all")
	}
	meanBurst := float64(drops) / float64(bursts)
	// Expected mean burst length is 1/PBadToGood = 4 transmissions.
	if meanBurst < 2.5 {
		t.Errorf("mean burst length %.2f: losses are not clustered", meanBurst)
	}
	avg := float64(drops) / float64(n)
	if want := cfg.AvgLoss(); math.Abs(avg-want) > 0.015 {
		t.Errorf("empirical loss rate %.4f, stationary prediction %.4f", avg, want)
	}
}

func TestBurstAvgLossCalibration(t *testing.T) {
	cfg := GilbertElliottConfig{PGoodToBad: 0.05, PBadToGood: 0.45, DropGood: 0, DropBad: 1}
	if got := cfg.AvgLoss(); math.Abs(got-0.1) > 0.001 {
		t.Errorf("AvgLoss() = %v, want 0.1", got)
	}
	flat := GilbertElliottConfig{DropGood: 0.3}
	if got := flat.AvgLoss(); got != 0.3 {
		t.Errorf("degenerate chain AvgLoss() = %v, want DropGood", got)
	}
}

func TestBurstGilbertElliottValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range probability did not panic")
		}
	}()
	NewGilbertElliott(GilbertElliottConfig{PGoodToBad: 1.5}, sim.New(1).NewStream)
}

// TestBernoulliGuardSkipsDraw pins the compatibility property the
// golden test relies on: a zero rate must not consume an RNG draw, so
// mixed lossy/lossless configurations keep the historical sequence.
func TestBernoulliGuardSkipsDraw(t *testing.T) {
	k := sim.New(5)
	rng := k.NewStream(1)
	ref := k.NewStream(1)
	b := NewBernoulli(0, 0.5, rng)
	for i := 0; i < 100; i++ {
		b.DropTree(0, 1) // rate 0: must not draw
		b.DropOOB(0, 1)  // rate 0.5: draws once
		ref.Float64()
	}
	if rng.Float64() != ref.Float64() {
		t.Fatal("zero-rate trial consumed an RNG draw")
	}
}
