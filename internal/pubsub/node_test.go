package pubsub

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/ident"
	"repro/internal/matching"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/wire"
)

// rig is a complete miniature dispatching network for tests.
type rig struct {
	k     *sim.Kernel
	topo  *topology.Tree
	net   *network.Network
	nodes []*Node

	deliveries map[ident.NodeID][]*wire.Event
	recovered  map[ident.NodeID]int
}

func newRig(t *testing.T, topo *topology.Tree, cfg Config) *rig {
	t.Helper()
	r := &rig{
		k:          sim.New(7),
		topo:       topo,
		deliveries: make(map[ident.NodeID][]*wire.Event),
		recovered:  make(map[ident.NodeID]int),
	}
	ncfg := network.DefaultConfig()
	ncfg.LossRate = 0
	ncfg.OOBLossRate = 0
	r.net = network.New(r.k, topo, ncfg, nil)
	cfg.OnDeliver = func(node ident.NodeID, ev *wire.Event, recovered bool) {
		r.deliveries[node] = append(r.deliveries[node], ev)
		if recovered {
			r.recovered[node]++
		}
	}
	for i := 0; i < topo.N(); i++ {
		id := ident.NodeID(i)
		r.nodes = append(r.nodes, NewNode(id, r.k, r.net, topo.Neighbors(id), cfg))
	}
	return r
}

func (r *rig) run() { r.k.Run(r.k.Now() + 5*time.Second) }

func TestPublishReachesExactlyMatchingSubscribers(t *testing.T) {
	// Line 0-1-2-3-4. Node 0 publishes; 2 and 4 subscribe pattern 5,
	// node 1 subscribes pattern 9.
	topo := topology.NewLine(5)
	r := newRig(t, topo, Config{})
	subs := [][]ident.PatternID{nil, {9}, {5}, nil, {5}}
	InstallStableSubscriptions(topo, r.nodes, subs)

	ev := r.nodes[0].Publish(matching.Content{5}, 0)
	r.run()

	for node, want := range map[ident.NodeID]int{0: 0, 1: 0, 2: 1, 3: 0, 4: 1} {
		if got := len(r.deliveries[node]); got != want {
			t.Errorf("node %v got %d deliveries, want %d", node, got, want)
		}
	}
	if got := r.deliveries[2][0].ID; got != ev.ID {
		t.Fatalf("node 2 delivered %v, want %v", got, ev.ID)
	}
}

func TestPublisherSelfDelivery(t *testing.T) {
	topo := topology.NewLine(2)
	r := newRig(t, topo, Config{})
	InstallStableSubscriptions(topo, r.nodes, [][]ident.PatternID{{5}, nil})
	r.nodes[0].Publish(matching.Content{5}, 0)
	r.run()
	if got := len(r.deliveries[0]); got != 1 {
		t.Fatalf("publisher-subscriber got %d local deliveries, want 1", got)
	}
	if got := len(r.deliveries[1]); got != 0 {
		t.Fatalf("non-subscriber got %d deliveries, want 0", got)
	}
}

func TestSequenceTagsPerSourceAndPattern(t *testing.T) {
	topo := topology.NewLine(3)
	r := newRig(t, topo, Config{})
	InstallStableSubscriptions(topo, r.nodes, [][]ident.PatternID{nil, {3}, {7}})

	e1 := r.nodes[0].Publish(matching.Content{3, 7}, 0)
	e2 := r.nodes[0].Publish(matching.Content{3}, 0)
	e3 := r.nodes[0].Publish(matching.Content{3, 7}, 0)
	r.run()

	check := func(ev *wire.Event, p ident.PatternID, want uint32) {
		t.Helper()
		seq, ok := ev.SeqFor(p)
		if !ok {
			t.Fatalf("event %v missing tag for %v", ev.ID, p)
		}
		if seq != want {
			t.Fatalf("event %v tag %v = %d, want %d", ev.ID, p, seq, want)
		}
	}
	check(e1, 3, 1)
	check(e1, 7, 1)
	check(e2, 3, 2)
	check(e3, 3, 3)
	check(e3, 7, 2)
	if _, ok := e2.SeqFor(7); ok {
		t.Fatal("event without pattern 7 in content has a tag for it")
	}
	// Patterns nobody subscribes to are not stamped.
	e4 := r.nodes[0].Publish(matching.Content{50}, 0)
	if len(e4.Tags) != 0 {
		t.Fatalf("unsubscribed pattern stamped: %v", e4.Tags)
	}
}

func TestRouteRecording(t *testing.T) {
	topo := topology.NewLine(4)
	r := newRig(t, topo, Config{RecordRoutes: true})
	InstallStableSubscriptions(topo, r.nodes, [][]ident.PatternID{nil, nil, nil, {1}})
	r.nodes[0].Publish(matching.Content{1}, 0)
	r.run()
	evs := r.deliveries[3]
	if len(evs) != 1 {
		t.Fatalf("node 3 got %d deliveries, want 1", len(evs))
	}
	want := []ident.NodeID{0, 1, 2}
	if !reflect.DeepEqual(evs[0].Route, want) {
		t.Fatalf("route = %v, want %v", evs[0].Route, want)
	}
}

func TestNoRouteRecordingByDefault(t *testing.T) {
	topo := topology.NewLine(3)
	r := newRig(t, topo, Config{})
	InstallStableSubscriptions(topo, r.nodes, [][]ident.PatternID{nil, nil, {1}})
	r.nodes[0].Publish(matching.Content{1}, 0)
	r.run()
	if got := r.deliveries[2][0].Route; len(got) != 0 {
		t.Fatalf("route = %v, want empty", got)
	}
}

func TestDeliverRecovered(t *testing.T) {
	topo := topology.NewLine(2)
	r := newRig(t, topo, Config{})
	InstallStableSubscriptions(topo, r.nodes, [][]ident.PatternID{nil, {5}})
	ev := &wire.Event{
		ID:      ident.EventID{Source: 0, Seq: 1},
		Content: matching.Content{5},
	}
	if !r.nodes[1].DeliverRecovered(ev) {
		t.Fatal("first recovery delivery rejected")
	}
	if r.nodes[1].DeliverRecovered(ev) {
		t.Fatal("duplicate recovery delivery accepted")
	}
	if r.recovered[1] != 1 {
		t.Fatalf("recovered count = %d, want 1", r.recovered[1])
	}
	// Non-matching events are rejected.
	other := &wire.Event{ID: ident.EventID{Source: 0, Seq: 2}, Content: matching.Content{9}}
	if r.nodes[1].DeliverRecovered(other) {
		t.Fatal("non-matching recovery delivery accepted")
	}
}

func TestOriginalAfterRecoveredIsDuplicate(t *testing.T) {
	topo := topology.NewLine(2)
	r := newRig(t, topo, Config{})
	InstallStableSubscriptions(topo, r.nodes, [][]ident.PatternID{nil, {5}})
	ev := r.nodes[0].Publish(matching.Content{5}, 0)
	// Recovery wins the race; the routed original must not double count.
	r.nodes[1].DeliverRecovered(ev)
	r.run()
	if got := len(r.deliveries[1]); got != 1 {
		t.Fatalf("node 1 got %d deliveries, want 1", got)
	}
}

// tables captures the full routing state of a rig for comparison.
func tables(nodes []*Node) []map[ident.PatternID][]ident.NodeID {
	out := make([]map[ident.PatternID][]ident.NodeID, len(nodes))
	for i, n := range nodes {
		m := make(map[ident.PatternID][]ident.NodeID)
		for _, p := range n.KnownPatterns() {
			dirs := append([]ident.NodeID(nil), n.InterestDirections(p)...)
			sort.Slice(dirs, func(a, b int) bool { return dirs[a] < dirs[b] })
			if len(dirs) > 0 {
				m[p] = dirs
			}
		}
		out[i] = m
	}
	return out
}

// TestSubscriptionForwardingConvergesToStableState is the key routing
// property test: propagating subscriptions with messages converges to
// exactly the tables that InstallStableSubscriptions computes directly.
func TestSubscriptionForwardingConvergesToStableState(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		topo, err := topology.New(n, 4, rng)
		if err != nil {
			return false
		}
		u := matching.Universe{NumPatterns: 10, MaxMatch: 3}
		subs := make([][]ident.PatternID, n)
		for i := range subs {
			if rng.Intn(2) == 0 {
				subs[i] = u.RandomSubscriptions(1+rng.Intn(3), rng)
			}
		}
		// Rig A: instantaneous setup.
		ra := newRig(t, topo, Config{})
		InstallStableSubscriptions(topo, ra.nodes, subs)
		// Rig B: message-driven subscription forwarding.
		rb := newRig(t, topo, Config{})
		for i, ps := range subs {
			for _, p := range ps {
				rb.nodes[i].Subscribe(p)
			}
		}
		rb.run()
		return reflect.DeepEqual(tables(ra.nodes), tables(rb.nodes))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestRoutingExactnessProperty: on reliable links, every published
// event reaches exactly its matching subscribers, exactly once each —
// regardless of topology shape and subscription placement.
func TestRoutingExactnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		topo, err := topology.New(n, 4, rng)
		if err != nil {
			return false
		}
		u := matching.Universe{NumPatterns: 12, MaxMatch: 3}
		subs := make([][]ident.PatternID, n)
		for i := range subs {
			if rng.Intn(3) > 0 {
				subs[i] = u.RandomSubscriptions(1+rng.Intn(3), rng)
			}
		}
		r := newRig(t, topo, Config{})
		InstallStableSubscriptions(topo, r.nodes, subs)

		type pub struct {
			ev      *wire.Event
			from    int
			content matching.Content
		}
		var pubs []pub
		for i := 0; i < 10; i++ {
			from := rng.Intn(n)
			content := u.RandomContent(rng)
			ev := r.nodes[from].Publish(content, 0)
			pubs = append(pubs, pub{ev: ev, from: from, content: content})
		}
		r.run()

		for _, pb := range pubs {
			for i := 0; i < n; i++ {
				matches := matching.NewInterest(subs[i]).Matches(pb.content)
				var got int
				for _, ev := range r.deliveries[ident.NodeID(i)] {
					if ev.ID == pb.ev.ID {
						got++
					}
				}
				want := 0
				if matches {
					want = 1
				}
				if got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestUnsubscribeFlushesRoutes(t *testing.T) {
	topo := topology.NewLine(4)
	r := newRig(t, topo, Config{})
	r.nodes[3].Subscribe(5)
	r.run()
	if dirs := r.nodes[0].InterestDirections(5); len(dirs) != 1 {
		t.Fatalf("node 0 has %d directions for 5, want 1", len(dirs))
	}
	r.nodes[3].Unsubscribe(5)
	r.run()
	for i, n := range r.nodes {
		if len(n.InterestDirections(5)) != 0 {
			t.Fatalf("node %d still routes pattern 5 after unsubscribe", i)
		}
	}
	// Events published now reach nobody.
	r.nodes[0].Publish(matching.Content{5}, 0)
	r.run()
	if len(r.deliveries[3]) != 0 {
		t.Fatal("event delivered after unsubscribe")
	}
}

func TestDuplicateSubscribeSuppressed(t *testing.T) {
	topo := topology.NewLine(3)
	r := newRig(t, topo, Config{})
	r.nodes[0].Subscribe(5)
	r.nodes[0].Subscribe(5) // duplicate: no extra traffic
	r.run()
	sent := r.net.Sent()
	// One Subscribe 0→1 and one 1→2.
	if sent != 2 {
		t.Fatalf("network carried %d messages, want 2", sent)
	}
}

// TestReconfigurationRepairConvergesToFreshState: break a link, repair
// with a replacement, let the flush and re-advertisement waves settle,
// and compare the routing state against a freshly installed one on the
// new topology.
func TestReconfigurationRepairConvergesToFreshState(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(25)
		topo, err := topology.New(n, 4, rng)
		if err != nil {
			return false
		}
		u := matching.Universe{NumPatterns: 8, MaxMatch: 3}
		subs := make([][]ident.PatternID, n)
		for i := range subs {
			if rng.Intn(2) == 0 {
				subs[i] = u.RandomSubscriptions(1+rng.Intn(2), rng)
			}
		}
		r := newRig(t, topo, Config{})
		InstallStableSubscriptions(topo, r.nodes, subs)

		for step := 0; step < int(steps%4)+1; step++ {
			broken := topo.RandomLink(rng)
			if err := topo.RemoveLink(broken.A, broken.B); err != nil {
				return false
			}
			r.nodes[broken.A].OnLinkDown(broken.B)
			r.nodes[broken.B].OnLinkDown(broken.A)
			r.run() // let the flush wave settle
			repl, err := topo.ReplacementLink(broken, rng)
			if err != nil {
				return false
			}
			if err := topo.AddLink(repl.A, repl.B); err != nil {
				return false
			}
			r.nodes[repl.A].OnLinkUp(repl.B)
			r.nodes[repl.B].OnLinkUp(repl.A)
			r.run() // let the re-advertisement wave settle
		}

		// Fresh reference state on the final topology.
		ref := newRig(t, topo, Config{})
		InstallStableSubscriptions(topo, ref.nodes, subs)
		return reflect.DeepEqual(tables(ref.nodes), tables(r.nodes))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRoutingAfterRepairDeliversEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	topo, err := topology.New(20, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	subs := make([][]ident.PatternID, 20)
	subs[7] = []ident.PatternID{1}
	subs[13] = []ident.PatternID{1}
	r := newRig(t, topo, Config{})
	InstallStableSubscriptions(topo, r.nodes, subs)

	broken := topo.RandomLink(rng)
	if err := topo.RemoveLink(broken.A, broken.B); err != nil {
		t.Fatal(err)
	}
	r.nodes[broken.A].OnLinkDown(broken.B)
	r.nodes[broken.B].OnLinkDown(broken.A)
	repl, err := topo.ReplacementLink(broken, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.AddLink(repl.A, repl.B); err != nil {
		t.Fatal(err)
	}
	r.nodes[repl.A].OnLinkUp(repl.B)
	r.nodes[repl.B].OnLinkUp(repl.A)
	r.run()

	for i := 0; i < 20; i++ {
		r.nodes[i].Publish(matching.Content{1}, 0)
	}
	r.run()
	// Subscribers 7 and 13 must each see all 20 events (including their
	// own publications, which match locally).
	for _, s := range []ident.NodeID{7, 13} {
		if got := len(r.deliveries[s]); got != 20 {
			t.Fatalf("subscriber %v got %d events after repair, want 20", s, got)
		}
	}
}

func TestKnownPatternsUnion(t *testing.T) {
	topo := topology.NewLine(3)
	r := newRig(t, topo, Config{})
	r.nodes[0].Subscribe(9)
	r.nodes[2].Subscribe(3)
	r.run()
	got := r.nodes[1].KnownPatterns()
	want := []ident.PatternID{3, 9}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("node 1 KnownPatterns = %v, want %v", got, want)
	}
	// Node 0 knows its own 9 plus 3 from node 2.
	got = r.nodes[0].KnownPatterns()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("node 0 KnownPatterns = %v, want %v", got, want)
	}
}

func TestLocalPatternsSorted(t *testing.T) {
	topo := topology.NewLine(2)
	r := newRig(t, topo, Config{})
	for _, p := range []ident.PatternID{9, 3, 7, 1} {
		r.nodes[0].Subscribe(p)
	}
	got := r.nodes[0].LocalPatterns()
	want := []ident.PatternID{1, 3, 7, 9}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("LocalPatterns = %v, want %v", got, want)
	}
	r.nodes[0].Unsubscribe(7)
	want = []ident.PatternID{1, 3, 9}
	if got := r.nodes[0].LocalPatterns(); !reflect.DeepEqual(got, want) {
		t.Fatalf("LocalPatterns after unsubscribe = %v, want %v", got, want)
	}
}

func BenchmarkPublishRouting(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	topo, err := topology.New(100, 4, rng)
	if err != nil {
		b.Fatal(err)
	}
	k := sim.New(7)
	ncfg := network.DefaultConfig()
	ncfg.LossRate = 0
	net := network.New(k, topo, ncfg, nil)
	u := matching.DefaultUniverse()
	nodes := make([]*Node, 100)
	subs := make([][]ident.PatternID, 100)
	for i := range nodes {
		nodes[i] = NewNode(ident.NodeID(i), k, net, topo.Neighbors(ident.NodeID(i)), Config{})
		subs[i] = u.RandomSubscriptions(2, rng)
	}
	InstallStableSubscriptions(topo, nodes, subs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nodes[i%100].Publish(u.RandomContent(rng), 0)
		if k.Pending() > 4096 {
			k.RunAll()
		}
	}
	k.RunAll()
}

// ringTopo builds the cycle 0-1-…-(n-1)-0 under a cyclic overlay kind.
func ringTopo(t *testing.T, n int) *topology.Tree {
	t.Helper()
	links := make([]topology.Link, n)
	for i := 0; i < n; i++ {
		links[i] = topology.Link{A: ident.NodeID(i), B: ident.NodeID((i + 1) % n)}
	}
	topo, err := topology.NewUnchecked(topology.KindSmallWorld, n, 3, links)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestDedupForwardTerminatesFloodOnRing(t *testing.T) {
	// On a cycle the subscription advertisements reach every node from
	// both directions, so a publish floods both ways around the ring.
	// Without first-arrival dedup the copies would orbit forever; with
	// DedupForward the flood terminates and every subscriber delivers
	// exactly once.
	topo := ringTopo(t, 6)
	r := newRig(t, topo, Config{DedupForward: true})
	for _, sub := range []int{2, 4} {
		r.nodes[sub].Subscribe(5)
	}
	r.run() // let the advertisements settle

	ev := r.nodes[0].Publish(matching.Content{5}, 0)
	r.run()

	for node, want := range map[ident.NodeID]int{0: 0, 1: 0, 2: 1, 3: 0, 4: 1, 5: 0} {
		if got := len(r.deliveries[node]); got != want {
			t.Errorf("node %v got %d deliveries, want %d", node, got, want)
		}
	}
	if len(r.deliveries[2]) > 0 && r.deliveries[2][0].ID != ev.ID {
		t.Fatalf("node 2 delivered %v, want %v", r.deliveries[2][0].ID, ev.ID)
	}
	// Every dispatcher recorded the event exactly once: the flood died
	// out instead of orbiting.
	for _, nd := range r.nodes {
		if !nd.HasReceived(ev.ID) {
			t.Errorf("node %v never saw the event", nd.ID())
		}
	}
}

func TestDedupForwardOffKeepsTreeBehavior(t *testing.T) {
	// The flag must not change tree-path behavior: pure forwarders do
	// not record events they relay.
	topo := topology.NewLine(3)
	r := newRig(t, topo, Config{})
	subs := [][]ident.PatternID{nil, nil, {5}}
	InstallStableSubscriptions(topo, r.nodes, subs)
	ev := r.nodes[0].Publish(matching.Content{5}, 0)
	r.run()
	if len(r.deliveries[2]) != 1 {
		t.Fatalf("node 2 got %d deliveries, want 1", len(r.deliveries[2]))
	}
	if r.nodes[1].HasReceived(ev.ID) {
		t.Error("relay node recorded the event with DedupForward off")
	}
}
