package ident

import "math/bits"

// PatternSetCap is the largest pattern universe a PatternSet can hold:
// patterns 0 .. PatternSetCap-1. The paper's content model fixes
// Π = 70 patterns (Sec. IV-A), so the whole universe fits in two
// machine words with room to spare; packages that accept arbitrary
// PatternIDs keep a map fallback for out-of-range identifiers.
const PatternSetCap = 128

// PatternSet is a fixed-size bitset over the pattern universe
// [0, PatternSetCap). It is two machine words, passed and compared by
// value, which makes subscription matching and digest candidate
// selection branch-free: membership is one shift and mask, set algebra
// is two bitwise ops, and iteration ascends in pattern order — the
// same order a sorted []PatternID slice yields, so replacing sorted
// slices with bitset iteration cannot change any deterministic trace.
//
// The zero value is the empty set.
type PatternSet [2]uint64

// PatternInSetRange reports whether p can be represented in a
// PatternSet.
func PatternInSetRange(p PatternID) bool {
	return uint32(p) < PatternSetCap
}

// Add inserts p and reports whether it was stored; p outside
// [0, PatternSetCap) is not representable and Add returns false
// without modifying the set. Callers that admit arbitrary pattern
// identifiers must check the result and fall back to a map.
func (s *PatternSet) Add(p PatternID) bool {
	u := uint32(p)
	if u >= PatternSetCap {
		return false
	}
	s[u>>6] |= 1 << (u & 63)
	return true
}

// Remove deletes p from the set. Out-of-range identifiers are a no-op
// (they can never have been stored).
func (s *PatternSet) Remove(p PatternID) {
	u := uint32(p)
	if u >= PatternSetCap {
		return
	}
	s[u>>6] &^= 1 << (u & 63)
}

// Has reports whether p is in the set. Out-of-range identifiers are
// never members.
func (s PatternSet) Has(p PatternID) bool {
	u := uint32(p)
	return u < PatternSetCap && s[u>>6]&(1<<(u&63)) != 0
}

// Union returns s ∪ o.
func (s PatternSet) Union(o PatternSet) PatternSet {
	return PatternSet{s[0] | o[0], s[1] | o[1]}
}

// Intersect returns s ∩ o.
func (s PatternSet) Intersect(o PatternSet) PatternSet {
	return PatternSet{s[0] & o[0], s[1] & o[1]}
}

// Intersects reports whether s and o share at least one pattern.
func (s PatternSet) Intersects(o PatternSet) bool {
	return s[0]&o[0] != 0 || s[1]&o[1] != 0
}

// Empty reports whether the set has no elements.
func (s PatternSet) Empty() bool { return s[0] == 0 && s[1] == 0 }

// Len returns the number of patterns in the set.
func (s PatternSet) Len() int {
	return bits.OnesCount64(s[0]) + bits.OnesCount64(s[1])
}

// AppendTo appends the set's patterns to dst in ascending order and
// returns the extended slice. Ascending bit iteration is exactly the
// canonical sorted order of the slice-based representations it
// replaces, so digests and candidate lists built this way are
// byte-identical to their sorted-slice ancestors.
func (s PatternSet) AppendTo(dst []PatternID) []PatternID {
	for w, word := range s {
		base := PatternID(w << 6)
		for word != 0 {
			dst = append(dst, base+PatternID(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	return dst
}

// ForEach invokes fn for every pattern in the set in ascending order.
func (s PatternSet) ForEach(fn func(PatternID)) {
	for w, word := range s {
		base := PatternID(w << 6)
		for word != 0 {
			fn(base + PatternID(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
}

// At returns the i-th pattern in ascending order. It panics when
// i is out of range; use Len to bound it. Selection inside a word uses
// a select-nth-set-bit ladder, so At is O(1) in the universe size —
// the gossip round's "pick a uniform random candidate" stays constant
// time instead of materializing the candidate list.
func (s PatternSet) At(i int) PatternID {
	if i >= 0 {
		c0 := bits.OnesCount64(s[0])
		if i < c0 {
			return PatternID(selectBit(s[0], uint(i)))
		}
		if i < c0+bits.OnesCount64(s[1]) {
			return PatternID(64 + selectBit(s[1], uint(i-c0)))
		}
	}
	panic("ident: PatternSet.At index out of range")
}

// selectBit returns the position of the n-th (0-based) set bit of w,
// scanning from the least significant end.
func selectBit(w uint64, n uint) int {
	for ; n > 0; n-- {
		w &= w - 1
	}
	return bits.TrailingZeros64(w)
}

// NewPatternSet builds a set from a pattern list, ignoring
// out-of-range identifiers; use Add directly when the caller must
// detect them.
func NewPatternSet(ps []PatternID) PatternSet {
	var s PatternSet
	for _, p := range ps {
		s.Add(p)
	}
	return s
}
