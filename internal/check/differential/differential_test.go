package differential

import (
	"testing"

	"repro/internal/core"
)

// TestSimMatchesLive is the differential matrix: for each seed and
// algorithm, the simulator and the live UDP cluster replay the same
// publish plan over the same overlay, and every subscriber must end
// up with the identical set of core event IDs.
func TestSimMatchesLive(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, alg := range []core.Algorithm{core.Push, core.CombinedPull} {
		for _, seed := range seeds {
			c := Case{Seed: seed, N: 8, Algorithm: alg}
			t.Run(c.Algorithm.String()+"/"+string(rune('0'+seed)), func(t *testing.T) {
				if err := Run(c); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestSimMatchesHostedLive extends the differential through the
// Dispatcher: the live side shares batched sockets and coalesces
// envelopes, yet must reach the exact fixed point the simulator
// predicts — coalescing must not create, lose, or reorder protocol
// meaning.
func TestSimMatchesHostedLive(t *testing.T) {
	seeds := []int64{1, 2}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, alg := range []core.Algorithm{core.Push, core.CombinedPull} {
		for _, seed := range seeds {
			c := Case{Seed: seed, N: 8, Algorithm: alg, Hosted: true}
			t.Run(c.Algorithm.String()+"/hosted/"+string(rune('0'+seed)), func(t *testing.T) {
				if err := Run(c); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}
