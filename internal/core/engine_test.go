package core

import (
	"testing"
	"time"

	"repro/internal/ident"
	"repro/internal/matching"
	"repro/internal/network"
	"repro/internal/pubsub"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/wire"
)

// Shared small helpers for this package's tests.
func ident32(n int) ident.NodeID  { return ident.NodeID(n) }
func pat32(p int) ident.PatternID { return ident.PatternID(p) }
func sim32(ms int) sim.Time       { return sim.Time(ms) * time.Millisecond }
func content(ps ...int) matching.Content {
	var c matching.Content
	for _, p := range ps {
		c = append(c, ident.PatternID(p))
	}
	return c
}

// rig is a miniature dispatching network with recovery engines.
type rig struct {
	t       *testing.T
	k       *sim.Kernel
	topo    *topology.Tree
	net     *network.Network
	nodes   []*pubsub.Node
	engines []*Engine

	delivered map[ident.NodeID][]ident.EventID
	recovered map[ident.NodeID][]ident.EventID
}

// newRig builds a reliable-link network over topo with one engine per
// node (unless cfg.Algorithm is NoRecovery). subs[i] lists node i's
// local patterns.
func newRig(t *testing.T, topo *topology.Tree, subs [][]ident.PatternID, cfg Config) *rig {
	t.Helper()
	r := &rig{
		t:         t,
		k:         sim.New(11),
		topo:      topo,
		delivered: make(map[ident.NodeID][]ident.EventID),
		recovered: make(map[ident.NodeID][]ident.EventID),
	}
	ncfg := network.DefaultConfig()
	ncfg.LossRate = 0
	ncfg.OOBLossRate = 0
	r.net = network.New(r.k, topo, ncfg, nil)
	pcfg := pubsub.Config{
		RecordRoutes: cfg.Algorithm.NeedsRoutes(),
		OnDeliver: func(node ident.NodeID, ev *wire.Event, recovered bool) {
			r.delivered[node] = append(r.delivered[node], ev.ID)
			if recovered {
				r.recovered[node] = append(r.recovered[node], ev.ID)
			}
		},
	}
	for i := 0; i < topo.N(); i++ {
		id := ident.NodeID(i)
		r.nodes = append(r.nodes, pubsub.NewNode(id, r.k, r.net, topo.Neighbors(id), pcfg))
	}
	pubsub.InstallStableSubscriptions(topo, r.nodes, subs)
	if cfg.Algorithm != NoRecovery {
		for _, n := range r.nodes {
			e, err := NewEngine(n, cfg)
			if err != nil {
				t.Fatal(err)
			}
			e.Start()
			r.engines = append(r.engines, e)
		}
	}
	return r
}

func (r *rig) run(d sim.Time) { r.k.Run(r.k.Now() + d) }

// breakLink removes the link without notifying the nodes: the routing
// tables still point at it, so events routed across it are silently
// lost — a deterministic way to force event loss.
func (r *rig) breakLink(a, b int) {
	if err := r.topo.RemoveLink(ident.NodeID(a), ident.NodeID(b)); err != nil {
		r.t.Fatal(err)
	}
}

func (r *rig) restoreLink(a, b int) {
	if err := r.topo.AddLink(ident.NodeID(a), ident.NodeID(b)); err != nil {
		r.t.Fatal(err)
	}
}

func (r *rig) has(node int, id ident.EventID) bool {
	for _, got := range r.delivered[ident.NodeID(node)] {
		if got == id {
			return true
		}
	}
	return false
}

// deterministicCfg returns a config with PForward=1 so gossip routing
// has no probabilistic thinning.
func deterministicCfg(a Algorithm) Config {
	cfg := DefaultConfig(a)
	cfg.PForward = 1
	return cfg
}

// loseOneEvent publishes three events from node 0 on pattern 5; the
// middle one is published while the link (brk) is silently broken and
// is therefore lost. Returns the lost event.
func loseOneEvent(r *rig, brkA, brkB int) *wire.Event {
	r.nodes[0].Publish(content(5), 0)
	r.run(50 * time.Millisecond)
	r.breakLink(brkA, brkB)
	lost := r.nodes[0].Publish(content(5), 0)
	r.run(50 * time.Millisecond)
	r.restoreLink(brkA, brkB)
	r.nodes[0].Publish(content(5), 0)
	r.run(50 * time.Millisecond)
	return lost
}

func TestSubscriberPullRecoversFromCoSubscriber(t *testing.T) {
	// 0-1-2: both 1 and 2 subscribe pattern 5. Breaking 1-2 loses the
	// middle event at 2 only; 2's gossip toward co-subscriber 1 pulls
	// it back.
	topo := topology.NewLine(3)
	subs := [][]ident.PatternID{nil, {5}, {5}}
	r := newRig(t, topo, subs, deterministicCfg(SubscriberPull))
	lost := loseOneEvent(r, 1, 2)
	r.run(2 * time.Second)
	if !r.has(2, lost.ID) {
		t.Fatal("subscriber-based pull did not recover the event")
	}
	if len(r.recovered[2]) != 1 {
		t.Fatalf("node 2 recovered %d events, want 1", len(r.recovered[2]))
	}
	if got := r.engines[2].Stats().Recovered; got != 1 {
		t.Fatalf("engine stats Recovered = %d, want 1", got)
	}
	if got := r.engines[1].Stats().RetransmitsServed; got != 1 {
		t.Fatalf("co-subscriber served %d retransmits, want 1", got)
	}
}

func TestSubscriberPullSoleSubscriberCannotRecover(t *testing.T) {
	// The paper's explanation for sub-pull's delivery plateau: with a
	// single subscriber for the pattern there is nobody to gossip with.
	topo := topology.NewLine(3)
	subs := [][]ident.PatternID{nil, nil, {5}}
	r := newRig(t, topo, subs, deterministicCfg(SubscriberPull))
	lost := loseOneEvent(r, 1, 2)
	r.run(2 * time.Second)
	if r.has(2, lost.ID) {
		t.Fatal("sole subscriber recovered an event with no co-subscribers (impossible for sub-pull)")
	}
	if r.engines[2].LostLen() == 0 {
		t.Fatal("loss not even detected")
	}
}

func TestPublisherPullRecoversFromSource(t *testing.T) {
	// Sole subscriber, but publisher-based pull walks the recorded
	// route back to the source, which caches its own events.
	topo := topology.NewLine(3)
	subs := [][]ident.PatternID{nil, nil, {5}}
	r := newRig(t, topo, subs, deterministicCfg(PublisherPull))
	lost := loseOneEvent(r, 1, 2)
	r.run(2 * time.Second)
	if !r.has(2, lost.ID) {
		t.Fatal("publisher-based pull did not recover the event")
	}
	if got := r.engines[0].Stats().RetransmitsServed; got != 1 {
		t.Fatalf("publisher served %d retransmits, want 1", got)
	}
}

func TestPublisherPullShortCircuit(t *testing.T) {
	// 0-1-2-3: 1 and 3 subscribe pattern 5. The event lost at 3 is
	// cached at 1 (a subscriber on the route), which short-circuits the
	// walk before it reaches publisher 0.
	topo := topology.NewLine(4)
	subs := [][]ident.PatternID{nil, {5}, nil, {5}}
	r := newRig(t, topo, subs, deterministicCfg(PublisherPull))
	lost := loseOneEvent(r, 2, 3)
	r.run(2 * time.Second)
	if !r.has(3, lost.ID) {
		t.Fatal("publisher-based pull did not recover the event")
	}
	if got := r.engines[1].Stats().RetransmitsServed; got != 1 {
		t.Fatalf("on-route subscriber served %d, want 1 (short-circuit)", got)
	}
	if got := r.engines[0].Stats().RetransmitsServed; got != 0 {
		t.Fatalf("publisher served %d, want 0 (walk should stop at node 1)", got)
	}
}

func TestPushRecovers(t *testing.T) {
	topo := topology.NewLine(3)
	subs := [][]ident.PatternID{nil, nil, {5}}
	r := newRig(t, topo, subs, deterministicCfg(Push))
	lost := loseOneEvent(r, 1, 2)
	r.run(2 * time.Second)
	if !r.has(2, lost.ID) {
		t.Fatal("push did not recover the event")
	}
	// The requester asked the gossiper (node 0, the publisher, is the
	// only node caching the event) out-of-band.
	if got := r.engines[2].Stats().RequestsSent; got == 0 {
		t.Fatal("no push requests sent")
	}
}

func TestCombinedPullRecovers(t *testing.T) {
	topo := topology.NewLine(3)
	subs := [][]ident.PatternID{nil, nil, {5}}
	cfg := deterministicCfg(CombinedPull)
	cfg.PSource = 0.5
	r := newRig(t, topo, subs, cfg)
	lost := loseOneEvent(r, 1, 2)
	r.run(2 * time.Second)
	// Sub-pull can do nothing here (sole subscriber); the publisher
	// side of combined pull must kick in.
	if !r.has(2, lost.ID) {
		t.Fatal("combined pull did not recover the event")
	}
}

func TestRandomPullRecovers(t *testing.T) {
	topo := topology.NewLine(3)
	subs := [][]ident.PatternID{nil, nil, {5}}
	r := newRig(t, topo, subs, deterministicCfg(RandomPull))
	lost := loseOneEvent(r, 1, 2)
	r.run(2 * time.Second)
	// On a line the random walk from 2 must pass 1 and reach 0, which
	// caches the event as its publisher.
	if !r.has(2, lost.ID) {
		t.Fatal("random pull did not recover the event")
	}
}

func TestNoRecoveryBaseline(t *testing.T) {
	topo := topology.NewLine(3)
	subs := [][]ident.PatternID{nil, nil, {5}}
	r := newRig(t, topo, subs, Config{Algorithm: NoRecovery})
	lost := loseOneEvent(r, 1, 2)
	r.run(2 * time.Second)
	if r.has(2, lost.ID) {
		t.Fatal("event recovered without any recovery algorithm")
	}
}

func TestLossDetectionGaps(t *testing.T) {
	// Lose two consecutive events: detection must record both gaps from
	// a single later arrival.
	topo := topology.NewLine(3)
	subs := [][]ident.PatternID{nil, nil, {5}}
	r := newRig(t, topo, subs, deterministicCfg(SubscriberPull))
	r.nodes[0].Publish(content(5), 0)
	r.run(50 * time.Millisecond)
	r.breakLink(1, 2)
	r.nodes[0].Publish(content(5), 0)
	r.nodes[0].Publish(content(5), 0)
	r.run(50 * time.Millisecond)
	r.restoreLink(1, 2)
	r.nodes[0].Publish(content(5), 0)
	r.run(50 * time.Millisecond)
	if got := r.engines[2].Stats().LossesDetected; got != 2 {
		t.Fatalf("LossesDetected = %d, want 2", got)
	}
}

func TestLossAtStreamHeadDetected(t *testing.T) {
	// The very first events being lost must still be detected: sequence
	// numbers start at 1 and the expected counter at 0.
	topo := topology.NewLine(3)
	subs := [][]ident.PatternID{nil, nil, {5}}
	r := newRig(t, topo, subs, deterministicCfg(SubscriberPull))
	r.breakLink(1, 2)
	r.nodes[0].Publish(content(5), 0)
	r.run(50 * time.Millisecond)
	r.restoreLink(1, 2)
	r.nodes[0].Publish(content(5), 0)
	r.run(50 * time.Millisecond)
	if got := r.engines[2].Stats().LossesDetected; got != 1 {
		t.Fatalf("LossesDetected = %d, want 1 (loss before any delivery)", got)
	}
}

func TestMultipleGapsFullyRecovered(t *testing.T) {
	// 0-1-2, subscribers 1 and 2. Lose seq 2 and 3 at node 2; a later
	// arrival reveals both gaps at once and pull recovery must drain
	// the whole Lost buffer.
	topo := topology.NewLine(3)
	subs := [][]ident.PatternID{nil, {5}, {5}}
	r := newRig(t, topo, subs, deterministicCfg(SubscriberPull))
	r.nodes[0].Publish(content(5), 0)
	r.run(50 * time.Millisecond)
	r.breakLink(1, 2)
	r.nodes[0].Publish(content(5), 0)
	r.nodes[0].Publish(content(5), 0)
	r.run(50 * time.Millisecond)
	r.restoreLink(1, 2)
	r.nodes[0].Publish(content(5), 0) // seq 4 triggers detection at 2
	r.run(2 * time.Second)
	// Both events recovered from node 1 eventually.
	if got := len(r.recovered[2]); got != 2 {
		t.Fatalf("recovered %d events, want 2", got)
	}
	if got := r.engines[2].LostLen(); got != 0 {
		t.Fatalf("LostLen = %d after full recovery, want 0", got)
	}
}

func TestPushPendingSuppressesDuplicateRequests(t *testing.T) {
	// Two co-subscribers of pattern 5 both gossip digests to node 2; it
	// must not fire one request per digest within the pending TTL.
	topo := topology.NewStar(4) // 0 center; 1,2,3 leaves
	subs := [][]ident.PatternID{nil, {5}, {5}, {5}}
	cfg := deterministicCfg(Push)
	cfg.PendingTTL = 10 * time.Second
	r := newRig(t, topo, subs, cfg)
	r.breakLink(0, 2)
	lost := r.nodes[0].Publish(content(5), 0)
	r.run(50 * time.Millisecond)
	r.restoreLink(0, 2)
	r.run(2 * time.Second)
	if !r.has(2, lost.ID) {
		t.Fatal("push did not recover the event")
	}
	if got := r.engines[2].Stats().RequestsSent; got != 1 {
		t.Fatalf("RequestsSent = %d, want 1 (pending suppression)", got)
	}
}

func TestServeDeduplicatesMultiPatternEvents(t *testing.T) {
	// An event matching two locally subscribed patterns that is lost
	// produces two Lost entries, but a responder must retransmit the
	// event once.
	topo := topology.NewLine(3)
	subs := [][]ident.PatternID{nil, {5, 6}, {5, 6}}
	r := newRig(t, topo, subs, deterministicCfg(SubscriberPull))
	r.nodes[0].Publish(content(5, 6), 0)
	r.run(50 * time.Millisecond)
	r.breakLink(1, 2)
	lost := r.nodes[0].Publish(content(5, 6), 0)
	r.run(50 * time.Millisecond)
	r.restoreLink(1, 2)
	r.nodes[0].Publish(content(5, 6), 0)
	r.run(2 * time.Second)
	if !r.has(2, lost.ID) {
		t.Fatal("event not recovered")
	}
	if got := r.engines[1].Stats().RetransmitsServed; got != 1 {
		t.Fatalf("RetransmitsServed = %d, want 1 (dedup across patterns)", got)
	}
	if got := r.engines[2].Stats().Recovered; got != 1 {
		t.Fatalf("Recovered = %d, want 1", got)
	}
}

func TestPullSkipsRoundsWhenNothingLost(t *testing.T) {
	topo := topology.NewLine(3)
	subs := [][]ident.PatternID{nil, {5}, {5}}
	r := newRig(t, topo, subs, deterministicCfg(SubscriberPull))
	r.run(time.Second)
	for i, e := range r.engines {
		s := e.Stats()
		if s.RoundsStarted != 0 {
			t.Fatalf("engine %d started %d rounds with nothing lost", i, s.RoundsStarted)
		}
		if s.RoundsSkipped == 0 {
			t.Fatalf("engine %d skipped no rounds", i)
		}
	}
}

func TestPushGossipsContinuously(t *testing.T) {
	topo := topology.NewLine(3)
	subs := [][]ident.PatternID{{5}, nil, {5}}
	r := newRig(t, topo, subs, deterministicCfg(Push))
	r.nodes[0].Publish(content(5), 0)
	r.run(time.Second)
	// Node 0 caches its own event and knows pattern 5, so every round
	// sends a digest — the paper's point about push wasting bandwidth
	// in loss-free settings (Sec. IV-E).
	if got := r.engines[0].Stats().RoundsStarted; got < 20 {
		t.Fatalf("push started only %d rounds in 1s at T=30ms", got)
	}
}

func TestAdaptiveIntervalGrowsWhenIdle(t *testing.T) {
	topo := topology.NewLine(2)
	subs := [][]ident.PatternID{{5}, {5}}
	cfg := deterministicCfg(SubscriberPull)
	cfg.Adaptive = &AdaptiveConfig{
		Min:          10 * time.Millisecond,
		Max:          500 * time.Millisecond,
		ShrinkFactor: 0.5,
		GrowFactor:   1.5,
	}
	r := newRig(t, topo, subs, cfg)
	r.run(5 * time.Second)
	for i, e := range r.engines {
		if got := e.GossipInterval(); got != 500*time.Millisecond {
			t.Fatalf("engine %d interval = %v after idle run, want max 500ms", i, got)
		}
	}
}

func TestAdaptiveIntervalShrinksUnderLoss(t *testing.T) {
	topo := topology.NewLine(3)
	subs := [][]ident.PatternID{nil, {5}, {5}}
	cfg := deterministicCfg(SubscriberPull)
	cfg.LostTTL = time.Hour
	cfg.Adaptive = &AdaptiveConfig{
		Min:          5 * time.Millisecond,
		Max:          100 * time.Millisecond,
		ShrinkFactor: 0.5,
		GrowFactor:   1.5,
	}
	r := newRig(t, topo, subs, cfg)
	// Lose an event that can never be recovered (nobody caches it:
	// break both around node 2's only provider)... Lose at 2 with no
	// co-subscriber cache: node 1 recovers it though. Instead make the
	// loss unrecoverable by keeping the event out of every cache:
	// publish from 0 with both downstream losses.
	r.breakLink(0, 1)
	r.nodes[0].Publish(content(5), 0)
	r.run(50 * time.Millisecond)
	r.restoreLink(0, 1)
	r.nodes[0].Publish(content(5), 0)
	r.run(3 * time.Second)
	// Node 1 and 2 both lost seq 1; node 1 can serve 2's pulls for seq
	// 1? No — node 1 never received it either. Both keep gossiping.
	if got := r.engines[2].GossipInterval(); got != 5*time.Millisecond {
		t.Fatalf("interval = %v under persistent loss, want min 5ms", got)
	}
}

func TestEngineRejectsNoRecovery(t *testing.T) {
	topo := topology.NewLine(2)
	r := newRig(t, topo, [][]ident.PatternID{nil, nil}, Config{Algorithm: NoRecovery})
	if _, err := NewEngine(r.nodes[0], Config{Algorithm: NoRecovery}); err == nil {
		t.Fatal("NewEngine accepted NoRecovery")
	}
}

func TestConfigNormalize(t *testing.T) {
	cfg, err := Config{Algorithm: Push}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultConfig(Push)
	if cfg != def {
		t.Fatalf("Normalize() = %+v, want defaults %+v", cfg, def)
	}
	bad := []Config{
		{Algorithm: Algorithm(99)},
		{Algorithm: Push, PForward: 1.5},
		{Algorithm: Push, BufferSize: -1},
		{Algorithm: Push, Adaptive: &AdaptiveConfig{Min: 0}},
	}
	for _, c := range bad {
		if _, err := c.Normalize(); err == nil {
			t.Fatalf("Normalize accepted %+v", c)
		}
	}
}

func TestAlgorithmParseAndString(t *testing.T) {
	for _, a := range Algorithms() {
		got, err := ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Fatalf("ParseAlgorithm(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseAlgorithm("bogus"); err == nil {
		t.Fatal("ParseAlgorithm accepted bogus name")
	}
	if Algorithm(42).String() != "algorithm(42)" {
		t.Fatal("unknown algorithm String wrong")
	}
}

func TestAlgorithmCapabilities(t *testing.T) {
	if Push.NeedsSeqTags() || NoRecovery.NeedsSeqTags() {
		t.Fatal("push/no-recovery should not need seq tags")
	}
	for _, a := range []Algorithm{SubscriberPull, PublisherPull, CombinedPull, RandomPull} {
		if !a.NeedsSeqTags() {
			t.Fatalf("%v should need seq tags", a)
		}
	}
	if !PublisherPull.NeedsRoutes() || !CombinedPull.NeedsRoutes() {
		t.Fatal("publisher/combined pull should need routes")
	}
	if Push.NeedsRoutes() || SubscriberPull.NeedsRoutes() {
		t.Fatal("push/subscriber pull should not need routes")
	}
}
