package experiments

import (
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/scenario"
	"repro/internal/topology"
)

// xOverlay is the overlay-diversity × repair-mode matrix: every
// recovery algorithm on the paper's degree-bounded tree, a
// Barabási–Albert scale-free overlay, and a Newman–Watts small-world
// overlay, under deterministic node churn healed either by the fault
// injector's omniscient oracle or by the decentralized
// self-stabilizing protocol (internal/repair). Churn is confined to
// the first 60% of the run so both repair modes settle before the
// measurement window closes.
func xOverlay(opt Options) ([]Figure, error) {
	algos := deliveryAlgorithms(opt)
	kinds := topology.Kinds()
	modes := []scenario.RepairMode{scenario.RepairOracle, scenario.RepairSelfStabilizing}
	const churnRate = 2.0
	const meanDown = 300 * time.Millisecond

	p0 := base(opt, 10*time.Second)
	var params []scenario.Params
	for _, kind := range kinds {
		for _, mode := range modes {
			for _, a := range algos {
				p := p0
				p.Algorithm = a
				p.Overlay = kind
				p.Repair = mode
				p.FaultPlan = faults.ChurnPlan(p.Seed, p.N, churnRate, p.Duration*3/5, meanDown)
				params = append(params, p)
			}
		}
	}
	results, err := scenario.RunAll(params)
	if err != nil {
		return nil, err
	}

	delivery := Figure{
		ID:     "x-overlay",
		Title:  "EXTENSION: delivery across overlay kinds and repair modes under churn",
		XLabel: "algorithm (1=no recovery, in paper legend order)",
		YLabel: "delivery rate",
		Notes: []string{
			fmt.Sprintf("churn: %.1f crashes/s over the first 60%% of the run, mean downtime %v", churnRate, meanDown),
			"oracle: the injector reads global component structure and reconnects survivors directly",
			"self-stabilizing: dispatchers detect dead neighbors and re-link from local state only (internal/repair)",
			"non-tree overlays forward with first-arrival dedup; their redundancy rides out faults the tree must repair",
		},
	}
	repairCost := Figure{
		ID:     "x-overlay-repair",
		Title:  "EXTENSION: self-stabilizing repair effort by overlay kind",
		XLabel: "algorithm (1=no recovery, in paper legend order)",
		YLabel: "mean reattach latency (ms)",
		Notes: []string{
			"reattach latency: isolation time of a restarted dispatcher until the protocol re-links it",
			"links added counts protocol link mutations over the whole run (in series names' final column)",
		},
	}
	i := 0
	for _, kind := range kinds {
		for _, mode := range modes {
			s := Series{Name: fmt.Sprintf("%v, %v", kind, mode)}
			var cost Series
			var linksAdded uint64
			for xi := range algos {
				r := results[i]
				i++
				s.Points = append(s.Points, Point{X: float64(xi + 1), Y: round2(r.DeliveryRate)})
				if mode == scenario.RepairSelfStabilizing {
					lat := 0.0
					if st := r.Repair; st.Reattaches > 0 {
						lat = float64(st.ReattachTotal) / float64(st.Reattaches) / float64(time.Millisecond)
					}
					cost.Points = append(cost.Points, Point{X: float64(xi + 1), Y: round2(lat)})
					linksAdded += r.Repair.LinksAdded
				}
			}
			delivery.Series = append(delivery.Series, s)
			if mode == scenario.RepairSelfStabilizing {
				cost.Name = fmt.Sprintf("%v (links added: %d)", kind, linksAdded)
				repairCost.Series = append(repairCost.Series, cost)
			}
		}
	}
	return []Figure{delivery, repairCost}, nil
}
