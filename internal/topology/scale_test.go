package topology

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/ident"
)

// oracleNew is the original O(N²) builder: per join, re-scan all
// earlier nodes for free slots at the minimum depth. Kept verbatim as
// the differential oracle for the Fenwick-frontier builder, which must
// reproduce its rng draws and edges bit-for-bit at every N.
func oracleNew(n, maxDegree int, rng *rand.Rand) *Tree {
	t := &Tree{n: n, maxDegree: maxDegree, adj: make([][]ident.NodeID, n)}
	depth := make([]int, n)
	for i := 1; i < n; i++ {
		best := -1
		var candidates []ident.NodeID
		for j := 0; j < i; j++ {
			if len(t.adj[j]) >= maxDegree {
				continue
			}
			switch {
			case best == -1 || depth[j] < best:
				best = depth[j]
				candidates = candidates[:0]
				candidates = append(candidates, ident.NodeID(j))
			case depth[j] == best:
				candidates = append(candidates, ident.NodeID(j))
			}
		}
		parent := candidates[rng.Intn(len(candidates))]
		t.addEdge(parent, ident.NodeID(i))
		depth[i] = depth[parent] + 1
	}
	return t
}

// TestNewMatchesQuadraticOracle pins the frontier builder against the
// original scan across sizes, degrees, and seeds: identical link sets
// mean identical rng draw sequences, so every fixed-seed scenario
// keeps its exact topology.
func TestNewMatchesQuadraticOracle(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 25, 100, 733} {
		for _, deg := range []int{2, 3, 4, 6} {
			for seed := int64(1); seed <= 5; seed++ {
				got, err := New(n, deg, rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatalf("N=%d deg=%d seed=%d: %v", n, deg, seed, err)
				}
				want := oracleNew(n, deg, rand.New(rand.NewSource(seed)))
				g, w := got.Links(), want.Links()
				if len(g) != len(w) {
					t.Fatalf("N=%d deg=%d seed=%d: %d links, oracle %d", n, deg, seed, len(g), len(w))
				}
				for i := range g {
					if g[i] != w[i] {
						t.Fatalf("N=%d deg=%d seed=%d: link %d = %v, oracle %v", n, deg, seed, i, g[i], w[i])
					}
				}
			}
		}
	}
}

// TestDistMatchesBFSOracle pins the LCA-climb distance (and the O(N)
// mean) against per-source BFS, including across a forest split.
func TestDistMatchesBFSOracle(t *testing.T) {
	tr, err := New(60, 3, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	check := func() {
		t.Helper()
		var sum, cnt float64
		for src := 0; src < tr.N(); src++ {
			d := make([]int, tr.N())
			for i := range d {
				d[i] = -1
			}
			d[src] = 0
			queue := []ident.NodeID{ident.NodeID(src)}
			for i := 0; i < len(queue); i++ {
				x := queue[i]
				for _, y := range tr.Neighbors(x) {
					if d[y] == -1 {
						d[y] = d[x] + 1
						queue = append(queue, y)
					}
				}
			}
			for b := 0; b < tr.N(); b++ {
				if got := tr.Dist(ident.NodeID(src), ident.NodeID(b)); got != d[b] {
					t.Fatalf("Dist(%d,%d) = %d, BFS %d", src, b, got, d[b])
				}
				if b != src && d[b] >= 0 {
					sum += float64(d[b])
					cnt++
				}
			}
		}
		want := 0.0
		if cnt > 0 {
			want = sum / cnt
		}
		if got := tr.MeanPairwiseDistance(); got != want {
			t.Fatalf("MeanPairwiseDistance = %v, pairwise oracle %v (must be exact)", got, want)
		}
	}
	check()
	l := tr.Links()[17]
	if err := tr.RemoveLink(l.A, l.B); err != nil {
		t.Fatal(err)
	}
	check() // forest: cross-component pairs are -1 and excluded from the mean
}

// TestNewLargeScaleFast is the 100k-node wall check: building the
// overlay and computing its mean pairwise distance — both quadratic
// (or worse) before this change — must complete in seconds.
func TestNewLargeScaleFast(t *testing.T) {
	if testing.Short() {
		t.Skip("large-N build in -short mode")
	}
	start := time.Now()
	tr, err := New(100_000, 4, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if !tr.IsTree() {
		t.Fatal("100k-node build is not a tree")
	}
	if m := tr.MeanPairwiseDistance(); m <= 0 {
		t.Fatalf("mean pairwise distance = %v", m)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("100k-node build+mean took %v", elapsed)
	}
}
