package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Render writes a figure as an aligned text table: one row per x-value,
// one column per series — the same data a gnuplot script would consume
// to redraw the paper's chart.
func Render(f Figure, w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", f.ID, f.Title)
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	fmt.Fprintf(&b, "# y: %s\n", f.YLabel)

	// Collect the union of x-values across series.
	xset := make(map[float64]bool)
	for _, s := range f.Series {
		for _, p := range s.Points {
			xset[p.X] = true
		}
	}
	xs := make([]float64, 0, len(xset))
	for x := range xset {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	// Header.
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	rows := [][]string{cols}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			cell := "-"
			for _, p := range s.Points {
				if p.X == x {
					cell = trimFloat(p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}

	widths := make([]int, len(cols))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		for i, cell := range row {
			pad := widths[i] - len(cell)
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(strings.Repeat(" ", pad))
			b.WriteString(cell)
		}
		b.WriteByte('\n')
		if ri == 0 {
			continue
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// trimFloat prints a float without trailing zero noise.
func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// RenderAll renders several figures separated by blank lines.
func RenderAll(figs []Figure, w io.Writer) error {
	for i, f := range figs {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if err := Render(f, w); err != nil {
			return err
		}
	}
	return nil
}
