// Package live runs the paper's protocols for real: dispatchers are
// processes communicating over UDP sockets (stdlib net only), not
// simulated components on a virtual clock. It reuses the simulator's
// building blocks — the wire codec, the content model, the β-bounded
// event buffer, the Lost buffer — and re-implements subscription
// forwarding, reverse-path event routing, and the epidemic recovery
// algorithms against real time and real I/O.
//
// The package exists for two reasons: it demonstrates that the
// simulated protocols are implementable as-is (the simulator and the
// live node speak the same wire format), and it gives downstream users
// a deployable starting point rather than only a simulation.
package live

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/wire"
)

// Config parameterizes one live dispatcher.
type Config struct {
	// ID identifies this dispatcher; must be unique in the network.
	ID ident.NodeID
	// Bind is the UDP address to listen on; empty means 127.0.0.1:0.
	Bind string
	// Algorithm selects the recovery variant (NoRecovery disables
	// gossip entirely).
	Algorithm core.Algorithm
	// GossipInterval is T. Zero means 30 ms.
	GossipInterval time.Duration
	// BufferSize is β. Zero means 1500.
	BufferSize int
	// PForward and PSource are the gossip probabilities. Zero means
	// 0.9 and 0.5.
	PForward, PSource float64
	// LostCapacity and LostTTL bound the Lost buffer. Zero means 4096
	// entries and 10 s.
	LostCapacity int
	LostTTL      time.Duration
	// DropProb injects Bernoulli loss on outgoing tree-link sends —
	// the lossy-links scenario over real sockets. OOB traffic is not
	// dropped.
	DropProb float64
	// Seed drives the node's randomized choices. Zero means 1.
	Seed int64
	// OnDeliver, when non-nil, observes every local delivery. It is
	// called outside the node's lock, from the node's goroutines.
	OnDeliver func(ev *wire.Event, recovered bool)
}

func (c Config) withDefaults() Config {
	if c.Bind == "" {
		c.Bind = "127.0.0.1:0"
	}
	if c.Algorithm == 0 {
		c.Algorithm = core.NoRecovery
	}
	if c.GossipInterval == 0 {
		c.GossipInterval = 30 * time.Millisecond
	}
	if c.BufferSize == 0 {
		c.BufferSize = 1500
	}
	if c.PForward == 0 {
		c.PForward = 0.9
	}
	if c.PSource == 0 {
		c.PSource = 0.5
	}
	if c.LostCapacity == 0 {
		c.LostCapacity = 4096
	}
	if c.LostTTL == 0 {
		c.LostTTL = 10 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Stats is a snapshot of a live node's counters.
type Stats struct {
	Published      uint64
	Delivered      uint64
	Recovered      uint64
	LossesDetected uint64
	GossipSent     uint64
	EventsSent     uint64
	Served         uint64
	DroppedInject  uint64
}

// Node is one live dispatcher.
type Node struct {
	cfg   Config
	conn  *net.UDPConn
	start time.Time

	mu        sync.Mutex
	rng       *rand.Rand
	neighbors map[ident.NodeID]*net.UDPAddr
	directory map[ident.NodeID]*net.UDPAddr
	local     map[ident.PatternID]bool
	localSet  ident.PatternSet // in-range mirror of local; event-path fast match
	table     map[ident.PatternID][]ident.NodeID
	nextSeq   uint32
	patSeq    map[ident.PatternID]uint32
	received  *ident.EventIDSet

	buf     *cache.Cache
	patIdx  map[ident.PatternID]*ident.EventIDSet
	tagIdx  map[wire.LostEntry]ident.EventID
	lost    *core.LostBuffer
	high    map[srcPattern]uint32
	routes  map[ident.NodeID][]ident.NodeID
	pending map[ident.EventID]time.Time

	stats Stats

	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup
}

type srcPattern struct {
	src ident.NodeID
	pat ident.PatternID
}

// NewNode binds a UDP socket and starts the node's receive loop (and
// gossip loop when recovery is enabled). Close releases everything.
func NewNode(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	addr, err := net.ResolveUDPAddr("udp", cfg.Bind)
	if err != nil {
		return nil, fmt.Errorf("live: resolving %q: %w", cfg.Bind, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: listening on %q: %w", cfg.Bind, err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed + int64(cfg.ID)*0x9e3779b9))
	n := &Node{
		cfg:       cfg,
		conn:      conn,
		start:     time.Now(),
		rng:       rng,
		neighbors: make(map[ident.NodeID]*net.UDPAddr),
		directory: make(map[ident.NodeID]*net.UDPAddr),
		local:     make(map[ident.PatternID]bool),
		table:     make(map[ident.PatternID][]ident.NodeID),
		patSeq:    make(map[ident.PatternID]uint32),
		received:  ident.NewEventIDSet(64),
		buf:       cache.New(cfg.BufferSize, cache.FIFOPolicy, nil),
		patIdx:    make(map[ident.PatternID]*ident.EventIDSet),
		tagIdx:    make(map[wire.LostEntry]ident.EventID),
		lost:      core.NewLostBuffer(cfg.LostCapacity, cfg.LostTTL),
		high:      make(map[srcPattern]uint32),
		routes:    make(map[ident.NodeID][]ident.NodeID),
		pending:   make(map[ident.EventID]time.Time),
		done:      make(chan struct{}),
	}
	n.buf.SetOnEvict(n.unindexLocked)

	n.wg.Add(1)
	go n.readLoop()
	if cfg.Algorithm != core.NoRecovery {
		n.wg.Add(1)
		go n.gossipLoop()
	}
	return n, nil
}

// ID returns the dispatcher identifier.
func (n *Node) ID() ident.NodeID { return n.cfg.ID }

// Addr returns the bound UDP address.
func (n *Node) Addr() *net.UDPAddr { return n.conn.LocalAddr().(*net.UDPAddr) }

// Stats returns a snapshot of the counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Close shuts the node down: the socket is closed and all goroutines
// are joined.
func (n *Node) Close() error {
	var err error
	n.closeOnce.Do(func() {
		close(n.done)
		err = n.conn.Close()
		n.wg.Wait()
	})
	return err
}

// SetDirectory installs the id→address map used by out-of-band sends.
// The map is copied.
func (n *Node) SetDirectory(dir map[ident.NodeID]*net.UDPAddr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for id, a := range dir {
		n.directory[id] = a
	}
}

// AddNeighbor attaches a tree link toward the given dispatcher and
// advertises every known interest over it, exactly as OnLinkUp does in
// the simulator.
func (n *Node) AddNeighbor(id ident.NodeID, addr *net.UDPAddr) {
	n.mu.Lock()
	n.neighbors[id] = addr
	n.directory[id] = addr
	var subs []ident.PatternID
	for p := range n.local {
		subs = append(subs, p)
	}
	for p := range n.table {
		if !n.local[p] && n.advertisedToLocked(p, id) {
			subs = append(subs, p)
		}
	}
	n.mu.Unlock()
	for _, p := range subs {
		n.sendTree(id, &wire.Subscribe{Pattern: p})
	}
}

// RemoveNeighbor detaches a tree link and flushes every route through
// it (OnLinkDown).
func (n *Node) RemoveNeighbor(id ident.NodeID) {
	n.mu.Lock()
	delete(n.neighbors, id)
	var stale []ident.PatternID
	for p, dirs := range n.table {
		for _, d := range dirs {
			if d == id {
				stale = append(stale, p)
				break
			}
		}
	}
	n.mu.Unlock()
	for _, p := range stale {
		n.mu.Lock()
		outs := n.removeInterestLocked(p, id)
		n.mu.Unlock()
		n.flush(outs)
	}
}

// now returns the node's monotonic clock as a duration since start,
// the time base of the Lost buffer.
func (n *Node) now() time.Duration { return time.Since(n.start) }

// envelope layout: 4 bytes sender ID, 1 byte flags (bit 0: out of
// band), then the wire-encoded message.
const envelopeLen = 5

// envelopePool recycles encode buffers across sends. WriteToUDP copies
// the payload into the kernel synchronously, so a buffer can be reused
// as soon as the write returns.
var envelopePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

func (n *Node) encodeEnvelope(buf []byte, msg wire.Message, oob bool) []byte {
	buf = append(buf[:0], 0, 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(buf, uint32(n.cfg.ID))
	if oob {
		buf[4] = 1
	}
	return msg.Append(buf)
}

// sendEnvelope encodes msg into a pooled buffer, writes it to addr, and
// returns the buffer to the pool.
func (n *Node) sendEnvelope(addr *net.UDPAddr, msg wire.Message, oob bool) {
	bp := envelopePool.Get().(*[]byte)
	*bp = n.encodeEnvelope(*bp, msg, oob)
	n.write(addr, *bp)
	envelopePool.Put(bp)
}

// sendTree transmits msg to a direct neighbor, subject to injected
// loss. Subscription control messages are exempt: in a real deployment
// the control plane rides a reliable transport (TCP), while events and
// gossip are the best-effort data plane the paper studies.
func (n *Node) sendTree(to ident.NodeID, msg wire.Message) {
	kind := msg.Kind()
	control := kind == wire.KindSubscribe || kind == wire.KindUnsubscribe
	n.mu.Lock()
	addr := n.neighbors[to]
	drop := !control && n.cfg.DropProb > 0 && n.rng.Float64() < n.cfg.DropProb
	if addr != nil {
		if drop {
			n.stats.DroppedInject++
		} else if msg.Kind().IsGossip() {
			n.stats.GossipSent++
		} else if msg.Kind() == wire.KindEvent {
			n.stats.EventsSent++
		}
	}
	n.mu.Unlock()
	if addr == nil || drop {
		return
	}
	n.sendEnvelope(addr, msg, false)
}

// sendOOB transmits msg to any dispatcher in the directory.
func (n *Node) sendOOB(to ident.NodeID, msg wire.Message) {
	n.mu.Lock()
	addr := n.directory[to]
	if addr != nil {
		if msg.Kind().IsGossip() {
			n.stats.GossipSent++
		} else if msg.Kind() == wire.KindRetransmit {
			n.stats.EventsSent += uint64(len(msg.(*wire.Retransmit).Events))
		}
	}
	n.mu.Unlock()
	if addr == nil {
		return
	}
	n.sendEnvelope(addr, msg, true)
}

func (n *Node) write(addr *net.UDPAddr, data []byte) {
	// Best-effort, like UDP itself: errors surface only when the node
	// is closing.
	if _, err := n.conn.WriteToUDP(data, addr); err != nil && !closing(err) {
		// A send error to a live address is unexpected but not fatal;
		// the protocols tolerate loss by design.
		_ = err
	}
}

func closing(err error) bool {
	return errors.Is(err, net.ErrClosed)
}

// readLoop receives and dispatches messages until Close.
func (n *Node) readLoop() {
	defer n.wg.Done()
	buf := make([]byte, 65535)
	for {
		nb, _, err := n.conn.ReadFromUDP(buf)
		if err != nil {
			if closing(err) {
				return
			}
			select {
			case <-n.done:
				return
			default:
				continue
			}
		}
		if nb < envelopeLen {
			continue
		}
		from := ident.NodeID(binary.LittleEndian.Uint32(buf))
		oob := buf[4]&1 != 0
		msg, err := wire.Decode(buf[envelopeLen:nb])
		if err != nil {
			continue // corrupt datagram: drop, like real UDP software
		}
		n.handle(from, msg, oob)
	}
}

// gossipLoop runs a gossip round every interval, with a random initial
// phase like the simulator's jittered ticker.
func (n *Node) gossipLoop() {
	defer n.wg.Done()
	phase := time.Duration(rand.New(rand.NewSource(n.cfg.Seed ^ int64(n.cfg.ID))).
		Int63n(int64(n.cfg.GossipInterval)))
	timer := time.NewTimer(phase)
	select {
	case <-timer.C:
	case <-n.done:
		timer.Stop()
		return
	}
	ticker := time.NewTicker(n.cfg.GossipInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			n.gossipRound()
		case <-n.done:
			return
		}
	}
}
