package pubsub

import (
	"slices"
	"testing"

	"repro/internal/ident"
)

func TestSubscriberIndexBuild(t *testing.T) {
	subs := [][]ident.PatternID{
		{0, 2},
		{2},
		{0, 1, 2},
	}
	ix := NewSubscriberIndex(4, subs)
	want := map[ident.PatternID][]ident.NodeID{
		0: {0, 2},
		1: {2},
		2: {0, 1, 2},
		3: nil,
	}
	for p, w := range want {
		if got := ix.Subscribers(p); !slices.Equal(got, w) {
			t.Fatalf("Subscribers(%d) = %v, want %v", p, got, w)
		}
		if got := ix.NumSubscribers(p); got != len(w) {
			t.Fatalf("NumSubscribers(%d) = %d, want %d", p, got, len(w))
		}
	}
	// Out-of-universe lookups are empty, not a crash.
	if got := ix.Subscribers(99); got != nil {
		t.Fatalf("Subscribers(99) = %v, want nil", got)
	}
}

func TestSubscriberIndexMutation(t *testing.T) {
	ix := NewSubscriberIndex(3, [][]ident.PatternID{{0}, {0}, {0}})

	ix.Add(1, 2)
	ix.Add(1, 0) // out-of-order insert must keep the list sorted
	if got := ix.Subscribers(1); !slices.Equal(got, []ident.NodeID{0, 2}) {
		t.Fatalf("after adds: %v, want [0 2]", got)
	}
	ix.Add(1, 2) // duplicate is a no-op
	if got := ix.NumSubscribers(1); got != 2 {
		t.Fatalf("duplicate add changed count: %d", got)
	}

	ix.Remove(0, 1)
	if got := ix.Subscribers(0); !slices.Equal(got, []ident.NodeID{0, 2}) {
		t.Fatalf("after remove: %v, want [0 2]", got)
	}
	ix.Remove(0, 1) // absent removal is a no-op
	ix.Remove(9, 0) // out-of-universe removal is a no-op
	if got := ix.NumSubscribers(0); got != 2 {
		t.Fatalf("no-op removals changed count: %d", got)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("Add outside the universe did not panic")
		}
	}()
	ix.Add(9, 0)
}
