package sim

import (
	"fmt"
	"math/rand"
)

// Proc is a per-affinity scheduling handle. Every per-node component
// (dispatcher, recovery engine, workload clock, ticker) schedules and
// reads the clock through the Proc of its node instead of the raw
// kernel, which buys two things:
//
//   - events it schedules carry the node's affinity, so the parallel
//     window driver (parallel.go) knows which shard may execute them
//     concurrently with other nodes' events;
//   - during a parallel window, Now/At/After/Defer transparently
//     switch to the executing shard's clock and intent log, so
//     component code is identical under sequential and sharded
//     execution.
//
// Under the sequential executor (or outside a window) every method is
// a thin passthrough to the kernel — one predictable branch — so
// Shards=1 runs are byte-for-byte the sequential simulation.
//
// Procs are created with Kernel.Proc and cached per affinity; the same
// Proc instance must be used by everything belonging to that node.
type Proc struct {
	k   *Kernel
	aff int32
	sh  *shardState // bound by RunParallel; nil under sequential runs
}

// Proc returns the scheduling handle for the given affinity, creating
// it on first use. aff must be GlobalAff or a non-negative node id.
func (k *Kernel) Proc(aff int32) *Proc {
	if aff == GlobalAff {
		// The global handle is a pure passthrough; it is never bound
		// to a shard (global events run solo between windows).
		if len(k.procs) == 0 {
			k.procs = append(k.procs, &Proc{k: k, aff: GlobalAff})
		}
		return k.procs[0]
	}
	idx := int(aff) + 1 // slot 0 is the global handle
	for len(k.procs) <= idx {
		k.procs = append(k.procs, nil)
	}
	if k.procs[0] == nil {
		k.procs[0] = &Proc{k: k, aff: GlobalAff}
	}
	if k.procs[idx] == nil {
		p := &Proc{k: k, aff: aff}
		if k.parShards > 0 {
			p.sh = &k.shards[int(aff)%k.parShards]
		}
		k.procs[idx] = p
	}
	return k.procs[idx]
}

// Kernel returns the underlying kernel — for setup-time needs (stream
// derivation, run control) that are not part of the in-handler surface.
func (p *Proc) Kernel() *Kernel { return p.k }

// Affinity returns the affinity this Proc schedules under.
func (p *Proc) Affinity() int32 { return p.aff }

// Now returns the current virtual time: the shard clock while this
// Proc's shard is executing a window, the kernel clock otherwise.
func (p *Proc) Now() Time {
	if p.k.inWindow && p.sh != nil {
		return p.sh.now
	}
	return p.k.now
}

// Seed returns the kernel seed.
func (p *Proc) Seed() int64 { return p.k.seed }

// NewStream derives a deterministic random stream (see Kernel.NewStream).
func (p *Proc) NewStream(tag int64) *rand.Rand { return p.k.NewStream(tag) }

// At schedules fn at virtual time at under this Proc's affinity.
// Inside a parallel window the schedule is recorded as an intent and
// committed in exact sequential order at the window barrier; a target
// inside the window (possible only for same-affinity schedules) is
// executed by the same shard within the window, exactly where the
// sequential executor would have run it.
func (p *Proc) At(at Time, fn Handler) Canceler {
	if p.k.inWindow && p.sh != nil {
		return p.sh.scheduleIntent(p, at, fn)
	}
	return p.k.atAff(p.aff, at, fn)
}

// After schedules fn d after the current time (shard clock inside a
// window).
func (p *Proc) After(d Time, fn Handler) Canceler {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return p.At(p.Now()+d, fn)
}

// Defer runs fn immediately under sequential execution; inside a
// parallel window it records fn as an intent and runs it at the
// commit barrier, at exactly the point in the sequential order where
// this call happened (with the kernel clock set to the calling
// event's time). Everything a node handler does to state shared
// across nodes — network sends, tracker and traffic updates, shared
// counters — must go through Defer.
func (p *Proc) Defer(fn func()) {
	if p.k.inWindow && p.sh != nil {
		p.sh.deferIntent(p, fn)
		return
	}
	fn()
}

// Deferring reports whether calls on this Proc are currently being
// deferred (i.e. a parallel window is executing). Callers use it to
// skip building closures on the sequential path.
func (p *Proc) Deferring() bool { return p.k.inWindow && p.sh != nil }
