package metrics

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/ident"
	"repro/internal/sim"
	"repro/internal/wire"
)

// evtAt builds a delivered event carrying its publish timestamp, as
// wire events do in real runs.
func evtAt(src, seq int, at sim.Time) *wire.Event {
	return &wire.Event{ID: eid(src, seq), PublishedAt: int64(at)}
}

// TestDeliveryTrackerEdgeWindows pins the window semantics of the
// exact tracker: [from, to) half-open on publish time, empty and
// before-first-publish windows neutral.
func TestDeliveryTrackerEdgeWindows(t *testing.T) {
	d := NewDeliveryTracker(nil)
	// One event exactly on a bucket/window boundary, one inside.
	d.OnPublish(eid(0, 1), 2, time.Second)
	d.OnPublish(eid(0, 2), 2, 1500*time.Millisecond)
	d.OnDeliver(1, evt(0, 1), false)
	d.OnDeliver(1, evt(0, 2), true)
	d.OnDeliver(2, evt(0, 2), false)

	// Empty range: from == to.
	if got := d.Rate(time.Second, time.Second); got != 1 {
		t.Fatalf("Rate of empty range = %v, want 1 (neutral)", got)
	}
	if got := d.RecoveredShare(time.Second, time.Second); got != 0 {
		t.Fatalf("RecoveredShare of empty range = %v, want 0", got)
	}
	if got := d.ReceiversPerEvent(time.Second, time.Second); got != 0 {
		t.Fatalf("ReceiversPerEvent of empty range = %v, want 0", got)
	}

	// Range entirely before the first publish.
	if got := d.Rate(0, time.Second); got != 1 {
		t.Fatalf("Rate before first publish = %v, want 1 (neutral)", got)
	}
	if got := d.ReceiversPerEvent(0, time.Second); got != 0 {
		t.Fatalf("ReceiversPerEvent before first publish = %v, want 0", got)
	}

	// Boundary inclusion: an event published exactly at from is in;
	// exactly at to is out.
	if got := d.Rate(time.Second, 1500*time.Millisecond); !approx(got, 0.5) {
		t.Fatalf("Rate [1s, 1.5s) = %v, want 0.5 (boundary event at from included)", got)
	}
	if got := d.ReceiversPerEvent(0, time.Second+1); !approx(got, 2) {
		t.Fatalf("ReceiversPerEvent [0, 1s] = %v, want 2 (event at to excluded)", got)
	}
	if got := d.RecoveredShare(1200*time.Millisecond, 2*time.Second); !approx(got, 0.5) {
		t.Fatalf("RecoveredShare of second event = %v, want 0.5", got)
	}
}

func TestReservoirExactUnderCap(t *testing.T) {
	h := NewLatencyHistogram()
	r := NewLatencyReservoir(1024, 42)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		d := sim.Time(rng.Intn(int(50 * time.Millisecond)))
		h.Observe(d)
		r.Observe(d)
	}
	if h.Count() != r.Count() || h.Min() != r.Min() || h.Max() != r.Max() {
		t.Fatalf("count/min/max diverge: hist %d/%v/%v res %d/%v/%v",
			h.Count(), h.Min(), h.Max(), r.Count(), r.Min(), r.Max())
	}
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 1} {
		if hq, rq := h.Quantile(q), r.Quantile(q); hq != rq {
			t.Fatalf("q=%v: histogram %v != reservoir %v (reservoir holds all samples, must match exactly)", q, hq, rq)
		}
	}
}

func TestReservoirDeterministicOverflow(t *testing.T) {
	sample := func(seed int64) []sim.Time {
		r := NewLatencyReservoir(256, seed)
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 10_000; i++ {
			r.Observe(sim.Time(rng.Intn(int(time.Second))))
		}
		return r.Quantiles(0.5, 0.9, 0.99)
	}
	a, b := sample(11), sample(11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
	// A different replacement seed keeps estimates close to the truth:
	// uniform samples, so the q-quantile is ~q·1s; the 256-sample
	// reservoir should land within ~20% at the median.
	c := sample(99)
	if got, want := float64(c[0]), 0.5*float64(time.Second); math.Abs(got-want)/want > 0.25 {
		t.Fatalf("overflowed reservoir p50 = %v, want within 25%% of %v", sim.Time(got), sim.Time(want))
	}
}

func TestReservoirResetReuse(t *testing.T) {
	r := NewLatencyReservoir(64, 5)
	for i := 0; i < 1000; i++ {
		r.Observe(sim.Time(i) * time.Millisecond)
	}
	r.Reset(5)
	if r.Count() != 0 || r.Mean() != 0 || r.Min() != 0 || r.Max() != 0 {
		t.Fatal("reset reservoir reports stale statistics")
	}
	fresh := NewLatencyReservoir(64, 5)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		d := sim.Time(rng.Intn(int(time.Second)))
		r.Observe(d)
		fresh.Observe(d)
	}
	if r.Quantile(0.9) != fresh.Quantile(0.9) {
		t.Fatal("reset+reused reservoir diverges from a fresh one on the same stream")
	}
}

func TestReservoirNegativePanics(t *testing.T) {
	r := NewLatencyReservoir(8, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative latency")
		}
	}()
	r.Observe(-1)
}

// TestStreamingMatchesExactSynthetic replays one synthetic event
// stream into both tracker implementations and requires totals and
// bucket-aligned windowed metrics to agree exactly, and latency
// quantiles to agree exactly while the reservoir holds every sample.
func TestStreamingMatchesExactSynthetic(t *testing.T) {
	const width = 100 * time.Millisecond
	var now sim.Time
	clock := func() sim.Time { return now }
	exact := NewDeliveryTracker(clock)
	stream := NewStreamingTracker(StreamingConfig{
		Now: clock, Seed: 1, BucketWidth: width, RingBuckets: 512,
	})

	rng := rand.New(rand.NewSource(21))
	type pub struct {
		id  ident.EventID
		at  sim.Time
		exp int
	}
	var pubs []pub
	for seq := 1; seq <= 400; seq++ {
		at := sim.Time(rng.Intn(int(20 * time.Second)))
		exp := rng.Intn(6)
		p := pub{id: eid(seq%7, seq), at: at, exp: exp}
		pubs = append(pubs, p)
		exact.OnPublish(p.id, p.exp, p.at)
		stream.OnPublish(p.id, p.exp, p.at)
		for d := 0; d < exp; d++ {
			if rng.Float64() < 0.85 {
				now = p.at + sim.Time(rng.Intn(int(400*time.Millisecond)))
				ev := &wire.Event{ID: p.id, PublishedAt: int64(p.at)}
				rec := rng.Float64() < 0.2
				// d+1 never collides with the source id range [0,7):
				// use node ids above it.
				exact.OnDeliver(ident.NodeID(10+d), ev, rec)
				stream.OnDeliver(ident.NodeID(10+d), ev, rec)
			}
		}
	}

	ee, ed, er := exact.Totals()
	se, sd, sr := stream.Totals()
	if ee != se || ed != sd || er != sr {
		t.Fatalf("totals diverge: exact %d/%d/%d streaming %d/%d/%d", ee, ed, er, se, sd, sr)
	}
	if got := stream.LateDeliveries(); got != 0 {
		t.Fatalf("LateDeliveries = %d on a run the ring fully spans", got)
	}

	windows := [][2]sim.Time{
		{0, 20 * time.Second},
		{time.Second, 18 * time.Second},    // bucket-aligned
		{0, 0},                             // empty
		{30 * time.Second, time.Minute},    // after everything
		{500 * time.Millisecond, 4 * time.Second},
	}
	for _, w := range windows {
		if e, s := exact.Rate(w[0], w[1]), stream.Rate(w[0], w[1]); !approx(e, s) {
			t.Fatalf("Rate%v: exact %v streaming %v", w, e, s)
		}
		if e, s := exact.RecoveredShare(w[0], w[1]), stream.RecoveredShare(w[0], w[1]); !approx(e, s) {
			t.Fatalf("RecoveredShare%v: exact %v streaming %v", w, e, s)
		}
		if e, s := exact.ReceiversPerEvent(w[0], w[1]), stream.ReceiversPerEvent(w[0], w[1]); !approx(e, s) {
			t.Fatalf("ReceiversPerEvent%v: exact %v streaming %v", w, e, s)
		}
	}

	ep, sp := exact.TimeSeries(width), stream.TimeSeries(width)
	if len(ep) != len(sp) {
		t.Fatalf("time series length: exact %d streaming %d", len(ep), len(sp))
	}
	for i := range ep {
		if ep[i] != sp[i] {
			t.Fatalf("time series bucket %d: exact %+v streaming %+v", i, ep[i], sp[i])
		}
	}

	for _, q := range []float64{0.5, 0.9, 0.99} {
		if e, s := exact.RoutedLatency().Quantile(q), stream.RoutedLatency().Quantile(q); e != s {
			t.Fatalf("routed q=%v: exact %v streaming %v (reservoir under cap must match exactly)", q, e, s)
		}
		if e, s := exact.RecoveryLatency().Quantile(q), stream.RecoveryLatency().Quantile(q); e != s {
			t.Fatalf("recovery q=%v: exact %v streaming %v", q, e, s)
		}
	}
}

func TestStreamingSelfDeliveryIgnored(t *testing.T) {
	s := NewStreamingTracker(StreamingConfig{BucketWidth: time.Second})
	s.OnPublish(eid(7, 1), 1, 0)
	s.OnDeliver(7, evtAt(7, 1, 0), false)
	if _, del, _ := s.Totals(); del != 0 {
		t.Fatal("self-delivery counted")
	}
}

// TestStreamingEviction drives a deliberately tiny ring past its span:
// totals must stay exact, late deliveries must be counted, and
// windowed queries over evicted regions degrade to neutral.
func TestStreamingEviction(t *testing.T) {
	s := NewStreamingTracker(StreamingConfig{BucketWidth: time.Second, RingBuckets: 4})
	for i := 0; i < 10; i++ {
		at := sim.Time(i) * time.Second
		s.OnPublish(eid(0, i+1), 2, at)
		s.OnDeliver(1, evtAt(0, i+1, at), false)
	}
	// A delivery referring to bucket 0, long since evicted.
	s.OnDeliver(2, evtAt(0, 1, 0), false)

	exp, del, _ := s.Totals()
	if exp != 20 || del != 11 {
		t.Fatalf("Totals = %d/%d, want 20/11 (exact despite eviction)", exp, del)
	}
	if got := s.LateDeliveries(); got != 1 {
		t.Fatalf("LateDeliveries = %d, want 1", got)
	}
	// Buckets 0–5 are gone; the query window only sees live cells.
	if got := s.Rate(0, 6*time.Second); got != 1 {
		t.Fatalf("Rate over evicted window = %v, want 1 (neutral)", got)
	}
	if got := s.Rate(6*time.Second, 10*time.Second); !approx(got, 0.5) {
		t.Fatalf("Rate over live window = %v, want 0.5", got)
	}
}

func TestStreamingTimeSeriesGrouping(t *testing.T) {
	const width = 100 * time.Millisecond
	exact := NewDeliveryTracker(nil)
	s := NewStreamingTracker(StreamingConfig{BucketWidth: width, RingBuckets: 128})
	rng := rand.New(rand.NewSource(4))
	for i := 1; i <= 60; i++ {
		at := sim.Time(rng.Intn(int(5 * time.Second)))
		exact.OnPublish(eid(0, i), 2, at)
		s.OnPublish(eid(0, i), 2, at)
		ev := evtAt(0, i, at)
		exact.OnDeliver(1, ev, false)
		s.OnDeliver(1, ev, false)
	}
	// Aggregating at 3× the native width must match the exact tracker
	// bucketing at the same width.
	ep, sp := exact.TimeSeries(3*width), s.TimeSeries(3*width)
	if len(ep) != len(sp) {
		t.Fatalf("grouped series length: exact %d streaming %d", len(ep), len(sp))
	}
	for i := range ep {
		if ep[i] != sp[i] {
			t.Fatalf("grouped bucket %d: exact %+v streaming %+v", i, ep[i], sp[i])
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("no panic on a non-multiple time-series bucket")
		}
	}()
	s.TimeSeries(width + 1)
}

func TestStreamingResetReuse(t *testing.T) {
	s := NewStreamingTracker(StreamingConfig{BucketWidth: time.Second, RingBuckets: 8, Seed: 3})
	for i := 0; i < 20; i++ {
		at := sim.Time(i) * time.Second
		s.OnPublish(eid(0, i+1), 1, at)
		s.OnDeliver(1, evtAt(0, i+1, at), false)
	}
	s.Reset(StreamingConfig{BucketWidth: 500 * time.Millisecond, RingBuckets: 8, Seed: 3})
	if exp, del, rec := s.Totals(); exp != 0 || del != 0 || rec != 0 {
		t.Fatal("reset tracker reports stale totals")
	}
	if s.LateDeliveries() != 0 {
		t.Fatal("reset tracker reports stale late deliveries")
	}
	s.OnPublish(eid(0, 1), 1, 0)
	s.OnDeliver(1, evtAt(0, 1, 0), false)
	if got := s.Rate(0, time.Second); !approx(got, 1) {
		t.Fatalf("Rate after reset = %v, want 1", got)
	}
	if pts := s.TimeSeries(500 * time.Millisecond); len(pts) != 1 {
		t.Fatalf("time series after reset = %d buckets, want 1", len(pts))
	}
}
