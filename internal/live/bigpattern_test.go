package live

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ident"
	"repro/internal/matching"
	"repro/internal/wire"
)

// TestLiveSpillPatternDelivery is the live-routing half of the Π>128
// regression: subscriptions to patterns beyond the inline bitset tier
// (here 200 and 513) must be first-class on the event fast-match path.
// Before the tiered PatternSet, localMatchLocked had a map fallback for
// these identifiers that the hot path could skip; now the bitset itself
// answers for them.
func TestLiveSpillPatternDelivery(t *testing.T) {
	var delivered sync.Map // nodeID → count
	c, err := NewCluster(6, 4, 77, func(i int) Config {
		id := ident.NodeID(i)
		return Config{
			OnDeliver: func(ev *wire.Event, recovered bool) {
				v, _ := delivered.LoadOrStore(id, new(atomic.Int64))
				v.(*atomic.Int64).Add(1)
			},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.Nodes[3].Subscribe(200)
	c.Nodes[4].Subscribe(513)
	waitFor(t, 2*time.Second, func() bool {
		for _, n := range c.Nodes {
			if n.KnownPatternCount() < 2 {
				return false
			}
		}
		return true
	}, "spill-pattern subscription propagation")

	c.Nodes[0].Publish(matching.Content{200})
	c.Nodes[0].Publish(matching.Content{513})
	c.Nodes[0].Publish(matching.Content{200, 513})
	c.Nodes[0].Publish(matching.Content{3}) // matches nobody

	count := func(id ident.NodeID) int64 {
		v, ok := delivered.Load(id)
		if !ok {
			return 0
		}
		return v.(*atomic.Int64).Load()
	}
	waitFor(t, 2*time.Second, func() bool {
		return count(3) == 2 && count(4) == 2
	}, "delivery of spill-tier patterns to both subscribers")

	time.Sleep(50 * time.Millisecond)
	for i := 0; i < 6; i++ {
		id := ident.NodeID(i)
		if id == 3 || id == 4 {
			continue
		}
		if got := count(id); got != 0 {
			t.Fatalf("non-subscriber %v got %d deliveries", id, got)
		}
	}
}
