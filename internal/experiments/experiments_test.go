package experiments

import (
	"strings"
	"testing"
)

func TestIDsCoverEveryPaperFigure(t *testing.T) {
	want := []string{"3a", "3b", "4a", "4b", "5", "6", "7", "8", "9a", "9b", "10"}
	have := make(map[string]bool)
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("figure %q missing from IDs()", id)
		}
	}
	for _, id := range IDs() {
		if _, err := Title(id); err != nil {
			t.Errorf("Title(%q): %v", id, err)
		}
	}
}

func TestTitleUnknown(t *testing.T) {
	if _, err := Title("nope"); err == nil {
		t.Fatal("Title accepted unknown id")
	}
	if _, err := Generate("nope", Options{}); err == nil {
		t.Fatal("Generate accepted unknown id")
	}
}

func TestGenerateFig7Quick(t *testing.T) {
	figs, err := Generate("7", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 1 {
		t.Fatalf("%d figures, want 1", len(figs))
	}
	f := figs[0]
	if len(f.Series) != 1 || len(f.Series[0].Points) == 0 {
		t.Fatalf("series = %+v, want one populated series", f.Series)
	}
	// Receivers per event must grow with πmax (the figure's whole
	// point).
	pts := f.Series[0].Points
	for i := 1; i < len(pts); i++ {
		if pts[i].Y <= pts[i-1].Y {
			t.Fatalf("receivers not increasing: %v", pts)
		}
	}
}

func TestGenerateTimeSeriesQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("several small simulations")
	}
	figs, err := Generate("3a", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("%d figures, want 2 (ε=0.05 and ε=0.1)", len(figs))
	}
	for _, f := range figs {
		if len(f.Series) != 3 { // quick mode: no-recovery, push, combined
			t.Fatalf("%s: %d series, want 3", f.ID, len(f.Series))
		}
		for _, s := range f.Series {
			if len(s.Points) == 0 {
				t.Fatalf("%s/%s: empty series", f.ID, s.Name)
			}
		}
	}
}

func TestGenerateSweepQuickXIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("several small simulations")
	}
	figs, err := Generate("4a", Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	f := figs[0]
	// The no-recovery reference is x-independent: same Y at every β.
	for _, s := range f.Series {
		if s.Name != "no-recovery" {
			continue
		}
		if len(s.Points) != 3 {
			t.Fatalf("no-recovery has %d points, want 3", len(s.Points))
		}
		for _, p := range s.Points[1:] {
			if p.Y != s.Points[0].Y {
				t.Fatalf("no-recovery not flat: %v", s.Points)
			}
		}
	}
}

func TestRenderTable(t *testing.T) {
	f := Figure{
		ID: "t", Title: "Test", XLabel: "x", YLabel: "y",
		Notes: []string{"note"},
		Series: []Series{
			{Name: "alpha", Points: []Point{{X: 1, Y: 0.5}, {X: 2, Y: 0.75}}},
			{Name: "beta", Points: []Point{{X: 2, Y: 1}}},
		},
	}
	var b strings.Builder
	if err := Render(f, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# t — Test", "# note", "# y: y",
		"alpha", "beta", "0.5", "0.75",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}
	// Series beta has no point at x=1: rendered as "-".
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var row1 string
	for _, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "1 ") || strings.HasSuffix(l, "-") {
			row1 = l
		}
	}
	if !strings.Contains(row1, "-") {
		t.Fatalf("missing-point marker not rendered:\n%s", out)
	}
}

// TestGenerateAllQuick smokes every figure generator (paper figures
// and extensions) in Quick mode: each must produce non-empty,
// renderable figures without error.
func TestGenerateAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every generator")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			figs, err := Generate(id, Options{Quick: true})
			if err != nil {
				t.Fatalf("Generate(%q): %v", id, err)
			}
			if len(figs) == 0 {
				t.Fatalf("Generate(%q) returned no figures", id)
			}
			for _, f := range figs {
				if len(f.Series) == 0 {
					t.Fatalf("%s: no series", f.ID)
				}
				for _, s := range f.Series {
					if len(s.Points) == 0 {
						t.Fatalf("%s/%s: empty series", f.ID, s.Name)
					}
				}
				var text, svg strings.Builder
				if err := Render(f, &text); err != nil {
					t.Fatalf("%s: Render: %v", f.ID, err)
				}
				if err := RenderSVG(f, &svg); err != nil {
					t.Fatalf("%s: RenderSVG: %v", f.ID, err)
				}
			}
		})
	}
}

func TestRenderSVG(t *testing.T) {
	f := Figure{
		ID: "t", Title: `Test <&> "quotes"`, XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "alpha", Points: []Point{{X: 1, Y: 0.5}, {X: 2, Y: 0.75}, {X: 3, Y: 0.9}}},
			{Name: "beta", Points: []Point{{X: 1, Y: 0.2}, {X: 3, Y: 0.4}}},
		},
	}
	var b strings.Builder
	if err := RenderSVG(f, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "circle",
		"alpha", "beta",
		"&lt;&amp;&gt;", // escaping
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q:\n%s", want, out[:200])
		}
	}
	if strings.Contains(out, `Test <&>`) {
		t.Fatal("unescaped markup in SVG")
	}
	// Empty figures are rejected.
	if err := RenderSVG(Figure{ID: "e"}, &b); err == nil {
		t.Fatal("empty figure rendered")
	}
}

func TestRenderSVGFlatSeries(t *testing.T) {
	// A single flat series (zero y-range) must not divide by zero.
	f := Figure{
		ID: "flat", Title: "flat", XLabel: "x", YLabel: "y",
		Series: []Series{{Name: "s", Points: []Point{{X: 1, Y: 0.5}, {X: 2, Y: 0.5}}}},
	}
	var b strings.Builder
	if err := RenderSVG(f, &b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "NaN") || strings.Contains(b.String(), "Inf") {
		t.Fatal("degenerate coordinates in SVG")
	}
}

func TestTrimFloat(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{1, "1"}, {0.5, "0.5"}, {0.75, "0.75"}, {0, "0"},
		{1234, "1234"}, {0.0001, "0.0001"},
	}
	for _, tt := range tests {
		if got := trimFloat(tt.in); got != tt.want {
			t.Errorf("trimFloat(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestBufferForPersistence(t *testing.T) {
	// At the paper defaults (N=100, πmax=2, Π=70, 50/s) the fill rate
	// is ≈466 events/s, so a 4 s persistence needs β≈1860.
	got := bufferForPersistence(4e9, 100, 50, 2, 70, 3)
	if got < 1500 || got > 2200 {
		t.Fatalf("bufferForPersistence = %d, want ≈1860", got)
	}
	// Linear-ish growth with N (the paper's conservative scaling).
	if b200 := bufferForPersistence(4e9, 200, 50, 2, 70, 3); b200 < 3*got/2 {
		t.Fatalf("β(200) = %d vs β(100) = %d: not scaling with N", b200, got)
	}
}
