// Mobile scenario: the paper's motivating setting — a dispatching
// overlay whose topology is continuously reconfigured (e.g. mobile or
// peer-to-peer networks). Links are reliable; events are lost because
// links break and routes need repair. The example reproduces the
// qualitative content of paper Fig. 3(b): without recovery the delivery
// rate spikes downward at every reconfiguration; epidemic recovery
// levels it close to 100%.
//
//	go run ./examples/mobile
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	epidemic "repro"
)

func main() {
	log.SetFlags(0)

	run := func(algo epidemic.Algorithm, rho time.Duration) epidemic.Result {
		p := epidemic.DefaultParams()
		p.N = 50
		p.Duration = 8 * time.Second
		p.Network.LossRate = 0 // reliable links:
		p.Network.OOBLossRate = 0
		p.ReconfigInterval = rho // ...loss comes from churn
		p.Algorithm = algo
		res, err := epidemic.Run(p)
		if err != nil {
			log.Fatalf("run %v: %v", algo, err)
		}
		return res
	}

	for _, rho := range []time.Duration{200 * time.Millisecond, 30 * time.Millisecond} {
		kind := "non-overlapping"
		if rho < 100*time.Millisecond {
			kind = "overlapping (several links down at once)"
		}
		fmt.Printf("── link breaks every ρ=%v, repaired after 100ms — %s ──\n\n", rho, kind)

		baseline := run(epidemic.NoRecovery, rho)
		recovered := run(epidemic.CombinedPull, rho)
		fmt.Printf("  reconfigurations: %d\n", baseline.Reconfigurations)
		fmt.Printf("  %-14s delivery %5.1f%%, worst bucket %5.1f%%\n",
			"no recovery:", baseline.DeliveryRate*100, worst(baseline)*100)
		fmt.Printf("  %-14s delivery %5.1f%%, worst bucket %5.1f%%\n\n",
			"combined pull:", recovered.DeliveryRate*100, worst(recovered)*100)

		fmt.Println("  delivery rate over time (·=no recovery, #=combined pull):")
		sparkline(baseline, recovered)
		fmt.Println()
	}
}

// worst returns the lowest delivery-rate bucket inside the measurement
// window — the depth of the reconfiguration spikes.
func worst(r epidemic.Result) float64 {
	low := 1.0
	for _, pt := range r.TimeSeries {
		if pt.Time < r.Params.MeasureFrom || pt.Time >= r.Params.MeasureTo {
			continue
		}
		if pt.Rate < low {
			low = pt.Rate
		}
	}
	return low
}

// sparkline prints a crude two-row chart of the two time series.
func sparkline(a, b epidemic.Result) {
	rows := []struct {
		r    epidemic.Result
		mark byte
	}{{a, '.'}, {b, '#'}}
	for _, row := range rows {
		var sb strings.Builder
		sb.WriteString("  ")
		for _, pt := range row.r.TimeSeries {
			if pt.Time < row.r.Params.MeasureFrom || pt.Time >= row.r.Params.MeasureTo {
				continue
			}
			// One character per bucket: height-coded delivery rate.
			switch {
			case pt.Rate >= 0.98:
				sb.WriteByte(row.mark)
			case pt.Rate >= 0.9:
				sb.WriteByte('+')
			case pt.Rate >= 0.75:
				sb.WriteByte('-')
			default:
				sb.WriteByte('_')
			}
		}
		fmt.Println(sb.String())
	}
}
