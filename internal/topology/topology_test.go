package topology

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ident"
)

func TestNewProducesTree(t *testing.T) {
	tests := []struct {
		name      string
		n, degree int
	}{
		{"single", 1, 4},
		{"pair", 2, 4},
		{"paper default", 100, 4},
		{"large", 200, 4},
		{"binary", 50, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tr, err := New(tt.n, tt.degree, rand.New(rand.NewSource(1)))
			if err != nil {
				t.Fatalf("New(%d, %d): %v", tt.n, tt.degree, err)
			}
			if !tr.IsTree() {
				t.Fatal("result is not a tree")
			}
			if tr.NumLinks() != tt.n-1 {
				t.Fatalf("links = %d, want %d", tr.NumLinks(), tt.n-1)
			}
			for i := 0; i < tt.n; i++ {
				if d := tr.Degree(ident.NodeID(i)); d > tt.degree {
					t.Fatalf("node %d degree %d exceeds bound %d", i, d, tt.degree)
				}
			}
		})
	}
}

func TestNewRejectsImpossibleConfigs(t *testing.T) {
	if _, err := New(0, 4, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("New(0, 4) succeeded")
	}
	if _, err := New(10, 1, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("New(10, 1) succeeded, cannot connect 10 nodes with degree 1")
	}
}

func TestMeanPairwiseDistanceMatchesPaperAnchor(t *testing.T) {
	// The paper's baseline delivery (≈55% at ε=0.1, ≈75% at ε=0.05)
	// implies a mean publisher→subscriber distance near 5.6 hops at
	// N=100, maxDegree=4. Our generator should land in that band.
	var sum float64
	const runs = 20
	for seed := int64(0); seed < runs; seed++ {
		tr, err := New(100, 4, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		sum += tr.MeanPairwiseDistance()
	}
	mean := sum / runs
	if mean < 4.5 || mean > 7.0 {
		t.Fatalf("mean pairwise distance %.2f outside calibration band [4.5, 7.0]", mean)
	}
}

func TestLineAndStar(t *testing.T) {
	line := NewLine(5)
	if !line.IsTree() {
		t.Fatal("line is not a tree")
	}
	if d := line.Dist(0, 4); d != 4 {
		t.Fatalf("line Dist(0,4) = %d, want 4", d)
	}
	star := NewStar(6)
	if !star.IsTree() {
		t.Fatal("star is not a tree")
	}
	if d := star.Dist(1, 5); d != 2 {
		t.Fatalf("star Dist(1,5) = %d, want 2", d)
	}
	if d := star.Degree(0); d != 5 {
		t.Fatalf("star center degree = %d, want 5", d)
	}
}

func TestRemoveLinkSplitsComponents(t *testing.T) {
	line := NewLine(6)
	if err := line.RemoveLink(2, 3); err != nil {
		t.Fatal(err)
	}
	if line.Connected() {
		t.Fatal("still connected after removing a tree link")
	}
	if got := len(line.Component(0)); got != 3 {
		t.Fatalf("component of 0 has %d nodes, want 3", got)
	}
	if got := len(line.Component(5)); got != 3 {
		t.Fatalf("component of 5 has %d nodes, want 3", got)
	}
	if line.Dist(0, 5) != -1 {
		t.Fatal("Dist across components should be -1")
	}
	if err := line.RemoveLink(2, 3); !errors.Is(err, ErrNoSuchLink) {
		t.Fatalf("second removal err = %v, want ErrNoSuchLink", err)
	}
}

func TestAddLinkValidation(t *testing.T) {
	line := NewLine(4) // maxDegree 2
	if err := line.AddLink(1, 1); !errors.Is(err, ErrSameEndpoint) {
		t.Fatalf("self link err = %v, want ErrSameEndpoint", err)
	}
	if err := line.AddLink(0, 1); !errors.Is(err, ErrLinkExists) {
		t.Fatalf("duplicate link err = %v, want ErrLinkExists", err)
	}
	if err := line.AddLink(0, 3); !errors.Is(err, ErrWouldCycle) {
		t.Fatalf("cycle link err = %v, want ErrWouldCycle", err)
	}
	if err := line.RemoveLink(1, 2); err != nil {
		t.Fatal(err)
	}
	// Node 1 now has degree 1, but node 0 sits inside the other
	// component... 0 and 1 are in the same component, so joining 2's
	// component through node 1 works, through full node fails.
	if err := line.AddLink(1, 2); err != nil {
		t.Fatalf("valid rejoin failed: %v", err)
	}
	if !line.IsTree() {
		t.Fatal("not a tree after rejoin")
	}
}

func TestAddLinkDegreeLimit(t *testing.T) {
	line := NewLine(4) // 0-1-2-3, maxDegree 2; nodes 1 and 2 are full
	if err := line.RemoveLink(0, 1); err != nil {
		t.Fatal(err)
	}
	// Node 2 is still at its degree limit: attaching 0 to it must fail.
	if err := line.AddLink(0, 2); !errors.Is(err, ErrDegreeFull) {
		t.Fatalf("AddLink to full node err = %v, want ErrDegreeFull", err)
	}
	// Node 3 has a free slot: attaching there succeeds.
	if err := line.AddLink(0, 3); err != nil {
		t.Fatal(err)
	}
	if !line.IsTree() {
		t.Fatal("not a tree after degree-respecting rejoin")
	}
}

func TestReplacementLinkReconnects(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		tr, err := New(30, 4, rng)
		if err != nil {
			t.Fatal(err)
		}
		broken := tr.RandomLink(rng)
		if err := tr.RemoveLink(broken.A, broken.B); err != nil {
			t.Fatal(err)
		}
		repl, err := tr.ReplacementLink(broken, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.AddLink(repl.A, repl.B); err != nil {
			t.Fatalf("trial %d: AddLink(%v): %v", trial, repl, err)
		}
		if !tr.IsTree() {
			t.Fatalf("trial %d: not a tree after reconfiguration", trial)
		}
	}
}

func TestLinkIncarnation(t *testing.T) {
	line := NewLine(3)
	if got := line.LinkIncarnation(0, 1); got != 1 {
		t.Fatalf("initial incarnation = %d, want 1", got)
	}
	if got := line.LinkIncarnation(0, 2); got != 0 {
		t.Fatalf("never-created link incarnation = %d, want 0", got)
	}
	if err := line.RemoveLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if got := line.LinkIncarnation(0, 1); got != 1 {
		t.Fatalf("incarnation after removal = %d, want 1 (unchanged)", got)
	}
	if err := line.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if got := line.LinkIncarnation(0, 1); got != 2 {
		t.Fatalf("incarnation after re-add = %d, want 2", got)
	}
	// Endpoint order does not matter.
	if line.LinkIncarnation(1, 0) != line.LinkIncarnation(0, 1) {
		t.Fatal("incarnation not symmetric")
	}
}

func TestLinkOtherAndCanon(t *testing.T) {
	l := Link{A: 5, B: 2}.Canon()
	if l.A != 2 || l.B != 5 {
		t.Fatalf("Canon = %v, want {2 5}", l)
	}
	if l.Other(2) != 5 || l.Other(5) != 2 {
		t.Fatal("Other returned wrong endpoint")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other with non-endpoint did not panic")
		}
	}()
	l.Other(9)
}

func TestDistCacheInvalidatedByMutation(t *testing.T) {
	line := NewLine(4) // 0-1-2-3
	if d := line.Dist(0, 3); d != 3 {
		t.Fatalf("Dist(0,3) = %d, want 3", d)
	}
	if err := line.RemoveLink(1, 2); err != nil {
		t.Fatal(err)
	}
	// 0 (degree 1) and 2 (degree 1) sit in different components: legal.
	if err := line.AddLink(0, 2); err != nil {
		t.Fatal(err)
	}
	if d := line.Dist(0, 3); d != 2 {
		t.Fatalf("Dist(0,3) after rewire = %d, want 2 (0-2-3)", d)
	}
	if d := line.Dist(1, 3); d != 3 {
		t.Fatalf("Dist(1,3) after rewire = %d, want 3 (1-0-2-3)", d)
	}
}

// TestReconfigurationSequenceInvariants is the property test demanded
// by DESIGN.md: an arbitrary sequence of break-and-replace operations
// keeps the topology a degree-bounded spanning tree.
func TestReconfigurationSequenceInvariants(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(90)
		tr, err := New(n, 4, rng)
		if err != nil {
			return false
		}
		for i := 0; i < int(steps%64)+1; i++ {
			broken := tr.RandomLink(rng)
			if err := tr.RemoveLink(broken.A, broken.B); err != nil {
				return false
			}
			repl, err := tr.ReplacementLink(broken, rng)
			if err != nil {
				return false
			}
			if err := tr.AddLink(repl.A, repl.B); err != nil {
				return false
			}
			if !tr.IsTree() {
				return false
			}
			for v := 0; v < n; v++ {
				if tr.Degree(ident.NodeID(v)) > 4 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkNewTopology(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := New(100, 4, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistAfterMutation(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr, err := New(200, 4, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		broken := tr.RandomLink(rng)
		if err := tr.RemoveLink(broken.A, broken.B); err != nil {
			b.Fatal(err)
		}
		repl, err := tr.ReplacementLink(broken, rng)
		if err != nil {
			b.Fatal(err)
		}
		if err := tr.AddLink(repl.A, repl.B); err != nil {
			b.Fatal(err)
		}
		_ = tr.Dist(0, ident.NodeID(i%200))
	}
}

func TestNeighborSlot(t *testing.T) {
	tr := NewStar(4) // 0 - {1, 2, 3}
	for i, want := range []ident.NodeID{1, 2, 3} {
		if got := tr.NeighborSlot(0, want); got != i {
			t.Fatalf("NeighborSlot(0, %v) = %d, want %d", want, got, i)
		}
		if got := tr.NeighborSlot(want, 0); got != 0 {
			t.Fatalf("NeighborSlot(%v, 0) = %d, want 0", want, got)
		}
	}
	if got := tr.NeighborSlot(1, 2); got != -1 {
		t.Fatalf("NeighborSlot(1, 2) = %d, want -1", got)
	}
	// RemoveLink compacts later slots down by one.
	if err := tr.RemoveLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if got := tr.NeighborSlot(0, 2); got != 0 {
		t.Fatalf("NeighborSlot(0, 2) after removal = %d, want 0", got)
	}
	if got := tr.NeighborSlot(0, 1); got != -1 {
		t.Fatalf("NeighborSlot(0, 1) after removal = %d, want -1", got)
	}
}
