package topology

import (
	"fmt"
	"math/rand"

	"repro/internal/ident"
)

// RemoveNode removes every link incident to v, leaving it isolated, and
// returns the removed links in canonical form. Fault injection uses it
// to model a dispatcher crash: a dead process takes all its overlay
// links down with it; the survivors are healed separately.
func (t *Tree) RemoveNode(v ident.NodeID) []Link {
	nbs := t.adj[v]
	if len(nbs) == 0 {
		return nil
	}
	out := make([]Link, 0, len(nbs))
	for len(t.adj[v]) > 0 {
		nb := t.adj[v][0]
		if err := t.RemoveLink(v, nb); err != nil {
			break // unreachable: the adjacency list names real links
		}
		out = append(out, Link{A: v, B: nb}.Canon())
	}
	return out
}

// Path returns the nodes on the unique path from a to b, inclusive, or
// nil when the endpoints are disconnected (or equal, where no edge can
// be cut between them).
func (t *Tree) Path(a, b ident.NodeID) []ident.NodeID {
	if a == b {
		return nil
	}
	parent := make([]ident.NodeID, t.n)
	seen := make([]bool, t.n)
	seen[a] = true
	queue := []ident.NodeID{a}
	for i := 0; i < len(queue); i++ {
		x := queue[i]
		for _, y := range t.adj[x] {
			if seen[y] {
				continue
			}
			seen[y] = true
			parent[y] = x
			if y == b {
				var path []ident.NodeID
				for at := b; ; at = parent[at] {
					path = append(path, at)
					if at == a {
						break
					}
				}
				for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
					path[l], path[r] = path[r], path[l]
				}
				return path
			}
			queue = append(queue, y)
		}
	}
	return nil
}

// ReconnectAround merges the components containing the given anchor
// nodes back into one, adding degree-respecting random links. Nodes for
// which skip returns true (e.g. crashed dispatchers) are neither used
// as endpoints nor anchors. Returns the links added; when some merge is
// impossible (no free degree slots on one side) it returns the partial
// result together with an error, and the caller retries later —
// exactly the contract of the reconfiguration repair loop.
func (t *Tree) ReconnectAround(anchors []ident.NodeID, skip func(ident.NodeID) bool, rng *rand.Rand) ([]Link, error) {
	var added []Link
	var base ident.NodeID
	haveBase := false
	for _, a := range anchors {
		if skip != nil && skip(a) {
			continue
		}
		if !haveBase {
			base, haveBase = a, true
			continue
		}
		if t.sameComponent(base, a) {
			continue
		}
		x := pickFree(t, t.Component(base), skip, rng)
		y := pickFree(t, t.Component(a), skip, rng)
		if x < 0 || y < 0 {
			return added, fmt.Errorf("topology: no degree-%d slots to merge components of %v and %v", t.maxDegree, base, a)
		}
		if err := t.AddLink(ident.NodeID(x), ident.NodeID(y)); err != nil {
			return added, err
		}
		added = append(added, Link{A: ident.NodeID(x), B: ident.NodeID(y)}.Canon())
	}
	return added, nil
}

// pickFree returns a uniform random member of comp with spare degree
// capacity and skip false, or -1 when none exists.
//
// Two passes, zero allocations: the first pass counts the candidates,
// one rng.Intn draw selects a rank, the second pass walks to it. The
// previous version built a candidate slice per pick — O(component)
// garbage per merge during mass churn. A single-pass reservoir sample
// would also be allocation-free but draws one random number per
// candidate instead of one total, which would shift the injector's RNG
// stream and break the pinned fixed-seed churn metrics; the two-pass
// form consumes exactly the draw sequence the slice version did.
func pickFree(t *Tree, comp []ident.NodeID, skip func(ident.NodeID) bool, rng *rand.Rand) int {
	count := 0
	for _, n := range comp {
		if len(t.adj[n]) < t.maxDegree && (skip == nil || !skip(n)) {
			count++
		}
	}
	if count == 0 {
		return -1
	}
	r := rng.Intn(count)
	for _, n := range comp {
		if len(t.adj[n]) < t.maxDegree && (skip == nil || !skip(n)) {
			if r == 0 {
				return int(n)
			}
			r--
		}
	}
	return -1 // unreachable: count > 0
}
