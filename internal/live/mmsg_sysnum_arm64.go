//go:build linux && arm64

package live

// recvmmsg/sendmmsg syscall numbers for linux/arm64 (the generic
// 64-bit syscall table).
const (
	sysRecvmmsg uintptr = 243
	sysSendmmsg uintptr = 269
)
