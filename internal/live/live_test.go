package live

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/matching"
	"repro/internal/wire"
)

// waitFor polls cond until it holds or the deadline passes. Live tests
// run over real sockets, so they synchronize by observation, not by
// sleeping fixed amounts.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("timeout waiting for: " + msg)
}

func TestLiveRoutingDeliversToSubscribers(t *testing.T) {
	var delivered sync.Map // nodeID → count
	c, err := NewCluster(8, 4, 42, func(i int) Config {
		id := ident.NodeID(i)
		return Config{
			OnDeliver: func(ev *wire.Event, recovered bool) {
				v, _ := delivered.LoadOrStore(id, new(atomic.Int64))
				v.(*atomic.Int64).Add(1)
			},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Nodes 2 and 5 subscribe to pattern 7.
	c.Nodes[2].Subscribe(7)
	c.Nodes[5].Subscribe(7)
	// Subscription forwarding floods every dispatcher.
	waitFor(t, 2*time.Second, func() bool {
		for _, n := range c.Nodes {
			if n.KnownPatternCount() == 0 {
				return false
			}
		}
		return true
	}, "subscription propagation")

	// Publish events matching 7 and one matching nothing.
	c.Nodes[0].Publish(matching.Content{7})
	c.Nodes[0].Publish(matching.Content{7, 9})
	c.Nodes[0].Publish(matching.Content{3})

	count := func(id ident.NodeID) int64 {
		v, ok := delivered.Load(id)
		if !ok {
			return 0
		}
		return v.(*atomic.Int64).Load()
	}
	waitFor(t, 2*time.Second, func() bool {
		return count(2) == 2 && count(5) == 2
	}, "event delivery to both subscribers")

	// Nobody else got anything.
	time.Sleep(50 * time.Millisecond)
	for i := 0; i < 8; i++ {
		id := ident.NodeID(i)
		if id == 2 || id == 5 {
			continue
		}
		if got := count(id); got != 0 {
			t.Fatalf("non-subscriber %v got %d deliveries", id, got)
		}
	}
}

func TestLiveUnsubscribeStopsDelivery(t *testing.T) {
	c, err := NewCluster(4, 4, 7, func(int) Config { return Config{} })
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.Nodes[3].Subscribe(5)
	waitFor(t, 2*time.Second, func() bool {
		return c.Nodes[0].KnownPatternCount() == 1
	}, "subscription propagation")

	c.Nodes[3].Unsubscribe(5)
	waitFor(t, 2*time.Second, func() bool {
		for _, n := range c.Nodes {
			if n.KnownPatternCount() != 0 {
				return false
			}
		}
		return true
	}, "unsubscription propagation")

	c.Nodes[0].Publish(matching.Content{5})
	time.Sleep(100 * time.Millisecond)
	if got := c.Nodes[3].Stats().Delivered; got != 0 {
		t.Fatalf("unsubscribed node delivered %d events", got)
	}
}

// TestLiveRecoveryOverRealSockets is the package's headline test: a
// lossy live network (30% injected drop per tree send) recovers lost
// events through real gossip over UDP.
func TestLiveRecoveryOverRealSockets(t *testing.T) {
	const (
		nodes   = 10
		events  = 150
		pattern = ident.PatternID(7)
	)
	for _, algo := range []core.Algorithm{core.Push, core.CombinedPull} {
		algo := algo
		t.Run(algo.String(), func(t *testing.T) {
			c, err := NewCluster(nodes, 4, 11, func(i int) Config {
				return Config{
					Algorithm:      algo,
					GossipInterval: 10 * time.Millisecond,
					DropProb:       0.3,
					PForward:       1.0,
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			// Every node except the publisher subscribes.
			for i := 1; i < nodes; i++ {
				c.Nodes[i].Subscribe(pattern)
			}
			waitFor(t, 2*time.Second, func() bool {
				return c.Nodes[0].KnownPatternCount() >= 1
			}, "subscription propagation")

			for e := 0; e < events; e++ {
				c.Nodes[0].Publish(matching.Content{pattern})
				time.Sleep(time.Millisecond)
			}

			want := uint64(events)
			// Generous deadline: live tests share the machine with
			// whatever else runs; recovery itself takes well under a
			// second of quiet CPU.
			waitFor(t, 30*time.Second, func() bool {
				for i := 1; i < nodes; i++ {
					// The last events may be undetectable by pull
					// (nothing published after them), so require all
					// but the tail.
					if c.Nodes[i].Stats().Delivered < want-5 {
						return false
					}
				}
				return true
			}, "recovery of dropped events")

			var recovered, droppedInj uint64
			for i := 0; i < nodes; i++ {
				s := c.Nodes[i].Stats()
				recovered += s.Recovered
				droppedInj += s.DroppedInject
			}
			if droppedInj == 0 {
				t.Fatal("loss injection never fired — test proves nothing")
			}
			if recovered == 0 {
				t.Fatal("no events recovered via gossip")
			}
			t.Logf("%v: injected drops=%d, recovered=%d", algo, droppedInj, recovered)
		})
	}
}

func TestLiveNoRecoveryBaselineLoses(t *testing.T) {
	c, err := NewCluster(6, 4, 3, func(i int) Config {
		return Config{DropProb: 0.4}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Nodes[5].Subscribe(2)
	waitFor(t, 2*time.Second, func() bool {
		return c.Nodes[0].KnownPatternCount() >= 1
	}, "subscription propagation")
	for e := 0; e < 100; e++ {
		c.Nodes[0].Publish(matching.Content{2})
	}
	time.Sleep(300 * time.Millisecond)
	got := c.Nodes[5].Stats().Delivered
	if got == 100 {
		t.Fatal("40% drop injection lost nothing — injection broken")
	}
	if got == 0 {
		t.Fatal("everything lost — routing broken")
	}
}

// TestLiveReconfiguration rewires the overlay at runtime: a link moves
// from one pair to another, the flush and re-advertisement waves run
// over real sockets, and routing works on the new tree.
func TestLiveReconfiguration(t *testing.T) {
	// Line: 0-1-2-3 built explicitly for a predictable rewire.
	var nodes [4]*Node
	for i := range nodes {
		n, err := NewNode(Config{ID: ident.NodeID(i)})
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		nodes[i] = n
	}
	dir := map[ident.NodeID]*net.UDPAddr{}
	for i, n := range nodes {
		dir[ident.NodeID(i)] = n.Addr()
	}
	for _, n := range nodes {
		n.SetDirectory(dir)
	}
	link := func(a, b int) {
		nodes[a].AddNeighbor(ident.NodeID(b), nodes[b].Addr())
		nodes[b].AddNeighbor(ident.NodeID(a), nodes[a].Addr())
	}
	unlink := func(a, b int) {
		nodes[a].RemoveNeighbor(ident.NodeID(b))
		nodes[b].RemoveNeighbor(ident.NodeID(a))
	}
	link(0, 1)
	link(1, 2)
	link(2, 3)

	nodes[3].Subscribe(5)
	waitFor(t, 2*time.Second, func() bool {
		return nodes[0].KnownPatternCount() == 1
	}, "initial propagation")

	// Rewire: break 1-2, reconnect via 0-3 (degree allows it).
	unlink(1, 2)
	link(0, 3)
	waitFor(t, 2*time.Second, func() bool {
		// Node 1's route for pattern 5 must now point at 0 — i.e. 1
		// still knows the pattern and events from 1 reach 3 via 0.
		return nodes[1].KnownPatternCount() == 1
	}, "re-advertisement")

	nodes[1].Publish(matching.Content{5})
	waitFor(t, 2*time.Second, func() bool {
		return nodes[3].Stats().Delivered == 1
	}, "delivery on the rewired overlay")
}

// TestLiveSurvivesNodeCrash: closing one dispatcher mid-run must not
// wedge the others — sends to the dead address vanish like any UDP
// datagram, and the rest of the overlay keeps delivering along its own
// routes.
func TestLiveSurvivesNodeCrash(t *testing.T) {
	c, err := NewCluster(6, 2, 21, func(i int) Config {
		return Config{Algorithm: core.CombinedPull, GossipInterval: 10 * time.Millisecond}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Degree bound 2 makes the overlay a line: find the two ends and a
	// middle node to kill... any non-adjacent pair works; use the tree.
	// Subscribe a direct neighbor of the publisher so its route cannot
	// cross the crashed node.
	nb := c.Topo.Neighbors(0)[0]
	c.Nodes[nb].Subscribe(3)
	waitFor(t, 2*time.Second, func() bool {
		return c.Nodes[0].KnownPatternCount() >= 1
	}, "subscription propagation")

	// Crash a node that is not on the 0→nb path.
	var victim ident.NodeID = ident.None
	for i := 1; i < 6; i++ {
		if ident.NodeID(i) != nb {
			victim = ident.NodeID(i)
			break
		}
	}
	if err := c.Nodes[victim].Close(); err != nil {
		t.Fatal(err)
	}

	for e := 0; e < 20; e++ {
		c.Nodes[0].Publish(matching.Content{3})
	}
	waitFor(t, 2*time.Second, func() bool {
		return c.Nodes[nb].Stats().Delivered == 20
	}, "delivery despite crashed node")
}

func TestLiveCloseIsIdempotentAndJoinsGoroutines(t *testing.T) {
	n, err := NewNode(Config{ID: 1, Algorithm: core.Push})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLiveSequenceTagsOnWire(t *testing.T) {
	// Two live nodes: the publisher stamps per-(source, pattern)
	// sequence numbers that survive the real codec round trip.
	var mu sync.Mutex
	var got []uint32
	c, err := NewCluster(2, 4, 9, func(i int) Config {
		if i != 1 {
			return Config{Algorithm: core.CombinedPull}
		}
		return Config{
			Algorithm: core.CombinedPull,
			OnDeliver: func(ev *wire.Event, recovered bool) {
				if seq, ok := ev.SeqFor(4); ok {
					mu.Lock()
					got = append(got, seq)
					mu.Unlock()
				}
			},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Nodes[1].Subscribe(4)
	waitFor(t, 2*time.Second, func() bool {
		return c.Nodes[0].KnownPatternCount() >= 1
	}, "subscription propagation")
	for i := 0; i < 3; i++ {
		c.Nodes[0].Publish(matching.Content{4})
	}
	waitFor(t, 2*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 3
	}, "three tagged deliveries")
	mu.Lock()
	defer mu.Unlock()
	for i, seq := range got {
		if seq != uint32(i+1) {
			t.Fatalf("sequence tags = %v, want [1 2 3]", got)
		}
	}
}

func TestLiveClusterBadConfig(t *testing.T) {
	if _, err := NewCluster(0, 4, 1, func(int) Config { return Config{} }); err == nil {
		t.Fatal("NewCluster(0) succeeded")
	}
	if _, err := NewNode(Config{Bind: "256.0.0.1:bad"}); err == nil {
		t.Fatal("NewNode with bad bind succeeded")
	}
}
