package experiments

import (
	"time"

	"repro/internal/scenario"
)

// xZipf sweeps the workload skew exponent: content and subscription
// patterns both follow a Zipf(s) popularity ranking (s=0 is the
// paper's uniform draw), so interest concentrates on exactly the
// patterns hot events hit. Three effects are measured per algorithm:
// delivery under skew, the expected audience per event (the Fig. 7
// metric, now popularity-weighted), and gossip overhead — gossip digests
// cover a dispatcher's whole buffer, so audience concentration shifts
// the recovery load without changing the digest rate, which is the
// point the overhead series makes. Ferretti's complex-networks
// pub-sub study (PAPERS.md) evaluates under exactly this kind of
// non-uniform workload; the paper's uniform draw is its s=0 corner.
func xZipf(opt Options) ([]Figure, error) {
	exponents := []float64{0, 0.3, 0.6, 0.9, 1.2}
	if opt.Quick {
		exponents = []float64{0, 0.9}
	}
	s := sweep{
		xs:         exponents,
		algorithms: deliveryAlgorithms(opt),
		configure: func(p *scenario.Params, x float64) {
			p.Network.LossRate = 0.05
			if x > 0 {
				p.Workload = scenario.Workload{ZipfContent: x, ZipfSubscriptions: x}
			}
		},
		measures: []func(scenario.Result) float64{
			func(r scenario.Result) float64 { return round2(r.DeliveryRate) },
			func(r scenario.Result) float64 { return round2(r.ReceiversPerEvent) },
			func(r scenario.Result) float64 { return round2(r.GossipPerDispatcher) },
		},
	}
	all, err := s.run(base(opt, 25*time.Second))
	if err != nil {
		return nil, err
	}
	notes := []string{
		"content and subscriptions share one popularity ranking: pattern 0 is hottest for both",
		"s=0 is the paper's uniform workload; s≈1 is the classic web/content-popularity regime",
		"ε=5%: recovery is active, so skew shows up in delivery and overhead, not just audience",
	}
	return []Figure{
		{
			ID: "x-zipf", Title: "EXTENSION: delivery under Zipf workload skew",
			XLabel: "zipf exponent s", YLabel: "delivery rate",
			Series: all[0], Notes: notes,
		},
		{
			ID: "x-zipf-receivers", Title: "EXTENSION: expected audience under Zipf workload skew",
			XLabel: "zipf exponent s", YLabel: "receivers per event",
			Series: all[1], Notes: notes,
		},
		{
			ID: "x-zipf-overhead", Title: "EXTENSION: gossip overhead under Zipf workload skew",
			XLabel: "zipf exponent s", YLabel: "gossip messages per dispatcher",
			Series: all[2], Notes: notes,
		},
	}, nil
}
