package wire

import (
	"testing"

	"repro/internal/ident"
)

// TestWireCountOverflowPanics pins the large-N audit decision for the
// u16 count prefixes: the format stays 2-byte (widening would change
// WireSize and with it every simulated transmission time), and any
// list that could not be encoded faithfully trips a panic at the
// WireSize choke point instead of truncating silently in Append.
func TestWireCountOverflowPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: oversized count did not panic", name)
			}
		}()
		f()
	}

	bigRoute := make([]ident.NodeID, MaxCount+1)
	mustPanic("event route", func() {
		(&Event{Route: bigRoute}).WireSize()
	})
	mustPanic("pubpull route", func() {
		(&GossipPubPull{Route: bigRoute}).WireSize()
	})
	mustPanic("subpull digest", func() {
		(&GossipSubPull{Wanted: make([]LostEntry, MaxCount+1)}).WireSize()
	})
	mustPanic("push digest", func() {
		(&GossipPush{Digest: make([]ident.EventID, MaxCount+1)}).WireSize()
	})
	mustPanic("request IDs", func() {
		(&Request{IDs: make([]ident.EventID, MaxCount+1)}).WireSize()
	})
	mustPanic("retransmit batch", func() {
		(&Retransmit{Events: make([]*Event, MaxCount+1)}).WireSize()
	})

	// The limit itself must still encode: a route of exactly MaxCount
	// hops round-trips.
	e := &Event{ID: ident.EventID{Source: 1, Seq: 1}, Route: bigRoute[:MaxCount]}
	if got := len(Encode(e)); got != e.WireSize() {
		t.Fatalf("encoded %d bytes, WireSize %d", got, e.WireSize())
	}
}
