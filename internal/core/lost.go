package core

import (
	"slices"

	"repro/internal/ident"
	"repro/internal/sim"
	"repro/internal/wire"
)

// compareLost orders entries (source, pattern, seq) — the canonical
// digest order of every negative digest on the wire.
func compareLost(a, b wire.LostEntry) int {
	switch {
	case a.Source != b.Source:
		if a.Source < b.Source {
			return -1
		}
		return 1
	case a.Pattern != b.Pattern:
		if a.Pattern < b.Pattern {
			return -1
		}
		return 1
	case a.Seq != b.Seq:
		if a.Seq < b.Seq {
			return -1
		}
		return 1
	default:
		return 0
	}
}

// digestView is one incrementally maintained digest index: a slab of
// entries kept in canonical digest order, plus a lazily materialized
// snapshot that is handed to callers.
//
// The slab is mutated in place (binary-search insert/delete, no
// re-sort); the snapshot is immutable once handed out. Gossip messages
// embed the snapshot and may outlive the current buffer state (the
// simulator delivers them at a later virtual time), so a mutation never
// touches a previously returned snapshot — it only marks the cached one
// stale, and the next read clones the slab afresh.
type digestView struct {
	items []wire.LostEntry // authoritative, sorted
	snap  []wire.LostEntry // cached immutable snapshot; nil when stale
}

func (v *digestView) insert(e wire.LostEntry) {
	i, _ := slices.BinarySearchFunc(v.items, e, compareLost)
	v.items = slices.Insert(v.items, i, e)
	v.snap = nil
}

func (v *digestView) remove(e wire.LostEntry) {
	i, ok := slices.BinarySearchFunc(v.items, e, compareLost)
	if !ok {
		return
	}
	v.items = slices.Delete(v.items, i, i+1)
	v.snap = nil
}

// view returns the current entries as an immutable snapshot. Callers
// must not mutate it; it may be embedded directly in gossip messages.
func (v *digestView) view() []wire.LostEntry {
	if len(v.items) == 0 {
		return nil
	}
	if v.snap == nil {
		v.snap = slices.Clone(v.items)
	}
	return v.snap
}

// detection is one Add recorded in FIFO order. A detection becomes
// stale when its entry is removed or re-added later (the map carries
// the current detection time); stale positions are skipped lazily.
type detection struct {
	e  wire.LostEntry
	at sim.Time
}

// LostBuffer is the Lost buffer of the pull algorithms (paper
// Sec. III-B): the set of detected-but-not-yet-recovered events, each
// identified by (source, pattern, per-pattern sequence number). The
// buffer is capacity-bounded (FIFO eviction of the oldest detection)
// and entries expire after a TTL, so undetectable or unrecoverable
// losses do not pin memory; the paper specifies neither bound (see
// DESIGN.md).
//
// Digest reads (All, ForPattern, ForSource, Patterns, Sources) are
// served from incrementally maintained sorted indexes and return cached
// snapshots: a gossip round that finds the buffer unchanged since the
// last round performs no allocation and no sorting.
type LostBuffer struct {
	capacity int
	ttl      sim.Time
	entries  map[wire.LostEntry]sim.Time // current detection time
	queue    []detection                 // Add order; may hold stale positions
	head     int                         // eviction cursor (FIFO)
	exp      int                         // expiry cursor; queue[:exp] is fully expired

	all   digestView
	byPat map[ident.PatternID]*digestView
	bySrc map[ident.NodeID]*digestView

	pats      []ident.PatternID // cached sorted patterns with entries
	srcs      []ident.NodeID    // cached sorted sources with entries
	patsStale bool
	srcsStale bool

	// patSet mirrors the distinct patterns with entries as a tiered
	// bitset, maintained at the same empty↔non-empty transitions that
	// invalidate pats. The tiered set represents every pattern
	// identifier, so it is always the exact pattern set.
	patSet ident.PatternSet
}

func NewLostBuffer(capacity int, ttl sim.Time) *LostBuffer {
	return &LostBuffer{
		capacity: capacity,
		ttl:      ttl,
		entries:  make(map[wire.LostEntry]sim.Time, capacity/4+1),
		byPat:    make(map[ident.PatternID]*digestView),
		bySrc:    make(map[ident.NodeID]*digestView),
	}
}

// Len returns the number of outstanding entries (including any that
// have expired but were not yet swept).
func (b *LostBuffer) Len() int { return len(b.entries) }

// Reset empties the buffer and re-targets it at a new capacity and TTL,
// keeping the entry map, detection queue, and digest-view slabs the
// previous run grew. The per-pattern and per-source views are truncated
// in place, never freed, so a recycled buffer reaches its steady-state
// footprint once and stays there across a whole parameter sweep.
// Previously returned snapshots are unaffected (they are separate
// clones).
func (b *LostBuffer) Reset(capacity int, ttl sim.Time) {
	b.capacity, b.ttl = capacity, ttl
	clear(b.entries)
	b.queue = b.queue[:0]
	b.head, b.exp = 0, 0
	b.all.items = b.all.items[:0]
	b.all.snap = nil
	for _, v := range b.byPat {
		v.items = v.items[:0]
		v.snap = nil
	}
	for _, v := range b.bySrc {
		v.items = v.items[:0]
		v.snap = nil
	}
	b.pats, b.srcs = nil, nil
	b.patsStale, b.srcsStale = false, false
	b.patSet = ident.PatternSet{}
}

// Add records a newly detected loss. Re-detecting an outstanding entry
// is a no-op. Detection times must be non-decreasing across Adds (both
// the kernel clock and the live node's monotonic clock guarantee this);
// the lazy expiry sweep relies on it.
func (b *LostBuffer) Add(e wire.LostEntry, now sim.Time) {
	if _, ok := b.entries[e]; ok {
		return
	}
	for len(b.entries) >= b.capacity {
		b.evictOldest()
	}
	b.entries[e] = now
	b.queue = append(b.queue, detection{e: e, at: now})
	b.indexEntry(e)
}

func (b *LostBuffer) evictOldest() {
	for {
		d := b.queue[b.head]
		b.head++
		b.maybeCompact()
		if _, ok := b.entries[d.e]; ok {
			b.dropEntry(d.e)
			return
		}
	}
}

// maybeCompact reclaims the consumed queue prefix in place once it
// dominates the slice, keeping both cursors consistent.
func (b *LostBuffer) maybeCompact() {
	if b.head <= 4096 || b.head*2 <= len(b.queue) {
		return
	}
	n := copy(b.queue, b.queue[b.head:])
	b.queue = b.queue[:n]
	if b.exp < b.head {
		b.exp = b.head
	}
	b.exp -= b.head
	b.head = 0
}

// indexEntry inserts e into the global, per-pattern, and per-source
// digest indexes.
func (b *LostBuffer) indexEntry(e wire.LostEntry) {
	b.all.insert(e)
	pv := b.byPat[e.Pattern]
	if pv == nil {
		pv = &digestView{}
		b.byPat[e.Pattern] = pv
	}
	if len(pv.items) == 0 {
		b.patsStale = true
		b.patSet.Add(e.Pattern)
	}
	pv.insert(e)
	sv := b.bySrc[e.Source]
	if sv == nil {
		sv = &digestView{}
		b.bySrc[e.Source] = sv
	}
	if len(sv.items) == 0 {
		b.srcsStale = true
	}
	sv.insert(e)
}

// dropEntry removes e from the entry map and every digest index. The
// per-pattern and per-source views are kept (empty) for reuse; only the
// distinct-pattern/source lists are invalidated when a view empties.
func (b *LostBuffer) dropEntry(e wire.LostEntry) {
	delete(b.entries, e)
	b.all.remove(e)
	if pv := b.byPat[e.Pattern]; pv != nil {
		pv.remove(e)
		if len(pv.items) == 0 {
			b.patsStale = true
			b.patSet.Remove(e.Pattern)
		}
	}
	if sv := b.bySrc[e.Source]; sv != nil {
		sv.remove(e)
		if len(sv.items) == 0 {
			b.srcsStale = true
		}
	}
}

// Remove deletes an entry (the event was recovered) and reports whether
// it was outstanding.
func (b *LostBuffer) Remove(e wire.LostEntry) bool {
	if _, ok := b.entries[e]; !ok {
		return false
	}
	b.dropEntry(e)
	return true
}

// DetectedAt returns the detection time of an outstanding entry. It
// feeds the adaptive controller's recovery-latency estimate: the gap
// between detection and the arrival of the recovered event.
func (b *LostBuffer) DetectedAt(e wire.LostEntry) (sim.Time, bool) {
	at, ok := b.entries[e]
	return at, ok
}

// Has reports whether the entry is outstanding and fresh.
func (b *LostBuffer) Has(e wire.LostEntry, now sim.Time) bool {
	at, ok := b.entries[e]
	if !ok {
		return false
	}
	if b.expired(at, now) {
		b.dropEntry(e)
		return false
	}
	return true
}

func (b *LostBuffer) expired(at, now sim.Time) bool {
	return b.ttl > 0 && now-at > b.ttl
}

// sweep lazily expires entries. Detection times are non-decreasing in
// queue order and an entry's current detection time is always at its
// latest queue position, so every expired entry lives in the queue
// prefix ahead of the expiry cursor; the sweep advances the cursor over
// that prefix and stops at the first non-expired position. When nothing
// has expired since the last sweep this is a single comparison.
func (b *LostBuffer) sweep(now sim.Time) {
	if b.ttl <= 0 {
		return
	}
	if b.exp < b.head {
		b.exp = b.head
	}
	for b.exp < len(b.queue) {
		d := b.queue[b.exp]
		if !b.expired(d.at, now) {
			return
		}
		if at, ok := b.entries[d.e]; ok && at == d.at {
			b.dropEntry(d.e)
		}
		b.exp++
	}
}

// ForPattern returns the fresh entries whose pattern is p, in canonical
// digest order, sweeping expired ones. The returned slice is an
// immutable snapshot shared across calls; callers must not mutate it.
func (b *LostBuffer) ForPattern(p ident.PatternID, now sim.Time) []wire.LostEntry {
	b.sweep(now)
	v := b.byPat[p]
	if v == nil {
		return nil
	}
	return v.view()
}

// ForSource returns the fresh entries whose source is s, in canonical
// digest order, sweeping expired ones. The returned slice is an
// immutable snapshot shared across calls; callers must not mutate it.
func (b *LostBuffer) ForSource(s ident.NodeID, now sim.Time) []wire.LostEntry {
	b.sweep(now)
	v := b.bySrc[s]
	if v == nil {
		return nil
	}
	return v.view()
}

// All returns every fresh entry in canonical digest order. The returned
// slice is an immutable snapshot shared across calls; callers must not
// mutate it.
func (b *LostBuffer) All(now sim.Time) []wire.LostEntry {
	b.sweep(now)
	return b.all.view()
}

// PatternSet returns the distinct patterns with fresh entries as a
// bitset, sweeping expired ones first. The tiered set represents every
// pattern identifier, so the set is always exact.
func (b *LostBuffer) PatternSet(now sim.Time) ident.PatternSet {
	b.sweep(now)
	return b.patSet
}

// Patterns returns the distinct patterns with fresh entries, sorted.
// The returned slice is a cached snapshot; callers must not mutate it.
func (b *LostBuffer) Patterns(now sim.Time) []ident.PatternID {
	b.sweep(now)
	if b.patsStale || b.pats == nil {
		// Ascending bitset iteration is already sorted order.
		b.pats = b.patSet.AppendTo(make([]ident.PatternID, 0, b.patSet.Len()))
		b.patsStale = false
	}
	return b.pats
}

// Sources returns the distinct sources with fresh entries, sorted. The
// returned slice is a cached snapshot; callers must not mutate it.
func (b *LostBuffer) Sources(now sim.Time) []ident.NodeID {
	b.sweep(now)
	if b.srcsStale || b.srcs == nil {
		srcs := make([]ident.NodeID, 0, len(b.bySrc))
		for s, v := range b.bySrc {
			if len(v.items) > 0 {
				srcs = append(srcs, s)
			}
		}
		slices.Sort(srcs)
		b.srcs = srcs
		b.srcsStale = false
	}
	return b.srcs
}
