package epidemic

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (Sec. IV). Each benchmark regenerates its figure through
// the same code path as cmd/experiments, on a reduced scale so
// `go test -bench .` completes in minutes; the full-scale figures are
// produced by `go run ./cmd/experiments -fig all -out results`.
//
// Delivery rates and overheads of the last iteration are attached to
// the benchmark output as custom metrics, so a benchmark run doubles as
// a quick shape-check against the paper's anchors.

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/experiments"
)

// Hot-path micro-benchmarks (shared with cmd/bench, which records them
// into BENCH_hotpath.json): the kernel schedule/dispatch path, the
// network send path, the metrics tracker, and a small end-to-end run.

func BenchmarkHotPathKernelScheduleDispatch(b *testing.B) { bench.KernelScheduleDispatch(b) }

func BenchmarkHotPathKernelScheduleCancel(b *testing.B) { bench.KernelScheduleCancel(b) }

func BenchmarkHotPathNetworkSend(b *testing.B) { bench.NetworkSend(b) }

func BenchmarkHotPathMetricsTracker(b *testing.B) { bench.MetricsTracker(b) }

func BenchmarkHotPathGossipRound(b *testing.B) { bench.GossipRound(b) }

func BenchmarkHotPathDigestBuild(b *testing.B) { bench.DigestBuild(b) }

func BenchmarkHotPathLostBuffer(b *testing.B) { bench.LostBuffer(b) }

func BenchmarkHotPathEndToEnd(b *testing.B) { bench.EndToEnd(b) }

// BenchmarkHotPathEndToEndChecked is the same run with every runtime
// invariant monitor armed (internal/check) — the verification price.
func BenchmarkHotPathEndToEndChecked(b *testing.B) { bench.EndToEndChecked(b) }

// BenchmarkHotPathScale10k is one 10,000-dispatcher run — the large-N
// regime unlocked by the tiered pattern sets and slab-backed state.
func BenchmarkHotPathScale10k(b *testing.B) { bench.Scale10k(b) }

// BenchmarkHotPathAdaptiveChurn is an end-to-end hybrid run with the
// closed-loop controller active under churn and loss — the adaptation
// machinery's price on top of plain gossip rounds.
func BenchmarkHotPathAdaptiveChurn(b *testing.B) { bench.AdaptiveChurn(b) }

// The heavy measurement benchmarks below are deliberately outside the
// BenchmarkHotPath prefix: CI's bench smoke runs -bench=BenchmarkHotPath
// and each of these takes seconds per iteration.

// BenchmarkMetricsPipelineExact replays a 10k-node-scale synthetic
// measurement stream (200k events) through a fresh exact tracker per
// op — the measurement layer in isolation.
func BenchmarkMetricsPipelineExact(b *testing.B) { bench.MetricsPipelineExact(b) }

// BenchmarkMetricsPipelineStreaming is the same stream on the
// streaming engine (O(1) memory).
func BenchmarkMetricsPipelineStreaming(b *testing.B) { bench.MetricsPipelineStreaming(b) }

// BenchmarkHeavy10k runs 10,000 dispatchers under 100× the Scale10k
// traffic with the exact tracker.
func BenchmarkHeavy10k(b *testing.B) { bench.Heavy10k(b) }

// BenchmarkHeavy10kStreaming is the same run under
// scenario.MetricsStreaming.
func BenchmarkHeavy10kStreaming(b *testing.B) { bench.Heavy10kStreaming(b) }

// BenchmarkShardedRun2000 sweeps the conservative parallel executor's
// shard count on one mid-size run; cmd/bench -shards records the same
// curve into the trajectory file.
func BenchmarkShardedRun2000(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), bench.ShardedRun(shards))
	}
}

// benchFigure regenerates one figure identifier in Quick mode, b.N
// times with distinct seeds, and reports the headline series of the
// last run as custom metrics.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	var figs []experiments.Figure
	for i := 0; i < b.N; i++ {
		var err error
		figs, err = experiments.Generate(id, experiments.Options{
			Seed:  int64(i + 1),
			Quick: true,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, f := range figs {
		for _, s := range f.Series {
			if len(s.Points) == 0 {
				continue
			}
			last := s.Points[len(s.Points)-1]
			metric := fmt.Sprintf("%s/%s", sanitize(f.ID), sanitize(s.Name))
			b.ReportMetric(last.Y, metric)
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case ' ', '\t', '/':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// BenchmarkFig2DefaultParameters covers the paper's parameter table: it
// measures the cost of one default-scale run skeleton (topology +
// routing state only, zero publish rate) and asserts nothing else; the
// defaults themselves are pinned by TestPublicAPIDefaultsMatchPaperFig2.
func BenchmarkFig2DefaultParameters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := DefaultParams()
		p.Seed = int64(i + 1)
		p.PublishRate = 0
		p.Duration = 1e9 // 1 s
		if _, err := Run(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3aLossyLinks regenerates the delivery time series under
// lossy links (ε = 0.05 and 0.1).
func BenchmarkFig3aLossyLinks(b *testing.B) { benchFigure(b, "3a") }

// BenchmarkFig3bReconfiguration regenerates the delivery time series
// under topological reconfigurations (ρ = 0.2 s and 0.03 s).
func BenchmarkFig3bReconfiguration(b *testing.B) { benchFigure(b, "3b") }

// BenchmarkFig4BufferSize regenerates delivery vs buffer size β.
func BenchmarkFig4BufferSize(b *testing.B) { benchFigure(b, "4a") }

// BenchmarkFig4GossipInterval regenerates delivery vs gossip interval T.
func BenchmarkFig4GossipInterval(b *testing.B) { benchFigure(b, "4b") }

// BenchmarkFig5BufferIntervalInterplay regenerates the β × T interplay
// for combined pull.
func BenchmarkFig5BufferIntervalInterplay(b *testing.B) { benchFigure(b, "5") }

// BenchmarkFig6Scalability regenerates delivery vs system size N.
func BenchmarkFig6Scalability(b *testing.B) { benchFigure(b, "6") }

// BenchmarkFig7ReceiversPerEvent regenerates receivers-per-event vs
// πmax.
func BenchmarkFig7ReceiversPerEvent(b *testing.B) { benchFigure(b, "7") }

// BenchmarkFig8PatternsDelivery regenerates delivery vs πmax under low
// and high publish load.
func BenchmarkFig8PatternsDelivery(b *testing.B) { benchFigure(b, "8") }

// BenchmarkFig9aOverheadVsN regenerates gossip overhead (absolute and
// relative) vs system size.
func BenchmarkFig9aOverheadVsN(b *testing.B) { benchFigure(b, "9a") }

// BenchmarkFig9bOverheadVsPatterns regenerates gossip overhead vs πmax.
func BenchmarkFig9bOverheadVsPatterns(b *testing.B) { benchFigure(b, "9b") }

// BenchmarkFig10OverheadVsErrorRate regenerates gossip overhead vs link
// error rate under high and low load.
func BenchmarkFig10OverheadVsErrorRate(b *testing.B) { benchFigure(b, "10") }

// BenchmarkExtensionPureGossip regenerates the hpcast-style pure
// gossip comparison (EXTENSION, paper Sec. V).
func BenchmarkExtensionPureGossip(b *testing.B) { benchFigure(b, "x-puregossip") }

// BenchmarkExtensionLatency regenerates the recovery-latency
// percentiles (EXTENSION, quantifying paper Sec. IV-C).
func BenchmarkExtensionLatency(b *testing.B) { benchFigure(b, "x-latency") }

// BenchmarkExtensionAdaptive regenerates the adaptive-interval
// ablation (EXTENSION, paper Sec. IV-E via [14]).
func BenchmarkExtensionAdaptive(b *testing.B) { benchFigure(b, "x-adaptive") }

// BenchmarkSingleRunCombinedPull measures the raw cost of one small
// combined-pull simulation — the package's end-to-end hot path.
func BenchmarkSingleRunCombinedPull(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := smallParams()
		p.Seed = int64(i + 1)
		p.Algorithm = CombinedPull
		if _, err := Run(p); err != nil {
			b.Fatal(err)
		}
	}
}
