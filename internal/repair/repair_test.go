package repair

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/ident"
	"repro/internal/sim"
	"repro/internal/topology"
)

// run executes the protocol over topo for d of virtual time and
// returns its stats.
func run(t *testing.T, topo *topology.Tree, seed int64, d sim.Time, isDown func(ident.NodeID) bool) Stats {
	t.Helper()
	k := sim.New(seed)
	p, err := New(Config{Kernel: k, Topo: topo, IsDown: isDown})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	k.Run(d)
	return p.Stats()
}

// mustConverge asserts the overlay is legal and the protocol settled
// well before the end of the run.
func mustConverge(t *testing.T, topo *topology.Tree, st Stats, d sim.Time, isDown func(ident.NodeID) bool) {
	t.Helper()
	if err := topo.Legal(isDown); err != nil {
		t.Fatalf("overlay still illegal after %v: %v (stats %+v)", d, err, st)
	}
	if st.LastChangeAt > d-2*time.Second {
		t.Fatalf("protocol still mutating at %v of %v — no quiescence (stats %+v)", st.LastChangeAt, d, st)
	}
}

func TestConvergesFromDisconnectedForest(t *testing.T) {
	// Three disjoint paths of 10 nodes each.
	var links []topology.Link
	for c := 0; c < 3; c++ {
		base := ident.NodeID(c * 10)
		for i := 0; i < 9; i++ {
			links = append(links, topology.Link{A: base + ident.NodeID(i), B: base + ident.NodeID(i+1)})
		}
	}
	for seed := int64(1); seed <= 3; seed++ {
		topo, err := topology.NewUnchecked(topology.KindTree, 30, 4, links)
		if err != nil {
			t.Fatal(err)
		}
		const d = 10 * time.Second
		st := run(t, topo, seed, d, nil)
		mustConverge(t, topo, st, d, nil)
		if !topo.IsTree() {
			t.Fatalf("seed %d: final overlay is not a tree (%d links)", seed, topo.NumLinks())
		}
		if st.LinksAdded < 2 {
			t.Fatalf("seed %d: merged 3 components with %d links added", seed, st.LinksAdded)
		}
	}
}

func TestConvergesFromCycleUnderTreeKind(t *testing.T) {
	// A 20-node ring is connected but cyclic: one redundant edge must
	// be shed, none added.
	var links []topology.Link
	for i := 0; i < 20; i++ {
		links = append(links, topology.Link{A: ident.NodeID(i), B: ident.NodeID((i + 1) % 20)}.Canon())
	}
	for seed := int64(1); seed <= 3; seed++ {
		topo, err := topology.NewUnchecked(topology.KindTree, 20, 4, links)
		if err != nil {
			t.Fatal(err)
		}
		const d = 10 * time.Second
		st := run(t, topo, seed, d, nil)
		mustConverge(t, topo, st, d, nil)
		if !topo.IsTree() {
			t.Fatalf("seed %d: ring did not settle to a tree (%d links)", seed, topo.NumLinks())
		}
		if st.LinksDropped == 0 {
			t.Fatalf("seed %d: no redundant edge was dropped", seed)
		}
	}
}

func TestConvergesFromOverDegree(t *testing.T) {
	// A star of 9 leaves with maxDegree 4: the hub must shed 5 links,
	// stranding leaves that then re-attach elsewhere.
	var links []topology.Link
	for i := 1; i <= 9; i++ {
		links = append(links, topology.Link{A: 0, B: ident.NodeID(i)})
	}
	for seed := int64(1); seed <= 3; seed++ {
		topo, err := topology.NewUnchecked(topology.KindTree, 10, 4, links)
		if err != nil {
			t.Fatal(err)
		}
		const d = 10 * time.Second
		st := run(t, topo, seed, d, nil)
		mustConverge(t, topo, st, d, nil)
		if st.DegreeDrops == 0 {
			t.Fatalf("seed %d: over-degree hub was never shed", seed)
		}
		if !topo.IsTree() {
			t.Fatalf("seed %d: not a tree after shedding", seed)
		}
	}
}

func TestConvergesOnCyclicKinds(t *testing.T) {
	// Disconnected pieces under scale-free and small-world kinds must
	// reach connectivity; acyclicity is NOT required, so existing
	// redundant edges survive.
	for _, kind := range []topology.Kind{topology.KindScaleFree, topology.KindSmallWorld} {
		links := []topology.Link{
			{A: 0, B: 1}, {A: 1, B: 2}, {A: 2, B: 0}, // triangle
			{A: 3, B: 4}, {A: 4, B: 5}, // path
			// 6, 7 isolated
		}
		for seed := int64(1); seed <= 3; seed++ {
			topo, err := topology.NewUnchecked(kind, 8, 4, links)
			if err != nil {
				t.Fatal(err)
			}
			const d = 10 * time.Second
			st := run(t, topo, seed, d, nil)
			mustConverge(t, topo, st, d, nil)
			if topo.HasLink(0, 1) && topo.HasLink(1, 2) && topo.HasLink(2, 0) {
				// triangle intact: cyclic kinds keep redundancy
			} else {
				t.Fatalf("%v seed %d: protocol dropped redundant edges on a cyclic kind", kind, seed)
			}
			if st.Reattaches < 2 {
				t.Fatalf("%v seed %d: isolated nodes reattached %d times, want >= 2", kind, seed, st.Reattaches)
			}
			if st.ReattachTotal <= 0 {
				t.Fatalf("%v seed %d: reattach latency not accounted", kind, seed)
			}
		}
	}
}

func TestConvergenceSkipsDownNodes(t *testing.T) {
	// Nodes 5..9 are down for the whole run: legality is judged over
	// the live subgraph, and no link may touch a dead node.
	topo, err := topology.NewUnchecked(topology.KindTree, 10, 4, []topology.Link{
		{A: 0, B: 1}, {A: 2, B: 3}, // two live components; 4 isolated
	})
	if err != nil {
		t.Fatal(err)
	}
	isDown := func(v ident.NodeID) bool { return v >= 5 }
	const d = 10 * time.Second
	st := run(t, topo, 1, d, isDown)
	mustConverge(t, topo, st, d, isDown)
	for v := ident.NodeID(5); v < 10; v++ {
		if topo.Degree(v) != 0 {
			t.Fatalf("dead node %v gained links", v)
		}
	}
}

func TestProtocolDeterministic(t *testing.T) {
	build := func() *topology.Tree {
		topo, err := topology.NewUnchecked(topology.KindTree, 16, 4, []topology.Link{
			{A: 0, B: 1}, {A: 2, B: 3}, {A: 4, B: 5}, {A: 6, B: 7},
			{A: 8, B: 9}, {A: 10, B: 11}, {A: 12, B: 13}, {A: 14, B: 15},
		})
		if err != nil {
			t.Fatal(err)
		}
		return topo
	}
	a := build()
	stA := run(t, a, 7, 8*time.Second, nil)
	b := build()
	stB := run(t, b, 7, 8*time.Second, nil)
	if stA != stB {
		t.Fatalf("same seed produced different stats:\n%+v\n%+v", stA, stB)
	}
	la, lb := a.Links(), b.Links()
	if len(la) != len(lb) {
		t.Fatalf("same seed produced different link counts %d vs %d", len(la), len(lb))
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("same seed produced different links at %d: %v vs %v", i, la[i], lb[i])
		}
	}
	c := build()
	stC := run(t, c, 8, 8*time.Second, nil)
	if stA == stC {
		t.Log("different seeds produced identical stats (possible but unlikely)")
	}
}

func TestQuiescenceOnLegalOverlay(t *testing.T) {
	// Starting from an already-legal overlay the protocol must never
	// mutate anything.
	for _, kind := range topology.Kinds() {
		topo, err := topology.NewOverlay(kind, 40, 4, rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatal(err)
		}
		before := topo.Version()
		st := run(t, topo, 1, 5*time.Second, nil)
		if topo.Version() != before {
			t.Fatalf("%v: protocol mutated a legal overlay (stats %+v)", kind, st)
		}
		if st.Rounds == 0 {
			t.Fatalf("%v: no rounds ran", kind)
		}
	}
}
