package check

import (
	"repro/internal/ident"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/wire"
)

// fifoMirror is the FIFO monitor's independent model of the channel:
// one busy-until clock and one FIFO queue of expected arrival times
// per (directed link, incarnation). It is deliberately a second
// implementation of the serialization rule — map-keyed where the
// network uses dense compacted slots — so a bookkeeping bug on either
// side surfaces as a disagreement at arrival time.
type fifoMirror struct {
	busy   map[dirLink]sim.Time
	queues map[dirLink][]sim.Time
}

// dirLink keys one incarnation of a directed link. A re-created link
// (new incarnation) is a new connection with an empty queue.
type dirLink struct {
	from, to ident.NodeID
	inc      uint64
}

func (f *fifoMirror) init() {
	f.busy = make(map[dirLink]sim.Time)
	f.queues = make(map[dirLink][]sim.Time)
}

var (
	_ network.Observer        = (*Checker)(nil)
	_ network.ArrivalObserver = (*Checker)(nil)
)

// OnSend implements network.Observer. For tree sends that the network
// will actually put on the channel (live link, both endpoints up) it
// mirrors the serialization computation and appends the expected
// arrival time to the directed link's FIFO queue.
func (c *Checker) OnSend(from, to ident.NodeID, msg wire.Message, oob bool) {
	if !c.opts.FIFO || c.stopped || oob {
		return
	}
	if c.env.Topo.NeighborSlot(from, to) < 0 || c.nodeDown(from) || c.nodeDown(to) {
		return // dropped at send time; no arrival will be scheduled
	}
	key := dirLink{from: from, to: to, inc: c.env.Topo.LinkIncarnation(from, to)}
	now := c.env.Now()
	start := now
	tx := c.env.NetConfig.TxTime(msg)
	if c.env.NetConfig.ModelQueueing {
		if b := c.fifo.busy[key]; b > start {
			start = b
		}
		c.fifo.busy[key] = start + tx
	}
	c.fifo.queues[key] = append(c.fifo.queues[key], start+tx+c.env.NetConfig.PropDelay)
}

// OnLoss implements network.Observer. Dropped application events are
// recorded as causal evidence for the recovery monitor; the FIFO
// monitor needs nothing here (losses still occupy the link and are
// checked at their arrival time).
func (c *Checker) OnLoss(from, to ident.NodeID, msg wire.Message, oob bool) {
	if c.lossSeen == nil || c.stopped {
		return
	}
	switch m := msg.(type) {
	case *wire.Event:
		c.lossSeen[m.ID] = struct{}{}
	case *wire.Retransmit:
		// A lost retransmission is not fresh evidence that the
		// original dissemination dropped the event — but each carried
		// event already was recovered-worthy once, so a re-recovery
		// after this loss is still justified.
		for _, e := range m.Events {
			c.lossSeen[e.ID] = struct{}{}
		}
	}
}

// OnArrive implements network.ArrivalObserver: every arrival must
// complete at exactly the mirrored time, in mirrored FIFO order.
// Out-of-band arrivals are checked against the delay bounds of the
// OOB channel instead (their send-time hop count is not replayable,
// because the overlay may have mutated while they were in flight).
func (c *Checker) OnArrive(from, to ident.NodeID, msg wire.Message, oob bool, inc uint64, sentAt sim.Time, delivered bool) {
	if !c.opts.FIFO || c.stopped {
		return
	}
	now := c.env.Now()
	cfg := c.env.NetConfig
	if oob {
		d := now - sentAt
		tx := cfg.TxTime(msg)
		lo := cfg.OOBBaseDelay + tx
		hi := cfg.OOBBaseDelay + sim.Time(c.env.N-1)*cfg.PropDelay + tx
		if d < lo || d > hi {
			c.report("fifo", "oob-delay", from, to, eventOf(msg),
				"oob delay %v outside [%v, %v] (sent %v, arrived %v)", d, lo, hi, sentAt, now)
		}
		return
	}
	key := dirLink{from: from, to: to, inc: inc}
	q := c.fifo.queues[key]
	if len(q) == 0 {
		c.report("fifo", "unmatched-arrival", from, to, eventOf(msg),
			"arrival at %v on link with empty expected-arrival queue (sent %v, inc %d)", now, sentAt, inc)
		return
	}
	want := q[0]
	c.fifo.queues[key] = q[1:]
	if now != want {
		c.report("fifo", "serialization", from, to, eventOf(msg),
			"arrival at %v, FIFO model expects %v (sent %v, inc %d, delivered %v)", now, want, sentAt, inc, delivered)
	}
}

// nodeDown reads the network's down state, defaulting to up when the
// run injects no faults.
func (c *Checker) nodeDown(id ident.NodeID) bool {
	return c.env.NodeDown != nil && c.env.NodeDown(id)
}

// eventOf extracts the event identity carried by msg, when any.
func eventOf(msg wire.Message) ident.EventID {
	if e, ok := msg.(*wire.Event); ok {
		return e.ID
	}
	return ident.EventID{}
}
