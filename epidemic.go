// Package epidemic reproduces "Epidemic Algorithms for Reliable
// Content-Based Publish-Subscribe: An Evaluation" (Costa, Migliavacca,
// Picco, Cugola — ICDCS 2004): a discrete-event simulation of a
// distributed content-based publish-subscribe system whose lost events
// are recovered by epidemic (gossip) algorithms.
//
// The package is a facade over the building blocks in internal/:
//
//   - internal/sim        — discrete-event simulation kernel
//   - internal/topology   — degree-bounded tree overlays + reconfiguration
//   - internal/network    — 10 Mbit/s lossy links + out-of-band channel
//   - internal/wire       — message formats and binary codec
//   - internal/matching   — the paper's content model (patterns, events)
//   - internal/pubsub     — subscription forwarding and event routing
//   - internal/core       — the epidemic recovery algorithms (the
//     paper's contribution): push, subscriber-based pull,
//     publisher-based pull, combined pull, random pull
//   - internal/metrics    — delivery rate, overhead, time series
//   - internal/scenario   — full-system assembly and sweeps
//
// # Quick start
//
//	p := epidemic.DefaultParams()      // paper Fig. 2 defaults
//	p.Algorithm = epidemic.CombinedPull
//	res, err := epidemic.Run(p)
//	if err != nil { ... }
//	fmt.Printf("delivery rate: %.3f\n", res.DeliveryRate)
//
// Every run is deterministic under Params.Seed. Parameter sweeps run
// concurrently with RunAll; each simulation stays single-threaded, so
// concurrency never perturbs results.
package epidemic

import (
	"repro/internal/adapt"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/ident"
	"repro/internal/matching"
	"repro/internal/network"
	"repro/internal/repair"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Time is simulated time (an alias of time.Duration).
type Time = sim.Time

// Trace is a bounded in-memory ring of protocol records (publishes,
// deliveries, recoveries, transmissions, losses, reconfigurations).
// Install one via Params.Trace to inspect what a run actually did.
type Trace = trace.Ring

// TraceRecord is one traced protocol step.
type TraceRecord = trace.Record

// TraceKind classifies trace records.
type TraceKind = trace.Kind

// Trace record kinds.
const (
	TracePublish  = trace.Publish
	TraceDeliver  = trace.Deliver
	TraceRecover  = trace.Recover
	TraceSend     = trace.Send
	TraceLoss     = trace.Loss
	TraceLinkDown = trace.LinkDown
	TraceLinkUp   = trace.LinkUp
	TraceNodeDown = trace.NodeDown
	TraceNodeUp   = trace.NodeUp
)

// NewTrace returns a trace ring retaining the last capacity records.
func NewTrace(capacity int) *Trace { return trace.New(capacity) }

// NodeID identifies a dispatcher; PatternID identifies an event
// pattern (a single number in the paper's content model); EventID
// identifies an event globally.
type (
	NodeID    = ident.NodeID
	PatternID = ident.PatternID
	EventID   = ident.EventID
)

// Content is an event's content: the set of pattern numbers it
// carries. An event matches a subscription when its content contains
// the subscribed pattern.
type Content = matching.Content

// Event is a published event as it travels on the wire.
type Event = wire.Event

// Universe describes a pattern space and generates random content and
// subscriptions (paper defaults: Π=70 patterns, events match ≤3).
type Universe = matching.Universe

// DefaultUniverse returns the paper's content-model constants.
func DefaultUniverse() Universe { return matching.DefaultUniverse() }

// Algorithm selects the recovery variant (paper Sec. III and IV).
type Algorithm = core.Algorithm

// The recovery algorithms evaluated in the paper.
const (
	// NoRecovery is the baseline: plain best-effort dispatching.
	NoRecovery = core.NoRecovery
	// Push gossips positive digests of cached events.
	Push = core.Push
	// SubscriberPull gossips negative digests toward co-subscribers.
	SubscriberPull = core.SubscriberPull
	// PublisherPull source-routes negative digests toward publishers.
	PublisherPull = core.PublisherPull
	// CombinedPull mixes the two pull variants per round (PSource).
	CombinedPull = core.CombinedPull
	// RandomPull routes negative digests at random (baseline).
	RandomPull = core.RandomPull
	// Hybrid is the extension beyond the paper: it runs Push or
	// CombinedPull round by round, switched online by the closed-loop
	// controller (always adaptive; not part of Algorithms()).
	Hybrid = core.Hybrid
)

// Algorithms lists every variant in the paper's presentation order.
func Algorithms() []Algorithm { return core.Algorithms() }

// ParseAlgorithm maps a name (e.g. "combined-pull") to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) { return core.ParseAlgorithm(s) }

// GossipConfig carries the gossip parameters (T, β, Pforward, Psource,
// buffer policy, Lost-buffer bounds, optional adaptive interval).
type GossipConfig = core.Config

// AdaptiveConfig tunes the adaptive gossip-interval extension.
type AdaptiveConfig = core.AdaptiveConfig

// AdaptConfig bounds and tunes the closed-loop adaptive controller
// (internal/adapt): per-node loss/churn/latency estimators drive
// Pforward, Psource, fanout, and the round period, and switch the
// Hybrid algorithm between push and pull recovery. Enable it via
// Params.Adapt; the zero value selects the documented defaults.
type AdaptConfig = adapt.Config

// AdaptRunStats aggregates the controllers' knob trajectories and
// switch counters over a run (Result.Adapt).
type AdaptRunStats = adapt.RunStats

// BufferPolicy selects the event-buffer replacement policy.
type BufferPolicy = cache.Policy

// Buffer replacement policies (the paper uses FIFO).
const (
	FIFO   = cache.FIFOPolicy
	Random = cache.RandomPolicy
	LRU    = cache.LRUPolicy
)

// Params is one simulation configuration; see scenario.Params for the
// field-by-field documentation. DefaultParams returns the paper's
// defaults (Fig. 2).
type Params = scenario.Params

// Result carries everything one run measured.
type Result = scenario.Result

// MetricsMode selects the measurement engine: MetricsExact (default,
// per-event state, what every golden test pins) or MetricsStreaming
// (O(1) memory for the 10k–100k-node regime; see DESIGN.md Sec. 11).
type MetricsMode = scenario.MetricsMode

// Measurement engines selectable via Params.MetricsMode.
const (
	MetricsExact     = scenario.MetricsExact
	MetricsStreaming = scenario.MetricsStreaming
)

// Workload holds the non-uniform workload knobs (Zipf pattern
// popularity, publisher hot-spots, subscription churn). The zero value
// is the paper's uniform workload.
type Workload = scenario.Workload

// OverlayKind selects the overlay family via Params.Overlay: the
// paper's degree-bounded random tree (the zero value), Barabási–Albert
// scale-free, or Newman–Watts small-world. Non-tree overlays forward
// events with first-arrival dedup, since their redundant links would
// otherwise circulate every event forever.
type OverlayKind = topology.Kind

// The overlay families selectable via Params.Overlay.
const (
	OverlayTree       = topology.KindTree
	OverlayScaleFree  = topology.KindScaleFree
	OverlaySmallWorld = topology.KindSmallWorld
)

// ParseOverlayKind maps a name ("tree", "scale-free", "small-world")
// to an OverlayKind. The empty string means OverlayTree.
func ParseOverlayKind(s string) (OverlayKind, error) { return topology.ParseKind(s) }

// RepairMode selects how the overlay heals after injected faults via
// Params.Repair: RepairOracle (the zero value) keeps the fault
// injector's omniscient healing, RepairSelfStabilizing runs the
// decentralized maintenance protocol of internal/repair instead.
type RepairMode = scenario.RepairMode

// The repair modes selectable via Params.Repair.
const (
	RepairOracle          = scenario.RepairOracle
	RepairSelfStabilizing = scenario.RepairSelfStabilizing
)

// ParseRepairMode maps a name ("oracle", "self-stabilizing") to a
// RepairMode. The empty string means RepairOracle.
func ParseRepairMode(s string) (RepairMode, error) { return scenario.ParseRepairMode(s) }

// RepairStats carries the self-stabilizing protocol's counters,
// reported in Result.Repair.
type RepairStats = repair.Stats

// DefaultParams returns the paper's default simulation parameters:
// N=100 dispatchers (degree ≤ 4), Π=70 patterns, πmax=2 subscriptions
// per dispatcher, 50 publish/s per dispatcher, ε=0.1, β=1500, T=30 ms,
// 25 s simulated.
func DefaultParams() Params { return scenario.DefaultParams() }

// DefaultGossipConfig returns the paper's default gossip parameters for
// the given algorithm.
func DefaultGossipConfig(a Algorithm) GossipConfig { return core.DefaultConfig(a) }

// FaultPlan is a deterministic, seed-replayable schedule of fault
// actions (crashes, restarts, link flaps, partitions, loss-model
// switches) executed on the simulation clock. Install one via
// Params.FaultPlan.
type FaultPlan = faults.Plan

// FaultAction is one scheduled fault.
type FaultAction = faults.Action

// FaultKind classifies fault actions.
type FaultKind = faults.Kind

// The fault kinds a plan may schedule.
const (
	FaultNodeCrash    = faults.NodeCrash
	FaultNodeRestart  = faults.NodeRestart
	FaultLinkFlap     = faults.LinkFlap
	FaultPartition    = faults.Partition
	FaultSetLossModel = faults.SetLossModel
)

// ChurnPlan derives a self-healing churn schedule from a seed: Poisson
// crash arrivals at the given systemwide rate, exponential downtimes
// around meanDowntime, never crashing an already-down node.
func ChurnPlan(seed int64, n int, rate float64, duration, meanDowntime Time) *FaultPlan {
	return faults.ChurnPlan(seed, n, rate, duration, meanDowntime)
}

// LossModel decides per-transmission drops; install a custom one via
// Params.NewLossModel. Bernoulli (the default, the paper's ε) drops
// independently; GilbertElliott drops in bursts driven by a per-link
// two-state Markov chain.
type (
	LossModel            = network.LossModel
	GilbertElliottConfig = network.GilbertElliottConfig
)

// Run executes one simulation, deterministically under p.Seed.
func Run(p Params) (Result, error) { return scenario.Run(p) }

// RunAll executes parameter sweeps concurrently (one goroutine per
// simulation, bounded by GOMAXPROCS) and returns results in input
// order.
func RunAll(ps []Params) ([]Result, error) { return scenario.RunAll(ps) }
