package epidemic

import (
	"repro/internal/live"
)

// The live API runs the same protocols outside the simulator: real
// dispatchers on UDP sockets (stdlib net), exchanging the same wire
// messages the simulation models. Use it to deploy a small reliable
// publish-subscribe overlay, or to observe the epidemic recovery
// algorithms on a real network.

// LiveConfig parameterizes one live dispatcher (see live.Config).
type LiveConfig = live.Config

// LiveNode is a dispatcher bound to a real UDP socket.
type LiveNode = live.Node

// LiveStats is a snapshot of a live node's counters.
type LiveStats = live.Stats

// LiveCluster is a loopback network of live dispatchers arranged in a
// random degree-bounded tree.
type LiveCluster = live.Cluster

// NewLiveNode starts one live dispatcher.
func NewLiveNode(cfg LiveConfig) (*LiveNode, error) { return live.NewNode(cfg) }

// NewLiveCluster starts n live dispatchers on the loopback interface,
// connected in a random tree with the given degree bound.
func NewLiveCluster(n, maxDegree int, seed int64, mkcfg func(i int) LiveConfig) (*LiveCluster, error) {
	return live.NewCluster(n, maxDegree, seed, mkcfg)
}
