package scenario

import (
	"testing"
	"time"

	"repro/internal/core"
)

// TestScaleSmoke10k is the overflow-guard smoke for the large-N
// regime: a 10k-node run with a spill-heavy pattern universe must
// complete with sane metrics. Under -race (the CI scale-smoke job)
// this also shakes out data races in the slab-backed node state; the
// wire checkCount guards and the widened tracker/kernel index types
// are all on the executed path.
func TestScaleSmoke10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-node smoke in -short mode")
	}
	p := DefaultParams()
	p.Seed = 11
	p.N = 10_000
	p.NumPatterns = 2000 // ~94% of the universe lives in the spill tier
	p.PatternsPerNode = 1
	p.PublishRate = 0.01 // 100 events/s aggregate
	p.Duration = 2 * time.Second
	p.Network.LossRate = 0.05
	p.Algorithm = core.SubscriberPull
	// The paper's 30 ms gossip interval would mean ~650k rounds at
	// N=10k; a smoke test only needs the machinery exercised, not the
	// paper's recovery latency.
	p.Gossip.GossipInterval = 200 * time.Millisecond

	r, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.DeliveryRate <= 0 || r.DeliveryRate > 1 {
		t.Fatalf("delivery rate %v out of (0,1]", r.DeliveryRate)
	}
	if r.KernelEvents < uint64(p.N) {
		t.Fatalf("only %d kernel events at N=%d; run did not exercise the system", r.KernelEvents, p.N)
	}

	// The sharded executor must reproduce the sequential run bit for
	// bit at this scale too, not just on the small property corpus.
	p.Shards = 4
	par, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if par.DeliveryRate != r.DeliveryRate || par.KernelEvents != r.KernelEvents ||
		par.Deliveries != r.Deliveries || par.Recoveries != r.Recoveries ||
		par.EventsPublished != r.EventsPublished || par.GossipPerDispatcher != r.GossipPerDispatcher {
		t.Fatalf("Shards=4 diverged at N=10k:\nseq: %+v\npar: %+v", r, par)
	}
}

// TestBigUniverseRecovery is the simulation half of the Π>128
// regression: with a 200-pattern universe, most subscriptions land in
// the spill tier of the tiered PatternSet, and before the tiered set
// the bitset-only candidate paths (gossip subscriber-pull selection,
// lost-buffer pattern sets) understated or ignored them. Recovery must
// clearly beat the no-recovery baseline and actually recover events
// under loss.
func TestBigUniverseRecovery(t *testing.T) {
	base := DefaultParams()
	base.Seed = 7
	base.N = 30
	base.NumPatterns = 200
	base.PatternsPerNode = 5
	base.Duration = 8 * time.Second
	base.Network.LossRate = 0.05

	run := func(a core.Algorithm) Result {
		p := base
		p.Algorithm = a
		r, err := Run(p)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		return r
	}

	none := run(core.NoRecovery)
	pull := run(core.SubscriberPull)
	if none.DeliveryRate >= 1 {
		t.Fatalf("baseline lost nothing (rate %v); loss model not exercised", none.DeliveryRate)
	}
	if pull.Recoveries == 0 {
		t.Fatalf("subscriber pull recovered no events in a Π=200 universe")
	}
	if pull.DeliveryRate <= none.DeliveryRate {
		t.Fatalf("subscriber pull rate %v not above baseline %v at Π=200",
			pull.DeliveryRate, none.DeliveryRate)
	}
}
