// Quickstart: run the paper's default scenario (lossy links, ε = 0.1)
// with and without epidemic recovery and print what recovery buys.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	epidemic "repro"
)

func main() {
	log.SetFlags(0)

	// The paper's Fig. 2 defaults, scaled down so the example finishes
	// in seconds (N=50 instead of 100, 8 s instead of 25 s).
	base := epidemic.DefaultParams()
	base.N = 50
	base.Duration = 8 * time.Second

	fmt.Printf("content-based publish-subscribe, N=%d dispatchers, ε=%.0f%% per-hop loss\n\n",
		base.N, base.Network.LossRate*100)
	fmt.Printf("%-18s %10s %12s %16s\n", "algorithm", "delivery", "recovered", "gossip/disp")

	for _, algo := range []epidemic.Algorithm{
		epidemic.NoRecovery,
		epidemic.Push,
		epidemic.CombinedPull,
	} {
		p := base
		p.Algorithm = algo
		res, err := epidemic.Run(p)
		if err != nil {
			log.Fatalf("run %v: %v", algo, err)
		}
		fmt.Printf("%-18s %9.1f%% %11.1f%% %16.0f\n",
			algo, res.DeliveryRate*100, res.RecoveredShare*100, res.GossipPerDispatcher)
	}

	fmt.Println("\nPush and combined pull recover most of the events the lossy")
	fmt.Println("links drop — the headline result of the paper's Fig. 3(a).")
}
