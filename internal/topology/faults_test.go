package topology

import (
	"math/rand"
	"testing"

	"repro/internal/ident"
)

func TestFaultRemoveNode(t *testing.T) {
	tr := NewLine(5) // 0-1-2-3-4
	removed := tr.RemoveNode(2)
	if len(removed) != 2 {
		t.Fatalf("removed %d links, want 2", len(removed))
	}
	if tr.Degree(2) != 0 {
		t.Errorf("node 2 still has degree %d", tr.Degree(2))
	}
	if tr.NumLinks() != 2 {
		t.Errorf("%d links remain, want 2", tr.NumLinks())
	}
	for _, l := range removed {
		if l.A != 2 && l.B != 2 {
			t.Errorf("removed link %v-%v does not touch node 2", l.A, l.B)
		}
	}
	if got := tr.RemoveNode(2); got != nil {
		t.Errorf("second removal returned %v, want nil", got)
	}
}

func TestFaultPath(t *testing.T) {
	tr := NewLine(6)
	path := tr.Path(1, 4)
	want := []ident.NodeID{1, 2, 3, 4}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if tr.Path(0, 0) != nil {
		t.Error("path to self must be nil")
	}
	tr.RemoveLink(2, 3)
	if tr.Path(1, 4) != nil {
		t.Error("path across a cut must be nil")
	}
}

func TestFaultReconnectAround(t *testing.T) {
	tr := NewLine(7) // 0-1-2-3-4-5-6
	removed := tr.RemoveNode(3)
	if len(removed) != 2 {
		t.Fatalf("removed %d links, want 2", len(removed))
	}
	rng := rand.New(rand.NewSource(1))
	skip := func(n ident.NodeID) bool { return n == 3 }
	added, err := tr.ReconnectAround([]ident.NodeID{2, 4}, skip, rng)
	if err != nil {
		t.Fatalf("reconnect: %v", err)
	}
	if len(added) != 1 {
		t.Fatalf("added %d links, want 1", len(added))
	}
	l := added[0]
	if l.A == 3 || l.B == 3 {
		t.Fatalf("reconnect used the skipped node: %v-%v", l.A, l.B)
	}
	if !tr.sameComponent(2, 4) {
		t.Error("components were not merged")
	}
	if tr.Degree(3) != 0 {
		t.Error("skipped node gained a link")
	}
	// Idempotent once merged.
	again, err := tr.ReconnectAround([]ident.NodeID{2, 4}, skip, rng)
	if err != nil || len(again) != 0 {
		t.Errorf("second reconnect: added=%v err=%v, want none", again, err)
	}
}

func TestFaultReconnectAroundDegreeExhausted(t *testing.T) {
	// Two 2-node components with maxDegree 1: every node is already at
	// its degree limit, so no merge link can exist.
	tr := &Tree{n: 4, maxDegree: 1, adj: make([][]ident.NodeID, 4)}
	tr.addEdge(0, 1)
	tr.addEdge(2, 3)
	rng := rand.New(rand.NewSource(1))
	added, err := tr.ReconnectAround([]ident.NodeID{0, 2}, nil, rng)
	if err == nil {
		t.Fatal("merging degree-saturated components must fail")
	}
	if len(added) != 0 {
		t.Fatalf("added %v despite failure", added)
	}
}
