// Market data: a domain-flavored reading of the paper's model. A
// brokerage distributes ticker updates over a content-based
// publish-subscribe overlay; traders subscribe to the symbols they
// follow (subscriptions = symbols = the paper's patterns) and every
// update matches the handful of symbols it concerns. Dropped updates
// mean stale books, so the operator wants to know how much reliability
// epidemic recovery buys at which bandwidth price — including when the
// gossip interval adapts to observed losses (the adaptive extension,
// suggested by the paper's Sec. IV-E).
//
//	go run ./examples/marketdata
package main

import (
	"fmt"
	"log"
	"time"

	epidemic "repro"
)

func main() {
	log.SetFlags(0)

	// 60 brokers, a universe of 70 symbols, each broker follows 3.
	base := epidemic.DefaultParams()
	base.N = 60
	base.NumPatterns = 70
	base.PatternsPerNode = 3
	base.PublishRate = 30
	base.Duration = 8 * time.Second
	base.Network.LossRate = 0.05 // a mildly lossy WAN
	base.Network.OOBLossRate = 0.05

	type variant struct {
		name string
		mut  func(*epidemic.Params)
	}
	variants := []variant{
		{"no recovery", func(p *epidemic.Params) { p.Algorithm = epidemic.NoRecovery }},
		{"combined pull", func(p *epidemic.Params) { p.Algorithm = epidemic.CombinedPull }},
		{"combined pull + adaptive T", func(p *epidemic.Params) {
			p.Algorithm = epidemic.CombinedPull
			p.Gossip.Adaptive = &epidemic.AdaptiveConfig{
				Min:          10 * time.Millisecond,
				Max:          120 * time.Millisecond,
				ShrinkFactor: 0.7,
				GrowFactor:   1.3,
			}
		}},
		{"push", func(p *epidemic.Params) { p.Algorithm = epidemic.Push }},
	}

	fmt.Println("ticker distribution, 60 brokers, 5% per-hop loss")
	fmt.Println()
	fmt.Printf("%-28s %10s %12s %14s\n", "configuration", "delivery", "recovered", "gossip msgs")
	for _, v := range variants {
		p := base
		v.mut(&p)
		res, err := epidemic.Run(p)
		if err != nil {
			log.Fatalf("%s: %v", v.name, err)
		}
		fmt.Printf("%-28s %9.2f%% %11.1f%% %14.0f\n",
			v.name, res.DeliveryRate*100, res.RecoveredShare*100,
			res.GossipPerDispatcher)
	}

	fmt.Println()
	fmt.Println("Pull-based recovery only spends bandwidth when updates were")
	fmt.Println("actually lost; the adaptive interval relaxes the gossip rate")
	fmt.Println("further during quiet periods (paper Sec. IV-E).")
}
