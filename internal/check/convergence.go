package check

import (
	"repro/internal/ident"
	"repro/internal/sim"
	"repro/internal/topology"
)

// finishConvergence is the repair-convergence monitor's end-of-run
// verdict. The claim it proves: within ConvergenceBound of the last
// injected fault, the overlay reached the legality of its kind and
// retained it until the end of the run.
//
// The checker is passive — it may not schedule kernel events, so it
// cannot sample legality on a clock. It instead verifies an equivalent
// pair of facts at Finish time:
//
//  1. Quiescence: no topology mutation happened after
//     LastFaultAt + ConvergenceBound. Every mutation (fault, oracle
//     heal, protocol round) flows through OnTopologyMutation, so
//     lastMutation is exact.
//  2. Final legality: the overlay satisfies its kind's invariant over
//     the live nodes at the end of the run.
//
// Together: the overlay stopped changing by the deadline and is legal
// now, hence it was already legal at the deadline and stayed legal —
// "reaches and retains legality within a bounded number of repair
// rounds". A run whose last fault falls within ConvergenceBound of the
// end cannot be judged (the repair is legitimately still in flight)
// and is skipped, mirroring FinalGrace.
func (c *Checker) finishConvergence() {
	end := c.env.Now()
	fault := c.lastFaultAt()
	deadline := fault + c.opts.ConvergenceBound
	if end < deadline {
		return // fault too close to the end: repair may still be in flight
	}
	if c.anyMutation && c.lastMutation > deadline {
		c.report("convergence", "no-quiescence", ident.None, ident.None, ident.EventID{},
			"overlay still mutating %v after the last fault at %v (bound %v)",
			c.lastMutation-fault, fault, c.opts.ConvergenceBound)
		return
	}
	c.checkLegality()
}

func (c *Checker) lastFaultAt() sim.Time {
	if c.env.LastFaultAt != nil {
		return c.env.LastFaultAt()
	}
	return 0
}

// checkLegality verifies the overlay's per-kind invariant over the
// live nodes: degree bound, no live-to-dead links, single live
// component, and acyclicity on KindTree.
func (c *Checker) checkLegality() {
	t := c.env.Topo
	n := t.N()
	live := 0
	for v := ident.NodeID(0); int(v) < n; v++ {
		if c.nodeDown(v) {
			continue
		}
		live++
		if d := t.Degree(v); d > t.MaxDegree() {
			c.report("convergence", "final-degree", v, ident.None, ident.EventID{},
				"degree %d exceeds bound %d after convergence deadline", d, t.MaxDegree())
			return
		}
		for _, w := range t.Neighbors(v) {
			if c.nodeDown(w) {
				c.report("convergence", "final-dead-link", v, w, ident.EventID{},
					"live dispatcher linked to crashed dispatcher after convergence deadline")
				return
			}
		}
	}
	if live <= 1 {
		return
	}
	comps := c.componentCount(c.nodeDown)
	if comps > 1 {
		c.report("convergence", "final-disconnected", ident.None, ident.None, ident.EventID{},
			"%d live dispatchers split across %d components after the convergence deadline", live, comps)
		return
	}
	if t.Kind() != topology.KindTree {
		return
	}
	edges := 0
	for v := ident.NodeID(0); int(v) < n; v++ {
		if c.nodeDown(v) {
			continue
		}
		for _, w := range t.Neighbors(v) {
			if !c.nodeDown(w) {
				edges++
			}
		}
	}
	if edges/2 != live-1 {
		c.report("convergence", "final-cycle", ident.None, ident.None, ident.EventID{},
			"tree overlay holds %d live links over %d live dispatchers after the convergence deadline", edges/2, live)
	}
}
