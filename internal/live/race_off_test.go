//go:build !race

package live

// raceEnabled reports whether the race detector is compiled in;
// allocation pins are skipped under it (instrumentation allocates).
const raceEnabled = false
