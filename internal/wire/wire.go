// Package wire defines every message exchanged by dispatchers — events,
// subscription control, the three kinds of gossip digests, and the
// out-of-band recovery messages — together with a compact binary codec.
//
// Inside the simulator messages travel as Go values; the codec exists
// so that (a) transmission times can be derived from true encoded sizes
// when the equal-size assumption of the paper (Sec. IV-E) is switched
// off, and (b) the formats are ready for a real UDP/TCP transport.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/ident"
	"repro/internal/matching"
)

// Kind discriminates message types on the wire.
type Kind uint8

// Message kinds. Gossip kinds carry recovery digests; Request and
// Retransmit travel out-of-band (paper Sec. III-B).
const (
	KindEvent Kind = iota + 1
	KindSubscribe
	KindUnsubscribe
	KindGossipPush    // push: positive digest of cached event IDs
	KindGossipSubPull // subscriber-based pull: negative digest, pattern-routed
	KindGossipPubPull // publisher-based pull: negative digest, source-routed
	KindGossipRandom  // random pull baseline: negative digest, random walk
	KindRequest       // push receiver → gossiper: IDs of missing events
	KindRetransmit    // cached events sent back to a recovering node
)

var kindNames = map[Kind]string{
	KindEvent:         "event",
	KindSubscribe:     "subscribe",
	KindUnsubscribe:   "unsubscribe",
	KindGossipPush:    "gossip-push",
	KindGossipSubPull: "gossip-subpull",
	KindGossipPubPull: "gossip-pubpull",
	KindGossipRandom:  "gossip-random",
	KindRequest:       "request",
	KindRetransmit:    "retransmit",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsGossip reports whether messages of this kind count as gossip
// overhead (digests and recovery requests), as opposed to event
// traffic (events and retransmitted events).
func (k Kind) IsGossip() bool {
	switch k {
	case KindGossipPush, KindGossipSubPull, KindGossipPubPull, KindGossipRandom, KindRequest:
		return true
	default:
		return false
	}
}

// Message is implemented by every wire message.
type Message interface {
	// Kind returns the message discriminator.
	Kind() Kind
	// WireSize returns the exact number of bytes Append would produce,
	// including the kind byte.
	WireSize() int
	// Append serializes the message (kind byte first) onto buf.
	Append(buf []byte) []byte
}

// Decode errors.
var (
	ErrTruncated   = errors.New("wire: truncated message")
	ErrUnknownKind = errors.New("wire: unknown message kind")
	ErrTrailing    = errors.New("wire: trailing bytes after message")
)

// MaxCount is the largest element count a 2-byte wire prefix can
// carry. Every variable-length list in the codec (routes, digests,
// retransmit batches) uses a uint16 count: routes are bounded by the
// overlay diameter (≈40 hops at N=100k for any maxDegree ≥ 3) and
// digests by the configured caps, so 65535 is never approached in a
// valid configuration. Widening the prefixes instead would change
// WireSize, hence simulated transmission times, hence every pinned
// fixed-seed metric — so the format stays and checkCount turns the
// impossible case (a degenerate >65k-hop chain) into a loud panic
// rather than a silently truncated count.
const MaxCount = 1<<16 - 1

// checkCount guards the u16 count prefixes at the WireSize choke
// point: the simulator sizes every send through WireSize (for
// transmission time) and Encode sizes every live datagram through it,
// so an oversized list can never reach Append's uint16 conversions
// silently.
func checkCount(n int, what string) {
	if n > MaxCount {
		panic(fmt.Sprintf("wire: %s has %d entries, exceeding the u16 wire limit %d", what, n, MaxCount))
	}
}

// Event is a published event. Tags carry the per-(source, pattern)
// sequence numbers stamped at the source, which the pull algorithms use
// for loss detection; Route accumulates the dispatchers traversed so
// far (publisher-based pull only — empty otherwise).
type Event struct {
	ID          ident.EventID
	Content     matching.Content
	Tags        []ident.PatternSeq
	Route       []ident.NodeID
	PublishedAt int64 // virtual-time nanoseconds at the source
	PayloadLen  uint16
}

var _ Message = (*Event)(nil)

// Kind implements Message.
func (e *Event) Kind() Kind { return KindEvent }

// SeqFor returns the per-pattern sequence number stamped for p, or
// (0, false) when the event carries no tag for p.
func (e *Event) SeqFor(p ident.PatternID) (uint32, bool) {
	for _, t := range e.Tags {
		if t.Pattern == p {
			return t.Seq, true
		}
	}
	return 0, false
}

// Clone returns a deep copy. Forwarding on the tree clones events
// because each branch appends its own hops to Route.
func (e *Event) Clone() *Event {
	out := *e
	out.Content = e.Content.Clone()
	out.Tags = append([]ident.PatternSeq(nil), e.Tags...)
	out.Route = append([]ident.NodeID(nil), e.Route...)
	return &out
}

// WireSize implements Message.
func (e *Event) WireSize() int {
	checkCount(len(e.Route), "event route")
	return 1 + // kind
		8 + // ID
		8 + // PublishedAt
		2 + // PayloadLen
		1 + 4*len(e.Content) +
		1 + 8*len(e.Tags) +
		2 + 4*len(e.Route) +
		int(e.PayloadLen)
}

// Append implements Message.
func (e *Event) Append(buf []byte) []byte {
	buf = append(buf, byte(KindEvent))
	buf = appendEventID(buf, e.ID)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.PublishedAt))
	buf = binary.LittleEndian.AppendUint16(buf, e.PayloadLen)
	buf = append(buf, byte(len(e.Content)))
	for _, p := range e.Content {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(p))
	}
	buf = append(buf, byte(len(e.Tags)))
	for _, t := range e.Tags {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(t.Pattern))
		buf = binary.LittleEndian.AppendUint32(buf, t.Seq)
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(e.Route)))
	for _, n := range e.Route {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	}
	// The payload itself is synthetic filler; emit zeros.
	for i := 0; i < int(e.PayloadLen); i++ {
		buf = append(buf, 0)
	}
	return buf
}

// Subscribe advertises interest in a pattern to a neighbor
// (subscription forwarding, paper Sec. II).
type Subscribe struct {
	Pattern ident.PatternID
}

var _ Message = (*Subscribe)(nil)

// Kind implements Message.
func (s *Subscribe) Kind() Kind { return KindSubscribe }

// WireSize implements Message.
func (s *Subscribe) WireSize() int { return 1 + 4 }

// Append implements Message.
func (s *Subscribe) Append(buf []byte) []byte {
	buf = append(buf, byte(KindSubscribe))
	return binary.LittleEndian.AppendUint32(buf, uint32(s.Pattern))
}

// Unsubscribe withdraws interest in a pattern from a neighbor.
type Unsubscribe struct {
	Pattern ident.PatternID
}

var _ Message = (*Unsubscribe)(nil)

// Kind implements Message.
func (u *Unsubscribe) Kind() Kind { return KindUnsubscribe }

// WireSize implements Message.
func (u *Unsubscribe) WireSize() int { return 1 + 4 }

// Append implements Message.
func (u *Unsubscribe) Append(buf []byte) []byte {
	buf = append(buf, byte(KindUnsubscribe))
	return binary.LittleEndian.AppendUint32(buf, uint32(u.Pattern))
}

// GossipPush is the proactive push digest: the identifiers of every
// cached event matching Pattern, routed on the tree like an event
// matching Pattern (paper Sec. III-B, "Push").
type GossipPush struct {
	Gossiper ident.NodeID
	Pattern  ident.PatternID
	Digest   []ident.EventID
}

var _ Message = (*GossipPush)(nil)

// Kind implements Message.
func (g *GossipPush) Kind() Kind { return KindGossipPush }

// WireSize implements Message.
func (g *GossipPush) WireSize() int {
	checkCount(len(g.Digest), "push digest")
	return 1 + 4 + 4 + 2 + 8*len(g.Digest)
}

// Append implements Message.
func (g *GossipPush) Append(buf []byte) []byte {
	buf = append(buf, byte(KindGossipPush))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(g.Gossiper))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(g.Pattern))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(g.Digest)))
	for _, id := range g.Digest {
		buf = appendEventID(buf, id)
	}
	return buf
}

// LostEntry identifies one detected-lost event in the pull schemes: the
// source, the pattern on whose sequence the gap was observed, and the
// missing per-(source, pattern) sequence number.
type LostEntry struct {
	Source  ident.NodeID
	Pattern ident.PatternID
	Seq     uint32
}

// String implements fmt.Stringer.
func (l LostEntry) String() string {
	return fmt.Sprintf("lost(%d:%v#%d)", int32(l.Source), l.Pattern, l.Seq)
}

// GossipSubPull is the subscriber-based negative digest: the Lost
// entries related to Pattern, routed on the tree like an event matching
// Pattern. Any dispatcher holding a wanted event answers out-of-band.
type GossipSubPull struct {
	Gossiper ident.NodeID
	Pattern  ident.PatternID
	Wanted   []LostEntry
}

var _ Message = (*GossipSubPull)(nil)

// Kind implements Message.
func (g *GossipSubPull) Kind() Kind { return KindGossipSubPull }

// WireSize implements Message.
func (g *GossipSubPull) WireSize() int {
	checkCount(len(g.Wanted), "subpull digest")
	return 1 + 4 + 4 + 2 + 12*len(g.Wanted)
}

// Append implements Message.
func (g *GossipSubPull) Append(buf []byte) []byte {
	buf = append(buf, byte(KindGossipSubPull))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(g.Gossiper))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(g.Pattern))
	return appendLost(buf, g.Wanted)
}

// GossipPubPull is the publisher-based negative digest: Lost entries
// for events published by Source, source-routed back toward the
// publisher along Route (most recent route observed for Source). Next
// indexes the hop that should receive the message next; the route is
// walked from the end (the dispatcher closest to the gossiper) toward
// index 0 (the publisher).
type GossipPubPull struct {
	Gossiper ident.NodeID
	Source   ident.NodeID
	Wanted   []LostEntry
	Route    []ident.NodeID
	Next     uint16
}

var _ Message = (*GossipPubPull)(nil)

// Kind implements Message.
func (g *GossipPubPull) Kind() Kind { return KindGossipPubPull }

// WireSize implements Message.
func (g *GossipPubPull) WireSize() int {
	checkCount(len(g.Wanted), "pubpull digest")
	checkCount(len(g.Route), "pubpull route")
	return 1 + 4 + 4 + 2 + 12*len(g.Wanted) + 2 + 4*len(g.Route) + 2
}

// Append implements Message.
func (g *GossipPubPull) Append(buf []byte) []byte {
	buf = append(buf, byte(KindGossipPubPull))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(g.Gossiper))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(g.Source))
	buf = appendLost(buf, g.Wanted)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(g.Route)))
	for _, n := range g.Route {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	}
	return binary.LittleEndian.AppendUint16(buf, g.Next)
}

// GossipRandom is the random-pull baseline digest: Lost entries for all
// patterns, forwarded as a random walk on the tree ignoring
// subscription tables (paper Sec. IV, "random pull").
type GossipRandom struct {
	Gossiper ident.NodeID
	Wanted   []LostEntry
}

var _ Message = (*GossipRandom)(nil)

// Kind implements Message.
func (g *GossipRandom) Kind() Kind { return KindGossipRandom }

// WireSize implements Message.
func (g *GossipRandom) WireSize() int {
	checkCount(len(g.Wanted), "random-pull digest")
	return 1 + 4 + 2 + 12*len(g.Wanted)
}

// Append implements Message.
func (g *GossipRandom) Append(buf []byte) []byte {
	buf = append(buf, byte(KindGossipRandom))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(g.Gossiper))
	return appendLost(buf, g.Wanted)
}

// Request asks a push gossiper for the events in IDs, out-of-band.
type Request struct {
	Requester ident.NodeID
	IDs       []ident.EventID
}

var _ Message = (*Request)(nil)

// Kind implements Message.
func (r *Request) Kind() Kind { return KindRequest }

// WireSize implements Message.
func (r *Request) WireSize() int {
	checkCount(len(r.IDs), "request IDs")
	return 1 + 4 + 2 + 8*len(r.IDs)
}

// Append implements Message.
func (r *Request) Append(buf []byte) []byte {
	buf = append(buf, byte(KindRequest))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Requester))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.IDs)))
	for _, id := range r.IDs {
		buf = appendEventID(buf, id)
	}
	return buf
}

// Retransmit carries cached events back to a recovering dispatcher,
// out-of-band. Each contained event is an event message in its own
// right for overhead accounting.
type Retransmit struct {
	Responder ident.NodeID
	Events    []*Event
}

var _ Message = (*Retransmit)(nil)

// Kind implements Message.
func (r *Retransmit) Kind() Kind { return KindRetransmit }

// WireSize implements Message.
func (r *Retransmit) WireSize() int {
	checkCount(len(r.Events), "retransmit batch")
	n := 1 + 4 + 2
	for _, e := range r.Events {
		n += e.WireSize()
	}
	return n
}

// Append implements Message.
func (r *Retransmit) Append(buf []byte) []byte {
	buf = append(buf, byte(KindRetransmit))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(r.Responder))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.Events)))
	for _, e := range r.Events {
		buf = e.Append(buf)
	}
	return buf
}

func appendEventID(buf []byte, id ident.EventID) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(id.Source))
	return binary.LittleEndian.AppendUint32(buf, id.Seq)
}

func appendLost(buf []byte, ls []LostEntry) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(ls)))
	for _, l := range ls {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(l.Source))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(l.Pattern))
		buf = binary.LittleEndian.AppendUint32(buf, l.Seq)
	}
	return buf
}

// Encode serializes msg into a fresh buffer.
func Encode(msg Message) []byte {
	return msg.Append(make([]byte, 0, msg.WireSize()))
}
