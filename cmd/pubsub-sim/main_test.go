package main

import (
	"strings"
	"testing"
)

func TestRunDefaultsSmall(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-n", "25", "-duration", "2s", "-algo", "combined-pull", "-rate", "20",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"algorithm            combined-pull",
		"delivery rate",
		"gossip msgs/disp",
		"recovered share",
		"events published",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunNoRecoveryOmitsGossipStats(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-n", "20", "-duration", "2s", "-rate", "10"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "gossip msgs/disp") {
		t.Fatal("no-recovery output contains gossip stats")
	}
}

func TestRunSeriesOutput(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-n", "20", "-duration", "2s", "-rate", "10", "-series"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "publish-time-bucket") {
		t.Fatal("series header missing")
	}
}

func TestRunReconfigurationFlag(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-n", "20", "-duration", "2s", "-rate", "10", "-eps", "0",
		"-rho", "200ms", "-algo", "push",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "reconfigurations") {
		t.Fatal("reconfiguration stats missing")
	}
}

func TestRunTraceFlag(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-n", "15", "-duration", "1s", "-rate", "10", "-algo", "push", "-trace", "5"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "protocol trace records") || !strings.Contains(out, "total=") {
		t.Fatalf("trace output missing:\n%s", out)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	for _, args := range [][]string{
		{"-algo", "bogus"},
		{"-n", "1", "-duration", "1s"},
		{"-badflag"},
	} {
		if err := run(args, &strings.Builder{}); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestRunOverlayAndRepairFlags(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-n", "20", "-duration", "3s", "-rate", "10", "-algo", "combined-pull",
		"-overlay", "small-world", "-repair", "self-stabilizing", "-plan", "1",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"overlay              small-world",
		"node churn",
		"repair mode          self-stabilizing",
		"repair protocol",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunRejectsBadOverlayAndRepair(t *testing.T) {
	for _, args := range [][]string{
		{"-overlay", "torus"},
		{"-repair", "magic"},
		{"-overlay", "scale-free", "-rho", "200ms"},
	} {
		if err := run(args, &strings.Builder{}); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}
