// Package network models the communication substrate of the paper's
// evaluation (Sec. IV-A, "Channel reliability"): every overlay link
// behaves like a 10 Mbit/s Ethernet link with FIFO serialization, a
// propagation delay, and an independent Bernoulli loss trial per
// message (rate ε); plus the out-of-band unicast channel (UDP-like,
// possibly lossy) that the epidemic algorithms use for retransmission
// requests and replies (paper Sec. III-B).
package network

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/ident"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/wire"
)

// Handler consumes messages delivered to one dispatcher.
type Handler interface {
	// HandleMessage processes msg sent by from. oob marks messages that
	// arrived on the out-of-band channel rather than a tree link.
	HandleMessage(from ident.NodeID, msg wire.Message, oob bool)
}

// Observer receives traffic callbacks for metrics. All methods are
// invoked synchronously at virtual send/delivery times.
type Observer interface {
	// OnSend fires for every transmission attempt (per hop).
	OnSend(from, to ident.NodeID, msg wire.Message, oob bool)
	// OnLoss fires when a transmission is dropped (channel loss or a
	// link that disappeared while the message was in flight).
	OnLoss(from, to ident.NodeID, msg wire.Message, oob bool)
}

// MultiObserver fans callbacks out to several observers in order.
func MultiObserver(obs ...Observer) Observer {
	return multiObserver(obs)
}

type multiObserver []Observer

// OnSend implements Observer.
func (m multiObserver) OnSend(from, to ident.NodeID, msg wire.Message, oob bool) {
	for _, o := range m {
		o.OnSend(from, to, msg, oob)
	}
}

// OnLoss implements Observer.
func (m multiObserver) OnLoss(from, to ident.NodeID, msg wire.Message, oob bool) {
	for _, o := range m {
		o.OnLoss(from, to, msg, oob)
	}
}

// ArrivalObserver receives a callback at the virtual arrival time of
// every transmission that was actually put on a channel (i.e. every
// Send/SendOOB that scheduled an arrival; attempts dropped at send
// time never reach it). It exists for invariant checking: the callback
// carries enough state (link incarnation, send time, outcome) for an
// external monitor to re-derive what the arrival time must be and
// verify FIFO ordering per directed link. It is invoked before the
// message is handed to the destination handler, so monitor state is
// consistent when the handler triggers follow-up sends.
type ArrivalObserver interface {
	OnArrive(from, to ident.NodeID, msg wire.Message, oob bool, inc uint64, sentAt sim.Time, delivered bool)
}

// NopObserver ignores all callbacks.
type NopObserver struct{}

var _ Observer = NopObserver{}

// OnSend implements Observer.
func (NopObserver) OnSend(ident.NodeID, ident.NodeID, wire.Message, bool) {}

// OnLoss implements Observer.
func (NopObserver) OnLoss(ident.NodeID, ident.NodeID, wire.Message, bool) {}

// Config carries the channel-model parameters.
type Config struct {
	// BandwidthBPS is the link bandwidth in bits per second
	// (10 Mbit/s in the paper).
	BandwidthBPS float64
	// PropDelay is the per-link propagation delay.
	PropDelay sim.Time
	// LossRate is ε, the per-hop Bernoulli loss probability on tree
	// links.
	LossRate float64
	// OOBLossRate is the loss probability of the out-of-band channel
	// (one trial end-to-end).
	OOBLossRate float64
	// OOBBaseDelay is the fixed latency component of the out-of-band
	// channel; the distance-dependent component is PropDelay per
	// overlay hop between the endpoints.
	OOBBaseDelay sim.Time
	// MessageBytes, when positive, forces every message to this size on
	// the wire — the paper's "size of event and gossip messages is the
	// same" assumption. When zero, true encoded sizes are used.
	MessageBytes int
	// ModelQueueing enables FIFO serialization on tree links: a message
	// waits for the transmissions already occupying the link.
	ModelQueueing bool
}

// TxTime returns the serialization delay of msg under this config:
// wire size (or the forced MessageBytes) clocked out at BandwidthBPS.
func (c Config) TxTime(msg wire.Message) sim.Time {
	size := c.MessageBytes
	if size <= 0 {
		size = msg.WireSize()
	}
	bits := float64(size * 8)
	return sim.Time(bits / c.BandwidthBPS * float64(time.Second))
}

// DefaultConfig returns the paper-calibrated channel model.
func DefaultConfig() Config {
	return Config{
		BandwidthBPS:  10e6,
		PropDelay:     100 * time.Microsecond,
		LossRate:      0.1,
		OOBLossRate:   0.1,
		OOBBaseDelay:  200 * time.Microsecond,
		MessageBytes:  200,
		ModelQueueing: true,
	}
}

// linkState is the FIFO occupancy of one directed adjacency slot. A
// slot belongs to a specific (neighbor, incarnation) pair: when the
// topology re-creates a link (new incarnation) or a different neighbor
// takes over the slot, the queued backlog belonged to a connection that
// no longer exists and is discarded.
type linkState struct {
	to    ident.NodeID
	inc   uint64
	until sim.Time // when the last queued transmission finishes
}

// Network delivers messages between dispatchers over the overlay tree
// and the out-of-band channel, in virtual time.
type Network struct {
	k        *sim.Kernel
	topo     *topology.Tree
	cfg      Config
	handlers []Handler
	obs      Observer
	arr      ArrivalObserver // nil unless invariant checking is on
	rng      *rand.Rand
	loss     LossModel

	// procs holds one scheduling handle per node. Sends are attributed
	// to the sender's Proc and arrivals are scheduled under the
	// receiver's affinity, which is what lets the parallel executor
	// shard node events: inside a window the whole send body — shared
	// loss stream, FIFO queue state, counters, observers — is deferred
	// to the single-threaded commit, where it runs in exact sequential
	// order.
	procs []*sim.Proc

	// down marks crashed dispatchers: the network blackholes every
	// transmission from or to a down node, including messages already in
	// flight when the node went down (a dead process receives nothing).
	down []bool

	// busy[from] holds one linkState per adjacency slot of from
	// (degree ≤ MaxDegree), indexed by topology.NeighborSlot. Dense
	// storage replaces the per-send map hashing of the earlier
	// busyUntil []map[ident.NodeID]sim.Time representation.
	busy [][]linkState

	// freeDeliv recycles in-flight delivery records (and their bound
	// run closures) so that Send/SendOOB schedule without allocating.
	freeDeliv []*inflight

	sent      uint64
	delivered uint64
	lost      uint64
}

// inflight is one in-flight transmission: the state the delivery
// callback needs at arrival time. Records are pooled on the network's
// free list — the run closure is bound once, when the record is first
// created, and reused for every later flight of the record.
type inflight struct {
	nw       *Network
	from, to ident.NodeID
	msg      wire.Message
	inc      uint64   // link incarnation at send time (tree sends)
	sentAt   sim.Time // virtual time of the Send/SendOOB call
	dropped  bool     // loss trial outcome, drawn at send time
	oob      bool
	ok       bool   // arrival outcome; set by arrive for finish
	run      func() // bound to this record; allocated once
	finish   func() // bound to this record; deferred half of arrive
}

// getDelivery pops a pooled record or builds a fresh one.
func (nw *Network) getDelivery() *inflight {
	if n := len(nw.freeDeliv); n > 0 {
		d := nw.freeDeliv[n-1]
		nw.freeDeliv = nw.freeDeliv[:n-1]
		return d
	}
	d := &inflight{nw: nw}
	d.run = d.arrive
	d.finish = d.commit
	return d
}

// arrive completes one transmission at its virtual arrival time and
// recycles the record. It runs under the receiver's affinity: inside a
// parallel window the handler call (node-local state) executes
// in-shard, while everything shared — counters, observers, the record
// pool — is deferred to the commit via d.finish. The outcome check
// only reads state (down flags, link incarnations) that is mutated
// exclusively by solo global events, so the concurrent reads are safe.
func (d *inflight) arrive() {
	nw := d.nw
	// A message completes iff the receiver is still up and — for tree
	// sends — the loss trial passed and the link survived unchanged: a
	// link that disappeared mid-flight loses the message even if the
	// loss trial passed, and so does a link that was re-created in the
	// meantime (a new incarnation is a new connection).
	ok := !nw.down[d.to] && (d.oob ||
		(!d.dropped && nw.topo.HasLink(d.from, d.to) &&
			nw.topo.LinkIncarnation(d.from, d.to) == d.inc))
	if p := nw.procs[d.to]; p.Deferring() {
		d.ok = ok
		if ok {
			h := nw.handlers[d.to]
			if h == nil {
				panic(fmt.Sprintf("network: no handler registered for %v", d.to))
			}
			h.HandleMessage(d.from, d.msg, d.oob)
		}
		p.Defer(d.finish)
		return
	}
	if nw.arr != nil {
		nw.arr.OnArrive(d.from, d.to, d.msg, d.oob, d.inc, d.sentAt, ok)
	}
	if ok {
		nw.deliver(d.from, d.to, d.msg, d.oob)
	} else {
		nw.lost++
		nw.obs.OnLoss(d.from, d.to, d.msg, d.oob)
	}
	d.msg = nil // release the message; the record outlives it
	nw.freeDeliv = append(nw.freeDeliv, d)
}

// commit is the shared-state half of a parallel-window arrival,
// executed single-threaded at the window barrier in exact sequential
// order. The delivery and loss counters commute with the handler's own
// deferred sends, so running the handler in-shard first is
// unobservable.
func (d *inflight) commit() {
	nw := d.nw
	if nw.arr != nil {
		nw.arr.OnArrive(d.from, d.to, d.msg, d.oob, d.inc, d.sentAt, d.ok)
	}
	if d.ok {
		nw.delivered++
	} else {
		nw.lost++
		nw.obs.OnLoss(d.from, d.to, d.msg, d.oob)
	}
	d.msg = nil
	nw.freeDeliv = append(nw.freeDeliv, d)
}

// New builds a network over topo. Handlers are registered later with
// Register; sending to a node without a handler panics (it is a wiring
// bug, not a runtime condition).
func New(k *sim.Kernel, topo *topology.Tree, cfg Config, obs Observer) *Network {
	if obs == nil {
		obs = NopObserver{}
	}
	n := topo.N()
	deg := topo.MaxDegree()
	slots := make([]linkState, n*deg)
	for i := range slots {
		slots[i].to = ident.None
	}
	busy := make([][]linkState, n)
	for i := range busy {
		busy[i] = slots[i*deg : (i+1)*deg : (i+1)*deg]
	}
	procs := make([]*sim.Proc, n)
	for i := range procs {
		procs[i] = k.Proc(int32(i))
	}
	nw := &Network{
		k:        k,
		topo:     topo,
		cfg:      cfg,
		handlers: make([]Handler, n),
		obs:      obs,
		rng:      k.NewStream(0x6e657477), // "netw"
		procs:    procs,
		busy:     busy,
		down:     make([]bool, n),
	}
	// The default model reproduces the historical inline Bernoulli
	// draws bit for bit: same stream, same rate>0 guard, same order.
	nw.loss = NewBernoulli(cfg.LossRate, cfg.OOBLossRate, nw.rng)
	return nw
}

// SetLossModel replaces the channel loss model mid-run or before the
// run starts. Passing nil is a wiring bug and panics.
func (nw *Network) SetLossModel(m LossModel) {
	if m == nil {
		panic("network: nil LossModel")
	}
	nw.loss = m
}

// SetArrivalObserver installs (or, with nil, removes) the arrival-time
// callback used by invariant monitors. The hot path pays one nil check
// per arrival when no observer is installed.
func (nw *Network) SetArrivalObserver(a ArrivalObserver) {
	nw.arr = a
}

// SetNodeDown marks a dispatcher crashed (true) or restarted (false).
// While down, every transmission from or to the node — including
// messages already in flight — is counted as lost.
func (nw *Network) SetNodeDown(id ident.NodeID, down bool) {
	nw.down[id] = down
}

// NodeDown reports whether the dispatcher is currently marked down.
func (nw *Network) NodeDown(id ident.NodeID) bool { return nw.down[id] }

// Register installs the handler for node id.
func (nw *Network) Register(id ident.NodeID, h Handler) {
	nw.handlers[id] = h
}

// Sent returns the number of transmission attempts so far.
func (nw *Network) Sent() uint64 { return nw.sent }

// Delivered returns the number of completed deliveries so far.
func (nw *Network) Delivered() uint64 { return nw.delivered }

// Lost returns the number of dropped transmissions so far.
func (nw *Network) Lost() uint64 { return nw.lost }

// txTime returns the serialization delay of msg.
func (nw *Network) txTime(msg wire.Message) sim.Time {
	return nw.cfg.TxTime(msg)
}

// Send transmits msg from one dispatcher to a direct neighbor on the
// overlay tree. Messages sent toward a non-neighbor (e.g. a link that
// broke between routing decision and send) are counted as lost. The
// link may also break while the message is in flight, which likewise
// loses it.
func (nw *Network) Send(from, to ident.NodeID, msg wire.Message) {
	if p := nw.procs[from]; p.Deferring() {
		// Everything in the send path is shared across nodes — the loss
		// stream, the FIFO queue state, counters, observers. Defer the
		// whole body to the commit barrier, where it runs with the
		// kernel clock at this event's time, in sequential order.
		p.Defer(func() { nw.send(from, to, msg) })
		return
	}
	nw.send(from, to, msg)
}

func (nw *Network) send(from, to ident.NodeID, msg wire.Message) {
	nw.sent++
	nw.obs.OnSend(from, to, msg, false)
	slot := nw.topo.NeighborSlot(from, to)
	if slot < 0 || nw.down[from] || nw.down[to] {
		nw.lost++
		nw.obs.OnLoss(from, to, msg, false)
		return
	}
	incarnation := nw.topo.LinkIncarnation(from, to)
	start := nw.k.Now()
	tx := nw.txTime(msg)
	if nw.cfg.ModelQueueing {
		st := nw.queueState(from, to, slot, incarnation)
		if st.until > start {
			start = st.until
		}
		st.until = start + tx
	}
	arrival := start + tx + nw.cfg.PropDelay
	dropped := nw.loss.DropTree(from, to)
	d := nw.getDelivery()
	d.from, d.to, d.msg = from, to, msg
	d.inc, d.dropped, d.oob = incarnation, dropped, false
	d.sentAt = nw.k.Now()
	nw.k.AtAff(int32(to), arrival, d.run)
}

// queueState returns the FIFO state of the directed link (from, to)
// currently occupying adjacency slot, creating or resetting it as
// needed. A slot whose recorded (neighbor, incarnation) differs from
// the current link's is stale: either a RemoveLink at from compacted
// the adjacency list (the state may have moved to another slot — it is
// swapped back so a surviving link keeps its genuine backlog), or the
// link was re-created (a new incarnation is a new connection and must
// NOT inherit the phantom backlog of its predecessor).
func (nw *Network) queueState(from, to ident.NodeID, slot int, inc uint64) *linkState {
	s := nw.busy[from]
	st := &s[slot]
	if st.to == to && st.inc == inc {
		return st
	}
	for j := range s {
		if j != slot && s[j].to == to && s[j].inc == inc {
			s[slot], s[j] = s[j], s[slot]
			return st
		}
	}
	*st = linkState{to: to, inc: inc}
	return st
}

// SendOOB transmits msg between two arbitrary dispatchers on the
// out-of-band unicast channel. The channel ignores overlay link state;
// its latency grows with the overlay distance between the endpoints
// (both dispatchers sit on the same physical network, and overlay
// distance is our proxy for network distance).
func (nw *Network) SendOOB(from, to ident.NodeID, msg wire.Message) {
	if from == to {
		panic(fmt.Sprintf("network: OOB self-send at %v", from))
	}
	if p := nw.procs[from]; p.Deferring() {
		p.Defer(func() { nw.sendOOB(from, to, msg) })
		return
	}
	nw.sendOOB(from, to, msg)
}

func (nw *Network) sendOOB(from, to ident.NodeID, msg wire.Message) {
	nw.sent++
	nw.obs.OnSend(from, to, msg, true)
	if nw.down[from] || nw.down[to] || nw.loss.DropOOB(from, to) {
		nw.lost++
		nw.obs.OnLoss(from, to, msg, true)
		return
	}
	hops := nw.topo.Dist(from, to)
	if hops < 0 {
		hops = nw.topo.N() / 2 // partitioned overlay: assume far apart
	}
	delay := nw.cfg.OOBBaseDelay + sim.Time(hops)*nw.cfg.PropDelay + nw.txTime(msg)
	d := nw.getDelivery()
	d.from, d.to, d.msg = from, to, msg
	d.inc, d.dropped, d.oob = 0, false, true
	d.sentAt = nw.k.Now()
	nw.k.AtAff(int32(to), nw.k.Now()+delay, d.run)
}

func (nw *Network) deliver(from, to ident.NodeID, msg wire.Message, oob bool) {
	h := nw.handlers[to]
	if h == nil {
		panic(fmt.Sprintf("network: no handler registered for %v", to))
	}
	nw.delivered++
	h.HandleMessage(from, msg, oob)
}
