package wire

import (
	"encoding/binary"
	"fmt"

	"repro/internal/ident"
	"repro/internal/matching"
)

// Decode parses one message from data. It fails on truncation, unknown
// kinds, and trailing garbage.
func Decode(data []byte) (Message, error) {
	r := reader{buf: data}
	msg, err := r.message()
	if err != nil {
		return nil, err
	}
	if r.pos != len(data) {
		return nil, fmt.Errorf("%w: %d of %d bytes consumed", ErrTrailing, r.pos, len(data))
	}
	return msg, nil
}

// reader is a bounds-checked cursor over an encoded message.
type reader struct {
	buf []byte
	pos int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w at offset %d", ErrTruncated, r.pos)
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil || r.pos+1 > len(r.buf) {
		r.fail()
		return 0
	}
	v := r.buf[r.pos]
	r.pos++
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || r.pos+2 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(r.buf[r.pos:])
	r.pos += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.pos+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.pos+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v
}

func (r *reader) skip(n int) {
	if r.err != nil || r.pos+n > len(r.buf) {
		r.fail()
		return
	}
	r.pos += n
}

func (r *reader) node() ident.NodeID       { return ident.NodeID(r.u32()) }
func (r *reader) pattern() ident.PatternID { return ident.PatternID(r.u32()) }

func (r *reader) eventID() ident.EventID {
	return ident.EventID{Source: r.node(), Seq: r.u32()}
}

func (r *reader) lost() []LostEntry {
	n := int(r.u16())
	if r.err != nil {
		return nil
	}
	out := make([]LostEntry, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, LostEntry{Source: r.node(), Pattern: r.pattern(), Seq: r.u32()})
	}
	return out
}

func (r *reader) nodes16() []ident.NodeID {
	n := int(r.u16())
	if r.err != nil {
		return nil
	}
	out := make([]ident.NodeID, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, r.node())
	}
	return out
}

func (r *reader) message() (Message, error) {
	kind := Kind(r.u8())
	if r.err != nil {
		return nil, r.err
	}
	var msg Message
	switch kind {
	case KindEvent:
		msg = r.event()
	case KindSubscribe:
		msg = &Subscribe{Pattern: r.pattern()}
	case KindUnsubscribe:
		msg = &Unsubscribe{Pattern: r.pattern()}
	case KindGossipPush:
		g := &GossipPush{Gossiper: r.node(), Pattern: r.pattern()}
		n := int(r.u16())
		for i := 0; i < n && r.err == nil; i++ {
			g.Digest = append(g.Digest, r.eventID())
		}
		msg = g
	case KindGossipSubPull:
		msg = &GossipSubPull{Gossiper: r.node(), Pattern: r.pattern(), Wanted: r.lost()}
	case KindGossipPubPull:
		msg = &GossipPubPull{
			Gossiper: r.node(),
			Source:   r.node(),
			Wanted:   r.lost(),
			Route:    r.nodes16(),
			Next:     r.u16(),
		}
	case KindGossipRandom:
		msg = &GossipRandom{Gossiper: r.node(), Wanted: r.lost()}
	case KindRequest:
		req := &Request{Requester: r.node()}
		n := int(r.u16())
		for i := 0; i < n && r.err == nil; i++ {
			req.IDs = append(req.IDs, r.eventID())
		}
		msg = req
	case KindRetransmit:
		rt := &Retransmit{Responder: r.node()}
		n := int(r.u16())
		for i := 0; i < n && r.err == nil; i++ {
			if k := Kind(r.u8()); k != KindEvent && r.err == nil {
				return nil, fmt.Errorf("%w: kind %v inside retransmit", ErrUnknownKind, k)
			}
			rt.Events = append(rt.Events, r.event())
		}
		msg = rt
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownKind, uint8(kind))
	}
	if r.err != nil {
		return nil, r.err
	}
	return msg, nil
}

// event parses an Event body (the kind byte has been consumed).
func (r *reader) event() *Event {
	e := &Event{
		ID:          r.eventID(),
		PublishedAt: int64(r.u64()),
		PayloadLen:  r.u16(),
	}
	nc := int(r.u8())
	content := make(matching.Content, 0, nc)
	for i := 0; i < nc && r.err == nil; i++ {
		content = append(content, r.pattern())
	}
	e.Content = content
	nt := int(r.u8())
	for i := 0; i < nt && r.err == nil; i++ {
		e.Tags = append(e.Tags, ident.PatternSeq{Pattern: r.pattern(), Seq: r.u32()})
	}
	e.Route = r.nodes16()
	r.skip(int(e.PayloadLen))
	return e
}
