package faults

import (
	"errors"
	"math/rand"

	"repro/internal/ident"
	"repro/internal/network"
	"repro/internal/pubsub"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Gossiper is the per-dispatcher recovery engine hook the injector
// pauses across downtime. core.Engine satisfies it.
type Gossiper interface {
	Stop()
	Start()
}

// Config wires an Injector into one simulation run.
type Config struct {
	Kernel *sim.Kernel
	Topo   *topology.Tree
	Net    *network.Network
	Nodes  []*pubsub.Node
	// Engines holds the recovery engine of each dispatcher, indexed
	// like Nodes; nil entries (or an empty slice, for NoRecovery runs)
	// mean no engine to pause.
	Engines []Gossiper
	// RepairDelay is how long the injector waits before healing the
	// survivors around a crash, and between retries when degree slots
	// are temporarily exhausted.
	RepairDelay sim.Time
	// MaxHealRetries bounds how many times one heal reschedules itself
	// when a component cannot merge (all survivors degree-saturated)
	// before giving up and counting Stats.RepairAbandoned. Zero means
	// DefaultMaxHealRetries; an abandoned merge is picked up by the
	// next crash's heal touching the same components, or never — which
	// is exactly what the counter surfaces.
	MaxHealRetries int
	// DisableHealing switches the injector to pure fault mode for the
	// self-stabilizing repair protocol: crashes no longer schedule the
	// omniscient ReconnectAround heal, and restarts bring the node back
	// up isolated (no oracle attach point) — the decentralized protocol
	// owns all re-linking.
	DisableHealing bool
	// Trace, when non-nil, records NodeDown/NodeUp and the injector's
	// LinkDown/LinkUp transitions.
	Trace *trace.Ring
}

// DefaultMaxHealRetries is the heal retry cap when
// Config.MaxHealRetries is zero. At the default 100ms RepairDelay it
// allows ~6.4s of retrying, far beyond any transient degree
// exhaustion seen in the churn plans.
const DefaultMaxHealRetries = 64

// Stats counts what the injector actually did.
type Stats struct {
	// Crashes and Restarts count completed node transitions.
	Crashes, Restarts uint64
	// LinkFlaps and Partitions count links cut by the respective kinds.
	LinkFlaps, Partitions uint64
	// LossModelSwitches counts SetLossModel actions applied.
	LossModelSwitches uint64
	// Skipped counts actions that could not apply: crash of an
	// already-down node, restart of an up node, flap of an absent link,
	// partition of disconnected endpoints.
	Skipped uint64
	// RepairAbandoned counts heals that exhausted MaxHealRetries with
	// components still unmerged (all survivors degree-saturated for the
	// whole retry budget).
	RepairAbandoned uint64
}

// interval is one downtime span of a node; to < 0 marks still-down.
type interval struct {
	from, to sim.Time
}

// Injector executes a fault plan inside the simulation event loop.
type Injector struct {
	cfg  Config
	rng  *rand.Rand
	down []bool
	hist [][]interval
	st   Stats
	// lastFault is the virtual time of the most recent injector-driven
	// disturbance (crash, restart, cut, restore) — repairs excluded.
	// The convergence monitor anchors its bound here.
	lastFault sim.Time
}

// NewInjector builds an injector over one run's components. Its
// randomness (attach points, healing links) comes from a dedicated
// kernel stream, so fault execution never perturbs the draw sequences
// of the workload, topology, or channel streams.
func NewInjector(cfg Config) *Injector {
	n := len(cfg.Nodes)
	return &Injector{
		cfg:  cfg,
		rng:  cfg.Kernel.NewStream(0x6661756c), // "faul"
		down: make([]bool, n),
		hist: make([][]interval, n),
	}
}

// Schedule validates the plan and registers every action with the
// kernel. Call before Kernel.Run, at virtual time zero.
func (in *Injector) Schedule(plan *Plan) error {
	if plan == nil {
		return nil
	}
	if err := plan.Validate(len(in.cfg.Nodes)); err != nil {
		return err
	}
	for _, a := range plan.Actions {
		a := a
		in.cfg.Kernel.At(a.At, func() { in.apply(a) })
	}
	return nil
}

// Stats returns what the injector has done so far.
func (in *Injector) Stats() Stats { return in.st }

// LastFaultAt returns the virtual time of the most recent disturbance
// the injector applied (crash, restart, link cut, link restore) — zero
// when nothing has been injected yet. Healing is not a disturbance.
func (in *Injector) LastFaultAt() sim.Time { return in.lastFault }

// IsDown reports whether the dispatcher is currently crashed.
func (in *Injector) IsDown(v ident.NodeID) bool { return in.down[v] }

// WasDownAt reports whether the dispatcher was down at virtual time t.
func (in *Injector) WasDownAt(v ident.NodeID, t sim.Time) bool {
	for _, iv := range in.hist[v] {
		if t >= iv.from && (iv.to < 0 || t < iv.to) {
			return true
		}
	}
	return false
}

// Downtime returns the cumulative dispatcher downtime up to end; spans
// still open at end are counted up to end.
func (in *Injector) Downtime(end sim.Time) sim.Time {
	var total sim.Time
	for _, ivs := range in.hist {
		for _, iv := range ivs {
			to := iv.to
			if to < 0 || to > end {
				to = end
			}
			if to > iv.from {
				total += to - iv.from
			}
		}
	}
	return total
}

func (in *Injector) apply(a Action) {
	switch a.Kind {
	case NodeCrash:
		in.crash(a.Node, a.Downtime)
	case NodeRestart:
		in.restart(a.Node)
	case LinkFlap:
		in.cut(a.A, a.B, a.Downtime, &in.st.LinkFlaps)
	case Partition:
		in.partition(a)
	case SetLossModel:
		in.cfg.Net.SetLossModel(a.NewModel(in.cfg.Kernel.NewStream))
		in.st.LossModelSwitches++
	}
}

func (in *Injector) engine(v ident.NodeID) Gossiper {
	if int(v) < len(in.cfg.Engines) {
		return in.cfg.Engines[v]
	}
	return nil
}

func (in *Injector) record(k trace.Kind, node, peer ident.NodeID) {
	if in.cfg.Trace != nil {
		in.cfg.Trace.Add(trace.Record{At: in.cfg.Kernel.Now(), Kind: k, Node: node, Peer: peer})
	}
}

// crash takes dispatcher v down and, when downtime > 0, schedules its
// restart. The survivors left disconnected by v's disappearance are
// healed after RepairDelay.
func (in *Injector) crash(v ident.NodeID, downtime sim.Time) {
	if in.down[v] {
		in.st.Skipped++
		return
	}
	now := in.cfg.Kernel.Now()
	in.down[v] = true
	in.hist[v] = append(in.hist[v], interval{from: now, to: -1})
	in.st.Crashes++
	in.lastFault = now
	in.cfg.Net.SetNodeDown(v, true)
	if e := in.engine(v); e != nil {
		e.Stop()
	}
	removed := in.cfg.Topo.RemoveNode(v)
	in.cfg.Nodes[v].OnNodeDown()
	anchors := make([]ident.NodeID, 0, len(removed))
	for _, l := range removed {
		nb := l.Other(v)
		in.cfg.Nodes[nb].OnLinkDown(v)
		anchors = append(anchors, nb)
	}
	in.record(trace.NodeDown, v, ident.None)
	if len(anchors) > 1 && !in.cfg.DisableHealing {
		in.cfg.Kernel.After(in.cfg.RepairDelay, func() { in.heal(anchors, 0) })
	}
	if downtime > 0 {
		in.cfg.Kernel.After(downtime, func() { in.restart(v) })
	}
}

// maxHealRetries returns the configured heal retry cap.
func (in *Injector) maxHealRetries() int {
	if in.cfg.MaxHealRetries > 0 {
		return in.cfg.MaxHealRetries
	}
	return DefaultMaxHealRetries
}

// heal merges the surviving components around a crash, retrying while
// degree slots are exhausted by overlapping reconfigurations. attempt
// counts retries so far: a component that cannot merge within
// MaxHealRetries is abandoned (Stats.RepairAbandoned) instead of
// rescheduling forever.
func (in *Injector) heal(anchors []ident.NodeID, attempt int) {
	live := anchors[:0]
	for _, a := range anchors {
		if !in.down[a] {
			live = append(live, a)
		}
	}
	if len(live) < 2 {
		return
	}
	added, err := in.cfg.Topo.ReconnectAround(live, in.IsDown, in.rng)
	for _, l := range added {
		in.cfg.Nodes[l.A].OnLinkUp(l.B)
		in.cfg.Nodes[l.B].OnLinkUp(l.A)
		in.record(trace.LinkUp, l.A, l.B)
	}
	if err != nil {
		if attempt+1 >= in.maxHealRetries() {
			in.st.RepairAbandoned++
			return
		}
		in.cfg.Kernel.After(in.cfg.RepairDelay, func() { in.heal(live, attempt+1) })
	}
}

// restart brings dispatcher v back up at a random degree-respecting
// attach point. When no attach point exists (every live node is at its
// degree limit), the node stays down and the restart retries after
// RepairDelay — downtime accounting extends accordingly, exactly as a
// real operator waiting out a full mesh would observe.
func (in *Injector) restart(v ident.NodeID) {
	if !in.down[v] {
		in.st.Skipped++
		return
	}
	if in.cfg.DisableHealing {
		// Decentralized mode: the node comes back isolated and the
		// self-stabilizing repair protocol re-attaches it.
		now := in.cfg.Kernel.Now()
		in.down[v] = false
		ivs := in.hist[v]
		ivs[len(ivs)-1].to = now
		in.st.Restarts++
		in.lastFault = now
		in.cfg.Net.SetNodeDown(v, false)
		in.cfg.Nodes[v].OnNodeUp()
		if e := in.engine(v); e != nil {
			e.Start()
		}
		in.record(trace.NodeUp, v, ident.None)
		return
	}
	var cand []ident.NodeID
	for i := range in.cfg.Nodes {
		w := ident.NodeID(i)
		if w != v && !in.down[w] && in.cfg.Topo.Degree(w) < in.cfg.Topo.MaxDegree() {
			cand = append(cand, w)
		}
	}
	if len(cand) == 0 {
		in.cfg.Kernel.After(in.cfg.RepairDelay, func() { in.restart(v) })
		return
	}
	w := cand[in.rng.Intn(len(cand))]
	if err := in.cfg.Topo.AddLink(v, w); err != nil {
		in.cfg.Kernel.After(in.cfg.RepairDelay, func() { in.restart(v) })
		return
	}
	now := in.cfg.Kernel.Now()
	in.down[v] = false
	ivs := in.hist[v]
	ivs[len(ivs)-1].to = now
	in.st.Restarts++
	in.lastFault = now
	in.cfg.Net.SetNodeDown(v, false)
	in.cfg.Nodes[v].OnNodeUp()
	// Subscription-table resync over the new link: v re-advertises its
	// local subscriptions; w re-advertises the component's interests.
	in.cfg.Nodes[v].OnLinkUp(w)
	in.cfg.Nodes[w].OnLinkUp(v)
	if e := in.engine(v); e != nil {
		e.Start()
	}
	in.record(trace.NodeUp, v, w)
}

// cut removes the link a-b and, when downtime > 0, schedules its
// restoration. counter receives the cut on success.
func (in *Injector) cut(a, b ident.NodeID, downtime sim.Time, counter *uint64) {
	if err := in.cfg.Topo.RemoveLink(a, b); err != nil {
		in.st.Skipped++
		return
	}
	*counter++
	in.lastFault = in.cfg.Kernel.Now()
	in.cfg.Nodes[a].OnLinkDown(b)
	in.cfg.Nodes[b].OnLinkDown(a)
	in.record(trace.LinkDown, a, b)
	if downtime > 0 {
		in.cfg.Kernel.After(downtime, func() { in.restore(a, b) })
	}
}

// restore re-adds a previously cut link. A cycle error means another
// repair already reconnected the two sides — the outage is over and the
// restore is dropped; degree exhaustion retries after RepairDelay. A
// crashed endpoint also drops the restore: the node's own rejoin will
// reconnect it.
func (in *Injector) restore(a, b ident.NodeID) {
	if in.down[a] || in.down[b] {
		return
	}
	err := in.cfg.Topo.AddLink(a, b)
	switch {
	case err == nil:
		in.lastFault = in.cfg.Kernel.Now()
		in.cfg.Nodes[a].OnLinkUp(b)
		in.cfg.Nodes[b].OnLinkUp(a)
		in.record(trace.LinkUp, a, b)
	case errors.Is(err, topology.ErrWouldCycle), errors.Is(err, topology.ErrLinkExists):
		return
	default:
		in.cfg.Kernel.After(in.cfg.RepairDelay, func() { in.restore(a, b) })
	}
}

// partition cuts the middle link of the A–B path.
func (in *Injector) partition(act Action) {
	path := in.cfg.Topo.Path(act.A, act.B)
	if len(path) < 2 {
		in.st.Skipped++
		return
	}
	mid := len(path) / 2
	in.cut(path[mid-1], path[mid], act.Downtime, &in.st.Partitions)
}
