package scenario

import (
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/core"
)

// TestLosslessRunsDeliverEverything is the first metamorphic relation:
// with ε = 0 on both channels, no faults, and no reconfigurations,
// every algorithm must achieve a delivery rate of exactly 1.0 with
// zero recoveries — there is nothing to recover, and any recovery
// would mean the engines hallucinate losses. The runs execute under
// full invariant checking.
func TestLosslessRunsDeliverEverything(t *testing.T) {
	for _, alg := range core.Algorithms() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			p := DefaultParams()
			p.Seed = 11
			p.N = 20
			p.Duration = 2 * time.Second
			p.MeasureFrom = 100 * time.Millisecond
			p.MeasureTo = 1500 * time.Millisecond
			p.PublishRate = 12
			p.Algorithm = alg
			p.Gossip = core.DefaultConfig(alg)
			p.Network.LossRate = 0
			p.Network.OOBLossRate = 0
			p.Check = check.All()
			r, err := Run(p)
			if err != nil {
				t.Fatal(err)
			}
			if r.DeliveryRate != 1.0 {
				t.Errorf("DeliveryRate = %.17g, want exactly 1.0", r.DeliveryRate)
			}
			if r.Recoveries != 0 {
				t.Errorf("Recoveries = %d, want 0 on a lossless channel", r.Recoveries)
			}
			if r.RecoveredShare != 0 {
				t.Errorf("RecoveredShare = %.17g, want 0", r.RecoveredShare)
			}
			if s := r.EngineStats; s.Recovered != 0 || s.RequestsSent != 0 {
				t.Errorf("engines recovered %d events via %d requests on a lossless channel",
					s.Recovered, s.RequestsSent)
			}
		})
	}
}

// TestLossMonotonicallyDegradesDelivery is the second metamorphic
// relation: with recovery disabled, raising ε can only lower the
// delivery rate. Individual seeds see different loss draws per ε, so
// the relation is asserted on the mean over a fixed seed set, with a
// tolerance far below the effect size (each ε step costs well over a
// percentage point of delivery; the seed noise on the mean is an order
// of magnitude smaller).
func TestLossMonotonicallyDegradesDelivery(t *testing.T) {
	epsilons := []float64{0, 0.05, 0.1, 0.2, 0.3}
	seeds := []int64{1, 2, 3, 4, 5}
	const tolerance = 0.005

	means := make([]float64, len(epsilons))
	var r Runner
	for i, eps := range epsilons {
		sum := 0.0
		for _, seed := range seeds {
			p := DefaultParams()
			p.Seed = seed
			p.N = 20
			p.Duration = 2 * time.Second
			p.MeasureFrom = 100 * time.Millisecond
			p.MeasureTo = 1500 * time.Millisecond
			p.PublishRate = 12
			p.Algorithm = core.NoRecovery
			p.Gossip = core.DefaultConfig(core.NoRecovery)
			p.Network.LossRate = eps
			res, err := r.Run(p)
			if err != nil {
				t.Fatal(err)
			}
			sum += res.DeliveryRate
		}
		means[i] = sum / float64(len(seeds))
	}
	for i := 1; i < len(means); i++ {
		if means[i] > means[i-1]+tolerance {
			t.Errorf("mean delivery rate rose with loss: ε=%v → %.4f but ε=%v → %.4f (means %v)",
				epsilons[i-1], means[i-1], epsilons[i], means[i], means)
		}
	}
	if means[0] != 1.0 {
		t.Errorf("ε=0 mean delivery rate = %.17g, want exactly 1.0", means[0])
	}
}
