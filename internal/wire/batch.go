package wire

import (
	"encoding/binary"
)

// Batch framing packs several messages into one datagram: each message
// is preceded by a 2-byte little-endian length. The live transport uses
// it to coalesce the burst of messages a dispatcher emits toward one
// destination per gossip round — digest plus events plus requests —
// into a single send, amortizing the envelope and the syscall.
//
// A frame length is bounded by the same u16 discipline as every other
// count in the codec; a message whose encoding exceeds MaxFrame must
// travel alone in an unframed datagram (UDP caps the payload below 64K
// anyway, so the bound costs nothing that the network would not).

// FrameOverhead is the per-message framing cost in bytes.
const FrameOverhead = 2

// MaxFrame is the largest message encoding a frame can carry.
const MaxFrame = 1<<16 - 1

// AppendFrame appends msg as one length-prefixed frame onto buf. The
// caller must ensure msg.WireSize() ≤ MaxFrame (Fits reports this);
// oversized messages panic at the same choke point as oversized counts.
func AppendFrame(buf []byte, msg Message) []byte {
	sz := msg.WireSize()
	if sz > MaxFrame {
		panic("wire: message too large for batch frame")
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(sz))
	return msg.Append(buf)
}

// Fits reports whether msg can be carried as a frame at all.
func Fits(msg Message) bool { return msg.WireSize() <= MaxFrame }

// NextFrame splits the first length-prefixed frame off buf, returning
// the encoded message bytes and the remainder. An empty buf is not an
// error at this layer — callers detect the end of a batch by len(rest)
// reaching zero — but a partial header or a short body is ErrTruncated.
func NextFrame(buf []byte) (frame, rest []byte, err error) {
	if len(buf) < FrameOverhead {
		return nil, nil, ErrTruncated
	}
	sz := int(binary.LittleEndian.Uint16(buf))
	if len(buf) < FrameOverhead+sz {
		return nil, nil, ErrTruncated
	}
	return buf[FrameOverhead : FrameOverhead+sz], buf[FrameOverhead+sz:], nil
}
