// Package flood implements a pure-gossip dissemination baseline in the
// spirit of hpcast (paper ref. [10], Eugster & Guerraoui, "Probabilistic
// multicast"): gossip is not a recovery add-on but the only routing
// mechanism — every event is pushed, in full, to random peers for a
// number of rounds, and interested nodes keep whatever matches their
// subscriptions.
//
// The paper's Sec. V criticizes this design: events reach
// non-interested nodes, arrive more than once, carry their whole
// content in every gossip message, and delivery is not guaranteed even
// without faults. This package exists to reproduce that comparison
// quantitatively (experiment "x-puregossip"): delivery and
// message cost of pure gossip versus the paper's tree routing plus
// epidemic recovery.
package flood

import (
	"fmt"
	"time"

	"repro/internal/ident"
	"repro/internal/matching"
	"repro/internal/sim"
)

// Params configures one pure-gossip dissemination run.
type Params struct {
	// Seed drives all randomness.
	Seed int64
	// N is the number of nodes; all nodes know all other nodes
	// (hpcast organizes membership hierarchically; a flat membership
	// is the most favorable case for pure gossip).
	N int
	// NumPatterns, MaxMatch, PatternsPerNode define the content model,
	// as in the main simulator.
	NumPatterns, MaxMatch, PatternsPerNode int
	// PublishRate is events/second per node.
	PublishRate float64
	// Fanout is how many random peers a node pushes an event to when
	// it first receives it.
	Fanout int
	// Rounds bounds how many hops an event travels (its TTL).
	Rounds int
	// LossRate is the per-transmission Bernoulli loss probability.
	LossRate float64
	// HopDelay is the per-transmission latency.
	HopDelay sim.Time
	// Duration is the simulated time span; measurement uses
	// [1s, Duration-2s] like the main simulator.
	Duration sim.Time
}

// DefaultParams mirrors the main simulator's defaults where they
// apply. Fanout/Rounds default to log-ish values that give pure gossip
// a fair chance (delivery probability comparable to the tree system).
func DefaultParams() Params {
	return Params{
		Seed:            1,
		N:               100,
		NumPatterns:     70,
		MaxMatch:        3,
		PatternsPerNode: 2,
		PublishRate:     50,
		Fanout:          3,
		Rounds:          5,
		LossRate:        0.1,
		HopDelay:        500 * time.Microsecond,
		Duration:        10 * time.Second,
	}
}

// Result summarizes one run.
type Result struct {
	// DeliveryRate is delivered/expected over the measurement window
	// (matching subscribers only, publisher excluded).
	DeliveryRate float64
	// EventMessages counts every event transmission (each carries the
	// full event, as the paper notes for hpcast).
	EventMessages uint64
	// MessagesPerDelivery is EventMessages divided by the number of
	// useful deliveries — the waste metric.
	MessagesPerDelivery float64
	// DuplicateReceptions counts events received by a node that
	// already had them.
	DuplicateReceptions uint64
	// UninterestedReceptions counts first receptions at nodes whose
	// subscriptions do not match — traffic the tree-based system never
	// generates.
	UninterestedReceptions uint64
	// EventsPublished counts publish operations.
	EventsPublished uint64
}

// event is the in-flight representation.
type event struct {
	id      ident.EventID
	content matching.Content
	ttl     int
}

// Run executes one pure-gossip dissemination simulation.
func Run(p Params) (Result, error) {
	if p.N < 2 || p.Fanout < 1 || p.Rounds < 1 {
		return Result{}, fmt.Errorf("flood: invalid parameters N=%d fanout=%d rounds=%d", p.N, p.Fanout, p.Rounds)
	}
	if p.Duration <= 0 {
		return Result{}, fmt.Errorf("flood: non-positive duration %v", p.Duration)
	}
	k := sim.New(p.Seed)
	rng := k.NewStream(0x666c6f6f) // "floo"
	u := matching.Universe{NumPatterns: p.NumPatterns, MaxMatch: p.MaxMatch}

	interests := make([]*matching.Interest, p.N)
	subRNG := k.NewStream(0x73756273)
	for i := range interests {
		interests[i] = matching.NewInterest(u.RandomSubscriptions(p.PatternsPerNode, subRNG))
	}
	subscribersOf := make(map[ident.PatternID][]ident.NodeID, p.NumPatterns)
	for i, in := range interests {
		for _, pat := range in.Patterns() {
			subscribersOf[pat] = append(subscribersOf[pat], ident.NodeID(i))
		}
	}

	seen := make([]*ident.EventIDSet, p.N)
	for i := range seen {
		seen[i] = ident.NewEventIDSet(256)
	}

	measureFrom := sim.Time(time.Second)
	measureTo := p.Duration - 2*time.Second
	if measureTo <= measureFrom {
		measureFrom, measureTo = 0, p.Duration
	}

	var res Result
	type track struct {
		expected, delivered uint32
	}
	tracked := make(map[ident.EventID]*track, 4096)

	// counted/countStamp deduplicate subscribers per publish without a
	// per-call map: a node is counted when its stamp equals the current
	// publish's stamp (single-threaded kernel, shared across closures).
	counted := make([]uint32, p.N)
	countStamp := uint32(0)

	// gossipTo pushes ev to fanout random peers (excluding self).
	var gossipTo func(from ident.NodeID, ev event)
	receive := func(node ident.NodeID, ev event) {
		if !seen[node].Add(ev.id) {
			res.DuplicateReceptions++
			return
		}
		if interests[node].Matches(ev.content) {
			if tr, ok := tracked[ev.id]; ok && node != ev.id.Source {
				tr.delivered++
			}
		} else {
			res.UninterestedReceptions++
		}
		// hpcast-style: every receiver keeps gossiping the full event
		// while its TTL lasts, interested or not.
		if ev.ttl > 1 {
			gossipTo(node, event{id: ev.id, content: ev.content, ttl: ev.ttl - 1})
		}
	}
	gossipTo = func(from ident.NodeID, ev event) {
		for i := 0; i < p.Fanout; i++ {
			to := ident.NodeID(rng.Intn(p.N))
			if to == from {
				continue
			}
			res.EventMessages++
			if p.LossRate > 0 && rng.Float64() < p.LossRate {
				continue
			}
			target := to
			k.After(p.HopDelay, func() { receive(target, ev) })
		}
	}

	// Workload: Poisson publishing per node, as in the main simulator.
	seqs := make([]uint32, p.N)
	meanGap := float64(time.Second) / p.PublishRate
	for i := 0; i < p.N; i++ {
		node := ident.NodeID(i)
		wlRNG := k.NewStream(0x776f726b + int64(i))
		var publish func()
		schedule := func() {
			k.After(sim.Time(wlRNG.ExpFloat64()*meanGap), publish)
		}
		publish = func() {
			seqs[node]++
			ev := event{
				id:      ident.EventID{Source: node, Seq: seqs[node]},
				content: u.RandomContent(wlRNG),
				ttl:     p.Rounds,
			}
			res.EventsPublished++
			now := k.Now()
			if now >= measureFrom && now < measureTo {
				exp := uint32(0)
				countStamp++
				for _, pat := range ev.content {
					for _, s := range subscribersOf[pat] {
						if s != node && counted[s] != countStamp {
							counted[s] = countStamp
							exp++
						}
					}
				}
				tracked[ev.id] = &track{expected: exp}
			}
			seen[node].Add(ev.id)
			gossipTo(node, ev)
			schedule()
		}
		schedule()
	}

	k.Run(p.Duration)

	var exp, del uint64
	for _, tr := range tracked {
		exp += uint64(tr.expected)
		del += uint64(tr.delivered)
	}
	if exp > 0 {
		res.DeliveryRate = float64(del) / float64(exp)
	} else {
		res.DeliveryRate = 1
	}
	if del > 0 {
		res.MessagesPerDelivery = float64(res.EventMessages) / float64(del)
	}
	return res, nil
}
