package scenario

import (
	"testing"
	"time"

	"repro/internal/adapt"
	"repro/internal/check"
	"repro/internal/core"
)

// adaptiveParams is the shared configuration of the adaptive-controller
// tests: lossy enough that the loss estimator has real signal, small
// enough to run in well under a second.
func adaptiveParams(alg core.Algorithm) Params {
	p := DefaultParams()
	p.Seed = 23
	p.N = 30
	p.Duration = 4 * time.Second
	p.MeasureFrom = 500 * time.Millisecond
	p.MeasureTo = 3500 * time.Millisecond
	p.PublishRate = 20
	p.Network.LossRate = 0.05
	p.Algorithm = alg
	p.Gossip = core.DefaultConfig(alg)
	p.Adapt = &adapt.Config{}
	return p
}

// TestAdaptiveFixedSeedMetrics pins the adaptive combined-pull and
// hybrid trajectories under a fixed seed: any unintended change to the
// estimator arithmetic, the controller's setpoint rules, or the
// engine's knob-snapshot plumbing moves these numbers.
func TestAdaptiveFixedSeedMetrics(t *testing.T) {
	for _, tc := range []struct {
		alg              core.Algorithm
		rate             float64
		del, exp, rec    uint64
		kernel           uint64
		adjust           uint64
		modeSw, walkSw   uint64
		pushRds, pullRds uint64
	}{
		{alg: core.CombinedPull,
			rate: 0.9127369956246961, del: 5000, exp: 5499, rec: 460, kernel: 27879,
			adjust: 1786, modeSw: 0, walkSw: 39, pushRds: 0, pullRds: 0},
		{alg: core.Hybrid,
			rate: 0.9229460379193, del: 5066, exp: 5499, rec: 480, kernel: 31878,
			adjust: 2225, modeSw: 50, walkSw: 46, pushRds: 648, pullRds: 3853},
	} {
		tc := tc
		t.Run(tc.alg.String(), func(t *testing.T) {
			t.Parallel()
			res, err := Run(adaptiveParams(tc.alg))
			if err != nil {
				t.Fatal(err)
			}
			a := res.Adapt
			if res.DeliveryRate != tc.rate || res.Deliveries != tc.del ||
				res.ExpectedDeliveries != tc.exp || res.Recoveries != tc.rec ||
				res.KernelEvents != tc.kernel ||
				a.Adjustments != tc.adjust || a.ModeSwitches != tc.modeSw ||
				a.WalkSwitches != tc.walkSw ||
				a.PushRounds != tc.pushRds || a.PullRounds != tc.pullRds {
				t.Errorf("adaptive %v metrics drifted from pinned values:\n got rate=%v del=%d exp=%d rec=%d kernel=%d adjust=%d mode=%d walk=%d push=%d pull=%d\nwant rate=%v del=%d exp=%d rec=%d kernel=%d adjust=%d mode=%d walk=%d push=%d pull=%d",
					tc.alg, res.DeliveryRate, res.Deliveries, res.ExpectedDeliveries, res.Recoveries,
					res.KernelEvents, a.Adjustments, a.ModeSwitches, a.WalkSwitches, a.PushRounds, a.PullRounds,
					tc.rate, tc.del, tc.exp, tc.rec, tc.kernel,
					tc.adjust, tc.modeSw, tc.walkSw, tc.pushRds, tc.pullRds)
			}
		})
	}
}

// TestAdaptiveShardedBitIdentical: the controller's signals are all
// node-local and read at node-affine round events, so the conservative
// sharded executor must reproduce the sequential adaptive run bit for
// bit — including the knob trajectories.
func TestAdaptiveShardedBitIdentical(t *testing.T) {
	for _, alg := range []core.Algorithm{core.CombinedPull, core.Hybrid} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			seq, err := Run(adaptiveParams(alg))
			if err != nil {
				t.Fatal(err)
			}
			p := adaptiveParams(alg)
			p.Shards = 4
			par, err := Run(p)
			if err != nil {
				t.Fatal(err)
			}
			if par.DeliveryRate != seq.DeliveryRate || par.KernelEvents != seq.KernelEvents ||
				par.Deliveries != seq.Deliveries || par.Recoveries != seq.Recoveries ||
				par.EventsPublished != seq.EventsPublished {
				t.Fatalf("Shards=4 adaptive run diverged:\nseq: %+v\npar: %+v", seq, par)
			}
			if par.Adapt != seq.Adapt {
				t.Fatalf("Shards=4 adaptive trajectories diverged:\nseq: %+v\npar: %+v", seq.Adapt, par.Adapt)
			}
		})
	}
}

// TestAdaptiveCalmConvergesToMinimumOverhead is the scenario-level ε=0
// metamorphic pin: on lossless links with no churn the controller
// relaxes to minimum-overhead knobs (round period at its maximum,
// fanout at its minimum) and never makes a structural switch.
func TestAdaptiveCalmConvergesToMinimumOverhead(t *testing.T) {
	p := adaptiveParams(core.CombinedPull)
	p.Network.LossRate = 0
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRate != 1 {
		t.Fatalf("lossless adaptive run dropped events: rate %v", res.DeliveryRate)
	}
	a := res.Adapt
	norm := p.Adapt.Normalized(p.Gossip.GossipInterval)
	if a.MaxInterval != norm.IntervalMax {
		t.Errorf("calm run never relaxed the interval to %v (max seen %v)", norm.IntervalMax, a.MaxInterval)
	}
	if a.MaxFanout != norm.FanoutMin {
		t.Errorf("calm run raised fanout to %d; want pinned at %d", a.MaxFanout, norm.FanoutMin)
	}
	if a.ModeSwitches != 0 || a.WalkSwitches != 0 {
		t.Errorf("structural switches on a calm run: %+v", a)
	}
	if a.MeanLoss != 0 {
		t.Errorf("nonzero loss estimate %v on lossless links", a.MeanLoss)
	}
}

// TestCheckedAdaptiveRunClean runs both adaptive modes under the full
// monitor set — including the adaptation monitor's knob-bounds and
// dwell checks — and demands a clean verdict with identical metrics to
// the unchecked run (the monitor is passive).
func TestCheckedAdaptiveRunClean(t *testing.T) {
	for _, alg := range []core.Algorithm{core.CombinedPull, core.Hybrid} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			plain, err := Run(adaptiveParams(alg))
			if err != nil {
				t.Fatal(err)
			}
			p := adaptiveParams(alg)
			p.Check = check.All()
			checked, err := Run(p)
			if err != nil {
				t.Fatalf("checked adaptive run reported a violation: %v", err)
			}
			if checked.DeliveryRate != plain.DeliveryRate || checked.KernelEvents != plain.KernelEvents ||
				checked.Adapt != plain.Adapt {
				t.Errorf("checked adaptive run diverged from unchecked run:\nunchecked: %+v %+v\nchecked:   %+v %+v",
					plain.DeliveryRate, plain.Adapt, checked.DeliveryRate, checked.Adapt)
			}
		})
	}
}
