package check

import (
	"strings"
	"testing"
	"time"

	"repro/internal/ident"
	"repro/internal/matching"
	"repro/internal/metrics"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/wire"
)

// fakeTopo is a hand-built overlay view: unlike topology.Tree it will
// happily represent corrupt shapes (cycles, asymmetric adjacency), so
// the tests can reach the violation paths a real tree never produces.
type fakeTopo struct {
	n, maxDeg int
	adj       [][]ident.NodeID
	inc       uint64
	kind      topology.Kind
}

func (f *fakeTopo) N() int                                  { return f.n }
func (f *fakeTopo) MaxDegree() int                          { return f.maxDeg }
func (f *fakeTopo) Degree(v ident.NodeID) int               { return len(f.adj[v]) }
func (f *fakeTopo) Neighbors(v ident.NodeID) []ident.NodeID { return f.adj[v] }
func (f *fakeTopo) HasLink(a, b ident.NodeID) bool          { return f.NeighborSlot(a, b) >= 0 }
func (f *fakeTopo) NeighborSlot(from, to ident.NodeID) int {
	for i, w := range f.adj[from] {
		if w == to {
			return i
		}
	}
	return -1
}
func (f *fakeTopo) LinkIncarnation(a, b ident.NodeID) uint64 { return f.inc }
func (f *fakeTopo) Kind() topology.Kind                      { return f.kind }

// line builds the path 0-1-…-(n-1).
func line(n int) *fakeTopo {
	f := &fakeTopo{n: n, maxDeg: 4, adj: make([][]ident.NodeID, n), inc: 1}
	for i := 0; i < n-1; i++ {
		f.adj[i] = append(f.adj[i], ident.NodeID(i+1))
		f.adj[i+1] = append(f.adj[i+1], ident.NodeID(i))
	}
	return f
}

// harness bundles a checker with a hand-driven clock and stop flag.
type harness struct {
	c         *Checker
	now       sim.Time
	stopped   bool
	down      map[ident.NodeID]bool
	wasDown   map[ident.NodeID]bool
	lastFault sim.Time
}

func newHarness(opts *Options, topo Topology) *harness {
	h := &harness{down: map[ident.NodeID]bool{}, wasDown: map[ident.NodeID]bool{}}
	n := 0
	if topo != nil {
		n = topo.N()
	}
	h.c = New(opts, Env{
		Seed:        7,
		Algorithm:   "test",
		N:           n,
		Now:         func() sim.Time { return h.now },
		Stop:        func() { h.stopped = true },
		Topo:        topo,
		NetConfig:   network.DefaultConfig(),
		NodeDown:    func(id ident.NodeID) bool { return h.down[id] },
		WasDownAt:   func(id ident.NodeID, _ sim.Time) bool { return h.wasDown[id] },
		LastFaultAt: func() sim.Time { return h.lastFault },
	})
	return h
}

func wantViolation(t *testing.T, c *Checker, monitor, site string) Violation {
	t.Helper()
	vs := c.Violations()
	if len(vs) == 0 {
		t.Fatalf("no violation recorded, want %s/%s", monitor, site)
	}
	v := vs[0]
	if v.Monitor != monitor || v.Site != site {
		t.Fatalf("violation %s/%s, want %s/%s (%v)", v.Monitor, v.Site, monitor, site, v)
	}
	return v
}

func wantClean(t *testing.T, c *Checker) {
	t.Helper()
	if err := c.Err(); err != nil {
		t.Fatalf("unexpected violation: %v", err)
	}
}

func testEvent(src ident.NodeID, seq uint32, pats ...ident.PatternID) *wire.Event {
	return &wire.Event{
		ID:      ident.EventID{Source: src, Seq: seq},
		Content: matching.Content(pats),
	}
}

func TestFIFOMirrorAcceptsTheModelSequence(t *testing.T) {
	h := newHarness(&Options{FIFO: true}, line(2))
	cfg := h.c.env.NetConfig
	msg := testEvent(0, 1, 3)
	tx := cfg.TxTime(msg)

	// Two back-to-back sends: the second serializes behind the first.
	h.c.OnSend(0, 1, msg, false)
	h.c.OnSend(0, 1, msg, false)
	first := tx + cfg.PropDelay
	second := 2*tx + cfg.PropDelay
	h.now = first
	h.c.OnArrive(0, 1, msg, false, 1, 0, true)
	h.now = second
	h.c.OnArrive(0, 1, msg, false, 1, 0, true)
	wantClean(t, h.c)
}

func TestFIFOSerializationViolationStopsTheRun(t *testing.T) {
	h := newHarness(&Options{FIFO: true}, line(2))
	msg := testEvent(0, 1, 3)
	h.c.OnSend(0, 1, msg, false)
	h.now = 1 // far before tx+prop
	h.c.OnArrive(0, 1, msg, false, 1, 0, true)
	v := wantViolation(t, h.c, "fifo", "serialization")
	if !h.stopped {
		t.Error("fail-fast did not stop the run")
	}
	if v.Seed != 7 || v.Algorithm != "test" || v.Event != msg.ID {
		t.Errorf("violation lacks reproducer fields: %+v", v)
	}
	if !strings.Contains(v.Repro(), "seed=7") || !strings.Contains(v.String(), "fifo/serialization") {
		t.Errorf("repro/string malformed: %q / %q", v.Repro(), v.String())
	}
	// After the stop the hooks go quiet: no violation pile-up.
	h.c.OnArrive(0, 1, msg, false, 1, 0, true)
	if len(h.c.Violations()) != 1 {
		t.Errorf("hooks kept reporting after stop: %d violations", len(h.c.Violations()))
	}
}

func TestFIFOUnmatchedArrival(t *testing.T) {
	h := newHarness(&Options{FIFO: true}, line(2))
	h.c.OnArrive(0, 1, testEvent(0, 1, 3), false, 1, 0, true)
	wantViolation(t, h.c, "fifo", "unmatched-arrival")
}

func TestFIFOSkipsSendsTheNetworkDrops(t *testing.T) {
	h := newHarness(&Options{FIFO: true}, line(3))
	msg := testEvent(0, 1, 3)
	h.c.OnSend(0, 2, msg, false) // not a neighbor
	h.down[0] = true
	h.c.OnSend(0, 1, msg, false) // sender down
	h.down[0] = false
	h.down[1] = true
	h.c.OnSend(0, 1, msg, false) // receiver down
	if len(h.c.fifo.queues) != 0 {
		t.Errorf("dropped sends were mirrored: %d queues", len(h.c.fifo.queues))
	}
	wantClean(t, h.c)
}

func TestFIFOOOBDelayBounds(t *testing.T) {
	msg := testEvent(0, 1, 3)
	for _, tc := range []struct {
		name  string
		delay func(lo, hi sim.Time) sim.Time
		bad   bool
	}{
		{"at-lower-bound", func(lo, hi sim.Time) sim.Time { return lo }, false},
		{"at-upper-bound", func(lo, hi sim.Time) sim.Time { return hi }, false},
		{"too-fast", func(lo, hi sim.Time) sim.Time { return lo - 1 }, true},
		{"too-slow", func(lo, hi sim.Time) sim.Time { return hi + 1 }, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h := newHarness(&Options{FIFO: true}, line(4))
			cfg := h.c.env.NetConfig
			tx := cfg.TxTime(msg)
			lo := cfg.OOBBaseDelay + tx
			hi := cfg.OOBBaseDelay + 3*cfg.PropDelay + tx
			h.now = 5 * time.Millisecond
			sentAt := h.now - tc.delay(lo, hi)
			h.c.OnArrive(0, 3, msg, true, 0, sentAt, true)
			if tc.bad {
				wantViolation(t, h.c, "fifo", "oob-delay")
			} else {
				wantClean(t, h.c)
			}
		})
	}
}

func deliveryHarness(t *testing.T) *harness {
	t.Helper()
	h := newHarness(All(), line(3))
	h.c.SetSubscriptions([][]ident.PatternID{{1}, {2}, {2, 3}})
	return h
}

func TestDeliveryCleanFlow(t *testing.T) {
	h := deliveryHarness(t)
	ev := testEvent(0, 1, 2)
	h.c.OnPublish(0, ev, 2)
	h.now = time.Millisecond
	h.c.OnDeliver(1, ev, false)
	h.c.OnDeliver(2, ev, false)
	wantClean(t, h.c)
	if h.c.countedDelivered != 2 || h.c.expectedTotal != 2 {
		t.Errorf("counted %d/%d deliveries, want 2/2", h.c.countedDelivered, h.c.expectedTotal)
	}
}

func TestDeliveryDuplicate(t *testing.T) {
	h := deliveryHarness(t)
	ev := testEvent(0, 1, 2)
	h.c.OnPublish(0, ev, 2)
	h.c.OnDeliver(1, ev, false)
	h.c.OnDeliver(1, ev, false)
	wantViolation(t, h.c, "delivery", "duplicate")
}

func TestDeliveryNonMatching(t *testing.T) {
	h := deliveryHarness(t)
	ev := testEvent(0, 1, 9)
	h.c.OnPublish(0, ev, 0)
	h.c.OnDeliver(1, ev, false)
	wantViolation(t, h.c, "delivery", "non-matching")
}

func TestDeliveryToDownSubscriber(t *testing.T) {
	h := deliveryHarness(t)
	ev := testEvent(0, 1, 2)
	h.c.OnPublish(0, ev, 2)
	h.down[1] = true
	h.c.OnDeliver(1, ev, false)
	wantViolation(t, h.c, "delivery", "down-subscriber")
}

func TestDeliveryOfUnknownEvent(t *testing.T) {
	h := deliveryHarness(t)
	h.c.OnDeliver(1, testEvent(0, 99, 2), false)
	wantViolation(t, h.c, "delivery", "unknown-event")
}

func TestSelfDeliveryIsOutsideAccounting(t *testing.T) {
	h := deliveryHarness(t)
	ev := testEvent(1, 1, 2)
	// The publisher's own delivery happens before OnPublish registers
	// the event (pubsub self-delivers synchronously inside Publish).
	h.c.OnDeliver(1, ev, false)
	h.c.OnPublish(1, ev, 1)
	wantClean(t, h.c)
	if h.c.countedDelivered != 0 {
		t.Errorf("self-delivery was counted")
	}
}

func TestConservationAudienceOverflow(t *testing.T) {
	h := deliveryHarness(t)
	ev := testEvent(0, 1, 2)
	h.c.OnPublish(0, ev, 1)
	h.c.OnDeliver(1, ev, false)
	h.c.OnDeliver(2, ev, false)
	wantViolation(t, h.c, "conservation", "audience-overflow")
}

func TestDowntimeFilteredDeliveryIsNotCounted(t *testing.T) {
	h := deliveryHarness(t)
	ev := testEvent(0, 1, 2)
	h.c.OnPublish(0, ev, 0) // audience empty: node 1 was down at publish
	h.c.OnLoss(0, 1, ev, false)
	h.wasDown[1] = true
	h.c.OnDeliver(1, ev, true)
	if err := h.c.Err(); err != nil {
		t.Fatalf("filtered delivery tripped conservation: %v", err)
	}
	if h.c.countedDelivered != 0 {
		t.Errorf("filtered delivery was counted")
	}
}

func TestTrackerReconciliation(t *testing.T) {
	h := deliveryHarness(t)
	tracker := metrics.NewDeliveryTracker(func() sim.Time { return h.now })
	ev := testEvent(0, 1, 2)
	h.c.OnPublish(0, ev, 2)
	tracker.OnPublish(ev.ID, 2, h.now)
	h.c.OnDeliver(1, ev, false)
	tracker.OnDeliver(1, ev, false)
	if err := h.c.Finish(tracker); err != nil {
		t.Fatalf("matching totals failed reconciliation: %v", err)
	}

	// Now a delivery the tracker never saw: totals must disagree.
	h2 := deliveryHarness(t)
	tracker2 := metrics.NewDeliveryTracker(func() sim.Time { return h2.now })
	h2.c.OnPublish(0, ev, 2)
	tracker2.OnPublish(ev.ID, 2, h2.now)
	h2.c.OnDeliver(1, ev, false)
	h2.c.Finish(tracker2)
	wantViolation(t, h2.c, "conservation", "tracker-reconciliation")
}

func TestRecoveryCausality(t *testing.T) {
	// No loss, no disruption: a recovery is uncaused.
	h := deliveryHarness(t)
	ev := testEvent(0, 1, 2)
	h.now = 2 * time.Second
	h.c.OnPublish(0, ev, 2)
	h.now = 3 * time.Second
	h.c.OnDeliver(1, ev, true)
	wantViolation(t, h.c, "recovery", "uncaused-recovery")

	// A recorded channel loss of the event justifies it.
	h = deliveryHarness(t)
	h.now = 2 * time.Second
	h.c.OnPublish(0, ev, 2)
	h.c.OnLoss(0, 1, ev, false)
	h.now = 3 * time.Second
	h.c.OnDeliver(1, ev, true)
	wantClean(t, h.c)

	// A lost retransmission covers the events it carried.
	h = deliveryHarness(t)
	h.now = 2 * time.Second
	h.c.OnPublish(0, ev, 2)
	h.c.OnLoss(2, 1, &wire.Retransmit{Responder: 2, Events: []*wire.Event{ev}}, true)
	h.now = 3 * time.Second
	h.c.OnDeliver(1, ev, true)
	wantClean(t, h.c)

	// An overlay disruption near the publish time justifies it too —
	// but not one that predates the publish by more than the slack.
	h = deliveryHarness(t)
	h.now = 2 * time.Second
	h.c.OnTopologyMutation()
	h.now = 2100 * time.Millisecond
	h.c.OnPublish(0, ev, 2)
	h.now = 3 * time.Second
	h.c.OnDeliver(1, ev, true)
	wantClean(t, h.c)

	h = deliveryHarness(t)
	h.now = 100 * time.Millisecond
	h.c.OnTopologyMutation()
	h.now = 2 * time.Second
	h.c.OnPublish(0, ev, 2)
	h.now = 3 * time.Second
	h.c.OnDeliver(1, ev, true)
	wantViolation(t, h.c, "recovery", "uncaused-recovery")
}

func TestBufferAuditReporting(t *testing.T) {
	h := newHarness(All(), line(2))
	h.c.AddAudit("engine 0", func() error { return nil })
	if err := h.c.Finish(nil); err != nil {
		t.Fatalf("clean audit reported: %v", err)
	}
	h = newHarness(All(), line(2))
	h.c.AddAudit("engine 1", func() error { return errTest })
	h.c.Finish(nil)
	v := wantViolation(t, h.c, "recovery", "buffer-audit")
	if !strings.Contains(v.Detail, "engine 1") {
		t.Errorf("audit violation does not name its source: %q", v.Detail)
	}
}

var errTest = &Error{Violations: []Violation{{Monitor: "x", Site: "y"}}}

func TestTopologyMutationChecks(t *testing.T) {
	mk := func() *fakeTopo { return line(4) }
	for _, tc := range []struct {
		name    string
		corrupt func(f *fakeTopo)
		site    string
	}{
		{"clean", func(f *fakeTopo) {}, ""},
		{"degree-bound", func(f *fakeTopo) {
			f.maxDeg = 1
		}, "degree-bound"},
		{"self-loop", func(f *fakeTopo) {
			f.adj[2] = append(f.adj[2], 2)
		}, "self-loop"},
		{"duplicate-edge", func(f *fakeTopo) {
			f.adj[0] = append(f.adj[0], 1)
		}, "duplicate-edge"},
		{"asymmetric-edge", func(f *fakeTopo) {
			f.adj[0] = append(f.adj[0], 3)
		}, "asymmetric-edge"},
		{"cycle", func(f *fakeTopo) {
			f.adj[0] = append(f.adj[0], 3)
			f.adj[3] = append(f.adj[3], 0)
		}, "cycle"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := mk()
			tc.corrupt(f)
			h := newHarness(&Options{Topology: true}, f)
			h.c.OnTopologyMutation()
			if tc.site == "" {
				wantClean(t, h.c)
			} else {
				wantViolation(t, h.c, "topology", tc.site)
			}
		})
	}
}

func TestFinishTopology(t *testing.T) {
	// A crashed node still holding links is a violation.
	f := line(3)
	h := newHarness(&Options{Topology: true}, f)
	h.down[1] = true
	h.c.Finish(nil)
	wantViolation(t, h.c, "topology", "down-not-isolated")

	// Live nodes split in two components, with no recent mutation.
	f = line(4)
	f.adj[1] = f.adj[1][:1] // cut 1-2 symmetrically
	f.adj[2] = f.adj[2][1:]
	h = newHarness(&Options{Topology: true}, f)
	h.now = 10 * time.Second
	h.c.Finish(nil)
	wantViolation(t, h.c, "topology", "final-disconnected")

	// The same split within FinalGrace of a mutation is tolerated: the
	// run ended mid-repair.
	h = newHarness(&Options{Topology: true}, f)
	h.now = 10 * time.Second
	h.c.OnTopologyMutation() // fires the shape checks too: forest is fine
	h.now += 100 * time.Millisecond
	if err := h.c.Finish(nil); err != nil {
		t.Fatalf("mid-repair split reported: %v", err)
	}

	// All nodes down: nothing to check.
	h = newHarness(&Options{Topology: true}, line(2))
	h.down[0], h.down[1] = true, true
	f2 := line(2)
	f2.adj[0], f2.adj[1] = nil, nil
	h.c.env.Topo = f2
	if err := h.c.Finish(nil); err != nil {
		t.Fatalf("empty live set reported: %v", err)
	}
}

func TestKeepGoingCollectsAndTruncates(t *testing.T) {
	h := newHarness(&Options{FIFO: true, KeepGoing: true, MaxViolations: 2}, line(2))
	msg := testEvent(0, 1, 3)
	for i := 0; i < 5; i++ {
		h.c.OnArrive(0, 1, msg, false, 1, 0, true) // unmatched every time
	}
	if h.stopped {
		t.Error("KeepGoing stopped the run")
	}
	if len(h.c.Violations()) != 2 || h.c.truncated != 3 {
		t.Errorf("recorded %d violations (%d truncated), want 2 (3)", len(h.c.Violations()), h.c.truncated)
	}
	err := h.c.Err()
	if err == nil || !strings.Contains(err.Error(), "2 invariant violations") {
		t.Errorf("Err() = %v", err)
	}
}

func TestErrorStrings(t *testing.T) {
	e := &Error{}
	if !strings.Contains(e.Error(), "no violations") {
		t.Errorf("empty error: %q", e.Error())
	}
	one := &Error{Violations: []Violation{{Monitor: "fifo", Site: "serialization", Node: 1, Peer: ident.None}}}
	if !strings.Contains(one.Error(), "invariant violation") {
		t.Errorf("single error: %q", one.Error())
	}
	v := Violation{Monitor: "delivery", Site: "duplicate", Node: 3, Peer: 4, Event: ident.EventID{Source: 1, Seq: 2}}
	if s := v.String(); !strings.Contains(s, "peer=node(4)") || !strings.Contains(s, "event(1:2)") {
		t.Errorf("violation string: %q", s)
	}
}
