package pubsub

import (
	"slices"

	"repro/internal/ident"
)

// SubscriberIndex is the scenario's global pattern → subscribers table:
// a dense slice-of-slices keyed by pattern id, each subscriber list
// kept in ascending node order. It replaces the previous ad-hoc
// map[PatternID][]NodeID with two properties the heavy-traffic path
// needs: pattern lookup is an index operation (no hashing per content
// pattern on every publish), and the lists are mutable in place so
// subscription churn updates expected-audience computation in O(log n)
// per change instead of a rebuild.
//
// Built by sweeping nodes in ascending id order, the per-pattern lists
// are element-for-element identical to the old map's, so fixed-seed
// expected-receiver counts — and with them every golden metric — are
// unchanged.
type SubscriberIndex struct {
	byPattern [][]ident.NodeID
}

// NewSubscriberIndex builds the index for a numPatterns universe from
// the per-node subscription lists (subs[i] = patterns of node i).
func NewSubscriberIndex(numPatterns int, subs [][]ident.PatternID) *SubscriberIndex {
	ix := &SubscriberIndex{byPattern: make([][]ident.NodeID, numPatterns)}
	for i, ps := range subs {
		for _, p := range ps {
			ix.byPattern[p] = append(ix.byPattern[p], ident.NodeID(i))
		}
	}
	return ix
}

// Subscribers returns the nodes subscribed to p in ascending id order.
// The slice is owned by the index and must not be mutated or retained
// across Add/Remove calls.
func (ix *SubscriberIndex) Subscribers(p ident.PatternID) []ident.NodeID {
	if int(p) >= len(ix.byPattern) {
		return nil
	}
	return ix.byPattern[p]
}

// Add records that node subscribed to p, keeping the list sorted.
// Adding an existing subscription is a no-op.
func (ix *SubscriberIndex) Add(p ident.PatternID, node ident.NodeID) {
	if int(p) >= len(ix.byPattern) {
		panic("pubsub: pattern outside the index universe")
	}
	l := ix.byPattern[p]
	i, found := slices.BinarySearch(l, node)
	if found {
		return
	}
	ix.byPattern[p] = slices.Insert(l, i, node)
}

// Remove erases node's subscription to p. Removing a subscription that
// does not exist is a no-op.
func (ix *SubscriberIndex) Remove(p ident.PatternID, node ident.NodeID) {
	if int(p) >= len(ix.byPattern) {
		return
	}
	l := ix.byPattern[p]
	if i, found := slices.BinarySearch(l, node); found {
		ix.byPattern[p] = slices.Delete(l, i, i+1)
	}
}

// NumSubscribers returns the subscriber count of p.
func (ix *SubscriberIndex) NumSubscribers(p ident.PatternID) int {
	if int(p) >= len(ix.byPattern) {
		return 0
	}
	return len(ix.byPattern[p])
}
