package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ident"
	"repro/internal/wire"
)

func ev(src, seq int) *wire.Event {
	return &wire.Event{ID: ident.EventID{Source: ident.NodeID(src), Seq: uint32(seq)}}
}

func id(src, seq int) ident.EventID {
	return ident.EventID{Source: ident.NodeID(src), Seq: uint32(seq)}
}

func TestFIFOEvictsOldest(t *testing.T) {
	c := New(3, FIFOPolicy, nil)
	for i := 1; i <= 3; i++ {
		c.Put(ev(0, i))
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	c.Put(ev(0, 4))
	if c.Has(id(0, 1)) {
		t.Fatal("oldest event still buffered after overflow")
	}
	for i := 2; i <= 4; i++ {
		if !c.Has(id(0, i)) {
			t.Fatalf("event %d missing", i)
		}
	}
	if c.Evicted() != 1 {
		t.Fatalf("Evicted = %d, want 1", c.Evicted())
	}
}

func TestFIFOGetDoesNotRefresh(t *testing.T) {
	c := New(2, FIFOPolicy, nil)
	c.Put(ev(0, 1))
	c.Put(ev(0, 2))
	if got := c.Get(id(0, 1)); got == nil {
		t.Fatal("Get(1) = nil")
	}
	c.Put(ev(0, 3))
	if c.Has(id(0, 1)) {
		t.Fatal("FIFO eviction was affected by Get")
	}
}

func TestLRUGetRefreshes(t *testing.T) {
	c := New(2, LRUPolicy, nil)
	c.Put(ev(0, 1))
	c.Put(ev(0, 2))
	if c.Get(id(0, 1)) == nil {
		t.Fatal("Get(1) = nil")
	}
	c.Put(ev(0, 3)) // should evict 2, not 1
	if !c.Has(id(0, 1)) {
		t.Fatal("recently read event evicted under LRU")
	}
	if c.Has(id(0, 2)) {
		t.Fatal("least recently used event survived")
	}
}

func TestLRUPutRefreshes(t *testing.T) {
	c := New(2, LRUPolicy, nil)
	c.Put(ev(0, 1))
	c.Put(ev(0, 2))
	c.Put(ev(0, 1)) // refresh, no new insertion
	if c.Inserted() != 2 {
		t.Fatalf("Inserted = %d, want 2", c.Inserted())
	}
	c.Put(ev(0, 3))
	if !c.Has(id(0, 1)) || c.Has(id(0, 2)) {
		t.Fatal("LRU refresh on Put not honored")
	}
}

func TestRandomPolicyStaysAtCapacity(t *testing.T) {
	c := New(10, RandomPolicy, rand.New(rand.NewSource(5)))
	for i := 0; i < 1000; i++ {
		c.Put(ev(0, i))
		if c.Len() > 10 {
			t.Fatalf("Len = %d exceeds capacity", c.Len())
		}
	}
	if c.Len() != 10 {
		t.Fatalf("Len = %d, want 10", c.Len())
	}
	if c.Evicted() != 990 {
		t.Fatalf("Evicted = %d, want 990", c.Evicted())
	}
}

func TestRandomPolicyDeterministicUnderSeed(t *testing.T) {
	run := func() []ident.EventID {
		c := New(5, RandomPolicy, rand.New(rand.NewSource(9)))
		for i := 0; i < 100; i++ {
			c.Put(ev(0, i))
		}
		var out []ident.EventID
		for i := 0; i < 100; i++ {
			if c.Has(id(0, i)) {
				out = append(out, id(0, i))
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestDuplicatePutIsNoOp(t *testing.T) {
	c := New(2, FIFOPolicy, nil)
	c.Put(ev(0, 1))
	c.Put(ev(0, 1))
	if c.Len() != 1 || c.Inserted() != 1 {
		t.Fatalf("Len=%d Inserted=%d after duplicate Put, want 1, 1", c.Len(), c.Inserted())
	}
}

func TestGetMissing(t *testing.T) {
	c := New(2, FIFOPolicy, nil)
	if c.Get(id(1, 1)) != nil {
		t.Fatal("Get on empty cache returned an event")
	}
}

func TestNewValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, FIFOPolicy, nil) },
		func() { New(5, RandomPolicy, nil) },
		func() { New(5, Policy(99), nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid New did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestPolicyString(t *testing.T) {
	if FIFOPolicy.String() != "fifo" || RandomPolicy.String() != "random" || LRUPolicy.String() != "lru" {
		t.Fatal("Policy.String names wrong")
	}
	if Policy(42).String() != "policy(42)" {
		t.Fatalf("unknown policy String = %q", Policy(42).String())
	}
}

// TestCacheInvariantsProperty drives random Put/Get sequences through
// all three policies and checks the structural invariants: size never
// exceeds capacity, inserted = len + evicted, and Has agrees with Get.
func TestCacheInvariantsProperty(t *testing.T) {
	f := func(seed int64, ops []uint16) bool {
		for _, policy := range []Policy{FIFOPolicy, RandomPolicy, LRUPolicy} {
			rng := rand.New(rand.NewSource(seed))
			c := New(8, policy, rng)
			for _, op := range ops {
				key := int(op % 64)
				if op%3 == 0 {
					got := c.Get(id(0, key))
					if (got != nil) != c.Has(id(0, key)) {
						return false
					}
				} else {
					c.Put(ev(0, key))
				}
				if c.Len() > c.Capacity() {
					return false
				}
				if c.Inserted() != uint64(c.Len())+c.Evicted() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestLongRunMemoryCompaction exercises the order-queue compaction path
// (head > 4096).
func TestLongRunMemoryCompaction(t *testing.T) {
	c := New(16, LRUPolicy, nil)
	for i := 0; i < 50000; i++ {
		c.Put(ev(0, i))
		c.Get(id(0, i-5))
	}
	if c.Len() != 16 {
		t.Fatalf("Len = %d, want 16", c.Len())
	}
	if len(c.order)-c.head > 16*4 {
		t.Fatalf("order queue not compacted: %d live entries", len(c.order)-c.head)
	}
}

func TestOnEvictCallback(t *testing.T) {
	c := New(2, FIFOPolicy, nil)
	var gone []ident.EventID
	c.SetOnEvict(func(e *wire.Event) { gone = append(gone, e.ID) })
	c.Put(ev(0, 1))
	c.Put(ev(0, 2))
	c.Put(ev(0, 3))
	c.Put(ev(0, 4))
	if len(gone) != 2 || gone[0] != id(0, 1) || gone[1] != id(0, 2) {
		t.Fatalf("evictions = %v, want [0:1 0:2]", gone)
	}
}

func BenchmarkCachePutFIFO(b *testing.B) {
	c := New(1500, FIFOPolicy, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Put(ev(i%100, i))
	}
}

func BenchmarkCachePutLRU(b *testing.B) {
	c := New(1500, LRUPolicy, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Put(ev(i%100, i))
	}
}

func BenchmarkCacheGet(b *testing.B) {
	c := New(1500, FIFOPolicy, nil)
	for i := 0; i < 1500; i++ {
		c.Put(ev(0, i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Get(id(0, i%1500))
	}
}

// TestLRUOrderBoundedWithoutEviction is the regression test for the
// cache-growth bug: under LRUPolicy every Get appends a fresh entry to
// the order queue, but compaction used to run only inside evictOne — a
// cache that never fills (large β, light load) grew the queue without
// bound for the whole run.
func TestLRUOrderBoundedWithoutEviction(t *testing.T) {
	const n = 8
	c := New(1024, LRUPolicy, nil) // never fills: no eviction ever runs
	for i := 0; i < n; i++ {
		c.Put(ev(1, i))
	}
	for round := 0; round < 100_000; round++ {
		if c.Get(id(1, round%n)) == nil {
			t.Fatalf("event %d missing", round%n)
		}
		if got, bound := len(c.order), 2*n+64+1; got > bound {
			t.Fatalf("order queue grew to %d entries after %d touches (bound %d)", got, round+1, bound)
		}
	}
	if c.Evicted() != 0 {
		t.Fatalf("evictions = %d, want 0", c.Evicted())
	}
	// Eviction order must still be pure LRU after all that compaction.
	// Fill to capacity exactly, refresh one original, then overflow by
	// one: the eviction must take the least-recently-used original.
	for i := 0; i < 1024-n; i++ {
		c.Put(ev(2, i))
	}
	c.Get(id(1, 3)) // refresh one original event
	c.Put(ev(3, 0)) // overflow: evicts the oldest original, (1, 0)
	if c.Has(id(1, 0)) {
		t.Fatal("LRU kept the least-recently-used event past capacity")
	}
	if !c.Has(id(1, 3)) || !c.Has(id(1, 1)) {
		t.Fatal("LRU evicted the wrong victim after compaction")
	}
}

// TestLRURePutBoundedWithoutEviction covers the Put-side of the same
// bug: re-Put of buffered events also appends to the order queue.
func TestLRURePutBoundedWithoutEviction(t *testing.T) {
	const n = 8
	c := New(1024, LRUPolicy, nil)
	for round := 0; round < 100_000; round++ {
		c.Put(ev(1, round%n))
		if got, bound := len(c.order), 2*n+64+1; got > bound {
			t.Fatalf("order queue grew to %d entries after %d re-puts (bound %d)", got, round+1, bound)
		}
	}
	if c.Len() != n {
		t.Fatalf("Len = %d, want %d", c.Len(), n)
	}
}
