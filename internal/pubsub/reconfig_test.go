package pubsub

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/ident"
	"repro/internal/matching"
	"repro/internal/topology"
)

// TestInterleavedRepairConverges exercises the realistic reconfiguration
// timeline: the flush wave from the broken link and the
// re-advertisement wave from the replacement link propagate
// concurrently (no settling in between, messages cross mid-flight).
// After the dust settles the routing state must still equal a fresh
// installation on the final topology.
func TestInterleavedRepairConverges(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(25)
		topo, err := topology.New(n, 4, rng)
		if err != nil {
			return false
		}
		u := matching.Universe{NumPatterns: 8, MaxMatch: 3}
		subs := make([][]ident.PatternID, n)
		for i := range subs {
			if rng.Intn(2) == 0 {
				subs[i] = u.RandomSubscriptions(1+rng.Intn(2), rng)
			}
		}
		r := newRig(t, topo, Config{})
		InstallStableSubscriptions(topo, r.nodes, subs)

		for step := 0; step < int(steps%4)+1; step++ {
			broken := topo.RandomLink(rng)
			if err := topo.RemoveLink(broken.A, broken.B); err != nil {
				return false
			}
			r.nodes[broken.A].OnLinkDown(broken.B)
			r.nodes[broken.B].OnLinkDown(broken.A)
			// No settling: repair immediately, with the flush wave
			// still in flight.
			repl, err := topo.ReplacementLink(broken, rng)
			if err != nil {
				return false
			}
			if err := topo.AddLink(repl.A, repl.B); err != nil {
				return false
			}
			r.nodes[repl.A].OnLinkUp(repl.B)
			r.nodes[repl.B].OnLinkUp(repl.A)
		}
		r.run() // settle everything at the end

		ref := newRig(t, topo, Config{})
		InstallStableSubscriptions(topo, ref.nodes, subs)
		return reflect.DeepEqual(tables(ref.nodes), tables(r.nodes))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestNonLeafDetachAndRejoin approximates the paper's extreme case
// (Sec. IV-B): a non-leaf dispatcher is detached from the network and
// multiple links break at once. The node is then reattached; routing
// must converge and deliver again.
func TestNonLeafDetachAndRejoin(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	topo, err := topology.New(25, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Find a non-leaf node.
	victim := ident.None
	for i := 0; i < 25; i++ {
		if topo.Degree(ident.NodeID(i)) >= 3 {
			victim = ident.NodeID(i)
			break
		}
	}
	if victim == ident.None {
		t.Fatal("no non-leaf node in test topology")
	}

	subs := make([][]ident.PatternID, 25)
	for i := range subs {
		subs[i] = []ident.PatternID{ident.PatternID(i % 5)}
	}
	r := newRig(t, topo, Config{})
	InstallStableSubscriptions(topo, r.nodes, subs)

	// Detach: break every link of the victim at once.
	neighbors := append([]ident.NodeID(nil), topo.Neighbors(victim)...)
	var brokens []topology.Link
	for _, nb := range neighbors {
		if err := topo.RemoveLink(victim, nb); err != nil {
			t.Fatal(err)
		}
		r.nodes[victim].OnLinkDown(nb)
		r.nodes[nb].OnLinkDown(victim)
		brokens = append(brokens, topology.Link{A: victim, B: nb}.Canon())
	}
	r.run()

	// Repair each break in order (the victim's side is the singleton
	// component for the first repair; later repairs merge the rest).
	for _, broken := range brokens {
		repl, err := topo.ReplacementLink(broken, rng)
		if err != nil {
			t.Fatalf("ReplacementLink(%v): %v", broken, err)
		}
		if err := topo.AddLink(repl.A, repl.B); err != nil {
			t.Fatalf("AddLink(%v): %v", repl, err)
		}
		r.nodes[repl.A].OnLinkUp(repl.B)
		r.nodes[repl.B].OnLinkUp(repl.A)
	}
	r.run()

	if !topo.IsTree() {
		t.Fatal("topology is not a tree after rejoin")
	}
	ref := newRig(t, topo, Config{})
	InstallStableSubscriptions(topo, ref.nodes, subs)
	if !reflect.DeepEqual(tables(ref.nodes), tables(r.nodes)) {
		t.Fatal("routing state did not converge after non-leaf detach")
	}

	// Every subscriber of pattern 0 receives a fresh publication.
	ev := r.nodes[0].Publish(matching.Content{0}, 0)
	r.run()
	want := 0
	for i, ps := range subs {
		if ps[0] == 0 && i != 0 {
			want++
		}
	}
	got := 0
	for node, evs := range r.deliveries {
		for _, e := range evs {
			if e.ID == ev.ID && node != 0 {
				got++
			}
		}
	}
	if got != want {
		t.Fatalf("event reached %d subscribers after rejoin, want %d", got, want)
	}
}
