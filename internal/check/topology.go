package check

import (
	"repro/internal/ident"
	"repro/internal/topology"
)

// OnTopologyMutation runs after every structural mutation of the
// overlay (install it via topology.Tree.SetMutationHook). It verifies
// the shape invariants that must hold at every instant — symmetric
// duplicate-free adjacency, the degree bound, acyclicity — and records
// the mutation time for the recovery monitor's disruption window and
// the final connectivity check. Transient disconnection is legal here:
// crash repair runs as a remove-then-reconnect sequence, and the
// overlay is a forest between the two steps.
func (c *Checker) OnTopologyMutation() {
	if c.stopped {
		return
	}
	c.anyMutation = true
	c.lastMutation = c.env.Now()
	if !c.opts.Topology {
		return
	}
	t := c.env.Topo
	n := t.N()
	edges := 0
	for v := ident.NodeID(0); int(v) < n; v++ {
		nbs := t.Neighbors(v)
		if len(nbs) > t.MaxDegree() {
			c.report("topology", "degree-bound", v, ident.None, ident.EventID{},
				"degree %d exceeds bound %d", len(nbs), t.MaxDegree())
			return
		}
		for i, w := range nbs {
			if w == v {
				c.report("topology", "self-loop", v, w, ident.EventID{}, "node adjacent to itself")
				return
			}
			for _, x := range nbs[:i] {
				if x == w {
					c.report("topology", "duplicate-edge", v, w, ident.EventID{},
						"neighbor listed twice in the adjacency")
					return
				}
			}
			if !t.HasLink(w, v) {
				c.report("topology", "asymmetric-edge", v, w, ident.EventID{},
					"%v lists %v as neighbor but not vice versa", v, w)
				return
			}
		}
		edges += len(nbs)
	}
	edges /= 2
	// The forest invariant is per-overlay legality: only KindTree
	// overlays must stay acyclic at every instant. Cyclic kinds
	// (scale-free, small-world) carry redundancy by design and are
	// judged on degree/symmetry here and connectivity at the end.
	if t.Kind() != topology.KindTree {
		return
	}
	if comps := c.componentCount(nil); edges != n-comps {
		c.report("topology", "cycle", ident.None, ident.None, ident.EventID{},
			"%d links across %d nodes in %d components: not a forest", edges, n, comps)
	}
}

// finishTopology runs the end-of-run shape checks: crashed nodes must
// be fully detached, and — unless the run ended mid-repair (within
// FinalGrace of the last mutation) — the live nodes must form one
// connected tree.
func (c *Checker) finishTopology() {
	t := c.env.Topo
	n := t.N()
	live := 0
	for v := ident.NodeID(0); int(v) < n; v++ {
		if c.nodeDown(v) {
			if d := t.Degree(v); d != 0 {
				c.report("topology", "down-not-isolated", v, ident.None, ident.EventID{},
					"crashed dispatcher still has %d links", d)
			}
			continue
		}
		live++
	}
	if live == 0 {
		return
	}
	if c.anyMutation && c.env.Now()-c.lastMutation < c.opts.FinalGrace {
		return // repair may still be in flight; not a violation
	}
	if comps := c.componentCount(c.nodeDown); comps > 1 {
		c.report("topology", "final-disconnected", ident.None, ident.None, ident.EventID{},
			"%d live dispatchers split across %d components %v after the last repair",
			live, comps, c.env.Now()-c.lastMutation)
	}
}

// componentCount counts connected components among the nodes not
// excluded by skip (nil means count every node).
func (c *Checker) componentCount(skip func(ident.NodeID) bool) int {
	t := c.env.Topo
	n := t.N()
	seen := make([]bool, n)
	queue := make([]ident.NodeID, 0, n)
	comps := 0
	for v := ident.NodeID(0); int(v) < n; v++ {
		if seen[v] || (skip != nil && skip(v)) {
			continue
		}
		comps++
		seen[v] = true
		queue = append(queue[:0], v)
		for len(queue) > 0 {
			x := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range t.Neighbors(x) {
				if !seen[w] && (skip == nil || !skip(w)) {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	return comps
}
