package pubsub

import (
	"math/rand"
	"testing"

	"repro/internal/ident"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/topology"
)

// installOracle is the original O(N²·πmax) installer — BFS from every
// subscriber, then a table entry on every other node — kept verbatim
// as the differential oracle for the O(N·Π) down/up sweep, which must
// reproduce its direction rows entry-for-entry in order.
func installOracle(topo *topology.Tree, nodes []*Node, subs [][]ident.PatternID) {
	for i, n := range nodes {
		n.SetLocalInstant(subs[i])
	}
	parent := make([]ident.NodeID, topo.N())
	queue := make([]ident.NodeID, 0, topo.N())
	for s := range nodes {
		if len(subs[s]) == 0 {
			continue
		}
		for i := range parent {
			parent[i] = ident.None
		}
		start := ident.NodeID(s)
		parent[start] = start
		queue = append(queue[:0], start)
		for i := 0; i < len(queue); i++ {
			x := queue[i]
			for _, y := range topo.Neighbors(x) {
				if parent[y] == ident.None {
					parent[y] = x
					queue = append(queue, y)
				}
			}
		}
		for x := range nodes {
			if x == s || parent[x] == ident.None {
				continue
			}
			for _, p := range subs[s] {
				nodes[x].SetTableInstant(p, parent[x])
			}
		}
	}
}

func buildPlainNodes(topo *topology.Tree) []*Node {
	k := sim.New(1)
	ncfg := network.DefaultConfig()
	ncfg.LossRate = 0
	net := network.New(k, topo, ncfg, nil)
	nodes := make([]*Node, topo.N())
	for i := range nodes {
		id := ident.NodeID(i)
		nodes[i] = NewNode(id, k, net, topo.Neighbors(id), Config{})
	}
	return nodes
}

// TestInstallMatchesQuadraticOracle pins the sweep installer against
// the per-subscriber BFS reference: identical direction rows in
// identical insertion order for every (node, pattern), across tree
// shapes, universe sizes (straddling the spill-tier boundary), and
// subscription densities.
func TestInstallMatchesQuadraticOracle(t *testing.T) {
	for _, tc := range []struct {
		n, deg, numPat, perNode int
		seed                    int64
	}{
		{2, 2, 4, 1, 1},
		{9, 2, 8, 2, 2}, // line-ish: deep rows
		{25, 3, 70, 2, 3},
		{40, 4, 200, 3, 4}, // spill-tier universe
		{60, 6, 500, 5, 5}, // dense: rows overflow dirStride
		{33, 4, 129, 2, 6}, // boundary pattern ids 127/128/129 in play
		{17, 16, 12, 3, 7}, // star-ish hub rows
	} {
		rng := rand.New(rand.NewSource(tc.seed))
		topo, err := topology.New(tc.n, tc.deg, rng)
		if err != nil {
			t.Fatal(err)
		}
		subs := make([][]ident.PatternID, tc.n)
		for i := range subs {
			seen := map[int]bool{}
			for len(subs[i]) < tc.perNode {
				p := rng.Intn(tc.numPat)
				if !seen[p] {
					seen[p] = true
					subs[i] = append(subs[i], ident.PatternID(p))
				}
			}
		}

		got := buildPlainNodes(topo)
		InstallStableSubscriptions(topo, got, subs)
		want := buildPlainNodes(topo)
		installOracle(topo, want, subs)

		for x := 0; x < tc.n; x++ {
			for p := 0; p < tc.numPat; p++ {
				pid := ident.PatternID(p)
				g, w := got[x].dirs(pid), want[x].dirs(pid)
				if len(g) != len(w) {
					t.Fatalf("case %+v: node %d pattern %d: rows %v vs oracle %v", tc, x, p, g, w)
				}
				for i := range g {
					if g[i] != w[i] {
						t.Fatalf("case %+v: node %d pattern %d entry %d: %v vs oracle %v (order must match)", tc, x, p, i, g, w)
					}
				}
			}
			if !got[x].LocalPatternSet().Equal(want[x].LocalPatternSet()) {
				t.Fatalf("case %+v: node %d local sets differ", tc, x)
			}
		}
	}
}
