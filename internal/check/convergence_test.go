package check

import (
	"testing"
	"time"

	"repro/internal/ident"
	"repro/internal/topology"
)

// convOpts enables only the convergence monitor so its verdicts are not
// shadowed by the topology monitor's own finish checks.
func convOpts() *Options {
	return &Options{Convergence: true, ConvergenceBound: 2 * time.Second}
}

func TestConvergenceCleanOnQuiescentLegalRun(t *testing.T) {
	h := newHarness(convOpts(), line(4))
	h.now = 1 * time.Second
	h.lastFault = h.now
	h.c.OnTopologyMutation() // repair lands immediately after the fault
	h.now = 10 * time.Second
	h.c.Finish(nil)
	wantClean(t, h.c)
}

func TestConvergenceNoQuiescence(t *testing.T) {
	h := newHarness(convOpts(), line(4))
	h.now = 1 * time.Second
	h.lastFault = h.now
	// A mutation past lastFault+bound means the overlay never settled.
	h.now = 5 * time.Second
	h.c.OnTopologyMutation()
	h.now = 10 * time.Second
	h.c.Finish(nil)
	wantViolation(t, h.c, "convergence", "no-quiescence")
}

func TestConvergenceSkipsWhenFaultNearEnd(t *testing.T) {
	// The overlay is split, but the last fault is within the bound of
	// the end of the run: repair is legitimately still in flight.
	f := line(4)
	f.adj[1] = f.adj[1][:1]
	f.adj[2] = f.adj[2][1:]
	h := newHarness(convOpts(), f)
	h.now = 9 * time.Second
	h.lastFault = h.now
	h.now = 9500 * time.Millisecond
	h.c.Finish(nil)
	wantClean(t, h.c)
}

func TestConvergenceFinalDegree(t *testing.T) {
	// Star 0-{1,2,3} with bound 2: the hub is over-degree.
	f := &fakeTopo{n: 4, maxDeg: 2, adj: make([][]ident.NodeID, 4), inc: 1}
	for i := 1; i < 4; i++ {
		f.adj[0] = append(f.adj[0], ident.NodeID(i))
		f.adj[i] = append(f.adj[i], 0)
	}
	h := newHarness(convOpts(), f)
	h.now = 10 * time.Second
	h.c.Finish(nil)
	wantViolation(t, h.c, "convergence", "final-degree")
}

func TestConvergenceFinalDeadLink(t *testing.T) {
	h := newHarness(convOpts(), line(3))
	h.down[1] = true // still linked to 0 and 2
	h.now = 10 * time.Second
	h.c.Finish(nil)
	wantViolation(t, h.c, "convergence", "final-dead-link")
}

func TestConvergenceFinalDisconnected(t *testing.T) {
	f := line(4)
	f.adj[1] = f.adj[1][:1] // cut 1-2 symmetrically
	f.adj[2] = f.adj[2][1:]
	h := newHarness(convOpts(), f)
	h.now = 10 * time.Second
	h.c.Finish(nil)
	wantViolation(t, h.c, "convergence", "final-disconnected")
}

func TestConvergenceFinalCycleOnTreeKind(t *testing.T) {
	f := line(4)
	f.adj[0] = append(f.adj[0], 3)
	f.adj[3] = append(f.adj[3], 0)
	h := newHarness(convOpts(), f)
	h.now = 10 * time.Second
	h.c.Finish(nil)
	wantViolation(t, h.c, "convergence", "final-cycle")
}

func TestConvergenceToleratesCyclesOnCyclicKinds(t *testing.T) {
	f := line(4)
	f.adj[0] = append(f.adj[0], 3)
	f.adj[3] = append(f.adj[3], 0)
	f.kind = topology.KindSmallWorld
	h := newHarness(convOpts(), f)
	h.now = 10 * time.Second
	h.c.Finish(nil)
	wantClean(t, h.c)
}

func TestConvergenceSingleLiveNodeIsTriviallyLegal(t *testing.T) {
	f := &fakeTopo{n: 1, maxDeg: 2, adj: make([][]ident.NodeID, 1), inc: 1}
	h := newHarness(convOpts(), f)
	h.now = 10 * time.Second
	h.c.Finish(nil)
	wantClean(t, h.c)
}

func TestConvergenceWithoutFaultSource(t *testing.T) {
	// A run with no injector wires no LastFaultAt; the monitor treats
	// the whole run as post-fault and still judges final legality.
	h := newHarness(convOpts(), line(4))
	h.c.env.LastFaultAt = nil
	h.now = 10 * time.Second
	h.c.Finish(nil)
	wantClean(t, h.c)
}

func TestMutationCycleCheckSkippedOnCyclicKinds(t *testing.T) {
	// The same shape that fires topology/cycle on a tree is legal
	// redundancy on a scale-free overlay.
	f := line(4)
	f.adj[0] = append(f.adj[0], 3)
	f.adj[3] = append(f.adj[3], 0)
	f.kind = topology.KindScaleFree
	h := newHarness(&Options{Topology: true}, f)
	h.c.OnTopologyMutation()
	wantClean(t, h.c)
}
