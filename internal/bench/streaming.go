package bench

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/wire"
)

// metricsOp is one replayed tracker call of the synthetic stream.
type metricsOp struct {
	publish   bool
	id        ident.EventID
	at        sim.Time // publish time
	now       sim.Time // clock at delivery
	node      ident.NodeID
	expected  int
	recovered bool
}

var (
	metricsOpsOnce sync.Once
	metricsOps     []metricsOp
)

// metricsStream builds (once) the synthetic measurement stream both
// pipeline benchmarks replay: the tracker-visible trace of a 10k-node
// heavy-traffic run — 200,000 published events over 20 s of virtual
// time, ~5 expected receivers each, 85% delivered with sub-second
// latency, 15% of deliveries via recovery. Publish order is time-
// sorted, as in a real run.
func metricsStream() []metricsOp {
	metricsOpsOnce.Do(func() {
		const events = 200_000
		rng := rand.New(rand.NewSource(17))
		span := 20 * time.Second
		gap := sim.Time(int64(span) / events)
		ops := make([]metricsOp, 0, events*6)
		at := sim.Time(0)
		for i := 0; i < events; i++ {
			at += sim.Time(rng.Int63n(int64(2*gap) + 1))
			id := ident.EventID{Source: ident.NodeID(i % 10_000), Seq: uint32(i/10_000 + 1)}
			exp := 3 + rng.Intn(5)
			ops = append(ops, metricsOp{publish: true, id: id, at: at, expected: exp})
			for d := 0; d < exp; d++ {
				if rng.Float64() >= 0.85 {
					continue
				}
				ops = append(ops, metricsOp{
					id:        id,
					at:        at,
					now:       at + sim.Time(rng.Intn(int(800*time.Millisecond))),
					node:      ident.NodeID(10_001 + d),
					recovered: rng.Float64() < 0.15,
				})
			}
		}
		metricsOps = ops
	})
	return metricsOps
}

// replayMetrics drives one tracker through the synthetic stream and
// runs the end-of-run queries a scenario performs, returning the
// number of tracker operations replayed.
func replayMetrics(tr metrics.Tracker, clock *sim.Time, ops []metricsOp) int {
	ev := &wire.Event{}
	for i := range ops {
		op := &ops[i]
		if op.publish {
			tr.OnPublish(op.id, op.expected, op.at)
			continue
		}
		ev.ID = op.id
		ev.PublishedAt = int64(op.at)
		*clock = op.now
		tr.OnDeliver(op.node, ev, op.recovered)
	}
	_ = tr.Rate(time.Second, 18*time.Second)
	_ = tr.RecoveredShare(time.Second, 18*time.Second)
	_ = tr.ReceiversPerEvent(time.Second, 18*time.Second)
	_ = tr.TimeSeries(100 * time.Millisecond)
	_ = tr.RoutedLatency().Quantiles(0.5, 0.99)
	_ = tr.RecoveryLatency().Quantiles(0.5, 0.99)
	return len(ops)
}

// MetricsPipelineExact measures the measurement layer itself at
// heavy-traffic scale: one op is a fresh exact DeliveryTracker
// replaying the full 200k-event synthetic stream plus the end-of-run
// queries — the per-run cost the metrics engine adds to a 10k-node
// simulation. The reported simevents/s counts tracker operations.
func MetricsPipelineExact(b *testing.B) {
	ops := metricsStream()
	var clock sim.Time
	now := func() sim.Time { return clock }
	var replayed uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := metrics.NewDeliveryTracker(now)
		replayed += uint64(replayMetrics(tr, &clock, ops))
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(replayed)/b.Elapsed().Seconds(), "simevents/s")
	}
}

// MetricsPipelineStreaming is MetricsPipelineExact on the streaming
// tracker: same stream, same queries, O(1) memory. The allocs/op and
// events/s gap against the exact pipeline is the tentpole measurement
// of the streaming engine.
func MetricsPipelineStreaming(b *testing.B) {
	ops := metricsStream()
	var clock sim.Time
	now := func() sim.Time { return clock }
	var replayed uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := metrics.NewStreamingTracker(metrics.StreamingConfig{
			Now:         now,
			Seed:        int64(i + 1),
			BucketWidth: 100 * time.Millisecond,
			RingBuckets: 256,
		})
		replayed += uint64(replayMetrics(tr, &clock, ops))
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(replayed)/b.Elapsed().Seconds(), "simevents/s")
	}
}

// heavy10kParams is the Scale10k workload with 100× the traffic:
// 10,000 events/s aggregate instead of 100, the regime where
// measurement volume — not node count — is the scaling axis.
func heavy10kParams(seed int64, mode scenario.MetricsMode) scenario.Params {
	p := scenario.DefaultParams()
	p.Seed = seed
	p.N = 10_000
	p.NumPatterns = 2000
	p.PatternsPerNode = 1
	p.PublishRate = 1 // 10k events/s aggregate
	p.Duration = time.Second
	p.MeasureFrom = 100 * time.Millisecond
	p.MeasureTo = 900 * time.Millisecond
	p.Network.LossRate = 0.05
	p.Algorithm = core.SubscriberPull
	p.Gossip = core.DefaultConfig(core.SubscriberPull)
	p.Gossip.GossipInterval = 200 * time.Millisecond
	p.MetricsMode = mode
	return p
}

// Heavy10k is one 10,000-dispatcher run under heavy traffic (10k
// events/s aggregate) with the default exact tracker — the workload
// where per-event measurement state stops being free.
func Heavy10k(b *testing.B) {
	heavy10k(b, scenario.MetricsExact)
}

// Heavy10kStreaming is the same run measured by the streaming engine;
// the pair quantifies what the measurement mode costs at full-scenario
// scale (the isolated measurement-layer gap is MetricsPipeline*).
func Heavy10kStreaming(b *testing.B) {
	heavy10k(b, scenario.MetricsStreaming)
}

func heavy10k(b *testing.B, mode scenario.MetricsMode) {
	var events uint64
	var runner scenario.Runner
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := runner.Run(heavy10kParams(int64(i+1), mode))
		if err != nil {
			b.Fatal(err)
		}
		events += res.KernelEvents
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "simevents/s")
	}
}

// ShardedRun returns a benchmark running one mid-size subscriber-pull
// simulation on the conservative parallel executor with the given
// shard count (1 = the sequential executor). Results are bit-identical
// across shard counts by construction, so the ns/op curve across
// shards is a pure wall-clock speedup measurement of the sharded DES —
// the cmd/bench -shards sweep records it.
func ShardedRun(shards int) func(*testing.B) {
	return func(b *testing.B) {
		var events uint64
		var runner scenario.Runner
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := scenario.DefaultParams()
			p.Seed = int64(i + 1)
			p.N = 2000
			p.NumPatterns = 200
			p.PatternsPerNode = 1
			p.Publishers = 8
			p.PublishPatterns = 30
			p.PublishRate = 12.5
			p.Duration = 2 * time.Second
			p.MeasureFrom = 200 * time.Millisecond
			p.MeasureTo = 1800 * time.Millisecond
			p.Network.LossRate = 0.05
			p.Algorithm = core.SubscriberPull
			p.Gossip = core.DefaultConfig(core.SubscriberPull)
			p.Gossip.GossipInterval = 200 * time.Millisecond
			p.Shards = shards
			res, err := runner.Run(p)
			if err != nil {
				b.Fatal(err)
			}
			events += res.KernelEvents
		}
		b.StopTimer()
		if b.Elapsed() > 0 {
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "simevents/s")
		}
	}
}
