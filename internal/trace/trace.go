// Package trace records protocol activity into a bounded in-memory
// ring, for debugging simulations and inspecting what the protocols
// actually did: publishes, deliveries, recoveries, transmissions,
// losses, and reconfigurations. Recording is cheap (one slice write)
// and the ring never grows, so tracing can stay on for full-scale
// runs.
package trace

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/ident"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Kind classifies one trace record.
type Kind uint8

// Record kinds.
const (
	Publish Kind = iota + 1
	Deliver
	Recover
	Send
	Loss
	LinkDown
	LinkUp
	NodeDown
	NodeUp

	// kindCount is one past the last kind. Every loop over kinds must
	// use it as the bound so that adding a kind above cannot silently
	// fall out of summaries.
	kindCount
)

var kindNames = map[Kind]string{
	Publish:  "publish",
	Deliver:  "deliver",
	Recover:  "recover",
	Send:     "send",
	Loss:     "loss",
	LinkDown: "link-down",
	LinkUp:   "link-up",
	NodeDown: "node-down",
	NodeUp:   "node-up",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Record is one traced protocol step.
type Record struct {
	At   sim.Time
	Kind Kind
	// Node is the acting dispatcher (sender for Send/Loss).
	Node ident.NodeID
	// Peer is the other dispatcher involved, or ident.None.
	Peer ident.NodeID
	// Event identifies the event concerned, when any.
	Event ident.EventID
	// Msg is the message kind for Send/Loss records.
	Msg wire.Kind
}

// String renders one record compactly.
func (r Record) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12v %-9s node=%d", r.At.Round(time.Microsecond), r.Kind, int32(r.Node))
	if r.Peer != ident.None {
		fmt.Fprintf(&b, " peer=%d", int32(r.Peer))
	}
	if r.Event != (ident.EventID{}) {
		fmt.Fprintf(&b, " %v", r.Event)
	}
	if r.Msg != 0 {
		fmt.Fprintf(&b, " msg=%v", r.Msg)
	}
	return b.String()
}

// Ring is a bounded trace buffer. The zero value is unusable; use New.
// Ring is not safe for concurrent use (the simulator is
// single-threaded).
type Ring struct {
	buf    []Record
	next   int
	total  uint64
	counts map[Kind]uint64
}

// New returns a ring holding the last capacity records.
func New(capacity int) *Ring {
	if capacity < 1 {
		panic(fmt.Sprintf("trace: capacity %d < 1", capacity))
	}
	return &Ring{
		buf:    make([]Record, 0, capacity),
		counts: make(map[Kind]uint64),
	}
}

// Add appends one record, evicting the oldest when full.
func (r *Ring) Add(rec Record) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
	} else {
		r.buf[r.next] = rec
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.total++
	r.counts[rec.Kind]++
}

// Total returns how many records were ever added.
func (r *Ring) Total() uint64 { return r.total }

// Count returns how many records of kind k were ever added.
func (r *Ring) Count(k Kind) uint64 { return r.counts[k] }

// Snapshot returns the retained records, oldest first.
func (r *Ring) Snapshot() []Record {
	out := make([]Record, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Filter returns the retained records matching keep, oldest first.
func (r *Ring) Filter(keep func(Record) bool) []Record {
	var out []Record
	for _, rec := range r.Snapshot() {
		if keep(rec) {
			out = append(out, rec)
		}
	}
	return out
}

// ForEvent returns the retained records concerning one event — its
// publish, every delivery, every recovery.
func (r *Ring) ForEvent(id ident.EventID) []Record {
	return r.Filter(func(rec Record) bool { return rec.Event == id })
}

// Dump writes the retained records to w, oldest first, with a summary
// line of the lifetime counts.
func (r *Ring) Dump(w io.Writer) error {
	for _, rec := range r.Snapshot() {
		if _, err := fmt.Fprintln(w, rec); err != nil {
			return err
		}
	}
	var parts []string
	for k := Publish; k < kindCount; k++ {
		if c := r.counts[k]; c > 0 {
			parts = append(parts, fmt.Sprintf("%v=%d", k, c))
		}
	}
	_, err := fmt.Fprintf(w, "# total=%d retained=%d (%s)\n",
		r.total, len(r.buf), strings.Join(parts, " "))
	return err
}
