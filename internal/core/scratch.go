package core

import (
	"repro/internal/cache"
	"repro/internal/ident"
	"repro/internal/sim"
	"repro/internal/wire"
)

// ScratchPool recycles engine state across engine lifetimes. A
// parameter-sweep worker builds one engine per dispatcher per run and
// discards them all at the end; with a pool, the expensive per-engine
// structures — the β-sized event cache, the Lost buffer with its digest
// indexes, the recovery maps, and the per-round scratch slices — are
// grown to their steady-state size during the first runs and then
// survive into later runs instead of being reallocated and re-grown
// from nil every time. A pool must not be shared between goroutines;
// each sweep worker owns its own.
type ScratchPool struct {
	free []engineScratch
}

// engineScratch is one recyclable bundle of an engine's reusable state
// (see the corresponding fields on Engine). The cache and Lost buffer
// are handed back emptied; the maps are cleared but keep their buckets.
type engineScratch struct {
	pat  []ident.PatternID
	src  []ident.NodeID
	nb   []ident.NodeID
	id   []ident.EventID
	ev   []*wire.Event
	want []wire.LostEntry

	buf     *cache.Cache
	lost    *LostBuffer
	patIdx  map[ident.PatternID]*ident.EventIDSet
	tagIdx  map[wire.LostEntry]ident.EventID
	high    map[srcPattern]uint32
	routes  map[ident.NodeID][]ident.NodeID
	pending map[ident.EventID]sim.Time
}

func (p *ScratchPool) get() engineScratch {
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		return s
	}
	return engineScratch{}
}

func (p *ScratchPool) put(s engineScratch) {
	// Drop every event pointer (scratch slice, cache contents, index
	// maps) so a pooled bundle cannot pin a finished run's events — or
	// its engine, via the cache's OnEvict closure — in memory.
	s.ev = s.ev[:cap(s.ev)]
	clear(s.ev)
	s.ev = s.ev[:0]
	if s.buf != nil {
		s.buf.Reset(s.buf.Capacity(), cache.FIFOPolicy, nil)
	}
	clear(s.patIdx)
	clear(s.tagIdx)
	clear(s.high)
	clear(s.routes)
	clear(s.pending)
	p.free = append(p.free, s)
}
