//go:build linux && (amd64 || arm64)

package live

import (
	"net"
	"net/netip"
	"syscall"
	"unsafe"
)

// The Linux batch transport: recvmmsg/sendmmsg move up to a whole
// batch of datagrams per syscall. The raw syscalls are issued through
// net.UDPConn's RawConn, so the socket stays registered with the Go
// netpoller: the read side parks on the poller until the socket is
// readable, then drains non-blocking; the write side retries on EAGAIN
// the same way. This is the same mechanism golang.org/x/net/ipv4 uses,
// inlined here because the repository deliberately has no dependencies
// outside the standard library.
//
// Source addresses are not collected on reads (msg_name is nil): a
// dispatcher identifies peers by the envelope's sender slot, never by
// the packet's origin, so parsing sockaddrs would be pure overhead.

// batchTransportAvailable reports whether newBatchPacketConn can
// return a working mmsg transport on this platform.
const batchTransportAvailable = true

// mmsghdr mirrors struct mmsghdr on 64-bit Linux.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

type mmsgConn struct {
	conn *net.UDPConn
	rc   syscall.RawConn

	// Pre-allocated syscall scaffolding, sized to the batch; reused on
	// every call so the steady state allocates nothing.
	rhdrs []mmsghdr
	riovs []syscall.Iovec
	whdrs []mmsghdr
	wiovs []syscall.Iovec
	// wnames holds one sockaddr slot per write entry; RawSockaddrInet6
	// is large enough for both address families.
	wnames []syscall.RawSockaddrInet6
}

// newBatchPacketConn wraps conn in the mmsg transport, handling up to
// batch datagrams per syscall.
func newBatchPacketConn(conn *net.UDPConn, batch int) (packetConn, bool) {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil, false
	}
	return &mmsgConn{
		conn:   conn,
		rc:     rc,
		rhdrs:  make([]mmsghdr, batch),
		riovs:  make([]syscall.Iovec, batch),
		whdrs:  make([]mmsghdr, batch),
		wiovs:  make([]syscall.Iovec, batch),
		wnames: make([]syscall.RawSockaddrInet6, batch),
	}, true
}

func (c *mmsgConn) readBatch(ds []dgram) (int, error) {
	k := len(ds)
	if k > len(c.rhdrs) {
		k = len(c.rhdrs)
	}
	for i := 0; i < k; i++ {
		c.riovs[i].Base = &ds[i].b[0]
		c.riovs[i].SetLen(len(ds[i].b))
		c.rhdrs[i] = mmsghdr{hdr: syscall.Msghdr{Iov: &c.riovs[i], Iovlen: 1}}
	}
	var n int
	var operr error
	err := c.rc.Read(func(fd uintptr) bool {
		n, operr = recvmmsg(fd, c.rhdrs[:k])
		return operr != syscall.EAGAIN
	})
	if err != nil {
		return 0, err
	}
	if operr != nil {
		return 0, operr
	}
	for i := 0; i < n; i++ {
		ds[i].b = ds[i].b[:c.rhdrs[i].n]
	}
	return n, nil
}

func (c *mmsgConn) writeBatch(ds []dgram) (int, error) {
	sent := 0
	for sent < len(ds) {
		k := len(ds) - sent
		if k > len(c.whdrs) {
			k = len(c.whdrs)
		}
		for i := 0; i < k; i++ {
			d := &ds[sent+i]
			c.wiovs[i].Base = &d.b[0]
			c.wiovs[i].SetLen(len(d.b))
			namelen := putSockaddr(&c.wnames[i], d.to)
			c.whdrs[i] = mmsghdr{hdr: syscall.Msghdr{
				Name:    (*byte)(unsafe.Pointer(&c.wnames[i])),
				Namelen: namelen,
				Iov:     &c.wiovs[i],
				Iovlen:  1,
			}}
		}
		var n int
		var operr error
		err := c.rc.Write(func(fd uintptr) bool {
			n, operr = sendmmsg(fd, c.whdrs[:k])
			return operr != syscall.EAGAIN
		})
		if err != nil {
			return sent, err
		}
		if operr != nil {
			return sent, operr
		}
		if n <= 0 {
			return sent, nil
		}
		sent += n
	}
	return sent, nil
}

func (c *mmsgConn) localAddr() *net.UDPAddr { return c.conn.LocalAddr().(*net.UDPAddr) }
func (c *mmsgConn) close() error            { return c.conn.Close() }

// putSockaddr encodes ap into sa's storage and returns the length to
// pass as msg_namelen. IPv4 and IPv4-mapped addresses use AF_INET (sa
// is large enough for either family).
func putSockaddr(sa *syscall.RawSockaddrInet6, ap netip.AddrPort) uint32 {
	port := ap.Port()
	if a := ap.Addr(); a.Is4() || a.Is4In6() {
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		*sa4 = syscall.RawSockaddrInet4{Family: syscall.AF_INET}
		p := (*[2]byte)(unsafe.Pointer(&sa4.Port))
		p[0], p[1] = byte(port>>8), byte(port)
		sa4.Addr = a.Unmap().As4()
		return syscall.SizeofSockaddrInet4
	}
	*sa = syscall.RawSockaddrInet6{Family: syscall.AF_INET6}
	p := (*[2]byte)(unsafe.Pointer(&sa.Port))
	p[0], p[1] = byte(port>>8), byte(port)
	sa.Addr = ap.Addr().As16()
	return syscall.SizeofSockaddrInet6
}

func recvmmsg(fd uintptr, hs []mmsghdr) (int, error) {
	n, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
		uintptr(unsafe.Pointer(&hs[0])), uintptr(len(hs)),
		uintptr(syscall.MSG_DONTWAIT), 0, 0)
	if errno != 0 {
		return 0, errno
	}
	return int(n), nil
}

func sendmmsg(fd uintptr, hs []mmsghdr) (int, error) {
	n, _, errno := syscall.Syscall6(sysSendmmsg, fd,
		uintptr(unsafe.Pointer(&hs[0])), uintptr(len(hs)),
		uintptr(syscall.MSG_DONTWAIT), 0, 0)
	if errno != 0 {
		return 0, errno
	}
	return int(n), nil
}
