package live

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/matching"
	"repro/internal/wire"
)

// quotaNode builds a standalone node with k events for pattern 7 in its
// buffer and timers parked out of the way, so tests can drive the
// recovery serve path directly.
func quotaNode(t *testing.T, k int, cfg Config) *Node {
	t.Helper()
	cfg.ID = 1
	cfg.Algorithm = core.Push
	cfg.GossipInterval = time.Hour
	cfg.RequestBackoff = time.Hour
	n, err := NewNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Close() })
	n.Subscribe(7)
	for i := 0; i < k; i++ {
		n.Publish(matching.Content{7})
	}
	return n
}

// eventWireSize is the encoded size of one of quotaNode's events — what
// the serve quota is charged per event.
func eventWireSize(n *Node) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.buf.Get(ident.EventID{Source: 1, Seq: 1}).WireSize()
}

// TestLedgerQuotaAsymmetricTraffic: a greedy requester is capped at its
// ServeBudget while a modest one is served in full from its own,
// independent budget.
func TestLedgerQuotaAsymmetricTraffic(t *testing.T) {
	n := quotaNode(t, 10, Config{LedgerWindow: time.Hour})
	sz := eventWireSize(n)
	n.mu.Lock()
	n.cfg.ServeBudget = 3 * sz
	n.mu.Unlock()

	var ids []ident.EventID
	for i := 1; i <= 10; i++ {
		ids = append(ids, ident.EventID{Source: 1, Seq: uint32(i)})
	}
	// Peer 8 wants everything: only 3 events fit its window budget.
	n.onRequest(&wire.Request{Requester: 8, IDs: ids})
	st := n.Stats()
	if st.Served != 3 {
		t.Fatalf("Served = %d, want 3 (budget of 3 events)", st.Served)
	}
	if st.QuotaTrimmed != 7 {
		t.Fatalf("QuotaTrimmed = %d, want 7", st.QuotaTrimmed)
	}
	// Asking again in the same window yields nothing more.
	n.onRequest(&wire.Request{Requester: 8, IDs: ids[:4]})
	if got := n.Stats().Served; got != 3 {
		t.Fatalf("Served after repeat request = %d, want 3 (window exhausted)", got)
	}
	// Peer 9's budget is its own: a modest request is served in full.
	n.onRequest(&wire.Request{Requester: 9, IDs: ids[:2]})
	if got := n.Stats().Served; got != 5 {
		t.Fatalf("Served = %d, want 5 (peer 9 unaffected by peer 8's greed)", got)
	}

	led := n.Ledger()
	if got := led[8].BytesSent; got != uint64(3*sz) {
		t.Fatalf("ledger[8].BytesSent = %d, want %d", got, 3*sz)
	}
	if got := led[9].BytesSent; got != uint64(2*sz) {
		t.Fatalf("ledger[9].BytesSent = %d, want %d", got, 2*sz)
	}
	if led[8].MessagesReceived != 2 || led[9].MessagesReceived != 1 {
		t.Fatalf("request accounting wrong: %+v / %+v", led[8], led[9])
	}
}

// TestLedgerQuotaWindowRefills: the serve budget is per window, not
// forever — after the window rolls over, the same peer is served again.
func TestLedgerQuotaWindowRefills(t *testing.T) {
	n := quotaNode(t, 4, Config{LedgerWindow: 20 * time.Millisecond})
	sz := eventWireSize(n)
	n.mu.Lock()
	n.cfg.ServeBudget = 2 * sz
	n.mu.Unlock()

	var ids []ident.EventID
	for i := 1; i <= 4; i++ {
		ids = append(ids, ident.EventID{Source: 1, Seq: uint32(i)})
	}
	n.onRequest(&wire.Request{Requester: 8, IDs: ids})
	if got := n.Stats().Served; got != 2 {
		t.Fatalf("Served = %d, want 2 in the first window", got)
	}
	time.Sleep(30 * time.Millisecond)
	n.onRequest(&wire.Request{Requester: 8, IDs: ids[2:]})
	if got := n.Stats().Served; got != 4 {
		t.Fatalf("Served = %d, want 4 after the window refilled", got)
	}
}

// TestLedgerQuotaTrimsGossipServe: on the pull-serve path, events the
// quota cannot cover are left in the remaining set (so another replica
// can serve them) rather than silently dropped.
func TestLedgerQuotaTrimsGossipServe(t *testing.T) {
	n := quotaNode(t, 4, Config{LedgerWindow: time.Hour})
	sz := eventWireSize(n)
	n.mu.Lock()
	n.cfg.ServeBudget = 2 * sz
	var wanted []wire.LostEntry
	for i := 1; i <= 4; i++ {
		wanted = append(wanted, wire.LostEntry{Source: 1, Pattern: 7, Seq: uint32(i)})
	}
	remaining, outs := n.serveLocked(8, wanted)
	n.mu.Unlock()
	if len(outs) != 1 {
		t.Fatalf("got %d retransmissions, want 1", len(outs))
	}
	if got := len(outs[0].msg.(*wire.Retransmit).Events); got != 2 {
		t.Fatalf("retransmit carries %d events, want 2 (quota)", got)
	}
	if len(remaining) != 2 {
		t.Fatalf("remaining = %d entries, want the 2 trimmed ones", len(remaining))
	}
	if got := n.Stats().QuotaTrimmed; got != 2 {
		t.Fatalf("QuotaTrimmed = %d, want 2", got)
	}
}

// push feeds a digest from a given gossiper through the pending-table
// admission path.
func push(n *Node, gossiper ident.NodeID, src ident.NodeID, seq uint32) {
	n.onGossipPush(gossiper, &wire.GossipPush{
		Gossiper: gossiper,
		Pattern:  7,
		Digest:   []ident.EventID{{Source: src, Seq: seq}},
	})
}

// TestLedgerGreediestFirstShed: when the pending table fills, the shed
// victim is the peer with the most live entries — the modest peer's
// entries survive the greedy peer's flood.
func TestLedgerGreediestFirstShed(t *testing.T) {
	n, err := NewNode(Config{
		ID:             1,
		Algorithm:      core.Push,
		GossipInterval: time.Hour,
		RequestBackoff: time.Hour,
		MaxPending:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.Subscribe(7)

	for i := 1; i <= 4; i++ { // greedy peer 5: entries 1-4
		push(n, 5, 50, uint32(i))
	}
	for i := 1; i <= 2; i++ { // modest peer 6: entries 1-2
		push(n, 6, 60, uint32(i))
	}
	for i := 5; i <= 6; i++ { // peer 5 fills the table: 8 entries
		push(n, 5, 50, uint32(i))
	}
	for i := 7; i <= 8; i++ { // two more from 5: two sheds, both from 5
		push(n, 5, 50, uint32(i))
	}

	n.mu.Lock()
	size := len(n.pending)
	_, aOldest := n.pending[ident.EventID{Source: 50, Seq: 1}]
	_, aSecond := n.pending[ident.EventID{Source: 50, Seq: 2}]
	_, b1 := n.pending[ident.EventID{Source: 60, Seq: 1}]
	_, b2 := n.pending[ident.EventID{Source: 60, Seq: 2}]
	n.mu.Unlock()
	if size != 8 {
		t.Fatalf("pending table holds %d entries, want 8", size)
	}
	if aOldest || aSecond {
		t.Fatalf("greedy peer's oldest entries survived: seq1=%v seq2=%v", aOldest, aSecond)
	}
	if !b1 || !b2 {
		t.Fatalf("modest peer's entries were shed: b1=%v b2=%v", b1, b2)
	}
	if got := n.Stats().PendingShed; got != 2 {
		t.Fatalf("PendingShed = %d, want 2", got)
	}
	led := n.Ledger()
	if led[5].Pending != 6 || led[6].Pending != 2 {
		t.Fatalf("ledger pending counts = %d/%d, want 6/2", led[5].Pending, led[6].Pending)
	}
}

// TestLedgerFloodDoesNotStarvePeers is the starvation regression: under
// the old oldest-first policy a peer flooding digests evicted every
// other peer's pending recovery; with the ledger, the victim of each
// shed is the flooder itself, so a modest peer's single entry survives
// a flood dozens of times the table size.
func TestLedgerFloodDoesNotStarvePeers(t *testing.T) {
	n, err := NewNode(Config{
		ID:             1,
		Algorithm:      core.Push,
		GossipInterval: time.Hour,
		RequestBackoff: time.Hour,
		MaxPending:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.Subscribe(7)

	for i := 1; i <= 8; i++ { // flooder 5 fills the table
		push(n, 5, 50, uint32(i))
	}
	push(n, 6, 60, 1)          // modest peer 6 wants one recovery
	for i := 9; i <= 32; i++ { // flood 3× the table size
		push(n, 5, 50, uint32(i))
	}

	n.mu.Lock()
	_, alive := n.pending[ident.EventID{Source: 60, Seq: 1}]
	size := len(n.pending)
	n.mu.Unlock()
	if size != 8 {
		t.Fatalf("pending table holds %d entries, want 8", size)
	}
	if !alive {
		t.Fatal("flooding peer starved the modest peer's pending recovery")
	}

	// The modest peer's recovery still completes: a retransmit answers
	// its pending entry.
	n.onRetransmit(&wire.Retransmit{
		Responder: 6,
		Events: []*wire.Event{{
			ID:      ident.EventID{Source: 60, Seq: 1},
			Content: matching.Content{7},
		}},
	})
	st := n.Stats()
	if st.Recovered != 1 {
		t.Fatalf("Recovered = %d, want 1", st.Recovered)
	}
	if got := n.Ledger()[6].Pending; got != 0 {
		t.Fatalf("ledger[6].Pending = %d after recovery, want 0", got)
	}
}
