package metrics

import (
	"math"
	"testing"
	"time"

	"repro/internal/ident"
	"repro/internal/sim"
	"repro/internal/wire"
)

func eid(src, seq int) ident.EventID {
	return ident.EventID{Source: ident.NodeID(src), Seq: uint32(seq)}
}

func evt(src, seq int) *wire.Event {
	return &wire.Event{ID: eid(src, seq)}
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDeliveryRate(t *testing.T) {
	d := NewDeliveryTracker(nil)
	d.OnPublish(eid(0, 1), 4, time.Second)
	d.OnDeliver(1, evt(0, 1), false)
	d.OnDeliver(2, evt(0, 1), false)
	d.OnDeliver(3, evt(0, 1), true)
	if got := d.Rate(0, 2*time.Second); !approx(got, 0.75) {
		t.Fatalf("Rate = %v, want 0.75", got)
	}
	exp, del, rec := d.Totals()
	if exp != 4 || del != 3 || rec != 1 {
		t.Fatalf("Totals = %d/%d/%d, want 4/3/1", exp, del, rec)
	}
	if got := d.RecoveredShare(0, 2*time.Second); !approx(got, 1.0/3) {
		t.Fatalf("RecoveredShare = %v, want 1/3", got)
	}
}

func TestDeliveryWindowFilters(t *testing.T) {
	d := NewDeliveryTracker(nil)
	d.OnPublish(eid(0, 1), 2, time.Second)
	d.OnPublish(eid(0, 2), 2, 5*time.Second)
	d.OnDeliver(1, evt(0, 1), false)
	d.OnDeliver(1, evt(0, 2), false)
	d.OnDeliver(2, evt(0, 2), false)
	if got := d.Rate(0, 2*time.Second); !approx(got, 0.5) {
		t.Fatalf("Rate in [0,2s) = %v, want 0.5", got)
	}
	if got := d.Rate(4*time.Second, 6*time.Second); !approx(got, 1.0) {
		t.Fatalf("Rate in [4s,6s) = %v, want 1.0", got)
	}
	if got := d.Rate(10*time.Second, 20*time.Second); !approx(got, 1.0) {
		t.Fatalf("Rate of empty window = %v, want 1 (neutral)", got)
	}
}

func TestSelfDeliveryIgnored(t *testing.T) {
	d := NewDeliveryTracker(nil)
	d.OnPublish(eid(7, 1), 1, 0)
	d.OnDeliver(7, evt(7, 1), false) // publisher's own local delivery
	if got := d.Rate(0, time.Second); !approx(got, 0) {
		t.Fatalf("Rate = %v, want 0 (self-delivery ignored)", got)
	}
}

func TestUnknownEventIgnored(t *testing.T) {
	d := NewDeliveryTracker(nil)
	d.OnDeliver(1, evt(0, 99), false) // never registered
	if _, del, _ := d.Totals(); del != 0 {
		t.Fatal("delivery of unknown event counted")
	}
}

func TestReceiversPerEvent(t *testing.T) {
	d := NewDeliveryTracker(nil)
	d.OnPublish(eid(0, 1), 3, 0)
	d.OnPublish(eid(0, 2), 7, 0)
	if got := d.ReceiversPerEvent(0, time.Second); !approx(got, 5) {
		t.Fatalf("ReceiversPerEvent = %v, want 5", got)
	}
	if got := d.ReceiversPerEvent(time.Hour, 2*time.Hour); got != 0 {
		t.Fatalf("empty window ReceiversPerEvent = %v, want 0", got)
	}
}

func TestTimeSeriesBuckets(t *testing.T) {
	d := NewDeliveryTracker(nil)
	d.OnPublish(eid(0, 1), 2, 10*time.Millisecond)
	d.OnPublish(eid(0, 2), 2, 60*time.Millisecond)
	d.OnPublish(eid(0, 3), 2, 70*time.Millisecond)
	d.OnDeliver(1, evt(0, 1), false)
	d.OnDeliver(1, evt(0, 2), false)
	d.OnDeliver(2, evt(0, 2), false)
	d.OnDeliver(1, evt(0, 3), false)
	d.OnDeliver(2, evt(0, 3), false)
	pts := d.TimeSeries(50 * time.Millisecond)
	if len(pts) != 2 {
		t.Fatalf("%d buckets, want 2", len(pts))
	}
	if pts[0].Time != 0 || !approx(pts[0].Rate, 0.5) {
		t.Fatalf("bucket 0 = %+v, want t=0 rate=0.5", pts[0])
	}
	if pts[1].Time != 50*time.Millisecond || !approx(pts[1].Rate, 1.0) {
		t.Fatalf("bucket 1 = %+v, want t=50ms rate=1.0", pts[1])
	}
}

func TestTimeSeriesPanicsOnBadBucket(t *testing.T) {
	d := NewDeliveryTracker(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero bucket")
		}
	}()
	d.TimeSeries(0)
}

func TestTrafficClassification(t *testing.T) {
	tr := NewTraffic(3)
	tr.OnSend(0, 1, evt(0, 1), false)
	tr.OnSend(0, 1, &wire.GossipPush{Gossiper: 0}, false)
	tr.OnSend(1, 2, &wire.GossipSubPull{Gossiper: 1}, false)
	tr.OnSend(1, 2, &wire.GossipPubPull{Gossiper: 1}, false)
	tr.OnSend(2, 0, &wire.GossipRandom{Gossiper: 2}, false)
	tr.OnSend(2, 0, &wire.Request{Requester: 2}, true)
	tr.OnSend(1, 0, &wire.Retransmit{Responder: 1, Events: []*wire.Event{evt(0, 1), evt(0, 2)}}, true)
	tr.OnSend(0, 1, &wire.Subscribe{Pattern: 1}, false)

	if got := tr.GossipTotal(); got != 5 {
		t.Fatalf("GossipTotal = %d, want 5", got)
	}
	if got := tr.EventTotal(); got != 3 {
		t.Fatalf("EventTotal = %d, want 3 (1 routed + 2 retransmitted)", got)
	}
	if got := tr.ControlTotal(); got != 1 {
		t.Fatalf("ControlTotal = %d, want 1", got)
	}
	if got := tr.GossipPerDispatcher(); !approx(got, 5.0/3) {
		t.Fatalf("GossipPerDispatcher = %v, want 5/3", got)
	}
	if got := tr.GossipEventRatio(); !approx(got, 5.0/3) {
		t.Fatalf("GossipEventRatio = %v, want 5/3", got)
	}
}

func TestTrafficLosses(t *testing.T) {
	tr := NewTraffic(2)
	tr.OnLoss(0, 1, evt(0, 1), false)
	tr.OnLoss(0, 1, evt(0, 2), false)
	tr.OnLoss(0, 1, &wire.GossipPush{}, false)
	if got := tr.Losses(wire.KindEvent); got != 2 {
		t.Fatalf("event losses = %d, want 2", got)
	}
	if got := tr.Losses(wire.KindGossipPush); got != 1 {
		t.Fatalf("gossip losses = %d, want 1", got)
	}
}

func TestTrafficEmptyRatios(t *testing.T) {
	tr := NewTraffic(0)
	if tr.GossipPerDispatcher() != 0 || tr.GossipEventRatio() != 0 {
		t.Fatal("empty traffic should report zero ratios")
	}
}

// TestTimeSeriesUnsortedPublishes exercises the defensive merge path of
// the slab-based TimeSeries: even if records were registered out of
// publish order, buckets must come out sorted and fully aggregated.
func TestTimeSeriesUnsortedPublishes(t *testing.T) {
	tr := NewDeliveryTracker(nil)
	at := []sim.Time{5 * time.Second, time.Second, 5 * time.Second, 3 * time.Second, time.Second}
	for i, a := range at {
		id := ident.EventID{Source: 1, Seq: uint32(i)}
		tr.OnPublish(id, 2, a)
		tr.OnDeliver(2, &wire.Event{ID: id}, false)
	}
	pts := tr.TimeSeries(time.Second)
	want := []Point{
		{Time: time.Second, Rate: 0.5, Expected: 4, Delivered: 2},
		{Time: 3 * time.Second, Rate: 0.5, Expected: 2, Delivered: 1},
		{Time: 5 * time.Second, Rate: 0.5, Expected: 4, Delivered: 2},
	}
	if len(pts) != len(want) {
		t.Fatalf("%d buckets, want %d: %+v", len(pts), len(want), pts)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, pts[i], want[i])
		}
	}
}
