package sim

import "math/rand"

// Ticker invokes a handler periodically in virtual time. It is the
// building block for gossip rounds: the paper has every dispatcher
// start a round each gossip interval T (Sec. IV-A), with dispatchers
// naturally desynchronized; Ticker supports a random initial phase for
// that purpose.
type Ticker struct {
	s       Scheduler
	period  Time
	fn      Handler
	stopped bool
	pending Canceler
}

// Scheduler is the scheduling surface a Ticker needs: both *Kernel
// (global affinity) and *Proc (node affinity) satisfy it, so gossip
// tickers ride on their node's Proc and shard with it.
type Scheduler interface {
	After(d Time, fn Handler) Canceler
}

// NewTicker schedules fn every period, with the first firing after
// phase. It panics when period is not positive.
func NewTicker(s Scheduler, period, phase Time, fn Handler) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{s: s, period: period, fn: fn}
	t.pending = s.After(phase, t.tick)
	return t
}

// NewJitteredTicker schedules fn every period with the initial phase
// drawn uniformly from [0, period), using rng.
func NewJitteredTicker(s Scheduler, period Time, rng *rand.Rand, fn Handler) *Ticker {
	phase := Time(rng.Int63n(int64(period)))
	return NewTicker(s, period, phase, fn)
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped {
		t.pending = t.s.After(t.period, t.tick)
	}
}

// SetPeriod changes the interval between subsequent firings. The
// currently pending firing keeps its scheduled time. Used by the
// adaptive gossip-interval extension.
func (t *Ticker) SetPeriod(period Time) {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t.period = period
}

// Period returns the current interval.
func (t *Ticker) Period() Time { return t.period }

// Stop cancels all future firings.
func (t *Ticker) Stop() {
	t.stopped = true
	t.pending.Cancel()
}
