// Command livebench measures the live transport over real UDP sockets:
// delivered events per second per process and p99 publish-to-deliver
// latency, for the goroutine-per-node baseline (NewNode, one socket per
// node) versus the batched sharded dispatcher (NewDispatcher).
//
// It is a multi-process harness: the parent re-executes itself into
// -procs child processes, each hosting -nodes live nodes; the overlay
// tree spans all of them, so events cross real process and socket
// boundaries. The parent wires the topology over a line-JSON pipe
// protocol, triggers a publish burst, polls deliveries until the
// network drains, and reports throughput computed from the children's
// own first/last delivery timestamps.
//
//	go run ./cmd/livebench -procs 2 -nodes 1000 -events 100
//
// runs the comparison and prints both modes plus the speedup. With
// -record the results are merged into the benchmark trajectory file
// (BENCH_hotpath.json) as LivePerNode / LiveDispatcher measurements on
// the latest entry — merged, not appended, so the live numbers ride the
// same trajectory point as the micro-benchmarks of the same PR.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"math/rand"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/live"
	"repro/internal/matching"
	"repro/internal/metrics"
	"repro/internal/topology"
	"repro/internal/wire"
)

const pattern = ident.PatternID(7)

type options struct {
	mode     string
	procs    int
	nodes    int
	events   int
	degree   int
	sockets  int
	batch    int
	noBatch  bool
	seed     int64
	timeout  time.Duration
	record   bool
	out      string
	label    string
	minRatio float64

	// child-only
	child bool
	first int
	count int
	epoch int64
}

func parseFlags() *options {
	o := &options{}
	flag.StringVar(&o.mode, "mode", "compare", "pernode, dispatcher, or compare (run both and report the speedup)")
	flag.IntVar(&o.procs, "procs", 2, "number of child processes")
	flag.IntVar(&o.nodes, "nodes", 1000, "live nodes per process")
	flag.IntVar(&o.events, "events", 100, "events published per process")
	flag.IntVar(&o.degree, "degree", 4, "overlay tree degree bound")
	flag.IntVar(&o.sockets, "sockets", 4, "dispatcher shard sockets per process")
	flag.IntVar(&o.batch, "batch", 128, "dispatcher datagrams per batched read/write")
	flag.BoolVar(&o.noBatch, "nobatchio", false, "dispatcher mode: force the portable transport (no recvmmsg/sendmmsg)")
	flag.Int64Var(&o.seed, "seed", 1, "topology and node seed")
	flag.DurationVar(&o.timeout, "timeout", 60*time.Second, "overall deadline per benchmarked mode")
	flag.BoolVar(&o.record, "record", false, "merge results into the trajectory file")
	flag.StringVar(&o.out, "out", "BENCH_hotpath.json", "trajectory file for -record")
	flag.StringVar(&o.label, "label", "", "label if -record must create a fresh entry (default livebench-<commit>)")
	flag.Float64Var(&o.minRatio, "min-ratio", 0, "compare mode: exit non-zero unless dispatcher/pernode events/s ≥ this")
	flag.BoolVar(&o.child, "child", false, "internal: run as a child process")
	flag.IntVar(&o.first, "first", 0, "internal: first hosted node ID")
	flag.IntVar(&o.count, "count", 0, "internal: hosted node count")
	flag.Int64Var(&o.epoch, "epoch", 0, "internal: shared epoch, unix nanoseconds")
	flag.Parse()
	return o
}

func main() {
	o := parseFlags()
	if o.child {
		if err := runChild(o); err != nil {
			fmt.Fprintf(os.Stderr, "livebench child: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := runParent(o); err != nil {
		fmt.Fprintf(os.Stderr, "livebench: %v\n", err)
		os.Exit(1)
	}
}

// ── pipe protocol ────────────────────────────────────────────────────
// One JSON object per line in each direction. The child answers every
// request in order; cmd selects the action.

type request struct {
	Cmd    string            `json:"cmd"`
	Dir    map[string]string `json:"dir,omitempty"`   // nodeID → UDP address
	Links  [][2]int          `json:"links,omitempty"` // overlay links touching this child
	Subs   []int             `json:"subs,omitempty"`  // node IDs that subscribe
	Events int               `json:"events,omitempty"`
}

type response struct {
	OK        bool              `json:"ok"`
	Err       string            `json:"err,omitempty"`
	Addrs     map[string]string `json:"addrs,omitempty"`
	Delivered uint64            `json:"delivered,omitempty"`
	P99Ns     int64             `json:"p99_ns,omitempty"`
	FirstNs   int64             `json:"first_ns,omitempty"`
	LastNs    int64             `json:"last_ns,omitempty"`
	MinPat    int               `json:"min_pat"`
}

// ── child ────────────────────────────────────────────────────────────

type childState struct {
	nodes []*live.Node
	disp  *live.Dispatcher

	delivered atomic.Uint64
	firstNs   atomic.Int64
	lastNs    atomic.Int64
	epoch     time.Time

	mu  sync.Mutex
	res *metrics.LatencyReservoir
}

func (c *childState) onDeliver(publishedAt int64) {
	now := int64(time.Since(c.epoch))
	c.delivered.Add(1)
	c.firstNs.CompareAndSwap(0, now)
	for {
		last := c.lastNs.Load()
		if now <= last || c.lastNs.CompareAndSwap(last, now) {
			break
		}
	}
	c.mu.Lock()
	c.res.Observe(time.Duration(now - publishedAt))
	c.mu.Unlock()
}

func runChild(o *options) error {
	st := &childState{
		epoch: time.Unix(0, o.epoch),
		res:   metrics.NewLatencyReservoir(4096, o.seed),
	}
	mkcfg := func(id int) live.Config {
		return live.Config{
			ID:        ident.NodeID(id),
			Algorithm: core.NoRecovery,
			Seed:      o.seed + int64(id),
			Epoch:     st.epoch,
			OnDeliver: func(ev *wire.Event, recovered bool) {
				st.onDeliver(ev.PublishedAt)
			},
		}
	}
	if o.mode == "dispatcher" {
		d, err := live.NewDispatcher(live.DispatcherConfig{
			Sockets:        o.sockets,
			Batch:          o.batch,
			DisableBatchIO: o.noBatch,
		})
		if err != nil {
			return err
		}
		st.disp = d
		defer d.Close()
		for i := 0; i < o.count; i++ {
			n, err := d.AddNode(mkcfg(o.first + i))
			if err != nil {
				return err
			}
			st.nodes = append(st.nodes, n)
		}
	} else {
		for i := 0; i < o.count; i++ {
			n, err := live.NewNode(mkcfg(o.first + i))
			if err != nil {
				return err
			}
			defer n.Close()
			st.nodes = append(st.nodes, n)
		}
	}

	enc := json.NewEncoder(os.Stdout)
	addrs := make(map[string]string, o.count)
	for _, n := range st.nodes {
		addrs[strconv.Itoa(int(n.ID()))] = n.Addr().String()
	}
	if err := enc.Encode(response{OK: true, Addrs: addrs}); err != nil {
		return err
	}

	byID := func(id int) *live.Node { return st.nodes[id-o.first] }
	mine := func(id int) bool { return id >= o.first && id < o.first+o.count }
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	for sc.Scan() {
		var req request
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			return err
		}
		switch req.Cmd {
		case "wire":
			dir := make(map[ident.NodeID]*net.UDPAddr, len(req.Dir))
			for idStr, as := range req.Dir {
				id, err := strconv.Atoi(idStr)
				if err != nil {
					return err
				}
				ua, err := net.ResolveUDPAddr("udp", as)
				if err != nil {
					return err
				}
				dir[ident.NodeID(id)] = ua
			}
			for _, n := range st.nodes {
				n.SetDirectory(dir)
			}
			for _, l := range req.Links {
				a, b := l[0], l[1]
				if mine(a) {
					byID(a).AddNeighbor(ident.NodeID(b), dir[ident.NodeID(b)])
				}
				if mine(b) {
					byID(b).AddNeighbor(ident.NodeID(a), dir[ident.NodeID(a)])
				}
			}
			for _, s := range req.Subs {
				byID(s).Subscribe(pattern)
			}
			if err := enc.Encode(response{OK: true}); err != nil {
				return err
			}
		case "publish":
			pub := st.nodes[0]
			for i := 0; i < req.Events; i++ {
				pub.Publish(matching.Content{pattern})
				if i%32 == 31 {
					runtime.Gosched() // let the receive side breathe on small machines
				}
			}
			if err := enc.Encode(response{OK: true}); err != nil {
				return err
			}
		case "stats":
			minPat := int(^uint(0) >> 1)
			for _, n := range st.nodes {
				if k := n.KnownPatternCount(); k < minPat {
					minPat = k
				}
			}
			st.mu.Lock()
			p99 := int64(st.res.Quantile(0.99))
			st.mu.Unlock()
			r := response{
				OK:        true,
				Delivered: st.delivered.Load(),
				P99Ns:     p99,
				FirstNs:   st.firstNs.Load(),
				LastNs:    st.lastNs.Load(),
				MinPat:    minPat,
			}
			if err := enc.Encode(r); err != nil {
				return err
			}
		case "quit":
			return enc.Encode(response{OK: true})
		default:
			return fmt.Errorf("unknown command %q", req.Cmd)
		}
	}
	return sc.Err()
}

// ── parent ───────────────────────────────────────────────────────────

type child struct {
	cmd  *exec.Cmd
	in   *json.Encoder
	out  *bufio.Scanner
	from int
	to   int // exclusive
}

func (c *child) call(req request) (response, error) {
	if err := c.in.Encode(req); err != nil {
		return response{}, err
	}
	return c.read()
}

func (c *child) read() (response, error) {
	if !c.out.Scan() {
		if err := c.out.Err(); err != nil {
			return response{}, err
		}
		return response{}, fmt.Errorf("child exited early")
	}
	var r response
	if err := json.Unmarshal(c.out.Bytes(), &r); err != nil {
		return response{}, err
	}
	if !r.OK {
		return r, fmt.Errorf("child error: %s", r.Err)
	}
	return r, nil
}

type result struct {
	mode       string
	delivered  uint64
	expected   uint64
	elapsed    time.Duration
	eventsPerS float64 // delivered events/s per process
	p99        time.Duration
}

func runParent(o *options) error {
	switch o.mode {
	case "pernode", "dispatcher":
		res, err := runMode(o, o.mode)
		if err != nil {
			return err
		}
		printResult(res)
		if o.record {
			return record(o, []result{res})
		}
		return nil
	case "compare":
		per, err := runMode(o, "pernode")
		if err != nil {
			return fmt.Errorf("pernode: %w", err)
		}
		printResult(per)
		dis, err := runMode(o, "dispatcher")
		if err != nil {
			return fmt.Errorf("dispatcher: %w", err)
		}
		printResult(dis)
		ratio := dis.eventsPerS / per.eventsPerS
		fmt.Printf("speedup: dispatcher %.2fx pernode (events/s per process)\n", ratio)
		if o.record {
			if err := record(o, []result{per, dis}); err != nil {
				return err
			}
		}
		if o.minRatio > 0 && ratio < o.minRatio {
			return fmt.Errorf("speedup %.2fx below required %.2fx", ratio, o.minRatio)
		}
		return nil
	default:
		return fmt.Errorf("unknown -mode %q", o.mode)
	}
}

func runMode(o *options, mode string) (result, error) {
	total := o.procs * o.nodes
	topo, err := topology.New(total, o.degree, rand.New(rand.NewSource(o.seed)))
	if err != nil {
		return result{}, err
	}
	links := topo.Links()
	epoch := time.Now().UnixNano()

	self, err := os.Executable()
	if err != nil {
		return result{}, err
	}
	var children []*child
	defer func() {
		for _, c := range children {
			_, _ = c.call(request{Cmd: "quit"})
			_ = c.cmd.Wait()
		}
	}()
	for p := 0; p < o.procs; p++ {
		first := p * o.nodes
		cmd := exec.Command(self,
			"-child", "-mode", mode,
			"-first", strconv.Itoa(first),
			"-count", strconv.Itoa(o.nodes),
			"-epoch", strconv.FormatInt(epoch, 10),
			"-sockets", strconv.Itoa(o.sockets),
			"-batch", strconv.Itoa(o.batch),
			"-seed", strconv.FormatInt(o.seed, 10),
			"-nobatchio="+strconv.FormatBool(o.noBatch),
		)
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return result{}, err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return result{}, err
		}
		if err := cmd.Start(); err != nil {
			return result{}, err
		}
		sc := bufio.NewScanner(stdout)
		sc.Buffer(make([]byte, 1<<20), 1<<26)
		children = append(children, &child{
			cmd: cmd, in: json.NewEncoder(stdin), out: sc,
			from: first, to: first + o.nodes,
		})
	}

	// Gather every node's address, then wire directory + overlay links +
	// subscriptions. The first node of each child publishes; everyone
	// else subscribes.
	dir := make(map[string]string, total)
	for _, c := range children {
		r, err := c.read()
		if err != nil {
			return result{}, err
		}
		for k, v := range r.Addrs {
			dir[k] = v
		}
	}
	isPublisher := func(id int) bool { return id%o.nodes == 0 }
	for _, c := range children {
		var cl [][2]int
		for _, l := range links {
			a, b := int(l.A), int(l.B)
			if (a >= c.from && a < c.to) || (b >= c.from && b < c.to) {
				cl = append(cl, [2]int{a, b})
			}
		}
		var subs []int
		for id := c.from; id < c.to; id++ {
			if !isPublisher(id) {
				subs = append(subs, id)
			}
		}
		if _, err := c.call(request{Cmd: "wire", Dir: dir, Links: cl, Subs: subs}); err != nil {
			return result{}, err
		}
	}

	// Wait for subscription propagation to flood the whole overlay.
	deadline := time.Now().Add(o.timeout)
	for {
		settled := true
		for _, c := range children {
			r, err := c.call(request{Cmd: "stats"})
			if err != nil {
				return result{}, err
			}
			if r.MinPat < 1 {
				settled = false
			}
		}
		if settled {
			break
		}
		if time.Now().After(deadline) {
			return result{}, fmt.Errorf("subscription propagation did not settle in %v", o.timeout)
		}
		time.Sleep(100 * time.Millisecond)
	}

	for _, c := range children {
		if _, err := c.call(request{Cmd: "publish", Events: o.events}); err != nil {
			return result{}, err
		}
	}

	// Poll until delivery stops growing (the burst drained or stalled).
	expected := uint64(o.procs*o.events) * uint64(total-o.procs)
	var lastSum uint64
	stable := 0
	var final []response
	for {
		time.Sleep(150 * time.Millisecond)
		var sum uint64
		var rs []response
		for _, c := range children {
			r, err := c.call(request{Cmd: "stats"})
			if err != nil {
				return result{}, err
			}
			sum += r.Delivered
			rs = append(rs, r)
		}
		if sum == expected {
			final = rs
			break
		}
		if sum == lastSum {
			if stable++; stable >= 6 {
				final = rs
				break
			}
		} else {
			stable = 0
		}
		lastSum = sum
		if time.Now().After(deadline) {
			final = rs
			break
		}
	}

	res := result{mode: mode, expected: expected}
	var firstNs, lastNs, p99 int64
	for _, r := range final {
		res.delivered += r.Delivered
		if r.FirstNs > 0 && (firstNs == 0 || r.FirstNs < firstNs) {
			firstNs = r.FirstNs
		}
		if r.LastNs > lastNs {
			lastNs = r.LastNs
		}
		if r.P99Ns > p99 {
			p99 = r.P99Ns
		}
	}
	if res.delivered == 0 || lastNs <= firstNs {
		return res, fmt.Errorf("no deliveries observed")
	}
	res.elapsed = time.Duration(lastNs - firstNs)
	res.eventsPerS = float64(res.delivered) / res.elapsed.Seconds() / float64(o.procs)
	res.p99 = time.Duration(p99)
	return res, nil
}

func printResult(r result) {
	fmt.Printf("%-11s %9d/%d delivered in %8v  %12.0f events/s/process  p99 %v\n",
		r.mode, r.delivered, r.expected, r.elapsed.Round(time.Millisecond), r.eventsPerS, r.p99.Round(time.Microsecond))
}

// record merges the results into the latest trajectory entry so live
// numbers and micro-benchmarks of the same PR share a data point; with
// no entries yet it creates one.
func record(o *options, rs []result) error {
	traj, err := bench.LoadTrajectory(o.out)
	if err != nil {
		return err
	}
	if len(traj) == 0 {
		label := o.label
		if label == "" {
			label = "livebench"
			if c := gitCommit(); c != "" {
				label = "livebench-" + c
			}
		}
		traj = append(traj, bench.Entry{
			Label:     label,
			Date:      time.Now().UTC().Format(time.RFC3339),
			Commit:    gitCommit(),
			GoVersion: runtime.Version(),
		})
	}
	e := &traj[len(traj)-1]
	if e.Benchmarks == nil {
		e.Benchmarks = make(map[string]bench.Measurement)
	}
	name := map[string]string{"pernode": "LivePerNode", "dispatcher": "LiveDispatcher"}
	for _, r := range rs {
		e.Benchmarks[name[r.mode]] = bench.Measurement{
			NsPerOp:          float64(r.elapsed.Nanoseconds()) / float64(r.delivered),
			Iterations:       int(r.delivered),
			LiveEventsPerSec: r.eventsPerS,
			P99LatencyNs:     float64(r.p99),
		}
	}
	if err := bench.SaveTrajectory(o.out, traj); err != nil {
		return err
	}
	fmt.Printf("merged live measurements into %q in %s\n", e.Label, o.out)
	return nil
}

func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
