package pubsub

import (
	"sort"

	"repro/internal/ident"
	"repro/internal/topology"
)

// InstallStableSubscriptions lays down local subscriptions and the
// corresponding routing tables on every node instantaneously, without
// exchanging messages. The paper's simulations run with stable
// subscription information (Sec. IV-A): subscriptions exist before the
// measurement starts, so their propagation is not simulated.
//
// subs[i] lists the patterns node i subscribes to. For every subscriber
// s of pattern p, every other node x gets a table entry (p → neighbor
// of x on the path toward s), which is exactly the state subscription
// forwarding converges to on a tree.
//
// The reference formulation — BFS from every subscriber, then touch
// every node — is O(N²·πmax) and alone dominated large-N setup (~20 s
// of a 10k-node run). This implementation computes the same tables in
// O(N·Π) with a down/up sweep per pattern: neighbor y of x is a
// direction for p iff y's side of the tree (with x removed) contains a
// subscriber of p. Row insertion order is reproduced exactly: the
// reference appends directions while sweeping subscribers in ascending
// node order, so a direction's rank at x is the minimum subscriber id
// in its side — the sweep computes those minima and inserts in that
// order, keeping every fixed-seed run bit-identical.
func InstallStableSubscriptions(topo *topology.Tree, nodes []*Node, subs [][]ident.PatternID) {
	n := topo.N()
	if len(nodes) != n || len(subs) != n {
		panic("pubsub: nodes/subs length must match topology size")
	}
	for i, nd := range nodes {
		nd.SetLocalInstant(subs[i])
	}

	// Group subscribers by pattern; iterating i ascending keeps each
	// list in ascending node order, which the order-reproducing sweep
	// below relies on.
	byPat := make(map[ident.PatternID][]ident.NodeID)
	for i, ps := range subs {
		for _, p := range ps {
			byPat[p] = append(byPat[p], ident.NodeID(i))
		}
	}
	pats := make([]ident.PatternID, 0, len(byPat))
	for p := range byPat {
		pats = append(pats, p)
	}
	sort.Slice(pats, func(i, j int) bool { return pats[i] < pats[j] })

	// One BFS forest for the whole install: order[] visits parents
	// before children within each component, roots are the smallest
	// ids. Reused across every pattern.
	const inf = int32(1 << 30)
	parent := make([]int32, n)
	order := make([]ident.NodeID, 0, n)
	for i := range parent {
		parent[i] = -2 // unvisited
	}
	for r := 0; r < n; r++ {
		if parent[r] != -2 {
			continue
		}
		parent[r] = -1
		order = append(order, ident.NodeID(r))
		for i := len(order) - 1; i < len(order); i++ {
			x := order[i]
			for _, y := range topo.Neighbors(x) {
				if parent[y] == -2 {
					parent[y] = int32(x)
					order = append(order, y)
				}
			}
		}
	}

	minDown := make([]int32, n) // min subscriber id in subtree(x)
	minUp := make([]int32, n)   // min subscriber id outside subtree(x)
	type keyed struct {
		key int32
		dir ident.NodeID
	}
	row := make([]keyed, 0, 8)
	// Patterns that got a row at each node, in ascending order (the
	// pats loop ascends): folded into each node's tableSet in one bulk
	// build at the end, instead of one copy-on-write spill Add per
	// (node, pattern).
	pend := make([][]ident.PatternID, n)

	for _, p := range pats {
		ss := byPat[p]
		for i := range minDown {
			minDown[i] = inf
		}
		for _, s := range ss {
			minDown[s] = int32(s)
		}
		// Bottom-up: children precede parents in reverse BFS order.
		for i := len(order) - 1; i >= 0; i-- {
			x := order[i]
			if pa := parent[x]; pa >= 0 && minDown[x] < minDown[pa] {
				minDown[pa] = minDown[x]
			}
		}
		// Top-down: minUp[c] folds the parent's up value, the parent
		// itself, and every sibling subtree. With bounded degree the
		// two-smallest trick beats prefix/suffix arrays: track the two
		// smallest contributions among {up, parent-local, children};
		// excluding child c leaves the smallest, or the second
		// smallest when c held it.
		for _, x := range order {
			up := inf
			if pa := parent[x]; pa >= 0 {
				up = minUp[x]
			} else {
				minUp[x] = inf
			}
			best, second := up, inf
			if selfSub(ss, x) { // x itself is in every child's up-set
				if int32(x) < best {
					best, second = int32(x), best
				} else if int32(x) < second {
					second = int32(x)
				}
			}
			for _, y := range topo.Neighbors(x) {
				if int32(y) == parent[x] {
					continue
				}
				if d := minDown[y]; d < best {
					best, second = d, best
				} else if d < second {
					second = d
				}
			}
			for _, y := range topo.Neighbors(x) {
				if int32(y) == parent[x] {
					continue
				}
				if minDown[y] == best {
					minUp[y] = second
				} else {
					minUp[y] = best
				}
			}
		}
		// Emit rows in ascending-minimum order, matching the reference
		// subscriber sweep.
		for _, x := range order {
			row = row[:0]
			for _, y := range topo.Neighbors(x) {
				var k int32
				if int32(y) == parent[x] {
					k = minUp[x]
				} else {
					k = minDown[y]
				}
				if k < inf {
					row = append(row, keyed{k, y})
				}
			}
			if len(row) == 0 {
				continue
			}
			// Insertion sort: rows are at most maxDegree entries and
			// the interface indirection of sort.Slice shows up at 20M
			// rows.
			for i := 1; i < len(row); i++ {
				for j := i; j > 0 && row[j].key < row[j-1].key; j-- {
					row[j], row[j-1] = row[j-1], row[j]
				}
			}
			nd := nodes[x]
			for _, e := range row {
				nd.addDirRow(p, e.dir)
			}
			pend[x] = append(pend[x], p)
		}
	}
	for x, nd := range nodes {
		nd.installRows(pend[x])
	}
}

// selfSub reports whether x appears in the ascending subscriber list.
func selfSub(ss []ident.NodeID, x ident.NodeID) bool {
	i := sort.Search(len(ss), func(i int) bool { return ss[i] >= x })
	return i < len(ss) && ss[i] == x
}
