package network

import (
	"testing"
	"time"

	"repro/internal/ident"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/wire"
)

// recorder is a Handler that records deliveries.
type recorder struct {
	got []delivery
}

type delivery struct {
	from ident.NodeID
	msg  wire.Message
	oob  bool
	at   sim.Time
}

type recHandler struct {
	r  *recorder
	k  *sim.Kernel
	id ident.NodeID
}

func (h *recHandler) HandleMessage(from ident.NodeID, msg wire.Message, oob bool) {
	h.r.got = append(h.r.got, delivery{from: from, msg: msg, oob: oob, at: h.k.Now()})
}

// counter observes sends and losses.
type counter struct {
	sends, losses int
	oobSends      int
}

func (c *counter) OnSend(_, _ ident.NodeID, _ wire.Message, oob bool) {
	c.sends++
	if oob {
		c.oobSends++
	}
}

func (c *counter) OnLoss(_, _ ident.NodeID, _ wire.Message, _ bool) { c.losses++ }

func setup(t *testing.T, cfg Config) (*sim.Kernel, *topology.Tree, *Network, *recorder) {
	t.Helper()
	k := sim.New(42)
	topo := topology.NewLine(4)
	rec := &recorder{}
	nw := New(k, topo, cfg, nil)
	for i := 0; i < 4; i++ {
		nw.Register(ident.NodeID(i), &recHandler{r: rec, k: k, id: ident.NodeID(i)})
	}
	return k, topo, nw, rec
}

func reliableCfg() Config {
	cfg := DefaultConfig()
	cfg.LossRate = 0
	cfg.OOBLossRate = 0
	return cfg
}

func TestSendDeliversToNeighbor(t *testing.T) {
	k, _, nw, rec := setup(t, reliableCfg())
	nw.Send(0, 1, &wire.Subscribe{Pattern: 3})
	k.Run(time.Second)
	if len(rec.got) != 1 {
		t.Fatalf("%d deliveries, want 1", len(rec.got))
	}
	d := rec.got[0]
	if d.from != 0 || d.oob {
		t.Fatalf("delivery = %+v, want from 0 on tree link", d)
	}
	if sub, ok := d.msg.(*wire.Subscribe); !ok || sub.Pattern != 3 {
		t.Fatalf("delivered %#v, want Subscribe{3}", d.msg)
	}
	// Latency: 200 bytes at 10 Mbit/s = 160µs tx + 100µs prop.
	want := 260 * time.Microsecond
	if d.at != want {
		t.Fatalf("delivered at %v, want %v", d.at, want)
	}
}

func TestSendToNonNeighborIsLost(t *testing.T) {
	k, _, nw, rec := setup(t, reliableCfg())
	nw.Send(0, 2, &wire.Subscribe{Pattern: 1}) // 0 and 2 not adjacent on the line
	k.Run(time.Second)
	if len(rec.got) != 0 {
		t.Fatalf("%d deliveries, want 0", len(rec.got))
	}
	if nw.Lost() != 1 {
		t.Fatalf("Lost = %d, want 1", nw.Lost())
	}
}

func TestFIFOSerializationQueues(t *testing.T) {
	k, _, nw, rec := setup(t, reliableCfg())
	// Two back-to-back messages on the same directed link: the second
	// waits for the first's transmission.
	nw.Send(0, 1, &wire.Subscribe{Pattern: 1})
	nw.Send(0, 1, &wire.Subscribe{Pattern: 2})
	k.Run(time.Second)
	if len(rec.got) != 2 {
		t.Fatalf("%d deliveries, want 2", len(rec.got))
	}
	if got, want := rec.got[0].at, 260*time.Microsecond; got != want {
		t.Fatalf("first delivery at %v, want %v", got, want)
	}
	if got, want := rec.got[1].at, 420*time.Microsecond; got != want {
		t.Fatalf("second delivery at %v, want %v (queued behind first)", got, want)
	}
}

func TestQueueingDisabled(t *testing.T) {
	cfg := reliableCfg()
	cfg.ModelQueueing = false
	k, _, nw, rec := setup(t, cfg)
	nw.Send(0, 1, &wire.Subscribe{Pattern: 1})
	nw.Send(0, 1, &wire.Subscribe{Pattern: 2})
	k.Run(time.Second)
	if rec.got[0].at != rec.got[1].at {
		t.Fatalf("deliveries at %v and %v, want simultaneous without queueing",
			rec.got[0].at, rec.got[1].at)
	}
}

func TestTrueMessageSizes(t *testing.T) {
	cfg := reliableCfg()
	cfg.MessageBytes = 0 // use true encoded size
	k, _, nw, rec := setup(t, cfg)
	msg := &wire.Subscribe{Pattern: 1} // 5 bytes = 4µs at 10 Mbit/s
	nw.Send(0, 1, msg)
	k.Run(time.Second)
	want := sim.Time(float64(msg.WireSize()*8)/10e6*float64(time.Second)) + cfg.PropDelay
	if rec.got[0].at != want {
		t.Fatalf("delivered at %v, want %v", rec.got[0].at, want)
	}
}

func TestLossRateDropsAboutEpsilon(t *testing.T) {
	cfg := reliableCfg()
	cfg.LossRate = 0.1
	k, _, nw, rec := setup(t, cfg)
	const msgs = 5000
	for i := 0; i < msgs; i++ {
		nw.Send(0, 1, &wire.Subscribe{Pattern: 1})
	}
	k.Run(time.Hour)
	got := float64(msgs-len(rec.got)) / msgs
	if got < 0.07 || got > 0.13 {
		t.Fatalf("observed loss rate %.3f, want ≈0.1", got)
	}
	if nw.Delivered() != uint64(len(rec.got)) {
		t.Fatalf("Delivered = %d, handler saw %d", nw.Delivered(), len(rec.got))
	}
}

func TestLinkBreakLosesInFlight(t *testing.T) {
	k, topo, nw, rec := setup(t, reliableCfg())
	nw.Send(0, 1, &wire.Subscribe{Pattern: 1})
	// Break the link while the message is in flight.
	k.At(100*time.Microsecond, func() {
		if err := topo.RemoveLink(0, 1); err != nil {
			t.Error(err)
		}
	})
	k.Run(time.Second)
	if len(rec.got) != 0 {
		t.Fatal("message delivered across a link that broke in flight")
	}
	if nw.Lost() != 1 {
		t.Fatalf("Lost = %d, want 1", nw.Lost())
	}
}

func TestLinkRecreationDropsInFlight(t *testing.T) {
	// A message in flight when its link breaks must not be delivered on
	// the link's next incarnation, even if that incarnation exists at
	// the original arrival time (new link = new connection).
	k, topo, nw, rec := setup(t, reliableCfg())
	nw.Send(0, 1, &wire.Subscribe{Pattern: 1})
	k.At(50*time.Microsecond, func() {
		if err := topo.RemoveLink(0, 1); err != nil {
			t.Error(err)
		}
	})
	k.At(100*time.Microsecond, func() {
		if err := topo.AddLink(0, 1); err != nil {
			t.Error(err)
		}
	})
	k.Run(time.Second)
	if len(rec.got) != 0 {
		t.Fatal("stale message delivered on a re-created link")
	}
	if nw.Lost() != 1 {
		t.Fatalf("Lost = %d, want 1", nw.Lost())
	}
}

func TestSendOOBIgnoresTopologyDistance(t *testing.T) {
	k, _, nw, rec := setup(t, reliableCfg())
	nw.SendOOB(0, 3, &wire.Request{Requester: 0})
	k.Run(time.Second)
	if len(rec.got) != 1 {
		t.Fatalf("%d deliveries, want 1", len(rec.got))
	}
	if !rec.got[0].oob {
		t.Fatal("delivery not marked out-of-band")
	}
	// Latency: base 200µs + 3 hops × 100µs + 160µs tx = 660µs.
	if got, want := rec.got[0].at, 660*time.Microsecond; got != want {
		t.Fatalf("OOB delivery at %v, want %v", got, want)
	}
}

func TestSendOOBWorksAcrossPartition(t *testing.T) {
	k, topo, nw, rec := setup(t, reliableCfg())
	if err := topo.RemoveLink(1, 2); err != nil {
		t.Fatal(err)
	}
	nw.SendOOB(0, 3, &wire.Request{Requester: 0})
	k.Run(time.Second)
	if len(rec.got) != 1 {
		t.Fatal("OOB message lost across overlay partition")
	}
}

func TestSendOOBSelfPanics(t *testing.T) {
	_, _, nw, _ := setup(t, reliableCfg())
	defer func() {
		if recover() == nil {
			t.Fatal("OOB self-send did not panic")
		}
	}()
	nw.SendOOB(2, 2, &wire.Request{Requester: 2})
}

func TestObserverCallbacks(t *testing.T) {
	k := sim.New(1)
	topo := topology.NewLine(3)
	obs := &counter{}
	cfg := reliableCfg()
	nw := New(k, topo, cfg, obs)
	rec := &recorder{}
	for i := 0; i < 3; i++ {
		nw.Register(ident.NodeID(i), &recHandler{r: rec, k: k})
	}
	nw.Send(0, 1, &wire.Subscribe{Pattern: 1})
	nw.Send(0, 2, &wire.Subscribe{Pattern: 1}) // non-neighbor → loss
	nw.SendOOB(0, 2, &wire.Request{Requester: 0})
	k.Run(time.Second)
	if obs.sends != 3 {
		t.Fatalf("OnSend fired %d times, want 3", obs.sends)
	}
	if obs.oobSends != 1 {
		t.Fatalf("OOB OnSend fired %d times, want 1", obs.oobSends)
	}
	if obs.losses != 1 {
		t.Fatalf("OnLoss fired %d times, want 1", obs.losses)
	}
}

func TestUnregisteredHandlerPanics(t *testing.T) {
	k := sim.New(1)
	topo := topology.NewLine(2)
	nw := New(k, topo, reliableCfg(), nil)
	nw.Register(0, &recHandler{r: &recorder{}, k: k})
	nw.Send(0, 1, &wire.Subscribe{Pattern: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("delivery to unregistered handler did not panic")
		}
	}()
	k.Run(time.Second)
}

func BenchmarkSend(b *testing.B) {
	k := sim.New(1)
	topo := topology.NewLine(2)
	nw := New(k, topo, reliableCfg(), nil)
	rec := &recorder{}
	nw.Register(0, &recHandler{r: rec, k: k})
	nw.Register(1, &recHandler{r: rec, k: k})
	msg := &wire.Subscribe{Pattern: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		nw.Send(0, 1, msg)
		if k.Pending() > 1024 {
			rec.got = rec.got[:0]
			k.RunAll()
		}
	}
	k.RunAll()
}

// TestRecreatedLinkDoesNotInheritBacklog is the regression test for the
// stale-link bug: a link that is removed and re-created (a new
// incarnation) must start with an empty FIFO queue. Before the fix, the
// per-link busy time survived RemoveLink, so post-repair messages under
// ModelQueueing were delayed by serialization queued on a connection
// that no longer existed.
func TestRecreatedLinkDoesNotInheritBacklog(t *testing.T) {
	cfg := reliableCfg()
	cfg.ModelQueueing = true
	cfg.MessageBytes = 125_000 // 1 Mbit => 100 ms serialization at 10 Mbit/s
	k, topo, nw, rec := setup(t, cfg)

	// Build a deep backlog on 0->1: five messages queue 500 ms of
	// serialization time.
	for i := 0; i < 5; i++ {
		nw.Send(0, 1, &wire.Subscribe{Pattern: 1})
	}

	// The link breaks and is immediately re-created.
	if err := topo.RemoveLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}

	// A message on the fresh link must serialize immediately: one
	// 100 ms transmission plus propagation, not 500 ms of phantom
	// backlog first.
	nw.Send(0, 1, &wire.Subscribe{Pattern: 2})
	k.Run(10 * time.Second)

	var fresh []delivery
	for _, d := range rec.got {
		if sub, ok := d.msg.(*wire.Subscribe); ok && sub.Pattern == 2 {
			fresh = append(fresh, d)
		}
	}
	if len(fresh) != 1 {
		t.Fatalf("%d deliveries of the post-repair message, want 1", len(fresh))
	}
	want := 100*time.Millisecond + cfg.PropDelay
	if fresh[0].at != want {
		t.Fatalf("post-repair delivery at %v, want %v (no inherited backlog)", fresh[0].at, want)
	}
}

// TestSurvivingLinkKeepsBacklogAcrossUnrelatedRemoval pins the flip
// side: removing one link at a node must not reset the FIFO backlog of
// its other links, even though the removal compacts the adjacency slots
// the dense queue state is keyed by.
func TestSurvivingLinkKeepsBacklogAcrossUnrelatedRemoval(t *testing.T) {
	cfg := reliableCfg()
	cfg.ModelQueueing = true
	cfg.MessageBytes = 125_000 // 100 ms serialization per message
	k := sim.New(42)
	topo := topology.NewStar(4) // 0 is connected to 1, 2, 3
	rec := &recorder{}
	nw := New(k, topo, cfg, nil)
	for i := 0; i < 4; i++ {
		nw.Register(ident.NodeID(i), &recHandler{r: rec, k: k, id: ident.NodeID(i)})
	}

	// Queue two messages on 0->2 (slot 1), then remove 0-1 (slot 0),
	// which compacts 2 into slot 0.
	nw.Send(0, 2, &wire.Subscribe{Pattern: 1})
	nw.Send(0, 2, &wire.Subscribe{Pattern: 1})
	if err := topo.RemoveLink(0, 1); err != nil {
		t.Fatal(err)
	}
	nw.Send(0, 2, &wire.Subscribe{Pattern: 2})
	k.Run(10 * time.Second)

	var last []delivery
	for _, d := range rec.got {
		if sub, ok := d.msg.(*wire.Subscribe); ok && sub.Pattern == 2 {
			last = append(last, d)
		}
	}
	if len(last) != 1 {
		t.Fatalf("%d deliveries of the third message, want 1", len(last))
	}
	want := 300*time.Millisecond + cfg.PropDelay // behind 200 ms of real backlog
	if last[0].at != want {
		t.Fatalf("third delivery at %v, want %v (backlog preserved across slot compaction)", last[0].at, want)
	}
}
