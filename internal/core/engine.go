package core

import (
	"fmt"
	"math/rand"
	"slices"

	"repro/internal/adapt"
	"repro/internal/cache"
	"repro/internal/ident"
	"repro/internal/pubsub"
	"repro/internal/sim"
	"repro/internal/wire"
)

// srcPattern keys the per-(source, pattern) loss-detection high-water
// marks.
type srcPattern struct {
	src ident.NodeID
	pat ident.PatternID
}

// Stats counts what one engine did. All counters are cumulative.
type Stats struct {
	// RoundsStarted counts gossip rounds that sent at least one digest.
	RoundsStarted uint64
	// RoundsSkipped counts rounds with nothing to gossip (pull rounds
	// with an empty Lost buffer, push rounds with an empty digest or no
	// eligible neighbor).
	RoundsSkipped uint64
	// LossesDetected counts sequence-gap detections.
	LossesDetected uint64
	// Recovered counts events newly delivered through recovery.
	Recovered uint64
	// DuplicateRecoveries counts retransmitted events that had already
	// been received.
	DuplicateRecoveries uint64
	// RequestsSent counts push request messages sent.
	RequestsSent uint64
	// RetransmitsServed counts events served from the local buffer.
	RetransmitsServed uint64
}

// Engine attaches one epidemic recovery algorithm to a dispatcher. It
// implements pubsub.Recovery.
type Engine struct {
	node *pubsub.Node
	p    *sim.Proc
	cfg  Config
	rng  *rand.Rand

	buf    *cache.Cache
	patIdx map[ident.PatternID]*ident.EventIDSet
	tagIdx map[wire.LostEntry]ident.EventID

	lost    *LostBuffer
	high    map[srcPattern]uint32
	routes  map[ident.NodeID][]ident.NodeID
	pending map[ident.EventID]sim.Time

	ticker *sim.Ticker
	stats  Stats

	// needPatIdx/needTagIdx gate index maintenance: push digests need
	// the per-pattern index, pull serving needs the per-tag index.
	needPatIdx bool
	needTagIdx bool

	// requestsSinceRound feeds the legacy adaptive-interval extension
	// under push, where the Lost buffer is unused.
	requestsSinceRound int

	// knobs is the coherent per-round snapshot of the live gossip
	// knobs. Every probabilistic decision of a round (and of the
	// handlers that run between rounds) reads this one value; it is
	// replaced only at round boundaries, so a mid-round adaptation can
	// never produce a torn read between the forward and pull phases.
	// For static engines it is fixed at construction from cfg.
	knobs adapt.Knobs

	// ctrl, when non-nil, is the closed-loop adaptive controller
	// (cfg.Adapt, or implied by Algorithm == Hybrid). obs observes its
	// round-boundary snapshots (the adaptation invariant monitor).
	ctrl *adapt.Controller
	obs  func(adapt.Snapshot)

	// Cumulative signal counters for the controller: delivered counts
	// every first-copy delivery (routed or recovered), pushMissing
	// counts events missing from received push digests (the loss
	// signal of pure-push engines, which never see seqno gaps).
	delivered   uint64
	pushMissing uint64
	// last* remember the previous observation to form deltas.
	lastDelivered uint64
	lastLost      uint64
	lastRecovered uint64
	lastLinkEpoch uint64
	lastObserveAt sim.Time

	// Reusable scratch buffers for the per-round and per-message hot
	// paths. They are only ever handed to callees that consume them
	// synchronously; anything embedded in an outgoing message is cloned
	// first (messages outlive the round — the network delivers them at
	// a later virtual time).
	patScratch  []ident.PatternID
	srcScratch  []ident.NodeID
	nbScratch   []ident.NodeID
	idScratch   []ident.EventID
	evScratch   []*wire.Event
	wantScratch []wire.LostEntry

	// pool, when non-nil, is where Release returns the scratch buffers
	// for reuse by a later engine on the same goroutine.
	pool *ScratchPool
}

var _ pubsub.Recovery = (*Engine)(nil)

// NewEngine builds a recovery engine for node. The engine installs
// itself as the node's Recovery hook. Use Start to begin gossiping.
func NewEngine(node *pubsub.Node, cfg Config) (*Engine, error) {
	return NewEngineIn(node, cfg, nil)
}

// NewEngineIn is NewEngine with a scratch pool: the engine's reusable
// round buffers are acquired from pool (when non-nil) and handed back
// by Release, so a sweep worker building engines run after run stops
// re-growing them from nil. The pool must belong to the goroutine that
// runs the engine.
func NewEngineIn(node *pubsub.Node, cfg Config, pool *ScratchPool) (*Engine, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	if cfg.Algorithm == NoRecovery {
		return nil, fmt.Errorf("core: %v installs no engine; use pubsub.NopRecovery", cfg.Algorithm)
	}
	p := node.Proc()
	rng := p.NewStream(0x636f7265 + int64(node.ID())) // "core" + node
	e := &Engine{
		node: node,
		p:    p,
		cfg:  cfg,
		rng:  rng,

		needPatIdx: cfg.Algorithm == Push || cfg.Algorithm == Hybrid,
		needTagIdx: cfg.Algorithm.NeedsSeqTags(),

		knobs: adapt.Knobs{
			PForward: cfg.PForward,
			PSource:  cfg.PSource,
			Fanout:   1,
			Interval: cfg.GossipInterval,
		},

		pool: pool,
	}
	if cfg.Adapt != nil {
		e.ctrl = adapt.New(cfg.Adapt.Normalized(cfg.GossipInterval), e.knobs, cfg.Algorithm == Hybrid)
		e.knobs = e.ctrl.Knobs()
		e.lastLinkEpoch = node.LinkEpoch()
		e.lastObserveAt = p.Now()
	}
	if pool != nil {
		// Recycle the previous engine's structures: the cache and Lost
		// buffer are emptied and re-targeted at this config, the maps
		// come back cleared but with their buckets intact. Behavior is
		// identical to freshly built state — nothing observable survives
		// a Reset/clear.
		s := pool.get()
		e.patScratch, e.srcScratch, e.nbScratch = s.pat, s.src, s.nb
		e.idScratch, e.evScratch, e.wantScratch = s.id, s.ev, s.want
		e.buf, e.lost = s.buf, s.lost
		e.patIdx, e.tagIdx = s.patIdx, s.tagIdx
		e.high, e.routes, e.pending = s.high, s.routes, s.pending
	}
	if e.buf != nil {
		e.buf.Reset(cfg.BufferSize, cfg.BufferPolicy, rng)
	} else {
		e.buf = cache.New(cfg.BufferSize, cfg.BufferPolicy, rng)
	}
	if e.lost != nil {
		e.lost.Reset(cfg.LostCapacity, cfg.LostTTL)
	} else {
		e.lost = NewLostBuffer(cfg.LostCapacity, cfg.LostTTL)
	}
	if e.patIdx == nil {
		e.patIdx = make(map[ident.PatternID]*ident.EventIDSet)
	}
	if e.tagIdx == nil {
		e.tagIdx = make(map[wire.LostEntry]ident.EventID)
	}
	if e.high == nil {
		e.high = make(map[srcPattern]uint32)
	}
	if e.routes == nil {
		e.routes = make(map[ident.NodeID][]ident.NodeID)
	}
	if e.pending == nil {
		e.pending = make(map[ident.EventID]sim.Time)
	}
	e.buf.SetOnEvict(e.unindex)
	node.SetRecovery(e)
	return e, nil
}

// Release returns the engine's scratch buffers to the pool it was built
// with. The engine must not be used afterwards. A no-op for engines
// built without a pool.
func (e *Engine) Release() {
	if e.pool == nil {
		return
	}
	e.pool.put(engineScratch{
		pat: e.patScratch, src: e.srcScratch, nb: e.nbScratch,
		id: e.idScratch, ev: e.evScratch, want: e.wantScratch,
		buf: e.buf, lost: e.lost,
		patIdx: e.patIdx, tagIdx: e.tagIdx,
		high: e.high, routes: e.routes, pending: e.pending,
	})
	e.patScratch, e.srcScratch, e.nbScratch = nil, nil, nil
	e.idScratch, e.evScratch, e.wantScratch = nil, nil, nil
	e.buf, e.lost = nil, nil
	e.patIdx, e.tagIdx = nil, nil
	e.high, e.routes, e.pending = nil, nil, nil
	e.pool = nil
}

// Start begins periodic gossip rounds, desynchronized by a random
// initial phase within one interval.
func (e *Engine) Start() {
	if e.ticker != nil {
		panic("core: engine already started")
	}
	// An adaptive engine restarts at its current adapted period (the
	// controller's state survives a Stop/Start cycle — the knobs are
	// this engine's tuning, not the crashed process's volatile state).
	e.ticker = sim.NewJitteredTicker(e.p, e.knobs.Interval, e.rng, e.round)
}

// Stop cancels future gossip rounds. A stopped engine can be started
// again (fault injection pauses gossip across a dispatcher's downtime);
// the restart begins a fresh ticker, so an adaptively adjusted interval
// resets to the configured one — like a process that lost its volatile
// tuning state.
func (e *Engine) Stop() {
	if e.ticker != nil {
		e.ticker.Stop()
		e.ticker = nil
	}
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats { return e.stats }

// Knobs returns the engine's current coherent knob snapshot.
func (e *Engine) Knobs() adapt.Knobs { return e.knobs }

// AdaptStats returns the adaptive controller's trajectory summary;
// ok is false for static engines.
func (e *Engine) AdaptStats() (adapt.Stats, bool) {
	if e.ctrl == nil {
		return adapt.Stats{}, false
	}
	return e.ctrl.Stats(), true
}

// SetAdaptObserver installs a hook that sees every round-boundary
// controller snapshot (the adaptation invariant monitor). A no-op on
// static engines.
func (e *Engine) SetAdaptObserver(fn func(adapt.Snapshot)) {
	if e.ctrl != nil {
		e.obs = fn
	}
}

// BufferLen returns the current event-buffer occupancy.
func (e *Engine) BufferLen() int { return e.buf.Len() }

// LostLen returns the number of outstanding Lost entries.
func (e *Engine) LostLen() int { return e.lost.Len() }

// GossipInterval returns the current interval (it changes over time
// under the adaptive extension).
func (e *Engine) GossipInterval() sim.Time {
	if e.ticker != nil {
		return e.ticker.Period()
	}
	return e.cfg.GossipInterval
}

// OnPublish implements pubsub.Recovery: published events are cached at
// the source (required by publisher-based pull and useful to all
// variants).
func (e *Engine) OnPublish(ev *wire.Event) {
	e.index(ev)
}

// OnDeliver implements pubsub.Recovery: delivered events are cached,
// their sequence tags drive loss detection, and their recorded route
// refreshes the Routes buffer.
func (e *Engine) OnDeliver(ev *wire.Event, _ ident.NodeID) {
	e.delivered++
	e.index(ev)
	if e.cfg.Algorithm.NeedsSeqTags() {
		e.detect(ev)
	}
	if e.cfg.Algorithm.NeedsRoutes() && len(ev.Route) > 0 {
		e.routes[ev.ID.Source] = ev.Route
	}
}

// index buffers ev and maintains the pattern and tag indices.
func (e *Engine) index(ev *wire.Event) {
	if e.buf.Has(ev.ID) {
		return
	}
	e.buf.Put(ev)
	if e.needPatIdx {
		for _, p := range ev.Content {
			set, ok := e.patIdx[p]
			if !ok {
				set = ident.NewEventIDSet(8)
				e.patIdx[p] = set
			}
			set.Add(ev.ID)
		}
	}
	if e.needTagIdx {
		for _, t := range ev.Tags {
			e.tagIdx[wire.LostEntry{Source: ev.ID.Source, Pattern: t.Pattern, Seq: t.Seq}] = ev.ID
		}
	}
}

// unindex drops the index entries of an evicted event.
func (e *Engine) unindex(ev *wire.Event) {
	if e.needPatIdx {
		for _, p := range ev.Content {
			if set, ok := e.patIdx[p]; ok {
				set.Remove(ev.ID)
			}
		}
	}
	if e.needTagIdx {
		for _, t := range ev.Tags {
			delete(e.tagIdx, wire.LostEntry{Source: ev.ID.Source, Pattern: t.Pattern, Seq: t.Seq})
		}
	}
}

// detect runs sequence-gap loss detection (paper Sec. III-B, "Pull"):
// an event whose per-(source, pattern) sequence number exceeds the
// expected one reveals the loss of every event in between.
func (e *Engine) detect(ev *wire.Event) {
	now := e.p.Now()
	for _, tag := range ev.Tags {
		if !e.node.IsLocal(tag.Pattern) {
			continue
		}
		key := srcPattern{src: ev.ID.Source, pat: tag.Pattern}
		high := e.high[key]
		switch {
		case tag.Seq > high:
			for q := high + 1; q < tag.Seq; q++ {
				e.lost.Add(wire.LostEntry{Source: ev.ID.Source, Pattern: tag.Pattern, Seq: q}, now)
				e.stats.LossesDetected++
			}
			e.high[key] = tag.Seq
		default:
			// A late or recovered event fills its gap; the time since
			// its detection is a recovery-latency sample.
			entry := wire.LostEntry{Source: ev.ID.Source, Pattern: tag.Pattern, Seq: tag.Seq}
			if e.ctrl != nil {
				if at, ok := e.lost.DetectedAt(entry); ok {
					e.ctrl.ObserveLatency(now - at)
				}
			}
			e.lost.Remove(entry)
		}
	}
}

// RunRound executes one gossip round immediately, outside the ticker.
// It exists for benchmarks and tests that drive rounds explicitly; in
// normal operation rounds are driven by Start.
func (e *Engine) RunRound() { e.round() }

// round runs one gossip round: the effective algorithm (a hybrid
// engine dispatches as push or combined pull depending on the
// controller's mode) initiates gossip knobs.Fanout times, then the
// controller observes the round and publishes the next knob snapshot.
func (e *Engine) round() {
	alg := e.cfg.Algorithm
	if alg == Hybrid {
		if e.ctrl.Mode() == adapt.ModePush {
			alg = Push
		} else {
			alg = CombinedPull
		}
	}
	var sent bool
	for i := 0; i < e.knobs.Fanout; i++ {
		if e.dispatchOnce(alg) {
			sent = true
		}
	}
	if sent {
		e.stats.RoundsStarted++
	} else {
		e.stats.RoundsSkipped++
	}
	if e.ctrl != nil {
		e.observe()
	} else {
		e.adapt(sent)
	}
	e.sweepPending()
}

// dispatchOnce initiates one gossip exchange of the given effective
// algorithm. When the controller has engaged the random-walk
// degradation, routed pull digests fall back to random walks — the
// routing state they rely on is evidently stale.
func (e *Engine) dispatchOnce(alg Algorithm) bool {
	switch alg {
	case Push:
		return e.gossipPush()
	case SubscriberPull:
		if e.knobs.Walk {
			return e.gossipRandom()
		}
		return e.gossipSubPull()
	case PublisherPull:
		return e.gossipPubPull()
	case CombinedPull:
		if e.knobs.Walk {
			return e.gossipRandom()
		}
		if e.rng.Float64() < e.knobs.PSource {
			return e.gossipPubPull() || e.gossipSubPull()
		}
		return e.gossipSubPull() || e.gossipPubPull()
	case RandomPull:
		return e.gossipRandom()
	}
	return false
}

// observe closes the control loop at the round boundary: form the
// signal deltas since the previous boundary, fold them into the
// estimator, and install the controller's next knob snapshot.
func (e *Engine) observe() {
	now := e.p.Now()
	lostCum := e.stats.LossesDetected
	if !e.cfg.Algorithm.NeedsSeqTags() {
		// Pure push never sees seqno gaps; missing events in received
		// push digests are its loss evidence.
		lostCum = e.pushMissing
	}
	epoch := e.node.LinkEpoch()
	sig := adapt.Signals{
		Elapsed:     now - e.lastObserveAt,
		Delivered:   e.delivered - e.lastDelivered,
		Lost:        lostCum - e.lastLost,
		Recovered:   e.stats.Recovered - e.lastRecovered,
		Outstanding: e.lost.Len(),
		LinkChanges: epoch - e.lastLinkEpoch,
	}
	e.lastObserveAt = now
	e.lastDelivered = e.delivered
	e.lastLost = lostCum
	e.lastRecovered = e.stats.Recovered
	e.lastLinkEpoch = epoch

	snap := e.ctrl.Observe(now, sig)
	e.knobs = snap.Knobs
	if e.ticker != nil {
		e.ticker.SetPeriod(snap.Knobs.Interval)
	}
	if e.obs != nil {
		e.obs(snap)
	}
}

// adapt implements the adaptive gossip-interval extension: shrink the
// interval while recovery work exists, relax it while idle.
func (e *Engine) adapt(sent bool) {
	ad := e.cfg.Adaptive
	if ad == nil || e.ticker == nil {
		return
	}
	busy := sent
	if e.cfg.Algorithm == Push {
		busy = e.requestsSinceRound > 0
	}
	e.requestsSinceRound = 0
	period := e.ticker.Period()
	if busy {
		period = sim.Time(float64(period) * ad.ShrinkFactor)
		if period < ad.Min {
			period = ad.Min
		}
	} else {
		period = sim.Time(float64(period) * ad.GrowFactor)
		if period > ad.Max {
			period = ad.Max
		}
	}
	e.ticker.SetPeriod(period)
}

// gossipPush starts a push round: pick a random pattern from the whole
// subscription table, send a positive digest of the cached events
// matching it toward the pattern's subscribers.
func (e *Engine) gossipPush() bool {
	ps := e.node.KnownPatterns()
	if len(ps) == 0 {
		return false
	}
	p := ps[e.rng.Intn(len(ps))]
	set, ok := e.patIdx[p]
	if !ok || set.Len() == 0 {
		return false
	}
	msg := &wire.GossipPush{
		Gossiper: e.node.ID(),
		Pattern:  p,
		Digest:   set.Sorted(),
	}
	return e.forwardPattern(msg, p, ident.None)
}

// forwardPattern routes a pattern-labelled gossip message like an event
// matching p, thinning to each eligible neighbor with probability
// PForward (read from the coherent per-round knob snapshot).
func (e *Engine) forwardPattern(msg wire.Message, p ident.PatternID, from ident.NodeID) bool {
	sent := false
	for _, nb := range e.node.InterestDirections(p) {
		if nb == from {
			continue
		}
		if e.rng.Float64() < e.knobs.PForward {
			e.node.SendTree(nb, msg)
			sent = true
		}
	}
	return sent
}

// gossipSubPull starts a subscriber-based pull round: pick a locally
// subscribed pattern with outstanding losses and gossip a negative
// digest toward its other subscribers.
//
// The candidate set is the intersection of two bitsets: local
// subscriptions and patterns with outstanding losses. Because bitset
// iteration ascends like the sorted lists it replaced, the i-th
// candidate is the same pattern the slice scan would have produced,
// so the rng draw picks identically and fixed-seed traces are
// unchanged.
func (e *Engine) gossipSubPull() bool {
	now := e.p.Now()
	cand := e.lost.PatternSet(now).Intersect(e.node.LocalPatternSet())
	n := cand.Len()
	if n == 0 {
		return false
	}
	p := cand.At(e.rng.Intn(n))
	msg := &wire.GossipSubPull{
		Gossiper: e.node.ID(),
		Pattern:  p,
		Wanted:   e.lost.ForPattern(p, now),
	}
	return e.forwardPattern(msg, p, ident.None)
}

// gossipPubPull starts a publisher-based pull round: pick a source with
// outstanding losses and a known route, and send a negative digest back
// along that route toward the publisher.
func (e *Engine) gossipPubPull() bool {
	now := e.p.Now()
	candidates := e.srcScratch[:0]
	for _, s := range e.lost.Sources(now) {
		if len(e.routes[s]) > 0 {
			candidates = append(candidates, s)
		}
	}
	e.srcScratch = candidates
	if len(candidates) == 0 {
		return false
	}
	s := candidates[e.rng.Intn(len(candidates))]
	route := e.routes[s]
	msg := &wire.GossipPubPull{
		Gossiper: e.node.ID(),
		Source:   s,
		Wanted:   e.lost.ForSource(s, now),
		Route:    route,
		Next:     uint16(len(route) - 1),
	}
	e.node.SendTree(route[len(route)-1], msg)
	return true
}

// gossipRandom starts a random-pull round: the full negative digest
// walks the tree at random.
func (e *Engine) gossipRandom() bool {
	now := e.p.Now()
	wanted := e.lost.All(now)
	if len(wanted) == 0 {
		return false
	}
	nbs := e.node.Neighbors()
	if len(nbs) == 0 {
		return false
	}
	msg := &wire.GossipRandom{Gossiper: e.node.ID(), Wanted: wanted}
	e.node.SendTree(nbs[e.rng.Intn(len(nbs))], msg)
	return true
}

// HandleRecovery implements pubsub.Recovery.
func (e *Engine) HandleRecovery(from ident.NodeID, msg wire.Message, oob bool) {
	switch m := msg.(type) {
	case *wire.GossipPush:
		e.onGossipPush(from, m)
	case *wire.GossipSubPull:
		e.onGossipSubPull(from, m)
	case *wire.GossipPubPull:
		e.onGossipPubPull(m)
	case *wire.GossipRandom:
		e.onGossipRandom(from, m)
	case *wire.Request:
		e.onRequest(m)
	case *wire.Retransmit:
		e.onRetransmit(m)
	default:
		panic(fmt.Sprintf("core: unexpected message %v at %v (oob=%v)", msg.Kind(), e.node.ID(), oob))
	}
}

// onGossipPush diffs the positive digest against the received set and
// requests missing events from the gossiper out-of-band, then keeps the
// digest moving toward the pattern's other subscribers.
func (e *Engine) onGossipPush(from ident.NodeID, m *wire.GossipPush) {
	if e.node.IsLocal(m.Pattern) {
		now := e.p.Now()
		missing := e.idScratch[:0]
		for _, id := range m.Digest {
			if e.node.HasReceived(id) {
				continue
			}
			if at, ok := e.pending[id]; ok && now-at <= e.cfg.PendingTTL {
				continue
			}
			e.pending[id] = now
			missing = append(missing, id)
		}
		e.idScratch = missing
		if len(missing) > 0 {
			e.pushMissing += uint64(len(missing))
			e.stats.RequestsSent++
			// The request outlives this handler; it gets its own copy.
			e.node.SendOOB(m.Gossiper, &wire.Request{Requester: e.node.ID(), IDs: slices.Clone(missing)})
		}
	}
	// Mode discipline applies to propagation, not consumption: a hybrid
	// node that has switched to pull still harvests the digests it
	// receives (above), but refuses to amplify them. On cyclic overlays
	// the un-deduplicated digest flood is self-sustaining — every copy
	// spawns ~(degree-1)·PForward copies per hop — so storms launched
	// before a mode switch would otherwise saturate the FIFO links for
	// the rest of the run.
	if e.ctrl != nil && e.ctrl.Mode() == adapt.ModePull {
		return
	}
	e.forwardPattern(m, m.Pattern, from)
}

// onGossipSubPull serves wanted events from the local buffer (this node
// need not subscribe to the gossiped pattern: it may cache the events
// because they match a different pattern) and forwards the rest of the
// digest.
func (e *Engine) onGossipSubPull(from ident.NodeID, m *wire.GossipSubPull) {
	remaining := e.serve(m.Gossiper, m.Wanted)
	if len(remaining) == 0 {
		return
	}
	// Same discipline as the push damper below: a node whose
	// controller has degraded to random walks considers the routing
	// state these digests follow stale — it serves what it can but
	// refuses to amplify the routed flood. Sub-pull digests have no
	// duplicate suppression, so on cyclic overlays each re-forward
	// spawns ~(degree-1)·PForward copies and the flood is
	// self-sustaining; walk-mode nodes are exactly the ones observing
	// that machinery fail.
	if e.knobs.Walk {
		return
	}
	fwd := &wire.GossipSubPull{Gossiper: m.Gossiper, Pattern: m.Pattern, Wanted: slices.Clone(remaining)}
	e.forwardPattern(fwd, m.Pattern, from)
}

// onGossipPubPull serves wanted events and walks the message one hop
// further along the recorded route toward the publisher.
func (e *Engine) onGossipPubPull(m *wire.GossipPubPull) {
	remaining := e.serve(m.Gossiper, m.Wanted)
	if len(remaining) == 0 {
		return
	}
	i := int(m.Next)
	if i <= 0 || i >= len(m.Route) {
		return // reached the publisher (or a malformed route)
	}
	fwd := &wire.GossipPubPull{
		Gossiper: m.Gossiper,
		Source:   m.Source,
		Wanted:   slices.Clone(remaining),
		Route:    m.Route,
		Next:     uint16(i - 1),
	}
	// The next hop was a neighbor when the route was recorded; if the
	// topology changed since, the send is dropped by the network layer
	// (the paper accepts exactly this risk for publisher-based pull).
	e.node.SendTree(m.Route[i-1], fwd)
}

// onGossipRandom serves wanted events and continues the random walk
// with probability PForward.
func (e *Engine) onGossipRandom(from ident.NodeID, m *wire.GossipRandom) {
	remaining := e.serve(m.Gossiper, m.Wanted)
	if len(remaining) == 0 {
		return
	}
	if e.rng.Float64() >= e.knobs.PForward {
		return
	}
	nbs := e.nbScratch[:0]
	for _, nb := range e.node.Neighbors() {
		if nb != from && nb != m.Gossiper {
			nbs = append(nbs, nb)
		}
	}
	e.nbScratch = nbs
	if len(nbs) == 0 {
		return
	}
	fwd := &wire.GossipRandom{Gossiper: m.Gossiper, Wanted: slices.Clone(remaining)}
	e.node.SendTree(nbs[e.rng.Intn(len(nbs))], fwd)
}

// serve sends the wanted events present in the local buffer back to the
// gossiper out-of-band and returns the entries still missing. The
// returned slice is engine-owned scratch, valid until the next serve
// call; callers embedding it in a message must clone it.
func (e *Engine) serve(gossiper ident.NodeID, wanted []wire.LostEntry) []wire.LostEntry {
	if gossiper == e.node.ID() {
		// A stale route or random walk brought our own digest back.
		return nil
	}
	events := e.evScratch[:0]
	remaining := e.wantScratch[:0]
	for _, w := range wanted {
		id, ok := e.tagIdx[w]
		if !ok {
			remaining = append(remaining, w)
			continue
		}
		ev := e.buf.Get(id)
		if ev == nil {
			delete(e.tagIdx, w) // stale index entry
			remaining = append(remaining, w)
			continue
		}
		// Several wanted tags can map to one event; a linear scan over
		// the handful collected so far replaces the old per-call map.
		if !containsEvent(events, id) {
			events = append(events, ev)
		}
	}
	e.evScratch = events
	e.wantScratch = remaining
	if len(events) > 0 {
		e.stats.RetransmitsServed += uint64(len(events))
		e.node.SendOOB(gossiper, &wire.Retransmit{Responder: e.node.ID(), Events: slices.Clone(events)})
	}
	return remaining
}

func containsEvent(events []*wire.Event, id ident.EventID) bool {
	for _, ev := range events {
		if ev.ID == id {
			return true
		}
	}
	return false
}

// onRequest serves a push request from the local buffer.
func (e *Engine) onRequest(m *wire.Request) {
	e.requestsSinceRound++
	events := e.evScratch[:0]
	for _, id := range m.IDs {
		if ev := e.buf.Get(id); ev != nil {
			events = append(events, ev)
		}
	}
	e.evScratch = events
	if len(events) == 0 {
		return
	}
	e.stats.RetransmitsServed += uint64(len(events))
	e.node.SendOOB(m.Requester, &wire.Retransmit{Responder: e.node.ID(), Events: slices.Clone(events)})
}

// onRetransmit integrates recovered events: deliver locally, cache,
// and feed loss detection (a recovered event can itself reveal older
// gaps).
func (e *Engine) onRetransmit(m *wire.Retransmit) {
	for _, ev := range m.Events {
		delete(e.pending, ev.ID)
		if !e.node.DeliverRecovered(ev) {
			e.stats.DuplicateRecoveries++
			continue
		}
		e.stats.Recovered++
		e.delivered++
		e.index(ev)
		if e.cfg.Algorithm.NeedsSeqTags() {
			e.detect(ev)
		}
	}
}

// sweepPending drops expired entries from the pending-request table so
// it cannot grow without bound.
func (e *Engine) sweepPending() {
	if len(e.pending) < 1024 {
		return
	}
	now := e.p.Now()
	for id, at := range e.pending {
		if now-at > e.cfg.PendingTTL {
			delete(e.pending, id)
		}
	}
}
