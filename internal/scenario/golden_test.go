package scenario

import (
	"testing"
	"time"

	"repro/internal/core"
)

// goldenMetrics is the exact metric output of one fixed-seed run,
// captured from the pre-pooling seed implementation (kernel entries
// allocated per event, map-based link queue state, map-of-pointers
// delivery tracker). The allocation-lean hot paths must reproduce these
// values bit for bit: pooling, dense queue slots, and the record slab
// are pure representation changes with no observable effect on the
// simulation.
type goldenMetrics struct {
	alg            core.Algorithm
	reconfig       time.Duration
	rate           float64
	recoveredShare float64
	receivers      float64
	published      uint64
	expected       uint64
	delivered      uint64
	recovered      uint64
	kernelEvents   uint64
	reconfigs      uint64
	buckets        int
}

// TestGoldenMetricsMatchSeedImplementation asserts byte-identical
// metric output between the current hot paths and the seed
// implementation for seed 42. If this test fails after a performance
// change, the change altered simulation behavior, not just its cost.
//
// The golden values were recorded by running the seed implementation
// (commit 878488d) with exactly the parameters below.
func TestGoldenMetricsMatchSeedImplementation(t *testing.T) {
	golden := []goldenMetrics{
		{core.NoRecovery, 0, 0.6709129511677282, 0, 1.9624999999999999, 776, 1530, 1021, 0, 3925, 0, 20},
		{core.Push, 0, 0.78025477707006374, 0.17414965986394557, 1.9624999999999999, 776, 1530, 1199, 180, 8693, 0, 20},
		{core.CombinedPull, 0, 0.79087048832271767, 0.1395973154362416, 1.9624999999999999, 776, 1530, 1186, 145, 6568, 0, 20},
		{core.NoRecovery, 250 * time.Millisecond, 0.61252653927813161, 0, 1.9624999999999999, 776, 1530, 938, 0, 5257, 8, 20},
		{core.Push, 250 * time.Millisecond, 0.74097664543524411, 0.12607449856733524, 1.9624999999999999, 776, 1530, 1088, 137, 9956, 8, 20},
		{core.CombinedPull, 250 * time.Millisecond, 0.73673036093418254, 0.14265129682997119, 1.9624999999999999, 776, 1530, 1084, 134, 7843, 8, 20},
	}
	for _, g := range golden {
		g := g
		name := g.alg.String()
		if g.reconfig > 0 {
			name += "-reconfig"
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p := DefaultParams()
			p.Seed = 42
			p.N = 25
			p.Duration = 2 * time.Second
			p.MeasureFrom = 300 * time.Millisecond
			p.MeasureTo = 1500 * time.Millisecond
			p.PublishRate = 15
			p.ReconfigInterval = g.reconfig
			p.Algorithm = g.alg
			p.Gossip = core.DefaultConfig(g.alg)
			r, err := Run(p)
			if err != nil {
				t.Fatal(err)
			}
			if r.DeliveryRate != g.rate {
				t.Errorf("DeliveryRate = %.17g, want %.17g", r.DeliveryRate, g.rate)
			}
			if r.RecoveredShare != g.recoveredShare {
				t.Errorf("RecoveredShare = %.17g, want %.17g", r.RecoveredShare, g.recoveredShare)
			}
			if r.ReceiversPerEvent != g.receivers {
				t.Errorf("ReceiversPerEvent = %.17g, want %.17g", r.ReceiversPerEvent, g.receivers)
			}
			if r.EventsPublished != g.published {
				t.Errorf("EventsPublished = %d, want %d", r.EventsPublished, g.published)
			}
			if r.ExpectedDeliveries != g.expected {
				t.Errorf("ExpectedDeliveries = %d, want %d", r.ExpectedDeliveries, g.expected)
			}
			if r.Deliveries != g.delivered {
				t.Errorf("Deliveries = %d, want %d", r.Deliveries, g.delivered)
			}
			if r.Recoveries != g.recovered {
				t.Errorf("Recoveries = %d, want %d", r.Recoveries, g.recovered)
			}
			if r.KernelEvents != g.kernelEvents {
				t.Errorf("KernelEvents = %d, want %d", r.KernelEvents, g.kernelEvents)
			}
			if r.Reconfigurations != g.reconfigs {
				t.Errorf("Reconfigurations = %d, want %d", r.Reconfigurations, g.reconfigs)
			}
			if len(r.TimeSeries) != g.buckets {
				t.Errorf("len(TimeSeries) = %d, want %d", len(r.TimeSeries), g.buckets)
			}
		})
	}
}
