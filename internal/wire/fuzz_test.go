package wire

import (
	"testing"

	"repro/internal/ident"
	"repro/internal/matching"
)

// FuzzDecode drives arbitrary bytes through the decoder: it must never
// panic, and on success the message must re-encode to a decodable
// form (not necessarily byte-identical — the decoder is the arbiter).
func FuzzDecode(f *testing.F) {
	for _, msg := range []Message{
		&Event{
			ID:          ident.EventID{Source: 3, Seq: 7},
			Content:     matching.Content{1, 2, 3},
			Tags:        []ident.PatternSeq{{Pattern: 1, Seq: 4}},
			Route:       []ident.NodeID{3, 1},
			PublishedAt: 99,
			PayloadLen:  4,
		},
		&Subscribe{Pattern: 9},
		&Unsubscribe{Pattern: 9},
		&GossipPush{Gossiper: 1, Pattern: 2, Digest: []ident.EventID{{Source: 1, Seq: 1}}},
		&GossipSubPull{Gossiper: 1, Pattern: 2, Wanted: []LostEntry{{Source: 1, Pattern: 2, Seq: 3}}},
		&GossipPubPull{Gossiper: 1, Source: 2, Route: []ident.NodeID{2, 4}, Next: 1},
		&GossipRandom{Gossiper: 1, Wanted: []LostEntry{{Source: 1, Pattern: 2, Seq: 3}}},
		&Request{Requester: 5, IDs: []ident.EventID{{Source: 2, Seq: 9}}},
		&Retransmit{Responder: 5, Events: []*Event{{ID: ident.EventID{Source: 1, Seq: 1}}}},
	} {
		f.Add(Encode(msg))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Decode(data)
		if err != nil {
			return
		}
		re := Encode(msg)
		if len(re) != msg.WireSize() {
			t.Fatalf("WireSize %d != encoded length %d for decoded %v",
				msg.WireSize(), len(re), msg.Kind())
		}
		if _, err := Decode(re); err != nil {
			t.Fatalf("re-encoding of decoded message does not decode: %v", err)
		}
	})
}
