package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-list"}, &b); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"3a", "3b", "4a", "4b", "5", "6", "7", "8", "9a", "9b", "10"} {
		if !strings.Contains(b.String(), id+" ") && !strings.Contains(b.String(), id+"\t") &&
			!strings.Contains(b.String(), "\n"+id) && !strings.HasPrefix(b.String(), id) {
			t.Fatalf("listing missing figure %s:\n%s", id, b.String())
		}
	}
}

func TestFig2Table(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fig", "2"}, &b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"N = 100", "Π = 70", "β = 1500", "T = 0.03"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("Fig. 2 table missing %q:\n%s", want, b.String())
		}
	}
}

func TestFigQuickToStdout(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-fig", "7", "-quick"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "receivers per event") {
		t.Fatalf("fig 7 output wrong:\n%s", b.String())
	}
}

func TestFigQuickToFile(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-fig", "7", "-quick", "-out", dir}, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig7.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "receivers per event") {
		t.Fatalf("fig7.txt content wrong:\n%s", data)
	}
}

func TestUnknownFigure(t *testing.T) {
	if err := run([]string{"-fig", "99"}, &strings.Builder{}); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if err := run(nil, &strings.Builder{}); err == nil {
		t.Fatal("missing -fig accepted")
	}
}
