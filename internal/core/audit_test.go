package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/ident"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/wire"
)

// TestLostBufferAuditCleanUnderChurn exercises the buffer through
// adds, duplicates, removals, capacity evictions, and TTL expiry, and
// demands a clean audit after every operation — the audit must accept
// every state the real mutation path can produce, including the lazily
// deferred sweep states.
func TestLostBufferAuditCleanUnderChurn(t *testing.T) {
	b := NewLostBuffer(4, time.Second)
	audit := func(now sim.Time, step string) {
		t.Helper()
		if err := b.AuditInvariants(now); err != nil {
			t.Fatalf("audit failed after %s: %v", step, err)
		}
	}
	audit(0, "construction")
	for i := 1; i <= 6; i++ { // overflows capacity 4 → FIFO eviction
		b.Add(le(1, i%2, i), sim32(i*10))
		audit(sim32(i*10), "add")
	}
	b.Add(le(1, 1, 5), sim32(100)) // duplicate refresh: stale queue position
	audit(sim32(100), "duplicate add")
	b.Remove(le(1, 0, 6))
	audit(sim32(100), "remove")
	// Reads sweep lazily; the audit must hold before and after.
	audit(sim32(1200), "pre-sweep with expired entries")
	b.All(sim32(1200))
	audit(sim32(1200), "post-sweep")
	b.Add(le(2, 3, 1), sim32(1300))
	audit(sim32(1300), "add after sweep")
}

// TestLostBufferAuditDetectsCorruption hand-corrupts each structural
// invariant in turn and checks the audit names it.
func TestLostBufferAuditDetectsCorruption(t *testing.T) {
	for _, tc := range []struct {
		name    string
		corrupt func(b *LostBuffer)
		now     sim.Time
		want    string
	}{
		{
			name:    "capacity-overflow",
			corrupt: func(b *LostBuffer) { b.capacity = 1 },
			want:    "over capacity",
		},
		{
			name: "index-out-of-order",
			corrupt: func(b *LostBuffer) {
				b.all.items[0], b.all.items[1] = b.all.items[1], b.all.items[0]
			},
			want: "out of order",
		},
		{
			name: "index-holds-unknown-entry",
			corrupt: func(b *LostBuffer) {
				b.all.items[len(b.all.items)-1] = le(9, 9, 9)
			},
			want: "absent from entry map",
		},
		{
			name: "foreign-pattern-entry",
			corrupt: func(b *LostBuffer) {
				// le(1,2,2) is a real map entry — but of pattern 2.
				v := b.byPat[ident.PatternID(1)]
				v.items = append(v.items, le(1, 2, 2))
			},
			want: "foreign entry",
		},
		{
			name: "pattern-cardinality-mismatch",
			corrupt: func(b *LostBuffer) {
				v := b.byPat[ident.PatternID(1)]
				v.items = v.items[:len(v.items)-1]
			},
			want: "pattern indexes hold",
		},
		{
			name: "foreign-source-entry",
			corrupt: func(b *LostBuffer) {
				// le(2,3,3) is a real map entry — but of source 2.
				b.Add(le(2, 3, 3), sim32(3))
				v := b.bySrc[ident.NodeID(1)]
				v.items = append(v.items, le(2, 3, 3))
			},
			want: "foreign entry",
		},
		{
			name: "source-cardinality-mismatch",
			corrupt: func(b *LostBuffer) {
				v := b.bySrc[ident.NodeID(1)]
				v.items = v.items[:len(v.items)-1]
			},
			want: "source indexes hold",
		},
		{
			name:    "eviction-cursor-out-of-bounds",
			corrupt: func(b *LostBuffer) { b.head = -1 },
			want:    "eviction cursor",
		},
		{
			name:    "expiry-cursor-out-of-bounds",
			corrupt: func(b *LostBuffer) { b.exp = len(b.queue) + 1 },
			want:    "expiry cursor",
		},
		{
			name: "queue-time-backwards",
			corrupt: func(b *LostBuffer) {
				b.queue[0].at, b.queue[1].at = b.queue[1].at, b.queue[0].at
			},
			want: "went backwards",
		},
		{
			name: "entry-without-live-queue-position",
			corrupt: func(b *LostBuffer) {
				b.entries[le(1, 1, 1)] = sim32(999)
			},
			want: "no live queue position",
		},
		{
			name: "expired-entry-unreachable-by-sweep",
			corrupt: func(b *LostBuffer) {
				b.exp = len(b.queue) // sweep would skip everything
			},
			now:  sim32(5000), // well past the 1s TTL
			want: "unreachable by sweep",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			b := NewLostBuffer(10, time.Second)
			b.Add(le(1, 1, 1), sim32(1))
			b.Add(le(1, 2, 2), sim32(2))
			if err := b.AuditInvariants(tc.now); err != nil {
				t.Fatalf("audit failed before corruption: %v", err)
			}
			tc.corrupt(b)
			err := b.AuditInvariants(tc.now)
			if err == nil {
				t.Fatalf("audit accepted corrupted state")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("audit error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestEngineAuditInvariants drives a small recovering cluster, audits
// every engine after real traffic, then corrupts one engine's lost
// buffer and checks the failure is attributed to that node.
func TestEngineAuditInvariants(t *testing.T) {
	topo := topology.NewLine(3)
	subs := [][]ident.PatternID{nil, {5}, {5}}
	r := newRig(t, topo, subs, deterministicCfg(SubscriberPull))
	loseOneEvent(r, 1, 2)
	r.run(2 * time.Second)
	for i, e := range r.engines {
		if err := e.AuditInvariants(r.k.Now()); err != nil {
			t.Fatalf("engine %d failed audit after live traffic: %v", i, err)
		}
	}
	e := r.engines[2]
	e.lost.Add(wire.LostEntry{Source: 0, Pattern: 1, Seq: 99}, r.k.Now())
	e.lost.all.items = nil // index no longer mirrors the entry map
	err := e.AuditInvariants(r.k.Now())
	if err == nil {
		t.Fatal("audit accepted a corrupted engine")
	}
	if !strings.Contains(err.Error(), "node node(2)") {
		t.Fatalf("audit error %q does not name the corrupt node", err)
	}
}
