package scenario

import (
	"testing"
	"time"

	"repro/internal/core"
)

// TestCalibrationRecoveryAnchors pins the paper's headline recovery
// results at the default parameters (Fig. 3a right, ε=0.1): push and
// combined pull lift delivery to ≈0.90, subscriber-based pull plateaus
// near 0.78, and every algorithm beats the baseline.
func TestCalibrationRecoveryAnchors(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale calibration runs")
	}
	type band struct {
		algo   core.Algorithm
		lo, hi float64
	}
	bands := []band{
		{core.Push, 0.88, 0.99},
		{core.CombinedPull, 0.86, 0.98},
		{core.SubscriberPull, 0.72, 0.82}, // the paper's ≈78% plateau
		{core.PublisherPull, 0.65, 0.85},
		{core.RandomPull, 0.70, 0.92},
	}
	params := make([]Params, 0, len(bands))
	for _, b := range bands {
		p := DefaultParams()
		p.Duration = 8 * time.Second
		p.Algorithm = b.algo
		params = append(params, p)
	}
	results, err := RunAll(params)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range bands {
		got := results[i].DeliveryRate
		t.Logf("%-16s delivery=%.3f gossip/disp=%.0f ratio=%.3f recovLatP50=%v",
			b.algo, got, results[i].GossipPerDispatcher,
			results[i].GossipEventRatio, results[i].RecoveryLatencyP50)
		if got < b.lo || got > b.hi {
			t.Errorf("%v delivery %.3f outside paper band [%.2f, %.2f]", b.algo, got, b.lo, b.hi)
		}
	}
}

// TestCalibrationOverheadAnchors pins the gossip/event message ratio
// near the paper's ≈20–28% band for push at the defaults (Fig. 9a).
func TestCalibrationOverheadAnchors(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale calibration run")
	}
	p := DefaultParams()
	p.Duration = 8 * time.Second
	p.Algorithm = core.Push
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.GossipEventRatio < 0.12 || res.GossipEventRatio > 0.40 {
		t.Errorf("push gossip/event ratio %.3f outside calibration band [0.12, 0.40]", res.GossipEventRatio)
	}
	// Paper Fig. 9a: 1000–4500 gossip msgs per dispatcher over 25 s
	// (40–180/s) across N=40…200. Our Pforward=0.9 calibration trades
	// a little more gossip for hitting the delivery anchors, so allow
	// headroom above the paper's top.
	perSec := res.GossipPerDispatcher / 8
	if perSec < 40 || perSec > 260 {
		t.Errorf("push gossip msgs/dispatcher/s = %.1f outside calibration band [40, 260]", perSec)
	}
}

// TestCalibrationBaseline checks the paper's central calibration
// anchors (Fig. 3a): without recovery the delivery rate is ≈0.55 at
// ε=0.1 and ≈0.75 at ε=0.05.
func TestCalibrationBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("full-length calibration run")
	}
	for _, tt := range []struct {
		eps    float64
		lo, hi float64
	}{
		{0.1, 0.50, 0.62},
		{0.05, 0.70, 0.80},
	} {
		p := DefaultParams()
		p.Duration = 10 * time.Second
		p.Network.LossRate = tt.eps
		p.Network.OOBLossRate = tt.eps
		p.Algorithm = core.NoRecovery
		res, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("ε=%.2f: delivery=%.3f meanPath=%.2f published=%d kernelEvents=%d receivers/event=%.2f",
			tt.eps, res.DeliveryRate, res.MeanPathLength, res.EventsPublished, res.KernelEvents, res.ReceiversPerEvent)
		if res.DeliveryRate < tt.lo || res.DeliveryRate > tt.hi {
			t.Errorf("ε=%.2f: baseline delivery %.3f outside paper band [%.2f, %.2f]",
				tt.eps, res.DeliveryRate, tt.lo, tt.hi)
		}
	}
}
