package matching

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ident"
)

func TestContentMatches(t *testing.T) {
	c := Content{3, 17, 42}
	if !c.Matches(17) {
		t.Fatal("Matches(17) = false, want true")
	}
	if c.Matches(5) {
		t.Fatal("Matches(5) = true, want false")
	}
	if !c.MatchesAny([]ident.PatternID{5, 42}) {
		t.Fatal("MatchesAny([5 42]) = false, want true")
	}
	if c.MatchesAny([]ident.PatternID{5, 6}) {
		t.Fatal("MatchesAny([5 6]) = true, want false")
	}
	if c.MatchesAny(nil) {
		t.Fatal("MatchesAny(nil) = true, want false")
	}
}

func TestRandomContentInvariants(t *testing.T) {
	u := DefaultUniverse()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		c := u.RandomContent(rng)
		if len(c) < 1 || len(c) > u.MaxMatch {
			t.Fatalf("content length %d outside [1, %d]", len(c), u.MaxMatch)
		}
		for j := range c {
			if c[j] < 0 || int(c[j]) >= u.NumPatterns {
				t.Fatalf("pattern %v outside universe", c[j])
			}
			if j > 0 && c[j] <= c[j-1] {
				t.Fatalf("content %v not sorted/deduped", c)
			}
		}
	}
}

func TestRandomContentUniformCoverage(t *testing.T) {
	u := DefaultUniverse()
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, u.NumPatterns)
	const trials = 20000
	for i := 0; i < trials; i++ {
		for _, p := range u.RandomContent(rng) {
			counts[p]++
		}
	}
	// Each pattern should appear in roughly trials*3/70 events.
	want := float64(trials) * 3 / float64(u.NumPatterns)
	for p, got := range counts {
		if float64(got) < want*0.7 || float64(got) > want*1.3 {
			t.Fatalf("pattern %d drawn %d times, want about %.0f", p, got, want)
		}
	}
}

func TestRandomSubscriptionsDistinct(t *testing.T) {
	u := DefaultUniverse()
	rng := rand.New(rand.NewSource(3))
	for k := 1; k <= 30; k++ {
		ps := u.RandomSubscriptions(k, rng)
		if len(ps) != k {
			t.Fatalf("got %d subscriptions, want %d", len(ps), k)
		}
		seen := map[ident.PatternID]bool{}
		for _, p := range ps {
			if seen[p] {
				t.Fatalf("duplicate pattern %v in subscriptions", p)
			}
			seen[p] = true
		}
	}
	// k beyond the universe is clamped.
	if got := len(u.RandomSubscriptions(200, rng)); got != u.NumPatterns {
		t.Fatalf("oversized k gave %d patterns, want %d", got, u.NumPatterns)
	}
}

func TestInterest(t *testing.T) {
	in := NewInterest([]ident.PatternID{2, 9})
	if !in.Has(2) || !in.Has(9) || in.Has(3) {
		t.Fatal("Has gave wrong membership")
	}
	if in.Len() != 2 {
		t.Fatalf("Len = %d, want 2", in.Len())
	}
	c := Content{1, 2, 9}
	got := in.MatchedBy(c)
	if len(got) != 2 || got[0] != 2 || got[1] != 9 {
		t.Fatalf("MatchedBy = %v, want [2 9]", got)
	}
	if !in.Matches(c) {
		t.Fatal("Matches = false, want true")
	}
	if in.Matches(Content{1, 3}) {
		t.Fatal("Matches = true, want false")
	}
	if in.MatchedBy(Content{1, 3}) != nil {
		t.Fatal("MatchedBy with no overlap should be nil")
	}
}

// TestReceiversFractionMatchesPaperFig7 checks the analytical anchor
// points of paper Fig. 7: with Π=70 and 3-pattern events, πmax=5
// reaches ≈25% of dispatchers and πmax=30 reaches ≈80%.
func TestReceiversFractionMatchesPaperFig7(t *testing.T) {
	u := DefaultUniverse()
	rng := rand.New(rand.NewSource(11))
	frac := func(pimax int) float64 {
		const nodes, events = 100, 400
		interests := make([]*Interest, nodes)
		for i := range interests {
			interests[i] = NewInterest(u.RandomSubscriptions(pimax, rng))
		}
		var hit, total int
		for e := 0; e < events; e++ {
			c := u.RandomContent(rng)
			for _, in := range interests {
				if in.Matches(c) {
					hit++
				}
				total++
			}
		}
		return float64(hit) / float64(total)
	}
	if f := frac(5); f < 0.15 || f > 0.32 {
		t.Fatalf("πmax=5 reaches %.0f%% of dispatchers, paper says ≈25%%", f*100)
	}
	if f := frac(30); f < 0.70 || f > 0.90 {
		t.Fatalf("πmax=30 reaches %.0f%% of dispatchers, paper says ≈80%%", f*100)
	}
}

func TestInterestMatchedByProperty(t *testing.T) {
	u := DefaultUniverse()
	f := func(seed int64, k uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		in := NewInterest(u.RandomSubscriptions(int(k%30)+1, rng))
		c := u.RandomContent(rng)
		matched := in.MatchedBy(c)
		// Every matched pattern is both subscribed and in the content;
		// every (subscribed ∩ content) pattern is matched.
		for _, p := range matched {
			if !in.Has(p) || !c.Matches(p) {
				return false
			}
		}
		n := 0
		for _, p := range c {
			if in.Has(p) {
				n++
			}
		}
		return n == len(matched) && in.Matches(c) == (n > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRandomContent(b *testing.B) {
	u := DefaultUniverse()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = u.RandomContent(rng)
	}
}

func BenchmarkInterestMatches(b *testing.B) {
	u := DefaultUniverse()
	rng := rand.New(rand.NewSource(1))
	in := NewInterest(u.RandomSubscriptions(2, rng))
	c := u.RandomContent(rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = in.Matches(c)
	}
}
