package scenario

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/core"
)

// goldenCheckParams mirrors the golden test's configuration exactly;
// the checked-run tests must observe the very trajectories the golden
// metrics pin.
func goldenCheckParams(alg core.Algorithm, reconfig time.Duration) Params {
	p := DefaultParams()
	p.Seed = 42
	p.N = 25
	p.Duration = 2 * time.Second
	p.MeasureFrom = 300 * time.Millisecond
	p.MeasureTo = 1500 * time.Millisecond
	p.PublishRate = 15
	p.ReconfigInterval = reconfig
	p.Algorithm = alg
	p.Gossip = core.DefaultConfig(alg)
	return p
}

// TestCheckedGoldenRunsCleanAndBitIdentical is the tentpole's
// acceptance gate: over the golden-test seeds, every algorithm runs
// with all five monitors enabled without a single violation, and the
// full Result is bit-identical to an unchecked run — the checker is
// provably passive.
func TestCheckedGoldenRunsCleanAndBitIdentical(t *testing.T) {
	for _, reconfig := range []time.Duration{0, 250 * time.Millisecond} {
		for _, alg := range core.Algorithms() {
			alg, reconfig := alg, reconfig
			name := alg.String()
			if reconfig > 0 {
				name += "-reconfig"
			}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				plain, err := Run(goldenCheckParams(alg, reconfig))
				if err != nil {
					t.Fatalf("unchecked run: %v", err)
				}
				p := goldenCheckParams(alg, reconfig)
				p.Check = check.All()
				checked, err := Run(p)
				if err != nil {
					t.Fatalf("checked run reported a violation: %v", err)
				}
				// Params differ only by the Check pointer; everything
				// measured must match bit for bit.
				plain.Params, checked.Params = Params{}, Params{}
				if !reflect.DeepEqual(plain, checked) {
					t.Errorf("checked run diverged from unchecked run:\nunchecked: %+v\nchecked:   %+v", plain, checked)
				}
			})
		}
	}
}

// TestCheckedChurnRunClean runs the pinned churn scenario — crashes,
// restarts, tree repair, downtime-filtered accounting — under all five
// monitors, and again demands both a clean verdict and bit-identical
// results.
func TestCheckedChurnRunClean(t *testing.T) {
	plain, err := Run(churnParams())
	if err != nil {
		t.Fatalf("unchecked run: %v", err)
	}
	p := churnParams()
	p.Check = check.All()
	checked, err := Run(p)
	if err != nil {
		t.Fatalf("checked churn run reported a violation: %v", err)
	}
	plain.Params, checked.Params = Params{}, Params{}
	if !reflect.DeepEqual(plain, checked) {
		t.Errorf("checked churn run diverged from unchecked run:\nunchecked: %+v\nchecked:   %+v", plain, checked)
	}
}
